package tinymlops

import (
	"tinymlops/internal/faults"
	"tinymlops/internal/metering"
	"tinymlops/internal/verify"
)

// Verifiable pay-per-query settlement (§III-C metering + §VI sum-check
// proofs, wired end to end). Enable with PlatformConfig.VerifiedBilling:
// deployments then attest a deterministic sample of metered charges with
// sum-check proofs over the model's first dense layer, the proofs ride in
// the settlement report, and the platform's settler batch-verifies them
// before accepting any usage claim.

// Attestation is one sampled charge's proof of inference: the charge
// sequence, the model version that served it, the quantized input row,
// the claimed output and the serialized sum-check proof.
type Attestation = metering.Attestation

// AttestedReport is a settlement report carrying inference attestations.
// It is a wire superset of the plain report: legacy settlers ignore the
// attestations, legacy devices settle with none.
type AttestedReport = metering.AttestedReport

// SettlementReceipt is the settler's signed-off verdict on one report.
type SettlementReceipt = metering.Receipt

// ErrProofInvalid marks a settlement rejected because an inference proof
// failed verification.
var ErrProofInvalid = metering.ErrProofInvalid

// SettleAttestedOverTCP submits an attested report to a settlement
// server and returns the receipt.
func SettleAttestedOverTCP(addr string, report AttestedReport) (SettlementReceipt, error) {
	return metering.SettleAttestedOverTCP(addr, report)
}

// MatMulProof is one sum-check proof that C = A·B over the integer
// domain, transcript-bound to its charge context.
type MatMulProof = verify.Proof

// BatchVerifier amortizes sum-check verification across a settlement
// window: weight encodings are prepared once per (model-version, shape)
// class, a shared-transcript Freivalds projection pre-screens each claim,
// and full verification fans out on the engine's worker pool.
type BatchVerifier = verify.BatchVerifier

// BatchItem is one proof-of-inference claim in a verification batch.
type BatchItem = verify.BatchItem

// BatchResult is one BatchItem's verdict.
type BatchResult = verify.BatchResult

// NewBatchVerifier returns a batch verifier running on eng (nil = serial).
func NewBatchVerifier(eng *Engine) *BatchVerifier { return verify.NewBatchVerifier(eng) }

// TamperAttestedReport applies a fault profile's billing frauds to a
// settlement report in place — the chaos plane's billing adversary —
// returning the frauds that actually modified it.
func TamperAttestedReport(f FaultProfile, rep *AttestedReport, altModels ...string) FaultProfile {
	return faults.TamperAttestedReport(f, rep, altModels...)
}

// SettlementPhaseReport accounts a chaos scenario's settlement phase.
type SettlementPhaseReport = faults.SettlementReport

// SettleVerdict is one device's settlement outcome in a chaos scenario.
type SettleVerdict = faults.SettleVerdict
