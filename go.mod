module tinymlops

go 1.22
