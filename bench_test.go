// Benchmarks: one per experiment (E1–E11, DESIGN.md §3), measuring the
// kernel each experiment's table is built on. Run with:
//
//	go test -bench=. -benchmem
package tinymlops_test

import (
	"fmt"
	"io"
	"testing"

	"tinymlops/internal/benchsuite"
	"tinymlops/internal/compat"
	"tinymlops/internal/core"
	"tinymlops/internal/dataset"
	"tinymlops/internal/device"
	"tinymlops/internal/engine"
	"tinymlops/internal/experiments"
	"tinymlops/internal/fed"
	"tinymlops/internal/ipprot"
	"tinymlops/internal/market"
	"tinymlops/internal/metering"
	"tinymlops/internal/nn"
	"tinymlops/internal/observe"
	"tinymlops/internal/quant"
	"tinymlops/internal/registry"
	"tinymlops/internal/selector"
	"tinymlops/internal/tensor"
	"tinymlops/internal/verify"
)

// --- E1: platform end-to-end query path -------------------------------

func BenchmarkE1PlatformInfer(b *testing.B) {
	rng := tensor.NewRNG(1)
	ds := dataset.Blobs(rng, 600, 4, 3, 5)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 16, rng), nn.NewReLU(), nn.NewDense(16, 3, rng))
	if _, err := nn.Train(net, ds.X, ds.Y, nn.TrainConfig{
		Epochs: 5, BatchSize: 32, Optimizer: nn.NewSGD(0.1), RNG: rng,
	}); err != nil {
		b.Fatal(err)
	}
	fleet, _ := device.NewStandardFleet(device.FleetSpec{CountPerProfile: 1, Seed: 1})
	for _, d := range fleet.Devices() {
		d.SetBehavior(1, 1, 0)
	}
	fleet.Tick()
	p, err := core.New(fleet, core.Config{VendorKey: []byte("bench-vendor-key-0123456789abcd0"), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.Publish("bench", net, ds, core.DefaultOptimizationSpec(ds)); err != nil {
		b.Fatal(err)
	}
	dep, err := p.Deploy("edge-gateway-00", "bench", core.DeployConfig{
		PrepaidQueries: uint64(1<<62) - 1, Calibration: ds,
	})
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float32, 4)
	for f := range x {
		x[f] = ds.X.At2(0, f)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dep.Infer(x); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2: variant selection ---------------------------------------------

func BenchmarkE2VariantSelection(b *testing.B) {
	rng := tensor.NewRNG(2)
	reg := registry.New()
	net := nn.NewNetwork([]int{64}, nn.NewDense(64, 128, rng), nn.NewReLU(), nn.NewDense(128, 4, rng))
	vs, err := reg.RegisterWithVariants("bench", net, 0.95, registry.OptimizationSpec{
		Schemes:  []quant.Scheme{quant.Int8, quant.Int4, quant.Ternary, quant.Binary},
		Evaluate: func(*nn.Network) float64 { return 0.9 },
	})
	if err != nil {
		b.Fatal(err)
	}
	caps, _ := device.ProfileByName("m4-wearable")
	d := device.NewDevice("bench", caps, tensor.NewRNG(3))
	d.SetBehavior(1, 1, 0)
	d.Tick()
	policy := selector.DefaultPolicy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := selector.Select(d, vs, policy); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: precision kernels ----------------------------------------------

const benchM, benchK, benchN = 128, 256, 128

func int8Operands(rng *tensor.RNG) (a, bb []int8, scales []float32, dst []float32) {
	a = make([]int8, benchM*benchK)
	bb = make([]int8, benchK*benchN)
	for i := range a {
		a[i] = int8(rng.Intn(255) - 127)
	}
	for i := range bb {
		bb[i] = int8(rng.Intn(255) - 127)
	}
	scales = make([]float32, benchN)
	for i := range scales {
		scales[i] = 0.01
	}
	return a, bb, scales, make([]float32, benchM*benchN)
}

func BenchmarkE3MatMulFloat32(b *testing.B) {
	rng := tensor.NewRNG(4)
	x := tensor.Randn(rng, 1, benchM, benchK)
	y := tensor.Randn(rng, 1, benchK, benchN)
	out := tensor.New(benchM, benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(out, x, y)
	}
}

func BenchmarkE3MatMulInt8Native(b *testing.B) {
	a, bb, scales, dst := int8Operands(tensor.NewRNG(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quant.MatMulInt8(dst, a, bb, benchM, benchK, benchN, 0.05, scales)
	}
}

func BenchmarkE3MatMulInt8Emulated(b *testing.B) {
	a, bb, scales, dst := int8Operands(tensor.NewRNG(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quant.MatMulInt8Emulated(dst, a, bb, benchM, benchK, benchN, 0.05, scales)
	}
}

// --- E4: drift detectors -------------------------------------------------

func driftRef(rng *tensor.RNG) []float64 {
	ref := make([]float64, 1000)
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	return ref
}

func BenchmarkE4DriftKS(b *testing.B) {
	rng := tensor.NewRNG(7)
	det, err := observe.NewKSDetector(driftRef(rng), 100, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Observe(rng.NormFloat64())
	}
}

func BenchmarkE4DriftPSI(b *testing.B) {
	rng := tensor.NewRNG(8)
	det, err := observe.NewPSIDetector(driftRef(rng), 10, 200, 0.25)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Observe(rng.NormFloat64())
	}
}

func BenchmarkE4DriftCUSUM(b *testing.B) {
	rng := tensor.NewRNG(9)
	det, err := observe.NewCUSUMDetector(0, 1, 0.5, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Observe(rng.NormFloat64())
	}
}

// --- E5: metering --------------------------------------------------------

func BenchmarkE5MeterCharge(b *testing.B) {
	issuer, _ := metering.NewIssuer([]byte("bench-key-0123456789abcdef012345"))
	v, _ := issuer.Issue("dev", "model", uint64(1<<62))
	m := metering.NewMeter(v)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Charge(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: federated round ---------------------------------------------------

func BenchmarkE6FederatedRound(b *testing.B) {
	rng := tensor.NewRNG(10)
	ds := dataset.Blobs(rng, 800, 4, 3, 4)
	shards := dataset.PartitionDirichlet(rng, ds, 4, 1)
	global := nn.NewNetwork([]int{4}, nn.NewDense(4, 16, rng), nn.NewReLU(), nn.NewDense(16, 3, rng))
	co, err := fed.NewCoordinator(global, fed.MakeClients(ds, shards, "c"), nil, nil, fed.Config{
		Rounds: 1, LocalEpochs: 1, LocalBatch: 32, LR: 0.1, Seed: 11, Codec: fed.TernaryCodec{},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := co.RunRound(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: compatibility + split search --------------------------------------

func BenchmarkE7SplitSearch(b *testing.B) {
	rng := tensor.NewRNG(12)
	net := nn.NewNetwork([]int{64},
		nn.NewDense(64, 256, rng), nn.NewReLU(),
		nn.NewDense(256, 256, rng), nn.NewReLU(),
		nn.NewDense(256, 8, rng))
	costs, err := net.Summary()
	if err != nil {
		b.Fatal(err)
	}
	dev, _ := device.ProfileByName("m0-sensor")
	cloud, _ := device.ProfileByName("edge-gateway")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := market.BestSplit(costs, dev, cloud, 32, 125e3, 5e6, 256); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7LoweringFoldBN(b *testing.B) {
	rng := tensor.NewRNG(13)
	build := nn.NewNetwork([]int{32},
		nn.NewDense(32, 64, rng), nn.NewBatchNorm1D(64), nn.NewReLU(), nn.NewDense(64, 4, rng))
	data, err := build.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := nn.UnmarshalNetwork(data)
		if err != nil {
			b.Fatal(err)
		}
		caps, _ := device.ProfileByName("npu-board")
		if _, err := compat.Lower(net, caps); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: watermark embedding -------------------------------------------------

func BenchmarkE8WatermarkEmbed(b *testing.B) {
	rng := tensor.NewRNG(14)
	base := nn.NewNetwork([]int{16}, nn.NewDense(16, 64, rng), nn.NewReLU(), nn.NewDense(64, 4, rng))
	data, _ := base.MarshalBinary()
	bits := ipprot.KeyedBits("bench-owner", 64)
	cfg := ipprot.DefaultStaticWMConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := nn.UnmarshalNetwork(data)
		if err != nil {
			b.Fatal(err)
		}
		if err := ipprot.EmbedStatic(net, "bench-owner", bits, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9: prediction poisoning -------------------------------------------------

func BenchmarkE9DefenseDeceptive(b *testing.B) {
	rng := tensor.NewRNG(15)
	probs := nn.SoftmaxRows(tensor.Randn(rng, 1, 256, 10))
	d := ipprot.DeceptiveDefense{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Apply(probs)
	}
}

func BenchmarkE9QueryDetector(b *testing.B) {
	rng := tensor.NewRNG(16)
	det := ipprot.DefaultQueryDetector()
	rows := make([][]float32, 512)
	for i := range rows {
		row := make([]float32, 8)
		for f := range row {
			row[f] = rng.NormFloat32()
		}
		rows[i] = row
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Observe(rows[i%len(rows)])
	}
}

// --- E10: verifiable execution -------------------------------------------------

func e10Operands(rng *tensor.RNG, m, k, n int) ([]int32, []int32) {
	a := make([]int32, m*k)
	bb := make([]int32, k*n)
	for i := range a {
		a[i] = int32(rng.Intn(255) - 127)
	}
	for i := range bb {
		bb[i] = int32(rng.Intn(255) - 127)
	}
	return a, bb
}

func BenchmarkE10Prove(b *testing.B) {
	a, bb := e10Operands(tensor.NewRNG(17), 64, 64, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := verify.ProveMatMul(a, 64, 64, bb, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10Verify(b *testing.B) {
	a, bb := e10Operands(tensor.NewRNG(18), 64, 64, 32)
	c, proof, _, err := verify.ProveMatMul(a, 64, 64, bb, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, _, err := verify.VerifyMatMul(a, 64, 64, bb, 32, c, proof)
		if err != nil || !ok {
			b.Fatalf("verify failed: %v %v", ok, err)
		}
	}
}

func BenchmarkE10DirectReexecution(b *testing.B) {
	a, bb := e10Operands(tensor.NewRNG(19), 64, 64, 32)
	out := make([]int64, 64*32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := range out {
			out[p] = 0
		}
		for r := 0; r < 64; r++ {
			for p := 0; p < 64; p++ {
				av := int64(a[r*64+p])
				for j := 0; j < 32; j++ {
					out[r*32+j] += av * int64(bb[p*32+j])
				}
			}
		}
	}
}

// --- verified settlement: prove, verify, batch-amortized verify --------------

// settleK/settleN mirror a deployment's proved layer at settlement
// shape: one quantized input row against a k×n weight matrix.
const settleK, settleN = 256, 64

func settleOperands(rng *tensor.RNG) (a, wq []int32) {
	a = make([]int32, settleK)
	wq = make([]int32, settleK*settleN)
	for i := range a {
		a[i] = int32(rng.Intn(255) - 127)
	}
	for i := range wq {
		wq[i] = int32(rng.Intn(255) - 127)
	}
	return a, wq
}

func BenchmarkProveMatMul(b *testing.B) {
	a, wq := settleOperands(tensor.NewRNG(50))
	var proofBytes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, proof, _, err := verify.ProveMatMul(a, 1, settleK, wq, settleN)
		if err != nil {
			b.Fatal(err)
		}
		proofBytes = proof.SizeBytes()
	}
	b.ReportMetric(float64(proofBytes), "proof-bytes/op")
}

// BenchmarkVerifyMatMul is the naive per-proof path: every verification
// re-digests the full weight matrix into its transcript.
func BenchmarkVerifyMatMul(b *testing.B) {
	a, wq := settleOperands(tensor.NewRNG(51))
	c, proof, _, err := verify.ProveMatMul(a, 1, settleK, wq, settleN)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, _, verr := verify.VerifyMatMul(a, 1, settleK, wq, settleN, c, proof)
		if verr != nil || !ok {
			b.Fatalf("verify failed: %v %v", ok, verr)
		}
	}
	b.ReportMetric(float64(proof.SizeBytes()), "proof-bytes/op")
}

// BenchmarkBatchVerifySettlement amortizes a 16-proof settlement window
// through the BatchVerifier: the weight encoding is prepared once per
// class, so per-proof cost drops below BenchmarkVerifyMatMul's —
// divide ns/op by proofs/op to compare.
func BenchmarkBatchVerifySettlement(b *testing.B) {
	const window = 16
	rng := tensor.NewRNG(52)
	_, wq := settleOperands(rng)
	bv := verify.NewBatchVerifier(engine.Default())
	if err := bv.Prepare("bench-class", wq, settleK, settleN); err != nil {
		b.Fatal(err)
	}
	items := make([]verify.BatchItem, window)
	proofBytes := 0
	for i := range items {
		a := make([]int32, settleK)
		for j := range a {
			a[j] = int32(rng.Intn(255) - 127)
		}
		c, proof, _, err := verify.ProveMatMul(a, 1, settleK, wq, settleN)
		if err != nil {
			b.Fatal(err)
		}
		items[i] = verify.BatchItem{ClassID: "bench-class", A: a, M: 1, C: c, Proof: proof}
		proofBytes += proof.SizeBytes()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, _, err := bv.VerifyBatch(items)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if !r.OK {
				b.Fatalf("batch rejected an honest proof: %v", r.Err)
			}
		}
	}
	b.ReportMetric(window, "proofs/op")
	b.ReportMetric(float64(proofBytes)/window, "proof-bytes/proof")
}

// --- E11: encryption -------------------------------------------------------------

func BenchmarkE11EncryptModel(b *testing.B) {
	rng := tensor.NewRNG(20)
	net := nn.NewNetwork([]int{64}, nn.NewDense(64, 256, rng), nn.NewReLU(), nn.NewDense(256, 10, rng))
	artifact, err := net.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	key := []byte("bench-vendor-key-0123456789abcd0")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ipprot.EncryptModel(key, "bench", artifact); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11DecryptModel(b *testing.B) {
	rng := tensor.NewRNG(21)
	net := nn.NewNetwork([]int{64}, nn.NewDense(64, 256, rng), nn.NewReLU(), nn.NewDense(256, 10, rng))
	artifact, _ := net.MarshalBinary()
	key := []byte("bench-vendor-key-0123456789abcd0")
	em, err := ipprot.EncryptModel(key, "bench", artifact)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ipprot.DecryptModel(key, em); err != nil {
			b.Fatal(err)
		}
	}
}

// --- engine: parallel fleet execution + batched forward ----------------------

// deviceState is the per-device reusable buffers of the fleet-round
// benchmarks: a steady-state fleet allocates per round only what the
// harness itself needs.
type deviceState struct {
	in      *tensor.Tensor
	scratch *nn.Scratch
}

// fleetRoundWork is the per-device work both fleet-round benchmarks run: a
// batch-16 inference burst on a shared model plus cost-model accounting.
// The serial and parallel benchmarks execute exactly this, so their ratio
// is the engine's scheduling speedup (≈1 on one core; the gain appears at
// GOMAXPROCS ≥ 2 because per-device work is independent by construction).
func fleetRoundWork(net *nn.Network, d *device.Device, rng *tensor.RNG, st *deviceState) uint64 {
	for i := range st.in.Data {
		st.in.Data[i] = -1 + 2*rng.Float32()
	}
	out := net.ForwardBatch(st.in, st.scratch)
	if _, err := d.RunInference(27000, 32); err != nil {
		return 0
	}
	return uint64(out.ArgMaxRows()[0])
}

func fleetBenchSetup(b *testing.B) (*nn.Network, *device.Fleet, map[string]*deviceState) {
	rng := tensor.NewRNG(30)
	net := nn.NewNetwork([]int{16},
		nn.NewDense(16, 64, rng), nn.NewReLU(), nn.NewDense(64, 10, rng))
	fleet, err := device.NewStandardFleet(device.FleetSpec{CountPerProfile: 167, Seed: 1}) // 1002 devices
	if err != nil {
		b.Fatal(err)
	}
	states := make(map[string]*deviceState, fleet.Size())
	for _, d := range fleet.Devices() {
		states[d.ID] = &deviceState{in: tensor.New(16, 16), scratch: nn.NewScratch()}
	}
	return net, fleet, states
}

func BenchmarkFleetRoundSerial(b *testing.B) {
	net, fleet, states := fleetBenchSetup(b)
	devs := fleet.Devices()
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		for i, d := range devs {
			fleetRoundWork(net, d, engine.RNGFor(1, uint64(it+1), i), states[d.ID])
		}
	}
}

func BenchmarkFleetRoundParallel(b *testing.B) {
	net, fleet, states := fleetBenchSetup(b)
	runner := engine.NewFleetRunner(engine.Default(), fleet, 1)
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		engine.RunRound(runner, func(d *device.Device, rng *tensor.RNG) (uint64, error) {
			return fleetRoundWork(net, d, rng, states[d.ID]), nil
		})
	}
}

func batchBenchNet() (*nn.Network, *tensor.Tensor) {
	rng := tensor.NewRNG(31)
	net := nn.NewNetwork([]int{64},
		nn.NewDense(64, 128, rng), nn.NewReLU(), nn.NewDense(128, 10, rng))
	return net, tensor.Randn(rng, 1, 16, 64)
}

// BenchmarkForwardSingle16 is the per-sample baseline: 16 examples, 16
// Forward calls per iteration.
func BenchmarkForwardSingle16(b *testing.B) {
	net, in := batchBenchNet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < 16; r++ {
			net.Forward(in.RowSlice(r, r+1), false)
		}
	}
}

// BenchmarkForwardBatch16 runs the same 16 examples as one ForwardBatch
// call with reused scratch buffers (bit-identical outputs, see
// internal/nn batch tests).
func BenchmarkForwardBatch16(b *testing.B) {
	net, in := batchBenchNet()
	scratch := nn.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatch(in, scratch)
	}
}

// --- integer serving: batched QModel vs batched float -----------------------

// precisionBenchFixture builds the shared topology and batch of the
// integer-vs-float serving benchmarks: identical model, identical input,
// so the ratio isolates the kernels.
func precisionBenchFixture() (*nn.Network, *tensor.Tensor) {
	rng := tensor.NewRNG(32)
	net := nn.NewNetwork([]int{64},
		nn.NewDense(64, 128, rng), nn.NewReLU(), nn.NewDense(128, 10, rng))
	return net, tensor.Randn(rng, 1, 16, 64)
}

// BenchmarkInferBatchFloat32 is the float serving baseline: one batch-16
// ForwardBatch per iteration with reused scratch.
func BenchmarkInferBatchFloat32(b *testing.B) {
	net, in := precisionBenchFixture()
	scratch := nn.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatch(in, scratch)
	}
}

// BenchmarkInferBatchInt8 runs the same topology and batch through the
// integer runtime (dynamic per-example activation quantization + blocked
// int8 matmul) with reused QScratch — the hot path an NPU-class
// deployment serves.
func BenchmarkInferBatchInt8(b *testing.B) {
	net, in := precisionBenchFixture()
	qm, err := quant.NewQModel(net, quant.Int8)
	if err != nil {
		b.Fatal(err)
	}
	scratch := quant.NewQScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qm.ForwardBatch(in, scratch)
	}
}

// BenchmarkInferBatchInt4 is the same topology and batch through the
// packed-int4 runtime: weights stored two codes per byte, nibbles decoded
// inside the blocked matmul. The point of comparison is
// BenchmarkInferBatchFloat32 — native int4 must beat the fake-quantized
// float path it replaces on 4-bit-capable hardware.
func BenchmarkInferBatchInt4(b *testing.B) {
	net, in := precisionBenchFixture()
	qm, err := quant.NewQModel(net, quant.Int4)
	if err != nil {
		b.Fatal(err)
	}
	scratch := quant.NewQScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qm.ForwardBatch(in, scratch)
	}
}

// --- staged OTA rollout: delta vs full transfer ------------------------------

// rolloutBenchSetup builds a platform over 8 wall-powered gateways, all
// running v1 of a model line whose v2 differs only in the head layer —
// the sparse-update case staged rollouts are optimized for.
func rolloutBenchSetup(b *testing.B) (*core.Platform, *registry.ModelVersion) {
	rng := tensor.NewRNG(40)
	ds := dataset.Blobs(rng, 400, 4, 3, 5)
	spec := registry.OptimizationSpec{Evaluate: func(n *nn.Network) float64 {
		return nn.Evaluate(n, ds.X, ds.Y)
	}}
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 16, rng), nn.NewReLU(), nn.NewDense(16, 3, rng))
	fleet := device.NewFleet()
	caps, _ := device.ProfileByName("edge-gateway")
	ids := make([]string, 8)
	for i := range ids {
		ids[i] = fmt.Sprintf("gw-%02d", i)
		if err := fleet.Add(device.NewDevice(ids[i], caps, tensor.NewRNG(uint64(i)))); err != nil {
			b.Fatal(err)
		}
	}
	p, err := core.New(fleet, core.Config{VendorKey: []byte("bench-vendor-key-0123456789abcd0"), Seed: 40})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.Publish("ota", net, ds, spec); err != nil {
		b.Fatal(err)
	}
	if _, err := p.DeployMany(ids, "ota", core.DeployConfig{PrepaidQueries: 10}); err != nil {
		b.Fatal(err)
	}
	v2 := net.Clone()
	head := v2.Layers()[2].(*nn.Dense)
	for i := range head.W.Value.Data {
		head.W.Value.Data[i] += 0.01
	}
	v2s, err := p.Publish("ota", v2, ds, spec)
	if err != nil {
		b.Fatal(err)
	}
	return p, v2s[0]
}

// benchRolloutTransfer measures one full-fleet staged rollout per
// iteration (waves, gates, transfer, hot-swap), rolling every device back
// between iterations so each rollout ships the same update. The reported
// bytes/op metric is what moved over the simulated radios.
func benchRolloutTransfer(b *testing.B, forceFull bool) {
	p, v2 := rolloutBenchSetup(b)
	var shipped int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Rollout(v2, core.RolloutConfig{Seed: 1, ForceFull: forceFull})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatalf("rollout gate failed: %+v", res.Waves)
		}
		shipped += res.TotalShipBytes
		b.StopTimer()
		for _, dep := range p.Deployments() {
			if _, err := dep.Rollback(); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(shipped)/float64(b.N), "ship-bytes/op")
}

func BenchmarkRolloutFullTransfer(b *testing.B) { benchRolloutTransfer(b, true) }

func BenchmarkRolloutDeltaTransfer(b *testing.B) { benchRolloutTransfer(b, false) }

// --- full experiment harness (guarded: heavyweight) -------------------------

// BenchmarkExperimentsE2Table regenerates a full experiment table per
// iteration, demonstrating the harness is benchmarkable end to end.
func BenchmarkExperimentsE2Table(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RunE2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Federated plane: flat vs hierarchical cloud fan-in ----------------

// BenchmarkFlatRound and BenchmarkHierRound100Aggregators mirror the
// committed BENCH_fed.json trajectory (internal/benchsuite.Fed): one
// round over the same 1600-client fleet, flat versus two-tier masked.
// The tracked cloud-uplink-B/op metric is the tentpole's headline — the
// hierarchical cloud tier hears 100 compact partials, not 1600 updates.
func BenchmarkFlatRound(b *testing.B) { benchsuite.FedRound(b, false) }

func BenchmarkHierRound100Aggregators(b *testing.B) { benchsuite.FedRound(b, true) }

// --- Swarm OTA distribution: registry-direct vs peer-to-peer -----------

// BenchmarkRolloutRegistryDirect and BenchmarkRolloutSwarm mirror the
// committed BENCH_swarm.json trajectory (internal/benchsuite.Swarm): one
// fleet-wide OTA rollout over a 1k-device standard fleet with a fixed
// 16-device canary, registry-direct versus peer-to-peer chunk swarm. The
// tracked registry-egress-B/device metric is the tentpole's headline —
// in swarm mode the registry funds only the canary (plus last-resort
// chunks), so its per-device cost collapses as the fleet grows.
func BenchmarkRolloutRegistryDirect(b *testing.B) { benchsuite.SwarmRollout(b, 1000, false) }

func BenchmarkRolloutSwarm(b *testing.B) { benchsuite.SwarmRollout(b, 1000, true) }
