// Command experiments regenerates the reproduction's experiment tables
// (E1–E11; see DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	experiments            # run everything
//	experiments -run E6    # one experiment
//	experiments -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tinymlops/internal/experiments"
)

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiment IDs (E1..E11) or 'all'")
	listFlag := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *listFlag {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-10s %s\n", e.ID, e.Paper, e.Title)
		}
		return
	}
	if *runFlag == "all" {
		if err := experiments.RunAll(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	for _, id := range strings.Split(*runFlag, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		if err := experiments.RunOne(os.Stdout, e); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
}
