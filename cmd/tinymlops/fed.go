package main

import (
	"fmt"

	"tinymlops/internal/dataset"
	"tinymlops/internal/engine"
	"tinymlops/internal/faults"
	"tinymlops/internal/fed"
	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

// cmdFed runs a hierarchical federated-learning simulation: a synthetic
// client fleet sharded across edge aggregators trains a small classifier
// for a few masked two-tier rounds under configurable dropout/straggler
// weather, printing a per-round, per-tier table.
func cmdFed(args []string) error {
	fs := newFlagSet("fed")
	clients := fs.Int("clients", 1000, "fleet size (synthetic clients)")
	aggregators := fs.Int("aggregators", 10, "edge aggregator count (cohorts)")
	rounds := fs.Int("rounds", 3, "federated rounds")
	dropout := fs.Float64("dropout", 0.1, "per-round client/aggregator dropout probability")
	straggler := fs.Float64("straggler", 0.1, "per-round straggler probability (8x slowdown, deadline 4x)")
	secure := fs.Bool("secure", true, "mask edge uploads (pairwise secure aggregation)")
	codecName := fs.String("codec", "topk", "update codec: none, int8, ternary, topk")
	workers := fs.Int("workers", 0, "worker pool size (0 = all cores); results are identical at any value")
	seed := fs.Uint64("seed", 1, "root seed for data, sampling and weather")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clients < *aggregators {
		return fmt.Errorf("-clients %d < -aggregators %d", *clients, *aggregators)
	}
	var codec fed.Codec
	switch *codecName {
	case "none":
		codec = fed.NoneCodec{}
	case "int8":
		codec = fed.Int8Codec{}
	case "ternary":
		codec = fed.TernaryCodec{}
	case "topk":
		codec = fed.TopKCodec{Ratio: 0.25}
	default:
		return fmt.Errorf("unknown codec %q", *codecName)
	}

	rng := tensor.NewRNG(*seed)
	pool, test := dataset.Blobs(rng, 4**clients+400, 4, 3, 4).Split(0.9, rng)
	shards := dataset.PartitionIID(rng, pool, *clients)
	fleet := fed.MakeClients(pool, shards, "fedc")
	global := nn.NewNetwork([]int{4}, nn.NewDense(4, 16, rng), nn.NewReLU(), nn.NewDense(16, 3, rng))

	plane := faults.New(faults.ChaosConfig{
		Seed: *seed ^ 0xfed, PDropout: *dropout, PStraggler: *straggler, StragglerFactor: 8,
	})
	ff := plane.FedFaults()
	hc, err := fed.NewHierCoordinator(global, fleet, test.X, test.Y, fed.HierConfig{
		Config: fed.Config{
			Rounds: *rounds, LocalEpochs: 1, LocalBatch: 8, LR: 0.1, Seed: *seed,
			Engine: engine.New(engine.Config{Workers: *workers}),
			Codec:  codec, Faults: ff, StragglerDeadline: 4,
		},
		Aggregators: *aggregators, SecureAgg: *secure,
		AggFaults: ff, AggStragglerDeadline: 4,
	})
	if err != nil {
		return err
	}

	fmt.Printf("hierarchical federated learning: %d clients, %d aggregators, codec=%s, secure=%v\n\n",
		*clients, *aggregators, codec.Name(), *secure)
	fmt.Println("round  part  drop  late  aggDrop aggLate    edge-up   cloud-up   downlink  accuracy")
	for r := 0; r < *rounds; r++ {
		s, err := hc.RunRound()
		if err != nil {
			return err
		}
		fmt.Printf("%5d %5d %5d %5d  %6d %7d %9dB %9dB %9dB %9.3f\n",
			r+1, s.Participants, s.Dropouts, s.Late, s.AggDropouts, s.AggLate,
			s.EdgeUplinkBytes, s.CloudUplinkBytes, s.DownlinkBytes, s.TestAccuracy)
	}
	fmt.Printf("\nfinal accuracy %.3f over %d rounds; the cloud tier heard %d partials per round instead of %d client updates\n",
		nn.Evaluate(hc.Global, test.X, test.Y), *rounds, *aggregators, *clients)
	return nil
}
