package main

import (
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"tinymlops"
)

// cmdRollout simulates the full staged-OTA lifecycle: train and deploy v1
// across a fleet, fine-tune the head into v2, then drive a canary → cohort
// → fleet rollout whose waves are gated on post-update health. With -drift
// the cohort wave bakes on a shifted input distribution, trips the drift
// gate and demonstrates the rollback path.
func cmdRollout(args []string) error {
	fs := newFlagSet("rollout")
	perProfile := fs.Int("devices", 2, "devices per hardware profile")
	seed := fs.Uint64("seed", 42, "random seed")
	workers := fs.Int("workers", 0, "worker pool size (0 = all cores)")
	drift := fs.Bool("drift", false, "inject drifted traffic into the cohort wave (forces a rollback)")
	full := fs.Bool("full", false, "force full-artifact transfers (disable weight deltas)")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	rng := tinymlops.NewRNG(*seed)
	ds := tinymlops.Blobs(rng, 1500, 4, 3, 5)
	train, test := ds.Split(0.8, rng)
	net := tinymlops.NewNetwork([]int{4},
		tinymlops.Dense(4, 16, rng), tinymlops.ReLU(), tinymlops.Dense(16, 3, rng))
	if _, err := tinymlops.Train(net, train.X, train.Y, tinymlops.TrainConfig{
		Epochs: 10, BatchSize: 32, Optimizer: tinymlops.SGD(0.1).WithMomentum(0.9), RNG: rng,
	}); err != nil {
		return err
	}

	fleet, err := tinymlops.NewStandardFleet(tinymlops.FleetSpec{CountPerProfile: *perProfile, Seed: *seed})
	if err != nil {
		return err
	}
	for _, d := range fleet.Devices() {
		d.SetBehavior(1, 1, 0)
	}
	fleet.Tick()
	platform, err := tinymlops.NewPlatform(fleet, tinymlops.PlatformConfig{
		VendorKey: []byte("cli-vendor-key-0123456789abcdef0"), Seed: *seed, MinCohort: 1,
		Workers: *workers,
	})
	if err != nil {
		return err
	}
	spec := tinymlops.OptimizationSpec{Evaluate: func(n *tinymlops.Network) float64 {
		return tinymlops.Evaluate(n, test.X, test.Y)
	}}
	v1s, err := platform.Publish("ota", net, test, spec)
	if err != nil {
		return err
	}
	ids := make([]string, 0, fleet.Size())
	for _, d := range fleet.Devices() {
		ids = append(ids, d.ID)
	}
	if _, err := platform.DeployMany(ids, "ota", tinymlops.DeployConfig{
		PrepaidQueries: 1 << 20, Calibration: train,
	}); err != nil {
		return err
	}
	fmt.Printf("v1 %s deployed to %d devices\n", v1s[0].ID, len(ids))

	// Traffic rows: in-distribution for baselines, shifted for -drift.
	rows := make([][]float32, 64)
	bad := make([][]float32, 64)
	for i := range rows {
		rows[i] = make([]float32, 4)
		bad[i] = make([]float32, 4)
		for c := 0; c < 4; c++ {
			rows[i][c] = test.X.At2(i%test.Len(), c)
			bad[i][c] = rows[i][c] + 6
		}
	}
	driveTraffic := func(deviceIDs []string, data [][]float32, repeats int) {
		for _, id := range deviceIDs {
			dep, ok := platform.Deployment(id)
			if !ok {
				continue
			}
			for r := 0; r < repeats; r++ {
				dep.InferBatch(data)
			}
		}
	}
	driveTraffic(ids, rows, 2) // pre-update health baselines

	// v2: fine-tune the head only, so the OTA update is a sparse delta.
	v2net := net.Clone()
	if _, err := tinymlops.Train(v2net, train.X, train.Y, tinymlops.TrainConfig{
		Epochs: 2, BatchSize: 32, Optimizer: tinymlops.SGD(0.02), RNG: rng,
	}); err != nil {
		return err
	}
	v2s, err := platform.Publish("ota", v2net, test, spec)
	if err != nil {
		return err
	}
	fmt.Printf("v2 %s published (head fine-tune)\n\n", v2s[0].ID)

	res, err := platform.Rollout(v2s[0], tinymlops.RolloutConfig{
		Seed:        *seed,
		Calibration: train,
		ForceFull:   *full,
		Bake: func(w tinymlops.RolloutWave, deviceIDs []string) error {
			data := rows
			if *drift && w.Name == "cohort" {
				data = bad
			}
			driveTraffic(deviceIDs, data, 4)
			return nil
		},
	})
	if err != nil {
		return err
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "wave\tdevices\tdelta/full\tshipped\tgate\tdetail")
	for _, w := range res.Waves {
		deltas, fulls := 0, 0
		var shipped int64
		for _, o := range w.Outcomes {
			if o.UpdateErr != "" {
				continue
			}
			shipped += o.Transfer.ShipBytes
			if o.Transfer.UsedDelta {
				deltas++
			} else {
				fulls++
			}
		}
		verdict := "PASS"
		detail := fmt.Sprintf("drift=%d err=%.2f lat=%.2fx", w.Gate.DriftAlarms, w.Gate.ErrorRate, w.Gate.LatencyRatio)
		if !w.Gate.Pass {
			verdict = "FAIL -> ROLLBACK"
			detail = strings.Join(w.Gate.Reasons, "; ")
		}
		fmt.Fprintf(tw, "%s\t%d\t%d/%d\t%d B\t%s\t%s\n",
			w.Wave.Name, len(w.DeviceIDs), deltas, fulls, shipped, verdict, detail)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fullBytes := int64(v2s[0].Metrics.SizeBytes) * int64(res.DeltaTransfers+res.FullTransfers)
	fmt.Printf("\ntransfers: %d delta, %d full; %d B shipped (full-artifact cost would be %d B)\n",
		res.DeltaTransfers, res.FullTransfers, res.TotalShipBytes, fullBytes)
	if res.Completed {
		fmt.Println("rollout completed: entire fleet on v2")
	} else {
		fmt.Println("rollout halted: failing wave reverted to v1, earlier waves keep v2")
	}
	return nil
}
