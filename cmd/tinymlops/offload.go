package main

import (
	"fmt"
	"math"
	"os"
	"text/tabwriter"
	"time"

	"tinymlops"
	"tinymlops/internal/device"
)

// cmdOffload runs the live edge–cloud offload demonstration: deploy a
// model across a heterogeneous fleet, open split-execution sessions
// against a batched cloud tier, and drive queries through a connectivity
// schedule (WiFi → cellular → offline → recovery) so the replanner
// migrates each device's cut as its uplink changes. Every answer is
// verified bit-exact against the device's own forward pass; exits
// non-zero on any mismatch.
func cmdOffload(args []string) error {
	fs := newFlagSet("offload")
	perProfile := fs.Int("devices", 1, "devices per hardware profile (6 profiles)")
	queries := fs.Int("queries", 12, "queries per device per connectivity phase")
	seed := fs.Uint64("seed", 42, "random seed")
	rtt := fs.Duration("rtt", 200*time.Microsecond, "modeled round-trip to the cloud")
	workers := fs.Int("workers", 0, "worker pool size (0 = all cores)")
	enclaved := fs.Bool("enclave", false, "watermark each device's copy and serve suffixes from the vendor enclave")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	rng := tinymlops.NewRNG(*seed)
	fleet, err := tinymlops.NewStandardFleet(tinymlops.FleetSpec{CountPerProfile: *perProfile, Seed: *seed})
	if err != nil {
		return err
	}
	devs := fleet.Devices()
	for _, d := range devs {
		d.SetNet(device.WiFi)
	}
	platform, err := tinymlops.NewPlatform(fleet, tinymlops.PlatformConfig{
		VendorKey: []byte("offload-demo-key-0123456789abcdef"), Seed: *seed, Workers: *workers,
	})
	if err != nil {
		return err
	}

	ds := tinymlops.Blobs(rng, 400, 8, 4, 4)
	net := tinymlops.NewNetwork([]int{8},
		tinymlops.Dense(8, 48, rng), tinymlops.ReLU(),
		tinymlops.Dense(48, 24, rng), tinymlops.ReLU(),
		tinymlops.Dense(24, 4, rng))
	if _, err := tinymlops.Train(net, ds.X, ds.Y, tinymlops.TrainConfig{
		Epochs: 4, BatchSize: 32, Optimizer: tinymlops.SGD(0.1), RNG: rng,
	}); err != nil {
		return err
	}
	spec := tinymlops.OptimizationSpec{Evaluate: func(n *tinymlops.Network) float64 {
		return tinymlops.Evaluate(n, ds.X, ds.Y)
	}}
	if _, err := platform.Publish("offload-demo", net, ds, spec); err != nil {
		return err
	}
	ids := make([]string, 0, len(devs))
	for _, d := range devs {
		ids = append(ids, d.ID)
	}
	deploy := tinymlops.DeployConfig{PrepaidQueries: 1 << 16}
	if *enclaved {
		// Each device gets its own watermarked copy; the cloud tier then
		// refuses plaintext suffix hosting and platform.Offload provisions
		// the per-device copies into the vendor enclave instead.
		deploy.Watermark = "offload-demo-customer"
	}
	if _, err := platform.DeployMany(ids, "offload-demo", deploy); err != nil {
		return err
	}

	cloud := tinymlops.NewOffloadCloud(tinymlops.OffloadCloudConfig{
		MaxBatch: 32, QueueCap: 4 * len(ids), Dispatchers: 2,
	})
	cloud.Start()
	defer cloud.Close()
	sessions := make([]*tinymlops.OffloadSession, len(ids))
	for i, id := range ids {
		if sessions[i], err = platform.Offload(id, tinymlops.OffloadConfig{Cloud: cloud, RTT: *rtt}); err != nil {
			return err
		}
	}

	fmt.Printf("offload: %d devices, %d queries/device/phase, rtt %v\n", len(ids), *queries, *rtt)
	if *enclaved {
		fmt.Println("enclave: per-device watermarked suffixes attested and sealed into the vendor enclave")
	}
	fmt.Println()
	es := ds.X.Size() / ds.Len()
	phases := []struct {
		name string
		net  device.NetState
	}{
		{"wifi", device.WiFi},
		{"cellular", device.Cellular},
		{"offline", device.Offline},
		{"recovery", device.WiFi},
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\tsplit\tlocal\tfallback\treplans\tuplink-B\tmean-latency")
	mismatches := 0
	for _, ph := range phases {
		for _, d := range devs {
			d.SetNet(ph.net)
		}
		var split, local, fallback, replans, actBytes int64
		var latSum time.Duration
		var served int64
		for q := 0; q < *queries; q++ {
			for i := range sessions {
				x := ds.X.Data[(q%ds.Len())*es : (q%ds.Len())*es+es]
				out, ierr := sessions[i].Infer(x)
				if ierr != nil {
					continue // a dead battery or exhausted meter; counted nowhere
				}
				served++
				latSum += out.Latency
				switch out.Split.Mode {
				case tinymlops.OffloadSplit:
					split++
				case tinymlops.OffloadLocal:
					local++
				case tinymlops.OffloadFallback:
					fallback++
				}
				if out.Split.Replanned {
					replans++
				}
				actBytes += out.Split.ActivationBytes
				dep, _ := platform.Deployment(ids[i])
				want := dep.Model().Predict(tinymlops.FromSlice(append([]float32(nil), x...), 1, es))
				for j, v := range out.Split.Logits {
					if math.Float32bits(v) != math.Float32bits(want.Data[j]) {
						mismatches++
						break
					}
				}
			}
		}
		mean := time.Duration(0)
		if served > 0 {
			mean = latSum / time.Duration(served)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%v\n",
			ph.name, split, local, fallback, replans, actBytes, mean)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Println()
	cs := cloud.Stats()
	occupancy := 0.0
	if cs.Batches > 0 {
		occupancy = float64(cs.Served) / float64(cs.Batches)
	}
	fmt.Printf("cloud: %d suffix requests in %d batches (mean occupancy %.1f, max %d), %d shed, peak queue %d\n",
		cs.Served, cs.Batches, occupancy, cs.MaxBatchSize, cs.Shed, cs.MaxQueueDepth)
	var used uint64
	for _, id := range ids {
		if dep, ok := platform.Deployment(id); ok {
			used += dep.Meter.Used()
		}
	}
	fmt.Printf("metering: %d queries charged across the fleet (offloaded queries stay pay-per-query)\n", used)
	if mismatches > 0 {
		return fmt.Errorf("offload: %d answers were not bit-exact with the on-device forward", mismatches)
	}
	fmt.Println("bit-exactness: every answer identical to the on-device forward pass")
	return nil
}
