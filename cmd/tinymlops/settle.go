package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"tinymlops"
)

// cmdSettle runs the verified pay-per-query settlement scenario: a fleet
// serves metered traffic through a staged rollout, every deployment
// attests a deterministic sample of its charges with sum-check proofs,
// and the whole fleet settles over TCP against the batch-verifying
// settler — with a configurable fraction of devices injecting billing
// fraud (overclaimed ticks, replayed proofs, wrong-version relabeling).
// Exits non-zero if any tampered report settles or any honest report is
// rejected.
func cmdSettle(args []string) error {
	fs := newFlagSet("settle")
	devices := fs.Int("devices", 90, "fleet size (rounded up to a multiple of the 6 profiles)")
	seed := fs.Uint64("seed", 42, "platform seed")
	chaosSeed := fs.Uint64("chaos-seed", 0, "fault seed (0 = seed+1)")
	workers := fs.Int("workers", 0, "worker pool size (0 = all cores)")
	overclaim := fs.Float64("overclaim", 0.10, "probability a device inflates its tick count")
	replay := fs.Float64("replay", 0.10, "probability a device replays stale proofs")
	wrongVersion := fs.Float64("wrong-version", 0.10, "probability a device relabels proofs to another model version")
	all := fs.Bool("all", false, "print every device's verdict, not just the flagged ones")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	if *chaosSeed == 0 {
		*chaosSeed = *seed + 1
	}
	fmt.Printf("settle: %d devices, seed %d/%d, fraud overclaim %.0f%% replay %.0f%% wrong-version %.0f%%\n\n",
		*devices, *seed, *chaosSeed, *overclaim*100, *replay*100, *wrongVersion*100)

	res, err := tinymlops.RunChaosScenario(tinymlops.ChaosScenarioConfig{
		Devices: *devices, Workers: *workers, Seed: *seed,
		Chaos: tinymlops.ChaosConfig{
			Seed:               *chaosSeed,
			POverclaim:         *overclaim,
			PProofReplay:       *replay,
			PWrongVersionProof: *wrongVersion,
		},
	})
	if err != nil {
		return err
	}
	s := res.Settlement
	if s == nil {
		return fmt.Errorf("settle: scenario produced no settlement report")
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "device\tfraud\tverdict\tproofs\tack-seq\treason")
	for _, vd := range s.Verdicts {
		if !*all && !vd.Injected && vd.OK {
			continue
		}
		fraud := "-"
		if vd.Injected {
			fraud = ""
			if vd.Overclaim {
				fraud += "overclaim "
			}
			if vd.ProofReplay {
				fraud += "replay "
			}
			if vd.WrongVersionProof {
				fraud += "wrong-version "
			}
			fraud = fraud[:len(fraud)-1]
		}
		verdict := "SETTLED"
		if !vd.OK {
			verdict = "REJECTED"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%s\n",
			vd.DeviceID, fraud, verdict, vd.ProofsChecked, vd.AckSeq, vd.Reason)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Printf("\nsettled: %d/%d honest devices, %d inference proofs batch-verified\n",
		s.Settled, s.Devices-s.FraudInjected, s.ProofsChecked)
	fmt.Printf("fraud: %d injected (%d overclaim, %d replay, %d wrong-version), %d caught\n",
		s.FraudInjected, s.Overclaims, s.Replays, s.WrongVersions, s.FraudCaught)
	fmt.Printf("audit: %d settlements inspected, %d flagged as fraud\n",
		res.Audit.SettlementsChecked, res.Audit.FraudFlagged)
	if !res.Audit.OK() {
		for _, v := range res.Audit.Violations {
			fmt.Println("  VIOLATION:", v)
		}
		return fmt.Errorf("settle: %d invariant violations", res.Audit.ViolationCount)
	}
	fmt.Printf("fingerprint: %s (bit-identical at any -workers)\n", res.Fingerprint)
	return nil
}
