package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"tinymlops"
)

// cmdChaos runs the deterministic chaos experiment: deploy v1 to a
// fleet, publish v2, drive a staged rollout under injected faults
// (churn, network drops, battery death, mid-flash install crashes,
// telemetry loss), reconcile the stragglers and audit every fleet
// invariant. Exits non-zero if any device fails to converge or any
// invariant is violated.
func cmdChaos(args []string) error {
	fs := newFlagSet("chaos")
	devices := fs.Int("devices", 600, "fleet size (rounded up to a multiple of the 6 profiles)")
	seed := fs.Uint64("seed", 42, "platform seed")
	chaosSeed := fs.Uint64("chaos-seed", 0, "fault seed (0 = seed+1)")
	workers := fs.Int("workers", 0, "worker pool size (0 = all cores)")
	churn := fs.Float64("churn", 0.05, "per-round device churn probability")
	drop := fs.Float64("drop", 0.10, "per-round network drop probability")
	spike := fs.Float64("spike", 0.15, "per-round latency spike probability")
	battery := fs.Float64("battery", 0.03, "per-round battery death probability")
	crash := fs.Float64("crash", 0.20, "per-install-attempt mid-flash crash probability")
	tloss := fs.Float64("telemetry-loss", 0.10, "per-round telemetry loss probability")
	retries := fs.Int("retries", 3, "update attempts per device per wave")
	useSwarm := fs.Bool("swarm", false, "distribute the OTA peer-to-peer: registry seeds the canary, later waves fetch chunks from updated neighbors")
	peerDrop := fs.Float64("peerdrop", 0.15, "per-chunk-attempt swarm peer loss probability (with -swarm)")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	if *chaosSeed == 0 {
		*chaosSeed = *seed + 1
	}
	mode := "registry-direct"
	if *useSwarm {
		mode = "swarm"
	}
	fmt.Printf("chaos: %d devices, seed %d/%d, churn %.0f%%, drop %.0f%%, crash %.0f%%, %s OTA\n\n",
		*devices, *seed, *chaosSeed, *churn*100, *drop*100, *crash*100, mode)

	cfg := tinymlops.ChaosScenarioConfig{
		Devices: *devices, Workers: *workers, Seed: *seed,
		UpdateAttempts: *retries,
		Chaos: tinymlops.ChaosConfig{
			Seed: *chaosSeed, PChurn: *churn, PDrop: *drop, PSpike: *spike,
			PBatteryDeath: *battery, PCrash: *crash, PTelemetryLoss: *tloss,
		},
	}
	if *useSwarm {
		cfg.SwarmRollout = true
		cfg.Chaos.PPeerDrop = *peerDrop
	}
	res, err := tinymlops.RunChaosScenario(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("v1 %s -> v2 %s across %d devices\n\n", res.V1.ID, res.V2.ID, res.FleetSize)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "wave\tdevices\toffline\tchurned\tspikes\tdead-batt\tupdate-fails\tgate")
	for i, w := range res.Rollout.Waves {
		verdict := "PASS"
		if !w.Gate.Pass {
			verdict = "FAIL"
		}
		if i >= len(res.WaveWeather) {
			break // an empty wave imposes no weather
		}
		rw := res.WaveWeather[i]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			w.Wave.Name, len(w.DeviceIDs), rw.Offline, rw.Churned,
			rw.LatencySpikes, rw.BatteryDeaths, w.Gate.UpdateFailures, verdict)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Printf("\nfaults injected: %d mid-flash crashes over %d install attempts, %d telemetry records lost\n",
		res.Crashes, res.InstallAttempts, res.TelemetryLost)
	fmt.Printf("healed: %d updates recovered by in-wave retries, %d by reconciliation sweeps\n",
		res.RetriedUpdates, res.ReconcileUpdated)
	fmt.Printf("transfers: %d delta, %d full; %d B shipped\n",
		res.Rollout.DeltaTransfers, res.Rollout.FullTransfers, res.Rollout.TotalShipBytes)
	fmt.Printf("converged: %d/%d devices on v2\n\n", res.Converged, res.FleetSize)

	if res.Swarm != nil {
		fmt.Println("swarm egress by wave:")
		stw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(stw, "wave\tregistry-B\tpeer-B\tpeer-share")
		for _, wb := range res.Swarm.WaveEgress {
			total := wb.RegistryBytes + wb.PeerBytes
			share := 0.0
			if total > 0 {
				share = float64(wb.PeerBytes) / float64(total)
			}
			fmt.Fprintf(stw, "%s\t%d\t%d\t%.0f%%\n", wb.Wave, wb.RegistryBytes, wb.PeerBytes, share*100)
		}
		if err := stw.Flush(); err != nil {
			return err
		}
		st := res.Swarm.Stats
		fmt.Printf("swarm ledger: %d transfers (%d resumed), %d B delivered = %d B registry + %d B peers\n",
			st.Transfers, st.Resumed, st.DeliveredBytes, st.RegistryEgressBytes, st.PeerBytes)
		fmt.Printf("              %d chunks verified, %d hash rejects, %d peer drops healed, %d conservation violations\n\n",
			st.ChunksVerified, st.HashRejects, st.MidChunkDrops, st.ConservationViolations)
	}

	fmt.Println(res.Audit.String())
	if !res.Audit.OK() {
		for _, v := range res.Audit.Violations {
			fmt.Println("  VIOLATION:", v)
		}
		return fmt.Errorf("chaos: %d invariant violations", res.Audit.ViolationCount)
	}
	fmt.Printf("fingerprint: %s (bit-identical at any -workers)\n", res.Fingerprint)
	return nil
}
