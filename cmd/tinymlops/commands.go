package main

import (
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"tinymlops"
	"tinymlops/internal/compat"
	"tinymlops/internal/nn"
)

// taskDataset builds one of the named synthetic tasks.
func taskDataset(task string, rng *tinymlops.RNG) (*tinymlops.Dataset, error) {
	switch task {
	case "blobs":
		return tinymlops.Blobs(rng, 2000, 8, 4, 3), nil
	case "rings":
		return tinymlops.Rings(rng, 2000, 3, 0.1), nil
	case "keywords":
		return tinymlops.KeywordSeq(rng, 2000, 32, 4, 0.1, 0), nil
	case "vibration":
		return tinymlops.VibrationAnomaly(rng, 2000, 32, 0.3, 0), nil
	default:
		return nil, fmt.Errorf("unknown task %q (blobs|rings|keywords|vibration)", task)
	}
}

func cmdTrain(args []string) error {
	fs := newFlagSet("train")
	task := fs.String("task", "blobs", "synthetic task: blobs|rings|keywords|vibration")
	out := fs.String("out", "model.tmln", "output artifact path")
	hidden := fs.Int("hidden", 32, "hidden layer width")
	epochs := fs.Int("epochs", 10, "training epochs")
	seed := fs.Uint64("seed", 42, "random seed")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	rng := tinymlops.NewRNG(*seed)
	ds, err := taskDataset(*task, rng)
	if err != nil {
		return err
	}
	train, test := ds.Split(0.8, rng)
	features := train.ExampleShape()[0]
	net := tinymlops.NewNetwork([]int{features},
		tinymlops.Dense(features, *hidden, rng), tinymlops.ReLU(),
		tinymlops.Dense(*hidden, ds.NumClasses, rng))
	if _, err := tinymlops.Train(net, train.X, train.Y, tinymlops.TrainConfig{
		Epochs: *epochs, BatchSize: 32,
		Optimizer: tinymlops.SGD(0.1).WithMomentum(0.9), RNG: rng,
	}); err != nil {
		return err
	}
	fmt.Printf("task %s: train acc %.3f, test acc %.3f\n", *task,
		tinymlops.Evaluate(net, train.X, train.Y), tinymlops.Evaluate(net, test.X, test.Y))
	data, err := net.MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(data))
	return nil
}

func loadModel(path string) (*tinymlops.Network, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return nn.UnmarshalNetwork(data)
}

func cmdInfo(args []string) error {
	fs := newFlagSet("info")
	model := fs.String("model", "model.tmln", "model artifact path")
	fs.Parse(args) //nolint:errcheck
	net, err := loadModel(*model)
	if err != nil {
		return err
	}
	summary, err := net.Summary()
	if err != nil {
		return err
	}
	fmt.Printf("input shape: %v\n", net.InputShape)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "layer\tkind\tout shape\tMACs\tparams")
	for _, lc := range summary {
		fmt.Fprintf(tw, "%d\t%s\t%v\t%d\t%d\n", lc.Index, lc.Kind, lc.Info.OutShape, lc.Info.MACs, lc.Info.ParamCount)
	}
	tw.Flush() //nolint:errcheck
	macs, _ := net.TotalMACs()
	fmt.Printf("total: %d params, %d MACs/inference, ops %v\n", net.ParamCount(), macs, net.OpKinds())

	fmt.Println("\nmodeled per-device latency (fp32):")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, p := range tinymlops.StandardProfiles() {
		fmt.Fprintf(tw, "  %s\t%v\n", p.Name, p.InferenceLatency(macs, 32).Round(time.Microsecond))
	}
	return tw.Flush()
}

func cmdVariants(args []string) error {
	fs := newFlagSet("variants")
	model := fs.String("model", "model.tmln", "model artifact path")
	task := fs.String("task", "blobs", "task for accuracy evaluation")
	seed := fs.Uint64("seed", 42, "seed (must match training for meaningful accuracy)")
	fs.Parse(args) //nolint:errcheck
	net, err := loadModel(*model)
	if err != nil {
		return err
	}
	rng := tinymlops.NewRNG(*seed)
	ds, err := taskDataset(*task, rng)
	if err != nil {
		return err
	}
	_, test := ds.Split(0.8, rng)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tsize bytes\taccuracy\tnative exec on")
	for _, scheme := range []tinymlops.Scheme{tinymlops.Float32, tinymlops.Int8, tinymlops.Int4, tinymlops.Ternary, tinymlops.Binary} {
		candidate := net
		if scheme != tinymlops.Float32 {
			candidate, err = tinymlops.FakeQuantize(net, scheme)
			if err != nil {
				return err
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%s\n", scheme,
			quantSize(net, scheme), tinymlops.Evaluate(candidate, test.X, test.Y),
			nativeExecProfiles(scheme))
	}
	return tw.Flush()
}

func cmdExport(args []string) error {
	fs := newFlagSet("export")
	model := fs.String("model", "model.tmln", "model artifact path")
	out := fs.String("out", "model.json", "output exchange document")
	fs.Parse(args) //nolint:errcheck
	net, err := loadModel(*model)
	if err != nil {
		return err
	}
	doc, err := compat.Export(net)
	if err != nil {
		return err
	}
	data, err := doc.EncodeJSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes, exchange format v%d)\n", *out, len(data), compat.ExchangeVersion)
	return nil
}

func cmdImport(args []string) error {
	fs := newFlagSet("import")
	graph := fs.String("graph", "model.json", "exchange document path")
	out := fs.String("out", "model.tmln", "output artifact path")
	fs.Parse(args) //nolint:errcheck
	data, err := os.ReadFile(*graph)
	if err != nil {
		return err
	}
	doc, err := compat.DecodeJSON(data)
	if err != nil {
		return err
	}
	net, err := compat.Import(doc)
	if err != nil {
		return err
	}
	bin, err := net.MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, bin, 0o644); err != nil {
		return err
	}
	fmt.Printf("imported %d-param model from %s -> %s\n", net.ParamCount(), *graph, *out)
	return nil
}

func cmdSimulate(args []string) error {
	fs := newFlagSet("simulate")
	perProfile := fs.Int("devices", 1, "devices per hardware profile")
	queries := fs.Int("queries", 150, "queries per device")
	quota := fs.Uint64("quota", 100, "prepaid queries per deployment")
	seed := fs.Uint64("seed", 42, "random seed")
	workers := fs.Int("workers", 0, "fleet worker pool size (0 = all cores)")
	fs.Parse(args) //nolint:errcheck
	if *queries < 0 {
		*queries = 0
	}

	rng := tinymlops.NewRNG(*seed)
	ds := tinymlops.Blobs(rng, 1500, 4, 3, 5)
	train, test := ds.Split(0.8, rng)
	net := tinymlops.NewNetwork([]int{4},
		tinymlops.Dense(4, 16, rng), tinymlops.ReLU(), tinymlops.Dense(16, 3, rng))
	if _, err := tinymlops.Train(net, train.X, train.Y, tinymlops.TrainConfig{
		Epochs: 10, BatchSize: 32, Optimizer: tinymlops.SGD(0.1).WithMomentum(0.9), RNG: rng,
	}); err != nil {
		return err
	}
	fleet, err := tinymlops.NewStandardFleet(tinymlops.FleetSpec{CountPerProfile: *perProfile, Seed: *seed})
	if err != nil {
		return err
	}
	for _, d := range fleet.Devices() {
		d.SetBehavior(1, 1, 0)
	}
	fleet.Tick()
	platform, err := tinymlops.NewPlatform(fleet, tinymlops.PlatformConfig{
		VendorKey: []byte("cli-vendor-key-0123456789abcdef0"), Seed: *seed, MinCohort: 1,
		Workers: *workers,
	})
	if err != nil {
		return err
	}
	if _, err := platform.Publish("sim", net, test, tinymlops.DefaultOptimizationSpec(test)); err != nil {
		return err
	}

	// Deploy to every device across the platform's worker pool, then run
	// each device's whole query load as one batched burst, devices in
	// parallel. The table is identical to the old serial loop — per-device
	// metering and results are order-independent by construction.
	devs := fleet.Devices()
	eng := platform.Engine()
	type depState struct {
		dep *tinymlops.Deployment
		err error
	}
	states := make([]depState, len(devs))
	_ = eng.ForEach(len(devs), func(i int) error {
		d, derr := platform.Deploy(devs[i].ID, "sim", tinymlops.DeployConfig{
			PrepaidQueries: *quota, Calibration: train,
		})
		states[i] = depState{dep: d, err: derr}
		return nil
	})

	rows := make([][]float32, *queries)
	for i := range rows {
		row := make([]float32, 4)
		for f := 0; f < 4; f++ {
			row[f] = test.X.At2(i%test.Len(), f)
		}
		rows[i] = row
	}
	type qStat struct{ served, denied int }
	stats := make([]qStat, len(devs))
	_ = eng.ForEach(len(devs), func(i int) error {
		if states[i].err != nil || states[i].dep == nil {
			return nil
		}
		for _, o := range states[i].dep.InferBatch(rows) {
			if o.Err != nil {
				stats[i].denied++
			} else {
				stats[i].served++
			}
		}
		return nil
	})

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "device\tvariant\texec\tserved\tdenied\tbattery")
	for i, d := range devs {
		// A nil dep with a nil err means the deploy task died before
		// recording a result (the engine contains panics per task).
		if states[i].err != nil || states[i].dep == nil {
			fmt.Fprintf(tw, "%s\t(deploy failed: %v)\t\t\t\t\n", d.ID, states[i].err)
			continue
		}
		dep := states[i].dep
		fmt.Fprintf(tw, "%s\t%s/%s\t%s\t%d\t%d\t%.0f%%\n",
			d.ID, dep.Version.ID[:8], dep.Version.Scheme, dep.ExecutionScheme(),
			stats[i].served, stats[i].denied, 100*d.BatteryLevel())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	records, bytes, err := platform.SyncTelemetry()
	if err != nil {
		return err
	}
	fmt.Printf("\ntelemetry: %d records (%d bytes) across %d cohorts\n",
		records, bytes, len(platform.Aggregator.Cohorts()))
	return nil
}

// quantSize returns the packed artifact size for a scheme.
func quantSize(net *tinymlops.Network, scheme tinymlops.Scheme) int {
	return quantNetworkSize(net, scheme)
}
