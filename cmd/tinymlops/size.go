package main

import (
	"strings"

	"tinymlops"
	"tinymlops/internal/quant"
)

// quantNetworkSize reports the packed weight footprint of net at the
// given scheme's bit width.
func quantNetworkSize(net *tinymlops.Network, scheme tinymlops.Scheme) int {
	return quant.NetworkSizeBytes(net, scheme)
}

// nativeExecProfiles lists the standard hardware profiles that execute
// the scheme on native kernels (QModel for integer schemes, the float
// engine for float32); everywhere else the variant falls back to
// fake-quantized float and pays the emulation penalty.
func nativeExecProfiles(scheme tinymlops.Scheme) string {
	var names []string
	for _, p := range tinymlops.StandardProfiles() {
		if p.SupportsBits(scheme.Bits()) {
			names = append(names, p.Name)
		}
	}
	switch len(names) {
	case 0:
		return "none (fake-quant float fallback)"
	case len(tinymlops.StandardProfiles()):
		return "all profiles"
	}
	return strings.Join(names, ", ")
}
