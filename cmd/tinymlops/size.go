package main

import (
	"tinymlops"
	"tinymlops/internal/quant"
)

// quantNetworkSize reports the packed weight footprint of net at the
// given scheme's bit width.
func quantNetworkSize(net *tinymlops.Network, scheme tinymlops.Scheme) int {
	return quant.NetworkSizeBytes(net, scheme)
}
