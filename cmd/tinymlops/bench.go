package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"tinymlops/internal/benchfmt"
	"tinymlops/internal/benchsuite"
)

// cmdBench runs the tracked benchmark suite. Without -check it rewrites
// the committed BENCH_<area>.json snapshots (the trajectory's new
// baseline); with -check it diffs the fresh run against them and fails on
// any regression, which is what CI runs on every push.
func cmdBench(args []string) error {
	fs := newFlagSet("bench")
	dir := fs.String("dir", ".", "directory holding the BENCH_<area>.json snapshots")
	area := fs.String("area", "all", "suite to run: all, serving, offload, fed, swarm, protect")
	check := fs.Bool("check", false, "diff against committed snapshots instead of rewriting them")
	tol := fs.Float64("tolerance", 0.25, "fractional ns/op slack before -check fails (allocs/op gets 0.1%)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	areas := benchsuite.Areas()
	names := make([]string, 0, len(areas))
	for name := range areas {
		if *area == "all" || *area == name {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("unknown area %q", *area)
	}
	sort.Strings(names)

	var regressions []benchfmt.Regression
	for _, name := range names {
		fmt.Printf("== %s ==\n", name)
		report := benchsuite.Report(name, areas[name])
		for _, e := range report.Entries {
			fmt.Printf("  %-28s %12.0f ns/op %8d B/op %6d allocs/op\n",
				e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
			for _, k := range sortedMetricKeys(e.Metrics) {
				fmt.Printf("  %-28s %12.0f %s\n", "", e.Metrics[k], k)
			}
		}
		path := filepath.Join(*dir, "BENCH_"+name+".json")
		if !*check {
			if err := report.WriteFile(path); err != nil {
				return err
			}
			fmt.Printf("  wrote %s\n", path)
			continue
		}
		base, err := benchfmt.ReadFile(path)
		if err != nil {
			return fmt.Errorf("no committed baseline for %s (run `tinymlops bench` to create it): %w", name, err)
		}
		regs := benchfmt.Diff(base, report, *tol)
		for _, g := range regs {
			fmt.Fprintf(os.Stderr, "  REGRESSION %s\n", g)
		}
		if len(regs) == 0 {
			fmt.Printf("  ok: within +%.0f%% ns/op of baseline, no new allocations\n", *tol*100)
		}
		regressions = append(regressions, regs...)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark regression(s) vs committed baseline", len(regressions))
	}
	return nil
}

func sortedMetricKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
