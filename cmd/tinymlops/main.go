// Command tinymlops is a small operator CLI for the TinyMLOps platform:
// train demo models, inspect and convert model artifacts, derive quantized
// variants, and run a fleet simulation.
//
// Usage:
//
//	tinymlops train    -task blobs -out model.tmln
//	tinymlops info     -model model.tmln
//	tinymlops variants -model model.tmln
//	tinymlops export   -model model.tmln -out model.json
//	tinymlops import   -graph model.json -out model.tmln
//	tinymlops simulate -devices 2 -queries 150 -quota 100 -workers 8
//	tinymlops rollout  -devices 2 -drift
//	tinymlops chaos    -devices 600 -churn 0.05 -crash 0.2 -swarm
//	tinymlops offload  -devices 2 -queries 12 -rtt 200us
//	tinymlops settle   -devices 90 -overclaim 0.1 -replay 0.1 -wrong-version 0.1
//	tinymlops fed      -clients 1000 -aggregators 10 -rounds 3 -secure
//	tinymlops bench    -check -tolerance 0.25
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "variants":
		err = cmdVariants(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "import":
		err = cmdImport(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "rollout":
		err = cmdRollout(os.Args[2:])
	case "chaos":
		err = cmdChaos(os.Args[2:])
	case "offload":
		err = cmdOffload(os.Args[2:])
	case "settle":
		err = cmdSettle(os.Args[2:])
	case "fed":
		err = cmdFed(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `tinymlops — TinyMLOps platform CLI

subcommands:
  train      train a model on a synthetic task and write a .tmln artifact
  info       describe a model artifact (layers, params, MACs, op kinds)
  variants   derive quantized variants and print their size/accuracy table
  export     convert a .tmln artifact to the JSON exchange format
  import     convert a JSON exchange document back to a .tmln artifact
  simulate   run a fleet deployment + metered inference simulation
  rollout    run a staged OTA update (canary -> cohort -> fleet) with
             health gates, delta transfers and rollback on failure
  chaos      run a staged rollout under deterministic fault injection
             (churn, flaky networks, mid-flash crashes) and audit every
             fleet invariant; -swarm distributes the OTA peer-to-peer
             with a byte-conservation audit
  offload    serve queries through the live edge-cloud offload plane
             (split execution, batched cloud suffix service, replanning
             as connectivity changes), verified bit-exact
  settle     run verified pay-per-query settlement across a fleet with
             injected billing fraud (overclaimed ticks, replayed proofs,
             wrong-version relabeling) and print per-device verdicts
  fed        run hierarchical federated learning over a synthetic client
             fleet: edge-aggregator cohorts, masked (secure) aggregation,
             compressed updates, dropout/straggler weather on both tiers
  bench      run the tracked serving/offload/fed/swarm benchmark suite and rewrite
             the committed BENCH_<area>.json snapshots, or with -check
             fail on any ns/op or allocs/op regression against them

run 'tinymlops <subcommand> -h' for flags`)
}

func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return fs
}
