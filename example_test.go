package tinymlops_test

import (
	"fmt"
	"math"
	"net"
	"time"

	"tinymlops"
)

// ExampleBestSplit plans an edge–cloud split for a wearable-class device:
// on a fat uplink the cut moves cloud-ward, offline it is forced to the
// full-edge plan.
func ExampleBestSplit() {
	rng := tinymlops.NewRNG(1)
	net := tinymlops.NewNetwork([]int{64},
		tinymlops.Dense(64, 128, rng), tinymlops.ReLU(),
		tinymlops.Dense(128, 8, rng))
	costs, err := net.Summary()
	if err != nil {
		panic(err)
	}
	dev, _ := tinymlops.ProfileByName("m4-wearable")
	cloud, _ := tinymlops.ProfileByName("edge-gateway")

	best, curve, err := tinymlops.BestSplit(costs, dev, cloud, 32, 100e6, 100*time.Microsecond, 64*4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fat pipe: %d candidate plans, best cut %d\n", len(curve), best.Cut)

	offline, _, err := tinymlops.BestSplit(costs, dev, cloud, 32, 0, 0, 64*4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("offline: best cut %d (all %d layers on-device)\n", offline.Cut, len(costs))
	// Output:
	// fat pipe: 4 candidate plans, best cut 0
	// offline: best cut 3 (all 3 layers on-device)
}

// ExamplePlatform_Offload deploys a model, opens a split-execution
// session against a cloud tier, and shows that the offloaded answer is
// identical to the device's own forward pass — partitioned execution
// changes where compute happens, never what it computes.
func ExamplePlatform_Offload() {
	rng := tinymlops.NewRNG(2)
	fleet, err := tinymlops.NewStandardFleet(tinymlops.FleetSpec{CountPerProfile: 1, Seed: 2})
	if err != nil {
		panic(err)
	}
	for _, d := range fleet.Devices() {
		d.SetBehavior(1, 1, 0) // on a charger, on WiFi
	}
	fleet.Tick()
	platform, err := tinymlops.NewPlatform(fleet, tinymlops.PlatformConfig{
		VendorKey: []byte("example-vendor-key-0123456789abc"), Seed: 2,
	})
	if err != nil {
		panic(err)
	}

	ds := tinymlops.Blobs(rng, 200, 4, 3, 5)
	net := tinymlops.NewNetwork([]int{4},
		tinymlops.Dense(4, 16, rng), tinymlops.ReLU(), tinymlops.Dense(16, 3, rng))
	spec := tinymlops.OptimizationSpec{Evaluate: func(n *tinymlops.Network) float64 {
		return tinymlops.Evaluate(n, ds.X, ds.Y)
	}}
	if _, err := platform.Publish("demo", net, ds, spec); err != nil {
		panic(err)
	}
	dep, err := platform.Deploy("m4-wearable-00", "demo", tinymlops.DeployConfig{PrepaidQueries: 10})
	if err != nil {
		panic(err)
	}

	cloud := tinymlops.NewOffloadCloud(tinymlops.OffloadCloudConfig{})
	cloud.Start()
	defer cloud.Close()
	sess, err := platform.Offload("m4-wearable-00", tinymlops.OffloadConfig{
		Cloud:  cloud,
		Plan:   &tinymlops.SplitPlan{Cut: 1}, // ship the 16-float hidden activation
		Replan: tinymlops.OffloadReplanConfig{Disabled: true},
	})
	if err != nil {
		panic(err)
	}

	x := ds.X.Data[:4]
	out, err := sess.Infer(x)
	if err != nil {
		panic(err)
	}
	local := dep.Model().Predict(tinymlops.FromSlice(append([]float32(nil), x...), 1, 4))
	fmt.Printf("mode=%s cut=%d\n", out.Split.Mode, out.Split.Cut)
	fmt.Printf("label matches on-device forward: %v\n", out.Label == local.ArgMaxRows()[0])
	fmt.Printf("meter used: %d\n", dep.Meter.Used())
	// Output:
	// mode=split cut=1
	// label matches on-device forward: true
	// meter used: 1
}

// ExamplePlatform_integerServing deploys the same model line to two
// policy cohorts: an int8-pinned deployment on NPU-class hardware serves
// through the native integer kernels (and the cost model charges the
// native int8 rate), while a float32-pinned deployment stays on the float
// engine.
func ExamplePlatform_integerServing() {
	rng := tinymlops.NewRNG(7)
	fleet, err := tinymlops.NewStandardFleet(tinymlops.FleetSpec{CountPerProfile: 1, Seed: 7})
	if err != nil {
		panic(err)
	}
	for _, d := range fleet.Devices() {
		d.SetBehavior(1, 1, 0)
	}
	fleet.Tick()
	platform, err := tinymlops.NewPlatform(fleet, tinymlops.PlatformConfig{
		VendorKey: []byte("example-vendor-key-0123456789abc"), Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	ds := tinymlops.Blobs(rng, 200, 4, 2, 4)
	net := tinymlops.NewNetwork([]int{4}, tinymlops.Dense(4, 8, rng), tinymlops.ReLU(), tinymlops.Dense(8, 2, rng))
	if _, err := platform.Publish("kw", net, ds, tinymlops.OptimizationSpec{
		Schemes:  []tinymlops.Scheme{tinymlops.Int8},
		Evaluate: func(n *tinymlops.Network) float64 { return tinymlops.Evaluate(n, ds.X, ds.Y) },
	}); err != nil {
		panic(err)
	}

	depInt, err := platform.Deploy("npu-board-00", "kw", tinymlops.DeployConfig{
		PrepaidQueries: 10,
		Policy:         tinymlops.SelectionPolicy{Schemes: []tinymlops.Scheme{tinymlops.Int8}},
	})
	if err != nil {
		panic(err)
	}
	depFloat, err := platform.Deploy("phone-00", "kw", tinymlops.DeployConfig{
		PrepaidQueries: 10,
		Policy:         tinymlops.SelectionPolicy{Schemes: []tinymlops.Scheme{tinymlops.Float32}},
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("npu-board-00: variant %s, executes %s\n", depInt.Version.Scheme, depInt.ExecutionScheme())
	fmt.Printf("phone-00: variant %s, executes %s\n", depFloat.Version.Scheme, depFloat.ExecutionScheme())
	caps := depInt.Device().Caps
	macs := depInt.Version.Metrics.MACs
	fmt.Printf("npu charges %v natively vs %v at float32\n",
		caps.InferenceLatency(macs, 8), caps.InferenceLatency(macs, 32))
	// Output:
	// npu-board-00: variant int8, executes int8
	// phone-00: variant float32, executes float32
	// npu charges 3ns natively vs 400ns at float32
}

// ExamplePlatform_verifiedSettlement runs the verifiable pay-per-query
// loop: a verified-billing deployment attests a deterministic sample of
// its metered charges with sum-check proofs, the settlement report
// carries them over TCP, and the vendor's settler batch-verifies every
// proof before accepting the usage claim. A report whose tick count was
// inflated afterwards is rejected — the forged chain entries re-root the
// proof sample onto charges the device cannot prove.
func ExamplePlatform_verifiedSettlement() {
	rng := tinymlops.NewRNG(11)
	fleet, err := tinymlops.NewStandardFleet(tinymlops.FleetSpec{CountPerProfile: 1, Seed: 11})
	if err != nil {
		panic(err)
	}
	for _, d := range fleet.Devices() {
		d.SetBehavior(1, 1, 0)
	}
	fleet.Tick()
	platform, err := tinymlops.NewPlatform(fleet, tinymlops.PlatformConfig{
		VendorKey: []byte("example-vendor-key-0123456789abc"), Seed: 11,
		VerifiedBilling: true, AttestationRate: 2, // prove every ~2nd charge
	})
	if err != nil {
		panic(err)
	}
	ds := tinymlops.Blobs(rng, 200, 4, 2, 4)
	model := tinymlops.NewNetwork([]int{4},
		tinymlops.Dense(4, 8, rng), tinymlops.ReLU(), tinymlops.Dense(8, 2, rng))
	if _, err := platform.Publish("vb", model, ds, tinymlops.DefaultOptimizationSpec(ds)); err != nil {
		panic(err)
	}
	dep, err := platform.Deploy("phone-00", "vb", tinymlops.DeployConfig{PrepaidQueries: 100})
	if err != nil {
		panic(err)
	}
	x := make([]float32, 4)
	for i := 0; i < 8; i++ {
		for f := 0; f < 4; f++ {
			x[f] = ds.X.At2(i, f)
		}
		if _, err := dep.Infer(x); err != nil {
			panic(err)
		}
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := tinymlops.ServeSettlement(l, platform)
	defer srv.Close()

	report, err := dep.Meter.BuildAttestedReport()
	if err != nil {
		panic(err)
	}
	receipt, err := tinymlops.SettleAttestedOverTCP(srv.Addr(), report)
	if err != nil {
		panic(err)
	}
	fmt.Printf("honest: ok=%v acked=%d proofs-verified=%d\n",
		receipt.OK, receipt.AckSeq, receipt.ProofsChecked)
	dep.Meter.Acknowledge(receipt.AckSeq)

	// A fresh window, inflated before submission: chain-valid forged
	// entries, but the re-rooted proof sample demands inference the
	// device never ran.
	for i := 0; i < 4; i++ {
		if _, err := dep.Infer(x); err != nil {
			panic(err)
		}
	}
	forged, err := dep.Meter.BuildAttestedReport()
	if err != nil {
		panic(err)
	}
	tinymlops.TamperAttestedReport(tinymlops.FaultProfile{Overclaim: true}, &forged)
	rejected, err := tinymlops.SettleAttestedOverTCP(srv.Addr(), forged)
	if err != nil {
		panic(err)
	}
	fmt.Printf("inflated: ok=%v reason=%q\n", rejected.OK, rejected.Reason)
	// Output:
	// honest: ok=true acked=8 proofs-verified=6
	// inflated: ok=false reason="inference proof rejected"
}

// ExamplePlatform_hierarchicalFed runs a hierarchical federated update of
// a published model line: a 120-client fleet shards into 6 edge-aggregator
// cohorts, every edge uplink is masked (the aggregator sees only the
// cohort sum), and the cloud hears one compact partial per aggregator —
// then the improved global publishes back as the next rollout candidate.
func ExamplePlatform_hierarchicalFed() {
	rng := tinymlops.NewRNG(13)
	fleet, err := tinymlops.NewStandardFleet(tinymlops.FleetSpec{CountPerProfile: 1, Seed: 13})
	if err != nil {
		panic(err)
	}
	platform, err := tinymlops.NewPlatform(fleet, tinymlops.PlatformConfig{
		VendorKey: []byte("example-vendor-key-0123456789abc"), Seed: 13,
	})
	if err != nil {
		panic(err)
	}
	ds := tinymlops.Blobs(rng, 1000, 4, 3, 4)
	spec := tinymlops.OptimizationSpec{
		Evaluate: func(n *tinymlops.Network) float64 { return tinymlops.Evaluate(n, ds.X, ds.Y) },
	}
	global := tinymlops.NewNetwork([]int{4}, tinymlops.Dense(4, 8, rng), tinymlops.ReLU(), tinymlops.Dense(8, 3, rng))
	if _, err := platform.Publish("fed-demo", global, ds, spec); err != nil {
		panic(err)
	}

	shards := tinymlops.PartitionIID(rng, ds, 120)
	clients := tinymlops.MakeFederatedClients(ds, shards, "home")
	var cfg tinymlops.HierFederatedConfig
	cfg.Rounds = 2
	cfg.LocalEpochs = 1
	cfg.LocalBatch = 8
	cfg.LR = 0.1
	cfg.Seed = 13
	cfg.Aggregators = 6
	cfg.SecureAgg = true
	versions, stats, err := platform.HierFederatedUpdate("fed-demo", clients, ds, cfg, spec)
	if err != nil {
		panic(err)
	}
	last := stats[len(stats)-1]
	fmt.Printf("%d clients in %d cohorts, %d rounds\n", len(clients), last.Cohorts, len(stats))
	fmt.Printf("cloud uplink is %dx smaller than the edge tier's\n", last.EdgeUplinkBytes/last.CloudUplinkBytes)
	fmt.Printf("published %d new version(s) tagged %s\n", len(versions), "fed:topology=hierarchical")
	// Output:
	// 120 clients in 6 cohorts, 2 rounds
	// cloud uplink is 45x smaller than the edge tier's
	// published 1 new version(s) tagged fed:topology=hierarchical
}

// ExamplePlatform_swarmRollout distributes a staged OTA update
// peer-to-peer: the registry serves only the canary wave, every later
// wave fetches hash-verified chunks from devices updated in earlier
// waves, and the swarm's ledger proves byte conservation — every
// delivered byte attributed to exactly one source.
func ExamplePlatform_swarmRollout() {
	rng := tinymlops.NewRNG(11)
	fleet, err := tinymlops.NewStandardFleet(tinymlops.FleetSpec{CountPerProfile: 4, Seed: 11})
	if err != nil {
		panic(err)
	}
	for _, d := range fleet.Devices() {
		d.SetBehavior(1, 1, 0)
	}
	fleet.Tick()
	platform, err := tinymlops.NewPlatform(fleet, tinymlops.PlatformConfig{
		VendorKey: []byte("example-swarm-key-0123456789abcd"), Seed: 11,
	})
	if err != nil {
		panic(err)
	}
	ds := tinymlops.Blobs(rng, 200, 4, 3, 4)
	net := tinymlops.NewNetwork([]int{4}, tinymlops.Dense(4, 8, rng), tinymlops.ReLU(), tinymlops.Dense(8, 3, rng))
	spec := tinymlops.OptimizationSpec{
		Evaluate: func(n *tinymlops.Network) float64 { return tinymlops.Evaluate(n, ds.X, ds.Y) },
	}
	if _, err := platform.Publish("swarm-demo", net, ds, spec); err != nil {
		panic(err)
	}
	ids := make([]string, 0, 24)
	for _, d := range fleet.Devices() {
		ids = append(ids, d.ID)
	}
	if _, err := platform.DeployMany(ids, "swarm-demo", tinymlops.DeployConfig{
		PrepaidQueries: 100, Calibration: ds,
	}); err != nil {
		panic(err)
	}

	// v2: a fine-tune of v1 — same topology, so the OTA ships as a
	// sparse delta with its own swarm key.
	v2net := net.Clone()
	if _, err := tinymlops.Train(v2net, ds.X, ds.Y, tinymlops.TrainConfig{
		Epochs: 1, BatchSize: 32, Optimizer: tinymlops.SGD(0.05), RNG: rng,
	}); err != nil {
		panic(err)
	}
	v2s, err := platform.Publish("swarm-demo", v2net, ds, spec)
	if err != nil {
		panic(err)
	}

	sw, err := platform.NewSwarm(tinymlops.SwarmOptions{ChunkBytes: 64, Seed: 12})
	if err != nil {
		panic(err)
	}
	res, err := platform.Rollout(v2s[0], tinymlops.RolloutConfig{
		Waves: []tinymlops.RolloutWave{
			{Name: "canary", Fraction: 0.1},
			{Name: "cohort", Fraction: 0.5},
			{Name: "fleet", Fraction: 1.0},
		},
		Seed:        13,
		Gate:        tinymlops.RolloutGate{MaxErrorRate: 0.5, MaxUpdateFailures: 0},
		Calibration: ds,
		Swarm:       sw,
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("rollout completed: %v over %d waves\n", res.Completed, len(res.Waves))
	for _, w := range res.Waves {
		var reg, peer int64
		for _, o := range w.Outcomes {
			reg += o.Transfer.RegistryBytes
			peer += o.Transfer.PeerBytes
		}
		fmt.Printf("  %s: %d devices, registry-funded %v, peer-funded %v\n",
			w.Wave.Name, len(w.Outcomes), reg > 0, peer > 0)
	}
	st := sw.Stats()
	fmt.Printf("byte conservation: %v (registry + peers = delivered)\n",
		st.RegistryEgressBytes+st.PeerBytes == st.DeliveredBytes &&
			st.ConservationViolations == 0)
	fmt.Printf("chunk hashes rejected: %d, transfers still in flight: %d\n",
		st.HashRejects, sw.InFlight())
	// Output:
	// rollout completed: true over 3 waves
	//   canary: 2 devices, registry-funded true, peer-funded false
	//   cohort: 10 devices, registry-funded false, peer-funded true
	//   fleet: 12 devices, registry-funded false, peer-funded true
	// byte conservation: true (registry + peers = delivered)
	// chunk hashes rejected: 0, transfers still in flight: 0
}

// ExamplePlatform_protectedOffload exercises the protected portable
// plane end-to-end: the published model is compiled into a gas-pinned
// procvm module and registered as a variant, one device runs a
// watermarked deployment whose offload suffix executes inside the
// vendor enclave, another is pinned to the compiled module and ships the
// raw input for whole-module enclave execution — and both answers stay
// bit-identical to the deployment's own reference forward.
func ExamplePlatform_protectedOffload() {
	rng := tinymlops.NewRNG(5)
	fleet, err := tinymlops.NewStandardFleet(tinymlops.FleetSpec{CountPerProfile: 1, Seed: 5})
	if err != nil {
		panic(err)
	}
	for _, d := range fleet.Devices() {
		d.SetBehavior(1, 1, 0) // on a charger, on WiFi
	}
	fleet.Tick()
	platform, err := tinymlops.NewPlatform(fleet, tinymlops.PlatformConfig{
		VendorKey: []byte("example-vendor-key-0123456789abc"), Seed: 5,
	})
	if err != nil {
		panic(err)
	}

	ds := tinymlops.Blobs(rng, 200, 4, 3, 5)
	net := tinymlops.NewNetwork([]int{4},
		tinymlops.Dense(4, 16, rng), tinymlops.ReLU(), tinymlops.Dense(16, 3, rng))
	spec := tinymlops.OptimizationSpec{Evaluate: func(n *tinymlops.Network) float64 {
		return tinymlops.Evaluate(n, ds.X, ds.Y)
	}}
	versions, err := platform.Publish("protected", net, ds, spec)
	if err != nil {
		panic(err)
	}
	base := versions[0]

	// Compile the published artifact into a procvm module and register it
	// as a variant of the float base.
	artifact, err := platform.Registry.Load(base.ID)
	if err != nil {
		panic(err)
	}
	module, err := tinymlops.CompileProcVM(artifact, tinymlops.ProcVMCompileOptions{Name: "protected"})
	if err != nil {
		panic(err)
	}
	if _, err := platform.Registry.RegisterCompiled(base.ID, module, base.Metrics.Accuracy); err != nil {
		panic(err)
	}

	// A watermarked deployment: the per-device copy embeds the customer
	// mark, so its offload suffix must execute inside the vendor enclave.
	wmDep, err := platform.Deploy("edge-gateway-00", "protected", tinymlops.DeployConfig{
		Watermark: "acme-devices", PrepaidQueries: 10,
	})
	if err != nil {
		panic(err)
	}
	// A compiled-module deployment: the policy pins the procvm artifact
	// kind, and the deployment serves it on the gas-metered runtime.
	vmDep, err := platform.Deploy("m4-wearable-00", "protected", tinymlops.DeployConfig{
		Policy:         tinymlops.SelectionPolicy{Kinds: []string{tinymlops.ModelKindProcVM}},
		PrepaidQueries: 10,
	})
	if err != nil {
		panic(err)
	}

	cloud := tinymlops.NewOffloadCloud(tinymlops.OffloadCloudConfig{})
	cloud.Start()
	defer cloud.Close()
	wmSess, err := platform.Offload("edge-gateway-00", tinymlops.OffloadConfig{
		Cloud: cloud, Plan: &tinymlops.SplitPlan{Cut: 1},
		Replan: tinymlops.OffloadReplanConfig{Disabled: true},
	})
	if err != nil {
		panic(err)
	}
	vmSess, err := platform.Offload("m4-wearable-00", tinymlops.OffloadConfig{
		Cloud: cloud, Plan: &tinymlops.SplitPlan{Cut: 0}, // ship the raw input
		Replan: tinymlops.OffloadReplanConfig{Disabled: true},
	})
	if err != nil {
		panic(err)
	}

	x := ds.X.Data[:4]
	wmOut, err := wmSess.Infer(x)
	if err != nil {
		panic(err)
	}
	vmOut, err := vmSess.Infer(x)
	if err != nil {
		panic(err)
	}
	exact := func(got, want []float32) bool {
		for i := range got {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				return false
			}
		}
		return len(got) == len(want)
	}
	fmt.Printf("watermarked: mode=%s watermarked=%v bit-exact=%v\n",
		wmOut.Split.Mode, wmDep.Watermarked(), exact(wmOut.Split.Logits, wmDep.ReferenceLogits(x)))
	fmt.Printf("procvm: mode=%s kind=%q bit-exact=%v\n",
		vmOut.Split.Mode, vmDep.Version.Kind, exact(vmOut.Split.Logits, vmDep.ReferenceLogits(x)))
	// Output:
	// watermarked: mode=split watermarked=true bit-exact=true
	// procvm: mode=split kind="procvm" bit-exact=true
}
