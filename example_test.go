package tinymlops_test

import (
	"fmt"
	"time"

	"tinymlops"
)

// ExampleBestSplit plans an edge–cloud split for a wearable-class device:
// on a fat uplink the cut moves cloud-ward, offline it is forced to the
// full-edge plan.
func ExampleBestSplit() {
	rng := tinymlops.NewRNG(1)
	net := tinymlops.NewNetwork([]int{64},
		tinymlops.Dense(64, 128, rng), tinymlops.ReLU(),
		tinymlops.Dense(128, 8, rng))
	costs, err := net.Summary()
	if err != nil {
		panic(err)
	}
	dev, _ := tinymlops.ProfileByName("m4-wearable")
	cloud, _ := tinymlops.ProfileByName("edge-gateway")

	best, curve, err := tinymlops.BestSplit(costs, dev, cloud, 32, 100e6, 100*time.Microsecond, 64*4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fat pipe: %d candidate plans, best cut %d\n", len(curve), best.Cut)

	offline, _, err := tinymlops.BestSplit(costs, dev, cloud, 32, 0, 0, 64*4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("offline: best cut %d (all %d layers on-device)\n", offline.Cut, len(costs))
	// Output:
	// fat pipe: 4 candidate plans, best cut 0
	// offline: best cut 3 (all 3 layers on-device)
}

// ExamplePlatform_Offload deploys a model, opens a split-execution
// session against a cloud tier, and shows that the offloaded answer is
// identical to the device's own forward pass — partitioned execution
// changes where compute happens, never what it computes.
func ExamplePlatform_Offload() {
	rng := tinymlops.NewRNG(2)
	fleet, err := tinymlops.NewStandardFleet(tinymlops.FleetSpec{CountPerProfile: 1, Seed: 2})
	if err != nil {
		panic(err)
	}
	for _, d := range fleet.Devices() {
		d.SetBehavior(1, 1, 0) // on a charger, on WiFi
	}
	fleet.Tick()
	platform, err := tinymlops.NewPlatform(fleet, tinymlops.PlatformConfig{
		VendorKey: []byte("example-vendor-key-0123456789abc"), Seed: 2,
	})
	if err != nil {
		panic(err)
	}

	ds := tinymlops.Blobs(rng, 200, 4, 3, 5)
	net := tinymlops.NewNetwork([]int{4},
		tinymlops.Dense(4, 16, rng), tinymlops.ReLU(), tinymlops.Dense(16, 3, rng))
	spec := tinymlops.OptimizationSpec{Evaluate: func(n *tinymlops.Network) float64 {
		return tinymlops.Evaluate(n, ds.X, ds.Y)
	}}
	if _, err := platform.Publish("demo", net, ds, spec); err != nil {
		panic(err)
	}
	dep, err := platform.Deploy("m4-wearable-00", "demo", tinymlops.DeployConfig{PrepaidQueries: 10})
	if err != nil {
		panic(err)
	}

	cloud := tinymlops.NewOffloadCloud(tinymlops.OffloadCloudConfig{})
	cloud.Start()
	defer cloud.Close()
	sess, err := platform.Offload("m4-wearable-00", tinymlops.OffloadConfig{
		Cloud:  cloud,
		Plan:   &tinymlops.SplitPlan{Cut: 1}, // ship the 16-float hidden activation
		Replan: tinymlops.OffloadReplanConfig{Disabled: true},
	})
	if err != nil {
		panic(err)
	}

	x := ds.X.Data[:4]
	out, err := sess.Infer(x)
	if err != nil {
		panic(err)
	}
	local := dep.Model().Predict(tinymlops.FromSlice(append([]float32(nil), x...), 1, 4))
	fmt.Printf("mode=%s cut=%d\n", out.Split.Mode, out.Split.Cut)
	fmt.Printf("label matches on-device forward: %v\n", out.Label == local.ArgMaxRows()[0])
	fmt.Printf("meter used: %d\n", dep.Meter.Used())
	// Output:
	// mode=split cut=1
	// label matches on-device forward: true
	// meter used: 1
}
