// Model IP protection (§V): the full attacker/defender story on one
// deployed model — encryption at rest, per-customer watermarks (static
// white-box and dynamic trigger-set), the indirect extraction attack at
// increasing query budgets, prediction-poisoning defenses, PRADA-style
// stealing-query detection, and key-gated weight scrambling.
package main

import (
	"fmt"
	"log"

	"tinymlops"
)

func main() {
	rng := tinymlops.NewRNG(99)
	// A moderately hard 5-class task: with overlapping clusters the clone
	// quality actually depends on what the black box reveals, so the
	// defense comparison is informative.
	data := tinymlops.Blobs(rng, 2500, 8, 5, 1.6)
	train, test := data.Split(0.7, rng)

	victim := tinymlops.NewNetwork([]int{8},
		tinymlops.Dense(8, 48, rng), tinymlops.ReLU(),
		tinymlops.Dense(48, 5, rng))
	if _, err := tinymlops.Train(victim, train.X, train.Y, tinymlops.TrainConfig{
		Epochs: 12, BatchSize: 32, Optimizer: tinymlops.SGD(0.1).WithMomentum(0.9), RNG: rng,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim model accuracy: %.3f\n\n", tinymlops.Evaluate(victim, test.X, test.Y))

	// --- Encryption at rest ------------------------------------------
	fmt.Println("=== encryption at rest ===")
	artifact, err := victim.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	vendorKey := []byte("vendor-secret-key-0123456789abcd")
	sealed, err := tinymlops.EncryptModel(vendorKey, "victim-v1", artifact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  artifact %d B -> sealed %d B; flash dump is useless without the key\n",
		len(artifact), len(sealed.Ciphertext))
	if _, err := tinymlops.DecryptModel([]byte("wrong-key-aaaaaaaaaaaaaaaaaaaaaa"), sealed); err != nil {
		fmt.Println("  wrong key rejected:", err != nil)
	}

	// --- Per-customer watermarks --------------------------------------
	fmt.Println("\n=== watermarking ===")
	marked := victim.Clone()
	bits := tinymlops.WatermarkBits("customer-7", 48)
	if err := tinymlops.EmbedWatermark(marked, "customer-7", bits, tinymlops.DefaultStaticWatermarkConfig()); err != nil {
		log.Fatal(err)
	}
	got, _ := tinymlops.ExtractWatermark(marked, "customer-7", 48, tinymlops.DefaultStaticWatermarkConfig())
	fmt.Printf("  static mark: BER %.3f, accuracy cost %.3f\n",
		tinymlops.BitErrorRate(bits, got),
		tinymlops.Evaluate(victim, test.X, test.Y)-tinymlops.Evaluate(marked, test.X, test.Y))

	triggers := tinymlops.NewTriggerSet("customer-7", 30, []int{8}, 5)
	if err := tinymlops.EmbedTriggerWatermark(marked, triggers, train.X, train.Y, 6, rng); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  dynamic mark: trigger recall %.2f (innocent model: %.2f) — black-box evidence\n",
		tinymlops.VerifyTriggerWatermark(marked, triggers),
		tinymlops.VerifyTriggerWatermark(victim, triggers))

	// --- Extraction attack vs defenses ---------------------------------
	fmt.Println("\n=== indirect model stealing: clone agreement by query budget ===")
	bb := tinymlops.ModelBlackBox(victim)
	eval := test.X.RowSlice(0, 300)
	defenses := []tinymlops.Defense{
		tinymlops.NoDefense{},
		tinymlops.RoundDefense{Decimals: 1},
		tinymlops.Top1Defense{},
		tinymlops.NoiseDefense{Std: 0.08, RNG: tinymlops.NewRNG(5)},
		tinymlops.DeceptiveDefense{},
	}
	budgets := []int{40, 150, 500}
	fmt.Printf("  %-12s", "defense")
	for _, b := range budgets {
		fmt.Printf("  q=%4d", b)
	}
	fmt.Println()
	for _, d := range defenses {
		fmt.Printf("  %-12s", d.Name())
		for _, budget := range budgets {
			srng := tinymlops.NewRNG(1000 + uint64(budget))
			student := tinymlops.NewNetwork([]int{8},
				tinymlops.Dense(8, 48, srng), tinymlops.ReLU(),
				tinymlops.Dense(48, 5, srng))
			queries := train.X.RowSlice(0, budget)
			if _, err := tinymlops.ExtractModel(tinymlops.Defend(bb, d), student, queries,
				tinymlops.ExtractionConfig{Epochs: 20, LR: 0.05, RNG: srng}); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %.3f", tinymlops.Agreement(bb, tinymlops.ModelBlackBox(student), eval))
		}
		fmt.Println()
	}

	// --- Stealing-query detection --------------------------------------
	fmt.Println("\n=== PRADA-style query-stream detection ===")
	det := tinymlops.NewQueryDetector()
	for i := 0; i < 500; i++ {
		row := make([]float32, 8)
		r := rng.Intn(train.Len())
		for f := 0; f < 8; f++ {
			row[f] = train.X.At2(r, f)
		}
		det.Observe(row)
	}
	fmt.Printf("  benign client after 500 queries: flagged=%v (K²=%.1f)\n", det.Flagged(), det.Score())
	det.Reset()
	seed := make([]float32, 8)
	attackFlagged := -1
	for i := 0; i < 800; i++ {
		q := make([]float32, 8)
		if i%10 == 0 {
			r := rng.Intn(train.Len())
			for f := 0; f < 8; f++ {
				q[f] = train.X.At2(r, f)
			}
			copy(seed, q)
		} else {
			copy(q, seed)
			q[rng.Intn(8)] += 0.01
		}
		det.Observe(q)
		if det.Flagged() && attackFlagged < 0 {
			attackFlagged = i
		}
	}
	fmt.Printf("  perturbation attacker: flagged at query %d\n", attackFlagged)

	// --- Key-gated scrambling ------------------------------------------
	fmt.Println("\n=== key-gated weight scrambling ===")
	locked := victim.Clone()
	if err := tinymlops.ScrambleModel(locked, "activation-key"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  scrambled accuracy: %.3f (was %.3f)\n",
		tinymlops.Evaluate(locked, test.X, test.Y), tinymlops.Evaluate(victim, test.X, test.Y))
	if err := tinymlops.UnscrambleModel(locked, "activation-key"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  with the key: %.3f — full potential restored\n",
		tinymlops.Evaluate(locked, test.X, test.Y))
}
