// Verifiable execution gating a payment (§VI): a face-recognition-style
// model runs on an untrusted device; its answer authorizes a payment only
// if the attached sum-check proof verifies. A tampered result — the
// attacker claiming "the face matched" — is rejected without the verifier
// re-executing the network. The enclave path (MLCapsule-style) is shown as
// the alternative trade-off.
package main

import (
	"crypto/sha256"
	"fmt"
	"log"

	"tinymlops"
)

func main() {
	rng := tinymlops.NewRNG(4242)

	// An "is this the enrolled user?" classifier (2 classes).
	data := tinymlops.Blobs(rng, 1000, 16, 2, 5)
	train, test := data.Split(0.8, rng)
	model := tinymlops.NewNetwork([]int{16},
		tinymlops.Dense(16, 24, rng), tinymlops.ReLU(),
		tinymlops.Dense(24, 2, rng))
	if _, err := tinymlops.Train(model, train.X, train.Y, tinymlops.TrainConfig{
		Epochs: 12, BatchSize: 32, Optimizer: tinymlops.SGD(0.1).WithMomentum(0.9), RNG: rng,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("authorizer model accuracy: %.3f\n\n", tinymlops.Evaluate(model, test.X, test.Y))

	// The device proves a batch of authentications.
	batch := test.X.RowSlice(0, 32)
	proof, err := tinymlops.ProveInference(model, batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== honest device ===")
	fmt.Printf("  evidence size: %d bytes for 32 authentications\n", proof.SizeBytes())

	ok, stats, err := tinymlops.VerifyInference(model, batch, proof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  proof verifies: %v\n", ok)
	fmt.Printf("  verifier work: %d field mults vs %d for re-execution (%.0f× cheaper)\n",
		stats.VerifierMuls, stats.DirectMuls,
		float64(stats.DirectMuls)/float64(stats.VerifierMuls))
	if ok {
		accepted := 0
		for _, l := range proof.Output.ArgMaxRows() {
			if l == 1 {
				accepted++
			}
		}
		fmt.Printf("  payment service: %d/32 authentications accepted\n", accepted)
	}

	// A compromised device flips a decision to steal a payment.
	fmt.Println("\n=== tampered device ===")
	forged, err := tinymlops.ProveInference(model, batch)
	if err != nil {
		log.Fatal(err)
	}
	// Flip the logits of the first authentication toward "match".
	forged.Output.Set2(0, 0, -10)
	forged.Output.Set2(0, 1, +10)
	ok, _, err = tinymlops.VerifyInference(model, batch, forged)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  forged 'face matched' answer verifies: %v -> payment refused\n", ok)

	// Forging the intermediate accumulators fails too.
	forged2, _ := tinymlops.ProveInference(model, batch)
	forged2.Layers[0].Claimed[0] += 7
	ok, _, _ = tinymlops.VerifyInference(model, batch, forged2)
	fmt.Printf("  forged layer accumulator verifies:     %v -> payment refused\n", ok)

	// Alternative: run the whole model inside a (simulated) enclave.
	fmt.Println("\n=== enclave alternative (MLCapsule-style) ===")
	root := []byte("device-manufacturer-root-key-123")
	encl, err := tinymlops.NewEnclave("payment-spe", root, 2.0)
	if err != nil {
		log.Fatal(err)
	}
	macs, err := model.TotalMACs()
	if err != nil {
		log.Fatal(err)
	}
	full := encl.PlanFullEnclave(macs)
	slalom, err := encl.PlanSlalom(macs, macs/10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  full enclave: %.1f× latency; Slalom split (10%% protected): %.2f×\n",
		full.LatencyFactor, slalom.LatencyFactor)

	// Attestation: the payment service checks what the enclave runs.
	artifact, _ := model.MarshalBinary()
	meas := sha256.Sum256(artifact)
	report := encl.Attest(meas, []byte("payment-service-nonce"))
	fmt.Printf("  attestation verifies: %v\n", tinymlops.VerifyAttestation(root, report))
	report.Measurement[0] ^= 1
	fmt.Printf("  forged measurement verifies: %v\n", tinymlops.VerifyAttestation(root, report))
}
