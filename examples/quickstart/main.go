// Quickstart: the end-to-end TinyMLOps flow of Figure 1 — train a model,
// publish it (which auto-derives quantized variants), deploy the best
// variant to each device of a heterogeneous fleet, run metered and
// monitored inference at the edge, ship anonymized telemetry when devices
// reach WiFi, and settle the pay-per-query meters with the vendor.
package main

import (
	"fmt"
	"log"
	"net"

	"tinymlops"
)

func main() {
	rng := tinymlops.NewRNG(42)

	// 1. Train a small classifier on the vendor's data.
	data := tinymlops.Blobs(rng, 1200, 4, 3, 5)
	train, test := data.Split(0.8, rng)
	model := tinymlops.NewNetwork([]int{4},
		tinymlops.Dense(4, 16, rng), tinymlops.ReLU(),
		tinymlops.Dense(16, 3, rng))
	if _, err := tinymlops.Train(model, train.X, train.Y, tinymlops.TrainConfig{
		Epochs: 10, BatchSize: 32, Optimizer: tinymlops.SGD(0.1).WithMomentum(0.9), RNG: rng,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained model: test accuracy %.3f\n", tinymlops.Evaluate(model, test.X, test.Y))

	// 2. Stand up the platform over a 12-device simulated fleet.
	fleet, err := tinymlops.NewStandardFleet(tinymlops.FleetSpec{CountPerProfile: 2, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range fleet.Devices() {
		d.SetBehavior(0.8, 0.9, 0.05) // mostly charged, mostly on WiFi
	}
	fleet.Tick()
	platform, err := tinymlops.NewPlatform(fleet, tinymlops.PlatformConfig{
		VendorKey: []byte("quickstart-vendor-key-0123456789"),
		Seed:      42, MinCohort: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Publish: the optimization pipeline derives int8/int4/ternary/
	// binary variants and records accuracy, size and MACs for each.
	versions, err := platform.Publish("demo-clf", model, test, tinymlops.DefaultOptimizationSpec(test))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npublished %d versions:\n", len(versions))
	for _, v := range versions {
		fmt.Printf("  %s  %-8s acc=%.3f size=%6dB MACs=%d\n",
			v.ID, v.Scheme, v.Metrics.Accuracy, v.Metrics.SizeBytes, v.Metrics.MACs)
	}

	// 4. Deploy the best variant per device: constrained MCUs get
	// quantized models, the gateway gets the full-precision base.
	fmt.Println("\ndeployments:")
	targets := []string{"m0-sensor-00", "npu-board-00", "edge-gateway-00"}
	for _, id := range targets {
		dep, err := platform.Deploy(id, "demo-clf", tinymlops.DeployConfig{
			PrepaidQueries: 100,
			Calibration:    train,
		})
		if err != nil {
			log.Fatalf("deploy %s: %v", id, err)
		}
		fmt.Printf("  %-16s -> %s (%s, acc %.3f)\n",
			id, dep.Version.ID, dep.Version.Scheme, dep.Version.Metrics.Accuracy)
	}

	// 5. Run metered inference at the edge.
	fmt.Println("\nmetered inference on m0-sensor-00:")
	dep, _ := platform.Deployment("m0-sensor-00")
	correct, denied := 0, 0
	x := make([]float32, 4)
	for i := 0; i < 120; i++ { // quota is 100: the last 20 are denied
		for f := 0; f < 4; f++ {
			x[f] = test.X.At2(i%test.Len(), f)
		}
		res, err := dep.Infer(x)
		if err != nil {
			denied++
			continue
		}
		if res.Label == test.Y[i%test.Len()] {
			correct++
		}
	}
	fmt.Printf("  served %d queries (%d correct), denied %d after quota\n",
		120-denied, correct, denied)
	fmt.Printf("  meter: used %d / remaining %d\n", dep.Meter.Used(), dep.Meter.Remaining())

	// 6. Telemetry: aggregates only, shipped on WiFi, k-anonymized.
	records, bytes, err := platform.SyncTelemetry()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntelemetry: %d records, %d bytes uplinked\n", records, bytes)
	for _, cohort := range platform.Aggregator.Cohorts() {
		if sum, err := platform.Aggregator.Summarize(cohort); err == nil {
			fmt.Printf("  cohort %-12s devices=%d inferences=%d meanLat=%.1fµs denied=%d\n",
				cohort, sum.Devices, sum.Inferences, sum.MeanLatency, sum.Denied)
		}
	}

	// 7. Settlement: the device reconciles its hash-chained usage log.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := tinymlops.ServeSettlement(l, platform)
	defer srv.Close()
	results := platform.SettleAll(srv.Addr())
	ok := 0
	for _, err := range results {
		if err == nil {
			ok++
		}
	}
	fmt.Printf("\nsettlement: %d/%d deployments reconciled with the vendor\n", ok, len(results))
	if used, found := platform.Settler.SettledUsage(dep.Meter.Voucher().ID); found {
		fmt.Printf("  vendor-acknowledged usage for %s: %d queries\n", dep.DeviceID, used)
	}
}
