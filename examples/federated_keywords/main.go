// Federated keyword spotting (§III-D): a fleet of users with non-IID,
// speaker-shifted keyword data collaboratively improves a global model
// without sharing audio. The example compares uplink cost across update
// codecs, gates participation on charger+WiFi, and finishes with
// per-user personalization that recovers the speaker-shift loss.
package main

import (
	"fmt"
	"log"

	"tinymlops"
)

const (
	users   = 10
	seqLen  = 32
	classes = 4
)

func main() {
	rng := tinymlops.NewRNG(2026)

	// Global pool (the vendor's seed corpus) and held-out test set.
	pool := tinymlops.KeywordSeq(rng, 2000, seqLen, classes, 0.1, 0)
	train, test := pool.Split(0.8, rng)

	// Non-IID user shards: Dirichlet label skew, as in the FL literature.
	shards := tinymlops.PartitionDirichlet(rng, train, users, 0.5)
	clients := tinymlops.MakeFederatedClients(train, shards, "user")

	global := tinymlops.NewNetwork([]int{seqLen},
		tinymlops.Dense(seqLen, 32, rng), tinymlops.ReLU(),
		tinymlops.Dense(32, classes, rng))

	fmt.Println("=== federated training: codec comparison (8 rounds each) ===")
	type result struct {
		name   string
		acc    float64
		uplink int64
	}
	var results []result
	for _, codec := range []tinymlops.UpdateCodec{
		tinymlops.RawCodec{},
		tinymlops.Int8Codec{},
		tinymlops.TernaryCodec{},
		tinymlops.TopKCodec{Ratio: 0.05},
	} {
		g := global.Clone()
		// Fresh client RNG streams per run for a fair comparison.
		runClients := tinymlops.MakeFederatedClients(train, shards, "user")
		co, err := tinymlops.NewFederatedCoordinator(g, runClients, test.X, test.Y,
			tinymlops.FederatedConfig{
				Rounds: 8, LocalEpochs: 2, LocalBatch: 16, LR: 0.1,
				Codec: codec, Seed: 11,
			})
		if err != nil {
			log.Fatal(err)
		}
		stats, err := co.Run()
		if err != nil {
			log.Fatal(err)
		}
		var uplink int64
		for _, s := range stats {
			uplink += s.UplinkBytes
		}
		results = append(results, result{codec.Name(), stats[len(stats)-1].TestAccuracy, uplink})
	}
	base := float64(results[0].uplink)
	for _, r := range results {
		fmt.Printf("  codec %-10s final acc %.3f  uplink %8d B  (%.1f× smaller)\n",
			r.name, r.acc, r.uplink, base/float64(r.uplink))
	}

	// Personalization: each user fine-tunes the shared model on their own
	// pitch-shifted voice; the feature extractor stays frozen.
	fmt.Println("\n=== per-user personalization (speaker pitch shift) ===")
	gl := global.Clone()
	co, err := tinymlops.NewFederatedCoordinator(gl, clients, test.X, test.Y,
		tinymlops.FederatedConfig{Rounds: 8, LocalEpochs: 2, LocalBatch: 16, LR: 0.1, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := co.Run(); err != nil {
		log.Fatal(err)
	}
	var beforeSum, afterSum float64
	for u := 0; u < 4; u++ {
		shift := 0.2 + 0.1*float32(u)
		local := tinymlops.KeywordSeq(rng, 400, seqLen, classes, 0.1, shift)
		ltrain, ltest := local.Split(0.7, rng)
		before := tinymlops.Evaluate(co.Global, ltest.X, ltest.Y)
		personal, err := tinymlops.Personalize(co.Global, ltrain, tinymlops.PersonalizeConfig{
			FreezeLayers: 2, Epochs: 8, BatchSize: 16, LR: 0.05, RNG: rng,
		})
		if err != nil {
			log.Fatal(err)
		}
		after := tinymlops.Evaluate(personal, ltest.X, ltest.Y)
		beforeSum += before
		afterSum += after
		fmt.Printf("  user %d (pitch %+.0f%%): global %.3f -> personalized %.3f\n",
			u, shift*100, before, after)
	}
	fmt.Printf("  mean: %.3f -> %.3f (personalization gain %+.3f)\n",
		beforeSum/4, afterSum/4, (afterSum-beforeSum)/4)
}
