// Predictive maintenance (§III-B, §III-D): a vibration-anomaly model is
// deployed to machine-mounted sensors, its input distribution drifts when
// a bearing starts wearing, the on-device monitor raises the alarm without
// shipping raw data, and the platform reacts by retraining and rolling the
// new version out — first to a canary, then to the rest of the fleet.
package main

import (
	"fmt"
	"log"

	"tinymlops"
)

const window = 32

func main() {
	rng := tinymlops.NewRNG(7)

	// Train the anomaly detector on factory-floor reference data.
	reference := tinymlops.VibrationAnomaly(rng, 2000, window, 0.3, 0)
	train, test := reference.Split(0.8, rng)
	model := tinymlops.NewNetwork([]int{window},
		tinymlops.Dense(window, 24, rng), tinymlops.ReLU(),
		tinymlops.Dense(24, 2, rng))
	if _, err := tinymlops.Train(model, train.X, train.Y, tinymlops.TrainConfig{
		Epochs: 12, BatchSize: 32, Optimizer: tinymlops.SGD(0.1).WithMomentum(0.9), RNG: rng,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anomaly detector: test accuracy %.3f\n", tinymlops.Evaluate(model, test.X, test.Y))

	// Platform + fleet of machine-mounted M4 sensors.
	fleet, err := tinymlops.NewStandardFleet(tinymlops.FleetSpec{CountPerProfile: 3, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range fleet.Devices() {
		d.SetBehavior(1, 1, 0)
	}
	fleet.Tick()
	platform, err := tinymlops.NewPlatform(fleet, tinymlops.PlatformConfig{
		VendorKey: []byte("maintenance-vendor-key-012345678"), Seed: 7, MinCohort: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := platform.Publish("vibration", model, test, tinymlops.DefaultOptimizationSpec(test)); err != nil {
		log.Fatal(err)
	}
	sensors := []string{"m4-wearable-00", "m4-wearable-01", "m4-wearable-02"}
	for _, id := range sensors {
		if _, err := platform.Deploy(id, "vibration", tinymlops.DeployConfig{
			PrepaidQueries: 100000, Calibration: train,
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("deployed to %d machine sensors\n\n", len(sensors))

	// Machine 0 develops a fault: its signal statistics shift mid-stream.
	fmt.Println("=== streaming with drift onset at t=800 on sensor 0 ===")
	stream := tinymlops.NewDriftStream(rng, test, 800, tinymlops.DriftMeanShift, 1.5)
	dep, _ := platform.Deployment(sensors[0])
	alarmAt := -1
	for t := 0; t < 2400; t++ {
		x, _ := stream.Next()
		res, err := dep.Infer(x)
		if err != nil {
			log.Fatal(err)
		}
		if res.DriftAlarm && alarmAt < 0 {
			alarmAt = t
		}
	}
	if alarmAt < 0 {
		log.Fatal("drift was never detected")
	}
	fmt.Printf("  drift onset t=800, on-device alarm at t=%d (delay %d windows)\n", alarmAt, alarmAt-800)

	// Telemetry carries the alarm (aggregates only) to the fleet monitor.
	if _, _, err := platform.SyncTelemetry(); err != nil {
		log.Fatal(err)
	}
	sum, err := platform.Aggregator.Summarize("cortex-m4")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  cloud monitor: cohort %s reports %d drift alarm(s) across %d devices\n\n",
		sum.Cohort, sum.DriftAlarms, sum.Devices)

	// React: retrain on data from the new regime and roll out.
	fmt.Println("=== retrain and staged rollout ===")
	shifted := tinymlops.VibrationAnomaly(rng, 2000, window, 0.3, 0)
	// The new regime: emulate the drifted distribution the monitor saw.
	for i := range shifted.X.Data {
		shifted.X.Data[i] += 1.5
	}
	newTrain, newTest := shifted.Split(0.8, rng)
	retrained := model.Clone()
	if _, err := tinymlops.Train(retrained, newTrain.X, newTrain.Y, tinymlops.TrainConfig{
		Epochs: 8, BatchSize: 32, Optimizer: tinymlops.SGD(0.05), RNG: rng,
	}); err != nil {
		log.Fatal(err)
	}
	oldAcc := tinymlops.Evaluate(model, newTest.X, newTest.Y)
	newAcc := tinymlops.Evaluate(retrained, newTest.X, newTest.Y)
	fmt.Printf("  on the drifted regime: old model %.3f, retrained %.3f\n", oldAcc, newAcc)
	v2s, err := platform.Publish("vibration", retrained, newTest, tinymlops.DefaultOptimizationSpec(newTest))
	if err != nil {
		log.Fatal(err)
	}

	// Staged OTA rollout: one canary sensor bakes the new version on live
	// (drifted-regime) traffic; only when its health gate passes does the
	// update reach the rest of the fleet. A failing gate would roll the
	// wave back to the prior image automatically.
	res, err := platform.Rollout(v2s[0], tinymlops.RolloutConfig{
		Waves: []tinymlops.RolloutWave{
			{Name: "canary", Fraction: 0.34},
			{Name: "fleet", Fraction: 1.0},
		},
		Seed:        7,
		Calibration: newTrain,
		Bake: func(w tinymlops.RolloutWave, ids []string) error {
			// The machines keep vibrating in the new regime while we watch.
			for _, id := range ids {
				dep, ok := platform.Deployment(id)
				if !ok {
					continue
				}
				for t := 0; t < 400; t++ {
					x, _ := stream.Next()
					if _, err := dep.Infer(x); err != nil {
						return err
					}
				}
			}
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range res.Waves {
		for _, o := range w.Outcomes {
			kind := "full image"
			if o.Transfer.UsedDelta {
				kind = "delta"
			}
			fmt.Printf("  wave %-6s %s -> %s (%s, %d B)\n",
				w.Wave.Name, o.DeviceID, o.Transfer.ToID, kind, o.Transfer.ShipBytes)
		}
		verdict := "PASS"
		if !w.Gate.Pass {
			verdict = "FAIL -> rolled back: " + w.Gate.Reasons[0]
		}
		fmt.Printf("  wave %-6s gate: %s (drift alarms %d, error rate %.2f)\n",
			w.Wave.Name, verdict, w.Gate.DriftAlarms, w.Gate.ErrorRate)
	}
	if !res.Completed {
		log.Fatal("rollout did not complete on healthy traffic")
	}
	fmt.Printf("\nfleet on retrained model; %d/%d transfers were deltas, %d B shipped\n",
		res.DeltaTransfers, res.DeltaTransfers+res.FullTransfers, res.TotalShipBytes)
	fmt.Printf("registry now tracks %d versions across the incident\n",
		len(platform.Registry.Versions("vibration")))
}
