package tinymlops

import (
	"tinymlops/internal/benchfmt"
	"tinymlops/internal/nn"
	"tinymlops/internal/quant"
	"tinymlops/internal/tensor"
)

// Numeric substrate.

// Tensor is a dense, row-major float32 tensor.
type Tensor = tensor.Tensor

// RNG is the deterministic generator every stochastic component draws
// from.
type RNG = tensor.RNG

// NewRNG returns a generator seeded from seed.
func NewRNG(seed uint64) *RNG { return tensor.NewRNG(seed) }

// NewTensor returns a zero-filled tensor with the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// FromSlice wraps data in a tensor of the given shape without copying.
func FromSlice(data []float32, shape ...int) *Tensor { return tensor.FromSlice(data, shape...) }

// Neural-network engine.

// Network is a sequential neural network — the model artifact the whole
// platform manipulates.
type Network = nn.Network

// Layer is one differentiable stage of a Network.
type Layer = nn.Layer

// TrainConfig controls the mini-batch training loop.
type TrainConfig = nn.TrainConfig

// Optimizer updates parameters from gradients.
type Optimizer = nn.Optimizer

// NewNetwork returns a network over the given per-example input shape.
func NewNetwork(inputShape []int, layers ...Layer) *Network {
	return nn.NewNetwork(inputShape, layers...)
}

// Dense returns a fully connected layer with He initialization.
func Dense(in, out int, rng *RNG) Layer { return nn.NewDense(in, out, rng) }

// Conv2D returns a 2D convolution layer over [batch, c, h, w] inputs.
func Conv2D(inC, outC, kh, kw, stride, pad int, rng *RNG) Layer {
	return nn.NewConv2D(inC, outC, kh, kw, stride, pad, rng)
}

// MaxPool2D returns a max pooling layer.
func MaxPool2D(k, stride int) Layer { return nn.NewMaxPool2D(k, stride) }

// ReLU returns a rectified linear activation layer.
func ReLU() Layer { return nn.NewReLU() }

// Tanh returns a hyperbolic tangent activation layer.
func Tanh() Layer { return nn.NewTanh() }

// Sigmoid returns a logistic activation layer.
func Sigmoid() Layer { return nn.NewSigmoid() }

// Softmax returns an explicit softmax layer (training stacks usually end
// with raw logits instead).
func Softmax() Layer { return nn.NewSoftmax() }

// Flatten returns a layer reshaping [batch, ...] to [batch, features].
func Flatten() Layer { return nn.NewFlatten() }

// BatchNorm1D returns a batch normalization layer over f features.
func BatchNorm1D(f int) Layer { return nn.NewBatchNorm1D(f) }

// Dropout returns an inverted-dropout layer with drop probability p.
func Dropout(p float32, rng *RNG) Layer { return nn.NewDropout(p, rng) }

// SGD returns a stochastic gradient descent optimizer.
func SGD(lr float32) *nn.SGD { return nn.NewSGD(lr) }

// Adam returns an Adam optimizer with standard defaults.
func Adam(lr float32) *nn.Adam { return nn.NewAdam(lr) }

// Train runs mini-batch classification training with softmax
// cross-entropy.
func Train(net *Network, x *Tensor, labels []int, cfg TrainConfig) (float32, error) {
	return nn.Train(net, x, labels, cfg)
}

// Evaluate returns classification accuracy of net on (x, labels).
func Evaluate(net *Network, x *Tensor, labels []int) float64 {
	return nn.Evaluate(net, x, labels)
}

// Scratch holds the reusable activation buffers behind
// Network.ForwardBatch; keep one per goroutine.
type Scratch = nn.Scratch

// NewScratch returns an empty scratch space for batched inference.
func NewScratch() *Scratch { return nn.NewScratch() }

// Quantization pipeline.

// Scheme selects a weight precision (Float32, Int8, Int4, Ternary,
// Binary).
type Scheme = quant.Scheme

// Quantization schemes.
const (
	Float32 = quant.Float32
	Int8    = quant.Int8
	Int4    = quant.Int4
	Ternary = quant.Ternary
	Binary  = quant.Binary
)

// QModel is an integer-kernel executable derived from a Network: dense
// and convolutional layers run on the blocked int8 kernel with dynamic
// per-example activation quantization. Deployments instantiate one
// automatically when the selected variant's scheme has native hardware
// support on the device (see Deployment.ExecutionScheme).
type QModel = quant.QModel

// QScratch holds the reusable buffers behind QModel.ForwardBatch; keep
// one per goroutine.
type QScratch = quant.QScratch

// NewQScratch returns an empty scratch space for integer-kernel batched
// inference.
func NewQScratch() *QScratch { return quant.NewQScratch() }

// Quantize derives an integer-kernel executable from a network.
func Quantize(net *Network, scheme Scheme) (*QModel, error) { return quant.NewQModel(net, scheme) }

// FakeQuantize returns a float-engine copy of net with quantize-dequantize
// weights, for accuracy evaluation of low-bit variants.
func FakeQuantize(net *Network, scheme Scheme) (*Network, error) {
	return quant.FakeQuantizeNetwork(net, scheme)
}

// Prune zeroes the smallest-magnitude fraction of weights globally and
// returns the achieved sparsity.
func Prune(net *Network, fraction float64) (float64, error) {
	return quant.MagnitudePrune(net, fraction)
}

// Integer serving kernels and packed storage.

// QTensor is a quantized weight matrix: per-output-channel scales over
// int8 codes, or — after PackInt4 on an int4-scheme tensor — two 4-bit
// codes per byte, the storage form the packed serving kernels consume.
type QTensor = quant.QTensor

// QuantizeMatrix quantizes a [out, in] weight matrix symmetrically per
// output channel under the scheme.
func QuantizeMatrix(w *Tensor, scheme Scheme) (*QTensor, error) {
	return quant.QuantizeMatrix(w, scheme)
}

// MatMulInt4 computes the scaled integer product of an int8 activation
// matrix and a packed int4 weight matrix (two codes per byte,
// PackInt4Matrix layout) with exact int32 accumulation — bit-identical
// to a naive scalar reference at any worker count.
func MatMulInt4(dst []float32, a []int8, bPacked []byte, m, k, n int, rowScales, colScales []float32) {
	tensor.MatMulInt4(dst, a, bPacked, m, k, n, rowScales, colScales)
}

// MatMulInt4LHS is MatMulInt4 with the packed operand on the left — the
// convolution layout, where the weight matrix is the 4-bit operand.
func MatMulInt4LHS(dst []float32, aPacked []byte, b []int8, m, k, n int, rowScales, colScales []float32) {
	tensor.MatMulInt4LHS(dst, aPacked, b, m, k, n, rowScales, colScales)
}

// Int4PackedLen returns the byte length of n int4 codes packed two per
// byte.
func Int4PackedLen(n int) int { return tensor.Int4PackedLen(n) }

// PackInt4 packs signed 4-bit codes two per byte, low nibble first,
// rejecting codes outside [-8, 7].
func PackInt4(codes []int8) ([]byte, error) { return tensor.PackInt4(codes) }

// UnpackInt4 expands packed int4 bytes back into count codes, rejecting
// truncated or oversized buffers and nonzero pad nibbles.
func UnpackInt4(packed []byte, count int) ([]int8, error) { return tensor.UnpackInt4(packed, count) }

// PackInt4Matrix packs a [rows, cols] code matrix with byte-aligned rows
// — the layout the packed matmul kernels consume.
func PackInt4Matrix(codes []int8, rows, cols int) ([]byte, error) {
	return tensor.PackInt4Matrix(codes, rows, cols)
}

// Benchmark trajectory.

// BenchEntry is one benchmark's measured point (ns/op, B/op, allocs/op)
// within a BenchReport.
type BenchEntry = benchfmt.Entry

// BenchReport is one committed BENCH_<area>.json snapshot: the
// serving/offload performance trajectory `tinymlops bench` maintains and
// CI diffs.
type BenchReport = benchfmt.Report

// BenchRegression is one gate violation found by DiffBenchReports.
type BenchRegression = benchfmt.Regression

// ReadBenchReport loads a committed BENCH_<area>.json snapshot.
func ReadBenchReport(path string) (*BenchReport, error) { return benchfmt.ReadFile(path) }

// DiffBenchReports compares a fresh run against a committed baseline:
// ns/op may drift up to nsTol fractionally, allocs/op not at all, and
// benchmarks may not appear or vanish unnoticed.
func DiffBenchReports(base, cur *BenchReport, nsTol float64) []BenchRegression {
	return benchfmt.Diff(base, cur, nsTol)
}
