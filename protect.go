package tinymlops

import (
	"net"

	"tinymlops/internal/enclave"
	"tinymlops/internal/fed"
	"tinymlops/internal/ipprot"
	"tinymlops/internal/metering"
	"tinymlops/internal/observe"
	"tinymlops/internal/verify"
)

// IP protection (§V).

// EncryptedModel is a model artifact sealed for distribution.
type EncryptedModel = ipprot.EncryptedModel

// EncryptModel seals artifact bytes under the vendor key.
func EncryptModel(vendorKey []byte, modelID string, artifact []byte) (*EncryptedModel, error) {
	return ipprot.EncryptModel(vendorKey, modelID, artifact)
}

// DecryptModel unwraps and decrypts a sealed artifact.
func DecryptModel(vendorKey []byte, em *EncryptedModel) ([]byte, error) {
	return ipprot.DecryptModel(vendorKey, em)
}

// BlackBox is the attacker's query interface to a deployed model.
type BlackBox = ipprot.BlackBox

// Defense perturbs returned probabilities (prediction poisoning).
type Defense = ipprot.Defense

// ModelBlackBox wraps a network as an undefended black box.
func ModelBlackBox(net *Network) BlackBox { return ipprot.ModelBlackBox(net) }

// Defend wraps a black box with a prediction-poisoning defense.
func Defend(bb BlackBox, d Defense) BlackBox { return ipprot.Defend(bb, d) }

// Prediction-poisoning defenses.
type (
	// NoDefense returns probabilities untouched.
	NoDefense = ipprot.NoDefense
	// RoundDefense rounds probabilities to a fixed precision.
	RoundDefense = ipprot.RoundDefense
	// Top1Defense returns only the hard label.
	Top1Defense = ipprot.Top1Defense
	// NoiseDefense adds argmax-preserving noise.
	NoiseDefense = ipprot.NoiseDefense
	// DeceptiveDefense redistributes non-argmax mass adversarially.
	DeceptiveDefense = ipprot.DeceptiveDefense
)

// ExtractionConfig controls the student-teacher stealing attack.
type ExtractionConfig = ipprot.ExtractConfig

// ExtractModel runs the indirect model-stealing attack against a black
// box.
func ExtractModel(bb BlackBox, student *Network, queries *Tensor, cfg ExtractionConfig) (int, error) {
	return ipprot.Extract(bb, student, queries, cfg)
}

// Agreement returns argmax agreement between two black boxes.
func Agreement(a, b BlackBox, x *Tensor) float64 { return ipprot.Agreement(a, b, x) }

// StaticWatermarkConfig controls white-box watermark embedding.
type StaticWatermarkConfig = ipprot.StaticWMConfig

// DefaultStaticWatermarkConfig returns embedding defaults.
func DefaultStaticWatermarkConfig() StaticWatermarkConfig { return ipprot.DefaultStaticWMConfig() }

// EmbedWatermark embeds an owner-keyed bit string into the model weights.
func EmbedWatermark(net *Network, key string, bits []bool, cfg StaticWatermarkConfig) error {
	return ipprot.EmbedStatic(net, key, bits, cfg)
}

// ExtractWatermark reads a static watermark back (white-box).
func ExtractWatermark(net *Network, key string, capacity int, cfg StaticWatermarkConfig) ([]bool, error) {
	return ipprot.ExtractStatic(net, key, capacity, cfg)
}

// WatermarkBits derives an owner's payload from a key.
func WatermarkBits(key string, n int) []bool { return ipprot.KeyedBits(key, n) }

// BitErrorRate compares an extracted mark against the original.
func BitErrorRate(want, got []bool) float64 { return ipprot.BitErrorRate(want, got) }

// TriggerSet is a dynamic (black-box) watermark.
type TriggerSet = ipprot.TriggerSet

// NewTriggerSet derives a secret trigger set from the owner key.
func NewTriggerSet(key string, k int, inputShape []int, numClasses int) TriggerSet {
	return ipprot.NewTriggerSet(key, k, inputShape, numClasses)
}

// EmbedTriggerWatermark fine-tunes net to answer the trigger set with the
// owner's labels.
func EmbedTriggerWatermark(net *Network, triggers TriggerSet, trainX *Tensor, trainY []int, epochs int, rng *RNG) error {
	return ipprot.EmbedDynamic(net, triggers, trainX, trainY, epochs, rng)
}

// VerifyTriggerWatermark returns a suspect model's trigger recall
// (black-box ownership evidence).
func VerifyTriggerWatermark(net *Network, triggers TriggerSet) float64 {
	return ipprot.VerifyDynamic(net, triggers)
}

// QueryDetector is the PRADA-style extraction-attack detector.
type QueryDetector = ipprot.QueryDetector

// NewQueryDetector returns a stealing-query detector with standard
// settings.
func NewQueryDetector() *QueryDetector { return ipprot.DefaultQueryDetector() }

// ScrambleModel key-locks a model's hidden channels (ref [83]).
func ScrambleModel(net *Network, key string) error { return ipprot.ScrambleNetwork(net, key) }

// UnscrambleModel restores a key-locked model.
func UnscrambleModel(net *Network, key string) error { return ipprot.UnscrambleNetwork(net, key) }

// Verifiable execution (§VI).

// InferenceProof accompanies a batch of verifiable inference results.
type InferenceProof = verify.InferenceProof

// ProofStats counts prover/verifier field multiplications and proof bytes.
type ProofStats = verify.Stats

// ProveInference runs verifiable int8 inference, returning logits plus
// sum-check proofs for every dense layer.
func ProveInference(net *Network, x *Tensor) (*InferenceProof, error) {
	return verify.ProveInference(net, x)
}

// VerifyInference checks an inference proof against the verifier's own
// copies of the model and input without re-executing the matrix products.
func VerifyInference(net *Network, x *Tensor, ip *InferenceProof) (bool, ProofStats, error) {
	return verify.VerifyInference(net, x, ip)
}

// Enclave is a simulated secure processing environment (sealing,
// attestation, slowdown cost model).
type Enclave = enclave.Enclave

// NewEnclave provisions an enclave from a manufacturer root key.
func NewEnclave(id string, rootKey []byte, slowdown float64) (*Enclave, error) {
	return enclave.New(id, rootKey, slowdown)
}

// VerifyAttestation checks an enclave report against the root key.
func VerifyAttestation(rootKey []byte, r enclave.Report) bool {
	return enclave.VerifyReport(rootKey, r)
}

// Federated learning (§III-D).

// FederatedClient is one participant with a private shard.
type FederatedClient = fed.Client

// FederatedConfig controls federated optimization.
type FederatedConfig = fed.Config

// FederatedCoordinator runs FedAvg/FedProx rounds.
type FederatedCoordinator = fed.Coordinator

// RoundStats records one federated round's outcome.
type RoundStats = fed.RoundStats

// UpdateCodec compresses federated uplink updates.
type UpdateCodec = fed.Codec

// Update codecs.
type (
	// RawCodec ships float32 updates (baseline).
	RawCodec = fed.NoneCodec
	// Int8Codec quantizes updates 4×.
	Int8Codec = fed.Int8Codec
	// TernaryCodec compresses updates 16× (TernGrad-style).
	TernaryCodec = fed.TernaryCodec
	// TopKCodec keeps only the largest coordinates.
	TopKCodec = fed.TopKCodec
)

// NewFederatedCoordinator builds a coordinator around a global model.
func NewFederatedCoordinator(global *Network, clients []*FederatedClient, testX *Tensor, testY []int, cfg FederatedConfig) (*FederatedCoordinator, error) {
	return fed.NewCoordinator(global, clients, testX, testY, cfg)
}

// MakeFederatedClients shards a dataset into clients.
func MakeFederatedClients(ds *Dataset, shards [][]int, idPrefix string) []*FederatedClient {
	return fed.MakeClients(ds, shards, idPrefix)
}

// HierFederatedConfig controls two-tier hierarchical federated rounds.
type HierFederatedConfig = fed.HierConfig

// HierFederatedCoordinator runs hierarchical rounds: clients aggregate
// exactly at edge cohorts (masked when SecureAgg is set) and the cloud
// sums one compact partial per aggregator.
type HierFederatedCoordinator = fed.HierCoordinator

// FederatedCohort is one edge aggregator's client group.
type FederatedCohort = fed.Cohort

// EdgeAggregator accumulates a cohort's masked fixed-point updates and
// unmasks only their sum, reconciling dropped clients' stale masks.
type EdgeAggregator = fed.Aggregator

// NewHierFederatedCoordinator builds a two-tier coordinator: clients shard
// into cfg.Aggregators cohorts by stable ID hash.
func NewHierFederatedCoordinator(global *Network, clients []*FederatedClient, testX *Tensor, testY []int, cfg HierFederatedConfig) (*HierFederatedCoordinator, error) {
	return fed.NewHierCoordinator(global, clients, testX, testY, cfg)
}

// PairwiseSeeds is the symmetric per-pair mask seed matrix.
type PairwiseSeeds = fed.PairwiseSeeds

// NewPairwiseSeeds derives the pairwise mask seed matrix for n clients.
func NewPairwiseSeeds(rng *RNG, n int) PairwiseSeeds {
	return fed.NewPairwiseSeeds(rng, n)
}

// NewEdgeAggregator builds one cohort-round masked accumulator of the
// given update dimension.
func NewEdgeAggregator(id string, seeds PairwiseSeeds, dim int) (*EdgeAggregator, error) {
	return fed.NewAggregator(id, seeds, dim)
}

// PersonalizeConfig controls local fine-tuning with layer freezing.
type PersonalizeConfig = fed.PersonalizeConfig

// Personalize fine-tunes a global model on a client's private data.
func Personalize(global *Network, data *Dataset, cfg PersonalizeConfig) (*Network, error) {
	return fed.Personalize(global, data, cfg)
}

// Metering and observability surface needed by integrations.

// Meter is the on-device pay-per-query enforcement point.
type Meter = metering.Meter

// MeteringServer is the vendor-side TCP settlement service.
type MeteringServer = metering.Server

// ServeSettlement starts the platform's settlement service on a listener;
// devices reconcile their hash-chained usage logs against it when they
// reconnect. Close the returned server when done.
func ServeSettlement(l net.Listener, p *Platform) *MeteringServer {
	return metering.Serve(l, p.Settler)
}

// TelemetryRecord is one anonymized telemetry report.
type TelemetryRecord = observe.Record

// DriftDetector is a streaming drift detector.
type DriftDetector = observe.Detector
