package tinymlops_test

import (
	"errors"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"tinymlops"
)

// TestDatasetGenerators exercises every public generator and the drift
// stream through the facade.
func TestDatasetGenerators(t *testing.T) {
	rng := tinymlops.NewRNG(1)
	cases := []struct {
		name string
		ds   *tinymlops.Dataset
	}{
		{"blobs", tinymlops.Blobs(rng, 100, 4, 3, 3)},
		{"rings", tinymlops.Rings(rng, 100, 2, 0.1)},
		{"shapes", tinymlops.ShapeImages(rng, 40, 12, 0.1)},
		{"keywords", tinymlops.KeywordSeq(rng, 100, 32, 4, 0.1, 0.2)},
		{"vibration", tinymlops.VibrationAnomaly(rng, 100, 32, 0.3, 2)},
	}
	for _, c := range cases {
		if c.ds.Len() == 0 || c.ds.NumClasses < 2 {
			t.Fatalf("%s: empty or degenerate dataset", c.name)
		}
		if len(c.ds.Y) != c.ds.Len() {
			t.Fatalf("%s: labels out of sync", c.name)
		}
	}
	shards := tinymlops.PartitionIID(rng, cases[0].ds, 4)
	if len(shards) != 4 {
		t.Fatalf("PartitionIID returned %d shards", len(shards))
	}
	stream := tinymlops.NewDriftStream(rng, cases[0].ds, 10, tinymlops.DriftScale, 0.5)
	for i := 0; i < 20; i++ {
		x, y := stream.Next()
		if len(x) != 4 || y < 0 || y > 2 {
			t.Fatalf("stream output %v, %d", x, y)
		}
	}
	if !stream.Drifted() {
		t.Fatal("stream should have passed onset")
	}
}

// TestDeviceAndSelectionSurface exercises profiles and manual selection.
func TestDeviceAndSelectionSurface(t *testing.T) {
	profiles := tinymlops.StandardProfiles()
	if len(profiles) != 6 {
		t.Fatalf("%d profiles", len(profiles))
	}
	if _, err := tinymlops.ProfileByName("npu-board"); err != nil {
		t.Fatal(err)
	}
	rng := tinymlops.NewRNG(2)
	fleet, err := tinymlops.NewStandardFleet(tinymlops.FleetSpec{CountPerProfile: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fleet.Devices() {
		d.SetBehavior(1, 1, 0)
	}
	fleet.Tick()
	platform, err := tinymlops.NewPlatform(fleet, tinymlops.PlatformConfig{
		VendorKey: []byte("surface-test-key-0123456789abcde"), Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := tinymlops.Blobs(rng, 400, 4, 2, 4)
	net := tinymlops.NewNetwork([]int{4}, tinymlops.Dense(4, 8, rng), tinymlops.ReLU(), tinymlops.Dense(8, 2, rng))
	versions, err := platform.Publish("surface", net, ds, tinymlops.DefaultOptimizationSpec(ds))
	if err != nil {
		t.Fatal(err)
	}
	d, _ := fleet.Get("phone-00")
	dec, err := tinymlops.Select(d, versions, tinymlops.DefaultSelectionPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Chosen == nil || len(dec.Evaluations) != len(versions) {
		t.Fatalf("decision = %+v", dec)
	}
}

// TestLayerConstructorsAndConvPath builds a conv network purely through
// the facade and trains a step.
func TestLayerConstructorsAndConvPath(t *testing.T) {
	rng := tinymlops.NewRNG(3)
	ds := tinymlops.ShapeImages(rng, 80, 12, 0.1)
	net := tinymlops.NewNetwork([]int{1, 12, 12},
		tinymlops.Conv2D(1, 4, 3, 3, 1, 1, rng), tinymlops.ReLU(),
		tinymlops.MaxPool2D(2, 2), tinymlops.Flatten(),
		tinymlops.Dense(144, 16, rng), tinymlops.BatchNorm1D(16), tinymlops.Tanh(),
		tinymlops.Dropout(0.2, rng),
		tinymlops.Dense(16, 4, rng))
	if _, err := tinymlops.Train(net, ds.X, ds.Y, tinymlops.TrainConfig{
		Epochs: 2, BatchSize: 16, Optimizer: tinymlops.Adam(0.01), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	// Sigmoid and Softmax constructors compile into a valid net.
	head := tinymlops.NewNetwork([]int{4}, tinymlops.Dense(4, 2, rng), tinymlops.Sigmoid(), tinymlops.Softmax())
	if out := head.Predict(tinymlops.NewTensor(1, 4)); out.Dim(1) != 2 {
		t.Fatalf("head output %v", out.Shape())
	}
}

// TestRolloutSurface pins the staged-OTA facade: rollout config/result
// types, Deployment.Update/Rollback/Health, and the weight-delta codec.
func TestRolloutSurface(t *testing.T) {
	rng := tinymlops.NewRNG(9)
	fleet, err := tinymlops.NewStandardFleet(tinymlops.FleetSpec{CountPerProfile: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fleet.Devices() {
		d.SetBehavior(1, 1, 0)
	}
	fleet.Tick()
	platform, err := tinymlops.NewPlatform(fleet, tinymlops.PlatformConfig{
		VendorKey: []byte("surface-test-key-0123456789abcde"), Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := tinymlops.Blobs(rng, 300, 4, 2, 4)
	spec := tinymlops.OptimizationSpec{Evaluate: func(n *tinymlops.Network) float64 {
		return tinymlops.Evaluate(n, ds.X, ds.Y)
	}}
	v1net := tinymlops.NewNetwork([]int{4}, tinymlops.Dense(4, 8, rng), tinymlops.ReLU(), tinymlops.Dense(8, 2, rng))
	if _, err := platform.Publish("surface-ota", v1net, ds, spec); err != nil {
		t.Fatal(err)
	}
	ids := []string{"phone-00", "edge-gateway-00"}
	if _, err := platform.DeployMany(ids, "surface-ota", tinymlops.DeployConfig{PrepaidQueries: 50}); err != nil {
		t.Fatal(err)
	}

	// v2 perturbs only the head parameters (the last dense layer's 18
	// scalars), so the update ships as a sparse delta.
	v2net := v1net.Clone()
	flat := v2net.FlatParams()
	for i := len(flat) - 18; i < len(flat); i++ {
		flat[i] += 0.5
	}
	if err := v2net.SetFlatParams(flat); err != nil {
		t.Fatal(err)
	}

	// The delta codec round-trips through the facade.
	delta, err := tinymlops.EncodeModelDelta(v1net, v2net)
	if err != nil {
		t.Fatal(err)
	}
	patched, err := tinymlops.ApplyModelDelta(v1net, delta)
	if err != nil {
		t.Fatal(err)
	}
	got, want := patched.FlatParams(), v2net.FlatParams()
	if len(got) != len(want) {
		t.Fatalf("patched params %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("patched param %d = %v, want %v", i, got[i], want[i])
		}
	}
	cost, err := tinymlops.CostOfModelDelta(delta, 32)
	if err != nil {
		t.Fatal(err)
	}
	if cost.ChangedParams != 18 {
		t.Fatalf("delta cost = %+v", cost)
	}

	v2s, err := platform.Publish("surface-ota", v2net, ds, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Staged rollout through the facade: one wave, default gate, no bake.
	var waves []tinymlops.RolloutWave = tinymlops.DefaultRolloutWaves()
	if len(waves) != 3 {
		t.Fatalf("default waves = %v", waves)
	}
	res, err := platform.Rollout(v2s[0], tinymlops.RolloutConfig{
		Waves: []tinymlops.RolloutWave{{Name: "fleet", Fraction: 1.0}},
		Gate:  tinymlops.RolloutGate{MaxErrorRate: 0.5},
		Seed:  1,
		Bake: func(w tinymlops.RolloutWave, deviceIDs []string) error {
			if len(deviceIDs) != 2 {
				t.Errorf("bake saw %d devices", len(deviceIDs))
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var rr *tinymlops.RolloutResult = res
	if !rr.Completed || rr.DeltaTransfers != 2 {
		t.Fatalf("rollout result = %+v", rr)
	}
	var wr tinymlops.WaveResult = rr.Waves[0]
	var gd tinymlops.GateDecision = wr.Gate
	if !gd.Pass {
		t.Fatalf("gate = %+v", gd)
	}

	// Deployment health, manual rollback and update report types.
	dep, _ := platform.Deployment("phone-00")
	var h tinymlops.DeviceHealth = dep.Health()
	if h.DriftAlarm {
		t.Fatal("drift alarm without a monitor")
	}
	var rep *tinymlops.UpdateReport
	if rep, err = dep.Rollback(); err != nil {
		t.Fatal(err)
	}
	if rep.To.Name != "surface-ota" || rep.From.ID == rep.To.ID {
		t.Fatalf("rollback report = %+v", rep)
	}
	if _, err := dep.Update(v2s[0], tinymlops.UpdateOptions{ForceFull: true}); err != nil {
		t.Fatal(err)
	}
}

// TestProtectionWrappers covers the remaining §V/§VI facade functions.
func TestProtectionWrappers(t *testing.T) {
	rng := tinymlops.NewRNG(4)
	net := tinymlops.NewNetwork([]int{4}, tinymlops.Dense(4, 8, rng), tinymlops.ReLU(), tinymlops.Dense(8, 2, rng))
	// Encryption.
	artifact, err := net.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("wrapper-test-key-0123456789abcde")
	em, err := tinymlops.EncryptModel(key, "m", artifact)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tinymlops.DecryptModel(key, em); err != nil {
		t.Fatal(err)
	}
	// Trigger watermark.
	ds := tinymlops.Blobs(rng, 300, 4, 2, 4)
	triggers := tinymlops.NewTriggerSet("owner", 10, []int{4}, 2)
	if err := tinymlops.EmbedTriggerWatermark(net, triggers, ds.X, ds.Y, 3, rng); err != nil {
		t.Fatal(err)
	}
	if rec := tinymlops.VerifyTriggerWatermark(net, triggers); rec < 0.5 {
		t.Fatalf("trigger recall %v", rec)
	}
	// Query detector.
	det := tinymlops.NewQueryDetector()
	det.Observe([]float32{1, 2, 3, 4})
	if det.Flagged() {
		t.Fatal("detector flagged after one query")
	}
	// Enclave.
	encl, err := tinymlops.NewEnclave("t", []byte("root-0123456789"), 2)
	if err != nil {
		t.Fatal(err)
	}
	var meas [32]byte
	rep := encl.Attest(meas, []byte("n"))
	if !tinymlops.VerifyAttestation([]byte("root-0123456789"), rep) {
		t.Fatal("attestation failed")
	}
	// Personalization wrapper.
	personal, err := tinymlops.Personalize(net, ds, tinymlops.PersonalizeConfig{
		Epochs: 1, BatchSize: 16, LR: 0.05, RNG: rng,
	})
	if err != nil || personal == nil {
		t.Fatalf("personalize: %v", err)
	}
}

// TestChaosSurface pins the fault-injection and audit facade: the fault
// plane, the retry policy, the invariant auditor and the canned chaos
// scenario, all reached through re-exports only.
func TestChaosSurface(t *testing.T) {
	// Deterministic fault profiles from the facade.
	plane := tinymlops.NewFaultPlane(tinymlops.ChaosConfig{
		Seed: 5, PDrop: 0.5, PCrash: 0.5, PDropout: 0.5, PStraggler: 0.5,
	})
	var prof tinymlops.FaultProfile = plane.Profile(1, "phone-00")
	if prof != plane.Profile(1, "phone-00") {
		t.Fatal("fault profile not deterministic")
	}
	var cf tinymlops.ClientFault = plane.FedFaults()(1, "client-0")
	_ = cf

	// Retry policy with deterministic backoff.
	pol := tinymlops.RetryPolicy{Attempts: 3, BaseBackoff: 0}
	calls := 0
	rr, err := tinymlops.Retry(pol, tinymlops.TransientUpdateError, func(int) error {
		calls++
		if calls < 2 {
			return tinymlops.ErrDeviceOffline
		}
		return nil
	})
	if err != nil || rr.Attempts != 2 {
		t.Fatalf("retry = %+v, %v", rr, err)
	}
	if tinymlops.TransientUpdateError(tinymlops.ErrInstallInterrupted) != true {
		t.Fatal("interrupted install must be transient")
	}
	if a, b := tinymlops.SeedForID(1, 2, "x"), tinymlops.SeedForID(1, 2, "y"); a == b {
		t.Fatal("SeedForID collision")
	}

	// The full chaos scenario plus the auditor, end to end but tiny.
	res, err := tinymlops.RunChaosScenario(tinymlops.ChaosScenarioConfig{
		Devices: 12, Workers: 2, Seed: 31,
		Chaos: tinymlops.ChaosConfig{Seed: 32, PDrop: 0.2, PCrash: 0.3, PChurn: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var rep *tinymlops.AuditReport = res.Audit
	if !rep.OK() || res.Converged != res.FleetSize {
		t.Fatalf("scenario: converged %d/%d, audit %v", res.Converged, res.FleetSize, rep.Violations)
	}
	if res.Fingerprint == "" {
		t.Fatal("no fingerprint")
	}
	// The auditor is callable directly against any platform too.
	fleet, err := tinymlops.NewStandardFleet(tinymlops.FleetSpec{CountPerProfile: 1, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	p, err := tinymlops.NewPlatform(fleet, tinymlops.PlatformConfig{
		VendorKey: []byte("surface-test-key-0123456789abcde"), Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep := tinymlops.AuditPlatform(p, tinymlops.AuditConfig{Deep: true}); !rep.OK() {
		t.Fatalf("empty platform fails audit: %v", rep.Violations)
	}
}

// TestIntegerServingSurface pins the integer-serving facade: QModel with
// its batched scratch path, the selection policy's scheme allowlist, the
// deployment's reported execution scheme, and the offload refusal
// sentinel — all reached through re-exports only.
func TestIntegerServingSurface(t *testing.T) {
	rng := tinymlops.NewRNG(51)
	net := tinymlops.NewNetwork([]int{4}, tinymlops.Dense(4, 8, rng), tinymlops.ReLU(), tinymlops.Dense(8, 2, rng))

	// QModel + QScratch through the facade, bit-identical to Predict.
	var qm *tinymlops.QModel
	qm, err := tinymlops.Quantize(net, tinymlops.Int8)
	if err != nil {
		t.Fatal(err)
	}
	var scratch *tinymlops.QScratch = tinymlops.NewQScratch()
	in := tinymlops.FromSlice([]float32{1, -2, 0.5, 3, 0, 0, -1, 2}, 2, 4)
	got := qm.ForwardBatch(in, scratch)
	want := qm.Predict(in)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("ForwardBatch diverged from Predict at %d", i)
		}
	}

	// An int8-pinned deployment on NPU hardware reports int8 execution
	// and refuses to offload.
	fleet, err := tinymlops.NewStandardFleet(tinymlops.FleetSpec{CountPerProfile: 1, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fleet.Devices() {
		d.SetBehavior(1, 1, 0)
	}
	fleet.Tick()
	platform, err := tinymlops.NewPlatform(fleet, tinymlops.PlatformConfig{
		VendorKey: []byte("surface-test-key-0123456789abcde"), Seed: 51,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := tinymlops.Blobs(rng, 200, 4, 2, 4)
	if _, err := platform.Publish("surface-int", net, ds, tinymlops.OptimizationSpec{
		Schemes:  []tinymlops.Scheme{tinymlops.Int8},
		Evaluate: func(n *tinymlops.Network) float64 { return tinymlops.Evaluate(n, ds.X, ds.Y) },
	}); err != nil {
		t.Fatal(err)
	}
	policy := tinymlops.SelectionPolicy{Schemes: []tinymlops.Scheme{tinymlops.Int8}}
	dep, err := platform.Deploy("npu-board-00", "surface-int", tinymlops.DeployConfig{
		PrepaidQueries: 10, Policy: policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sch tinymlops.Scheme = dep.ExecutionScheme()
	if sch != tinymlops.Int8 {
		t.Fatalf("execution scheme %v, want int8", sch)
	}
	cloud := tinymlops.NewOffloadCloud(tinymlops.OffloadCloudConfig{MaxBatch: 4})
	cloud.Start()
	defer cloud.Close()
	// Integer-native deployments now split through the quantized boundary
	// codec; the refusal is retired but its sentinel stays exported so old
	// errors.Is checks keep compiling (they simply never match).
	sess, err := platform.Offload("npu-board-00", tinymlops.OffloadConfig{Cloud: cloud})
	if err != nil {
		t.Fatalf("integer offload through facade: %v", err)
	}
	if _, err := sess.Infer(make([]float32, 4)); err != nil {
		t.Fatal(err)
	}
	if tinymlops.ErrOffloadInteger == nil {
		t.Fatal("retired ErrOffloadInteger sentinel removed from the surface")
	}
}

// TestOffloadSurface pins the edge–cloud offload facade: the split
// planner, the cloud tier, Platform.Offload sessions with their result
// and stats types, the mode constants, the error sentinels, and the
// chaos scenario's offload phase.
func TestOffloadSurface(t *testing.T) {
	rng := tinymlops.NewRNG(41)
	fleet, err := tinymlops.NewStandardFleet(tinymlops.FleetSpec{CountPerProfile: 1, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fleet.Devices() {
		d.SetBehavior(1, 1, 0)
	}
	fleet.Tick()
	platform, err := tinymlops.NewPlatform(fleet, tinymlops.PlatformConfig{
		VendorKey: []byte("surface-test-key-0123456789abcde"), Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := tinymlops.Blobs(rng, 200, 4, 2, 4)
	spec := tinymlops.OptimizationSpec{Evaluate: func(n *tinymlops.Network) float64 {
		return tinymlops.Evaluate(n, ds.X, ds.Y)
	}}
	net := tinymlops.NewNetwork([]int{4}, tinymlops.Dense(4, 8, rng), tinymlops.ReLU(), tinymlops.Dense(8, 2, rng))
	if _, err := platform.Publish("surface-off", net, ds, spec); err != nil {
		t.Fatal(err)
	}
	if _, err := platform.Deploy("phone-00", "surface-off", tinymlops.DeployConfig{PrepaidQueries: 20}); err != nil {
		t.Fatal(err)
	}

	// The planner through the facade.
	var costs []tinymlops.LayerCost
	costs, err = net.Summary()
	if err != nil {
		t.Fatal(err)
	}
	devCaps, _ := tinymlops.ProfileByName("m4-wearable")
	cloudCaps, _ := tinymlops.ProfileByName("edge-gateway")
	var best tinymlops.SplitPlan
	best, curve, err := tinymlops.BestSplit(costs, devCaps, cloudCaps, 32, 1e6, time.Millisecond, 16)
	if err != nil || len(curve) != len(costs)+1 {
		t.Fatalf("BestSplit: %+v, %d plans, %v", best, len(curve), err)
	}

	// The live plane: cloud tier + session over the deployment.
	cloud := tinymlops.NewOffloadCloud(tinymlops.OffloadCloudConfig{MaxBatch: 8})
	cloud.Start()
	defer cloud.Close()
	sess, err := platform.Offload("phone-00", tinymlops.OffloadConfig{
		Cloud:  cloud,
		Plan:   &tinymlops.SplitPlan{Cut: 1},
		Replan: tinymlops.OffloadReplanConfig{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	es := ds.X.Size() / ds.Len()
	var out tinymlops.OffloadOutcome
	out, err = sess.Infer(ds.X.Data[:es])
	if err != nil {
		t.Fatal(err)
	}
	var res tinymlops.OffloadResult = out.Split
	var mode tinymlops.OffloadMode = res.Mode
	if mode != tinymlops.OffloadSplit || res.Cut != 1 {
		t.Fatalf("offloaded query: %+v", res)
	}
	if tinymlops.OffloadLocal == tinymlops.OffloadSplit || tinymlops.OffloadSplit == tinymlops.OffloadFallback {
		t.Fatal("offload mode constants collide")
	}
	var st tinymlops.OffloadStats = sess.Stats()
	if st.Split != 1 {
		t.Fatalf("session stats %+v", st)
	}
	var cs tinymlops.OffloadCloudStats = cloud.Stats()
	if cs.Served != 1 {
		t.Fatalf("cloud stats %+v", cs)
	}
	var cond tinymlops.OffloadConditions
	cond.BandwidthBps = 1 // the type is addressable and field-complete
	_ = cond
	if tinymlops.ErrOffloadShed == nil || tinymlops.ErrOffloadStale == nil {
		t.Fatal("offload error sentinels missing")
	}

	// The chaos scenario's offload phase through the facade.
	scen, err := tinymlops.RunChaosScenario(tinymlops.ChaosScenarioConfig{
		Devices: 12, Workers: 2, Seed: 43,
		Chaos:          tinymlops.ChaosConfig{Seed: 44, PDrop: 0.3},
		OffloadQueries: 2, OffloadRounds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var orep *tinymlops.OffloadReport = scen.Offload
	if orep == nil || orep.Mismatches != 0 || orep.Queries == 0 {
		t.Fatalf("offload phase report %+v", orep)
	}
}

// TestVerifiedBillingSurface pins the verifiable pay-per-query facade:
// the verified-billing platform config, attestations riding the
// settlement report, TCP settlement with batch proof verification, the
// billing-fraud profile fields with the tamper helper, and the batch
// verifier — all reached through re-exports only.
func TestVerifiedBillingSurface(t *testing.T) {
	rng := tinymlops.NewRNG(61)
	ds := tinymlops.Blobs(rng, 300, 4, 3, 5)
	model := tinymlops.NewNetwork([]int{4},
		tinymlops.Dense(4, 8, rng), tinymlops.ReLU(), tinymlops.Dense(8, 3, rng))
	if _, err := tinymlops.Train(model, ds.X, ds.Y, tinymlops.TrainConfig{
		Epochs: 2, BatchSize: 32, Optimizer: tinymlops.SGD(0.1), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	fleet, err := tinymlops.NewStandardFleet(tinymlops.FleetSpec{CountPerProfile: 1, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fleet.Devices() {
		d.SetBehavior(1, 1, 0)
	}
	fleet.Tick()
	p, err := tinymlops.NewPlatform(fleet, tinymlops.PlatformConfig{
		VendorKey: []byte("surface-test-key-0123456789abcde"), Seed: 61, MinCohort: 1,
		VerifiedBilling: true, AttestationRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Publish("vb", model, ds, tinymlops.DefaultOptimizationSpec(ds)); err != nil {
		t.Fatal(err)
	}
	dep, err := p.Deploy("phone-00", "vb", tinymlops.DeployConfig{PrepaidQueries: 50})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 4)
	serve := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			for f := 0; f < 4; f++ {
				x[f] = ds.X.At2(i, f)
			}
			if _, err := dep.Infer(x); err != nil {
				t.Fatal(err)
			}
		}
	}
	serve(6)

	// An attested report through the facade, settled over real TCP.
	var rep tinymlops.AttestedReport
	rep, err = dep.Meter.BuildAttestedReport()
	if err != nil {
		t.Fatal(err)
	}
	var atts []tinymlops.Attestation = rep.Attestations
	if len(atts) == 0 {
		t.Fatal("rate-1 attestation produced no proofs")
	}
	var proof tinymlops.MatMulProof
	if err := proof.UnmarshalBinary(atts[0].Proof); err != nil {
		t.Fatalf("attestation carries an undecodable proof: %v", err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := tinymlops.ServeSettlement(l, p)
	defer srv.Close()
	var rc tinymlops.SettlementReceipt
	rc, err = tinymlops.SettleAttestedOverTCP(srv.Addr(), rep)
	if err != nil || !rc.OK || rc.ProofsChecked == 0 {
		t.Fatalf("honest settlement: receipt %+v, %v", rc, err)
	}
	dep.Meter.Acknowledge(rc.AckSeq)

	// Billing-fraud profile fields and the tamper helper: a tampered
	// report must be rejected for a proof reason.
	serve(4)
	rep2, err := dep.Meter.BuildAttestedReport()
	if err != nil {
		t.Fatal(err)
	}
	prof := tinymlops.FaultProfile{Overclaim: true, ProofReplay: true}
	if !prof.Fraudulent() {
		t.Fatal("fraud profile not fraudulent")
	}
	eff := tinymlops.TamperAttestedReport(prof, &rep2)
	if !eff.Overclaim || !eff.Fraudulent() {
		t.Fatalf("tamper applied %+v", eff)
	}
	rc2, err := tinymlops.SettleAttestedOverTCP(srv.Addr(), rep2)
	if err != nil {
		t.Fatal(err)
	}
	if rc2.OK || !strings.Contains(rc2.Reason, "proof") {
		t.Fatalf("tampered settlement: receipt %+v", rc2)
	}
	if tinymlops.ErrProofInvalid == nil {
		t.Fatal("ErrProofInvalid sentinel missing")
	}

	// The batch verifier: the platform's own, plus a standalone one that
	// rejects claims against an unprepared class.
	var bv *tinymlops.BatchVerifier = p.BatchVerifier()
	if bv == nil {
		t.Fatal("verified platform exposes no batch verifier")
	}
	standalone := tinymlops.NewBatchVerifier(nil)
	results, _, err := standalone.VerifyBatch([]tinymlops.BatchItem{
		{ClassID: "ghost", A: []int32{1}, M: 1, C: []int64{1}, Proof: &proof},
	})
	if err != nil {
		t.Fatal(err)
	}
	var res tinymlops.BatchResult = results[0]
	if res.OK || res.Err == nil {
		t.Fatalf("unprepared class verified: %+v", res)
	}

	// The chaos scenario surfaces its settlement phase.
	scen, err := tinymlops.RunChaosScenario(tinymlops.ChaosScenarioConfig{
		Devices: 12, Workers: 2, Seed: 63,
		Chaos: tinymlops.ChaosConfig{Seed: 64, POverclaim: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	var srep *tinymlops.SettlementPhaseReport = scen.Settlement
	if srep == nil || srep.Devices == 0 {
		t.Fatalf("settlement phase report %+v", srep)
	}
	var vd tinymlops.SettleVerdict = srep.Verdicts[0]
	_ = vd
	if srep.FraudInjected != srep.FraudCaught {
		t.Fatalf("scenario missed fraud: %+v", srep)
	}
}

// TestInt4AndBenchSurface pins the packed-int4 kernel surface (packing
// codec, packed QTensor storage form, the SWAR matmul) and the benchmark
// trajectory report types — all reached through re-exports only.
func TestInt4AndBenchSurface(t *testing.T) {
	// Packing codec: round trip, canonical rejection.
	codes := []int8{-8, 7, 0, 3, -1}
	packed, err := tinymlops.PackInt4(codes)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) != tinymlops.Int4PackedLen(len(codes)) {
		t.Fatalf("packed %d bytes, want %d", len(packed), tinymlops.Int4PackedLen(len(codes)))
	}
	back, err := tinymlops.UnpackInt4(packed, len(codes))
	if err != nil {
		t.Fatal(err)
	}
	for i := range codes {
		if back[i] != codes[i] {
			t.Fatalf("code %d: %d != %d", i, back[i], codes[i])
		}
	}
	if _, err := tinymlops.UnpackInt4(packed[:1], len(codes)); err == nil {
		t.Fatal("truncated buffer decoded")
	}
	if _, err := tinymlops.PackInt4([]int8{8}); err == nil {
		t.Fatal("out-of-range code packed")
	}

	// MatMulInt4 vs a naive scalar reference, exercising both nibbles.
	const m, k, n = 2, 3, 5
	a := []int8{1, -2, 3, 0, 5, -6}
	w := []int8{1, -8, 7, 0, 2, -1, 3, 4, -5, 6, 0, -7, 1, 2, -3}
	bPacked, err := tinymlops.PackInt4Matrix(w, k, n)
	if err != nil {
		t.Fatal(err)
	}
	rows := []float32{0.5, 2}
	cols := []float32{1, 0.25, 3, 0.5, 2}
	got := make([]float32, m*n)
	tinymlops.MatMulInt4(got, a, bPacked, m, k, n, rows, cols)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum int32
			for p := 0; p < k; p++ {
				sum += int32(a[i*k+p]) * int32(w[p*n+j])
			}
			want := float32(sum) * rows[i] * cols[j]
			if got[i*n+j] != want {
				t.Fatalf("MatMulInt4[%d,%d] = %g, want %g", i, j, got[i*n+j], want)
			}
		}
	}
	// MatMulInt4LHS: the same codes as a packed [3,2] left operand
	// against an int8 [2,3] right operand, vs the naive reference.
	wPacked, err := tinymlops.PackInt4Matrix(w[:6], 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	lhsGot := make([]float32, 3*3)
	ones := []float32{1, 1, 1}
	tinymlops.MatMulInt4LHS(lhsGot, wPacked, a[:6], 3, 2, 3, ones, ones)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var sum int32
			for p := 0; p < 2; p++ {
				sum += int32(w[i*2+p]) * int32(a[p*3+j])
			}
			if lhsGot[i*3+j] != float32(sum) {
				t.Fatalf("MatMulInt4LHS[%d,%d] = %g, want %d", i, j, lhsGot[i*3+j], sum)
			}
		}
	}

	// Packed QTensor storage form through the facade.
	rng := tinymlops.NewRNG(77)
	var qt *tinymlops.QTensor
	qt, err = tinymlops.QuantizeMatrix(tinymlops.FromSlice(randRow(rng, 12), 3, 4), tinymlops.Int4)
	if err != nil {
		t.Fatal(err)
	}
	ref := qt.Dequantize()
	if err := qt.PackInt4(); err != nil {
		t.Fatal(err)
	}
	if !qt.IsPacked() {
		t.Fatal("PackInt4 left the tensor unpacked")
	}
	packedDeq := qt.Dequantize()
	for i := range ref.Data {
		if ref.Data[i] != packedDeq.Data[i] {
			t.Fatalf("packed dequantize diverged at %d", i)
		}
	}

	// Bench trajectory types: a fabricated slowdown must trip the gate.
	base := &tinymlops.BenchReport{Area: "surface", Entries: []tinymlops.BenchEntry{
		{Name: "Hot", Iters: 100, NsPerOp: 100, AllocsPerOp: 0},
	}}
	cur := &tinymlops.BenchReport{Area: "surface", Entries: []tinymlops.BenchEntry{
		{Name: "Hot", Iters: 100, NsPerOp: 200, AllocsPerOp: 1},
	}}
	regs := tinymlops.DiffBenchReports(base, cur, 0.25)
	if len(regs) != 2 {
		t.Fatalf("want ns/op + allocs/op regressions, got %v", regs)
	}
	var reg tinymlops.BenchRegression = regs[0]
	if reg.String() == "" {
		t.Fatal("regression renders empty")
	}
	if tinymlops.DiffBenchReports(base, base, 0.25) != nil {
		t.Fatal("identical reports regressed")
	}
}

// randRow fills a float32 slice from the facade RNG.
func randRow(rng *tinymlops.RNG, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = rng.NormFloat32()
	}
	return out
}

// TestHierFederatedSurface pins the two-tier federated facade: the
// hierarchical coordinator, the edge aggregator's masked accumulator and
// the per-tier round accounting, all reached through re-exports only.
func TestHierFederatedSurface(t *testing.T) {
	rng := tinymlops.NewRNG(7)
	ds := tinymlops.Blobs(rng, 400, 4, 3, 4)
	shards := tinymlops.PartitionIID(rng, ds, 24)
	clients := tinymlops.MakeFederatedClients(ds, shards, "api")
	global := tinymlops.NewNetwork([]int{4}, tinymlops.Dense(4, 8, rng), tinymlops.ReLU(), tinymlops.Dense(8, 3, rng))
	var cfg tinymlops.HierFederatedConfig
	cfg.Rounds = 1
	cfg.LocalEpochs = 1
	cfg.LocalBatch = 8
	cfg.LR = 0.1
	cfg.Seed = 9
	cfg.Aggregators = 4
	cfg.SecureAgg = true
	hc, err := tinymlops.NewHierFederatedCoordinator(global, clients, ds.X, ds.Y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var cohorts []*tinymlops.FederatedCohort
	for _, co := range hc.Cohorts {
		cohorts = append(cohorts, co)
	}
	if len(cohorts) != 4 {
		t.Fatalf("%d cohorts", len(cohorts))
	}
	var s tinymlops.RoundStats
	if s, err = hc.RunRound(); err != nil {
		t.Fatal(err)
	}
	if s.EdgeUplinkBytes == 0 || s.CloudUplinkBytes == 0 || s.CloudUplinkBytes >= s.EdgeUplinkBytes {
		t.Fatalf("per-tier accounting: %+v", s)
	}
	// The edge accumulator type is reachable and usable directly.
	var agg *tinymlops.EdgeAggregator
	agg, err = tinymlops.NewEdgeAggregator("api", tinymlops.NewPairwiseSeeds(rng, 2), 3)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Received() != 0 {
		t.Fatal("fresh aggregator non-empty")
	}
}

// TestSwarmSurface pins the peer-to-peer OTA distribution facade: the
// chunk manifest codec with its typed errors, Platform.NewSwarm, the
// chaos scenario's swarm mode with its per-wave egress report, and the
// byte-conservation fields on the audit.
func TestSwarmSurface(t *testing.T) {
	// Chunk codec round trip.
	blob := []byte("swarm-surface-artifact-0123456789")
	m, err := tinymlops.BuildChunkManifest("full:surface", blob, 8)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := tinymlops.UnmarshalChunkManifest(enc)
	if err != nil || dec.NumChunks() != m.NumChunks() || dec.TotalBytes != int64(len(blob)) {
		t.Fatalf("manifest round trip: %+v (%v)", dec, err)
	}
	ra := tinymlops.NewChunkReassembler(dec)
	for i := 0; i < dec.NumChunks(); i++ {
		s, e := dec.ChunkSpan(i)
		if err := ra.AddChunk(i, blob[s:e]); err != nil {
			t.Fatal(err)
		}
		if err := ra.AddChunk(i, blob[s:e]); !errors.Is(err, tinymlops.ErrDuplicateChunk) {
			t.Fatalf("duplicate chunk error: %v", err)
		}
	}
	out, err := ra.Assemble()
	if err != nil || string(out) != string(blob) {
		t.Fatalf("assembly diverged: %q (%v)", out, err)
	}
	corrupt := append([]byte(nil), blob[:8]...)
	corrupt[0] ^= 0xff
	if err := tinymlops.NewChunkReassembler(dec).AddChunk(0, corrupt); !errors.Is(err, tinymlops.ErrChunkHashMismatch) {
		t.Fatalf("corrupt chunk error: %v", err)
	}
	if _, err := tinymlops.UnmarshalChunkManifest([]byte("nope")); !errors.Is(err, tinymlops.ErrBadManifest) {
		t.Fatalf("bad manifest error: %v", err)
	}

	// Platform.NewSwarm is reachable and returns a quiet coordinator.
	fleet, err := tinymlops.NewStandardFleet(tinymlops.FleetSpec{CountPerProfile: 1, Seed: 80})
	if err != nil {
		t.Fatal(err)
	}
	platform, err := tinymlops.NewPlatform(fleet, tinymlops.PlatformConfig{
		VendorKey: []byte("surface-swarm-key-0123456789abcd"), Seed: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	var drop tinymlops.SwarmDropFunc // nil = no injected peer loss
	var sw *tinymlops.Swarm
	sw, err = platform.NewSwarm(tinymlops.SwarmOptions{ChunkBytes: 16, Seed: 81, PeerDrop: drop})
	if err != nil {
		t.Fatal(err)
	}
	var st tinymlops.SwarmStats = sw.Stats()
	if st.Transfers != 0 || sw.InFlight() != 0 {
		t.Fatalf("fresh swarm not quiet: %+v", st)
	}

	// The chaos scenario's swarm mode through the facade.
	scen, err := tinymlops.RunChaosScenario(tinymlops.ChaosScenarioConfig{
		Devices: 24, Seed: 82,
		Chaos:        tinymlops.ChaosConfig{Seed: 83, PDrop: 0.1, PCrash: 0.2, PPeerDrop: 0.2},
		SwarmRollout: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var srep *tinymlops.SwarmReport = scen.Swarm
	if srep == nil {
		t.Fatal("swarm scenario produced no swarm report")
	}
	ledger := srep.Stats
	if ledger.RegistryEgressBytes+ledger.PeerBytes != ledger.DeliveredBytes || ledger.PeerBytes == 0 {
		t.Fatalf("ledger: %+v", ledger)
	}
	var total int64
	for _, wb := range srep.WaveEgress {
		var one tinymlops.SwarmWaveBytes = wb
		total += one.RegistryBytes + one.PeerBytes
	}
	if len(srep.WaveEgress) == 0 || total == 0 {
		t.Fatalf("wave egress: %+v", srep.WaveEgress)
	}
	if !scen.Audit.SwarmChecked || scen.Audit.SwarmDeliveredBytes != ledger.DeliveredBytes {
		t.Fatalf("audit swarm fields: %+v", scen.Audit)
	}

	// The typed delta-fallback errors are distinct, exported sentinels.
	if tinymlops.ErrDeltaBaseMissing == nil || tinymlops.ErrArtifactMissing == nil ||
		errors.Is(tinymlops.ErrDeltaBaseMissing, tinymlops.ErrArtifactMissing) {
		t.Fatal("delta fallback sentinels miswired")
	}
}

// TestProtectedPortableSurface pins the protected-portable facade: the
// procvm module/runtime/capability re-exports, the compile and codec
// wrappers, the artifact-kind constants, and the enclave session API —
// all reached through the root package only.
func TestProtectedPortableSurface(t *testing.T) {
	rng := tinymlops.NewRNG(6)
	net := tinymlops.NewNetwork([]int{4},
		tinymlops.Dense(4, 8, rng), tinymlops.ReLU(), tinymlops.Dense(8, 2, rng))
	mod, err := tinymlops.CompileProcVM(net, tinymlops.ProcVMCompileOptions{Name: "surface"})
	if err != nil {
		t.Fatal(err)
	}
	var m *tinymlops.ProcVMModule = mod
	dec, err := tinymlops.DecodeProcVMModule(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Digest() != m.Digest() {
		t.Fatal("module digest unstable across the facade codec")
	}
	var rt *tinymlops.ProcVMRuntime = tinymlops.NewProcVMRuntime(m.Caps)
	rt.MaxGas = m.GasLimit
	x := []float32{1, -2, 3, -4}
	res, err := rt.Run(dec, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.GasUsed != m.GasLimit {
		t.Fatalf("gas %d != pinned limit %d", res.GasUsed, m.GasLimit)
	}
	// The metering and capability sentinels.
	starved := tinymlops.NewProcVMRuntime(m.Caps)
	starved.MaxGas = 1
	if _, err := starved.Run(dec, x); !errors.Is(err, tinymlops.ErrProcVMOutOfGas) {
		t.Fatalf("starved run: %v, want ErrProcVMOutOfGas", err)
	}
	denied := tinymlops.NewProcVMRuntime(tinymlops.ProcVMCapNone)
	if _, err := denied.Run(dec, x); !errors.Is(err, tinymlops.ErrProcVMCapabilityDenied) {
		t.Fatalf("ungranted run: %v, want ErrProcVMCapabilityDenied", err)
	}
	var caps tinymlops.ProcVMCapability = tinymlops.ProcVMCapSensor | tinymlops.ProcVMCapNetwork | tinymlops.ProcVMCapStorage
	if caps == tinymlops.ProcVMCapNone {
		t.Fatal("capability constants collapsed")
	}
	// The registry artifact kinds.
	if tinymlops.ModelKindNetwork != "" || tinymlops.ModelKindProcVM != "procvm" {
		t.Fatalf("artifact kinds %q/%q drifted", tinymlops.ModelKindNetwork, tinymlops.ModelKindProcVM)
	}
	// The enclave session: sealed load, attestable measurement, in-enclave
	// execution bit-identical to the plain runtime.
	root := []byte("surface-root-key-0123456789abcde")
	encl, err := tinymlops.NewEnclave("surface", root, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	sess := tinymlops.NewEnclaveSession(encl)
	sealed, err := encl.Seal(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	meas, err := sess.LoadSealedModule("m", sealed)
	if err != nil {
		t.Fatal(err)
	}
	var rep tinymlops.EnclaveReport
	if rep, err = sess.Attest("m", []byte{9}); err != nil {
		t.Fatal(err)
	}
	if !tinymlops.VerifyAttestation(root, rep) || rep.Measurement != meas {
		t.Fatal("session attestation does not verify against the root")
	}
	out, err := sess.RunModule("m", x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Output.Vec {
		if math.Float32bits(v) != math.Float32bits(res.Output.Vec[i]) {
			t.Fatalf("enclave output %d diverged from the plain runtime", i)
		}
	}
	// Offload accepts a caller-owned session.
	_ = tinymlops.OffloadConfig{Enclave: sess}
}
