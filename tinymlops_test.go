package tinymlops_test

import (
	"errors"
	"net"
	"testing"

	"tinymlops"
)

// TestPublicAPIEndToEnd exercises the full Fig. 1 flow strictly through
// the public package: train → publish → deploy → metered inference →
// telemetry → settlement → protection → verifiable execution.
func TestPublicAPIEndToEnd(t *testing.T) {
	rng := tinymlops.NewRNG(1)
	ds := tinymlops.Blobs(rng, 900, 4, 3, 5)
	train, test := ds.Split(0.8, rng)
	model := tinymlops.NewNetwork([]int{4},
		tinymlops.Dense(4, 16, rng), tinymlops.ReLU(), tinymlops.Dense(16, 3, rng))
	if _, err := tinymlops.Train(model, train.X, train.Y, tinymlops.TrainConfig{
		Epochs: 8, BatchSize: 32, Optimizer: tinymlops.SGD(0.1).WithMomentum(0.9), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	if acc := tinymlops.Evaluate(model, test.X, test.Y); acc < 0.9 {
		t.Fatalf("model accuracy %v", acc)
	}

	fleet, err := tinymlops.NewStandardFleet(tinymlops.FleetSpec{CountPerProfile: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fleet.Devices() {
		d.SetBehavior(1, 1, 0)
	}
	fleet.Tick()
	platform, err := tinymlops.NewPlatform(fleet, tinymlops.PlatformConfig{
		VendorKey: []byte("api-test-vendor-key-0123456789ab"), Seed: 3, MinCohort: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	versions, err := platform.Publish("api", model, test, tinymlops.DefaultOptimizationSpec(test))
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 5 {
		t.Fatalf("published %d versions", len(versions))
	}
	dep, err := platform.Deploy("phone-00", "api", tinymlops.DeployConfig{
		PrepaidQueries: 5, Calibration: train,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 4)
	for i := 0; i < 5; i++ {
		for f := 0; f < 4; f++ {
			x[f] = test.X.At2(i, f)
		}
		if _, err := dep.Infer(x); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dep.Infer(x); !errors.Is(err, tinymlops.ErrQueryDenied) {
		t.Fatalf("quota not enforced: %v", err)
	}

	if _, _, err := platform.SyncTelemetry(); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := tinymlops.ServeSettlement(l, platform)
	defer srv.Close()
	for id, err := range platform.SettleAll(srv.Addr()) {
		if err != nil {
			t.Fatalf("settle %s: %v", id, err)
		}
	}
}

func TestPublicAPIQuantizationAndPruning(t *testing.T) {
	rng := tinymlops.NewRNG(4)
	net := tinymlops.NewNetwork([]int{8},
		tinymlops.Dense(8, 16, rng), tinymlops.ReLU(), tinymlops.Dense(16, 2, rng))
	qm, err := tinymlops.Quantize(net, tinymlops.Int8)
	if err != nil {
		t.Fatal(err)
	}
	x := tinymlops.FromSlice(make([]float32, 16), 2, 8)
	if out := qm.Predict(x); out.Dim(1) != 2 {
		t.Fatalf("quantized output shape %v", out.Shape())
	}
	fq, err := tinymlops.FakeQuantize(net, tinymlops.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if fq.ParamCount() != net.ParamCount() {
		t.Fatal("fake quantization changed parameter count")
	}
	if s, err := tinymlops.Prune(net, 0.5); err != nil || s < 0.45 {
		t.Fatalf("prune: %v %v", s, err)
	}
}

func TestPublicAPIProtectionSurface(t *testing.T) {
	rng := tinymlops.NewRNG(5)
	ds := tinymlops.Blobs(rng, 600, 6, 3, 4)
	net := tinymlops.NewNetwork([]int{6},
		tinymlops.Dense(6, 24, rng), tinymlops.ReLU(), tinymlops.Dense(24, 3, rng))
	if _, err := tinymlops.Train(net, ds.X, ds.Y, tinymlops.TrainConfig{
		Epochs: 6, BatchSize: 32, Optimizer: tinymlops.SGD(0.1), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	// Watermark.
	bits := tinymlops.WatermarkBits("owner", 24)
	if err := tinymlops.EmbedWatermark(net, "owner", bits, tinymlops.DefaultStaticWatermarkConfig()); err != nil {
		t.Fatal(err)
	}
	got, err := tinymlops.ExtractWatermark(net, "owner", 24, tinymlops.DefaultStaticWatermarkConfig())
	if err != nil || tinymlops.BitErrorRate(bits, got) != 0 {
		t.Fatalf("watermark: %v BER=%v", err, tinymlops.BitErrorRate(bits, got))
	}
	// Extraction + defense.
	bb := tinymlops.Defend(tinymlops.ModelBlackBox(net), tinymlops.Top1Defense{})
	student := tinymlops.NewNetwork([]int{6},
		tinymlops.Dense(6, 24, rng), tinymlops.ReLU(), tinymlops.Dense(24, 3, rng))
	if _, err := tinymlops.ExtractModel(bb, student, ds.X.RowSlice(0, 100),
		tinymlops.ExtractionConfig{Epochs: 5, LR: 0.05, RNG: rng}); err != nil {
		t.Fatal(err)
	}
	if a := tinymlops.Agreement(tinymlops.ModelBlackBox(net), tinymlops.ModelBlackBox(student), ds.X.RowSlice(100, 300)); a < 0.5 {
		t.Fatalf("clone agreement %v unexpectedly low", a)
	}
	// Verifiable inference.
	proof, err := tinymlops.ProveInference(net, ds.X.RowSlice(0, 8))
	if err != nil {
		t.Fatal(err)
	}
	ok, _, err := tinymlops.VerifyInference(net, ds.X.RowSlice(0, 8), proof)
	if err != nil || !ok {
		t.Fatalf("verifiable inference: ok=%v err=%v", ok, err)
	}
	// Scramble / unscramble.
	if err := tinymlops.ScrambleModel(net, "key"); err != nil {
		t.Fatal(err)
	}
	if err := tinymlops.UnscrambleModel(net, "key"); err != nil {
		t.Fatal(err)
	}
	got2, _ := tinymlops.ExtractWatermark(net, "owner", 24, tinymlops.DefaultStaticWatermarkConfig())
	if tinymlops.BitErrorRate(bits, got2) != 0 {
		t.Fatal("scramble round trip destroyed the watermark")
	}
}

func TestPublicAPIFederated(t *testing.T) {
	rng := tinymlops.NewRNG(6)
	ds := tinymlops.Blobs(rng, 800, 4, 3, 4)
	train, test := ds.Split(0.8, rng)
	shards := tinymlops.PartitionDirichlet(rng, train, 4, 1)
	clients := tinymlops.MakeFederatedClients(train, shards, "c")
	global := tinymlops.NewNetwork([]int{4},
		tinymlops.Dense(4, 16, rng), tinymlops.ReLU(), tinymlops.Dense(16, 3, rng))
	co, err := tinymlops.NewFederatedCoordinator(global, clients, test.X, test.Y,
		tinymlops.FederatedConfig{Rounds: 4, LocalEpochs: 2, LocalBatch: 16, LR: 0.1, Seed: 7,
			Codec: tinymlops.TernaryCodec{}})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats[len(stats)-1].TestAccuracy < 0.8 {
		t.Fatalf("federated accuracy %v", stats[len(stats)-1].TestAccuracy)
	}
}
