package enclave

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"tinymlops/internal/nn"
	"tinymlops/internal/procvm"
)

// Session is a cloud-tier protected-execution context: it loads sealed
// model artifacts into the enclave, attests what it loaded, and executes
// offload suffixes (for watermarked networks) and compiled procvm modules
// (for obfuscated deployments) inside the protected world. Plaintext model
// bytes exist only behind the Session after Unseal — the simulation's
// stand-in for enclave-resident memory. A Session is safe for concurrent
// use by any number of goroutines: loads and lookups serialize on one
// mutex, and execution uses only read-shared state (nn.ForwardBatch and
// procvm.Runtime.Run perform no model writes).
type Session struct {
	enc *Enclave

	mu   sync.RWMutex
	arts map[string]*sessionArtifact
}

type sessionArtifact struct {
	measurement [32]byte
	net         *nn.Network
	mod         *procvm.Module
}

// Session error sentinels.
var (
	ErrUnknownArtifact = errors.New("enclave: artifact not loaded in session")
	ErrBadArtifact     = errors.New("enclave: sealed blob does not decode to the expected artifact")
)

// NewSession opens a protected-execution session on an enclave.
func NewSession(e *Enclave) *Session {
	return &Session{enc: e, arts: map[string]*sessionArtifact{}}
}

// Enclave returns the backing enclave (for report verification metadata).
func (s *Session) Enclave() *Enclave { return s.enc }

// Slowdown is the protected world's latency factor.
func (s *Session) Slowdown() float64 { return s.enc.Slowdown }

// LoadSealedNetwork unseals a network artifact into the session under id
// and returns its measurement (the SHA-256 of the plaintext bytes).
// Tampered blobs, blobs sealed to a different enclave, and plaintexts that
// are not a canonical serialized network all reject.
func (s *Session) LoadSealedNetwork(id string, sealed []byte) ([32]byte, error) {
	plain, err := s.enc.Unseal(sealed)
	if err != nil {
		return [32]byte{}, err
	}
	net, err := nn.UnmarshalNetwork(plain)
	if err != nil {
		return [32]byte{}, fmt.Errorf("%w: %v", ErrBadArtifact, err)
	}
	meas := sha256.Sum256(plain)
	s.mu.Lock()
	s.arts[id] = &sessionArtifact{measurement: meas, net: net}
	s.mu.Unlock()
	return meas, nil
}

// LoadSealedModule unseals a compiled procvm module into the session under
// id and returns its measurement. The plaintext must be a canonical PVM1
// encoding (truncation, trailing bytes and garbage reject).
func (s *Session) LoadSealedModule(id string, sealed []byte) ([32]byte, error) {
	plain, err := s.enc.Unseal(sealed)
	if err != nil {
		return [32]byte{}, err
	}
	mod, err := procvm.DecodeModule(plain)
	if err != nil {
		return [32]byte{}, fmt.Errorf("%w: %v", ErrBadArtifact, err)
	}
	meas := sha256.Sum256(plain)
	s.mu.Lock()
	s.arts[id] = &sessionArtifact{measurement: meas, mod: mod}
	s.mu.Unlock()
	return meas, nil
}

// Attest produces a freshness-bound report over the loaded artifact's
// measurement. A verifier holding the manufacturer root checks it with
// VerifyReport and compares the measurement against the expected digest.
func (s *Session) Attest(id string, nonce []byte) (Report, error) {
	s.mu.RLock()
	art, ok := s.arts[id]
	s.mu.RUnlock()
	if !ok {
		return Report{}, fmt.Errorf("%w: %s", ErrUnknownArtifact, id)
	}
	return s.enc.Attest(art.measurement, nonce), nil
}

// Measurement returns the loaded artifact's measurement.
func (s *Session) Measurement(id string) ([32]byte, error) {
	s.mu.RLock()
	art, ok := s.arts[id]
	s.mu.RUnlock()
	if !ok {
		return [32]byte{}, fmt.Errorf("%w: %s", ErrUnknownArtifact, id)
	}
	return art.measurement, nil
}

// Network exposes a loaded network for protected suffix execution. The
// returned network is enclave-resident state: callers run it, they do not
// re-export it.
func (s *Session) Network(id string) (*nn.Network, error) {
	s.mu.RLock()
	art, ok := s.arts[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownArtifact, id)
	}
	if art.net == nil {
		return nil, fmt.Errorf("%w: %s holds a module, not a network", ErrUnknownArtifact, id)
	}
	return art.net, nil
}

// Module returns a loaded compiled module.
func (s *Session) Module(id string) (*procvm.Module, error) {
	s.mu.RLock()
	art, ok := s.arts[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownArtifact, id)
	}
	if art.mod == nil {
		return nil, fmt.Errorf("%w: %s holds a network, not a module", ErrUnknownArtifact, id)
	}
	return art.mod, nil
}

// RunModule executes a loaded module inside the enclave on one input
// vector. Gas metering applies exactly as outside the protected world: a
// module that exhausts its pinned limit mid-suffix fails with
// procvm.ErrOutOfGas and no partial output.
func (s *Session) RunModule(id string, input []float32) (procvm.Result, error) {
	mod, err := s.Module(id)
	if err != nil {
		return procvm.Result{}, err
	}
	rt := procvm.NewRuntime(mod.Caps)
	if mod.GasLimit > rt.MaxGas {
		rt.MaxGas = mod.GasLimit
	}
	return rt.Run(mod, input)
}
