package enclave

import (
	"bytes"
	"crypto/sha256"
	"testing"

	"tinymlops/internal/compat"
	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

// fuzzModuleBytes is a canonical PVM1 encoding of a real compiled module,
// used to seed the corpus with a plaintext the decoder accepts.
func fuzzModuleBytes(tb testing.TB) []byte {
	rng := tensor.NewRNG(3)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 6, rng), nn.NewReLU(), nn.NewDense(6, 2, rng))
	m, err := compat.CompileProcVM(net, compat.CompileOptions{Name: "fuzz-seed"})
	if err != nil {
		tb.Fatal(err)
	}
	return m.Encode()
}

// FuzzSealedModuleRoundTrip drives arbitrary plaintexts through the
// seal → LoadSealedModule path and pins the trusted-loading contract:
//
//   - a blob sealed by the session's own enclave loads exactly when its
//     plaintext is a canonical module encoding, and then the reported
//     measurement is the SHA-256 of that plaintext, the attestation
//     verifies under the manufacturer root, and the loaded module
//     re-encodes to the identical bytes;
//   - flipping any byte of the sealed blob fails authentication;
//   - the same blob rejects in a different enclave (even same root key);
//   - feeding the raw input directly as a "sealed" blob never panics and
//     never loads.
func FuzzSealedModuleRoundTrip(f *testing.F) {
	valid := fuzzModuleBytes(f)
	f.Add(valid, uint8(0))
	f.Add(valid[:len(valid)/2], uint8(3)) // truncated module plaintext
	f.Add(append(append([]byte(nil), valid...), 0xFF), uint8(7))
	f.Add([]byte("PVM1\n"), uint8(1))
	f.Add([]byte{}, uint8(2))

	root := []byte("fuzz-manufacturer-root-key-0123456789")
	f.Fuzz(func(t *testing.T, plain []byte, flipByte uint8) {
		enc, err := New("fuzz-enclave", root, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		sess := NewSession(enc)

		sealed, err := enc.Seal(plain)
		if err != nil {
			t.Fatalf("seal: %v", err)
		}
		meas, err := sess.LoadSealedModule("art", sealed)
		if err == nil {
			if meas != sha256.Sum256(plain) {
				t.Fatal("measurement is not the plaintext SHA-256")
			}
			rep, err := sess.Attest("art", []byte{1, 2, 3})
			if err != nil {
				t.Fatal(err)
			}
			if !VerifyReport(root, rep) || rep.Measurement != meas {
				t.Fatal("attestation over loaded module does not verify")
			}
			mod, err := sess.Module("art")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(mod.Encode(), plain) {
				t.Fatal("loaded module re-encodes to different bytes (non-canonical plaintext accepted)")
			}
		}

		// Tampering with any byte of the sealed blob must reject.
		if len(sealed) > 0 {
			tampered := append([]byte(nil), sealed...)
			tampered[int(flipByte)%len(tampered)] ^= 0x01
			if _, err := sess.LoadSealedModule("tampered", tampered); err == nil {
				t.Fatal("tampered sealed blob loaded")
			}
		}

		// The same blob sealed for this enclave must not open elsewhere.
		other, err := New("other-enclave", root, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewSession(other).LoadSealedModule("art", sealed); err == nil {
			t.Fatal("sealed blob crossed enclave identities")
		}

		// Raw fuzz input as a sealed blob: must fail cleanly.
		if _, err := sess.LoadSealedModule("raw", plain); err == nil {
			t.Fatal("unauthenticated bytes loaded as a sealed module")
		}
	})
}
