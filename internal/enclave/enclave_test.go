package enclave

import (
	"bytes"
	"crypto/sha256"
	"testing"
)

var root = []byte("manufacturer-root-key-for-tests")

func TestSealUnsealRoundTrip(t *testing.T) {
	e, err := New("dev-1", root, 2)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("model weights bytes")
	sealed, err := e.Seal(secret)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, secret) {
		t.Fatal("sealed blob leaks plaintext")
	}
	got, err := e.Unseal(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("unsealed plaintext differs")
	}
}

func TestUnsealDetectsTampering(t *testing.T) {
	e, _ := New("dev-1", root, 2)
	sealed, _ := e.Seal([]byte("payload"))
	sealed[len(sealed)-1] ^= 1
	if _, err := e.Unseal(sealed); err == nil {
		t.Fatal("tampered blob unsealed")
	}
}

func TestSealedBlobBoundToEnclave(t *testing.T) {
	e1, _ := New("dev-1", root, 2)
	e2, _ := New("dev-2", root, 2)
	sealed, _ := e1.Seal([]byte("secret"))
	if _, err := e2.Unseal(sealed); err == nil {
		t.Fatal("blob sealed on dev-1 unsealed on dev-2")
	}
}

func TestSealNoncesNeverRepeat(t *testing.T) {
	e, _ := New("dev-1", root, 2)
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		sealed, err := e.Seal([]byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		nonce := string(sealed[:12])
		if seen[nonce] {
			t.Fatal("nonce reuse detected")
		}
		seen[nonce] = true
	}
}

func TestAttestVerify(t *testing.T) {
	e, _ := New("dev-1", root, 2)
	meas := sha256.Sum256([]byte("model artifact"))
	nonce := []byte("verifier-nonce")
	r := e.Attest(meas, nonce)
	if !VerifyReport(root, r) {
		t.Fatal("genuine report rejected")
	}
	// Forged measurement fails.
	r2 := r
	r2.Measurement[0] ^= 1
	if VerifyReport(root, r2) {
		t.Fatal("forged measurement accepted")
	}
	// Wrong root key fails.
	if VerifyReport([]byte("other-root"), r) {
		t.Fatal("report verified under wrong root")
	}
	// Replay under a different enclave ID fails.
	r3 := r
	r3.EnclaveID = "dev-2"
	if VerifyReport(root, r3) {
		t.Fatal("report accepted for wrong enclave")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", nil, 2); err == nil {
		t.Fatal("accepted empty root key")
	}
	if _, err := New("x", root, 0.5); err == nil {
		t.Fatal("accepted slowdown < 1")
	}
}

func TestExecutionPlans(t *testing.T) {
	e, _ := New("dev-1", root, 2)
	full := e.PlanFullEnclave(1000)
	if full.LatencyFactor != 2 || full.EnclaveMACs != 1000 {
		t.Fatalf("full plan = %+v", full)
	}
	// Slalom with 10% of MACs in the enclave: factor 1.1 at slowdown 2.
	sl, err := e.PlanSlalom(1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sl.LatencyFactor < 1.09 || sl.LatencyFactor > 1.11 {
		t.Fatalf("slalom factor = %v, want ≈1.1", sl.LatencyFactor)
	}
	base := PlanUntrusted(1000)
	if base.LatencyFactor != 1 {
		t.Fatalf("untrusted factor = %v", base.LatencyFactor)
	}
	if _, err := e.PlanSlalom(100, 200); err == nil {
		t.Fatal("accepted enclaveMACs > totalMACs")
	}
	// Zero-MAC model degenerates gracefully.
	z, err := e.PlanSlalom(0, 0)
	if err != nil || z.LatencyFactor != 1 {
		t.Fatalf("zero plan = %+v, %v", z, err)
	}
}
