package enclave

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"tinymlops/internal/compat"
	"tinymlops/internal/nn"
	"tinymlops/internal/procvm"
	"tinymlops/internal/tensor"
)

func testSessionFixture(t *testing.T) (*Session, *procvm.Module, *nn.Network, []byte) {
	t.Helper()
	root := []byte("session-test-root-key-0123456789ab")
	enc, err := New("test-enclave", root, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(11)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 8, rng), nn.NewReLU(), nn.NewDense(8, 3, rng))
	mod, err := compat.CompileProcVM(net, compat.CompileOptions{Name: "sess"})
	if err != nil {
		t.Fatal(err)
	}
	return NewSession(enc), mod, net, root
}

// TestSessionErrorPaths is the trusted-loading failure table: every way a
// protected artifact can be wrong — tampered blob, wrong enclave, garbage
// plaintext, kind confusion, unknown IDs, forged reports — must reject
// with the matching sentinel and leave the session unpolluted.
func TestSessionErrorPaths(t *testing.T) {
	sess, mod, net, root := testSessionFixture(t)
	enc := sess.Enclave()
	modBlob := mod.Encode()
	netBlob, err := net.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	sealedMod, err := enc.Seal(modBlob)
	if err != nil {
		t.Fatal(err)
	}
	sealedNet, err := enc.Seal(netBlob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.LoadSealedModule("mod", sealedMod); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.LoadSealedNetwork("net", sealedNet); err != nil {
		t.Fatal(err)
	}

	otherEnc, err := New("other-enclave", root, 2)
	if err != nil {
		t.Fatal(err)
	}
	tamper := func(b []byte, i int) []byte {
		out := append([]byte(nil), b...)
		out[i%len(out)] ^= 0x40
		return out
	}
	sealGarbage := func(plain []byte) []byte {
		s, err := enc.Seal(plain)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	loadErrs := []struct {
		name string
		do   func() error
		want error // nil = any error accepted
	}{
		{"tampered sealed module", func() error {
			_, err := sess.LoadSealedModule("x", tamper(sealedMod, 9))
			return err
		}, nil},
		{"tampered sealed network", func() error {
			_, err := sess.LoadSealedNetwork("x", tamper(sealedNet, 31))
			return err
		}, nil},
		{"wrong enclave", func() error {
			_, err := NewSession(otherEnc).LoadSealedModule("x", sealedMod)
			return err
		}, nil},
		{"sealed garbage as module", func() error {
			_, err := sess.LoadSealedModule("x", sealGarbage([]byte("not a module")))
			return err
		}, ErrBadArtifact},
		{"sealed truncated module", func() error {
			_, err := sess.LoadSealedModule("x", sealGarbage(modBlob[:len(modBlob)/2]))
			return err
		}, ErrBadArtifact},
		{"sealed module with trailing bytes", func() error {
			_, err := sess.LoadSealedModule("x", sealGarbage(append(append([]byte(nil), modBlob...), 0)))
			return err
		}, ErrBadArtifact},
		{"sealed network as module", func() error {
			_, err := sess.LoadSealedModule("x", sealedNet)
			return err
		}, ErrBadArtifact},
		{"unknown artifact module", func() error {
			_, err := sess.Module("missing")
			return err
		}, ErrUnknownArtifact},
		{"unknown artifact attest", func() error {
			_, err := sess.Attest("missing", []byte{1})
			return err
		}, ErrUnknownArtifact},
		{"unknown artifact run", func() error {
			_, err := sess.RunModule("missing", make([]float32, 4))
			return err
		}, ErrUnknownArtifact},
		{"network artifact run as module", func() error {
			_, err := sess.RunModule("net", make([]float32, 4))
			return err
		}, ErrUnknownArtifact},
		{"network artifact fetched as module", func() error {
			_, err := sess.Module("net")
			return err
		}, ErrUnknownArtifact},
	}
	for _, tc := range loadErrs {
		err := tc.do()
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: error %v does not wrap %v", tc.name, err, tc.want)
		}
		if _, err := sess.Module("x"); err == nil {
			t.Errorf("%s: failed load left artifact %q in the session", tc.name, "x")
		}
	}

	// Forged attestation reports: any flipped field breaks the MAC chain.
	rep, err := sess.Attest("mod", []byte("nonce-1"))
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyReport(root, rep) {
		t.Fatal("genuine report rejected")
	}
	bad := rep
	bad.Measurement[0] ^= 1
	if VerifyReport(root, bad) {
		t.Error("report with flipped measurement verified")
	}
	bad = rep
	bad.Nonce = []byte("nonce-2")
	if VerifyReport(root, bad) {
		t.Error("report with replayed nonce verified")
	}
	bad = rep
	bad.EnclaveID = "imposter"
	if VerifyReport(root, bad) {
		t.Error("report with forged identity verified")
	}
	bad = rep
	bad.MAC = append([]byte(nil), rep.MAC...)
	bad.MAC[0] ^= 1
	if VerifyReport(root, bad) {
		t.Error("report with corrupted MAC verified")
	}
	if VerifyReport([]byte("some-other-manufacturer-root-0000"), rep) {
		t.Error("report verified under the wrong root")
	}
}

// TestRunModuleGasExhaustionMidSuffix pins the protected world's metering:
// a module whose pinned gas limit is too small for one inference fails
// with procvm.ErrOutOfGas — inside the enclave exactly as outside — and
// returns no partial output.
func TestRunModuleGasExhaustionMidSuffix(t *testing.T) {
	sess, mod, _, _ := testSessionFixture(t)
	starved, err := procvm.DecodeModule(mod.Encode())
	if err != nil {
		t.Fatal(err)
	}
	starved.GasLimit = mod.GasLimit / 2 // dies partway through the suffix
	sealed, err := sess.Enclave().Seal(starved.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.LoadSealedModule("starved", sealed); err != nil {
		t.Fatal(err)
	}
	res, err := sess.RunModule("starved", make([]float32, 4))
	if !errors.Is(err, procvm.ErrOutOfGas) {
		t.Fatalf("error %v, want %v", err, procvm.ErrOutOfGas)
	}
	if res.Output.IsVec && len(res.Output.Vec) > 0 {
		t.Fatal("gas exhaustion leaked a partial output")
	}
	// The healthy module still runs in the same session.
	healthy, err := sess.Enclave().Seal(mod.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.LoadSealedModule("healthy", healthy); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunModule("healthy", make([]float32, 4)); err != nil {
		t.Fatal(err)
	}
}

// TestSessionShared64Goroutines hammers one Session from 64 goroutines
// mixing loads, runs, attestations and measurements — the shape of a cloud
// tier serving many split sessions from one enclave. Every runner must see
// bit-identical outputs and verifiable reports; run under -race in CI.
func TestSessionShared64Goroutines(t *testing.T) {
	sess, mod, _, root := testSessionFixture(t)
	enc := sess.Enclave()
	sealed, err := enc.Seal(mod.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.LoadSealedModule("shared", sealed); err != nil {
		t.Fatal(err)
	}
	input := []float32{0.25, -1.5, 3, 0.125}
	ref, err := sess.RunModule("shared", input)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 64
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("own-%d", g%8)
			for q := 0; q < 10; q++ {
				res, err := sess.RunModule("shared", input)
				if err != nil {
					errCh <- err
					return
				}
				for i, v := range res.Output.Vec {
					if math.Float32bits(v) != math.Float32bits(ref.Output.Vec[i]) {
						errCh <- fmt.Errorf("goroutine %d: output %d diverged", g, i)
						return
					}
				}
				if res.GasUsed != ref.GasUsed {
					errCh <- fmt.Errorf("goroutine %d: gas %d != %d", g, res.GasUsed, ref.GasUsed)
					return
				}
				rep, err := sess.Attest("shared", []byte{byte(g), byte(q)})
				if err != nil {
					errCh <- err
					return
				}
				if !VerifyReport(root, rep) {
					errCh <- fmt.Errorf("goroutine %d: report failed verification", g)
					return
				}
				if q == 0 {
					// Interleave loads of per-goroutine artifacts to race
					// the map against the readers.
					if _, err := sess.LoadSealedModule(id, sealed); err != nil {
						errCh <- err
						return
					}
				}
				if _, err := sess.Measurement("shared"); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestSessionNetworkAndSlowdown pins the remaining session accessors: a
// loaded network artifact is retrievable (and kind-guarded), and the
// session reports its enclave's slowdown for cloud-tier cost accounting.
func TestSessionNetworkAndSlowdown(t *testing.T) {
	sess, mod, net, _ := testSessionFixture(t)
	if sess.Slowdown() != 2 {
		t.Fatalf("slowdown %v, want the enclave's 2", sess.Slowdown())
	}
	blob, err := net.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := sess.Enclave().Seal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.LoadSealedNetwork("net", sealed); err != nil {
		t.Fatal(err)
	}
	got, err := sess.Network("net")
	if err != nil {
		t.Fatal(err)
	}
	out, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, blob) {
		t.Fatal("network artifact did not round-trip through the session")
	}
	// A module artifact fetched as a network is kind confusion.
	sealedMod, err := sess.Enclave().Seal(mod.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.LoadSealedModule("mod2", sealedMod); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Network("mod2"); !errors.Is(err, ErrUnknownArtifact) {
		t.Fatalf("module fetched as network: %v, want ErrUnknownArtifact", err)
	}
}
