package enclave

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Enclave is one simulated protected execution environment, provisioned
// from a manufacturer root key. Keys never leave the struct; callers
// interact through Seal/Unseal/Attest.
type Enclave struct {
	// ID identifies the enclave instance (burned in at provisioning).
	ID string
	// Slowdown is the multiplicative latency factor of running inside the
	// protected world (≥1).
	Slowdown float64

	sealKey   [32]byte
	attestKey [32]byte
	monotonic uint64 // anti-rollback counter for sealed state
}

// New provisions an enclave from the manufacturer root key. Slowdown must
// be ≥ 1.
func New(id string, rootKey []byte, slowdown float64) (*Enclave, error) {
	if len(rootKey) == 0 {
		return nil, errors.New("enclave: empty root key")
	}
	if slowdown < 1 {
		return nil, fmt.Errorf("enclave: slowdown %v must be >= 1", slowdown)
	}
	e := &Enclave{ID: id, Slowdown: slowdown}
	e.sealKey = deriveKey(rootKey, "seal", id)
	e.attestKey = deriveKey(rootKey, "attest", id)
	return e, nil
}

func deriveKey(root []byte, purpose, id string) [32]byte {
	mac := hmac.New(sha256.New, root)
	mac.Write([]byte(purpose))
	mac.Write([]byte{0})
	mac.Write([]byte(id))
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// Seal encrypts plaintext under the enclave's sealing key with AES-GCM.
// The nonce is derived from an internal monotonic counter, which both
// avoids nonce reuse and gives sealed blobs an anti-rollback ordering.
func (e *Enclave) Seal(plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(e.sealKey[:])
	if err != nil {
		return nil, fmt.Errorf("enclave: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("enclave: %w", err)
	}
	e.monotonic++
	nonce := make([]byte, gcm.NonceSize())
	binary.LittleEndian.PutUint64(nonce, e.monotonic)
	sealed := gcm.Seal(nil, nonce, plaintext, []byte(e.ID))
	return append(nonce, sealed...), nil
}

// Unseal decrypts a blob produced by Seal. Any tampering with the blob or
// an attempt to unseal it in a different enclave fails authentication.
func (e *Enclave) Unseal(blob []byte) ([]byte, error) {
	block, err := aes.NewCipher(e.sealKey[:])
	if err != nil {
		return nil, fmt.Errorf("enclave: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("enclave: %w", err)
	}
	if len(blob) < gcm.NonceSize() {
		return nil, errors.New("enclave: sealed blob too short")
	}
	nonce, ct := blob[:gcm.NonceSize()], blob[gcm.NonceSize():]
	pt, err := gcm.Open(nil, nonce, ct, []byte(e.ID))
	if err != nil {
		return nil, fmt.Errorf("enclave: unseal failed (tampered or wrong enclave): %w", err)
	}
	return pt, nil
}

// Report is a remote-attestation statement: "enclave ID is running code/
// data with this measurement", bound to a verifier-chosen nonce.
type Report struct {
	EnclaveID   string
	Measurement [32]byte
	Nonce       []byte
	MAC         []byte
}

// Attest produces a report over a measurement (e.g. the SHA-256 of a model
// artifact) and a verifier-supplied freshness nonce.
func (e *Enclave) Attest(measurement [32]byte, nonce []byte) Report {
	return Report{
		EnclaveID:   e.ID,
		Measurement: measurement,
		Nonce:       append([]byte(nil), nonce...),
		MAC:         reportMAC(e.attestKey, e.ID, measurement, nonce),
	}
}

func reportMAC(key [32]byte, id string, measurement [32]byte, nonce []byte) []byte {
	mac := hmac.New(sha256.New, key[:])
	mac.Write([]byte(id))
	mac.Write([]byte{0})
	mac.Write(measurement[:])
	mac.Write(nonce)
	return mac.Sum(nil)
}

// VerifyReport checks a report against the manufacturer root key (the
// verifier re-derives the per-enclave attestation key, as an attestation
// service holding the root would).
func VerifyReport(rootKey []byte, r Report) bool {
	key := deriveKey(rootKey, "attest", r.EnclaveID)
	want := reportMAC(key, r.EnclaveID, r.Measurement, r.Nonce)
	return hmac.Equal(want, r.MAC)
}

// ExecutionPlan describes how much of a model runs inside the enclave and
// the resulting latency multiple versus fully-untrusted execution.
type ExecutionPlan struct {
	// Mode names the strategy ("untrusted", "full-enclave", "slalom").
	Mode string
	// EnclaveMACs of TotalMACs execute in the protected world.
	EnclaveMACs, TotalMACs int64
	// LatencyFactor multiplies the untrusted baseline latency.
	LatencyFactor float64
}

// PlanFullEnclave returns the cost of running all totalMACs inside the
// enclave (MLCapsule-style guarded execution).
func (e *Enclave) PlanFullEnclave(totalMACs int64) ExecutionPlan {
	return ExecutionPlan{
		Mode: "full-enclave", EnclaveMACs: totalMACs, TotalMACs: totalMACs,
		LatencyFactor: e.Slowdown,
	}
}

// PlanSlalom returns the cost of the Slalom partition: only the given
// nonlinear fraction of MACs executes inside the enclave, the (heavy)
// linear algebra stays outside. The latency factor interpolates between 1
// and the full slowdown accordingly.
func (e *Enclave) PlanSlalom(totalMACs, enclaveMACs int64) (ExecutionPlan, error) {
	if enclaveMACs < 0 || enclaveMACs > totalMACs {
		return ExecutionPlan{}, fmt.Errorf("enclave: enclaveMACs %d out of [0,%d]", enclaveMACs, totalMACs)
	}
	frac := 0.0
	if totalMACs > 0 {
		frac = float64(enclaveMACs) / float64(totalMACs)
	}
	return ExecutionPlan{
		Mode: "slalom", EnclaveMACs: enclaveMACs, TotalMACs: totalMACs,
		LatencyFactor: 1 + frac*(e.Slowdown-1),
	}, nil
}

// PlanUntrusted is the baseline: nothing protected, factor 1.
func PlanUntrusted(totalMACs int64) ExecutionPlan {
	return ExecutionPlan{Mode: "untrusted", TotalMACs: totalMACs, LatencyFactor: 1}
}
