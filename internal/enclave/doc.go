// Package enclave simulates a Secure Processing Environment (Intel SGX /
// ARM TrustZone class) for the protection mechanisms of §V and §VI:
// sealed (encrypted-at-rest) model storage, remote attestation of what
// the enclave is running, and a cost model for the measured slowdown of
// executing inside the protected world (MLCapsule reports ≈2× for
// MobileNet-class models; Slalom mitigates it by keeping linear layers
// outside).
//
// The cryptography is real (AES-GCM, HMAC-SHA-256 from the standard
// library); the isolation is simulated — there is no actual hardware
// boundary, only the protocol and its costs, which is what the paper's
// operational argument depends on.
//
// A Session is the trusted-loading layer on top: sealed artifacts —
// networks or compiled procvm modules — unseal only inside the session,
// which records the plaintext SHA-256 as the attestable measurement,
// rejects tampered blobs, kind confusion and non-canonical encodings,
// and executes module queries under the module's own pinned gas limit.
// The offload cloud tier serves protected suffixes through exactly this
// interface, so a vendor can prove to a customer what model their
// queries actually ran against.
package enclave
