package faults

import (
	"testing"
)

// TestChaosRollout10kBitIdenticalAcrossWorkerCounts is the headline
// acceptance scenario: a 10k-device staged rollout under 5% churn, flaky
// networks, battery deaths and injected mid-flash crashes must converge
// to the new version on every device, pass the deep invariant audit with
// zero violations, and produce a bit-identical outcome at 1, 4 and 16
// workers.
func TestChaosRollout10kBitIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-device scenario skipped in -short")
	}
	chaos := ChaosConfig{
		Seed:           1002,
		PChurn:         0.05, // the headline churn
		PDrop:          0.10, // flaky network
		PSpike:         0.15,
		PBatteryDeath:  0.03,
		PCrash:         0.20, // mid-flash power loss per install attempt
		PTelemetryLoss: 0.10,
	}
	var first *ScenarioResult
	for _, workers := range []int{1, 4, 16} {
		res, err := RunScenario(ScenarioConfig{
			Devices: 10_000, Workers: workers, Seed: 1001, Chaos: chaos,
			OffloadQueries: 2,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.FleetSize < 10_000 {
			t.Fatalf("fleet size %d < 10000", res.FleetSize)
		}
		if res.Converged != res.FleetSize {
			t.Fatalf("workers=%d: converged %d/%d", workers, res.Converged, res.FleetSize)
		}
		if !res.Audit.OK() {
			t.Fatalf("workers=%d: audit violations: %v", workers, res.Audit.Violations)
		}
		if res.Audit.ArtifactsVerified != res.FleetSize {
			t.Fatalf("workers=%d: only %d/%d deployments bit-exact vs the registry",
				workers, res.Audit.ArtifactsVerified, res.FleetSize)
		}
		if res.Audit.PartialInstalls != 0 {
			t.Fatalf("workers=%d: %d devices stuck mid-install", workers, res.Audit.PartialInstalls)
		}
		// The chaos must actually have happened — and been healed.
		if res.Crashes == 0 || res.RetriedUpdates == 0 {
			t.Fatalf("workers=%d: crashes=%d retried=%d — fault plane idle",
				workers, res.Crashes, res.RetriedUpdates)
		}
		if res.Rollout.DeltaTransfers == 0 {
			t.Fatalf("workers=%d: head-only update never shipped a delta", workers)
		}
		if res.ReconcileUpdated == 0 {
			t.Fatalf("workers=%d: no device needed reconciliation under 5%% churn", workers)
		}
		if res.TelemetryLost == 0 {
			t.Fatalf("workers=%d: no telemetry lost at 10%% loss rate", workers)
		}
		if o := res.Offload; o == nil || o.Mismatches != 0 || o.Split == 0 || o.Local == 0 {
			t.Fatalf("workers=%d: offload phase %+v — want bit-exact split and local traffic", workers, o)
		}
		// The serving matrix must actually be mixed: the fleet rotates
		// through five policy cohorts — int8, int4 (packed kernels on
		// 4-bit-capable hardware, fake-quantized float on the rest),
		// float32, watermarked and compiled procvm — and every one of
		// them, integer and protected variants included, serves split
		// traffic through the offload phase above.
		if res.IntServing == 0 || res.FloatServing == 0 {
			t.Fatalf("workers=%d: serving cohorts int=%d float=%d — want both", workers, res.IntServing, res.FloatServing)
		}
		if res.Int4Native == 0 {
			t.Fatalf("workers=%d: int4 cohort produced no native packed-int4 deployments", workers)
		}
		if res.Watermarked == 0 {
			t.Fatalf("workers=%d: watermarked cohort produced no marked deployments", workers)
		}
		if res.ProcVM == 0 {
			t.Fatalf("workers=%d: procvm cohort produced no compiled deployments", workers)
		}
		if first == nil {
			first = res
			t.Logf("10k chaos: fingerprint=%s crashes=%d attempts=%d retried=%d reconciled=%d telemetry_lost=%d",
				res.Fingerprint, res.Crashes, res.InstallAttempts, res.RetriedUpdates,
				res.ReconcileUpdated, res.TelemetryLost)
			continue
		}
		if res.Fingerprint != first.Fingerprint {
			t.Fatalf("workers=%d: fingerprint %s != workers=1's %s — outcome depends on scheduling",
				workers, res.Fingerprint, first.Fingerprint)
		}
		if res.Crashes != first.Crashes || res.InstallAttempts != first.InstallAttempts {
			t.Fatalf("workers=%d: fault accounting diverged (crashes %d vs %d, attempts %d vs %d)",
				workers, res.Crashes, first.Crashes, res.InstallAttempts, first.InstallAttempts)
		}
	}
}

// TestChaosOffloadPhaseDeterministicSmall is the fast (non -short-skipped)
// version of the offload acceptance: a 120-device fleet serves split
// queries under weather at 1, 4 and 16 workers; every answer must be
// bit-exact, the audit must stay clean, and the fingerprint — which
// covers the offload tallies — must be identical across worker counts.
func TestChaosOffloadPhaseDeterministicSmall(t *testing.T) {
	chaos := ChaosConfig{
		Seed:          2002,
		PDrop:         0.25, // frequent outages migrate cuts to full-edge
		PSpike:        0.20,
		PBatteryDeath: 0.05,
	}
	var first *ScenarioResult
	for _, workers := range []int{1, 4, 16} {
		res, err := RunScenario(ScenarioConfig{
			Devices: 120, Workers: workers, Seed: 2001, Chaos: chaos,
			OffloadQueries: 3, OffloadRounds: 4,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		o := res.Offload
		if o == nil {
			t.Fatalf("workers=%d: no offload report", workers)
		}
		if o.Mismatches != 0 {
			t.Fatalf("workers=%d: %d non-bit-exact offloaded answers", workers, o.Mismatches)
		}
		if o.Split == 0 || o.Local == 0 {
			t.Fatalf("workers=%d: offload modes unexercised: %+v", workers, o)
		}
		if o.Replans == 0 {
			t.Fatalf("workers=%d: weather never moved a cut: %+v", workers, o)
		}
		if o.CloudServed != o.Split {
			t.Fatalf("workers=%d: cloud served %d vs %d splits", workers, o.CloudServed, o.Split)
		}
		if res.Int4Native == 0 {
			t.Fatalf("workers=%d: int4 cohort produced no native packed-int4 deployments", workers)
		}
		if !res.Audit.OK() {
			t.Fatalf("workers=%d: audit violations after offload phase: %v", workers, res.Audit.Violations)
		}
		if first == nil {
			first = res
			t.Logf("offload phase: queries=%d split=%d local=%d fallback=%d replans=%d errors=%d activation=%dB batches=%d",
				o.Queries, o.Split, o.Local, o.Fallback, o.Replans, o.Errors, o.ActivationBytes, o.CloudBatches)
			continue
		}
		if res.Fingerprint != first.Fingerprint {
			t.Fatalf("workers=%d: fingerprint %s != %s — offload outcome depends on scheduling",
				workers, res.Fingerprint, first.Fingerprint)
		}
	}
}

// TestChaosFedPhaseDeterministicSmall drives the hierarchical federated
// phase inside a small scenario at 1, 4 and 16 workers: a 24-device fleet
// converges a rollout, then a 48-client/4-aggregator fed fleet runs masked
// two-tier rounds under the same weather plane, publishes the aggregate
// into the model line, and the scenario fingerprint — which covers the fed
// tallies and the global-weight digest — must be identical across worker
// counts.
func TestChaosFedPhaseDeterministicSmall(t *testing.T) {
	chaos := ChaosConfig{
		Seed:            3002,
		PDrop:           0.10,
		PCrash:          0.15,
		PDropout:        0.20, // fed-client weather
		PStraggler:      0.25,
		StragglerFactor: 8, // past the phase's deadline: stragglers go late
	}
	var first *ScenarioResult
	for _, workers := range []int{1, 4, 16} {
		res, err := RunScenario(ScenarioConfig{
			Devices: 24, Workers: workers, Seed: 3001, Chaos: chaos,
			FedClients: 48, FedAggregators: 4, FedRounds: 3,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		f := res.Fed
		if f == nil {
			t.Fatalf("workers=%d: no fed report", workers)
		}
		if f.Participants == 0 || f.Dropouts == 0 || f.Late == 0 {
			t.Fatalf("workers=%d: fed weather idle: %+v", workers, f)
		}
		if f.CloudUplinkBytes == 0 || f.CloudUplinkBytes >= f.EdgeUplinkBytes {
			t.Fatalf("workers=%d: cloud uplink %d vs edge %d — no fan-in saving",
				workers, f.CloudUplinkBytes, f.EdgeUplinkBytes)
		}
		if f.PublishedID == "" || f.Personalized != 4 {
			t.Fatalf("workers=%d: publish/personalize incomplete: %+v", workers, f)
		}
		if f.FinalAccuracy < 0.6 {
			t.Fatalf("workers=%d: fed global accuracy %v", workers, f.FinalAccuracy)
		}
		if !res.Audit.OK() {
			t.Fatalf("workers=%d: audit violations after fed phase: %v", workers, res.Audit.Violations)
		}
		if first == nil {
			first = res
			t.Logf("fed phase: clients=%d participants=%d dropouts=%d late=%d aggDrop=%d edgeUp=%dB cloudUp=%dB acc=%.3f digest=%s",
				f.Clients, f.Participants, f.Dropouts, f.Late, f.AggDropouts,
				f.EdgeUplinkBytes, f.CloudUplinkBytes, f.FinalAccuracy, f.GlobalDigest)
			continue
		}
		if res.Fingerprint != first.Fingerprint {
			t.Fatalf("workers=%d: fingerprint %s != %s — fed outcome depends on scheduling",
				workers, res.Fingerprint, first.Fingerprint)
		}
	}
}
