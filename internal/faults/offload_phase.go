package faults

import (
	"errors"
	"fmt"
	"math"

	"tinymlops/internal/core"
	"tinymlops/internal/device"
	"tinymlops/internal/offload"
)

// OffloadReport accounts the chaos scenario's offload phase. Everything
// except CloudBatches and MaxCloudBatch is a pure function of the seeds —
// batch composition depends on scheduling, but per-query outcomes never
// do, because ForwardBatch answers are bit-identical at any batch size.
type OffloadReport struct {
	// Queries counts queries served (all modes); Denied counts metering
	// denials; Errors counts queries the weather failed outright (a dead
	// battery under an offline round leaves no way to answer).
	Queries int64
	Denied  int64
	Errors  int64
	// Split, Local and Fallback decompose the served queries by mode.
	Split    int64
	Local    int64
	Fallback int64
	// Replans counts cut moves as the weather shifted conditions.
	Replans int64
	// ActivationBytes is the uplinked boundary traffic.
	ActivationBytes int64
	// Mismatches counts answers that were not bit-identical to the
	// device's own monolithic forward — the activation-boundary
	// bit-exactness audit; any nonzero value fails the scenario.
	Mismatches int64
	// CloudServed is the number of suffix requests the tier executed
	// (equals Split); CloudBatches and MaxCloudBatch describe coalescing
	// and are scheduling-dependent — excluded from the fingerprint.
	CloudServed   int64
	CloudBatches  int64
	MaxCloudBatch int
}

// runOffloadPhase opens a split session on every deployment against one
// shared cloud tier and drives cfg.OffloadQueries queries per device per
// weather round, auditing every answer for bit-exactness against the
// device's own model.
func runOffloadPhase(p *core.Platform, plane *Plane, round *uint64, cfg ScenarioConfig, rows [][]float32) (*OffloadReport, error) {
	rounds := cfg.OffloadRounds
	if rounds < 1 {
		rounds = 3
	}
	deps := p.Deployments()
	cloud := offload.NewCloud(offload.CloudConfig{
		MaxBatch:    32,
		QueueCap:    2*len(deps) + 256, // never shed: shedding composition is scheduling-dependent
		Dispatchers: 2,
	})
	cloud.Start()
	defer cloud.Close()

	// Sessions are created serially under the calm terminal weather, so
	// every initial plan derives from (profile, calm link) alone — and
	// sealing/attestation order into the shared cloud enclave stays
	// deterministic. Every cohort splits: float ships float activations,
	// integer-native ships quantized boundary codes, watermarked and
	// compiled deployments execute their suffix inside the enclave.
	report := &OffloadReport{}
	sessions := make([]*core.OffloadSession, len(deps))
	for i, d := range deps {
		s, err := p.Offload(d.DeviceID, core.OffloadConfig{Cloud: cloud})
		if err != nil {
			return nil, fmt.Errorf("faults: offload session for %s: %w", d.DeviceID, err)
		}
		sessions[i] = s
	}

	devs := make([]*deviceHandle, len(deps))
	for i, d := range deps {
		devs[i] = &deviceHandle{dep: d}
	}
	for r := 0; r < rounds; r++ {
		*round++
		plane.ApplyRound(*round, fleetDevices(deps))
		err := p.Engine().ForEach(len(deps), func(i int) error {
			h := devs[i]
			for q := 0; q < cfg.OffloadQueries; q++ {
				x := rows[q%len(rows)]
				out, ierr := sessions[i].Infer(x)
				if ierr != nil {
					if errors.Is(ierr, core.ErrQueryDenied) {
						h.denied++
					} else {
						h.errors++
					}
					continue
				}
				h.queries++
				switch out.Split.Mode {
				case offload.ModeSplit:
					h.split++
				case offload.ModeLocal:
					h.local++
				case offload.ModeFallback:
					h.fallback++
				}
				if out.Split.Replanned {
					h.replans++
				}
				h.activationBytes += out.Split.ActivationBytes
				// Activation-boundary bit-exactness: the split answer must
				// equal the device's own monolithic forward, bit for bit.
				// ReferenceLogits runs the deployment's actual executor —
				// float engine, integer kernels, watermarked copy or
				// compiled VM — so the audit is uniform across variants.
				want := h.dep.ReferenceLogits(x)
				if len(out.Split.Logits) != len(want) {
					h.mismatches++
					continue
				}
				for j := range want {
					if math.Float32bits(out.Split.Logits[j]) != math.Float32bits(want[j]) {
						h.mismatches++
						break
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("faults: offload round %d: %w", r, err)
		}
	}
	for _, h := range devs {
		report.Queries += h.queries
		report.Denied += h.denied
		report.Errors += h.errors
		report.Split += h.split
		report.Local += h.local
		report.Fallback += h.fallback
		report.Replans += h.replans
		report.ActivationBytes += h.activationBytes
		report.Mismatches += h.mismatches
	}
	st := cloud.Stats()
	report.CloudServed = st.Served
	report.CloudBatches = st.Batches
	report.MaxCloudBatch = st.MaxBatchSize
	if report.Mismatches > 0 {
		return report, fmt.Errorf("faults: %d offloaded answers were not bit-exact with the on-device forward", report.Mismatches)
	}
	if report.CloudServed != report.Split {
		return report, fmt.Errorf("faults: cloud served %d suffix requests but %d queries split", report.CloudServed, report.Split)
	}
	return report, nil
}

// deviceHandle accumulates one device's offload-phase tallies; reduced in
// device-ID order so the report is worker-count independent.
type deviceHandle struct {
	dep             *core.Deployment
	queries         int64
	denied          int64
	errors          int64
	split           int64
	local           int64
	fallback        int64
	replans         int64
	activationBytes int64
	mismatches      int64
}

// fleetDevices extracts the device objects behind deployments for the
// fault plane's weather application.
func fleetDevices(deps []*core.Deployment) []*device.Device {
	out := make([]*device.Device, len(deps))
	for i, d := range deps {
		out[i] = d.Device()
	}
	return out
}
