package faults

import (
	"errors"
	"testing"

	"tinymlops/internal/device"
	"tinymlops/internal/tensor"
)

func testChaos() ChaosConfig {
	return ChaosConfig{
		Seed: 99, PDrop: 0.1, PSpike: 0.2, PBatteryDeath: 0.05,
		PCrash: 0.3, PChurn: 0.05, PTelemetryLoss: 0.1,
		PDropout: 0.2, PStraggler: 0.3,
	}
}

func TestProfileIsPureAndSeedKeyed(t *testing.T) {
	p := New(testChaos())
	a := p.Profile(3, "phone-00")
	for i := 0; i < 10; i++ {
		if p.Profile(3, "phone-00") != a {
			t.Fatal("Profile not pure")
		}
	}
	q := New(testChaos())
	if q.Profile(3, "phone-00") != a {
		t.Fatal("Profile depends on plane instance, not (seed, round, id)")
	}
	other := testChaos()
	other.Seed = 100
	diff := 0
	for r := uint64(0); r < 64; r++ {
		if New(other).Profile(r, "phone-00") != p.Profile(r, "phone-00") {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds drew identical fault histories")
	}
}

func TestProfileRatesRoughlyMatchConfig(t *testing.T) {
	cfg := ChaosConfig{Seed: 7, PDrop: 0.2, PCrash: 0}
	p := New(cfg)
	offline := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if p.Profile(1, deviceID(i)).Offline {
			offline++
		}
	}
	frac := float64(offline) / n
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("offline fraction %.3f, want ≈0.2", frac)
	}
	// Zero config injects nothing.
	calm := New(ChaosConfig{Seed: 7})
	for i := 0; i < 100; i++ {
		f := calm.Profile(1, deviceID(i))
		if f.Offline || f.BatteryDeath || f.Churned || f.Dropout || f.Straggler || f.TelemetryLoss || f.LatencySpike {
			t.Fatalf("zero-rate plane injected %+v", f)
		}
	}
}

func deviceID(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+(i/26)%10)) + string(rune('0'+i/260))
}

func TestChurnSpansTwoRounds(t *testing.T) {
	cfg := ChaosConfig{Seed: 3, PChurn: 0.2}
	p := New(cfg)
	// Find a device that churns in some round and verify the absence
	// covers the next round too.
	found := false
	for i := 0; i < 200 && !found; i++ {
		id := deviceID(i)
		for r := uint64(1); r < 8; r++ {
			drawn := p.draw("churn", r, id) < cfg.PChurn
			if !drawn {
				continue
			}
			found = true
			if !p.Profile(r, id).Churned || !p.Profile(r, id).Offline {
				t.Fatalf("%s churned in round %d but profile disagrees", id, r)
			}
			if !p.Profile(r+1, id).Churned {
				t.Fatalf("%s must stay away in round %d", id, r+1)
			}
			break
		}
	}
	if !found {
		t.Fatal("no churn drawn in 200 devices × 8 rounds at 20%")
	}
}

func TestApplyRoundImposesWeather(t *testing.T) {
	fleet, err := device.NewStandardFleet(device.FleetSpec{CountPerProfile: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	devs := fleet.Devices()
	p := New(testChaos())
	rep := p.ApplyRound(1, devs)
	if rep.Devices != len(devs) {
		t.Fatalf("report covers %d devices, want %d", rep.Devices, len(devs))
	}
	if rep.Offline == 0 || rep.LatencySpikes == 0 || rep.BatteryDeaths == 0 {
		t.Fatalf("weather too calm: %+v", rep)
	}
	for _, d := range devs {
		f := p.Profile(1, d.ID)
		wantNet := device.WiFi
		switch {
		case f.Offline:
			wantNet = device.Offline
		case f.LatencySpike:
			wantNet = device.Cellular
		}
		if !d.Caps.WallPowered() && d.Net() != wantNet {
			t.Fatalf("%s net %v, profile wants %v", d.ID, d.Net(), wantNet)
		}
		if d.Caps.WallPowered() {
			continue // battery faults cannot touch wall power
		}
		if f.BatteryDeath && d.BatteryLevel() != 0 {
			t.Fatalf("%s battery alive despite death fault", d.ID)
		}
		if !f.BatteryDeath && d.BatteryLevel() != 1 {
			t.Fatalf("%s battery %v, want recharged", d.ID, d.BatteryLevel())
		}
	}
	// Calm clears everything.
	p.Calm(devs)
	for _, d := range devs {
		if d.Net() != device.WiFi || d.BatteryLevel() != 1 {
			t.Fatalf("%s not calmed", d.ID)
		}
	}
}

func TestArmedInterrupterCrashesDeterministically(t *testing.T) {
	run := func() (int64, []int64) {
		p := New(ChaosConfig{Seed: 31, PCrash: 0.5})
		caps, _ := device.ProfileByName("edge-gateway")
		var flashed []int64
		for i := 0; i < 40; i++ {
			d := device.NewDevice(deviceID(i), caps, tensor.NewRNG(1))
			p.Arm(d)
			// Retry the same image until it completes.
			for attempt := 0; attempt < 50; attempt++ {
				if _, err := d.InstallResumable("img", 10000, 10000); err == nil {
					break
				} else if !errors.Is(err, device.ErrInstallInterrupted) {
					t.Fatal(err)
				}
			}
			c := d.Snapshot()
			flashed = append(flashed, c.FlashedBytes)
		}
		return p.Crashes(), flashed
	}
	c1, f1 := run()
	c2, f2 := run()
	if c1 == 0 {
		t.Fatal("no crashes at 50% rate")
	}
	if c1 != c2 {
		t.Fatalf("crash counts differ across identical runs: %d vs %d", c1, c2)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("device %d flashed %d vs %d across identical runs", i, f1[i], f2[i])
		}
		// Resume-not-restart: across any number of crashed attempts the
		// device programs each byte of the image exactly once.
		if f1[i] != 10000 {
			t.Fatalf("device %d flashed %d bytes for a 10000-byte image", i, f1[i])
		}
	}
}

func TestFedFaultsAdapter(t *testing.T) {
	p := New(ChaosConfig{Seed: 17, PDropout: 1, PStraggler: 1, StragglerFactor: 6})
	ff := p.FedFaults()
	f := ff(2, "client-3")
	if !f.Dropout {
		t.Fatal("dropout rate 1 must drop every client")
	}
	calm := New(ChaosConfig{Seed: 17, PStraggler: 1})
	g := calm.FedFaults()(2, "client-3")
	if g.Dropout || g.SlowFactor != 8 {
		t.Fatalf("straggler fault = %+v, want SlowFactor 8 (default)", g)
	}
}
