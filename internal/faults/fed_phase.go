package faults

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"

	"tinymlops/internal/core"
	"tinymlops/internal/dataset"
	"tinymlops/internal/fed"
	"tinymlops/internal/nn"
	"tinymlops/internal/quant"
	"tinymlops/internal/registry"
	"tinymlops/internal/tensor"
)

// FedReport records the hierarchical federated-learning phase: a synthetic
// client fleet (IDs disjoint from the device fleet, so its fault streams
// are independent draws from the same plane) trains the deployed model
// line for a few two-tier rounds under the scenario's weather, with edge
// aggregation masked. The improved global is published back into the
// scenario's registry as a rollout candidate.
type FedReport struct {
	Clients, Aggregators, Rounds int
	// Totals across rounds, both tiers.
	Participants, Dropouts, Stragglers, Late int
	AggDropouts, AggStragglers, AggLate      int
	EdgeUplinkBytes, CloudUplinkBytes        int64
	DownlinkBytes                            int64
	// FinalAccuracy is the global model's terminal test accuracy.
	FinalAccuracy float64
	// GlobalDigest fingerprints the terminal global weights bit-exactly.
	GlobalDigest string
	// PublishedID is the registry version the global was published as.
	PublishedID string
	// Personalized counts cohorts that received a fine-tuned variant.
	Personalized int
}

// runFedPhase drives the hierarchical federated plane under the scenario's
// chaos: FedClients synthetic clients in FedAggregators cohorts run
// FedRounds masked rounds, every round drawing fresh weather for both
// tiers from the plane (round-offset into the scenario's round counter so
// the streams never collide with device rounds). The aggregated global is
// published into p's registry and each cohort personalizes it.
func runFedPhase(p *core.Platform, plane *Plane, round *uint64, cfg ScenarioConfig) (*FedReport, error) {
	nClients := cfg.FedClients
	if nClients < cfg.FedAggregators {
		nClients = 4 * cfg.FedAggregators
	}
	rounds := cfg.FedRounds
	if rounds < 1 {
		rounds = 2
	}
	base := *round
	*round += uint64(rounds)

	// The fed fleet's data: shards of one blob problem, test split shared.
	rng := tensor.NewRNG(cfg.Seed + 0xfed)
	pool, test := dataset.Blobs(rng, 8*nClients+200, 4, 3, 4).Split(0.9, rng)
	shards := dataset.PartitionIID(rng, pool, nClients)
	clients := fed.MakeClients(pool, shards, "fedc")

	ff := plane.FedFaults()
	hcfg := fed.HierConfig{
		Config: fed.Config{
			Rounds: rounds, LocalEpochs: 1, LocalBatch: 8, LR: 0.1,
			Seed:   cfg.Seed ^ 0xfed,
			Engine: p.Engine(),
			Faults: func(r int, id string) fed.ClientFault {
				return ff(int(base)+r, id)
			},
			StragglerDeadline: 4,
		},
		Aggregators: cfg.FedAggregators,
		SecureAgg:   true,
		AggFaults: func(r int, id string) fed.ClientFault {
			return ff(int(base)+r, "fed-"+id)
		},
		AggStragglerDeadline: 4,
	}
	// The phase trains the deployed model line: pull the latest version as
	// the starting global, exactly as a production federated round would.
	latest, err := p.Registry.Latest("chaos")
	if err != nil {
		return nil, fmt.Errorf("faults: fed phase: %w", err)
	}
	global, err := p.Registry.Load(latest.ID)
	if err != nil {
		return nil, fmt.Errorf("faults: fed phase: %w", err)
	}
	hc, err := fed.NewHierCoordinator(global, clients, test.X, test.Y, hcfg)
	if err != nil {
		return nil, fmt.Errorf("faults: fed phase: %w", err)
	}
	stats, err := hc.Run()
	if err != nil {
		return nil, fmt.Errorf("faults: fed phase: %w", err)
	}
	report := &FedReport{Clients: nClients, Aggregators: cfg.FedAggregators, Rounds: rounds}
	for _, s := range stats {
		report.Participants += s.Participants
		report.Dropouts += s.Dropouts
		report.Stragglers += s.Stragglers
		report.Late += s.Late
		report.AggDropouts += s.AggDropouts
		report.AggStragglers += s.AggStragglers
		report.AggLate += s.AggLate
		report.EdgeUplinkBytes += s.EdgeUplinkBytes
		report.CloudUplinkBytes += s.CloudUplinkBytes
		report.DownlinkBytes += s.DownlinkBytes
	}
	report.FinalAccuracy = stats[len(stats)-1].TestAccuracy
	report.GlobalDigest = fedDigest(hc.Global)

	// Publish the aggregate back into the scenario's model line — the next
	// rollout candidate — and give each cohort its personalized variant.
	versions, err := hc.PublishGlobal(p.Registry, "chaos", registry.OptimizationSpec{
		Schemes: []quant.Scheme{quant.Int8},
	})
	if err != nil {
		return nil, fmt.Errorf("faults: fed phase publish: %w", err)
	}
	report.PublishedID = versions[0].ID
	nets, err := hc.PersonalizeCohorts(fed.PersonalizeConfig{
		FreezeLayers: 2, Epochs: 1, BatchSize: 16, LR: 0.05,
	})
	if err != nil {
		return nil, fmt.Errorf("faults: fed phase personalize: %w", err)
	}
	report.Personalized = len(nets)
	return report, nil
}

// fedDigest fingerprints a network's exact weights.
func fedDigest(net *nn.Network) string {
	h := sha256.New()
	for _, v := range net.FlatParams() {
		fmt.Fprintf(h, "%08x.", math.Float32bits(v))
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}
