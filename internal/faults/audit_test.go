package faults

import (
	"strings"
	"testing"

	"tinymlops/internal/core"
	"tinymlops/internal/dataset"
	"tinymlops/internal/device"
	"tinymlops/internal/nn"
	"tinymlops/internal/registry"
	"tinymlops/internal/tensor"
)

// auditFixture builds a small healthy platform: v1 deployed everywhere,
// some traffic served, telemetry synced once.
func auditFixture(t *testing.T) (*core.Platform, *dataset.Dataset) {
	t.Helper()
	rng := tensor.NewRNG(21)
	fleet, err := device.NewStandardFleet(device.FleetSpec{CountPerProfile: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fleet.Devices() {
		d.SetNet(device.WiFi)
	}
	p, err := core.New(fleet, core.Config{
		VendorKey: []byte("audit-test-key-0123456789abcdef0"), Seed: 21, MinCohort: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Blobs(rng, 300, 4, 3, 5)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 8, rng), nn.NewReLU(), nn.NewDense(8, 3, rng))
	if _, err := nn.Train(net, ds.X, ds.Y, nn.TrainConfig{
		Epochs: 4, BatchSize: 32, Optimizer: nn.NewSGD(0.1), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	spec := registry.OptimizationSpec{Evaluate: func(n *nn.Network) float64 { return nn.Evaluate(n, ds.X, ds.Y) }}
	if _, err := p.Publish("aud", net, ds, spec); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, d := range fleet.Devices() {
		ids = append(ids, d.ID)
	}
	if _, err := p.DeployMany(ids, "aud", core.DeployConfig{PrepaidQueries: 500, Calibration: ds}); err != nil {
		t.Fatal(err)
	}
	rows := trafficRows(ds, 8)
	driveTraffic(p, ids, rows)
	if _, _, err := p.SyncTelemetry(); err != nil {
		t.Fatal(err)
	}
	driveTraffic(p, ids, rows) // leave some traffic in the open window
	return p, ds
}

func TestAuditCleanPlatformPasses(t *testing.T) {
	p, _ := auditFixture(t)
	rep := Audit(p, AuditConfig{Deep: true})
	if !rep.OK() {
		t.Fatalf("clean platform failed audit: %v", rep.Violations)
	}
	if rep.Deployments != 12 || rep.MetersChecked != 12 {
		t.Fatalf("coverage: %+v", rep)
	}
	if rep.ChainsVerified != 12 {
		t.Fatalf("chains verified = %d, want 12 (nothing settled yet)", rep.ChainsVerified)
	}
	if rep.ArtifactsVerified != 12 {
		t.Fatalf("artifacts verified = %d, want 12", rep.ArtifactsVerified)
	}
	if rep.TelemetryRecords == 0 {
		t.Fatal("no telemetry records audited")
	}
	if !strings.Contains(rep.String(), "0 violations") {
		t.Fatalf("summary: %s", rep.String())
	}
}

func TestAuditFlagsPartialInstall(t *testing.T) {
	p, _ := auditFixture(t)
	deps := p.Deployments()
	d := deps[0].Device()
	d.SetNet(device.WiFi)
	d.SetInstallInterrupter(func(string, int64) float64 { return 0.5 })
	if _, err := d.InstallResumable("wedge", 1000, 1000); err == nil {
		t.Fatal("expected interruption")
	}
	d.SetInstallInterrupter(nil)

	rep := Audit(p, AuditConfig{})
	if rep.OK() || rep.PartialInstalls != 1 {
		t.Fatalf("partial install not flagged: %+v", rep)
	}
	if !strings.Contains(rep.Violations[0], "stuck mid-install") {
		t.Fatalf("violation: %q", rep.Violations[0])
	}
	// An in-recovery audit tolerates (but still counts) the partial slot.
	mid := Audit(p, AuditConfig{AllowPartial: true})
	if !mid.OK() || mid.PartialInstalls != 1 {
		t.Fatalf("AllowPartial audit: %+v", mid)
	}
	// Completing the install clears the finding.
	if _, err := d.InstallResumable("wedge", 1000, 1000); err != nil {
		t.Fatal(err)
	}
	if rep := Audit(p, AuditConfig{}); !rep.OK() {
		t.Fatalf("recovered platform still failing: %v", rep.Violations)
	}
}

func TestAuditFlagsTamperedModelBytes(t *testing.T) {
	p, _ := auditFixture(t)
	dep := p.Deployments()[3]
	// Corrupt one deployed weight — as a botched patch application would.
	dep.Model().Params()[0].Value.Data[0] += 1
	rep := Audit(p, AuditConfig{Deep: true})
	if rep.OK() {
		t.Fatal("tampered model passed the deep audit")
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "diverge from artifact") && strings.Contains(v, dep.DeviceID) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no divergence violation for %s in %v", dep.DeviceID, rep.Violations)
	}
	// A shallow audit does not serialize models and stays green.
	if rep := Audit(p, AuditConfig{}); !rep.OK() {
		t.Fatalf("shallow audit: %v", rep.Violations)
	}
}

func TestAuditFlagsMeterTampering(t *testing.T) {
	p, _ := auditFixture(t)
	dep := p.Deployments()[5]
	// Forge extra usage by charging outside the deployment (double-spend
	// simulation): the chain stays valid, conservation stays valid — but
	// swapping the voucher quota is detected by the signature check.
	v := dep.Meter.Voucher()
	v.Queries += 100
	if p.Issuer.Verify(&v) {
		t.Fatal("issuer accepted a forged voucher")
	}
	// Tamper the chain: re-charge through the meter after settlement has
	// pruned nothing — recompute window counts stay consistent, so audit
	// the violation via a mismatched claimed usage instead: exhaust the
	// meter and verify conservation still balances.
	for i := 0; i < 1000; i++ {
		_ = dep.Meter.Charge(uint64(10_000 + i))
	}
	rep := Audit(p, AuditConfig{})
	if !rep.OK() {
		t.Fatalf("a fully drained meter is still conserved: %v", rep.Violations)
	}
	if dep.Meter.Remaining() != 0 {
		t.Fatalf("meter not drained: %d remaining", dep.Meter.Remaining())
	}
}

func TestAuditFlagsTelemetryRegression(t *testing.T) {
	p, _ := auditFixture(t)
	dep := p.Deployments()[2]
	// Replay an old window into the buffer: monotonicity must fail.
	recs := p.Aggregator.Records(dep.Device().Caps.Class.String())
	if len(recs) == 0 {
		t.Fatal("fixture synced no telemetry")
	}
	var replay = recs[0]
	replay.DeviceID = dep.DeviceID
	replay.Window = 0
	dep.Buffer.Add(replay)
	rep := Audit(p, AuditConfig{})
	if rep.OK() {
		t.Fatal("replayed telemetry window passed the audit")
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "telemetry windows not strictly increasing") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations: %v", rep.Violations)
	}
}

// TestScenarioSmoke runs the full chaos scenario at small scale: the
// fleet converges, the audit is clean, and the run is reproducible.
func TestScenarioSmoke(t *testing.T) {
	cfg := ScenarioConfig{
		Devices: 48, Workers: 4, Seed: 77,
		Chaos: ChaosConfig{
			Seed: 78, PDrop: 0.15, PSpike: 0.2, PBatteryDeath: 0.1,
			PCrash: 0.3, PChurn: 0.08, PTelemetryLoss: 0.2,
		},
	}
	res, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged != res.FleetSize {
		t.Fatalf("converged %d/%d", res.Converged, res.FleetSize)
	}
	if !res.Audit.OK() {
		t.Fatalf("audit: %v", res.Audit.Violations)
	}
	if res.Crashes == 0 {
		t.Fatal("no crashes injected at 30% rate — the chaos never happened")
	}
	if res.RetriedUpdates == 0 {
		t.Fatal("no update ever needed a retry — the faults never bit")
	}
	res2, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint != res2.Fingerprint {
		t.Fatalf("same config, different outcomes: %s vs %s", res.Fingerprint, res2.Fingerprint)
	}
}

// TestAuditFlagsUndeployedPartialInstall: a device whose provisioning
// install crashed (staged slot, no deployment yet) must not be invisible
// to the audit.
func TestAuditFlagsUndeployedPartialInstall(t *testing.T) {
	fleet, err := device.NewStandardFleet(device.FleetSpec{CountPerProfile: 1, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.New(fleet, core.Config{
		VendorKey: []byte("audit-test-key-0123456789abcdef0"), Seed: 44, MinCohort: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := fleet.Get("phone-00")
	d.SetNet(device.WiFi)
	d.SetInstallInterrupter(func(string, int64) float64 { return 0.5 })
	if _, err := d.InstallResumable("full:v1", 2000, 2000); err == nil {
		t.Fatal("expected interruption")
	}
	rep := Audit(p, AuditConfig{})
	if rep.OK() || rep.PartialInstalls != 1 {
		t.Fatalf("undeployed partial install not flagged: %+v", rep)
	}
	if !strings.Contains(rep.Violations[0], "undeployed device stuck mid-install") {
		t.Fatalf("violation: %q", rep.Violations[0])
	}
}
