package faults

import (
	"fmt"
	"net"

	"tinymlops/internal/core"
	"tinymlops/internal/metering"
)

// SettleVerdict is one device's settlement outcome: which frauds its
// round profile actually injected into the report, and what the
// verifying settler decided.
type SettleVerdict struct {
	DeviceID string
	// Overclaim, ProofReplay and WrongVersionProof record the frauds that
	// actually modified the report (see TamperAttestedReport); Injected
	// is their disjunction.
	Overclaim         bool
	ProofReplay       bool
	WrongVersionProof bool
	Injected          bool
	// OK, Reason, ProofsChecked and AckSeq come from the receipt.
	OK            bool
	Reason        string
	ProofsChecked int
	AckSeq        uint64
}

// SettlementReport accounts the chaos scenario's settlement phase. Every
// field is a pure function of the seeds: reports, sample selection,
// proofs, tampering and verdicts all derive from deterministic state, so
// the report is bit-identical at any worker count.
type SettlementReport struct {
	// Round is the weather round whose fraud draws picked the adversaries.
	Round   uint64
	Devices int
	// Settled counts honest devices whose receipt was accepted;
	// FraudInjected counts devices whose report was actually tampered;
	// FraudCaught counts those whose receipt was rejected (the phase
	// errors unless FraudCaught == FraudInjected with no honest device
	// rejected).
	Settled       int
	FraudInjected int
	FraudCaught   int
	// Per-class injected-fraud counts.
	Overclaims    int
	Replays       int
	WrongVersions int
	// ProofsChecked totals the inference proofs the settler verified
	// across accepted receipts.
	ProofsChecked int
	// Verdicts holds every device's outcome in device-ID order.
	Verdicts []SettleVerdict
}

// runSettlementPhase settles every deployment's metered window over real
// TCP against the platform's verifying settler. One fresh weather round's
// fraud draws decide which devices tamper with their reports before
// submission; the phase errors if any tampered report settles or any
// honest report is rejected — the pay-per-query acceptance invariant.
// Accepted honest settlements are acknowledged on the device meter, so
// the terminal audit sees the post-settlement chain state.
func runSettlementPhase(p *core.Platform, plane *Plane, round *uint64, res *ScenarioResult) (*SettlementReport, error) {
	deps := p.Deployments()
	*round++
	report := &SettlementReport{Round: *round, Devices: len(deps)}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faults: settlement listener: %w", err)
	}
	srv := metering.Serve(l, p.Settler)
	defer srv.Close()

	// Relabel targets for WrongVersionProof: both published base versions
	// are registered, and v2 is a head-only fine-tune of v1 — their first
	// dense layers are identical, so a relabeled proof still verifies
	// against the wrong version's weights and only the context binding
	// (model identity inside the transcript) can reject it.
	var alts []string
	if res.V1 != nil {
		alts = append(alts, res.V1.ID)
	}
	if res.V2 != nil {
		alts = append(alts, res.V2.ID)
	}

	verdicts := make([]SettleVerdict, len(deps))
	ferr := p.Engine().ForEach(len(deps), func(i int) error {
		d := deps[i]
		vd := &verdicts[i]
		vd.DeviceID = d.DeviceID
		rep, berr := d.Meter.BuildAttestedReport()
		if berr != nil {
			return fmt.Errorf("faults: build settlement report for %s: %w", d.DeviceID, berr)
		}
		eff := TamperAttestedReport(plane.Profile(*round, d.DeviceID), &rep, alts...)
		vd.Overclaim, vd.ProofReplay, vd.WrongVersionProof = eff.Overclaim, eff.ProofReplay, eff.WrongVersionProof
		vd.Injected = eff.Fraudulent()
		rc, serr := metering.SettleAttestedOverTCP(srv.Addr(), rep)
		if serr != nil {
			return fmt.Errorf("faults: settle %s: %w", d.DeviceID, serr)
		}
		vd.OK, vd.Reason, vd.ProofsChecked, vd.AckSeq = rc.OK, rc.Reason, rc.ProofsChecked, rc.AckSeq
		if rc.OK {
			d.Meter.Acknowledge(rc.AckSeq)
		}
		return nil
	})
	if ferr != nil {
		return nil, ferr
	}

	report.Verdicts = verdicts
	var missed, falsePositives []string
	for i := range verdicts {
		vd := &verdicts[i]
		report.ProofsChecked += vd.ProofsChecked
		if vd.Injected {
			report.FraudInjected++
			if vd.Overclaim {
				report.Overclaims++
			}
			if vd.ProofReplay {
				report.Replays++
			}
			if vd.WrongVersionProof {
				report.WrongVersions++
			}
			if vd.OK {
				missed = append(missed, vd.DeviceID)
			} else {
				report.FraudCaught++
			}
			continue
		}
		if vd.OK {
			report.Settled++
		} else {
			falsePositives = append(falsePositives, vd.DeviceID)
		}
	}
	if len(missed) > 0 {
		return report, fmt.Errorf("faults: %d tampered settlement reports were accepted: %v", len(missed), capIDs(missed))
	}
	if len(falsePositives) > 0 {
		return report, fmt.Errorf("faults: %d honest settlement reports were rejected: %v", len(falsePositives), capIDs(falsePositives))
	}
	return report, nil
}

// capIDs bounds an ID list for error messages.
func capIDs(ids []string) []string {
	if len(ids) > 8 {
		return ids[:8]
	}
	return ids
}
