// Package faults is the deterministic fault-injection plane and the fleet
// invariant auditor for the TinyMLOps simulation.
//
// The paper's operational argument is that edge fleets are unreliable:
// devices go offline mid-update, flash writes get interrupted by power
// loss, networks are flaky, and federated clients straggle or drop out.
// A control plane that has only ever seen a well-behaved fleet proves
// nothing. This package supplies the adversity — and the machinery to
// prove the system survives it.
//
// # Fault plane
//
// Plane derives a FaultProfile for every (round, device) pair from the
// engine's seeded RNG derivation (engine.SeedForID), so a chaos run is a
// pure function of (seed, fleet, config): bit-identical at any worker
// count, reproducible from a one-line report. ApplyRound imposes the
// round's weather on the fleet (network drops and latency spikes, battery
// death, churn — a device that leaves misses this round and the next);
// Arm installs the per-attempt mid-flash crash injector behind
// device.InstallResumable; FedFaults adapts the same derivation to the
// federated coordinator's straggler/dropout hook.
//
// # Invariant auditor
//
// Audit walks a live core.Platform and checks the invariants that chaos
// must not break: meter conservation (issued == consumed + remaining, a
// verified tamper-evident chain, no voucher shared between deployments),
// slot/version convergence (every deployment runs a registry-known
// version whose bytes — for unwatermarked copies — are bit-identical to
// the stored artifact, even after interrupted-and-resumed delta installs),
// telemetry window monotonicity across buffered and ingested records, and
// no device left mid-install in a half-written staging slot.
//
// # Chaos scenario
//
// RunScenario is the canned end-to-end experiment behind the `tinymlops
// chaos` CLI subcommand and the acceptance tests: deploy v1 to a fleet,
// publish v2, drive a staged rollout under churn + flaky networks +
// injected mid-flash crashes with bounded deterministic retries, reconcile
// the stragglers, then audit. Its Fingerprint digests the terminal fleet
// state so tests can assert bit-identical outcomes across worker counts.
package faults
