package faults

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tinymlops/internal/device"
	"tinymlops/internal/engine"
	"tinymlops/internal/fed"
	"tinymlops/internal/tensor"
)

// ChaosConfig sets the per-round fault rates, all probabilities in [0,1].
// The zero value injects nothing.
type ChaosConfig struct {
	// Seed roots every fault decision; the same seed reproduces the same
	// faults on the same fleet regardless of worker count.
	Seed uint64

	// PDrop is the chance a device's network is down for a whole round.
	PDrop float64
	// PSpike is the chance a connected device is degraded to the slow
	// cellular link for the round (a latency spike on every transfer).
	PSpike float64
	// PBatteryDeath is the chance a battery-powered device's battery dies
	// for the round; the next round it comes back swapped/recharged.
	PBatteryDeath float64
	// PCrash is the per-install-attempt chance of a power loss mid-flash,
	// leaving the inactive slot half-written (see device.InstallResumable
	// for the recovery contract).
	PCrash float64
	// PChurn is the chance a device leaves the fleet this round; it stays
	// away for this round and the next, then rejoins.
	PChurn float64
	// PTelemetryLoss is the chance a device's telemetry uplink is lost in
	// transit for the round (the device flushed; the cloud never saw it).
	PTelemetryLoss float64
	// PPeerDrop is the per-chunk-attempt chance a swarm peer vanishes
	// partway through serving a chunk; the fetcher keeps the bytes that
	// arrived and re-attempts the remainder from another source.
	PPeerDrop float64

	// PDropout and PStraggler drive the federated-client faults; a
	// straggler's modeled round time is multiplied by StragglerFactor
	// (default 8).
	PDropout        float64
	PStraggler      float64
	StragglerFactor float64

	// Billing-fraud faults (the settlement phase's adversaries). Each is
	// the chance a device tampers with its settlement report in one of
	// the three canonical ways: inflating its tick count with fabricated
	// chain entries, replaying stale proofs over the sampled charges, or
	// relabeling its proofs to a different model version.
	POverclaim         float64
	PProofReplay       float64
	PWrongVersionProof float64
}

// FaultProfile is the set of faults one device draws for one round — a
// pure function of (seed, round, device ID).
type FaultProfile struct {
	// Offline means no connectivity for the round (network drop or churn).
	Offline bool
	// LatencySpike degrades a connected device to the cellular link.
	LatencySpike bool
	// BatteryDeath empties the battery for the round.
	BatteryDeath bool
	// Churned means the device left the fleet (it also drew Offline); it
	// rejoins after the absence ends.
	Churned bool
	// TelemetryLoss drops the round's telemetry uplink in transit.
	TelemetryLoss bool
	// Dropout and Straggler are the federated-client faults; a straggler
	// runs StragglerFactor× slower.
	Dropout         bool
	Straggler       bool
	StragglerFactor float64

	// Billing-fraud faults: the device tampers with its settlement report
	// (see TamperAttestedReport). Overclaim inflates the tick count with
	// fabricated chain entries; ProofReplay substitutes stale proofs for
	// the sampled charges; WrongVersionProof relabels proofs to another
	// model version.
	Overclaim         bool
	ProofReplay       bool
	WrongVersionProof bool
}

// Fraudulent reports whether the profile tampers with settlement.
func (f FaultProfile) Fraudulent() bool {
	return f.Overclaim || f.ProofReplay || f.WrongVersionProof
}

// churnSpan is how many rounds a churned device stays away (the draw
// round plus the next), modeling leave→rejoin across wave boundaries.
const churnSpan = 2

// Plane derives and applies deterministic fault profiles. All methods are
// safe for concurrent use; every decision derives from (seed, round or
// attempt, ID), never from scheduling.
type Plane struct {
	cfg ChaosConfig

	mu       sync.Mutex
	attempts map[string]int // install attempts per "device|token"
	crashes  atomic.Int64
}

// New returns a fault plane over the given configuration.
func New(cfg ChaosConfig) *Plane {
	if cfg.StragglerFactor <= 1 {
		cfg.StragglerFactor = 8
	}
	return &Plane{cfg: cfg, attempts: make(map[string]int)}
}

// Config returns the plane's configuration.
func (p *Plane) Config() ChaosConfig { return p.cfg }

// draw returns a uniform [0,1) variate for one fault class of one entity
// in one round. Each class gets its own derived stream so correlated
// faults can only come from configuration, never from stream reuse.
func (p *Plane) draw(class string, round uint64, id string) float64 {
	return tensor.NewRNG(engine.SeedForID(p.cfg.Seed, round, class+"|"+id)).Float64()
}

// Profile returns the faults the entity draws for the round. Pure: no
// plane state is read or written, so any caller at any concurrency sees
// the same answer.
func (p *Plane) Profile(round uint64, id string) FaultProfile {
	f := FaultProfile{StragglerFactor: p.cfg.StragglerFactor}
	for back := uint64(0); back < churnSpan; back++ {
		if back > round {
			break
		}
		if p.draw("churn", round-back, id) < p.cfg.PChurn {
			f.Churned = true
			break
		}
	}
	f.Offline = f.Churned || p.draw("drop", round, id) < p.cfg.PDrop
	f.LatencySpike = !f.Offline && p.draw("spike", round, id) < p.cfg.PSpike
	f.BatteryDeath = p.draw("battery", round, id) < p.cfg.PBatteryDeath
	f.TelemetryLoss = p.draw("telemetry", round, id) < p.cfg.PTelemetryLoss
	f.Dropout = p.draw("dropout", round, id) < p.cfg.PDropout
	f.Straggler = p.draw("straggler", round, id) < p.cfg.PStraggler
	f.Overclaim = p.draw("overclaim", round, id) < p.cfg.POverclaim
	f.ProofReplay = p.draw("proofreplay", round, id) < p.cfg.PProofReplay
	f.WrongVersionProof = p.draw("wrongproof", round, id) < p.cfg.PWrongVersionProof
	return f
}

// RoundReport counts the faults ApplyRound imposed on a fleet.
type RoundReport struct {
	Round         uint64
	Devices       int
	Offline       int
	Churned       int
	LatencySpikes int
	BatteryDeaths int
	TelemetryLoss int
}

// ApplyRound imposes the round's weather on every device: connectivity
// (offline / cellular spike / WiFi), battery state (dead this round,
// recharged otherwise), and the armed mid-flash crash injector. The plane
// owns connectivity and battery during a chaos run — Tick's probabilistic
// flips would not reproduce across worker counts. Wall-powered devices
// are immune to connectivity, churn and battery faults (the device model
// forces them online and fully powered), so the report counts only
// faults that actually bite; the crash injector arms everywhere — a
// power glitch mid-flash needs no battery.
func (p *Plane) ApplyRound(round uint64, devs []*device.Device) RoundReport {
	rep := RoundReport{Round: round, Devices: len(devs)}
	for _, d := range devs {
		f := p.Profile(round, d.ID)
		if d.Caps.WallPowered() {
			f.Offline, f.LatencySpike, f.Churned, f.BatteryDeath = false, false, false, false
		}
		switch {
		case f.Offline:
			d.SetNet(device.Offline)
			rep.Offline++
		case f.LatencySpike:
			d.SetNet(device.Cellular)
			rep.LatencySpikes++
		default:
			d.SetNet(device.WiFi)
		}
		if f.Churned {
			rep.Churned++
		}
		if f.BatteryDeath {
			d.SetBatteryLevel(0)
			rep.BatteryDeaths++
		} else {
			d.SetBatteryLevel(1)
		}
		if f.TelemetryLoss {
			rep.TelemetryLoss++
		}
		p.Arm(d)
	}
	return rep
}

// Arm installs the plane's mid-flash crash injector on the device. Each
// install attempt draws its fate from (seed, attempt number, device,
// image token): the attempt counter advances only from the device's own
// sequential install calls, so the crash sequence a device experiences is
// identical at any worker count. Idempotent.
func (p *Plane) Arm(d *device.Device) {
	id := d.ID
	d.SetInstallInterrupter(func(token string, _ int64) float64 {
		key := id + "|" + token
		p.mu.Lock()
		p.attempts[key]++
		attempt := p.attempts[key]
		p.mu.Unlock()
		rng := tensor.NewRNG(engine.SeedForID(p.cfg.Seed, uint64(attempt), "crash|"+key))
		if rng.Float64() >= p.cfg.PCrash {
			return 1 // completes
		}
		p.crashes.Add(1)
		// Crash somewhere strictly inside the remaining flash work.
		return 0.05 + 0.9*rng.Float64()
	})
}

// SwarmDrop returns the plane's swarm peer-churn injector: a
// swarm.DropFunc deciding, per (wave, attempt, fetcher, peer, key, chunk),
// whether the serving peer vanishes mid-chunk and how much of the span it
// managed to send first. Pure in its arguments, so swarm weather is
// bit-identical at any worker count.
func (p *Plane) SwarmDrop() func(wave uint64, attempt int, fetcherID, peerID, key string, chunk int) float64 {
	if p.cfg.PPeerDrop <= 0 {
		return nil
	}
	return func(wave uint64, attempt int, fetcherID, peerID, key string, chunk int) float64 {
		rng := tensor.NewRNG(engine.SeedForID(p.cfg.Seed, wave,
			fmt.Sprintf("peerdrop|%s|%s|%s|%d|%d", fetcherID, peerID, key, chunk, attempt)))
		if rng.Float64() >= p.cfg.PPeerDrop {
			return 1 // serves the whole span
		}
		// Drop somewhere strictly inside the span.
		return 0.1 + 0.8*rng.Float64()
	}
}

// Calm clears every fault from the devices: full connectivity, full
// battery, no crash injector. The terminal reconciliation pass runs under
// calm weather so convergence is provable rather than probabilistic.
func (p *Plane) Calm(devs []*device.Device) {
	for _, d := range devs {
		d.SetInstallInterrupter(nil)
		d.SetNet(device.WiFi)
		d.SetBatteryLevel(1)
	}
}

// Crashes returns how many mid-flash crashes the plane has injected.
func (p *Plane) Crashes() int64 { return p.crashes.Load() }

// InstallAttempts returns how many install attempts the plane has
// observed across all devices and image tokens.
func (p *Plane) InstallAttempts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, a := range p.attempts {
		n += a
	}
	return n
}

// FedFaults adapts the plane to the federated coordinator's client-fault
// hook: dropouts and stragglers derive from the same per-(round, ID)
// streams as the device faults.
func (p *Plane) FedFaults() func(round int, clientID string) fed.ClientFault {
	return func(round int, clientID string) fed.ClientFault {
		f := p.Profile(uint64(round), clientID)
		cf := fed.ClientFault{Dropout: f.Dropout}
		if f.Straggler {
			cf.SlowFactor = f.StragglerFactor
		}
		return cf
	}
}
