package faults

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"tinymlops/internal/compat"
	"tinymlops/internal/core"
	"tinymlops/internal/dataset"
	"tinymlops/internal/device"
	"tinymlops/internal/engine"
	"tinymlops/internal/nn"
	"tinymlops/internal/quant"
	"tinymlops/internal/registry"
	"tinymlops/internal/rollout"
	"tinymlops/internal/selector"
	"tinymlops/internal/swarm"
	"tinymlops/internal/tensor"
)

// ScenarioConfig controls one chaos experiment (see RunScenario).
type ScenarioConfig struct {
	// Devices is the requested fleet size; it is rounded up to a multiple
	// of the six standard hardware profiles.
	Devices int
	// Workers bounds the platform's worker pool (≤0 = all cores). The
	// scenario result is bit-identical at any value — that is the point.
	Workers int
	// Seed roots platform randomness; Chaos.Seed roots the faults.
	Seed uint64
	// Chaos is the fault weather.
	Chaos ChaosConfig
	// Waves defaults to rollout.DefaultWaves().
	Waves []rollout.Wave
	// UpdateAttempts bounds per-device update retries within a wave and
	// during reconciliation (default 3).
	UpdateAttempts int
	// ReconcileRounds is how many post-rollout recovery sweeps run under
	// continued chaos before the final calm sweep (default 4).
	ReconcileRounds int
	// PrepaidQueries per device (default 1<<20 so metering never gates
	// the chaos traffic; conservation is still audited).
	PrepaidQueries uint64
	// OffloadQueries, when positive, appends an offload phase after
	// convergence: every deployment opens a split-execution session
	// against a shared cloud tier and serves this many queries per
	// weather round, the cut re-planning as the fault plane moves
	// connectivity and batteries. Every answer is checked bit-exact
	// against the device's own monolithic forward, and the terminal audit
	// covers the phase's metering.
	OffloadQueries int
	// OffloadRounds is how many weather rounds the offload phase spans
	// (default 3 when OffloadQueries > 0).
	OffloadRounds int
	// FedAggregators, when positive, appends a hierarchical federated-
	// learning phase after settlement: FedClients synthetic clients (default
	// 4× the aggregator count) in FedAggregators edge cohorts run FedRounds
	// (default 2) masked two-tier rounds under the plane's weather on both
	// tiers, and the aggregated global publishes back into the scenario's
	// model line.
	FedAggregators int
	FedClients     int
	FedRounds      int
	// SwarmRollout switches the rollout's and reconciliation's transfers to
	// peer-to-peer swarm distribution: the registry serves the canary wave
	// and acts as seeder of last resort, later waves fetch hash-verified
	// chunks from already-updated devices, and the terminal audit checks
	// the swarm's byte-conservation ledger.
	SwarmRollout bool
	// SwarmChunkBytes is the swarm manifest chunk size (default 64 — small
	// against the scenario's tiny artifacts, so every transfer spans many
	// chunks and the per-chunk fault machinery is actually exercised).
	SwarmChunkBytes int64
	// ForceFull disables delta transfer for the rollout and every
	// reconciliation sweep, so the scenario exercises the full-artifact
	// transfer mode end to end.
	ForceFull bool
}

// SwarmReport records a swarm scenario's peer-to-peer distribution: the
// cumulative transfer ledger plus the per-wave egress split that shows the
// registry serving the canary and the peers serving the rest.
type SwarmReport struct {
	Stats swarm.Stats
	// WaveEgress splits each rollout wave's delivered bytes by serving side.
	WaveEgress []WaveBytes
}

// WaveBytes is one rollout wave's radio-byte split by source.
type WaveBytes struct {
	Wave          string
	RegistryBytes int64
	PeerBytes     int64
}

// ScenarioResult is one chaos experiment's record.
type ScenarioResult struct {
	FleetSize int
	V1, V2    *registry.ModelVersion
	Rollout   *rollout.Result
	// WaveWeather is the fault weather imposed before each wave.
	WaveWeather []RoundReport
	// Converged counts devices on V2's family (the base or one of its
	// derived variants) at the end; the scenario errors if any device
	// failed to converge.
	Converged int
	// IntServing and FloatServing count terminal deployments by executing
	// scheme: the fleet deploys in three policy cohorts (int8-pinned,
	// int4-pinned and float-pinned), so a healthy run reports both nonzero
	// — the mixed float/int serving matrix under one rollout. IntServing
	// covers every deployment executing on the integer kernels at any
	// width.
	IntServing, FloatServing int
	// Int4Native counts terminal deployments executing on the packed int4
	// kernels: int4-cohort devices whose hardware retires 4-bit MACs
	// natively. The rest of that cohort (no sub-int8 modes) serves the
	// same variant fake-quantized on the float engine, paying the
	// emulation penalty — both outcomes are pinned per device by the
	// fingerprint's executing-scheme column.
	Int4Native int
	// Watermarked counts terminal deployments carrying a per-customer mark;
	// ProcVM counts deployments executing compiled bytecode on the
	// capability-gated VM. Both cohorts ride the same rollout, offload and
	// settlement machinery as the rest of the fleet.
	Watermarked int
	ProcVM      int
	// RetriedUpdates counts devices that needed more than one update
	// attempt in some wave; Crashes counts injected mid-flash power
	// losses; InstallAttempts counts all install attempts observed.
	RetriedUpdates  int
	Crashes         int64
	InstallAttempts int
	// ReconcileUpdated counts updates completed only by the post-rollout
	// recovery sweeps (churned devices that missed their wave, exhausted
	// retries, dead batteries).
	ReconcileUpdated int
	// TelemetryLost counts records dropped in transit by injected
	// telemetry loss.
	TelemetryLost int
	// Offload is the offload phase's record (nil when the phase was not
	// configured).
	Offload *OffloadReport
	// Settlement is the verified-billing settlement phase's record: every
	// deployment settles its metered window over TCP, with the round's
	// fraud draws tampering the configured fraction of reports. The
	// scenario errors unless every tampered report was rejected and every
	// honest one accepted.
	Settlement *SettlementReport
	// Fed is the hierarchical federated-learning phase's record (nil when
	// the phase was not configured).
	Fed *FedReport
	// Swarm is the peer-to-peer distribution record (nil unless
	// SwarmRollout was configured).
	Swarm *SwarmReport
	// Audit is the terminal deep audit (no partial slots tolerated).
	Audit *AuditReport
	// Fingerprint digests the terminal fleet state (per-device version,
	// meter, counters) plus the rollout record — equal fingerprints mean
	// bit-identical outcomes.
	Fingerprint string
}

// RunScenario executes the canned chaos experiment: train and deploy v1
// across a standard fleet, publish a fine-tuned v2, drive a staged
// rollout under the configured fault weather (fresh weather before every
// wave), reconcile the devices the chaos left behind, calm the weather
// for a terminal sweep, and audit every fleet invariant. The entire run
// derives from (Seed, Chaos.Seed, fleet), so two runs with different
// Workers produce identical ScenarioResult fingerprints.
func RunScenario(cfg ScenarioConfig) (*ScenarioResult, error) {
	if cfg.Devices < 1 {
		cfg.Devices = 6
	}
	if cfg.UpdateAttempts < 1 {
		cfg.UpdateAttempts = 3
	}
	if cfg.ReconcileRounds < 1 {
		cfg.ReconcileRounds = 4
	}
	if cfg.PrepaidQueries == 0 {
		cfg.PrepaidQueries = 1 << 20
	}
	perProfile := (cfg.Devices + 5) / 6

	// Fleet and platform.
	fleet, err := device.NewStandardFleet(device.FleetSpec{CountPerProfile: perProfile, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	devs := fleet.Devices()
	p, err := core.New(fleet, core.Config{
		VendorKey: []byte("chaos-scenario-key-0123456789abcdef"),
		Seed:      cfg.Seed, MinCohort: 1, Workers: cfg.Workers,
		VerifiedBilling: true,
	})
	if err != nil {
		return nil, err
	}
	plane := New(cfg.Chaos)
	plane.Calm(devs) // provisioning runs under calm weather

	// Swarm mode: peer-to-peer distribution over this fleet, with the
	// plane's deterministic peer-churn weather.
	var sw *swarm.Swarm
	if cfg.SwarmRollout {
		chunk := cfg.SwarmChunkBytes
		if chunk <= 0 {
			chunk = 64
		}
		sw, err = p.NewSwarm(core.SwarmOptions{
			ChunkBytes: chunk,
			Seed:       cfg.Chaos.Seed + 0x5735,
			PeerDrop:   plane.SwarmDrop(),
		})
		if err != nil {
			return nil, err
		}
	}

	// v1: a tiny classifier — the chaos is about the control plane, not
	// the model, so keep per-device work minimal.
	rng := tensor.NewRNG(cfg.Seed)
	ds := dataset.Blobs(rng, 240, 4, 3, 5)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 8, rng), nn.NewReLU(), nn.NewDense(8, 3, rng))
	if _, err := nn.Train(net, ds.X, ds.Y, nn.TrainConfig{
		Epochs: 6, BatchSize: 32, Optimizer: nn.NewSGD(0.1), RNG: rng,
	}); err != nil {
		return nil, err
	}
	spec := registry.OptimizationSpec{
		Schemes:  []quant.Scheme{quant.Int8, quant.Int4},
		Evaluate: func(n *nn.Network) float64 { return nn.Evaluate(n, ds.X, ds.Y) },
	}
	v1s, err := p.Publish("chaos", net, ds, spec)
	if err != nil {
		return nil, err
	}
	res := &ScenarioResult{FleetSize: fleet.Size(), V1: v1s[0]}
	if err := registerCompiledVariant(p, v1s[0]); err != nil {
		return nil, err
	}

	// The fleet splits into five selection-policy cohorts by rotation:
	// int8-pinned (every standard profile retires int8 MACs natively, so
	// these serve through the blocked int8 kernels), int4-pinned (devices
	// with native 4-bit modes serve through the packed int4 kernels; the
	// rest fall back to the fake-quantized float engine under the same
	// pin), float32-pinned, watermarked (float artifact stamped with a
	// per-customer mark on device) and procvm-pinned (the compiled
	// bytecode variant, executing on the capability-gated VM). The chaos
	// therefore exercises the full protected serving matrix — integer
	// QModels, float, marked and obfuscated deployments crash, resume,
	// update and roll back side by side — and the fingerprint pins every
	// device's executing scheme and artifact kind at every worker count.
	ids := make([]string, 0, len(devs))
	for _, d := range devs {
		ids = append(ids, d.ID)
	}
	var int8IDs, int4IDs, floatIDs, wmIDs, pvmIDs []string
	for i, id := range ids {
		switch i % 5 {
		case 0:
			int8IDs = append(int8IDs, id)
		case 1:
			int4IDs = append(int4IDs, id)
		case 2:
			floatIDs = append(floatIDs, id)
		case 3:
			wmIDs = append(wmIDs, id)
		default:
			pvmIDs = append(pvmIDs, id)
		}
	}
	for _, cohort := range []struct {
		ids       []string
		policy    selector.Policy
		watermark string
	}{
		{int8IDs, selector.Policy{Schemes: []quant.Scheme{quant.Int8}}, ""},
		{int4IDs, selector.Policy{Schemes: []quant.Scheme{quant.Int4}}, ""},
		{floatIDs, selector.Policy{Schemes: []quant.Scheme{quant.Float32}}, ""},
		{wmIDs, selector.Policy{Schemes: []quant.Scheme{quant.Float32}}, "chaos-customer"},
		{pvmIDs, selector.Policy{Kinds: []string{registry.KindProcVM}}, ""},
	} {
		if _, err := p.DeployMany(cohort.ids, "chaos", core.DeployConfig{
			PrepaidQueries: cfg.PrepaidQueries, Calibration: ds,
			Policy: cohort.policy, Watermark: cohort.watermark,
		}); err != nil {
			return nil, err
		}
	}

	// Baseline traffic so wave gates have pre-update health to compare.
	rows := trafficRows(ds, 8)
	driveTraffic(p, ids, rows)

	// v2: a head-only fine-tune of v1 — same topology and mostly
	// unchanged weights, so the OTA ships as a sparse delta and the
	// crash/resume machinery is exercised on the delta path.
	v2net := net.Clone()
	head := v2net.Layers()[2].(*nn.Dense)
	for i := range head.W.Value.Data {
		head.W.Value.Data[i] += 0.01 * float32(i%5+1)
	}
	v2s, err := p.Publish("chaos", v2net, ds, spec)
	if err != nil {
		return nil, err
	}
	v2 := v2s[0]
	if v2.ID == v1s[0].ID {
		return nil, fmt.Errorf("faults: fine-tune produced identical bytes; scenario needs two versions")
	}
	res.V2 = v2
	// The procvm cohort needs a compiled v2 variant to converge to —
	// registered before the rollout so wave selection finds it.
	if err := registerCompiledVariant(p, v2); err != nil {
		return nil, err
	}

	// Staged rollout under chaos: fresh fault weather before every wave,
	// bounded deterministic retries within it. The gate tolerates the
	// injected failures — devices the weather strands are the
	// reconciliation pass's job, and PR 2's tests already pin the strict
	// gating behavior.
	round := uint64(0)
	rr, err := p.Rollout(v2, core.RolloutConfig{
		Waves: cfg.Waves,
		Seed:  cfg.Seed,
		Gate: rollout.Gate{
			MaxDriftFraction:   1,
			MaxErrorRate:       0.99,
			MaxLatencyIncrease: 99,
			MaxUpdateFailures:  fleet.Size(),
		},
		Calibration: ds,
		Retry:       engine.RetryPolicy{Attempts: cfg.UpdateAttempts},
		Swarm:       sw,
		ForceFull:   cfg.ForceFull,
		BeforeWave: func(w rollout.Wave, _ []string) {
			round++
			res.WaveWeather = append(res.WaveWeather, plane.ApplyRound(round, devs))
		},
		Bake: func(_ rollout.Wave, waveIDs []string) error {
			driveTraffic(p, waveIDs, rows)
			return nil
		},
	})
	if err != nil {
		return nil, fmt.Errorf("faults: rollout: %w", err)
	}
	res.Rollout = rr
	for _, w := range rr.Waves {
		for _, o := range w.Outcomes {
			if o.Attempts > 1 {
				res.RetriedUpdates++
			}
		}
	}
	if sw != nil {
		res.Swarm = &SwarmReport{}
		for _, w := range rr.Waves {
			wb := WaveBytes{Wave: w.Wave.Name}
			for _, o := range w.Outcomes {
				wb.RegistryBytes += o.Transfer.RegistryBytes
				wb.PeerBytes += o.Transfer.PeerBytes
			}
			res.Swarm.WaveEgress = append(res.Swarm.WaveEgress, wb)
		}
	}

	// Reconcile: sweep the devices chaos stranded — churned past their
	// wave, retries exhausted mid-crash, batteries dead — under continued
	// weather, then one terminal sweep under calm skies. Interrupted
	// installs resume their half-written slots here.
	opts := core.UpdateOptions{Calibration: ds, Swarm: sw, ForceFull: cfg.ForceFull}
	// A device has converged when it runs v2's family: the base for the
	// float cohort, the derived int8 variant for the integer cohort.
	onV2 := func(v *registry.ModelVersion) bool {
		return v.ID == v2.ID || v.ParentID == v2.ID
	}
	reconcile := func() (int, error) {
		deps := p.Deployments()
		updated := make([]bool, len(deps))
		err := p.Engine().ForEach(len(deps), func(i int) error {
			d := deps[i]
			_, _, _, partial := d.Device().Staging()
			if onV2(d.Version) && !partial {
				return nil
			}
			_, uerr := engine.Retry(
				engine.RetryPolicy{Attempts: cfg.UpdateAttempts},
				core.TransientUpdateError,
				func(int) error { _, e := d.Update(v2, opts); return e },
			)
			if uerr == nil {
				updated[i] = true
			}
			return nil // stragglers wait for the next sweep
		})
		n := 0
		for _, u := range updated {
			if u {
				n++
			}
		}
		return n, err
	}
	for sweep := 0; sweep < cfg.ReconcileRounds; sweep++ {
		round++
		plane.ApplyRound(round, devs)
		if sw != nil {
			// Promote the previous sweep's (or wave's) updates into the
			// seeder set before this sweep fans out.
			sw.AdvanceWave()
		}
		n, rerr := reconcile()
		if rerr != nil {
			return nil, rerr
		}
		res.ReconcileUpdated += n
		res.TelemetryLost += syncTelemetryWithLoss(p, plane, round)
	}
	plane.Calm(devs)
	if sw != nil {
		sw.AdvanceWave()
	}
	n, rerr := reconcile()
	if rerr != nil {
		return nil, rerr
	}
	res.ReconcileUpdated += n

	res.Crashes = plane.Crashes()
	res.InstallAttempts = plane.InstallAttempts()
	for _, d := range p.Deployments() {
		if onV2(d.Version) {
			res.Converged++
		}
		switch d.ExecutionScheme() {
		case quant.Float32:
			res.FloatServing++
		case quant.Int4:
			res.Int4Native++
			res.IntServing++
		default:
			res.IntServing++
		}
		if d.Watermarked() {
			res.Watermarked++
		}
		if d.Version.Kind == registry.KindProcVM {
			res.ProcVM++
		}
	}
	if res.Converged != fleet.Size() {
		return nil, fmt.Errorf("faults: %d/%d devices converged to %s's family", res.Converged, fleet.Size(), v2.ID)
	}
	if len(int8IDs) > 0 && res.IntServing == 0 {
		return nil, fmt.Errorf("faults: integer cohorts of %d devices ended with no QModel deployments", len(int8IDs)+len(int4IDs))
	}
	// Half the standard profiles retire 4-bit MACs natively, so a healthy
	// int4 cohort must end with packed-int4 executables on those devices.
	if len(int4IDs) > 0 && res.Int4Native == 0 {
		return nil, fmt.Errorf("faults: int4 cohort of %d devices ended with no native int4 deployments", len(int4IDs))
	}
	if len(wmIDs) > 0 && res.Watermarked == 0 {
		return nil, fmt.Errorf("faults: watermarked cohort of %d devices ended with no marked deployments", len(wmIDs))
	}
	// No silent fallback to the float network: the procvm cohort must end
	// on the compiled kind, executing natively on the VM.
	if len(pvmIDs) > 0 && res.ProcVM == 0 {
		return nil, fmt.Errorf("faults: procvm cohort of %d devices ended with zero native procvm deployments", len(pvmIDs))
	}

	// Offload phase: the converged fleet serves split queries under fresh
	// weather rounds. Runs before the terminal audit so the phase's meter
	// charges are inside the conservation check.
	if cfg.OffloadQueries > 0 {
		report, oerr := runOffloadPhase(p, plane, &round, cfg, rows)
		if oerr != nil {
			return nil, oerr
		}
		res.Offload = report
	}

	// Settlement phase: every device settles its metered window against
	// the verifying settler, fraud draws tampering some reports. Runs
	// before the terminal audit so the audit sees the settlement verdicts
	// (and the post-acknowledge chain state) — the audit's fraud flags
	// must reproduce exactly the set of tampered devices.
	settle, serr := runSettlementPhase(p, plane, &round, res)
	if serr != nil {
		return nil, serr
	}
	res.Settlement = settle

	// Federated phase: a synthetic client fleet trains the deployed model
	// line through masked two-tier rounds under the same weather plane and
	// publishes the aggregate as the next rollout candidate. Runs before
	// the terminal audit so the published artifact is inside its checks.
	if cfg.FedAggregators > 0 {
		fedReport, ferr := runFedPhase(p, plane, &round, cfg)
		if ferr != nil {
			return nil, ferr
		}
		res.Fed = fedReport
	}

	if sw != nil {
		res.Swarm.Stats = sw.Stats()
	}
	res.Audit = Audit(p, AuditConfig{Deep: true, Swarm: sw})
	res.Fingerprint = fingerprint(p, res)
	return res, nil
}

// registerCompiledVariant lowers a published float artifact onto the
// procvm bytecode and registers the module as a first-class variant of the
// version, so kind-pinned cohorts can select it like any quantized child.
// The compile gate proves the module bit-exact against the lowered network
// before anything is registered.
func registerCompiledVariant(p *core.Platform, v *registry.ModelVersion) error {
	art, err := p.Registry.Load(v.ID)
	if err != nil {
		return fmt.Errorf("faults: load %s for compile: %w", v.ID, err)
	}
	mod, err := compat.CompileProcVM(art, compat.CompileOptions{Name: v.Name})
	if err != nil {
		return fmt.Errorf("faults: compile %s: %w", v.ID, err)
	}
	if _, err := p.Registry.RegisterCompiled(v.ID, mod, v.Metrics.Accuracy); err != nil {
		return fmt.Errorf("faults: register compiled %s: %w", v.ID, err)
	}
	return nil
}

// trafficRows builds a fixed in-distribution query batch from the dataset.
func trafficRows(ds *dataset.Dataset, n int) [][]float32 {
	es := ds.X.Size() / ds.Len()
	rows := make([][]float32, n)
	for i := range rows {
		rows[i] = append([]float32(nil), ds.X.Data[(i%ds.Len())*es:(i%ds.Len())*es+es]...)
	}
	return rows
}

// driveTraffic runs the batch through each listed device's deployment on
// the platform's pool. Per-device outcomes are independent, so the fan-out
// is deterministic; devices without a deployment are skipped.
func driveTraffic(p *core.Platform, ids []string, rows [][]float32) {
	_ = p.Engine().ForEach(len(ids), func(i int) error {
		if dep, ok := p.Deployment(ids[i]); ok {
			dep.InferBatch(rows)
		}
		return nil
	})
}

// syncTelemetryWithLoss flushes every deployment's buffer over the
// device's current link and ingests the flushed records — except for
// devices whose round profile drew telemetry loss, whose flushed records
// vanish in transit (the uplink was spent; the cloud saw nothing).
// Ingestion is serial in device-ID order, like Platform.SyncTelemetry.
// It returns how many records were lost.
func syncTelemetryWithLoss(p *core.Platform, plane *Plane, round uint64) int {
	deps := p.Deployments()
	lost := 0
	for _, d := range deps {
		recs, _, err := d.Buffer.FlushIfWiFi(d.Device())
		if err != nil || len(recs) == 0 {
			continue
		}
		if plane.Profile(round, d.DeviceID).TelemetryLoss {
			lost += len(recs)
			continue
		}
		class := d.Device().Caps.Class.String()
		for _, r := range recs {
			p.Aggregator.Ingest(class, r)
		}
	}
	return lost
}

// fingerprint digests the terminal fleet state: per-device version, meter
// and counters, plus the rollout's aggregate record. Two scenario runs
// with equal fingerprints ended in bit-identical states.
func fingerprint(p *core.Platform, res *ScenarioResult) string {
	h := sha256.New()
	for _, d := range p.Deployments() {
		c := d.Device().Snapshot()
		fmt.Fprintf(h, "%s|%s|%s|%s|%v|%d|%d|%d|%d|%d|%d|%d|%d\n",
			d.DeviceID, d.Version.ID, d.Version.Kind, d.ExecutionScheme(),
			d.Watermarked(), d.Meter.Used(), d.Meter.Remaining(),
			c.RxBytes, c.FlashedBytes, c.TxBytes, c.Inferences, c.DeniedQueries,
			d.CurrentWindow())
	}
	fmt.Fprintf(h, "rollout|%v|%d|%d|%d|%d\n", res.Rollout.Completed,
		res.Rollout.TotalShipBytes, res.Rollout.TotalFlashBytes,
		res.Rollout.DeltaTransfers, res.Rollout.FullTransfers)
	fmt.Fprintf(h, "chaos|%d|%d|%d|%d\n", res.Crashes, res.InstallAttempts,
		res.RetriedUpdates, res.TelemetryLost)
	if o := res.Offload; o != nil {
		// CloudBatches/MaxCloudBatch are scheduling-dependent coalescing
		// detail and deliberately excluded.
		fmt.Fprintf(h, "offload|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d\n",
			o.Queries, o.Denied, o.Errors, o.Split, o.Local, o.Fallback,
			o.Replans, o.ActivationBytes, o.Mismatches, o.CloudServed)
	}
	if s := res.Settlement; s != nil {
		for _, vd := range s.Verdicts {
			fmt.Fprintf(h, "settle|%s|%v|%v|%v|%v|%v|%s|%d|%d\n",
				vd.DeviceID, vd.Injected, vd.Overclaim, vd.ProofReplay,
				vd.WrongVersionProof, vd.OK, vd.Reason, vd.ProofsChecked, vd.AckSeq)
		}
		fmt.Fprintf(h, "settlement|%d|%d|%d|%d|%d|%d|%d|%d\n",
			s.Devices, s.Settled, s.FraudInjected, s.FraudCaught,
			s.Overclaims, s.Replays, s.WrongVersions, s.ProofsChecked)
	}
	if f := res.Fed; f != nil {
		fmt.Fprintf(h, "fed|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%s|%s|%d\n",
			f.Clients, f.Aggregators, f.Rounds,
			f.Participants, f.Dropouts, f.Stragglers, f.Late,
			f.AggDropouts, f.AggStragglers, f.AggLate,
			f.EdgeUplinkBytes, f.CloudUplinkBytes, f.DownlinkBytes,
			f.GlobalDigest, f.PublishedID, f.Personalized)
	}
	if s := res.Swarm; s != nil {
		fmt.Fprintf(h, "swarm|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d\n",
			s.Stats.Transfers, s.Stats.Resumed, s.Stats.DeliveredBytes,
			s.Stats.RegistryEgressBytes, s.Stats.PeerBytes,
			s.Stats.ChunksVerified, s.Stats.HashRejects, s.Stats.PeerServes,
			s.Stats.RegistryServes, s.Stats.PeerSkips, s.Stats.MidChunkDrops,
			s.Stats.ConservationViolations)
		for _, wb := range s.WaveEgress {
			fmt.Fprintf(h, "waveegress|%s|%d|%d\n", wb.Wave, wb.RegistryBytes, wb.PeerBytes)
		}
	}
	fmt.Fprintf(h, "audit|%d|%d|%d|%d|%d\n", res.Audit.ViolationCount,
		res.Audit.ArtifactsVerified, res.Audit.TelemetryRecords,
		res.Audit.SettlementsChecked, res.Audit.FraudFlagged)
	return hex.EncodeToString(h.Sum(nil)[:16])
}
