package faults

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"tinymlops/internal/core"
	"tinymlops/internal/ipprot"
	"tinymlops/internal/metering"
	"tinymlops/internal/observe"
	"tinymlops/internal/swarm"
)

// AuditConfig controls one fleet audit.
type AuditConfig struct {
	// Deep re-serializes every unwatermarked deployment's model and
	// verifies it is bit-identical to the registry artifact of the version
	// it claims to run — the strongest convergence proof (an interrupted
	// and resumed delta install must reproduce the target exactly).
	Deep bool
	// AllowPartial tolerates half-written staging slots: an audit taken
	// mid-recovery counts them without flagging a violation. The terminal
	// audit must not set this.
	AllowPartial bool
	// MaxViolations caps the listed violation strings (0 = 64); the count
	// fields keep the true totals.
	MaxViolations int
	// Swarm, when non-nil, extends the audit to the peer-to-peer
	// distribution ledger: byte conservation (registry egress + peer bytes
	// == delivered bytes, and no per-transfer conservation violations),
	// zero hash rejects, and — unless AllowPartial — no transfer state
	// left in flight.
	Swarm *swarm.Swarm
}

// AuditReport is the fleet-wide invariant audit result.
type AuditReport struct {
	// Deployments audited and Devices in the fleet.
	Deployments int
	Devices     int
	// MetersChecked counts conservation checks (issued == used +
	// remaining); ChainsVerified counts meters whose full tamper-evident
	// chain was recomputed from genesis.
	MetersChecked  int
	ChainsVerified int
	// ArtifactsVerified counts deployments whose model bytes matched the
	// registry artifact bit-for-bit (Deep audits only).
	ArtifactsVerified int
	// TelemetryRecords counts window-monotonicity-checked records across
	// ingested and buffered telemetry.
	TelemetryRecords int
	// PartialInstalls counts devices holding a half-written staging slot.
	PartialInstalls int
	// SettlementsChecked counts vouchers whose latest settlement receipt
	// was inspected; FraudFlagged counts those whose latest settlement
	// was rejected — the settler's verdict that the device's report could
	// not be verified. FraudDevices lists them in device-ID order. A
	// flagged device is attempted fraud caught by the billing plane, not
	// a platform invariant violation, so it does not affect OK().
	SettlementsChecked int
	FraudFlagged       int
	FraudDevices       []string
	// SwarmChecked reports the swarm ledger was audited; the byte totals
	// echo the ledger the conservation check ran over.
	SwarmChecked        bool
	SwarmDeliveredBytes int64
	SwarmRegistryBytes  int64
	SwarmPeerBytes      int64
	// ViolationCount is the true number of invariant violations found;
	// Violations lists the first MaxViolations of them.
	ViolationCount int
	Violations     []string
}

// OK reports whether the audit found no violations.
func (r *AuditReport) OK() bool { return r.ViolationCount == 0 }

// String summarizes the report in one line.
func (r *AuditReport) String() string {
	return fmt.Sprintf("audit: %d deployments / %d devices, %d meters (%d chains), %d artifacts bit-exact, %d telemetry records, %d partial installs, %d violations",
		r.Deployments, r.Devices, r.MetersChecked, r.ChainsVerified,
		r.ArtifactsVerified, r.TelemetryRecords, r.PartialInstalls, r.ViolationCount)
}

func (r *AuditReport) violate(max int, format string, args ...any) {
	r.ViolationCount++
	if len(r.Violations) < max {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
}

// Audit checks a platform's fleet against the invariants a chaos run must
// not break. Every read goes through the owning lock (deployment state
// snapshots, meter reports, buffer copies) and nothing is mutated, so it
// is safe to run concurrently with updates — though an audit racing a
// rollout sees each deployment at whichever version its snapshot caught;
// run it quiesced for an exact fleet-wide answer. Violations are reported
// in deterministic (device ID) order.
func Audit(p *core.Platform, cfg AuditConfig) *AuditReport {
	max := cfg.MaxViolations
	if max <= 0 {
		max = 64
	}
	rep := &AuditReport{Devices: p.Fleet.Size()}
	deps := p.Deployments() // sorted by device ID
	rep.Deployments = len(deps)

	// Ingested telemetry windows per device, in ingestion order.
	ingested := make(map[string][]uint32)
	for _, cohort := range sortedCohorts(p.Aggregator) {
		for _, r := range p.Aggregator.Records(cohort) {
			ingested[r.DeviceID] = append(ingested[r.DeviceID], r.Window)
		}
	}

	vouchers := make(map[string]string) // voucher ID -> device holding it
	for _, d := range deps {
		id := d.DeviceID

		// Fleet membership: a deployment must sit on a registered device.
		dev, ok := p.Fleet.Get(id)
		if !ok {
			rep.violate(max, "%s: deployment on a device the fleet does not know", id)
			continue
		}

		// Version consistency: the running version must exist in the
		// registry under the same metadata. The snapshot reads version and
		// model under the deployment lock, so an audit racing an update
		// sees a coherent (version, model) pair.
		liveVer, liveModel, watermarked := d.StateSnapshot()
		ver, err := p.Registry.Get(liveVer.ID)
		if err != nil {
			rep.violate(max, "%s: running version %s unknown to the registry", id, liveVer.ID)
		} else if ver.Digest != liveVer.Digest {
			rep.violate(max, "%s: version %s digest diverges from the registry", id, liveVer.ID)
		}

		// Meter conservation: issued == consumed + remaining, the voucher
		// is genuine and bound to this device, and no other deployment
		// spends the same voucher (double-spend across interrupted
		// installs would surface here — an update retry must never mint
		// or reset a meter).
		v := d.Meter.Voucher()
		used, remaining := d.Meter.Used(), d.Meter.Remaining()
		rep.MetersChecked++
		if used+remaining != v.Queries {
			rep.violate(max, "%s: meter leak: used %d + remaining %d != issued %d", id, used, remaining, v.Queries)
		}
		if v.DeviceID != id {
			rep.violate(max, "%s: voucher %s is bound to %s", id, v.ID, v.DeviceID)
		}
		if !p.Issuer.Verify(&v) {
			rep.violate(max, "%s: voucher %s fails signature verification", id, v.ID)
		}
		if holder, dup := vouchers[v.ID]; dup {
			rep.violate(max, "%s: voucher %s double-spent (also held by %s)", id, v.ID, holder)
		}
		vouchers[v.ID] = id

		// Tamper-evident chain: the unsettled segment must recompute, and
		// when nothing has settled yet the whole chain must extend from
		// genesis with exactly `used` links.
		mrep := d.Meter.BuildReport()
		if mrep.Used != mrep.FromSeq-1+uint64(len(mrep.Entries)) {
			rep.violate(max, "%s: meter claims %d used but chain holds %d entries from seq %d",
				id, mrep.Used, len(mrep.Entries), mrep.FromSeq)
		}
		if mrep.FromSeq == 1 {
			if err := metering.VerifyChain(v, metering.GenesisHead(v), mrep.Entries); err != nil {
				rep.violate(max, "%s: %v", id, err)
			} else {
				rep.ChainsVerified++
			}
		}

		// Settlement verdicts: surface the billing plane's judgment of
		// this voucher's latest settlement. A rejected receipt means the
		// settler could not verify the device's report — the audit's
		// billing-fraud flag. (The receipt survives the rejection
		// precisely so an audit can attribute it.)
		if rc, rok := p.Settler.LastReceipt(v.ID); rok {
			rep.SettlementsChecked++
			if !rc.OK {
				rep.FraudFlagged++
				rep.FraudDevices = append(rep.FraudDevices, id)
			}
		}

		// Slot convergence: no half-written staging slot may survive.
		if token, flashed, total, partial := dev.Staging(); partial {
			rep.PartialInstalls++
			if !cfg.AllowPartial {
				rep.violate(max, "%s: stuck mid-install: %q at %d/%d bytes", id, token, flashed, total)
			}
		}

		// Bit-exact artifact check — the proof that interrupted installs
		// were recovered, not corrupted. Three variant-specific forms:
		// a compiled deployment's module must re-encode to the registry's
		// canonical bytes; a watermarked deployment (whose weights are
		// deliberately perturbed) must still carry its exact per-customer
		// mark; any other deployment's model must serialize to exactly
		// the registry artifact. Updates swap the model pointer rather
		// than mutating in place, so serializing the snapshot outside the
		// lock is safe.
		if cfg.Deep && ver != nil {
			switch {
			case d.CompiledModule() != nil:
				if sha256.Sum256(d.CompiledModule().Encode()) != ver.Digest {
					rep.violate(max, "%s: compiled module bytes diverge from artifact %s", id, ver.ID)
				} else {
					rep.ArtifactsVerified++
				}
			case watermarked:
				owner, tagged := ver.Tags["watermark:"+id]
				if !tagged {
					rep.violate(max, "%s: watermarked deployment has no registry mark tag on %s", id, ver.ID)
					break
				}
				want := ipprot.KeyedBits(owner, core.WatermarkCapacity(liveModel))
				got, werr := ipprot.ExtractStatic(liveModel, owner, len(want), ipprot.DefaultStaticWMConfig())
				if werr != nil {
					rep.violate(max, "%s: watermark extraction failed: %v", id, werr)
				} else if ipprot.BitErrorRate(want, got) != 0 {
					rep.violate(max, "%s: watermark does not verify against owner %q", id, owner)
				} else {
					rep.ArtifactsVerified++
				}
			default:
				data, merr := liveModel.MarshalBinary()
				if merr != nil {
					rep.violate(max, "%s: deployed model does not serialize: %v", id, merr)
				} else if sha256.Sum256(data) != ver.Digest {
					rep.violate(max, "%s: deployed model bytes diverge from artifact %s", id, ver.ID)
				} else {
					rep.ArtifactsVerified++
				}
			}
		}

		// Telemetry monotonicity: windows strictly increase through the
		// ingested history, then the still-buffered records, and the open
		// window lies strictly beyond everything emitted. Gaps are legal
		// (telemetry loss); reordering and replays are not.
		last := -1
		ordered := true
		for _, w := range ingested[id] {
			rep.TelemetryRecords++
			if int(w) <= last {
				ordered = false
			}
			last = int(w)
		}
		for _, r := range d.Buffer.Snapshot() {
			rep.TelemetryRecords++
			if int(r.Window) <= last {
				ordered = false
			}
			last = int(r.Window)
		}
		if !ordered {
			rep.violate(max, "%s: telemetry windows not strictly increasing", id)
		}
		if last >= 0 && uint32(last) >= d.CurrentWindow() {
			rep.violate(max, "%s: open window %d not beyond last emitted %d", id, d.CurrentWindow(), last)
		}
	}

	// Devices without a deployment can still be stuck mid-install: a
	// provisioning Deploy that crashed mid-flash leaves a staged slot and
	// no Deployment to hang it on. Sweep the whole fleet so those are not
	// invisible to the convergence invariant.
	deployed := make(map[string]bool, len(deps))
	for _, d := range deps {
		deployed[d.DeviceID] = true
	}
	for _, dev := range p.Fleet.Devices() {
		if deployed[dev.ID] {
			continue
		}
		if token, flashed, total, partial := dev.Staging(); partial {
			rep.PartialInstalls++
			if !cfg.AllowPartial {
				rep.violate(max, "%s: undeployed device stuck mid-install: %q at %d/%d bytes",
					dev.ID, token, flashed, total)
			}
		}
	}

	// Swarm byte conservation: every delivered byte must be attributed to
	// exactly one serving side, every chunk must have verified on receipt,
	// and at terminal convergence no transfer may still be in flight.
	if cfg.Swarm != nil {
		st := cfg.Swarm.Stats()
		rep.SwarmChecked = true
		rep.SwarmDeliveredBytes = st.DeliveredBytes
		rep.SwarmRegistryBytes = st.RegistryEgressBytes
		rep.SwarmPeerBytes = st.PeerBytes
		if st.RegistryEgressBytes+st.PeerBytes != st.DeliveredBytes {
			rep.violate(max, "swarm: byte conservation broken: registry %d + peers %d != delivered %d",
				st.RegistryEgressBytes, st.PeerBytes, st.DeliveredBytes)
		}
		if st.ConservationViolations > 0 {
			rep.violate(max, "swarm: %d transfers with unattributed bytes", st.ConservationViolations)
		}
		if st.HashRejects > 0 {
			rep.violate(max, "swarm: %d chunk hash rejects from honest sources", st.HashRejects)
		}
		if n := cfg.Swarm.InFlight(); n > 0 && !cfg.AllowPartial {
			rep.violate(max, "swarm: %d devices still hold in-flight transfer state", n)
		}
	}
	return rep
}

func sortedCohorts(a *observe.Aggregator) []string {
	cs := a.Cohorts()
	sort.Strings(cs)
	return cs
}
