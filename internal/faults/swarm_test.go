package faults

import (
	"testing"
)

// swarmChaos is the fault weather the swarm property tests run under:
// the standard churn/flake/crash mix plus peer-drop weather, so fetchers
// lose their serving neighbors mid-chunk and must resume elsewhere.
func swarmChaos(seed uint64) ChaosConfig {
	return ChaosConfig{
		Seed:          seed,
		PChurn:        0.05,
		PDrop:         0.10,
		PSpike:        0.10,
		PBatteryDeath: 0.02,
		PCrash:        0.20,
		PPeerDrop:     0.15,
	}
}

// checkSwarmScenario asserts the invariants every swarm scenario must
// satisfy regardless of scale: full convergence, a clean deep audit that
// covered the swarm ledger, byte conservation, peers actually carrying
// load, and the canary wave being the only wave fully funded by the
// registry.
func checkSwarmScenario(t *testing.T, res *ScenarioResult, workers int) {
	t.Helper()
	if res.Converged != res.FleetSize {
		t.Fatalf("workers=%d: converged %d/%d", workers, res.Converged, res.FleetSize)
	}
	if !res.Audit.OK() {
		t.Fatalf("workers=%d: audit violations: %v", workers, res.Audit.Violations)
	}
	if !res.Audit.SwarmChecked {
		t.Fatalf("workers=%d: audit never inspected the swarm ledger", workers)
	}
	if res.Audit.ArtifactsVerified != res.FleetSize {
		t.Fatalf("workers=%d: only %d/%d deployments bit-exact vs the registry",
			workers, res.Audit.ArtifactsVerified, res.FleetSize)
	}
	if res.Swarm == nil {
		t.Fatalf("workers=%d: swarm scenario produced no swarm report", workers)
	}
	st := res.Swarm.Stats
	if st.RegistryEgressBytes+st.PeerBytes != st.DeliveredBytes {
		t.Fatalf("workers=%d: conservation broken: registry %d + peers %d != delivered %d",
			workers, st.RegistryEgressBytes, st.PeerBytes, st.DeliveredBytes)
	}
	if st.ConservationViolations != 0 || st.HashRejects != 0 {
		t.Fatalf("workers=%d: %d conservation violations, %d hash rejects",
			workers, st.ConservationViolations, st.HashRejects)
	}
	if st.PeerBytes == 0 {
		t.Fatalf("workers=%d: no bytes moved peer-to-peer", workers)
	}
	if st.RegistryEgressBytes >= st.DeliveredBytes {
		t.Fatalf("workers=%d: registry paid every byte (%d of %d) — the swarm is idle",
			workers, st.RegistryEgressBytes, st.DeliveredBytes)
	}
	// The chunk-level fault machinery must actually have fired and healed.
	if st.Resumed == 0 {
		t.Fatalf("workers=%d: no transfer resumed under %.0f%% crash weather",
			workers, 100*swarmChaos(0).PCrash)
	}
	if st.MidChunkDrops == 0 {
		t.Fatalf("workers=%d: peer-drop weather never fired", workers)
	}
	// Per-wave economics: the canary wave is funded entirely by the
	// registry (there are no seeders yet); later waves lean on peers.
	if len(res.Swarm.WaveEgress) < 2 {
		t.Fatalf("workers=%d: %d waves recorded", workers, len(res.Swarm.WaveEgress))
	}
	w0 := res.Swarm.WaveEgress[0]
	if w0.RegistryBytes == 0 || w0.PeerBytes != 0 {
		t.Fatalf("workers=%d: canary wave split reg=%d peer=%d, want all registry",
			workers, w0.RegistryBytes, w0.PeerBytes)
	}
	var laterPeer int64
	for _, wb := range res.Swarm.WaveEgress[1:] {
		laterPeer += wb.PeerBytes
	}
	if laterPeer == 0 {
		t.Fatalf("workers=%d: post-canary waves moved no peer bytes", workers)
	}
}

// TestChaosSwarmRolloutDeterministic1k is the swarm property test: a
// 1k-device staged rollout where only the canary wave downloads from the
// registry and every later wave fetches hash-verified chunks from
// already-updated neighbors, under churn, mid-flash crashes and peer-drop
// weather. Both transfer modes run — delta-chunk (the head-only
// fine-tune's natural path) and full-artifact (ForceFull) — and in each
// mode every device must converge to a bit-identical artifact, the
// byte-conservation audit must be clean, and the outcome must be
// fingerprint-identical at 1, 4 and 16 workers.
func TestChaosSwarmRolloutDeterministic1k(t *testing.T) {
	for _, mode := range []struct {
		name      string
		forceFull bool
	}{
		{"delta-chunks", false},
		{"full-artifact", true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			var first *ScenarioResult
			for _, workers := range []int{1, 4, 16} {
				res, err := RunScenario(ScenarioConfig{
					Devices: 1_000, Workers: workers, Seed: 7001,
					Chaos:        swarmChaos(7002),
					SwarmRollout: true,
					ForceFull:    mode.forceFull,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				checkSwarmScenario(t, res, workers)
				if mode.forceFull {
					if res.Rollout.FullTransfers == 0 || res.Rollout.DeltaTransfers != 0 {
						t.Fatalf("workers=%d: ForceFull shipped %d full / %d delta",
							workers, res.Rollout.FullTransfers, res.Rollout.DeltaTransfers)
					}
				} else if res.Rollout.DeltaTransfers == 0 {
					t.Fatalf("workers=%d: head-only update never shipped a delta", workers)
				}
				if first == nil {
					first = res
					st := res.Swarm.Stats
					t.Logf("1k swarm %s: fingerprint=%s delivered=%dB registry=%dB peers=%dB resumed=%d drops=%d",
						mode.name, res.Fingerprint, st.DeliveredBytes, st.RegistryEgressBytes,
						st.PeerBytes, st.Resumed, st.MidChunkDrops)
					continue
				}
				if res.Fingerprint != first.Fingerprint {
					t.Fatalf("workers=%d: fingerprint %s != workers=1's %s — swarm outcome depends on scheduling",
						workers, res.Fingerprint, first.Fingerprint)
				}
				if res.Swarm.Stats != first.Swarm.Stats {
					t.Fatalf("workers=%d: swarm ledger diverged:\n%+v\nvs\n%+v",
						workers, res.Swarm.Stats, first.Swarm.Stats)
				}
			}
		})
	}
}

// TestChaosSwarmInstallEquivalentToRegistryDirect is the install-
// equivalence property: the same scenario run registry-direct and run
// over the swarm must converge every device onto artifacts that are
// bit-identical to the registry's canonical bytes — the deep audit's
// ArtifactsVerified re-derives each deployment from the registry and
// compares byte-for-byte, so full verification on both sides proves the
// two transports installed the same bits. The swarm run must additionally
// move most of those bytes off the registry.
func TestChaosSwarmInstallEquivalentToRegistryDirect(t *testing.T) {
	base := ScenarioConfig{
		Devices: 120, Seed: 7101, Chaos: swarmChaos(7102),
	}

	direct, err := RunScenario(base)
	if err != nil {
		t.Fatalf("registry-direct: %v", err)
	}
	swarmed := base
	swarmed.SwarmRollout = true
	via, err := RunScenario(swarmed)
	if err != nil {
		t.Fatalf("swarm: %v", err)
	}

	for _, res := range []*ScenarioResult{direct, via} {
		if res.Converged != res.FleetSize || !res.Audit.OK() {
			t.Fatalf("converged %d/%d, audit %v", res.Converged, res.FleetSize, res.Audit.Violations)
		}
		if res.Audit.ArtifactsVerified != res.FleetSize {
			t.Fatalf("%d/%d deployments bit-exact vs the registry",
				res.Audit.ArtifactsVerified, res.FleetSize)
		}
	}
	if direct.V2.ID != via.V2.ID || direct.V2.Digest != via.V2.Digest {
		t.Fatalf("the two transports rolled out different artifacts: %s vs %s",
			direct.V2.ID, via.V2.ID)
	}
	if direct.Swarm != nil {
		t.Fatal("registry-direct run produced a swarm report")
	}
	st := via.Swarm.Stats
	if st.PeerBytes == 0 || st.RegistryEgressBytes >= st.DeliveredBytes {
		t.Fatalf("swarm run moved nothing peer-to-peer: %+v", st)
	}
}

// TestChaosSwarmRollout10kBitIdenticalAcrossWorkerCounts is the headline
// acceptance scenario for swarm distribution: a 10k-device rollout under
// the full fault weather converges with zero audit violations while the
// registry funds only the canary wave (plus last-resort chunks), and the
// outcome — including the complete swarm byte ledger — is bit-identical
// at 1, 4 and 16 workers.
func TestChaosSwarmRollout10kBitIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-device scenario skipped in -short")
	}
	var first *ScenarioResult
	for _, workers := range []int{1, 4, 16} {
		res, err := RunScenario(ScenarioConfig{
			Devices: 10_000, Workers: workers, Seed: 7201,
			Chaos:        swarmChaos(7202),
			SwarmRollout: true,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		checkSwarmScenario(t, res, workers)
		st := res.Swarm.Stats
		// At 10k devices the registry's share must be a small minority:
		// the swarm, not the vendor, carries the fleet.
		if st.RegistryEgressBytes*4 > st.DeliveredBytes {
			t.Fatalf("workers=%d: registry paid %d of %d delivered bytes — peers should carry >75%%",
				workers, st.RegistryEgressBytes, st.DeliveredBytes)
		}
		if first == nil {
			first = res
			t.Logf("10k swarm: fingerprint=%s delivered=%dB registry=%dB (%.1f%%) peers=%dB resumed=%d",
				res.Fingerprint, st.DeliveredBytes, st.RegistryEgressBytes,
				100*float64(st.RegistryEgressBytes)/float64(st.DeliveredBytes),
				st.PeerBytes, st.Resumed)
			continue
		}
		if res.Fingerprint != first.Fingerprint {
			t.Fatalf("workers=%d: fingerprint %s != workers=1's %s",
				workers, res.Fingerprint, first.Fingerprint)
		}
	}
}
