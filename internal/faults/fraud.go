package faults

import (
	"tinymlops/internal/metering"
)

// overclaimEntries is how many fabricated chain links an overclaiming
// device appends to its settlement report.
const overclaimEntries = 24

// TamperAttestedReport applies the profile's billing frauds to a built
// settlement report, in place — the adversary model of the settlement
// phase. Overclaim extends the tamper-evident chain with fabricated but
// chain-valid entries and inflates the claimed usage; the chain math is
// self-consistent, so only the proof-of-inference sample (re-rooted at
// the new terminal head) can catch it. ProofReplay keeps each
// attestation's charge binding but substitutes a proof produced for a
// different charge — the stale-replay shape; with a single attestation
// it corrupts the proof bytes instead. WrongVersionProof relabels every
// attestation to the first altModels entry that differs from its current
// claim (altModels are other registered version IDs), defeating any
// verifier that checks weights rather than bound model identity.
//
// The returned profile keeps only the fraud bits that actually modified
// the report: a draw with nothing to tamper (relabeling when the window
// sampled no charges, say) is reported as not injected.
func TamperAttestedReport(f FaultProfile, rep *metering.AttestedReport, altModels ...string) FaultProfile {
	var eff FaultProfile
	if f.Overclaim {
		head := metering.GenesisHead(rep.Voucher)
		if n := len(rep.Entries); n > 0 {
			head = rep.Entries[n-1].Hash
		}
		if len(rep.Entries) > 0 || rep.FromSeq == 1 {
			for i := 0; i < overclaimEntries; i++ {
				e := metering.NextEntry(head, rep.Used+1, uint64(i+1), rep.Voucher.ID)
				rep.Entries = append(rep.Entries, e)
				rep.Used++
				head = e.Hash
			}
		} else {
			// Mid-window report with no settled-head knowledge: bare
			// inflation (caught by the chain accounting instead).
			rep.Used += overclaimEntries
		}
		eff.Overclaim = true
	}
	if f.ProofReplay {
		atts := rep.Attestations
		switch {
		case len(atts) >= 2:
			// Rotate the proof payloads one slot while keeping each
			// attestation's sequence: every proof now attests a charge it
			// was not produced for.
			first := atts[0]
			for i := 0; i < len(atts)-1; i++ {
				atts[i].ModelID, atts[i].Input = atts[i+1].ModelID, atts[i+1].Input
				atts[i].Claimed, atts[i].Proof = atts[i+1].Claimed, atts[i+1].Proof
			}
			last := len(atts) - 1
			atts[last].ModelID, atts[last].Input = first.ModelID, first.Input
			atts[last].Claimed, atts[last].Proof = first.Claimed, first.Proof
			eff.ProofReplay = true
		case len(atts) == 1 && len(atts[0].Proof) > 0:
			atts[0].Proof[len(atts[0].Proof)/2] ^= 0x40
			eff.ProofReplay = true
		}
	}
	if f.WrongVersionProof {
		for i := range rep.Attestations {
			for _, alt := range altModels {
				if alt != "" && alt != rep.Attestations[i].ModelID {
					rep.Attestations[i].ModelID = alt
					eff.WrongVersionProof = true
					break
				}
			}
		}
	}
	return eff
}
