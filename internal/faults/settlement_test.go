package faults

import (
	"testing"
)

// TestChaosSettlementFraudCaughtDeterministic is the verified-billing
// acceptance scenario: a fleet settles under injected billing fraud —
// overclaimed tick counts, replayed stale proofs, wrong-model-version
// relabeling — and every tampered report must be rejected while every
// honest report settles, with the audit's fraud flags reproducing the
// injected set exactly and the fingerprint identical at 1, 4 and 16
// workers.
func TestChaosSettlementFraudCaughtDeterministic(t *testing.T) {
	chaos := ChaosConfig{
		Seed:               3002,
		PDrop:              0.10,
		PSpike:             0.10,
		POverclaim:         0.12,
		PProofReplay:       0.12,
		PWrongVersionProof: 0.12,
	}
	var first *ScenarioResult
	for _, workers := range []int{1, 4, 16} {
		res, err := RunScenario(ScenarioConfig{
			Devices: 90, Workers: workers, Seed: 3001, Chaos: chaos,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		s := res.Settlement
		if s == nil {
			t.Fatalf("workers=%d: no settlement report", workers)
		}
		// The adversaries must actually have shown up — all three classes.
		if s.FraudInjected == 0 || s.Overclaims == 0 || s.Replays == 0 || s.WrongVersions == 0 {
			t.Fatalf("workers=%d: fraud classes unexercised: %+v", workers, s)
		}
		// The phase itself enforces these, but pin them in the report too.
		if s.FraudCaught != s.FraudInjected {
			t.Fatalf("workers=%d: caught %d of %d injected frauds", workers, s.FraudCaught, s.FraudInjected)
		}
		if s.Settled != s.Devices-s.FraudInjected {
			t.Fatalf("workers=%d: %d honest settlements of %d expected", workers, s.Settled, s.Devices-s.FraudInjected)
		}
		if s.ProofsChecked == 0 {
			t.Fatalf("workers=%d: settler verified no inference proofs", workers)
		}
		// Platform invariants hold even with fraud in the air: rejection
		// leaves device and settler state untouched.
		if !res.Audit.OK() {
			t.Fatalf("workers=%d: audit violations: %v", workers, res.Audit.Violations)
		}
		// The audit's fraud flags must be exactly the injected set — every
		// fraud caught, zero false positives on honest devices.
		if res.Audit.SettlementsChecked != s.Devices {
			t.Fatalf("workers=%d: audit inspected %d/%d settlements", workers, res.Audit.SettlementsChecked, s.Devices)
		}
		injected := make(map[string]bool)
		for _, vd := range s.Verdicts {
			if vd.Injected {
				injected[vd.DeviceID] = true
			}
		}
		if res.Audit.FraudFlagged != len(injected) {
			t.Fatalf("workers=%d: audit flagged %d devices, %d injected", workers, res.Audit.FraudFlagged, len(injected))
		}
		for _, id := range res.Audit.FraudDevices {
			if !injected[id] {
				t.Fatalf("workers=%d: audit flagged honest device %s", workers, id)
			}
		}
		if first == nil {
			first = res
			t.Logf("settlement phase: devices=%d settled=%d fraud=%d (overclaim=%d replay=%d wrong-version=%d) proofs=%d",
				s.Devices, s.Settled, s.FraudInjected, s.Overclaims, s.Replays, s.WrongVersions, s.ProofsChecked)
			continue
		}
		if res.Fingerprint != first.Fingerprint {
			t.Fatalf("workers=%d: fingerprint %s != %s — settlement outcome depends on scheduling",
				workers, res.Fingerprint, first.Fingerprint)
		}
	}
}
