// Package market implements the §IV vision of orchestrated edge
// workloads: devices advertise spare capacity at a price (owners "receive
// a monetary compensation"), workloads declare requirements (ops, memory,
// latency, sandbox capabilities) and a broker matches them; and a model
// can be split between edge and cloud at the layer granularity that
// minimizes end-to-end latency for the current network bandwidth (refs
// [62]–[65]).
//
// The paper treats partitioned execution as an operational concern, not
// an offline calculation: the right cut point depends on the device's
// compute rate, the uplink bandwidth of the moment and the cloud's load,
// all of which move while a deployment is live. BestSplit is therefore a
// pure planner — it evaluates the full per-cut latency curve for one set
// of conditions and picks the minimum — and the live half of the story
// lives in internal/offload, which executes a SplitPlan against the real
// fleet (shipping the boundary activation, charging the meter and radio)
// and re-invokes BestSplit as conditions drift. Match is the companion
// broker for whole workloads: cheapest-feasible assignment under price,
// capability, op-support, memory and latency constraints.
package market
