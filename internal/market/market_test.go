package market

import (
	"testing"
	"time"

	"tinymlops/internal/device"
	"tinymlops/internal/nn"
	"tinymlops/internal/procvm"
	"tinymlops/internal/tensor"
)

func dev(t *testing.T, profile, id string, charging bool) *device.Device {
	t.Helper()
	caps, err := device.ProfileByName(profile)
	if err != nil {
		t.Fatal(err)
	}
	d := device.NewDevice(id, caps, tensor.NewRNG(1))
	if charging {
		d.SetBehavior(1, 1, 0)
	} else {
		d.SetBehavior(0, 1, 0)
	}
	d.Tick()
	return d
}

func TestNewOfferBatteryPremium(t *testing.T) {
	charged := NewOffer(dev(t, "phone", "p1", true), 1, 2, procvm.CapNone, 1e12)
	onBattery := NewOffer(dev(t, "phone", "p2", false), 1, 2, procvm.CapNone, 1e12)
	if onBattery.PricePerGMAC <= charged.PricePerGMAC {
		t.Fatalf("battery device should ask more: %v vs %v", onBattery.PricePerGMAC, charged.PricePerGMAC)
	}
	ratio := onBattery.PricePerGMAC / charged.PricePerGMAC
	if ratio < 2.9 || ratio > 3.1 {
		t.Fatalf("battery premium ratio = %v, want ≈3", ratio)
	}
}

func TestMatchPrefersCheapestFeasible(t *testing.T) {
	gw := dev(t, "edge-gateway", "gw", true)
	phone := dev(t, "phone", "ph", true)
	offers := []Offer{
		NewOffer(phone, 1, 2, procvm.CapNone, 1e12),
		NewOffer(gw, 1, 2, procvm.CapNone, 1e12),
	}
	w := Workload{ID: "job", MACs: 1e6, Bits: 8, ModelBytes: 1 << 20, RAMBytes: 1 << 20,
		RequiredOps: []string{"dense"}, MaxPricePerGMAC: 1e9}
	got, unplaced := Match([]Workload{w}, offers)
	if len(unplaced) != 0 || len(got) != 1 {
		t.Fatalf("assignments %v, unplaced %v", got, unplaced)
	}
	// The gateway's energy per MAC is lowest, so it is the cheapest host.
	if got[0].DeviceID != "gw" {
		t.Fatalf("matched %s, want gw", got[0].DeviceID)
	}
	if got[0].Latency <= 0 {
		t.Fatal("no latency modeled")
	}
}

func TestMatchRespectsConstraints(t *testing.T) {
	m0 := dev(t, "m0-sensor", "m0", true)
	offers := []Offer{NewOffer(m0, 1, 2, procvm.CapSensor, 1e12)}
	cases := []struct {
		name string
		w    Workload
	}{
		{"ops", Workload{ID: "conv", MACs: 1000, Bits: 8, RequiredOps: []string{"conv2d"}, MaxPricePerGMAC: 1e9}},
		{"caps", Workload{ID: "net", MACs: 1000, Bits: 8, RequiredCaps: procvm.CapNetwork, MaxPricePerGMAC: 1e9}},
		{"flash", Workload{ID: "big", MACs: 1000, Bits: 8, ModelBytes: 10 << 20, MaxPricePerGMAC: 1e9}},
		{"price", Workload{ID: "cheap", MACs: 1000, Bits: 8, MaxPricePerGMAC: 1e-12}},
		{"latency", Workload{ID: "fast", MACs: 1e9, Bits: 8, MaxLatency: time.Microsecond, MaxPricePerGMAC: 1e9}},
	}
	for _, c := range cases {
		_, unplaced := Match([]Workload{c.w}, offers)
		if len(unplaced) != 1 {
			t.Fatalf("%s constraint not enforced", c.name)
		}
	}
	// A satisfiable workload places.
	ok := Workload{ID: "ok", MACs: 1000, Bits: 8, RequiredOps: []string{"dense"},
		RequiredCaps: procvm.CapSensor, MaxPricePerGMAC: 1e9}
	got, unplaced := Match([]Workload{ok}, offers)
	if len(got) != 1 || len(unplaced) != 0 {
		t.Fatalf("feasible workload unplaced: %v / %v", got, unplaced)
	}
}

func TestMatchCapacityDepletes(t *testing.T) {
	gw := dev(t, "edge-gateway", "gw", true)
	offers := []Offer{NewOffer(gw, 1, 2, procvm.CapNone, 1500)}
	w := Workload{MACs: 1000, Bits: 8, MaxPricePerGMAC: 1e9}
	w1, w2 := w, w
	w1.ID, w2.ID = "a", "b"
	got, unplaced := Match([]Workload{w1, w2}, offers)
	if len(got) != 1 || len(unplaced) != 1 || unplaced[0] != "b" {
		t.Fatalf("capacity not enforced: %v / %v", got, unplaced)
	}
}

func splitFixture(t *testing.T) []nn.LayerCost {
	t.Helper()
	rng := tensor.NewRNG(2)
	net := nn.NewNetwork([]int{64},
		nn.NewDense(64, 256, rng), nn.NewReLU(),
		nn.NewDense(256, 256, rng), nn.NewReLU(),
		nn.NewDense(256, 8, rng))
	costs, err := net.Summary()
	if err != nil {
		t.Fatal(err)
	}
	return costs
}

func TestBestSplitExtremes(t *testing.T) {
	costs := splitFixture(t)
	m0, _ := device.ProfileByName("m0-sensor")
	cloud, _ := device.ProfileByName("edge-gateway")

	// Fat pipe, slow device: everything should move to the cloud (cut 0
	// or at most a trivial prefix).
	fast, _, err := BestSplit(costs, m0, cloud, 32, 100e6, time.Millisecond, 64*4)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cut > 1 {
		t.Fatalf("fat pipe should offload, cut = %d", fast.Cut)
	}
	// No pipe: everything on device.
	offline, curve, err := BestSplit(costs, m0, cloud, 32, 0, 0, 64*4)
	if err != nil {
		t.Fatal(err)
	}
	if offline.Cut != len(costs) || len(curve) != 1 {
		t.Fatalf("offline split cut = %d", offline.Cut)
	}
	// Slow pipe with a fast device: prefer staying on device.
	phone, _ := device.ProfileByName("phone")
	slow, _, err := BestSplit(costs, phone, cloud, 32, 1e3, 200*time.Millisecond, 64*4)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Cut != len(costs) {
		t.Fatalf("slow pipe should stay on device, cut = %d", slow.Cut)
	}
}

func TestBestSplitMovesDeviceWardAsBandwidthDrops(t *testing.T) {
	costs := splitFixture(t)
	m4, _ := device.ProfileByName("m4-wearable")
	cloud, _ := device.ProfileByName("edge-gateway")
	prevCut := -1
	for _, bw := range []float64{100e6, 1e6, 1e4, 1e2} {
		best, _, err := BestSplit(costs, m4, cloud, 32, bw, 10*time.Millisecond, 64*4)
		if err != nil {
			t.Fatal(err)
		}
		if best.Cut < prevCut {
			t.Fatalf("cut moved cloud-ward as bandwidth dropped: %d after %d at bw=%v", best.Cut, prevCut, bw)
		}
		prevCut = best.Cut
	}
	if prevCut != len(costs) {
		t.Fatalf("at 100 B/s everything should be on-device, cut = %d", prevCut)
	}
}

func TestBestSplitCurveConsistency(t *testing.T) {
	costs := splitFixture(t)
	m4, _ := device.ProfileByName("m4-wearable")
	cloud, _ := device.ProfileByName("edge-gateway")
	best, curve, err := BestSplit(costs, m4, cloud, 32, 1e6, 10*time.Millisecond, 64*4)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != len(costs)+1 {
		t.Fatalf("curve has %d points, want %d", len(curve), len(costs)+1)
	}
	for _, p := range curve {
		if p.Total != p.DeviceLatency+p.TxLatency+p.CloudLatency {
			t.Fatalf("plan decomposition inconsistent: %+v", p)
		}
		if p.Total < best.Total {
			t.Fatalf("best is not minimal: %+v < %+v", p, best)
		}
	}
	// Full-edge plan must have zero network time.
	if curve[len(costs)].TxLatency != 0 || curve[len(costs)].CloudLatency != 0 {
		t.Fatalf("full-edge plan touches the network: %+v", curve[len(costs)])
	}
	if _, _, err := BestSplit(nil, m4, cloud, 32, 1e6, 0, 0); err == nil {
		t.Fatal("accepted empty layer costs")
	}
}

// TestBestSplitRejectsNonsenseInputs pins the input validation: negative
// bandwidth, input size or RTT are configuration bugs, not conditions, and
// must error rather than produce a plan.
func TestBestSplitRejectsNonsenseInputs(t *testing.T) {
	costs := splitFixture(t)
	m4, _ := device.ProfileByName("m4-wearable")
	cloud, _ := device.ProfileByName("edge-gateway")
	cases := []struct {
		name  string
		bw    float64
		rtt   time.Duration
		input int64
	}{
		{"negative bandwidth", -1, 0, 64},
		{"negative input bytes", 1e6, 0, -64},
		{"negative rtt", 1e6, -time.Millisecond, 64},
	}
	for _, c := range cases {
		if _, _, err := BestSplit(costs, m4, cloud, 32, c.bw, c.rtt, c.input); err == nil {
			t.Fatalf("%s accepted", c.name)
		}
	}
	// Zero bandwidth is a condition (offline), not nonsense: it forces the
	// full-edge plan rather than erroring.
	p, curve, err := BestSplit(costs, m4, cloud, 32, 0, 0, 64)
	if err != nil || p.Cut != len(costs) || len(curve) != 1 {
		t.Fatalf("offline plan = %+v (curve %d), err %v", p, len(curve), err)
	}
}

// TestBestSplitZeroAndSingleLayerModels covers the degenerate model
// shapes: an empty cost list errors, and a single-layer model yields
// exactly the two valid plans (all-cloud and all-edge).
func TestBestSplitZeroAndSingleLayerModels(t *testing.T) {
	m4, _ := device.ProfileByName("m4-wearable")
	cloud, _ := device.ProfileByName("edge-gateway")
	if _, _, err := BestSplit([]nn.LayerCost{}, m4, cloud, 32, 1e6, 0, 64); err == nil {
		t.Fatal("accepted zero-layer model")
	}
	rng := tensor.NewRNG(3)
	net := nn.NewNetwork([]int{16}, nn.NewDense(16, 4, rng))
	costs, err := net.Summary()
	if err != nil {
		t.Fatal(err)
	}
	best, curve, err := BestSplit(costs, m4, cloud, 32, 1e9, time.Microsecond, 16*4)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 {
		t.Fatalf("single-layer curve has %d plans, want 2", len(curve))
	}
	if curve[0].Cut != 0 || curve[1].Cut != 1 {
		t.Fatalf("curve cuts %d,%d", curve[0].Cut, curve[1].Cut)
	}
	// Cut 1 keeps the single layer on-device: no network terms at all.
	if curve[1].TxLatency != 0 || curve[1].CloudLatency != 0 {
		t.Fatalf("full-edge plan touches the network: %+v", curve[1])
	}
	// Cut 0 ships the raw input: its transfer time must include the RTT.
	if curve[0].TxLatency < time.Microsecond {
		t.Fatalf("all-cloud plan ignores rtt: %+v", curve[0])
	}
	if best.Total != curve[0].Total && best.Total != curve[1].Total {
		t.Fatalf("best %+v not on the curve", best)
	}
	// On a fat pipe the fast cloud wins the single-layer model.
	if best.Cut != 0 {
		t.Fatalf("fat pipe should offload the single layer, cut %d", best.Cut)
	}
}
