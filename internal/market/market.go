package market

import (
	"fmt"
	"sort"
	"time"

	"tinymlops/internal/device"
	"tinymlops/internal/nn"
	"tinymlops/internal/procvm"
)

// Workload is a unit of ML work seeking a host.
type Workload struct {
	ID string
	// MACs per request at the given weight Bits.
	MACs int64
	Bits int
	// ModelBytes must fit flash, RAMBytes must fit memory.
	ModelBytes int64
	RAMBytes   int64
	// RequiredOps must all have native kernels on the host.
	RequiredOps []string
	// RequiredCaps is the sandbox capability set the container needs.
	RequiredCaps procvm.Capability
	// MaxLatency bounds per-request latency on the host (0 = unbounded).
	MaxLatency time.Duration
	// MaxPricePerGMAC is the requester's price cap (arbitrary currency
	// units per 10⁹ MACs).
	MaxPricePerGMAC float64
}

// Offer is a device advertising capacity.
type Offer struct {
	Device *device.Device
	// PricePerGMAC is the asking price.
	PricePerGMAC float64
	// GrantedCaps is the sandbox capability set the owner grants.
	GrantedCaps procvm.Capability
	// CapacityMACs is the total MAC budget the owner sells this round.
	CapacityMACs int64
}

// NewOffer derives an ask from the device's marginal energy cost times a
// margin, with a battery premium: a device not on a charger prices its
// battery 3× (selling scarce joules), matching the paper's incentive story.
func NewOffer(d *device.Device, energyPricePerJoule, margin float64, granted procvm.Capability, capacityMACs int64) Offer {
	costPerGMAC := d.Caps.EnergyPerMACJoule * 1e9 * energyPricePerJoule
	premium := 1.0
	if !d.Charging() {
		premium = 3.0
	}
	return Offer{
		Device:       d,
		PricePerGMAC: costPerGMAC * margin * premium,
		GrantedCaps:  granted,
		CapacityMACs: capacityMACs,
	}
}

// Assignment records a matched workload.
type Assignment struct {
	WorkloadID string
	DeviceID   string
	// PricePerGMAC agreed (the offer's ask).
	PricePerGMAC float64
	// Latency is the modeled per-request latency on the host.
	Latency time.Duration
}

// Match assigns each workload (in order) to the cheapest feasible offer
// with remaining capacity. It returns the assignments and the IDs of
// workloads no offer could host.
func Match(workloads []Workload, offers []Offer) ([]Assignment, []string) {
	remaining := make([]int64, len(offers))
	for i := range offers {
		remaining[i] = offers[i].CapacityMACs
	}
	// Deterministic order: cheapest first, device ID as tie-break.
	order := make([]int, len(offers))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		oa, ob := offers[order[a]], offers[order[b]]
		if oa.PricePerGMAC != ob.PricePerGMAC {
			return oa.PricePerGMAC < ob.PricePerGMAC
		}
		return oa.Device.ID < ob.Device.ID
	})
	var out []Assignment
	var unplaced []string
	for _, w := range workloads {
		placed := false
		for _, oi := range order {
			o := offers[oi]
			if remaining[oi] < w.MACs {
				continue
			}
			if o.PricePerGMAC > w.MaxPricePerGMAC {
				continue
			}
			if !o.GrantedCaps.Has(w.RequiredCaps) {
				continue
			}
			if !opsSupported(o.Device, w.RequiredOps) {
				continue
			}
			if err := o.Device.CheckFit(w.ModelBytes, w.RAMBytes); err != nil {
				continue
			}
			lat := o.Device.Caps.InferenceLatency(w.MACs, w.Bits)
			if w.MaxLatency > 0 && lat > w.MaxLatency {
				continue
			}
			remaining[oi] -= w.MACs
			out = append(out, Assignment{
				WorkloadID: w.ID, DeviceID: o.Device.ID,
				PricePerGMAC: o.PricePerGMAC, Latency: lat,
			})
			placed = true
			break
		}
		if !placed {
			unplaced = append(unplaced, w.ID)
		}
	}
	return out, unplaced
}

func opsSupported(d *device.Device, ops []string) bool {
	for _, op := range ops {
		if !d.Caps.SupportsOp(op) {
			return false
		}
	}
	return true
}

// SplitPlan describes running layers [0,Cut) on the device and [Cut,n) on
// the cloud, transferring the activation at the boundary.
type SplitPlan struct {
	// Cut is the number of leading layers on the device (0 = all cloud,
	// n = all edge).
	Cut int
	// DeviceLatency, TxLatency, CloudLatency decompose the total.
	DeviceLatency time.Duration
	TxLatency     time.Duration
	CloudLatency  time.Duration
	Total         time.Duration
}

// BestSplit finds the layer cut minimizing end-to-end latency for one
// request. bandwidthBps is the device's uplink in bytes/second (0 means no
// connectivity, forcing the full-edge plan; negative is rejected); rtt is
// the fixed network round-trip added to any plan that touches the cloud;
// inputBytes is the size of the raw input (transferred when Cut = 0).
// It returns the best plan and the full per-cut curve (for the E7 sweep).
func BestSplit(costs []nn.LayerCost, dev, cloud device.Capabilities, bits int, bandwidthBps float64, rtt time.Duration, inputBytes int64) (SplitPlan, []SplitPlan, error) {
	if len(costs) == 0 {
		return SplitPlan{}, nil, fmt.Errorf("market: empty layer costs")
	}
	if bandwidthBps < 0 {
		return SplitPlan{}, nil, fmt.Errorf("market: negative bandwidth %v B/s", bandwidthBps)
	}
	if inputBytes < 0 {
		return SplitPlan{}, nil, fmt.Errorf("market: negative input size %d bytes", inputBytes)
	}
	if rtt < 0 {
		return SplitPlan{}, nil, fmt.Errorf("market: negative rtt %v", rtt)
	}
	if bandwidthBps == 0 {
		// No connectivity: the only valid plan is fully on-device.
		var devLat time.Duration
		for _, c := range costs {
			devLat += dev.InferenceLatency(c.Info.MACs, bits)
		}
		p := SplitPlan{Cut: len(costs), DeviceLatency: devLat, Total: devLat}
		return p, []SplitPlan{p}, nil
	}
	curve := make([]SplitPlan, 0, len(costs)+1)
	for cut := 0; cut <= len(costs); cut++ {
		var p SplitPlan
		p.Cut = cut
		for i := 0; i < cut; i++ {
			p.DeviceLatency += dev.InferenceLatency(costs[i].Info.MACs, bits)
		}
		for i := cut; i < len(costs); i++ {
			p.CloudLatency += cloud.InferenceLatency(costs[i].Info.MACs, bits)
		}
		if cut < len(costs) {
			// Something crosses the network: activation (or input) + RTT.
			txBytes := inputBytes
			if cut > 0 {
				txBytes = 4 * costs[cut-1].Info.ActivationFloats
			}
			p.TxLatency = rtt + time.Duration(float64(txBytes)/bandwidthBps*float64(time.Second))
		}
		p.Total = p.DeviceLatency + p.TxLatency + p.CloudLatency
		curve = append(curve, p)
	}
	best := curve[0]
	for _, p := range curve[1:] {
		if p.Total < best.Total {
			best = p
		}
	}
	return best, curve, nil
}
