package tensor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Tensor is a dense, row-major float32 tensor.
//
// Data holds len == product(shape) values. Callers may read and write Data
// directly for performance, but must not resize it; use Reshape to change
// the logical shape.
type Tensor struct {
	shape []int
	Data  []float32
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative or the shape is empty.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the product of the shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (need %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), Data: data}
}

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's dimensions. The returned slice is owned by the
// tensor and must not be modified.
func (t *Tensor) Shape() []int { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rows returns the first dimension of a matrix; it panics for non-2D tensors.
func (t *Tensor) Rows() int {
	t.must2D("Rows")
	return t.shape[0]
}

// Cols returns the second dimension of a matrix; it panics for non-2D tensors.
func (t *Tensor) Cols() int {
	t.must2D("Cols")
	return t.shape[1]
}

func (t *Tensor) must2D(op string) {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: %s requires a 2D tensor, got shape %v", op, t.shape))
	}
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set writes v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

// At2 is a fast accessor for 2D tensors.
func (t *Tensor) At2(i, j int) float32 { return t.Data[i*t.shape[1]+j] }

// Set2 is a fast mutator for 2D tensors.
func (t *Tensor) Set2(i, j int, v float32) { t.Data[i*t.shape[1]+j] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.shape))
	}
	off := 0
	for k, i := range idx {
		if i < 0 || i >= t.shape[k] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[k] + i
	}
	return off
}

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of the tensor with a new shape. The underlying data
// is shared. The new shape must describe the same number of elements; one
// dimension may be -1, in which case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	infer := -1
	n := 1
	for i, d := range shape {
		switch {
		case d == -1:
			if infer >= 0 {
				panic("tensor: Reshape allows at most one -1 dimension")
			}
			infer = i
		case d < 0:
			panic(fmt.Sprintf("tensor: invalid Reshape dimension %d", d))
		default:
			n *= d
		}
	}
	out := append([]int(nil), shape...)
	if infer >= 0 {
		if n == 0 || len(t.Data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension for Reshape(%v) of %d elements", shape, len(t.Data)))
		}
		out[infer] = len(t.Data) / n
		n *= out[infer]
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: Reshape(%v) incompatible with %d elements", shape, len(t.Data)))
	}
	return &Tensor{shape: out, Data: t.Data}
}

// Row returns a 1-element-deep view of row i of a 2D tensor.
func (t *Tensor) Row(i int) *Tensor {
	t.must2D("Row")
	c := t.shape[1]
	return &Tensor{shape: []int{c}, Data: t.Data[i*c : (i+1)*c]}
}

// RowSlice returns rows [lo,hi) of a 2D tensor as a shared view.
func (t *Tensor) RowSlice(lo, hi int) *Tensor {
	t.must2D("RowSlice")
	if lo < 0 || hi > t.shape[0] || lo > hi {
		panic(fmt.Sprintf("tensor: RowSlice(%d,%d) out of range for %d rows", lo, hi, t.shape[0]))
	}
	c := t.shape[1]
	return &Tensor{shape: []int{hi - lo, c}, Data: t.Data[lo*c : hi*c]}
}

// CopyFrom copies src's data into t. Shapes must contain the same number of
// elements.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d vs %d", len(t.Data), len(src.Data)))
	}
	copy(t.Data, src.Data)
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether a and b have the same shape and all elements
// within tol of each other.
func ApproxEqual(a, b *Tensor, tol float32) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}

// String renders a compact description (shape plus up to 8 leading values).
func (t *Tensor) String() string {
	n := len(t.Data)
	if n > 8 {
		n = 8
	}
	return fmt.Sprintf("Tensor%v%v…", t.shape, t.Data[:n])
}

// Transpose returns a new tensor that is the transpose of a 2D tensor.
func (t *Tensor) Transpose() *Tensor {
	t.must2D("Transpose")
	r, c := t.shape[0], t.shape[1]
	out := New(c, r)
	// Blocked transpose for cache friendliness on large matrices.
	const bs = 32
	for i0 := 0; i0 < r; i0 += bs {
		iMax := min(i0+bs, r)
		for j0 := 0; j0 < c; j0 += bs {
			jMax := min(j0+bs, c)
			for i := i0; i < iMax; i++ {
				row := t.Data[i*c:]
				for j := j0; j < jMax; j++ {
					out.Data[j*r+i] = row[j]
				}
			}
		}
	}
	return out
}

const magic = "TMLT1\n"

// WriteTo serializes the tensor in a stable little-endian binary format:
// magic, rank, dims, raw float32 bits. It implements io.WriterTo.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	var n int64
	m, err := io.WriteString(w, magic)
	n += int64(m)
	if err != nil {
		return n, fmt.Errorf("tensor: write header: %w", err)
	}
	hdr := make([]byte, 4+4*len(t.shape))
	binary.LittleEndian.PutUint32(hdr, uint32(len(t.shape)))
	for i, d := range t.shape {
		binary.LittleEndian.PutUint32(hdr[4+4*i:], uint32(d))
	}
	m, err = w.Write(hdr)
	n += int64(m)
	if err != nil {
		return n, fmt.Errorf("tensor: write shape: %w", err)
	}
	buf := make([]byte, 4*len(t.Data))
	for i, v := range t.Data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	m, err = w.Write(buf)
	n += int64(m)
	if err != nil {
		return n, fmt.Errorf("tensor: write data: %w", err)
	}
	return n, nil
}

// ReadFrom deserializes a tensor written by WriteTo, replacing t's contents.
func (t *Tensor) ReadFrom(r io.Reader) (int64, error) {
	var n int64
	got := make([]byte, len(magic))
	m, err := io.ReadFull(r, got)
	n += int64(m)
	if err != nil {
		return n, fmt.Errorf("tensor: read header: %w", err)
	}
	if string(got) != magic {
		return n, errors.New("tensor: bad magic in stream")
	}
	var rank [4]byte
	m, err = io.ReadFull(r, rank[:])
	n += int64(m)
	if err != nil {
		return n, fmt.Errorf("tensor: read rank: %w", err)
	}
	k := int(binary.LittleEndian.Uint32(rank[:]))
	if k <= 0 || k > 8 {
		return n, fmt.Errorf("tensor: implausible rank %d", k)
	}
	dims := make([]byte, 4*k)
	m, err = io.ReadFull(r, dims)
	n += int64(m)
	if err != nil {
		return n, fmt.Errorf("tensor: read dims: %w", err)
	}
	shape := make([]int, k)
	total := 1
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(dims[4*i:]))
		total *= shape[i]
	}
	if total < 0 || total > 1<<28 {
		return n, fmt.Errorf("tensor: implausible element count %d", total)
	}
	buf := make([]byte, 4*total)
	m, err = io.ReadFull(r, buf)
	n += int64(m)
	if err != nil {
		return n, fmt.Errorf("tensor: read data: %w", err)
	}
	t.shape = shape
	t.Data = make([]float32, total)
	for i := range t.Data {
		t.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return n, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
