package tensor

import (
	"runtime"
	"testing"
)

// refMatMulInt4 is the naive scalar triple loop the blocked kernels must
// match bit for bit: unpack every code on demand, accumulate in int32.
func refMatMulInt4(dst []float32, a []int8, bPacked []byte, m, k, n int, rowScales, colScales []float32) {
	rb := Int4PackedLen(n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc int32
			for p := 0; p < k; p++ {
				by := bPacked[p*rb+j>>1]
				var bv int32
				if j&1 == 0 {
					bv = int32(int8(by<<4) >> 4)
				} else {
					bv = int32(int8(by) >> 4)
				}
				acc += int32(a[i*k+p]) * bv
			}
			dst[i*n+j] = float32(acc) * rowScales[i] * colScales[j]
		}
	}
}

func refMatMulInt4LHS(dst []float32, aPacked []byte, b []int8, m, k, n int, rowScales, colScales []float32) {
	rb := Int4PackedLen(k)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc int32
			for p := 0; p < k; p++ {
				by := aPacked[i*rb+p>>1]
				var av int32
				if p&1 == 0 {
					av = int32(int8(by<<4) >> 4)
				} else {
					av = int32(int8(by) >> 4)
				}
				acc += av * int32(b[p*n+j])
			}
			dst[i*n+j] = float32(acc) * rowScales[i] * colScales[j]
		}
	}
}

// int4Operands builds deterministic operands covering the full code range,
// zeros (the skip path) and the ±8/7 extremes.
func int4Operands(t *testing.T, m, k, n int) (a []int8, bCodes []int8, bPacked []byte, rs, cs []float32) {
	t.Helper()
	a = make([]int8, m*k)
	for i := range a {
		a[i] = int8(i*37%255 - 127)
		if i%11 == 0 {
			a[i] = 0
		}
	}
	bCodes = make([]int8, k*n)
	for i := range bCodes {
		bCodes[i] = int8(i*13%16 - 8) // full int4 range [-8,7]
		if i%7 == 0 {
			bCodes[i] = 0
		}
	}
	var err error
	bPacked, err = PackInt4Matrix(bCodes, k, n)
	if err != nil {
		t.Fatalf("PackInt4Matrix: %v", err)
	}
	rs = make([]float32, m)
	for i := range rs {
		rs[i] = 0.5 + float32(i)*0.25
	}
	cs = make([]float32, n)
	for j := range cs {
		cs[j] = 0.125 + float32(j)*0.0625
	}
	return a, bCodes, bPacked, rs, cs
}

func TestMatMulInt4MatchesScalarReference(t *testing.T) {
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 7}, {4, 8, 10}, {16, 33, 21}, {2, 9, 1},
		{5, 16, colBlock + 3}, // spans a column-tile boundary with an odd tail
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a, _, bp, rs, cs := int4Operands(t, m, k, n)
		got := make([]float32, m*n)
		want := make([]float32, m*n)
		MatMulInt4(got, a, bp, m, k, n, rs, cs)
		refMatMulInt4(want, a, bp, m, k, n, rs, cs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("[%d,%d,%d]: got[%d]=%v want %v", m, k, n, i, got[i], want[i])
			}
		}
	}
}

func TestMatMulInt4LHSMatchesScalarReference(t *testing.T) {
	shapes := [][3]int{{1, 1, 1}, {3, 5, 7}, {8, 9, 30}, {6, 27, 14}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		b, _, _, rs, _ := int4Operands(t, m, k, n) // reuse generator for int8 side
		aCodes := make([]int8, m*k)
		for i := range aCodes {
			aCodes[i] = int8(i*5%16 - 8)
		}
		ap, err := PackInt4Matrix(aCodes, m, k)
		if err != nil {
			t.Fatal(err)
		}
		bInt8 := b[:0:0]
		bInt8 = append(bInt8, make([]int8, k*n)...)
		for i := range bInt8 {
			bInt8[i] = int8(i*29%255 - 127)
		}
		cs := make([]float32, n)
		for j := range cs {
			cs[j] = 1 + float32(j)*0.5
		}
		got := make([]float32, m*n)
		want := make([]float32, m*n)
		MatMulInt4LHS(got, ap, bInt8, m, k, n, rs, cs)
		refMatMulInt4LHS(want, ap, bInt8, m, k, n, rs, cs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("[%d,%d,%d]: got[%d]=%v want %v", m, k, n, i, got[i], want[i])
			}
		}
	}
}

// TestMatMulInt4ParallelBitIdentical forces the parallel path (work above
// parallelThreshold) and checks it against the scalar reference at several
// worker counts — the any-worker-count bit-identity contract.
func TestMatMulInt4ParallelBitIdentical(t *testing.T) {
	m, k, n := 64, 64, 64 // 262144 MACs > parallelThreshold
	if m*k*n < parallelThreshold {
		t.Fatalf("fixture too small to trigger the parallel path")
	}
	a, _, bp, rs, cs := int4Operands(t, m, k, n)
	want := make([]float32, m*n)
	refMatMulInt4(want, a, bp, m, k, n, rs, cs)
	for _, workers := range []int{1, 4, 16} {
		prev := runtime.GOMAXPROCS(workers)
		got := make([]float32, m*n)
		MatMulInt4(got, a, bp, m, k, n, rs, cs)
		runtime.GOMAXPROCS(prev)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d]=%v want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestPackInt4RoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 16, 33} {
		codes := make([]int8, n)
		for i := range codes {
			codes[i] = int8(i%16 - 8)
		}
		packed, err := PackInt4(codes)
		if err != nil {
			t.Fatalf("n=%d: pack: %v", n, err)
		}
		if len(packed) != Int4PackedLen(n) {
			t.Fatalf("n=%d: packed length %d, want %d", n, len(packed), Int4PackedLen(n))
		}
		got, err := UnpackInt4(packed, n)
		if err != nil {
			t.Fatalf("n=%d: unpack: %v", n, err)
		}
		for i := range codes {
			if got[i] != codes[i] {
				t.Fatalf("n=%d: code %d round-tripped to %d, want %d", n, i, got[i], codes[i])
			}
		}
	}
}

func TestPackInt4RejectsOutOfRange(t *testing.T) {
	if _, err := PackInt4([]int8{0, 8}); err == nil {
		t.Fatal("PackInt4 accepted code 8")
	}
	if _, err := PackInt4([]int8{-9}); err == nil {
		t.Fatal("PackInt4 accepted code -9")
	}
}

func TestUnpackInt4RejectsBadBuffers(t *testing.T) {
	packed, err := PackInt4([]int8{1, -2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnpackInt4(packed[:1], 3); err == nil {
		t.Fatal("UnpackInt4 accepted a truncated buffer")
	}
	if _, err := UnpackInt4(append(packed, 0), 3); err == nil {
		t.Fatal("UnpackInt4 accepted an oversized buffer")
	}
	bad := append([]byte(nil), packed...)
	bad[len(bad)-1] |= 0xF0 // poison the pad nibble
	if _, err := UnpackInt4(bad, 3); err == nil {
		t.Fatal("UnpackInt4 accepted a nonzero pad nibble")
	}
	if _, err := UnpackInt4(nil, -1); err == nil {
		t.Fatal("UnpackInt4 accepted a negative count")
	}
}

func TestPackInt4MatrixRowAlignment(t *testing.T) {
	// 3 columns → 2 bytes per row; row 1 must start at byte 2.
	codes := []int8{1, 2, 3, -1, -2, -3}
	packed, err := PackInt4Matrix(codes, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) != 4 {
		t.Fatalf("packed length %d, want 4", len(packed))
	}
	row1, err := UnpackInt4(packed[2:4], 3)
	if err != nil {
		t.Fatal(err)
	}
	if row1[0] != -1 || row1[1] != -2 || row1[2] != -3 {
		t.Fatalf("row 1 decoded to %v", row1)
	}
	if _, err := PackInt4Matrix(codes, 2, 2); err == nil {
		t.Fatal("PackInt4Matrix accepted a mismatched shape")
	}
}

func BenchmarkMatMulInt4(b *testing.B) {
	m, k, n := 128, 256, 128
	a := make([]int8, m*k)
	codes := make([]int8, k*n)
	for i := range a {
		a[i] = int8(i%255 - 127)
	}
	for i := range codes {
		codes[i] = int8(i%15 - 7)
	}
	bp, err := PackInt4Matrix(codes, k, n)
	if err != nil {
		b.Fatal(err)
	}
	rs := make([]float32, m)
	cs := make([]float32, n)
	for i := range rs {
		rs[i] = 0.01
	}
	for j := range cs {
		cs[j] = 0.02
	}
	dst := make([]float32, m*n)
	exit := EnterPool() // serial kernel: stable, machine-count-independent
	defer exit()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInt4(dst, a, bp, m, k, n, rs, cs)
	}
}
