package tensor

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(3, 4)
	if x.Size() != 12 {
		t.Fatalf("Size = %d, want 12", x.Size())
	}
	for i, v := range x.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
	if x.Rows() != 3 || x.Cols() != 4 {
		t.Fatalf("Rows/Cols = %d,%d", x.Rows(), x.Cols())
	}
}

func TestFromSliceSharesData(t *testing.T) {
	d := []float32{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 9
	if x.At2(0, 0) != 9 {
		t.Fatal("FromSlice must not copy the slice")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer expectPanic(t, "FromSlice")
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7.5, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Verify row-major offset: (1*3+2)*4+3 = 23.
	if x.Data[23] != 7.5 {
		t.Fatalf("row-major layout violated: Data[23]=%v", x.Data[23])
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer expectPanic(t, "At")
	New(2, 2).At(2, 0)
}

func TestReshape(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	if y.At2(2, 1) != 6 {
		t.Fatalf("Reshape content wrong: %v", y.Data)
	}
	y.Set2(0, 0, 42)
	if x.At2(0, 0) != 42 {
		t.Fatal("Reshape must share data")
	}
	z := x.Reshape(-1, 2)
	if z.Dim(0) != 3 {
		t.Fatalf("inferred dim = %d, want 3", z.Dim(0))
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	defer expectPanic(t, "Reshape")
	New(2, 3).Reshape(4, 2)
}

func TestRowAndRowSliceViews(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	r := x.Row(1)
	if r.Size() != 2 || r.Data[0] != 3 || r.Data[1] != 4 {
		t.Fatalf("Row(1) = %v", r.Data)
	}
	s := x.RowSlice(1, 3)
	if s.Rows() != 2 || s.At2(1, 1) != 6 {
		t.Fatalf("RowSlice = %v", s.Data)
	}
	s.Set2(0, 0, -1)
	if x.At2(1, 0) != -1 {
		t.Fatal("RowSlice must be a view")
	}
}

func TestTranspose(t *testing.T) {
	r := NewRNG(1)
	x := Randn(r, 1, 37, 53)
	y := x.Transpose()
	for i := 0; i < 37; i++ {
		for j := 0; j < 53; j++ {
			if x.At2(i, j) != y.At2(j, i) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
	z := y.Transpose()
	if !ApproxEqual(x, z, 0) {
		t.Fatal("double transpose is not identity")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{4, 3, 2, 1}, 2, 2)
	if got := Add(a, b); got.Data[0] != 5 || got.Data[3] != 5 {
		t.Fatalf("Add = %v", got.Data)
	}
	if got := Sub(a, b); got.Data[0] != -3 {
		t.Fatalf("Sub = %v", got.Data)
	}
	if got := Mul(a, b); got.Data[1] != 6 {
		t.Fatalf("Mul = %v", got.Data)
	}
	if got := Div(a, b); got.Data[3] != 4 {
		t.Fatalf("Div = %v", got.Data)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{10, 20}, 2)
	a.AddInPlace(b)
	if a.Data[1] != 22 {
		t.Fatalf("AddInPlace = %v", a.Data)
	}
	a.SubInPlace(b)
	if a.Data[1] != 2 {
		t.Fatalf("SubInPlace = %v", a.Data)
	}
	a.Axpy(0.5, b)
	if a.Data[0] != 6 {
		t.Fatalf("Axpy = %v", a.Data)
	}
	a.Scale(2)
	if a.Data[0] != 12 {
		t.Fatalf("Scale = %v", a.Data)
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 4)
	if x.Sum() != 10 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != 2.5 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.Min() != 1 || x.Max() != 4 {
		t.Fatalf("Min/Max = %v/%v", x.Min(), x.Max())
	}
	if x.ArgMax() != 3 {
		t.Fatalf("ArgMax = %d", x.ArgMax())
	}
	if math.Abs(float64(x.Variance())-1.25) > 1e-6 {
		t.Fatalf("Variance = %v, want 1.25", x.Variance())
	}
	y := FromSlice([]float32{-5, 2}, 2)
	if y.AbsMax() != 5 {
		t.Fatalf("AbsMax = %v", y.AbsMax())
	}
}

func TestArgMaxRows(t *testing.T) {
	x := FromSlice([]float32{1, 5, 2, 9, 0, 3}, 2, 3)
	got := x.ArgMaxRows()
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgMaxRows = %v", got)
	}
}

func TestSumRowsAndAddRowVector(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	s := x.SumRows()
	if s.Data[0] != 4 || s.Data[1] != 6 {
		t.Fatalf("SumRows = %v", s.Data)
	}
	x.AddRowVector(FromSlice([]float32{10, 20}, 2))
	if x.At2(1, 1) != 24 {
		t.Fatalf("AddRowVector = %v", x.Data)
	}
}

func TestMatMulSmallKnown(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulMismatchPanics(t *testing.T) {
	defer expectPanic(t, "MatMul")
	MatMul(New(2, 3), New(4, 2))
}

// matmulNaive is the O(mnk) reference used to validate the optimized kernels.
func matmulNaive(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a.At2(i, p)) * float64(b.At2(p, j))
			}
			out.Set2(i, j, float32(s))
		}
	}
	return out
}

func TestMatMulMatchesNaiveLarge(t *testing.T) {
	r := NewRNG(7)
	// Big enough to trigger the parallel path (m*n*k > parallelThreshold).
	a := Randn(r, 1, 64, 96)
	b := Randn(r, 1, 96, 80)
	got := MatMul(a, b)
	want := matmulNaive(a, b)
	if !ApproxEqual(got, want, 1e-3) {
		t.Fatal("parallel MatMul deviates from naive reference")
	}
}

func TestMatMulTAndTMatMulAgreeWithTranspose(t *testing.T) {
	r := NewRNG(11)
	a := Randn(r, 1, 33, 47)
	b := Randn(r, 1, 29, 47) // for MatMulT: a [33,47] × bᵀ [47,29]
	got := MatMulT(a, b)
	want := MatMul(a, b.Transpose())
	if !ApproxEqual(got, want, 1e-3) {
		t.Fatal("MatMulT != MatMul with explicit transpose")
	}
	c := Randn(r, 1, 47, 21) // for TMatMul: aᵀ [47,33]ᵀ... a is [33,47], need aᵀ×c with a [47,33]
	a2 := Randn(r, 1, 47, 33)
	got2 := TMatMul(a2, c)
	want2 := MatMul(a2.Transpose(), c)
	if !ApproxEqual(got2, want2, 1e-3) {
		t.Fatal("TMatMul != transpose-then-MatMul")
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	v := FromSlice([]float32{1, -1}, 2)
	got := MatVec(a, v)
	if got.Data[0] != -1 || got.Data[1] != -1 {
		t.Fatalf("MatVec = %v", got.Data)
	}
}

func TestDotAndNorms(t *testing.T) {
	a := FromSlice([]float32{3, 4}, 2)
	if Dot(a, a) != 25 {
		t.Fatalf("Dot = %v", Dot(a, a))
	}
	if a.L2Norm() != 5 {
		t.Fatalf("L2Norm = %v", a.L2Norm())
	}
	if a.L1Norm() != 7 {
		t.Fatalf("L1Norm = %v", a.L1Norm())
	}
}

func TestClampAndCountNonZero(t *testing.T) {
	x := FromSlice([]float32{-2, 0, 0.5, 3}, 4)
	x.Clamp(-1, 1)
	if x.Data[0] != -1 || x.Data[3] != 1 {
		t.Fatalf("Clamp = %v", x.Data)
	}
	if x.CountNonZero() != 3 {
		t.Fatalf("CountNonZero = %d", x.CountNonZero())
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	r := NewRNG(3)
	x := Randn(r, 2.5, 4, 5, 6)
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	var y Tensor
	if _, err := y.ReadFrom(&buf); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if !ApproxEqual(x, &y, 0) {
		t.Fatal("serialization round trip changed values")
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	var y Tensor
	if _, err := y.ReadFrom(bytes.NewReader([]byte("not a tensor stream"))); err == nil {
		t.Fatal("ReadFrom accepted garbage")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical streams")
	}
}

func TestRNGUniformMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v", mean)
	}
	variance := sumSq/n - mean*mean
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Fatalf("uniform variance = %v", variance)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(6)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(sumSq/n-1) > 0.03 {
		t.Fatalf("normal variance = %v", sumSq/n)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGDirichletSumsToOne(t *testing.T) {
	r := NewRNG(10)
	for _, alpha := range []float64{0.1, 1, 10} {
		d := r.Dirichlet(alpha, 8)
		var s float64
		for _, v := range d {
			if v < 0 {
				t.Fatalf("Dirichlet produced negative weight %v", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("Dirichlet(alpha=%v) sums to %v", alpha, s)
		}
	}
}

func TestRNGGammaMean(t *testing.T) {
	r := NewRNG(12)
	for _, alpha := range []float64{0.5, 2, 7} {
		var s float64
		const n = 50000
		for i := 0; i < n; i++ {
			s += r.Gamma(alpha)
		}
		if math.Abs(s/n-alpha) > 0.08*alpha+0.05 {
			t.Fatalf("Gamma(%v) sample mean = %v", alpha, s/n)
		}
	}
}

// Property: (A×B)ᵀ == Bᵀ×Aᵀ for random small matrices.
func TestMatMulTransposeProperty(t *testing.T) {
	r := NewRNG(20)
	f := func(seed uint64) bool {
		rr := NewRNG(seed)
		m, k, n := 1+rr.Intn(12), 1+rr.Intn(12), 1+rr.Intn(12)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, k, n)
		lhs := MatMul(a, b).Transpose()
		rhs := MatMul(b.Transpose(), a.Transpose())
		return ApproxEqual(lhs, rhs, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over addition: A×(B+C) == A×B + A×C.
func TestMatMulDistributiveProperty(t *testing.T) {
	r := NewRNG(21)
	f := func(seed uint64) bool {
		rr := NewRNG(seed)
		m, k, n := 1+rr.Intn(10), 1+rr.Intn(10), 1+rr.Intn(10)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, k, n)
		c := Randn(r, 1, k, n)
		lhs := MatMul(a, Add(b, c))
		rhs := Add(MatMul(a, b), MatMul(a, c))
		return ApproxEqual(lhs, rhs, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: serialization round-trips arbitrary shapes.
func TestSerializationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rr := NewRNG(seed)
		shape := make([]int, 1+rr.Intn(4))
		for i := range shape {
			shape[i] = 1 + rr.Intn(6)
		}
		x := Randn(rr, 3, shape...)
		var buf bytes.Buffer
		if _, err := x.WriteTo(&buf); err != nil {
			return false
		}
		var y Tensor
		if _, err := y.ReadFrom(&buf); err != nil {
			return false
		}
		return ApproxEqual(x, &y, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelCoversAllIndices(t *testing.T) {
	hit := make([]int32, 1000)
	Parallel(len(hit), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hit[i]++
		}
	})
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func expectPanic(t *testing.T, op string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("%s: expected panic", op)
	}
}
