package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64* with a splitmix64-seeded state). Every stochastic component
// in the repository draws from an explicit *RNG so that experiments are
// reproducible from a single seed and goroutine-local generators never
// contend on a shared lock.
type RNG struct {
	state uint64
	spare float64 // cached second Box-Muller variate
	hasSp bool
}

// NewRNG returns a generator seeded from seed. Any seed, including 0, is
// valid: the state is passed through splitmix64 to avoid weak states.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to a state derived from seed.
func (r *RNG) Seed(seed uint64) {
	// splitmix64 scrambling so consecutive seeds give unrelated streams.
	z := seed + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	r.state = z
	r.hasSp = false
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Split returns a new generator whose stream is independent of (but
// deterministically derived from) the receiver's current state. Use it to
// hand child components their own seeds.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0,1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Intn returns a uniform integer in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// NormFloat64 returns a standard normal variate (Box-Muller, with caching).
func (r *RNG) NormFloat64() float64 {
	if r.hasSp {
		r.hasSp = false
		return r.spare
	}
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		rad := math.Sqrt(-2 * math.Log(u))
		th := 2 * math.Pi * v
		r.spare = rad * math.Sin(th)
		r.hasSp = true
		return rad * math.Cos(th)
	}
}

// NormFloat32 returns a standard normal variate as float32.
func (r *RNG) NormFloat32() float32 { return float32(r.NormFloat64()) }

// Perm returns a pseudo-random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes [0,n) by calling swap for each exchange.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed variate with rate 1.
func (r *RNG) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Gamma returns a Gamma(alpha, 1) variate using the Marsaglia–Tsang method.
// It is the building block for Dirichlet non-IID data partitioning.
func (r *RNG) Gamma(alpha float64) float64 {
	if alpha < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(alpha+1) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u == 0 {
			continue
		}
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet fills out with a Dirichlet(alpha,...,alpha) sample of length n.
func (r *RNG) Dirichlet(alpha float64, n int) []float64 {
	out := make([]float64, n)
	var sum float64
	for i := range out {
		out[i] = r.Gamma(alpha)
		sum += out[i]
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(n)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Randn returns a tensor with i.i.d. N(0, std²) entries.
func Randn(r *RNG, std float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = r.NormFloat32() * std
	}
	return t
}

// RandUniform returns a tensor with i.i.d. U[lo,hi) entries.
func RandUniform(r *RNG, lo, hi float32, shape ...int) *Tensor {
	t := New(shape...)
	span := hi - lo
	for i := range t.Data {
		t.Data[i] = lo + span*r.Float32()
	}
	return t
}
