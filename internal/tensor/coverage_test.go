package tensor

import (
	"math"
	"testing"
)

func TestScalarHelpers(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3}, 3)
	x.AddScalar(10)
	if x.Data[0] != 11 || x.Data[2] != 13 {
		t.Fatalf("AddScalar = %v", x.Data)
	}
	x.Apply(func(v float32) float32 { return -v })
	if x.Data[1] != -12 {
		t.Fatalf("Apply = %v", x.Data)
	}
	y := x.Map(func(v float32) float32 { return v * 2 })
	if y.Data[0] != -22 || x.Data[0] != -11 {
		t.Fatalf("Map must not mutate source: %v / %v", y.Data, x.Data)
	}
	x.Fill(7)
	for _, v := range x.Data {
		if v != 7 {
			t.Fatalf("Fill = %v", x.Data)
		}
	}
	if s := FromSlice([]float32{3, 3, 3, 3}, 4).Std(); s != 0 {
		t.Fatalf("Std of constant = %v", s)
	}
	std := FromSlice([]float32{1, -1, 1, -1}, 4).Std()
	if math.Abs(float64(std)-1) > 1e-6 {
		t.Fatalf("Std = %v, want 1", std)
	}
	var empty Tensor
	empty.Data = nil
	if (&Tensor{shape: []int{0}, Data: nil}).Mean() != 0 {
		t.Fatal("Mean of empty should be 0")
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a := New(2, 2)
	b := New(3)
	cases := []struct {
		name string
		f    func()
	}{
		{"Add", func() { Add(a, b) }},
		{"AddInPlace", func() { a.AddInPlace(b) }},
		{"SubInPlace", func() { a.SubInPlace(b) }},
		{"Axpy", func() { a.Axpy(1, b) }},
		{"Dot", func() { Dot(a, b) }},
		{"AddRowVector", func() { a.AddRowVector(b) }},
		{"CopyFrom", func() { a.CopyFrom(b) }},
		{"MatMulT", func() { MatMulT(New(2, 3), New(2, 4)) }},
		{"TMatMul", func() { TMatMul(New(3, 2), New(4, 2)) }},
		{"MatVec", func() { MatVec(New(2, 3), New(4)) }},
		{"MatMulInto", func() { MatMulInto(New(3, 3), New(2, 2), New(2, 2)) }},
		{"RowSlice", func() { New(2, 2).RowSlice(1, 5) }},
		{"Reshape-two-infer", func() { New(4).Reshape(-1, -1) }},
		{"Subset-negative-dim", func() { New(-1) }},
		{"Min-empty", func() { FromSlice(nil, 0).Min() }},
		{"Max-empty", func() { FromSlice(nil, 0).Max() }},
		{"ArgMax-empty", func() { FromSlice(nil, 0).ArgMax() }},
		{"Rows-non2D", func() { New(2).Rows() }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", c.name)
				}
			}()
			c.f()
		}()
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	root := NewRNG(77)
	a := root.Split()
	b := root.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams collide %d/64 times", same)
	}
	if f := a.Float32(); f < 0 || f >= 1 {
		t.Fatalf("Float32 out of range: %v", f)
	}
	if v := a.Int63(); v < 0 {
		t.Fatalf("Int63 negative: %v", v)
	}
	// Exp has mean 1.
	var sum float64
	for i := 0; i < 20000; i++ {
		sum += a.Exp()
	}
	if math.Abs(sum/20000-1) > 0.05 {
		t.Fatalf("Exp mean = %v", sum/20000)
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestParallelSingleAndLargeMatmuls(t *testing.T) {
	// Single-element Parallel takes the serial fast path.
	hit := 0
	Parallel(1, func(lo, hi int) { hit += hi - lo })
	if hit != 1 {
		t.Fatalf("Parallel(1) visited %d", hit)
	}
	// Large MatMulT and TMatMul exercise their parallel branches.
	rng := NewRNG(5)
	a := Randn(rng, 1, 96, 128)
	b := Randn(rng, 1, 80, 128)
	got := MatMulT(a, b)
	want := MatMul(a, b.Transpose())
	if !ApproxEqual(got, want, 1e-3) {
		t.Fatal("parallel MatMulT mismatch")
	}
	c := Randn(rng, 1, 128, 96)
	d := Randn(rng, 1, 128, 80)
	got2 := TMatMul(c, d)
	want2 := MatMul(c.Transpose(), d)
	if !ApproxEqual(got2, want2, 1e-3) {
		t.Fatal("parallel TMatMul mismatch")
	}
}

func TestStringAndRandUniform(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 10)
	if x.String() == "" {
		t.Fatal("empty String()")
	}
	u := RandUniform(NewRNG(1), 2, 3, 100)
	if u.Min() < 2 || u.Max() >= 3 {
		t.Fatalf("RandUniform out of [2,3): min %v max %v", u.Min(), u.Max())
	}
}
