package tensor

import (
	"fmt"
	"math"
)

// Add returns a + b element-wise as a new tensor.
func Add(a, b *Tensor) *Tensor {
	return zipNew(a, b, "Add", func(x, y float32) float32 { return x + y })
}

// Sub returns a - b element-wise as a new tensor.
func Sub(a, b *Tensor) *Tensor {
	return zipNew(a, b, "Sub", func(x, y float32) float32 { return x - y })
}

// Mul returns a * b element-wise (Hadamard product) as a new tensor.
func Mul(a, b *Tensor) *Tensor {
	return zipNew(a, b, "Mul", func(x, y float32) float32 { return x * y })
}

// Div returns a / b element-wise as a new tensor.
func Div(a, b *Tensor) *Tensor {
	return zipNew(a, b, "Div", func(x, y float32) float32 { return x / y })
}

func zipNew(a, b *Tensor, op string, f func(x, y float32) float32) *Tensor {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
	out := New(a.shape...)
	for i := range a.Data {
		out.Data[i] = f(a.Data[i], b.Data[i])
	}
	return out
}

// AddInPlace adds b into a element-wise.
func (t *Tensor) AddInPlace(b *Tensor) {
	if !SameShape(t, b) {
		panic(fmt.Sprintf("tensor: AddInPlace shape mismatch %v vs %v", t.shape, b.shape))
	}
	for i := range t.Data {
		t.Data[i] += b.Data[i]
	}
}

// SubInPlace subtracts b from a element-wise.
func (t *Tensor) SubInPlace(b *Tensor) {
	if !SameShape(t, b) {
		panic(fmt.Sprintf("tensor: SubInPlace shape mismatch %v vs %v", t.shape, b.shape))
	}
	for i := range t.Data {
		t.Data[i] -= b.Data[i]
	}
}

// Scale multiplies every element by s in place and returns the receiver.
func (t *Tensor) Scale(s float32) *Tensor {
	for i := range t.Data {
		t.Data[i] *= s
	}
	return t
}

// AddScalar adds s to every element in place and returns the receiver.
func (t *Tensor) AddScalar(s float32) *Tensor {
	for i := range t.Data {
		t.Data[i] += s
	}
	return t
}

// Axpy computes t += alpha * x element-wise.
func (t *Tensor) Axpy(alpha float32, x *Tensor) {
	if !SameShape(t, x) {
		panic(fmt.Sprintf("tensor: Axpy shape mismatch %v vs %v", t.shape, x.shape))
	}
	for i := range t.Data {
		t.Data[i] += alpha * x.Data[i]
	}
}

// Apply maps f over every element in place and returns the receiver.
func (t *Tensor) Apply(f func(float32) float32) *Tensor {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
	return t
}

// Map returns a new tensor with f applied to every element.
func (t *Tensor) Map(f func(float32) float32) *Tensor {
	out := New(t.shape...)
	for i, v := range t.Data {
		out.Data[i] = f(v)
	}
	return out
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Sum returns the sum of all elements (accumulated in float64 for accuracy).
func (t *Tensor) Sum() float32 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return float32(s)
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float32 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float32(len(t.Data))
}

// Variance returns the population variance of all elements.
func (t *Tensor) Variance() float32 {
	n := len(t.Data)
	if n == 0 {
		return 0
	}
	m := float64(t.Mean())
	var s float64
	for _, v := range t.Data {
		d := float64(v) - m
		s += d * d
	}
	return float32(s / float64(n))
}

// Std returns the population standard deviation.
func (t *Tensor) Std() float32 {
	return float32(math.Sqrt(float64(t.Variance())))
}

// Min returns the smallest element; it panics on an empty tensor.
func (t *Tensor) Min() float32 {
	if len(t.Data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest element; it panics on an empty tensor.
func (t *Tensor) Max() float32 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// AbsMax returns the largest absolute value; 0 for an empty tensor.
func (t *Tensor) AbsMax() float32 {
	var m float32
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the index of the largest element of a 1D tensor.
func (t *Tensor) ArgMax() int {
	if len(t.Data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bi := t.Data[0], 0
	for i, v := range t.Data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// ArgMaxRows returns, for a 2D tensor, the column index of the maximum of
// each row.
func (t *Tensor) ArgMaxRows() []int {
	t.must2D("ArgMaxRows")
	out := make([]int, t.shape[0])
	t.ArgMaxRowsInto(out)
	return out
}

// ArgMaxRowsInto writes the per-row argmax into out (length Rows) without
// allocating — the serving hot-loop form of ArgMaxRows.
func (t *Tensor) ArgMaxRowsInto(out []int) {
	t.must2D("ArgMaxRowsInto")
	r, c := t.shape[0], t.shape[1]
	if len(out) != r {
		panic(fmt.Sprintf("tensor: ArgMaxRowsInto got %d slots for %d rows", len(out), r))
	}
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		best, bi := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, bi = v, j+1
			}
		}
		out[i] = bi
	}
}

// SumRows returns a 1D tensor with the sum of each column (the result has
// length Cols); i.e. it reduces over rows.
func (t *Tensor) SumRows() *Tensor {
	t.must2D("SumRows")
	r, c := t.shape[0], t.shape[1]
	out := New(c)
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// AddRowVector adds a length-Cols vector to every row of a 2D tensor in place.
func (t *Tensor) AddRowVector(v *Tensor) {
	t.must2D("AddRowVector")
	if v.Size() != t.shape[1] {
		panic(fmt.Sprintf("tensor: AddRowVector length %d does not match %d columns", v.Size(), t.shape[1]))
	}
	r, c := t.shape[0], t.shape[1]
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		for j := range row {
			row[j] += v.Data[j]
		}
	}
}

// Dot returns the inner product of two tensors of identical size
// (accumulated in float64).
func Dot(a, b *Tensor) float32 {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: Dot size mismatch %d vs %d", len(a.Data), len(b.Data)))
	}
	var s float64
	for i := range a.Data {
		s += float64(a.Data[i]) * float64(b.Data[i])
	}
	return float32(s)
}

// L2Norm returns the Euclidean norm of the tensor's elements.
func (t *Tensor) L2Norm() float32 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

// L1Norm returns the sum of absolute values.
func (t *Tensor) L1Norm() float32 {
	var s float64
	for _, v := range t.Data {
		s += math.Abs(float64(v))
	}
	return float32(s)
}

// Clamp limits every element to [lo, hi] in place and returns the receiver.
func (t *Tensor) Clamp(lo, hi float32) *Tensor {
	for i, v := range t.Data {
		if v < lo {
			t.Data[i] = lo
		} else if v > hi {
			t.Data[i] = hi
		}
	}
	return t
}

// CountNonZero returns the number of elements that are exactly non-zero.
func (t *Tensor) CountNonZero() int {
	n := 0
	for _, v := range t.Data {
		if v != 0 {
			n++
		}
	}
	return n
}
