package tensor

import "fmt"

// Int4PackedLen returns the byte length of n int4 codes packed two per
// byte: ceil(n/2). An odd count leaves the final byte's high nibble as
// padding, which the codec requires to be zero.
func Int4PackedLen(n int) int { return (n + 1) / 2 }

// PackInt4 packs signed 4-bit codes two per byte, low nibble first (the
// code at even index i lands in byte i/2's low nibble). Codes must lie in
// the int4 two's-complement range [-8, 7]; anything wider cannot survive
// the round trip and is rejected rather than silently truncated. For an
// odd count the final high nibble is zero, keeping the encoding canonical
// so equal code slices always produce equal bytes.
func PackInt4(codes []int8) ([]byte, error) {
	out := make([]byte, Int4PackedLen(len(codes)))
	for i, c := range codes {
		if c < -8 || c > 7 {
			return nil, fmt.Errorf("tensor: int4 code %d at index %d outside [-8,7]", c, i)
		}
		nib := byte(c) & 0xF
		if i&1 == 0 {
			out[i>>1] = nib
		} else {
			out[i>>1] |= nib << 4
		}
	}
	return out, nil
}

// UnpackInt4 expands packed bytes back into count signed codes. It rejects
// buffers whose length does not match Int4PackedLen(count) — truncated or
// oversized payloads must not decode — and, for odd counts, a nonzero pad
// nibble (a non-canonical encoding PackInt4 never emits).
func UnpackInt4(packed []byte, count int) ([]int8, error) {
	if count < 0 {
		return nil, fmt.Errorf("tensor: negative int4 code count %d", count)
	}
	if len(packed) != Int4PackedLen(count) {
		return nil, fmt.Errorf("tensor: packed int4 buffer has %d bytes, want %d for %d codes",
			len(packed), Int4PackedLen(count), count)
	}
	if count&1 == 1 && packed[len(packed)-1]>>4 != 0 {
		return nil, fmt.Errorf("tensor: packed int4 buffer has nonzero pad nibble")
	}
	out := make([]int8, count)
	for i := range out {
		by := packed[i>>1]
		if i&1 == 0 {
			out[i] = int8(by<<4) >> 4
		} else {
			out[i] = int8(by) >> 4
		}
	}
	return out, nil
}

// PackInt4Matrix packs a [rows, cols] row-major code matrix with each row
// byte-aligned (rows start on fresh bytes, odd cols pad the last nibble) —
// the layout the packed matmul kernels consume, so single rows stay
// directly sliceable.
func PackInt4Matrix(codes []int8, rows, cols int) ([]byte, error) {
	if len(codes) != rows*cols {
		return nil, fmt.Errorf("tensor: PackInt4Matrix got %d codes for [%d,%d]", len(codes), rows, cols)
	}
	rb := Int4PackedLen(cols)
	out := make([]byte, rows*rb)
	for r := 0; r < rows; r++ {
		row, err := PackInt4(codes[r*cols : (r+1)*cols])
		if err != nil {
			return nil, err
		}
		copy(out[r*rb:], row)
	}
	return out, nil
}

// MatMulInt4 computes dst[i,j] = rowScales[i] * colScales[j] * Σ_p a[i,p]·b[p,j]
// where b is a [k,n] matrix of signed 4-bit codes packed two per byte with
// byte-aligned rows (PackInt4Matrix layout) — the native dense serving
// kernel for packed int4 weight matrices. a is int8 ([m,k] row-major,
// e.g. dynamically quantized activations), accumulation is exact int32.
//
// The kernel never unpacks the weights: each packed byte is expanded via
// a 256-entry table to lo + hi<<32, so one 64-bit multiply by the
// activation accumulates both of the byte's columns at once (two MACs per
// multiply — the scalar analogue of a SIMD nibble kernel). Column tiles
// of int4ColTile keep the packed accumulator row L1-resident across the
// k-loop (int4ColTile is even, so tiles always start on a byte boundary),
// activation rows are register-blocked in pairs, and rows fan out across
// the bounded worker pool for large problems. Integer accumulation is
// exact and order-independent, so the blocked, parallel result is
// bit-identical to a naive scalar triple loop at any worker count. The
// caller must keep k·127·8 inside int32 range (k < ~2^21), which every
// TinyML-scale layer does.
func MatMulInt4(dst []float32, a []int8, bPacked []byte, m, k, n int, rowScales, colScales []float32) {
	// Serial path first, without constructing the parallel closure: an
	// escaping closure is heap-allocated on every call, which would cost
	// the zero-alloc serving hot loop one allocation per matmul.
	if m*n*k < parallelThreshold || poolDepth.Load() > 0 {
		matmulInt4Rows(dst, a, bPacked, 0, m, k, n, rowScales, colScales)
		return
	}
	Parallel(m, func(lo, hi int) {
		matmulInt4Rows(dst, a, bPacked, lo, hi, k, n, rowScales, colScales)
	})
}

// Packed-int4 kernel tile sizes. The RHS kernel walks column tiles of
// int4ColTile codes (int4ColTile/2 packed bytes) with int4RowTile
// activation rows register-blocked per pass; the accumulator tile
// (int4RowTile × int4ColTile/2 int64s = 8KB) lives on the worker's stack,
// so the kernels stay allocation-free. int4ColTile is even, so column
// tiles always start on a byte boundary. int4KPanel sizes the LHS
// kernel's decoded weight-segment buffer.
const (
	int4ColTile = 128
	int4KPanel  = 128
	int4RowTile = 16
)

// int4PairTab maps a packed int4 byte to its SWAR pair value
// lo + hi<<32: multiplying by an int8 activation x yields x·lo in the low
// 32 bits and x·hi in the high 32 bits of a single 64-bit product — two
// MACs per multiply. Each |x·code| ≤ 127·8 = 1016, so per-half partial
// sums stay well inside 32 bits for any k < 2^21 and the halves never
// corrupt each other beyond the recoverable borrow (see the writeback in
// matmulInt4Rows).
var int4PairTab = func() [256]int64 {
	var t [256]int64
	for by := 0; by < 256; by++ {
		lov := int64(int8(byte(by)<<4) >> 4)
		hiv := int64(int8(byte(by)) >> 4)
		t[by] = lov + hiv<<32
	}
	return t
}()

// matmulInt4Rows computes rows [lo,hi) of the packed-RHS int4 matmul.
//
// The kernel multiplies packed bytes directly: each byte holds the codes
// of two adjacent output columns, int4PairTab expands it to lo + hi<<32,
// and one 64-bit multiply by the activation accumulates both columns into
// a packed int64 accumulator. The writeback splits each accumulator into
// its two exact int32 column sums: the low sum is the accumulator's low
// 32 bits (two's complement, so a sign-extending truncation recovers it
// exactly while any borrow it generated is cancelled by the subtraction),
// and the high sum is what remains after removing it. Every intermediate
// is an exact integer, so the result is bit-identical to the naive scalar
// triple loop. An odd final column rides along for free: its pad nibble
// is canonically zero, so the pair's high half accumulates zeros and the
// writeback simply drops it.
func matmulInt4Rows(dst []float32, a []int8, bPacked []byte, lo, hi, k, n int, rowScales, colScales []float32) {
	rb := Int4PackedLen(n)
	tab := &int4PairTab
	var acc [int4RowTile * (int4ColTile / 2)]int64
	for jb := 0; jb < n; jb += int4ColTile {
		jhi := min(jb+int4ColTile, n)
		w := jhi - jb
		wb := (w + 1) >> 1 // packed bytes (column pairs) in this tile
		jo := jb >> 1      // byte offset of the tile within a packed row
		for ib := lo; ib < hi; ib += int4RowTile {
			ihi := min(ib+int4RowTile, hi)
			ih := ihi - ib
			az := acc[:ih*wb]
			for x := range az {
				az[x] = 0
			}
			// Rows are register-blocked in pairs: each pass over a packed
			// B row feeds two accumulator tiles, so every byte load and
			// table lookup is shared by four MACs.
			ii := 0
			for ; ii+1 < ih; ii += 2 {
				arow0 := a[(ib+ii)*k : (ib+ii)*k+k]
				arow1 := a[(ib+ii+1)*k : (ib+ii+1)*k+k][:len(arow0)]
				t0 := acc[ii*wb : ii*wb+wb]
				t1 := acc[(ii+1)*wb : (ii+1)*wb+wb][:wb]
				p := 0
				for ; p+1 < k; p += 2 {
					x0, x1 := int64(arow0[p]), int64(arow0[p+1])
					y0, y1 := int64(arow1[p]), int64(arow1[p+1])
					if x0|x1|y0|y1 == 0 {
						continue
					}
					b0 := bPacked[p*rb+jo : p*rb+jo+wb]
					b1 := bPacked[(p+1)*rb+jo : (p+1)*rb+jo+wb][:len(b0)]
					u0, u1 := t0[:len(b0)], t1[:len(b0)]
					for j, by := range b0 {
						bv, bw := tab[by], tab[b1[j]]
						u0[j] += x0*bv + x1*bw
						u1[j] += y0*bv + y1*bw
					}
				}
				if p < k {
					x0, y0 := int64(arow0[p]), int64(arow1[p])
					if x0|y0 != 0 {
						b0 := bPacked[p*rb+jo : p*rb+jo+wb]
						u0, u1 := t0[:len(b0)], t1[:len(b0)]
						for j, by := range b0 {
							bv := tab[by]
							u0[j] += x0 * bv
							u1[j] += y0 * bv
						}
					}
				}
			}
			for ; ii < ih; ii++ {
				arow := a[(ib+ii)*k : (ib+ii)*k+k]
				tile := acc[ii*wb : ii*wb+wb]
				p := 0
				for ; p+3 < k; p += 4 {
					x0, x1 := int64(arow[p]), int64(arow[p+1])
					x2, x3 := int64(arow[p+2]), int64(arow[p+3])
					if x0|x1|x2|x3 == 0 {
						continue
					}
					b0 := bPacked[p*rb+jo : p*rb+jo+wb]
					b1 := bPacked[(p+1)*rb+jo : (p+1)*rb+jo+wb][:len(b0)]
					b2 := bPacked[(p+2)*rb+jo : (p+2)*rb+jo+wb][:len(b0)]
					b3 := bPacked[(p+3)*rb+jo : (p+3)*rb+jo+wb][:len(b0)]
					u := tile[:len(b0)]
					for j, by := range b0 {
						u[j] += x0*tab[by] + x1*tab[b1[j]] + x2*tab[b2[j]] + x3*tab[b3[j]]
					}
				}
				for ; p < k; p++ {
					av := arow[p]
					if av == 0 {
						continue
					}
					x := int64(av)
					b0 := bPacked[p*rb+jo : p*rb+jo+wb]
					u := tile[:len(b0)]
					for j, by := range b0 {
						u[j] += x * tab[by]
					}
				}
			}
			// Writeback: split each packed accumulator into its two exact
			// column sums and apply the dequantization scales.
			nf := w >> 1
			for ii := 0; ii < ih; ii++ {
				rs := rowScales[ib+ii]
				tile := acc[ii*wb : ii*wb+wb]
				base := (ib + ii) * n
				for j2 := 0; j2 < nf; j2++ {
					av := tile[j2]
					lov := int64(int32(av))
					hiv := (av - lov) >> 32
					dst[base+jb+2*j2] = float32(lov) * rs * colScales[jb+2*j2]
					dst[base+jb+2*j2+1] = float32(hiv) * rs * colScales[jb+2*j2+1]
				}
				if w&1 == 1 {
					dst[base+jhi-1] = float32(int32(tile[nf])) * rs * colScales[jhi-1]
				}
			}
		}
	}
}

// MatMulInt4LHS is MatMulInt4 with the packed operand on the left:
// dst[i,j] = rowScales[i] * colScales[j] * Σ_p a[i,p]·b[p,j] where a is a
// [m,k] packed int4 matrix (PackInt4Matrix layout) and b is int8 — the
// convolution layout, where the per-output-channel weight matrix is the
// 4-bit operand and the int8 im2col columns are on the right. The nibble
// decode happens once per k-step (outside the inner j-loop), and the same
// exact-int32 bit-identity argument as MatMulInt4 applies.
func MatMulInt4LHS(dst []float32, aPacked []byte, b []int8, m, k, n int, rowScales, colScales []float32) {
	// Same closure-avoidance shape as MatMulInt4 (see comment there).
	if m*n*k < parallelThreshold || poolDepth.Load() > 0 {
		matmulInt4LHSRows(dst, aPacked, b, 0, m, k, n, rowScales, colScales)
		return
	}
	Parallel(m, func(lo, hi int) {
		matmulInt4LHSRows(dst, aPacked, b, lo, hi, k, n, rowScales, colScales)
	})
}

// matmulInt4LHSRows computes rows [lo,hi) of the packed-LHS int4 matmul.
//
// Per (output row, column tile, k panel): the packed weight-row segment is
// nibble-decoded into a small stack buffer once, reused across the whole
// column tile (amortizing decode over n columns), and folded in with the
// same four-wide-unrolled loop as the int8 kernel. Int32 addition is
// exact and commutative, so the reassociated sum is bit-identical to the
// naive scalar order. int4KPanel is even, so panel starts are always
// byte-aligned within a packed row.
func matmulInt4LHSRows(dst []float32, aPacked []byte, b []int8, lo, hi, k, n int, rowScales, colScales []float32) {
	rb := Int4PackedLen(k)
	var accArr [colBlock]int32
	var wbuf [int4KPanel]int8
	for jb := 0; jb < n; jb += colBlock {
		jhi := min(jb+colBlock, n)
		w := jhi - jb
		for i := lo; i < hi; i++ {
			arow := aPacked[i*rb : (i+1)*rb]
			tile := accArr[:w]
			for j := range tile {
				tile[j] = 0
			}
			for kb := 0; kb < k; kb += int4KPanel {
				khi := min(kb+int4KPanel, k)
				kh := khi - kb
				seg := arow[kb>>1:]
				nb := kh >> 1
				for bi := 0; bi < nb; bi++ {
					by := seg[bi]
					wbuf[2*bi] = int8(by<<4) >> 4
					wbuf[2*bi+1] = int8(by) >> 4
				}
				if kh&1 == 1 { // odd k tail: the pad nibble is canonically zero
					wbuf[kh-1] = int8(seg[nb]<<4) >> 4
				}
				p := 0
				for ; p+3 < kh; p += 4 {
					a0, a1 := int32(wbuf[p]), int32(wbuf[p+1])
					a2, a3 := int32(wbuf[p+2]), int32(wbuf[p+3])
					if a0|a1|a2|a3 == 0 {
						continue
					}
					b0 := b[(kb+p)*n+jb : (kb+p)*n+jhi]
					b1 := b[(kb+p+1)*n+jb : (kb+p+1)*n+jhi][:len(b0)]
					b2 := b[(kb+p+2)*n+jb : (kb+p+2)*n+jhi][:len(b0)]
					b3 := b[(kb+p+3)*n+jb : (kb+p+3)*n+jhi][:len(b0)]
					u := tile[:len(b0)]
					for j, bv := range b0 {
						u[j] += a0*int32(bv) + a1*int32(b1[j]) + a2*int32(b2[j]) + a3*int32(b3[j])
					}
				}
				for ; p < kh; p++ {
					av := wbuf[p]
					if av == 0 {
						continue
					}
					a32 := int32(av)
					brow := b[(kb+p)*n+jb : (kb+p)*n+jhi]
					u := tile[:len(brow)]
					for j, bv := range brow {
						u[j] += a32 * int32(bv)
					}
				}
			}
			rs := rowScales[i]
			drow := dst[i*n+jb : i*n+jhi]
			for j := range drow {
				drow[j] = float32(tile[j]) * rs * colScales[jb+j]
			}
		}
	}
}
