// Package tensor implements dense float32 tensors and the numeric kernels
// (element-wise arithmetic, reductions, blocked parallel matrix multiply)
// that the rest of the TinyMLOps stack builds on.
//
// Tensors are row-major and contiguous. The package is deliberately small:
// it provides exactly the operations the neural-network engine
// (internal/nn), the quantizer (internal/quant) and the verifiable-execution
// layer (internal/verify) need, implemented with the standard library only.
//
// The matmul kernel is column-blocked for cache residency and fans rows
// out over a bounded goroutine pool above a work threshold; blocking and
// parallelism are both arranged so every output element accumulates in a
// fixed order, keeping results bit-identical across worker counts — the
// property the fleet engine's determinism contract rests on.
//
// All stochastic helpers take an explicit *RNG so every higher layer is
// reproducible from a seed.
package tensor
