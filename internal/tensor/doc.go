// Package tensor implements dense float32 tensors and the numeric kernels
// (element-wise arithmetic, reductions, blocked parallel matrix multiply)
// that the rest of the TinyMLOps stack builds on.
//
// Tensors are row-major and contiguous. The package is deliberately small:
// it provides exactly the operations the neural-network engine
// (internal/nn), the quantizer (internal/quant) and the verifiable-execution
// layer (internal/verify) need, implemented with the standard library only.
//
// The float matmul kernel is column-blocked for cache residency and fans
// rows out over a bounded goroutine pool above a work threshold; blocking
// and parallelism are both arranged so every output element accumulates
// in a fixed order, keeping results bit-identical across worker counts —
// the property the fleet engine's determinism contract rests on.
//
// The integer serving kernels relax the ordering constraint instead of
// fighting it: int32 accumulation is exact and commutative, so MatMulInt8
// and the packed-int4 kernels are free to unroll, retile and
// register-block while staying bit-identical to a naive scalar triple
// loop at any worker count. The int4 side never unpacks its operand:
// PackInt4/UnpackInt4/PackInt4Matrix define a canonical
// two-codes-per-byte encoding (low nibble first, zero pad), and
// MatMulInt4 multiplies whole bytes via a 256-entry table that expands
// each one to lo + hi<<32 — one 64-bit multiply retires both columns'
// MACs, the scalar analogue of a SIMD nibble kernel. All kernel scratch
// lives on the worker's stack, so the serving hot loop allocates nothing.
//
// All stochastic helpers take an explicit *RNG so every higher layer is
// reproducible from a seed.
package tensor
