package tensor

import (
	"bytes"
	"testing"
)

// FuzzInt4PackRoundTrip drives the packed int4 codec with arbitrary code
// streams: packing then unpacking must reproduce the codes exactly, equal
// code slices must produce equal bytes (canonical encoding), and mangled
// buffers — truncated, extended, or with a dirty pad nibble — must be
// rejected rather than silently decoded.
func FuzzInt4PackRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x0F, 0x08, 0x07}) // extremes: -1-equivalent, -8, 7 after mapping
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add(bytes.Repeat([]byte{0xAB}, 33))
	f.Fuzz(func(t *testing.T, raw []byte) {
		codes := make([]int8, len(raw))
		for i, b := range raw {
			codes[i] = int8(b&0xF) - 8 // always in [-8,7]
		}
		packed, err := PackInt4(codes)
		if err != nil {
			t.Fatalf("pack of in-range codes failed: %v", err)
		}
		if len(packed) != Int4PackedLen(len(codes)) {
			t.Fatalf("packed %d codes into %d bytes, want %d", len(codes), len(packed), Int4PackedLen(len(codes)))
		}
		got, err := UnpackInt4(packed, len(codes))
		if err != nil {
			t.Fatalf("unpack failed: %v", err)
		}
		for i := range codes {
			if got[i] != codes[i] {
				t.Fatalf("code %d round-tripped %d -> %d", i, codes[i], got[i])
			}
		}
		// Canonical: repacking the decoded codes gives identical bytes.
		repacked, err := PackInt4(got)
		if err != nil {
			t.Fatalf("repack failed: %v", err)
		}
		if !bytes.Equal(repacked, packed) {
			t.Fatalf("repack not canonical: %x vs %x", repacked, packed)
		}
		if len(packed) > 0 {
			if _, err := UnpackInt4(packed[:len(packed)-1], len(codes)); err == nil {
				t.Fatal("truncated buffer decoded without error")
			}
			if _, err := UnpackInt4(append(append([]byte(nil), packed...), 0), len(codes)); err == nil {
				t.Fatal("oversized buffer decoded without error")
			}
		}
		if len(codes)&1 == 1 {
			dirty := append([]byte(nil), packed...)
			dirty[len(dirty)-1] |= 0x10
			if _, err := UnpackInt4(dirty, len(codes)); err == nil {
				t.Fatal("nonzero pad nibble decoded without error")
			}
		}
	})
}
