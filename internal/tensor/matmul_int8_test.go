package tensor

import (
	"runtime"
	"testing"
)

// refMatMulInt8 is the naive scalar triple loop the blocked kernel must
// reproduce bit for bit.
func refMatMulInt8(a, b []int8, m, k, n int, rowScales, colScales []float32) []float32 {
	out := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc int32
			for p := 0; p < k; p++ {
				acc += int32(a[i*k+p]) * int32(b[p*n+j])
			}
			out[i*n+j] = float32(acc) * rowScales[i] * colScales[j]
		}
	}
	return out
}

func int8Fixture(rng *RNG, m, k, n int) (a, b []int8, rs, cs []float32) {
	a = make([]int8, m*k)
	b = make([]int8, k*n)
	for i := range a {
		a[i] = int8(rng.Intn(255) - 127)
	}
	for i := range b {
		b[i] = int8(rng.Intn(255) - 127)
	}
	rs = make([]float32, m)
	for i := range rs {
		rs[i] = 0.001 * float32(i+1)
	}
	cs = make([]float32, n)
	for j := range cs {
		cs[j] = 0.01 * float32(j%7+1)
	}
	return a, b, rs, cs
}

// TestMatMulInt8MatchesNaive pins the blocked parallel kernel to the
// scalar reference across shapes that cross the column-block and
// parallelism thresholds, including degenerate empty dimensions.
func TestMatMulInt8MatchesNaive(t *testing.T) {
	rng := NewRNG(71)
	for _, dims := range [][3]int{{1, 1, 1}, {3, 7, 5}, {17, 23, 11}, {4, 9, 2*colBlock + 3}, {64, 128, 96}, {0, 4, 4}, {4, 0, 4}, {4, 4, 0}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b, rs, cs := int8Fixture(rng, m, k, n)
		want := refMatMulInt8(a, b, m, k, n, rs, cs)
		got := make([]float32, m*n)
		MatMulInt8(got, a, b, m, k, n, rs, cs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("[%d,%d,%d]: element %d = %v, want %v (must be bit-identical)", m, k, n, i, got[i], want[i])
			}
		}
	}
}

// TestMatMulInt8WorkerCountIndependent forces the serial path via the pool
// guard and compares against the parallel result: integer accumulation
// makes them bit-identical.
func TestMatMulInt8WorkerCountIndependent(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-core environment exercises only the serial kernel")
	}
	rng := NewRNG(72)
	m, k, n := 96, 64, 80 // above parallelThreshold
	a, b, rs, cs := int8Fixture(rng, m, k, n)
	parallel := make([]float32, m*n)
	MatMulInt8(parallel, a, b, m, k, n, rs, cs)
	exit := EnterPool() // degrades the kernel to serial
	serial := make([]float32, m*n)
	MatMulInt8(serial, a, b, m, k, n, rs, cs)
	exit()
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("element %d: serial %v != parallel %v", i, serial[i], parallel[i])
		}
	}
}

// BenchmarkMatMulInt8Blocked measures the blocked integer kernel on the
// same shape as the float matmul benchmarks in the root bench suite.
func BenchmarkMatMulInt8Blocked(b *testing.B) {
	rng := NewRNG(73)
	m, k, n := 128, 256, 128
	a, bb, rs, cs := int8Fixture(rng, m, k, n)
	dst := make([]float32, m*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInt8(dst, a, bb, m, k, n, rs, cs)
	}
}
