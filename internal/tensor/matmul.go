package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// poolDepth counts goroutines currently executing inside a bounded worker
// pool (see EnterPool). While it is non-zero the machine is already
// saturated with coarse-grained parallelism, so the matmul kernels run
// serially instead of oversubscribing the scheduler with nested fan-outs.
// Results are bit-identical either way: parallelism only partitions rows,
// never reorders accumulation.
var poolDepth atomic.Int32

// EnterPool marks the calling goroutine as a worker of a bounded pool
// until the returned func is called. The fleet engine wraps each worker
// with it so per-device work does not nest another GOMAXPROCS-wide matmul
// fan-out per layer.
//
// The counter is deliberately process-global (Go offers no cheap
// goroutine-local state): while any pool is active, unrelated goroutines'
// matmuls also degrade to serial. That collateral costs at most the
// parallel speedup for the pool's duration — never correctness, since the
// serial and parallel kernels are bit-identical — whereas oversubscription
// costs every party scheduler thrash.
func EnterPool() (exit func()) {
	poolDepth.Add(1)
	return func() { poolDepth.Add(-1) }
}

// parallelThreshold is the number of multiply-accumulate operations above
// which MatMul fans out across goroutines. Below it, the goroutine overhead
// outweighs the parallel speedup on typical hardware.
const parallelThreshold = 1 << 17

// MatMul returns a × b for 2D tensors ([m,k] × [k,n] → [m,n]).
//
// The inner kernel iterates the B matrix row-wise (ikj ordering), which keeps
// both A and B accesses sequential, and splits the rows of A across a bounded
// pool of goroutines when the problem is large enough to benefit.
func MatMul(a, b *Tensor) *Tensor {
	a.must2D("MatMul")
	b.must2D("MatMul")
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch [%d,%d]×[%d,%d]", m, k, k2, n))
	}
	out := New(m, n)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a × b, reusing dst's storage. dst must have
// shape [a.Rows, b.Cols] and must not alias a or b.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d,%d]", dst.shape, m, n))
	}
	dst.Zero()
	// The poolDepth check is duplicated from parallelRows so the serial
	// path never constructs the closure below: a closure that escapes on
	// any branch is heap-allocated on every call, which would put one
	// allocation in the zero-alloc serving hot loop.
	work := m * n * k
	if work < parallelThreshold || poolDepth.Load() > 0 {
		matmulRows(dst.Data, a.Data, b.Data, 0, m, k, n)
		return
	}
	parallelRows(m, func(lo, hi int) {
		matmulRows(dst.Data, a.Data, b.Data, lo, hi, k, n)
	})
}

// colBlock is the column-tile width of the ikj kernel. Wide outputs are
// processed in tiles so one dst row stays resident in L1 across the whole
// k-loop; tiling only the j dimension leaves every element's accumulation
// order over p untouched, keeping blocked results bit-identical to the
// straight kernel.
const colBlock = 512

// matmulRows computes rows [lo,hi) of dst = A×B with the column-blocked
// ikj kernel. dst rows must be pre-zeroed.
func matmulRows(dst, a, b []float32, lo, hi, k, n int) {
	for jb := 0; jb < n; jb += colBlock {
		jhi := min(jb+colBlock, n)
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			drow := dst[i*n+jb : i*n+jhi]
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := b[p*n+jb : p*n+jhi]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	}
}

// MatMulT returns a × bᵀ ([m,k] × [n,k] → [m,n]). This is the layout used by
// dense-layer backward passes and avoids materializing the transpose.
func MatMulT(a, b *Tensor) *Tensor {
	a.must2D("MatMulT")
	b.must2D("MatMulT")
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT inner dimension mismatch [%d,%d]×[%d,%d]ᵀ", m, k, n, k2))
	}
	out := New(m, n)
	kernel := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b.Data[j*k : (j+1)*k]
				var s float32
				for p := range arow {
					s += arow[p] * brow[p]
				}
				orow[j] = s
			}
		}
	}
	if m*n*k < parallelThreshold {
		kernel(0, m)
		return out
	}
	parallelRows(m, kernel)
	return out
}

// TMatMul returns aᵀ × b ([k,m]ᵀ × [k,n] → [m,n]); used for weight gradients.
func TMatMul(a, b *Tensor) *Tensor {
	a.must2D("TMatMul")
	b.must2D("TMatMul")
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: TMatMul inner dimension mismatch [%d,%d]ᵀ×[%d,%d]", k, m, k2, n))
	}
	out := New(m, n)
	kernel := func(lo, hi int) {
		// out[i,j] = sum_p a[p,i]*b[p,j]; iterate p outermost for sequential reads.
		for p := 0; p < k; p++ {
			arow := a.Data[p*m : (p+1)*m]
			brow := b.Data[p*n : (p+1)*n]
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				orow := out.Data[i*n : (i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
	// The p-outer kernel writes disjoint row ranges per worker, so it is safe
	// to parallelize over i.
	if m*n*k < parallelThreshold {
		kernel(0, m)
		return out
	}
	parallelRows(m, kernel)
	return out
}

// MatVec returns a × v for a 2D tensor a [m,k] and 1D v [k].
func MatVec(a, v *Tensor) *Tensor {
	a.must2D("MatVec")
	m, k := a.shape[0], a.shape[1]
	if v.Size() != k {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch [%d,%d]×[%d]", m, k, v.Size()))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.Data[i*k : (i+1)*k]
		var s float32
		for j := range row {
			s += row[j] * v.Data[j]
		}
		out.Data[i] = s
	}
	return out
}

// parallelRows splits [0,m) into contiguous chunks and runs body on each
// chunk in its own goroutine, bounded by GOMAXPROCS workers. Inside a
// worker pool (EnterPool) it degrades to the serial kernel.
func parallelRows(m int, body func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers <= 1 || poolDepth.Load() > 0 {
		body(0, m)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Parallel exposes the bounded row-parallel helper for other packages that
// need to fan work out over a dimension (e.g. fleet simulation).
func Parallel(n int, body func(lo, hi int)) { parallelRows(n, body) }
