package tensor

// MatMulInt8 computes dst[i,j] = rowScales[i] * colScales[j] * Σ_p a[i,p]·b[p,j]
// for int8 operands a ([m,k] row-major) and b ([k,n] row-major) with exact
// int32 accumulation — the integer-serving hot path behind quant.QModel.
// rowScales has length m (one dequantization scale per output row, e.g. a
// dynamically quantized activation row) and colScales has length n (one
// per output column, e.g. a per-output-channel weight scale).
//
// The kernel mirrors the float matmul's layout choices: ikj ordering keeps
// both operands sequential, the j dimension is processed in column tiles
// so one accumulator row stays resident in L1 across the whole k-loop, and
// rows fan out across the bounded worker pool for large problems. Because
// the accumulation is integer (and therefore exact and order-independent),
// the blocked, parallel result is bit-identical to a naive scalar triple
// loop at any worker count.
//
// The accumulator is int32, like the DSP/NPU MAC units this models: the
// caller must keep k·127² inside int32 range (k < ~2^17), which every
// TinyML-scale layer does.
func MatMulInt8(dst []float32, a, b []int8, m, k, n int, rowScales, colScales []float32) {
	// Serial path first, without constructing the parallel closure: an
	// escaping closure is heap-allocated on every call, which would cost
	// the zero-alloc serving hot loop one allocation per matmul.
	if m*n*k < parallelThreshold || poolDepth.Load() > 0 {
		matmulInt8Rows(dst, a, b, 0, m, k, n, rowScales, colScales)
		return
	}
	Parallel(m, func(lo, hi int) {
		matmulInt8Rows(dst, a, b, lo, hi, k, n, rowScales, colScales)
	})
}

// matmulInt8Rows computes rows [lo,hi) of the int8 matmul.
//
// The k-loop is unrolled four-wide: each pass over the accumulator tile
// folds in four B rows, so the tile's read-modify-write traffic — the
// dominant cost of a scalar ikj kernel — is paid once per four MACs
// instead of once per MAC. Int32 addition is exact and commutative, so
// the reassociated sum is bit-identical to the naive scalar order.
func matmulInt8Rows(dst []float32, a, b []int8, lo, hi, k, n int, rowScales, colScales []float32) {
	// The accumulator tile lives on the worker's stack (colBlock int32s
	// = 2KB), so the serving hot loop stays allocation-free.
	var accArr [colBlock]int32
	for jb := 0; jb < n; jb += colBlock {
		jhi := min(jb+colBlock, n)
		w := jhi - jb
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			tile := accArr[:w]
			for j := range tile {
				tile[j] = 0
			}
			p := 0
			for ; p+3 < k; p += 4 {
				a0, a1 := int32(arow[p]), int32(arow[p+1])
				a2, a3 := int32(arow[p+2]), int32(arow[p+3])
				if a0|a1|a2|a3 == 0 {
					continue
				}
				b0 := b[p*n+jb : p*n+jhi]
				b1 := b[(p+1)*n+jb : (p+1)*n+jhi][:len(b0)]
				b2 := b[(p+2)*n+jb : (p+2)*n+jhi][:len(b0)]
				b3 := b[(p+3)*n+jb : (p+3)*n+jhi][:len(b0)]
				u := tile[:len(b0)]
				for j, bv := range b0 {
					u[j] += a0*int32(bv) + a1*int32(b1[j]) + a2*int32(b2[j]) + a3*int32(b3[j])
				}
			}
			for ; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := b[p*n+jb : p*n+jhi]
				a32 := int32(av)
				u := tile[:len(brow)]
				for j, bv := range brow {
					u[j] += a32 * int32(bv)
				}
			}
			rs := rowScales[i]
			drow := dst[i*n+jb : i*n+jhi]
			for j := range drow {
				drow[j] = float32(tile[j]) * rs * colScales[jb+j]
			}
		}
	}
}
