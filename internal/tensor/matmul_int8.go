package tensor

// MatMulInt8 computes dst[i,j] = rowScales[i] * colScales[j] * Σ_p a[i,p]·b[p,j]
// for int8 operands a ([m,k] row-major) and b ([k,n] row-major) with exact
// int32 accumulation — the integer-serving hot path behind quant.QModel.
// rowScales has length m (one dequantization scale per output row, e.g. a
// dynamically quantized activation row) and colScales has length n (one
// per output column, e.g. a per-output-channel weight scale).
//
// The kernel mirrors the float matmul's layout choices: ikj ordering keeps
// both operands sequential, the j dimension is processed in column tiles
// so one accumulator row stays resident in L1 across the whole k-loop, and
// rows fan out across the bounded worker pool for large problems. Because
// the accumulation is integer (and therefore exact and order-independent),
// the blocked, parallel result is bit-identical to a naive scalar triple
// loop at any worker count.
//
// The accumulator is int32, like the DSP/NPU MAC units this models: the
// caller must keep k·127² inside int32 range (k < ~2^17), which every
// TinyML-scale layer does.
func MatMulInt8(dst []float32, a, b []int8, m, k, n int, rowScales, colScales []float32) {
	body := func(lo, hi int) {
		width := n
		if width > colBlock {
			width = colBlock
		}
		acc := make([]int32, width)
		for jb := 0; jb < n; jb += colBlock {
			jhi := min(jb+colBlock, n)
			w := jhi - jb
			for i := lo; i < hi; i++ {
				arow := a[i*k : (i+1)*k]
				tile := acc[:w]
				for j := range tile {
					tile[j] = 0
				}
				for p, av := range arow {
					if av == 0 {
						continue
					}
					brow := b[p*n+jb : p*n+jhi]
					a32 := int32(av)
					for j, bv := range brow {
						tile[j] += a32 * int32(bv)
					}
				}
				rs := rowScales[i]
				drow := dst[i*n+jb : i*n+jhi]
				for j := range drow {
					drow[j] = float32(tile[j]) * rs * colScales[jb+j]
				}
			}
		}
	}
	if m*n*k < parallelThreshold {
		body(0, m)
		return
	}
	Parallel(m, body)
}
