package selector

import (
	"strings"
	"testing"
	"time"

	"tinymlops/internal/device"
	"tinymlops/internal/nn"
	"tinymlops/internal/quant"
	"tinymlops/internal/registry"
	"tinymlops/internal/tensor"
)

// buildCandidates registers a large and a small MLP plus int8 variants and
// returns all versions: the multi-fidelity candidate set of §III-A.
func buildCandidates(t *testing.T) (*registry.Registry, []*registry.ModelVersion) {
	t.Helper()
	rng := tensor.NewRNG(1)
	reg := registry.New()
	big := nn.NewNetwork([]int{128},
		nn.NewDense(128, 512, rng), nn.NewReLU(),
		nn.NewDense(512, 256, rng), nn.NewReLU(),
		nn.NewDense(256, 10, rng))
	small := nn.NewNetwork([]int{128},
		nn.NewDense(128, 32, rng), nn.NewReLU(),
		nn.NewDense(32, 10, rng))

	var all []*registry.ModelVersion
	bigBase, err := reg.RegisterModel("clf", big, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	all = append(all, bigBase)
	for _, s := range []quant.Scheme{quant.Int8, quant.Binary} {
		q, err := quant.FakeQuantizeNetwork(big, s)
		if err != nil {
			t.Fatal(err)
		}
		acc := 0.94
		if s == quant.Binary {
			acc = 0.82
		}
		v, err := reg.RegisterVariant(bigBase.ID, q, s, 0, acc)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, v)
	}
	smallBase, err := reg.RegisterModel("clf", small, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	all = append(all, smallBase)
	q8, _ := quant.FakeQuantizeNetwork(small, quant.Int8)
	v8, err := reg.RegisterVariant(smallBase.ID, q8, quant.Int8, 0, 0.89)
	if err != nil {
		t.Fatal(err)
	}
	all = append(all, v8)
	return reg, all
}

func deviceOf(t *testing.T, profile string, seed uint64) *device.Device {
	t.Helper()
	caps, err := device.ProfileByName(profile)
	if err != nil {
		t.Fatal(err)
	}
	d := device.NewDevice(profile+"-t", caps, tensor.NewRNG(seed))
	d.SetBehavior(1, 1, 0) // charging, wifi
	d.Tick()
	return d
}

func TestEdgeServerPicksMostAccurate(t *testing.T) {
	_, cands := buildCandidates(t)
	gw := deviceOf(t, "edge-gateway", 1)
	dec, err := Select(gw, cands, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Chosen.Version.Metrics.Accuracy < 0.95 {
		t.Fatalf("edge server chose %v (acc %.2f), want the 0.95 base",
			dec.Chosen.Version.Scheme, dec.Chosen.Version.Metrics.Accuracy)
	}
}

func TestConstrainedMCUGetsQuantizedOrSmall(t *testing.T) {
	_, cands := buildCandidates(t)
	m0 := deviceOf(t, "m0-sensor", 2)
	dec, err := Select(m0, cands, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	chosen := dec.Chosen.Version
	// The big fp32 artifact (≈800 KB) exceeds the 256 KB flash; whatever is
	// chosen must fit and must therefore be quantized and/or small.
	if chosen.Metrics.SizeBytes > 256<<10 {
		t.Fatalf("chosen variant does not fit flash: %d bytes", chosen.Metrics.SizeBytes)
	}
	// The infeasible big fp32 base must be recorded with a reason.
	foundRejection := false
	for _, ev := range dec.Evaluations {
		if !ev.Feasible && strings.Contains(ev.Reason, "flash") {
			foundRejection = true
		}
	}
	if !foundRejection {
		t.Fatal("no flash rejection recorded for the big fp32 model")
	}
}

func TestOpSupportRejection(t *testing.T) {
	rng := tensor.NewRNG(3)
	reg := registry.New()
	conv := nn.NewNetwork([]int{1, 8, 8},
		nn.NewConv2D(1, 2, 3, 3, 1, 1, rng), nn.NewReLU(),
		nn.NewFlatten(), nn.NewDense(128, 2, rng))
	v, err := reg.RegisterModel("convnet", conv, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	m0 := deviceOf(t, "m0-sensor", 4)
	_, err = Select(m0, []*registry.ModelVersion{v}, DefaultPolicy())
	if err == nil {
		t.Fatal("m0 accepted a conv2d model without a conv kernel")
	}
	m7 := deviceOf(t, "m7-camera", 5)
	if _, err := Select(m7, []*registry.ModelVersion{v}, DefaultPolicy()); err != nil {
		t.Fatalf("m7 should support conv2d: %v", err)
	}
}

func TestMaxLatencyBound(t *testing.T) {
	_, cands := buildCandidates(t)
	m0 := deviceOf(t, "m0-sensor", 6)
	policy := DefaultPolicy()
	policy.MaxLatency = time.Millisecond // the big model at 0.5 MAC/cycle blows this
	dec, err := Select(m0, cands, policy)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Chosen.Latency > policy.MaxLatency {
		t.Fatalf("chosen latency %v exceeds bound", dec.Chosen.Latency)
	}
}

func TestMinAccuracyFloor(t *testing.T) {
	_, cands := buildCandidates(t)
	gw := deviceOf(t, "edge-gateway", 7)
	policy := DefaultPolicy()
	policy.MinAccuracy = 0.99
	if _, err := Select(gw, cands, policy); err == nil {
		t.Fatal("no candidate reaches 0.99 accuracy; Select should fail")
	}
}

func TestBatteryAwareSelectionPrefersCheapModel(t *testing.T) {
	_, cands := buildCandidates(t)
	caps, _ := device.ProfileByName("m4-wearable")
	low := device.NewDevice("m4-low", caps, tensor.NewRNG(8))
	// Drain to ~10% without charging.
	macs := int64(caps.BatteryJoule * 0.9 / caps.EnergyPerMACJoule)
	if _, err := low.RunInference(macs, 8); err != nil {
		t.Fatal(err)
	}
	low.SetBehavior(0, 1, 0)

	policy := DefaultPolicy()
	policy.BatteryAware = true
	decLow, err := Select(low, cands, policy)
	if err != nil {
		t.Fatal(err)
	}
	full := deviceOf(t, "m4-wearable", 9)
	decFull, err := Select(full, cands, policy)
	if err != nil {
		t.Fatal(err)
	}
	if decLow.Chosen.Version.Metrics.MACs > decFull.Chosen.Version.Metrics.MACs {
		t.Fatalf("low-battery device chose a heavier model (%d MACs) than the charged one (%d)",
			decLow.Chosen.Version.Metrics.MACs, decFull.Chosen.Version.Metrics.MACs)
	}
	if decLow.Chosen.Version.Metrics.MACs == decFull.Chosen.Version.Metrics.MACs &&
		decLow.Chosen.Version.Metrics.Accuracy > decFull.Chosen.Version.Metrics.Accuracy {
		t.Log("battery-aware selection coincided; acceptable but unexpected")
	}
}

func TestSelectErrors(t *testing.T) {
	gw := deviceOf(t, "edge-gateway", 10)
	if _, err := Select(gw, nil, DefaultPolicy()); err == nil {
		t.Fatal("empty candidate list accepted")
	}
}

func TestSelectForFleetCoversAllDevices(t *testing.T) {
	_, cands := buildCandidates(t)
	fleet, err := device.NewStandardFleet(device.FleetSpec{CountPerProfile: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fleet.Devices() {
		d.SetBehavior(1, 1, 0)
	}
	fleet.Tick()
	choices, failed := SelectForFleet(fleet, cands, DefaultPolicy())
	if len(choices) != fleet.Size() {
		t.Fatalf("choices for %d of %d devices", len(choices), fleet.Size())
	}
	if len(failed) > 0 {
		t.Fatalf("devices failed selection: %v", failed)
	}
	// Heterogeneity: the fleet should not all run the same variant.
	distinct := make(map[string]bool)
	for _, ev := range choices {
		distinct[ev.Version.ID] = true
	}
	if len(distinct) < 2 {
		t.Fatal("fleet-wide selection collapsed to a single variant")
	}
}

func TestZeroPolicyGetsDefaults(t *testing.T) {
	_, cands := buildCandidates(t)
	gw := deviceOf(t, "edge-gateway", 12)
	dec, err := Select(gw, cands, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Chosen == nil || dec.Chosen.Score == 0 {
		t.Fatalf("zero policy produced no scored decision: %+v", dec.Chosen)
	}
}

// TestPolicySchemeAllowlist pins the cohort-pinning knob: a non-empty
// Schemes list makes every other precision infeasible, for both explicit
// and zero-weight (defaulted) policies.
func TestPolicySchemeAllowlist(t *testing.T) {
	_, cands := buildCandidates(t)
	gw := deviceOf(t, "edge-gateway", 13)
	for _, scheme := range []quant.Scheme{quant.Float32, quant.Int8, quant.Binary} {
		dec, err := Select(gw, cands, Policy{Schemes: []quant.Scheme{scheme}})
		if err != nil {
			t.Fatalf("scheme %v: %v", scheme, err)
		}
		if got := dec.Chosen.Version.Scheme; got != scheme {
			t.Fatalf("pinned %v, selected %v", scheme, got)
		}
		for _, ev := range dec.Evaluations {
			if ev.Version.Scheme != scheme && ev.Feasible {
				t.Fatalf("scheme %v feasible under a %v-only policy", ev.Version.Scheme, scheme)
			}
		}
	}
	// An allowlist no candidate matches fails selection outright.
	if _, err := Select(gw, cands, Policy{Schemes: []quant.Scheme{quant.Ternary}}); err == nil {
		t.Fatal("selection succeeded with an unsatisfiable scheme allowlist")
	}
}
