package selector

import (
	"fmt"
	"sort"
	"time"

	"tinymlops/internal/device"
	"tinymlops/internal/quant"
	"tinymlops/internal/registry"
)

// Policy weights the selection objectives and sets hard constraints.
type Policy struct {
	// MinAccuracy rejects variants below this validation accuracy.
	MinAccuracy float64
	// MaxLatency rejects variants whose modeled inference latency exceeds
	// this bound (0 = unbounded).
	MaxLatency time.Duration
	// Schemes, when non-empty, restricts candidates to these weight
	// precisions — the operational knob for pinning a cohort to a runtime
	// (e.g. Float32 only while the integer serving path canaries, or Int8
	// only to force native execution on capable hardware).
	Schemes []quant.Scheme
	// Kinds lists the artifact kinds the policy accepts. Empty means
	// network artifacts only: compiled variants (registry.KindProcVM) are
	// never selected by accident — a cohort opts in explicitly, mirroring
	// the Schemes pin.
	Kinds []string

	// LatencyRef and DownloadRef are the absolute budgets that make the
	// latency and download penalties unit-free: a candidate at the
	// reference costs its full weight, a candidate far below it costs
	// almost nothing. Defaults: 100ms and 60s. Energy is normalized
	// relative to the most expensive feasible candidate (what matters for
	// battery life is the choice among alternatives).
	LatencyRef  time.Duration
	DownloadRef time.Duration

	// Objective weights (≥0). A zero Policy gets DefaultPolicy weights.
	WAccuracy float64
	WLatency  float64
	WDownload float64
	WEnergy   float64

	// BatteryAware boosts the energy weight ×4 when the device is below
	// 30% battery and not charging.
	BatteryAware bool
}

// DefaultPolicy returns the weights used across the experiments.
func DefaultPolicy() Policy {
	return Policy{
		MinAccuracy:  0,
		LatencyRef:   100 * time.Millisecond,
		DownloadRef:  60 * time.Second,
		WAccuracy:    1.0,
		WLatency:     0.4,
		WDownload:    0.15,
		WEnergy:      0.15,
		BatteryAware: true,
	}
}

func (p Policy) normalized() Policy {
	if p.WAccuracy == 0 && p.WLatency == 0 && p.WDownload == 0 && p.WEnergy == 0 {
		d := DefaultPolicy()
		d.MinAccuracy, d.MaxLatency, d.BatteryAware = p.MinAccuracy, p.MaxLatency, p.BatteryAware
		d.Schemes = p.Schemes
		d.Kinds = p.Kinds
		p = d
	}
	if p.LatencyRef <= 0 {
		p.LatencyRef = 100 * time.Millisecond
	}
	if p.DownloadRef <= 0 {
		p.DownloadRef = 60 * time.Second
	}
	return p
}

// Evaluation is the per-candidate record of a selection decision.
type Evaluation struct {
	Version  *registry.ModelVersion
	Feasible bool
	// Reason explains infeasibility ("op conv2d unsupported", "flash", ...).
	Reason string

	Latency      time.Duration
	DownloadTime time.Duration
	EnergyJoule  float64
	Score        float64
}

// Decision is the outcome of Select: the chosen variant plus the full
// evaluation table (which experiment E2 prints).
type Decision struct {
	Chosen      *Evaluation
	Evaluations []Evaluation
}

// Select evaluates all candidate versions against a device and returns the
// best feasible one under the policy. It returns an error if no candidate
// is feasible.
func Select(dev *device.Device, candidates []*registry.ModelVersion, policy Policy) (Decision, error) {
	if len(candidates) == 0 {
		return Decision{}, fmt.Errorf("selector: no candidates")
	}
	policy = policy.normalized()
	evals := make([]Evaluation, 0, len(candidates))
	bw := dev.Net().Bandwidth()
	for _, v := range candidates {
		ev := Evaluation{Version: v}
		if reason := feasibility(dev, v, policy); reason != "" {
			ev.Reason = reason
			evals = append(evals, ev)
			continue
		}
		ev.Feasible = true
		ev.Latency = dev.Caps.InferenceLatency(v.Metrics.MACs, v.Scheme.Bits())
		ev.EnergyJoule = dev.Caps.InferenceEnergy(v.Metrics.MACs)
		if bw > 0 {
			ev.DownloadTime = time.Duration(float64(v.Metrics.SizeBytes) / bw * float64(time.Second))
		} else {
			// Offline: the variant must wait for connectivity; penalize
			// with a large but finite stand-in so scoring still orders by size.
			ev.DownloadTime = time.Duration(v.Metrics.SizeBytes) * time.Millisecond
		}
		if policy.MaxLatency > 0 && ev.Latency > policy.MaxLatency {
			ev.Feasible = false
			ev.Reason = fmt.Sprintf("latency %v exceeds bound %v", ev.Latency, policy.MaxLatency)
		}
		evals = append(evals, ev)
	}

	// Energy is normalized relative to the most expensive feasible
	// candidate; latency and download against the absolute policy budgets.
	var maxEn float64
	feasibleCount := 0
	for _, ev := range evals {
		if !ev.Feasible {
			continue
		}
		feasibleCount++
		if ev.EnergyJoule > maxEn {
			maxEn = ev.EnergyJoule
		}
	}
	if feasibleCount == 0 {
		return Decision{Evaluations: evals}, fmt.Errorf("selector: no feasible variant for device %s", dev.ID)
	}
	wEnergy := policy.WEnergy
	if policy.BatteryAware {
		switch {
		case dev.Charging():
			// Wall power or charger: energy is a non-issue (§III-A).
			wEnergy = 0
		case dev.BatteryLevel() < 0.3:
			// Running low: energy dominates.
			wEnergy *= 4
		}
	}
	best := -1
	for i := range evals {
		ev := &evals[i]
		if !ev.Feasible {
			continue
		}
		score := policy.WAccuracy * ev.Version.Metrics.Accuracy
		score -= policy.WLatency * capAt1(float64(ev.Latency)/float64(policy.LatencyRef))
		score -= policy.WDownload * capAt1(float64(ev.DownloadTime)/float64(policy.DownloadRef))
		if maxEn > 0 {
			score -= wEnergy * ev.EnergyJoule / maxEn
		}
		ev.Score = score
		if best < 0 || score > evals[best].Score {
			best = i
		}
	}
	return Decision{Chosen: &evals[best], Evaluations: evals}, nil
}

// capAt1 clamps a normalized cost to [0,1] so one blown budget cannot
// dominate every other objective by an unbounded margin.
func capAt1(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}

func feasibility(dev *device.Device, v *registry.ModelVersion, policy Policy) string {
	if len(policy.Kinds) == 0 {
		if v.Kind != registry.KindNetwork {
			return fmt.Sprintf("artifact kind %q excluded by policy", v.Kind)
		}
	} else {
		allowed := false
		for _, k := range policy.Kinds {
			if v.Kind == k {
				allowed = true
				break
			}
		}
		if !allowed {
			return fmt.Sprintf("artifact kind %q excluded by policy", v.Kind)
		}
	}
	if len(policy.Schemes) > 0 {
		allowed := false
		for _, s := range policy.Schemes {
			if v.Scheme == s {
				allowed = true
				break
			}
		}
		if !allowed {
			return fmt.Sprintf("scheme %v excluded by policy", v.Scheme)
		}
	}
	for _, op := range v.OpKinds {
		if !dev.Caps.SupportsOp(op) {
			return fmt.Sprintf("op %q unsupported", op)
		}
	}
	if err := dev.CheckFit(int64(v.Metrics.SizeBytes), v.Metrics.PeakActivationBytes); err != nil {
		return err.Error()
	}
	if v.Metrics.Accuracy < policy.MinAccuracy {
		return fmt.Sprintf("accuracy %.3f below floor %.3f", v.Metrics.Accuracy, policy.MinAccuracy)
	}
	return ""
}

// SelectForFleet runs Select for every device and returns the decisions
// keyed by device ID. Devices with no feasible variant map to a nil entry
// in choices and are listed in failed.
func SelectForFleet(fleet *device.Fleet, candidates []*registry.ModelVersion, policy Policy) (choices map[string]*Evaluation, failed []string) {
	choices = make(map[string]*Evaluation)
	for _, d := range fleet.Devices() {
		dec, err := Select(d, candidates, policy)
		if err != nil {
			failed = append(failed, d.ID)
			choices[d.ID] = nil
			continue
		}
		choices[d.ID] = dec.Chosen
	}
	sort.Strings(failed)
	return choices, failed
}
