// Package selector implements the per-device model-variant selection of
// §III-A: given the variants the registry derived from a base model and a
// device's current context (hardware capabilities, battery, charger,
// network), pick the variant that maximizes a multi-objective utility of
// accuracy, inference latency, download cost and energy — exactly the
// trade-off the paper describes ("a smaller model to a device with limited
// resources, a large model to a powerful device, a faster download on a
// slow connection, a frugal model on a low battery").
//
// Selection runs at initial deployment and again on every OTA update:
// a new base version regenerates the variant matrix, and each device's
// Deployment.Update re-decides which variant of the new generation fits
// its current battery, link and memory state.
package selector
