package quant

import (
	"math"
	"testing"
	"testing/quick"

	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

func TestSchemeStringsAndBits(t *testing.T) {
	cases := []struct {
		s    Scheme
		name string
		bits int
	}{
		{Float32, "float32", 32}, {Int8, "int8", 8}, {Int4, "int4", 4},
		{Ternary, "ternary", 2}, {Binary, "binary", 1},
	}
	for _, c := range cases {
		if c.s.String() != c.name || c.s.Bits() != c.bits {
			t.Fatalf("scheme %v: %q/%d", c.s, c.s.String(), c.s.Bits())
		}
		got, err := ParseScheme(c.name)
		if err != nil || got != c.s {
			t.Fatalf("ParseScheme(%q) = %v, %v", c.name, got, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Fatal("ParseScheme accepted bogus scheme")
	}
}

func TestQuantizeInt8RoundTripErrorBounded(t *testing.T) {
	rng := tensor.NewRNG(1)
	w := tensor.Randn(rng, 0.5, 32, 16)
	q, err := QuantizeMatrix(w, Int8)
	if err != nil {
		t.Fatal(err)
	}
	d := q.Dequantize()
	// Max error per column is scale/2; verify element-wise.
	for j := 0; j < 16; j++ {
		for i := 0; i < 32; i++ {
			diff := math.Abs(float64(w.At2(i, j) - d.At2(i, j)))
			if diff > float64(q.Scales[j])/2+1e-6 {
				t.Fatalf("int8 error %g exceeds scale/2=%g at (%d,%d)", diff, q.Scales[j]/2, i, j)
			}
		}
	}
}

func TestQuantizeCodesWithinRange(t *testing.T) {
	rng := tensor.NewRNG(2)
	w := tensor.Randn(rng, 2, 20, 10)
	for _, c := range []struct {
		s   Scheme
		max int8
	}{{Int8, 127}, {Int4, 7}, {Ternary, 1}, {Binary, 1}} {
		q, err := QuantizeMatrix(w, c.s)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range q.Data {
			if v > c.max || v < -c.max {
				t.Fatalf("%v code %d out of range ±%d", c.s, v, c.max)
			}
			if c.s == Binary && v == 0 {
				t.Fatal("binary scheme produced a zero code")
			}
		}
	}
}

func TestQuantizationErrorMonotoneInBits(t *testing.T) {
	rng := tensor.NewRNG(3)
	w := tensor.Randn(rng, 1, 64, 32)
	var prev float64 = -1
	for _, s := range []Scheme{Int8, Int4, Ternary, Binary} {
		e, err := QuantizationError(w, s)
		if err != nil {
			t.Fatal(err)
		}
		if e < prev {
			t.Fatalf("error not monotone: %v gives %g after %g", s, e, prev)
		}
		prev = e
	}
}

func TestQTensorSizeBytes(t *testing.T) {
	rng := tensor.NewRNG(4)
	w := tensor.Randn(rng, 1, 100, 10)
	q8, _ := QuantizeMatrix(w, Int8)
	q1, _ := QuantizeMatrix(w, Binary)
	if q8.SizeBytes() != 1000+40 {
		t.Fatalf("int8 size = %d, want 1040", q8.SizeBytes())
	}
	if q1.SizeBytes() != 125+40 {
		t.Fatalf("binary size = %d, want 165", q1.SizeBytes())
	}
}

func trainBlobModel(t *testing.T, rng *tensor.RNG) (*nn.Network, *tensor.Tensor, []int) {
	t.Helper()
	n := 600
	x := tensor.New(n, 4)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 3
		for d := 0; d < 4; d++ {
			center := float32(cls*2) * float32(1+d%2)
			x.Set2(i, d, center+rng.NormFloat32()*0.6)
		}
		labels[i] = cls
	}
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 24, rng), nn.NewReLU(), nn.NewDense(24, 3, rng))
	if _, err := nn.Train(net, x, labels, nn.TrainConfig{
		Epochs: 12, BatchSize: 32, Optimizer: nn.NewSGD(0.1).WithMomentum(0.9), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	return net, x, labels
}

func TestFakeQuantAccuracyOrdering(t *testing.T) {
	rng := tensor.NewRNG(5)
	net, x, labels := trainBlobModel(t, rng)
	base := nn.Evaluate(net, x, labels)
	if base < 0.9 {
		t.Fatalf("base accuracy too low: %v", base)
	}
	acc8net, err := FakeQuantizeNetwork(net, Int8)
	if err != nil {
		t.Fatal(err)
	}
	acc8 := nn.Evaluate(acc8net, x, labels)
	if base-acc8 > 0.05 {
		t.Fatalf("int8 accuracy dropped too much: %v -> %v", base, acc8)
	}
	accBinNet, err := FakeQuantizeNetwork(net, Binary)
	if err != nil {
		t.Fatal(err)
	}
	accBin := nn.Evaluate(accBinNet, x, labels)
	if accBin > acc8+0.02 {
		t.Fatalf("binary (%v) should not beat int8 (%v)", accBin, acc8)
	}
}

func TestQModelMatchesFakeQuantPredictions(t *testing.T) {
	rng := tensor.NewRNG(6)
	net, x, labels := trainBlobModel(t, rng)
	qm, err := NewQModel(net, Int8)
	if err != nil {
		t.Fatal(err)
	}
	logits := qm.Predict(x.RowSlice(0, 64))
	// Compare classification agreement with the float model (activation
	// quantization adds noise so exact equality is not expected).
	want := net.Predict(x.RowSlice(0, 64)).ArgMaxRows()
	got := logits.ArgMaxRows()
	agree := 0
	for i := range got {
		if got[i] == want[i] {
			agree++
		}
	}
	if agree < 58 {
		t.Fatalf("int8 QModel agrees on only %d/64 predictions", agree)
	}
	qacc := 0
	pred := qm.Predict(x).ArgMaxRows()
	for i := range pred {
		if pred[i] == labels[i] {
			qacc++
		}
	}
	if float64(qacc)/float64(len(labels)) < 0.85 {
		t.Fatalf("QModel accuracy %v too low", float64(qacc)/float64(len(labels)))
	}
}

func TestQModelSizeShrinksWithBits(t *testing.T) {
	rng := tensor.NewRNG(7)
	net := nn.NewNetwork([]int{32}, nn.NewDense(32, 64, rng), nn.NewReLU(), nn.NewDense(64, 10, rng))
	m8, _ := NewQModel(net, Int8)
	m4, _ := NewQModel(net, Int4)
	m1, _ := NewQModel(net, Binary)
	if !(m8.SizeBytes() > m4.SizeBytes() && m4.SizeBytes() > m1.SizeBytes()) {
		t.Fatalf("sizes not monotone: %d, %d, %d", m8.SizeBytes(), m4.SizeBytes(), m1.SizeBytes())
	}
	if NetworkSizeBytes(net, Float32) <= NetworkSizeBytes(net, Int8) {
		t.Fatal("float32 network should be larger than int8")
	}
}

func TestNewQModelRejectsFloatScheme(t *testing.T) {
	rng := tensor.NewRNG(8)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 2, rng))
	if _, err := NewQModel(net, Float32); err == nil {
		t.Fatal("NewQModel accepted Float32")
	}
}

func TestInt8KernelsAgree(t *testing.T) {
	rng := tensor.NewRNG(9)
	m, k, n := 17, 23, 11
	a := make([]int8, m*k)
	b := make([]int8, k*n)
	for i := range a {
		a[i] = int8(rng.Intn(255) - 127)
	}
	for i := range b {
		b[i] = int8(rng.Intn(255) - 127)
	}
	scales := make([]float32, n)
	for i := range scales {
		scales[i] = 0.01 * float32(i+1)
	}
	d1 := make([]float32, m*n)
	d2 := make([]float32, m*n)
	MatMulInt8(d1, a, b, m, k, n, 0.05, scales)
	MatMulInt8Emulated(d2, a, b, m, k, n, 0.05, scales)
	for i := range d1 {
		if math.Abs(float64(d1[i]-d2[i])) > 1e-3*math.Max(1, math.Abs(float64(d1[i]))) {
			t.Fatalf("kernel mismatch at %d: %v vs %v", i, d1[i], d2[i])
		}
	}
}

func TestQuantizeActivationsSymmetric(t *testing.T) {
	x := tensor.FromSlice([]float32{-1, 0, 0.5, 1}, 1, 4)
	q, scale := QuantizeActivations(x)
	if q[0] != -127 || q[3] != 127 {
		t.Fatalf("activation codes = %v", q)
	}
	if math.Abs(float64(scale-1.0/127)) > 1e-7 {
		t.Fatalf("scale = %v", scale)
	}
	// All-zero input must not divide by zero.
	z := tensor.New(1, 4)
	qz, s := QuantizeActivations(z)
	if s == 0 {
		t.Fatal("zero scale for zero input")
	}
	for _, v := range qz {
		if v != 0 {
			t.Fatal("zero input must quantize to zero codes")
		}
	}
}

func TestMagnitudePrune(t *testing.T) {
	rng := tensor.NewRNG(10)
	net := nn.NewNetwork([]int{16}, nn.NewDense(16, 32, rng), nn.NewReLU(), nn.NewDense(32, 4, rng))
	s, err := MagnitudePrune(net, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.49 || s > 0.6 {
		t.Fatalf("sparsity = %v, want ≈0.5", s)
	}
	if got := Sparsity(net); math.Abs(got-s) > 1e-9 {
		t.Fatalf("Sparsity() = %v, prune reported %v", got, s)
	}
	// Biases untouched by sparsity accounting: prune with 0 keeps state.
	s2, err := MagnitudePrune(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2 < s {
		t.Fatalf("fraction=0 lost sparsity: %v -> %v", s, s2)
	}
	if _, err := MagnitudePrune(net, 1.5); err == nil {
		t.Fatal("accepted fraction > 1")
	}
}

func TestPruneKeepsLargestWeights(t *testing.T) {
	rng := tensor.NewRNG(11)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 4, rng))
	w := net.Layers()[0].(*nn.Dense).W.Value
	for i := range w.Data {
		w.Data[i] = float32(i + 1) // magnitudes 1..16
	}
	if _, err := MagnitudePrune(net, 0.25); err != nil {
		t.Fatal(err)
	}
	// Smallest four (1..4) must be zero, largest must survive.
	for i := 0; i < 4; i++ {
		if w.Data[i] != 0 {
			t.Fatalf("small weight %d survived: %v", i, w.Data[i])
		}
	}
	if w.Data[15] != 16 {
		t.Fatalf("largest weight was pruned: %v", w.Data[15])
	}
}

func TestDistillStudentApproachesTeacher(t *testing.T) {
	rng := tensor.NewRNG(12)
	teacher, x, labels := trainBlobModel(t, rng)
	student := nn.NewNetwork([]int{4}, nn.NewDense(4, 8, rng), nn.NewReLU(), nn.NewDense(8, 3, rng))
	before := nn.Evaluate(student, x, labels)
	_, err := Distill(teacher, student, x, labels, DistillConfig{
		Epochs: 15, BatchSize: 32, Temperature: 2, Alpha: 0.7,
		Optimizer: nn.NewSGD(0.1).WithMomentum(0.9), RNG: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	after := nn.Evaluate(student, x, labels)
	if after < before+0.1 || after < 0.85 {
		t.Fatalf("distillation did not help: %v -> %v", before, after)
	}
}

func TestDistillValidatesConfig(t *testing.T) {
	rng := tensor.NewRNG(13)
	net := nn.NewNetwork([]int{2}, nn.NewDense(2, 2, rng))
	x := tensor.New(4, 2)
	if _, err := Distill(net, net, x, []int{0}, DistillConfig{RNG: rng, Optimizer: nn.NewSGD(0.1)}); err == nil {
		t.Fatal("accepted mismatched labels")
	}
	if _, err := Distill(net, net, x, []int{0, 0, 0, 0}, DistillConfig{}); err == nil {
		t.Fatal("accepted missing RNG/optimizer")
	}
}

// Property: dequantize(quantize(w)) has column-wise max error ≤ scale/2 for
// int schemes on arbitrary matrices.
func TestInt8ErrorBoundProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rr := tensor.NewRNG(seed)
		rows, cols := 1+rr.Intn(20), 1+rr.Intn(10)
		w := tensor.Randn(rr, 1+rr.Float32()*3, rows, cols)
		q, err := QuantizeMatrix(w, Int8)
		if err != nil {
			return false
		}
		d := q.Dequantize()
		for j := 0; j < cols; j++ {
			for i := 0; i < rows; i++ {
				if math.Abs(float64(w.At2(i, j)-d.At2(i, j))) > float64(q.Scales[j])/2+1e-5 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
