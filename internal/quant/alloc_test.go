package quant

import (
	"fmt"
	"testing"

	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

// TestQModelForwardBatchZeroAlloc asserts the integer serving paths are
// allocation-free in the steady state for both the int8 kernels and the
// packed int4 kernels, over a dense topology and a convolutional one.
// One warmup call sizes every scratch buffer; EnterPool pins the kernels
// to their serial in-worker form so the result is machine-independent.
func TestQModelForwardBatchZeroAlloc(t *testing.T) {
	rng := tensor.NewRNG(11)
	mlp := nn.NewNetwork([]int{64},
		nn.NewDense(64, 128, rng), nn.NewBatchNorm1D(128), nn.NewReLU(),
		nn.NewDense(128, 10, rng), nn.NewSoftmax())
	conv := nn.NewNetwork([]int{1, 10, 10},
		nn.NewConv2D(1, 4, 3, 3, 1, 1, rng), nn.NewReLU(), nn.NewMaxPool2D(2, 2),
		nn.NewFlatten(), nn.NewDense(4*5*5, 6, rng))
	fixtures := []struct {
		name string
		net  *nn.Network
		in   *tensor.Tensor
	}{
		{"mlp", mlp, tensor.Randn(rng, 1, 16, 64)},
		{"conv", conv, tensor.Randn(rng, 1, 8, 1, 10, 10)},
	}
	exit := tensor.EnterPool()
	defer exit()
	for _, fx := range fixtures {
		for _, scheme := range []Scheme{Int8, Int4} {
			qm, err := NewQModel(fx.net, scheme)
			if err != nil {
				t.Fatal(err)
			}
			scratch := NewQScratch()
			qm.ForwardBatch(fx.in, scratch) // warmup sizes all buffers
			allocs := testing.AllocsPerRun(100, func() {
				qm.ForwardBatch(fx.in, scratch)
			})
			if allocs != 0 {
				t.Errorf("%s/%v: steady-state ForwardBatch allocates %.1f allocs/op, want 0",
					fx.name, scheme, allocs)
			}
		}
	}
}

// TestQTensorPackRoundTrip checks the packed storage form end to end:
// packing then unpacking restores the exact codes, Dequantize reads both
// forms identically, and SizeBytes is storage-form independent.
func TestQTensorPackRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(5)
	w := tensor.Randn(rng, 1, 9, 7) // odd cols exercise the pad nibble
	q, err := QuantizeMatrix(w, Int4)
	if err != nil {
		t.Fatal(err)
	}
	codes := append([]int8(nil), q.Data...)
	deq := q.Dequantize()
	size := q.SizeBytes()
	if err := q.PackInt4(); err != nil {
		t.Fatal(err)
	}
	if !q.IsPacked() || q.Data != nil {
		t.Fatal("PackInt4 left the tensor unpacked")
	}
	if got := q.SizeBytes(); got != size {
		t.Fatalf("SizeBytes changed across packing: %d vs %d", got, size)
	}
	deqPacked := q.Dequantize()
	for i := range deq.Data {
		if deq.Data[i] != deqPacked.Data[i] {
			t.Fatalf("Dequantize differs at %d: %v vs %v", i, deq.Data[i], deqPacked.Data[i])
		}
	}
	if err := q.PackInt4(); err != nil {
		t.Fatalf("PackInt4 on packed tensor: %v", err)
	}
	if err := q.UnpackInt4(); err != nil {
		t.Fatal(err)
	}
	if q.IsPacked() {
		t.Fatal("UnpackInt4 left the tensor packed")
	}
	for i := range codes {
		if q.Data[i] != codes[i] {
			t.Fatalf("code %d round-tripped %d -> %d", i, codes[i], q.Data[i])
		}
	}
	// Non-int4 schemes must refuse to pack.
	q8, err := QuantizeMatrix(w, Int8)
	if err != nil {
		t.Fatal(err)
	}
	if err := q8.PackInt4(); err == nil {
		t.Fatal("PackInt4 accepted an int8 tensor")
	}
	_ = fmt.Sprintf("%v", q8.Scheme) // keep fmt imported alongside future cases
}
