package quant

import (
	"fmt"

	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

// DistillConfig controls teacher→student knowledge distillation.
type DistillConfig struct {
	Epochs      int
	BatchSize   int
	Temperature float32
	Alpha       float32 // weight of the soft-target term in [0,1]
	Optimizer   nn.Optimizer
	RNG         *tensor.RNG
}

// Distill trains student to mimic teacher on x (with hard labels) using the
// blended distillation loss. It is both an optimization-pipeline stage
// (small student for weak devices, §II) and the attack primitive behind
// indirect model stealing (§V, experiment E9 trains the clone exactly this
// way against black-box teacher outputs).
func Distill(teacher, student *nn.Network, x *tensor.Tensor, labels []int, cfg DistillConfig) (float32, error) {
	n := x.Dim(0)
	if len(labels) != n {
		return 0, fmt.Errorf("quant: Distill got %d labels for %d examples", len(labels), n)
	}
	if cfg.RNG == nil || cfg.Optimizer == nil {
		return 0, fmt.Errorf("quant: DistillConfig requires RNG and Optimizer")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.Temperature <= 0 {
		cfg.Temperature = 2
	}
	exampleSize := x.Size() / n
	var last float32
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := cfg.RNG.Perm(n)
		var epochLoss float64
		batches := 0
		for lo := 0; lo < n; lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > n {
				hi = n
			}
			idx := perm[lo:hi]
			shape := append([]int{len(idx)}, x.Shape()[1:]...)
			bx := tensor.New(shape...)
			by := make([]int, len(idx))
			for i, src := range idx {
				copy(bx.Data[i*exampleSize:(i+1)*exampleSize], x.Data[src*exampleSize:(src+1)*exampleSize])
				by[i] = labels[src]
			}
			teacherProbs := nn.SoftmaxRows(teacher.Predict(bx))
			student.ZeroGrad()
			logits := student.Forward(bx, true)
			loss, grad := nn.DistillationLoss(logits, teacherProbs, by, cfg.Temperature, cfg.Alpha)
			student.Backward(grad)
			cfg.Optimizer.Step(student.Params())
			epochLoss += float64(loss)
			batches++
		}
		last = float32(epochLoss / float64(batches))
	}
	return last, nil
}
