package quant

import (
	"fmt"

	"tinymlops/internal/tensor"
)

// Split execution. A QModel can be cut at a dense integer stage and run as
// a device prefix plus a cloud suffix: the device executes stages [0, cut)
// with ForwardRange, quantizes the boundary activations exactly the way
// stage cut itself would (QuantizeActivationsRows), and ships only the int8
// codes plus one scale per example; the cloud resumes with ForwardFromCodes,
// feeding the codes straight into stage cut's integer kernel. Because the
// codes on the wire are bit-identical to the codes the device would have
// produced locally, the split output is bit-identical to ForwardBatch — the
// property that retires the "integer deployments cannot split" restriction.

// NumStages returns the number of executable stages (one per network layer).
func (m *QModel) NumStages() int { return len(m.stages) }

// CanCutAt reports whether cut is a valid quantized offload boundary. The
// remote side resumes from int8 activation codes, so the first remote stage
// must be a dense integer stage — it consumes exactly the codes the device
// would have produced. cut == NumStages() is the all-local degenerate split
// and is always valid.
func (m *QModel) CanCutAt(cut int) bool {
	if cut == len(m.stages) {
		return true
	}
	if cut < 0 || cut > len(m.stages) {
		return false
	}
	_, ok := m.stages[cut].(*qDense)
	return ok
}

// SnapCut returns the largest valid boundary cut ≤ planned, falling back to
// the all-local split when no earlier stage can serve as a boundary. The
// offload planner plans cuts on the float layer graph; this maps its choice
// onto the integer runtime's stricter boundary rule.
func (m *QModel) SnapCut(planned int) int {
	if planned > len(m.stages) {
		planned = len(m.stages)
	}
	for c := planned; c >= 0; c-- {
		if m.CanCutAt(c) {
			return c
		}
	}
	return len(m.stages)
}

// BoundaryWidth returns the per-example activation count crossing a valid
// boundary cut — the shape contract the wire codec validates against.
func (m *QModel) BoundaryWidth(cut int) (int, error) {
	if cut < 0 || cut >= len(m.stages) {
		return 0, fmt.Errorf("quant: boundary cut %d out of range [0, %d)", cut, len(m.stages))
	}
	d, ok := m.stages[cut].(*qDense)
	if !ok {
		return 0, fmt.Errorf("quant: stage %d is not a dense integer stage, cannot cut there", cut)
	}
	return d.w.Rows, nil
}

// ForwardRange runs stages [lo, hi) on x with the scratch's buffers — the
// device-prefix half of a split. ForwardRange(x, s, 0, NumStages()) is
// ForwardBatch. The result aliases scratch storage, like ForwardBatch.
func (m *QModel) ForwardRange(x *tensor.Tensor, s *QScratch, lo, hi int) *tensor.Tensor {
	if lo < 0 || hi > len(m.stages) || lo > hi {
		panic(fmt.Sprintf("quant: stage range [%d, %d) invalid for %d stages", lo, hi, len(m.stages)))
	}
	if s == nil {
		s = NewQScratch()
	}
	for i := lo; i < hi; i++ {
		x = m.stages[i].run(x, s, i)
	}
	return x
}

// ForwardFromCodes resumes split execution at a valid boundary cut: codes
// holds rows×BoundaryWidth(cut) int8 activation codes (row-major) and scales
// one dynamic activation scale per example row, exactly as produced by
// QuantizeActivationsRows on the device's boundary activations. Stage cut's
// integer kernel consumes the codes directly — no requantization — and the
// remaining stages run as usual, so the result is bit-identical to the
// device having run ForwardBatch locally.
func (m *QModel) ForwardFromCodes(codes []int8, scales []float32, rows, cut int, s *QScratch) (*tensor.Tensor, error) {
	if cut < 0 || cut >= len(m.stages) {
		return nil, fmt.Errorf("quant: boundary cut %d out of range [0, %d)", cut, len(m.stages))
	}
	d, ok := m.stages[cut].(*qDense)
	if !ok {
		return nil, fmt.Errorf("quant: stage %d is not a dense integer stage, cannot resume there", cut)
	}
	if rows < 0 || len(codes) != rows*d.w.Rows {
		return nil, fmt.Errorf("quant: got %d boundary codes, want %d rows × width %d", len(codes), rows, d.w.Rows)
	}
	if len(scales) != rows {
		return nil, fmt.Errorf("quant: got %d boundary scales for %d rows", len(scales), rows)
	}
	if s == nil {
		s = NewQScratch()
	}
	out := s.buffer2(cut, rows, d.w.Cols)
	if d.w.IsPacked() {
		tensor.MatMulInt4(out.Data, codes, d.w.Packed, rows, d.w.Rows, d.w.Cols, scales, d.w.Scales)
	} else {
		tensor.MatMulInt8(out.Data, codes, d.w.Data, rows, d.w.Rows, d.w.Cols, scales, d.w.Scales)
	}
	for i := 0; i < rows; i++ {
		row := out.Data[i*d.w.Cols : (i+1)*d.w.Cols]
		for j := range row {
			row[j] += d.bias[j]
		}
	}
	x := out
	for i := cut + 1; i < len(m.stages); i++ {
		x = m.stages[i].run(x, s, i)
	}
	return x, nil
}
