package quant

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"tinymlops/internal/engine"
	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

// refForward executes a QModel with naive scalar loops: per-example
// activation quantization, a scalar triple-loop int8 matmul for dense
// stages, a direct (non-im2col) integer convolution for conv stages, and
// the layers' own Forward for float stages. Integer accumulation is exact,
// so the blocked kernels must reproduce this reference bit for bit.
func refForward(m *QModel, x *tensor.Tensor) *tensor.Tensor {
	for _, st := range m.stages {
		switch s := st.(type) {
		case *qDense:
			rows := x.Dim(0)
			codes := make([]int8, x.Size())
			scales := make([]float32, rows)
			QuantizeActivationsRows(x, codes, scales)
			out := tensor.New(rows, s.w.Cols)
			for i := 0; i < rows; i++ {
				for j := 0; j < s.w.Cols; j++ {
					var acc int32
					for p := 0; p < s.w.Rows; p++ {
						// code() decodes either storage form, so the packed
						// int4 path is checked against the same reference.
						acc += int32(codes[i*s.w.Rows+p]) * int32(s.w.code(p, j))
					}
					out.Data[i*s.w.Cols+j] = float32(acc)*scales[i]*s.w.Scales[j] + s.bias[j]
				}
			}
			x = out
		case *qConv2D:
			b, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
			oh, ow := s.outHW(h, w)
			ex := s.inC * h * w
			codes := make([]int8, x.Size())
			scales := make([]float32, b)
			QuantizeActivationsRows(x, codes, scales)
			wcodes := s.w
			if s.wp != nil { // decode the packed int4 weights for the reference
				k := s.inC * s.kh * s.kw
				rb := tensor.Int4PackedLen(k)
				wcodes = make([]int8, 0, s.wCount)
				for oc := 0; oc < s.outC; oc++ {
					row, err := tensor.UnpackInt4(s.wp[oc*rb:(oc+1)*rb], k)
					if err != nil {
						panic(err)
					}
					wcodes = append(wcodes, row...)
				}
			}
			out := tensor.New(b, s.outC, oh, ow)
			for n := 0; n < b; n++ {
				for oc := 0; oc < s.outC; oc++ {
					for oi := 0; oi < oh; oi++ {
						for oj := 0; oj < ow; oj++ {
							var acc int32
							for ic := 0; ic < s.inC; ic++ {
								for ki := 0; ki < s.kh; ki++ {
									for kj := 0; kj < s.kw; kj++ {
										si, sj := oi*s.stride+ki-s.pad, oj*s.stride+kj-s.pad
										if si < 0 || si >= h || sj < 0 || sj >= w {
											continue
										}
										wc := wcodes[oc*s.inC*s.kh*s.kw+(ic*s.kh+ki)*s.kw+kj]
										xc := codes[n*ex+(ic*h+si)*w+sj]
										acc += int32(wc) * int32(xc)
									}
								}
							}
							out.Data[((n*s.outC+oc)*oh+oi)*ow+oj] =
								float32(acc)*s.wScales[oc]*scales[n] + s.bias[oc]
						}
					}
				}
			}
			x = out
		case *qFloat:
			x = s.layer.Forward(x, false)
		default:
			panic(fmt.Sprintf("unknown stage %T", st))
		}
	}
	return x
}

// perSample runs every example of x through m.Predict individually and
// concatenates the outputs — the single-sample reference path (mirrors
// nn/batch_test.go's rowByRow).
func perSample(t *testing.T, m *QModel, x *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	n := x.Dim(0)
	es := x.Size() / n
	var out *tensor.Tensor
	for i := 0; i < n; i++ {
		shape := append([]int{1}, x.Shape()[1:]...)
		row := tensor.FromSlice(x.Data[i*es:(i+1)*es], shape...)
		y := m.Predict(row)
		if out == nil {
			out = tensor.New(append([]int{n}, y.Shape()[1:]...)...)
		}
		copy(out.Data[i*y.Size():(i+1)*y.Size()], y.Data)
	}
	return out
}

func mustIdentical(t *testing.T, name string, got, want *tensor.Tensor) {
	t.Helper()
	if !tensor.SameShape(got, want) {
		t.Fatalf("%s: shape %v vs %v", name, got.Shape(), want.Shape())
	}
	for i := range got.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s: element %d differs: %v vs %v (outputs must be bit-identical)",
				name, i, got.Data[i], want.Data[i])
		}
	}
}

// qmodelFixtures returns the (network, input) pairs the bit-exactness
// property is checked over: a dense stack with batch norm, a conv stack,
// and a dense stack fed NaN and signed-zero payloads.
func qmodelFixtures(t *testing.T) []struct {
	name string
	net  *nn.Network
	in   *tensor.Tensor
} {
	t.Helper()
	rng := tensor.NewRNG(91)
	mlp := nn.NewNetwork([]int{12},
		nn.NewDense(12, 24, rng), nn.NewBatchNorm1D(24), nn.NewReLU(),
		nn.NewDropout(0.3, rng), nn.NewDense(24, 16, rng), nn.NewTanh(),
		nn.NewDense(16, 5, rng), nn.NewSoftmax())
	// Train a little so batch-norm running statistics are non-trivial.
	x := tensor.Randn(rng, 1, 96, 12)
	labels := make([]int, 96)
	for i := range labels {
		labels[i] = rng.Intn(5)
	}
	if _, err := nn.Train(mlp, x, labels, nn.TrainConfig{
		Epochs: 2, BatchSize: 16, Optimizer: nn.NewSGD(0.05), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	conv := nn.NewNetwork([]int{1, 10, 10},
		nn.NewConv2D(1, 4, 3, 3, 1, 1, rng), nn.NewReLU(),
		nn.NewMaxPool2D(2, 2), nn.NewConv2D(4, 6, 3, 3, 1, 0, rng), nn.NewReLU(),
		nn.NewFlatten(), nn.NewDense(6*3*3, 4, rng), nn.NewSoftmax())

	weird := tensor.Randn(rng, 1, 7, 12)
	weird.Data[0] = float32(math.NaN())
	weird.Data[5] = float32(math.Copysign(0, -1))
	weird.Data[17] = float32(math.NaN())

	return []struct {
		name string
		net  *nn.Network
		in   *tensor.Tensor
	}{
		{"mlp-batchnorm", mlp, tensor.Randn(rng, 1, 17, 12)},
		{"conv", conv, tensor.Randn(rng, 1, 9, 1, 10, 10)},
		{"nan-negzero", mlp, weird},
	}
}

// TestQModelForwardBatchBitExact is the integer runtime's acceptance
// property: for every fixture and every scheme, ForwardBatch over a
// batch, Predict example by example, and the naive scalar reference all
// produce bit-identical outputs — including scratch reuse, nil scratch,
// NaN/-0 payloads and the empty batch.
func TestQModelForwardBatchBitExact(t *testing.T) {
	for _, fx := range qmodelFixtures(t) {
		for _, scheme := range []Scheme{Int8, Int4, Ternary, Binary} {
			qm, err := NewQModel(fx.net, scheme)
			if err != nil {
				t.Fatalf("%s/%v: %v", fx.name, scheme, err)
			}
			name := fmt.Sprintf("%s/%v", fx.name, scheme)
			want := refForward(qm, fx.in)
			scratch := NewQScratch()
			got := qm.ForwardBatch(fx.in, scratch)
			mustIdentical(t, name+" batched vs scalar reference", got, want)
			// Scratch reuse must not change results.
			mustIdentical(t, name+" scratch reuse", qm.ForwardBatch(fx.in, scratch), want)
			// Nil scratch allocates per call but computes the same values.
			mustIdentical(t, name+" nil scratch", qm.ForwardBatch(fx.in, nil), want)
			// Per-example dynamic quantization makes per-sample Predict
			// bit-identical to the batched pass.
			mustIdentical(t, name+" per-sample Predict", perSample(t, qm, fx.in), want)

			// Empty batches flow through without touching a kernel.
			empty := tensor.New(append([]int{0}, fx.in.Shape()[1:]...)...)
			out := qm.ForwardBatch(empty, scratch)
			if out.Dim(0) != 0 {
				t.Fatalf("%s: empty batch produced %v", name, out.Shape())
			}
		}
	}
}

// TestQModelConcurrentServing drives one shared QModel from 64 goroutines
// with per-goroutine scratches, fanned out over engine pools of 1, 4 and
// 16 workers — the serving topology a fleet round uses. The race detector
// guards the no-state-writes contract; the values guard bit-exactness.
func TestQModelConcurrentServing(t *testing.T) {
	rng := tensor.NewRNG(97)
	net := nn.NewNetwork([]int{8},
		nn.NewDense(8, 32, rng), nn.NewReLU(), nn.NewBatchNorm1D(32), nn.NewDense(32, 3, rng))
	qm, err := NewQModel(net, Int8)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.Randn(rng, 1, 10, 8)
	want := qm.Predict(in)
	for _, workers := range []int{1, 4, 16} {
		eng := engine.New(engine.Config{Workers: workers})
		var mu sync.Mutex
		var diverged string
		err := eng.ForEach(64, func(i int) error {
			scratch := NewQScratch()
			for k := 0; k < 20; k++ {
				got := qm.ForwardBatch(in, scratch)
				for j := range got.Data {
					if math.Float32bits(got.Data[j]) != math.Float32bits(want.Data[j]) {
						mu.Lock()
						diverged = fmt.Sprintf("goroutine %d iteration %d element %d", i, k, j)
						mu.Unlock()
						return nil
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if diverged != "" {
			t.Fatalf("workers=%d: concurrent ForwardBatch diverged at %s", workers, diverged)
		}
	}
}

// opaqueLayer is a layer kind the integer runtime has no kernel for.
type opaqueLayer struct{}

func (opaqueLayer) Kind() string                                        { return "opaque" }
func (opaqueLayer) Forward(x *tensor.Tensor, train bool) *tensor.Tensor { return x }
func (opaqueLayer) Backward(grad *tensor.Tensor) *tensor.Tensor         { return grad }
func (opaqueLayer) Params() []*nn.Param                                 { return nil }
func (opaqueLayer) Describe(in []int) (nn.LayerInfo, error) {
	return nn.LayerInfo{OutShape: append([]int(nil), in...)}, nil
}

// TestNewQModelErrorPaths is the table-driven error contract: float
// schemes and unknown layer kinds are rejected with errors, never lowered
// silently.
func TestNewQModelErrorPaths(t *testing.T) {
	rng := tensor.NewRNG(98)
	plain := nn.NewNetwork([]int{4}, nn.NewDense(4, 2, rng))
	exotic := nn.NewNetwork([]int{4}, nn.NewDense(4, 4, rng), opaqueLayer{}, nn.NewDense(4, 2, rng))
	cases := []struct {
		name   string
		net    *nn.Network
		scheme Scheme
		ok     bool
	}{
		{"float32 scheme rejected", plain, Float32, false},
		{"unsupported layer kind rejected", exotic, Int8, false},
		{"plain dense int8 accepted", plain, Int8, true},
		{"plain dense binary accepted", plain, Binary, true},
	}
	for _, c := range cases {
		qm, err := NewQModel(c.net, c.scheme)
		if c.ok && (err != nil || qm == nil) {
			t.Fatalf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Fatalf("%s: error expected", c.name)
		}
	}
}

// TestQScratchBufferReuse pins the steady-state reuse contract: repeated
// same-shape batches through one scratch hand back the same storage.
func TestQScratchBufferReuse(t *testing.T) {
	rng := tensor.NewRNG(99)
	net := nn.NewNetwork([]int{6}, nn.NewDense(6, 8, rng), nn.NewReLU(), nn.NewDense(8, 3, rng))
	qm, err := NewQModel(net, Int8)
	if err != nil {
		t.Fatal(err)
	}
	s := NewQScratch()
	in := tensor.Randn(rng, 1, 5, 6)
	first := qm.ForwardBatch(in, s)
	second := qm.ForwardBatch(in, s)
	if &first.Data[0] != &second.Data[0] {
		t.Fatal("same-shape batches did not reuse the scratch output buffer")
	}
	// A different batch size regrows cleanly.
	wide := qm.ForwardBatch(tensor.Randn(rng, 1, 11, 6), s)
	if wide.Dim(0) != 11 {
		t.Fatalf("regrown batch shape %v", wide.Shape())
	}
}
