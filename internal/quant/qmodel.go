package quant

import (
	"fmt"

	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

// QModel is a quantized executable derived from an nn.Network: dense and
// convolutional layers run on the blocked integer kernel with dynamically
// quantized activations (one symmetric int8 scale per example, like a
// microcontroller runtime quantizing each incoming sample), everything
// else runs in float32 through the stateless inference fast paths. A
// QModel never writes to itself during inference, so one model may serve
// any number of goroutines as long as each brings its own QScratch.
//
// Numerical contract: every example is quantized and executed
// independently, so ForwardBatch over a batch, Predict row by row, and a
// naive scalar int8 reference all produce bit-identical outputs. Against
// the fake-quantized float reference (FakeQuantizeNetwork at the same
// scheme) the only deviation is dynamic activation quantization: each
// quantized activation differs from its float value by at most half the
// example's activation scale, i.e. absMax(example)/254 per element.
type QModel struct {
	InputShape []int
	Scheme     Scheme

	stages []qStage
}

// qStage is one executable stage of a QModel. run may use s's reusable
// buffers keyed by idx; the returned tensor is valid until the next call
// with the same scratch.
type qStage interface {
	run(x *tensor.Tensor, s *QScratch, idx int) *tensor.Tensor
	sizeBytes() int
}

// QScratch holds the reusable buffers behind QModel.ForwardBatch: one
// float activation buffer per stage plus shared int8 code, im2col and
// scale workspaces, reshape headers and per-stage shape caches. One
// QScratch serves one goroutine and one model; everything grows on first
// use and is reused while shapes repeat, so a steady-state serving loop
// allocates nothing at all — asserted with testing.AllocsPerRun in the
// alloc tests. All per-call caches live here rather than on the stages
// because a QModel is shared read-only across goroutines.
type QScratch struct {
	bufs      []*tensor.Tensor
	hdrs      []*tensor.Tensor // Flatten views aliasing the input's data
	inShapes  [][]int          // per-stage cached input shape (sans batch)
	outShapes [][]int          // per-stage cached Describe output shape
	codes     []int8
	cols      []int8
	rowScales []float32
	colScales []float32
}

// NewQScratch returns an empty scratch space for integer-kernel inference.
func NewQScratch() *QScratch { return &QScratch{} }

// buffer returns the cached float buffer for stage idx reshaped to shape,
// reallocating only when the element count changed.
func (s *QScratch) buffer(idx int, shape []int) *tensor.Tensor {
	for len(s.bufs) <= idx {
		s.bufs = append(s.bufs, nil)
	}
	n := 1
	for _, d := range shape {
		n *= d
	}
	if b := s.bufs[idx]; b != nil && b.Size() == n {
		if !shapeEq(b.Shape(), shape) {
			b = tensor.FromSlice(b.Data, shape...)
			s.bufs[idx] = b
		}
		return b
	}
	b := tensor.New(shape...)
	s.bufs[idx] = b
	return b
}

// buffer2 is buffer for the [r, c] matrix case with an allocation-free
// steady state: while the requested shape repeats, the cached tensor is
// returned untouched.
func (s *QScratch) buffer2(idx, r, c int) *tensor.Tensor {
	for len(s.bufs) <= idx {
		s.bufs = append(s.bufs, nil)
	}
	if b := s.bufs[idx]; b != nil && b.Rank() == 2 && b.Dim(0) == r && b.Dim(1) == c {
		return b
	}
	b := tensor.New(r, c)
	s.bufs[idx] = b
	return b
}

// buffer4 is buffer2 for the [b, c, h, w] feature-map case.
func (s *QScratch) buffer4(idx, n, c, h, w int) *tensor.Tensor {
	for len(s.bufs) <= idx {
		s.bufs = append(s.bufs, nil)
	}
	if b := s.bufs[idx]; b != nil && b.Rank() == 4 &&
		b.Dim(0) == n && b.Dim(1) == c && b.Dim(2) == h && b.Dim(3) == w {
		return b
	}
	b := tensor.New(n, c, h, w)
	s.bufs[idx] = b
	return b
}

// flatView returns a [b, per] tensor aliasing data, reusing the cached
// header while the shape repeats — Flatten without a per-call allocation.
func (s *QScratch) flatView(idx int, data []float32, b, per int) *tensor.Tensor {
	for len(s.hdrs) <= idx {
		s.hdrs = append(s.hdrs, nil)
	}
	if h := s.hdrs[idx]; h != nil && h.Dim(0) == b && h.Dim(1) == per {
		h.Data = data
		return h
	}
	h := tensor.FromSlice(data, b, per)
	s.hdrs[idx] = h
	return h
}

// stageOutShape returns the cached Describe output shape for stage idx,
// recomputing (and caching the input shape) only when the per-example
// input shape changed since the last call.
func (s *QScratch) stageOutShape(idx int, l nn.Layer, x *tensor.Tensor) ([]int, error) {
	for len(s.inShapes) <= idx {
		s.inShapes = append(s.inShapes, nil)
		s.outShapes = append(s.outShapes, nil)
	}
	in := x.Shape()[1:]
	if cached := s.inShapes[idx]; cached != nil && shapeEq(cached, in) {
		return s.outShapes[idx], nil
	}
	info, err := l.Describe(in)
	if err != nil {
		return nil, err
	}
	s.inShapes[idx] = append(s.inShapes[idx][:0], in...)
	s.outShapes[idx] = append(s.outShapes[idx][:0], info.OutShape...)
	return s.outShapes[idx], nil
}

// bufferOut returns the stage buffer for a [b, out...] result, routing the
// common ranks through the allocation-free fast paths.
func (s *QScratch) bufferOut(idx, b int, out []int) *tensor.Tensor {
	switch len(out) {
	case 1:
		return s.buffer2(idx, b, out[0])
	case 3:
		return s.buffer4(idx, b, out[0], out[1], out[2])
	}
	return s.buffer(idx, append([]int{b}, out...))
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// grow8 grows one of the scratch's int8 workspaces to at least n codes.
func grow8(buf *[]int8, n int) []int8 {
	if cap(*buf) < n {
		*buf = make([]int8, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growf grows a float32 workspace to at least n entries.
func growf(buf *[]float32, n int) []float32 {
	if cap(*buf) < n {
		*buf = make([]float32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// qDense runs y = dequant(quant(x) ⊗ Wq) + b on the integer kernel with
// one dynamic activation scale per example row.
type qDense struct {
	w    *QTensor
	bias []float32
}

func (d *qDense) run(x *tensor.Tensor, s *QScratch, idx int) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != d.w.Rows {
		panic(fmt.Sprintf("quant: qdense(%d→%d) got input shape %v", d.w.Rows, d.w.Cols, x.Shape()))
	}
	rows := x.Dim(0)
	codes := grow8(&s.codes, rows*d.w.Rows)
	scales := growf(&s.rowScales, rows)
	QuantizeActivationsRows(x, codes, scales)
	out := s.buffer2(idx, rows, d.w.Cols)
	if d.w.IsPacked() {
		tensor.MatMulInt4(out.Data, codes, d.w.Packed, rows, d.w.Rows, d.w.Cols, scales, d.w.Scales)
	} else {
		tensor.MatMulInt8(out.Data, codes, d.w.Data, rows, d.w.Rows, d.w.Cols, scales, d.w.Scales)
	}
	for i := 0; i < rows; i++ {
		row := out.Data[i*d.w.Cols : (i+1)*d.w.Cols]
		for j := range row {
			row[j] += d.bias[j]
		}
	}
	return out
}

func (d *qDense) sizeBytes() int { return d.w.SizeBytes() + 4*len(d.bias) }

// qConv2D runs a convolution on the integer kernel: each example's
// activations are quantized with one dynamic scale, unrolled to int8
// im2col columns (zero padding is exact in the integer domain), and
// multiplied against per-output-channel quantized kernels.
type qConv2D struct {
	inC, outC   int
	kh, kw      int
	stride, pad int
	w           []int8    // [outC, inC*kh*kw] row-major codes (nil when packed)
	wp          []byte    // packed int4 form of w (tensor.PackInt4Matrix layout)
	wCount      int       // outC * inC*kh*kw, storage-form independent
	wScales     []float32 // per output channel
	bias        []float32
	scheme      Scheme
}

func (c *qConv2D) outHW(h, w int) (int, int) {
	return (h+2*c.pad-c.kh)/c.stride + 1, (w+2*c.pad-c.kw)/c.stride + 1
}

// im2colInt8 unrolls one example's int8 codes [inC, h, w] into a
// [inC*kh*kw, oh*ow] column matrix, zeroing padded taps.
func (c *qConv2D) im2colInt8(cols, x []int8, h, w, oh, ow int) {
	idx := 0
	for ch := 0; ch < c.inC; ch++ {
		plane := x[ch*h*w : (ch+1)*h*w]
		for ki := 0; ki < c.kh; ki++ {
			for kj := 0; kj < c.kw; kj++ {
				row := cols[idx*oh*ow : (idx+1)*oh*ow]
				idx++
				p := 0
				for oi := 0; oi < oh; oi++ {
					si := oi*c.stride + ki - c.pad
					for oj := 0; oj < ow; oj++ {
						sj := oj*c.stride + kj - c.pad
						if si >= 0 && si < h && sj >= 0 && sj < w {
							row[p] = plane[si*w+sj]
						} else {
							row[p] = 0
						}
						p++
					}
				}
			}
		}
	}
}

func (c *qConv2D) run(x *tensor.Tensor, s *QScratch, idx int) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.inC {
		panic(fmt.Sprintf("quant: qconv2d(%d→%d) got input shape %v", c.inC, c.outC, x.Shape()))
	}
	b, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.outHW(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("quant: qconv2d output would be empty for input %v", x.Shape()))
	}
	ex := c.inC * h * w
	k := c.inC * c.kh * c.kw
	codes := grow8(&s.codes, b*ex)
	scales := growf(&s.rowScales, b)
	QuantizeActivationsRows(x, codes, scales)
	cols := grow8(&s.cols, k*oh*ow)
	colScales := growf(&s.colScales, oh*ow)
	out := s.buffer4(idx, b, c.outC, oh, ow)
	for n := 0; n < b; n++ {
		c.im2colInt8(cols, codes[n*ex:(n+1)*ex], h, w, oh, ow)
		for j := range colScales {
			colScales[j] = scales[n]
		}
		dst := out.Data[n*c.outC*oh*ow : (n+1)*c.outC*oh*ow]
		if c.wp != nil {
			tensor.MatMulInt4LHS(dst, c.wp, cols, c.outC, k, oh*ow, c.wScales, colScales)
		} else {
			tensor.MatMulInt8(dst, c.w, cols, c.outC, k, oh*ow, c.wScales, colScales)
		}
		for oc := 0; oc < c.outC; oc++ {
			bias := c.bias[oc]
			seg := dst[oc*oh*ow : (oc+1)*oh*ow]
			for i := range seg {
				seg[i] += bias
			}
		}
	}
	return out
}

func (c *qConv2D) sizeBytes() int {
	wBits := c.wCount * c.scheme.Bits()
	return (wBits+7)/8 + 4*len(c.wScales) + 4*len(c.bias)
}

// inferInto matches the stateless fast-path contract nn layers export; the
// interface is structural, so quant can drive it without nn exporting it.
type inferInto interface {
	InferInto(dst, x *tensor.Tensor)
}

// qFloat wraps a layer that stays in float32 (activation, pooling,
// normalization with frozen statistics, ...). It prefers the layer's
// stateless InferInto fast path into a scratch buffer; shape-only layers
// are handled inline. NewQModel's kind allowlist guarantees every layer
// that reaches here takes one of those stateless paths (the Forward
// fallback is only reachable on a shape mismatch, which panics in the
// layer anyway) — a new nn layer kind must be added to that switch before
// a QModel will carry it, which is where its dispatch gets decided.
type qFloat struct {
	layer nn.Layer
	bytes int
}

func (f *qFloat) run(x *tensor.Tensor, s *QScratch, idx int) *tensor.Tensor {
	b := x.Dim(0)
	switch f.layer.(type) {
	case *nn.Flatten:
		per := 1
		for _, d := range x.Shape()[1:] {
			per *= d
		}
		return s.flatView(idx, x.Data, b, per)
	case *nn.Dropout:
		return x // inverted dropout is the identity at inference time
	}
	if fast, ok := f.layer.(inferInto); ok {
		if out, err := s.stageOutShape(idx, f.layer, x); err == nil {
			dst := s.bufferOut(idx, b, out)
			fast.InferInto(dst, x)
			return dst
		}
	}
	return f.layer.Forward(x, false)
}

func (f *qFloat) sizeBytes() int { return f.bytes }

// quantizeRowChannels quantizes a [rows, cols] matrix with one scale per
// ROW (the per-output-channel layout convolution kernels need), returning
// row-major codes and the row scales. It reuses QuantizeMatrix's
// per-column logic on the transpose so every scheme shares one rounding
// implementation.
func quantizeRowChannels(w *tensor.Tensor, scheme Scheme) ([]int8, []float32, error) {
	rows, cols := w.Dim(0), w.Dim(1)
	wt := tensor.New(cols, rows)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			wt.Set2(j, i, w.At2(i, j))
		}
	}
	qt, err := QuantizeMatrix(wt, scheme)
	if err != nil {
		return nil, nil, err
	}
	codes := make([]int8, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			codes[i*cols+j] = qt.Data[j*rows+i]
		}
	}
	return codes, qt.Scales, nil
}

// floatStageBytes accounts a float stage's parameters at full precision.
func floatStageBytes(l nn.Layer) int {
	total := 0
	for _, p := range l.Params() {
		total += 4 * p.Value.Size()
	}
	return total
}

// NewQModel lowers net into an integer-kernel executable under the scheme:
// dense and convolutional layers quantize their weights (per output
// channel) and run on tensor.MatMulInt8; activations, pooling, batch norm
// (frozen statistics), flatten and dropout execute in float32 through
// their stateless fast paths. Layer kinds outside that set have no kernel
// in the integer runtime and are rejected — the caller falls back to
// fake-quantized float execution, exactly what a device without the
// operator would do.
func NewQModel(net *nn.Network, scheme Scheme) (*QModel, error) {
	if scheme == Float32 {
		return nil, fmt.Errorf("quant: NewQModel requires an integer scheme, got %v", scheme)
	}
	m := &QModel{InputShape: append([]int(nil), net.InputShape...), Scheme: scheme}
	for i, l := range net.Layers() {
		switch v := l.(type) {
		case *nn.Dense:
			qw, err := QuantizeMatrix(v.W.Value, scheme)
			if err != nil {
				return nil, err
			}
			if scheme == Int4 {
				// Int4 weights serve from the packed two-per-byte form, the
				// layout tensor.MatMulInt4 consumes natively.
				if err := qw.PackInt4(); err != nil {
					return nil, err
				}
			}
			bias := append([]float32(nil), v.B.Value.Data...)
			m.stages = append(m.stages, &qDense{w: qw, bias: bias})
		case *nn.Conv2D:
			codes, scales, err := quantizeRowChannels(v.W.Value, scheme)
			if err != nil {
				return nil, err
			}
			st := &qConv2D{
				inC: v.InC, outC: v.OutC, kh: v.KH, kw: v.KW,
				stride: v.Stride, pad: v.Pad,
				w: codes, wCount: len(codes), wScales: scales,
				bias:   append([]float32(nil), v.B.Value.Data...),
				scheme: scheme,
			}
			if scheme == Int4 {
				k := v.InC * v.KH * v.KW
				wp, err := tensor.PackInt4Matrix(codes, v.OutC, k)
				if err != nil {
					return nil, err
				}
				st.wp, st.w = wp, nil
			}
			m.stages = append(m.stages, st)
		case *nn.ReLU, *nn.Tanh, *nn.Sigmoid, *nn.Softmax, *nn.Flatten,
			*nn.MaxPool2D, *nn.BatchNorm1D, *nn.Dropout:
			m.stages = append(m.stages, &qFloat{layer: l, bytes: floatStageBytes(l)})
		default:
			return nil, fmt.Errorf("quant: layer %d (%s) has no integer-runtime kernel", i, l.Kind())
		}
	}
	return m, nil
}

// ForwardBatch runs quantized inference on a [batch, example shape...]
// tensor through reusable scratch buffers: the steady state allocates
// nothing. Every example is quantized with its own dynamic activation
// scale, so the output is bit-identical to running the rows one at a time
// — the property the serving layer's batched admission path relies on. A
// nil scratch allocates fresh buffers; an empty batch returns an empty
// output without touching any kernel. The result aliases scratch storage
// and is valid until the next call with the same QScratch.
func (m *QModel) ForwardBatch(x *tensor.Tensor, s *QScratch) *tensor.Tensor {
	if s == nil {
		s = NewQScratch()
	}
	for i, st := range m.stages {
		x = st.run(x, s, i)
	}
	return x
}

// Predict runs quantized inference on a batch with one-shot buffers.
func (m *QModel) Predict(x *tensor.Tensor) *tensor.Tensor {
	return m.ForwardBatch(x, nil)
}

// SizeBytes returns the total weight footprint of the quantized model.
func (m *QModel) SizeBytes() int {
	total := 0
	for _, s := range m.stages {
		total += s.sizeBytes()
	}
	return total
}

// QuantizeActivations quantizes a float32 batch to int8 with one dynamic
// per-tensor symmetric scale, returning the codes and the scale. Rounding
// is half away from zero; NaN quantizes to 0, and a tensor with no finite
// nonzero magnitude (or an infinite one) falls back to scale 1.
func QuantizeActivations(x *tensor.Tensor) ([]int8, float32) {
	out := make([]int8, x.Size())
	scale := quantizeBlock(x.Data, out)
	return out, scale
}

// QuantizeActivationsRows quantizes each example of a [rows, ...] batch to
// int8 with its own dynamic symmetric scale — the layout the integer
// serving path uses, because it keeps every example's result independent
// of its batch-mates. codes must have x.Size() entries and scales one per
// row. Rounding and edge-case handling match QuantizeActivations.
func QuantizeActivationsRows(x *tensor.Tensor, codes []int8, scales []float32) {
	rows := x.Dim(0)
	if rows == 0 {
		return
	}
	rl := x.Size() / rows
	for r := 0; r < rows; r++ {
		scales[r] = quantizeBlock(x.Data[r*rl:(r+1)*rl], codes[r*rl:(r+1)*rl])
	}
}

// quantizeBlock quantizes one contiguous block with a single symmetric
// scale, writing int8 codes and returning the scale.
func quantizeBlock(data []float32, codes []int8) float32 {
	var absMax float32
	for _, v := range data {
		if v < 0 {
			v = -v
		}
		if v > absMax { // NaN compares false: ignored for the scale
			absMax = v
		}
	}
	scale := absMax / 127
	// Zero blocks and non-finite magnitudes fall back to scale 1: codes
	// stay deterministic (zeros, or saturated ±127 for infinities).
	if !(scale > 0) || scale > maxFinite {
		scale = 1
	}
	inv := 1 / scale
	for i, v := range data {
		c := v * inv
		switch {
		case c != c: // NaN activations quantize to zero
			codes[i] = 0
		case c > 127:
			codes[i] = 127
		case c < -127:
			codes[i] = -127
		case c >= 0: // round half away from zero; -0 lands here and yields 0
			codes[i] = int8(c + 0.5)
		default:
			codes[i] = int8(c - 0.5)
		}
	}
	return scale
}

// maxFinite is math.MaxFloat32; spelled out to keep the hot file's import
// set minimal.
const maxFinite = 0x1.fffffep127

// MatMulInt8 computes dst[i,j] = sx*scales[j] * Σ_k a[i,k]·b[k,j] with
// int32 accumulation — the "hardware supports int8 dot product" fast path
// of experiment E3, now delegating to the blocked kernel in tensor (one
// shared activation scale sx broadcast over the rows).
func MatMulInt8(dst []float32, a, b []int8, m, k, n int, sx float32, scales []float32) {
	rs := make([]float32, m)
	for i := range rs {
		rs[i] = sx
	}
	tensor.MatMulInt8(dst, a, b, m, k, n, rs, scales)
}

// MatMulInt8Emulated computes the same result as MatMulInt8 but the way a
// platform *without* low-bit hardware support has to: every weight is
// dequantized to float32 inside the inner loop before the multiply. It
// exists so E3 can show that low bit width alone buys nothing without
// hardware support (§III-A of the paper).
func MatMulInt8Emulated(dst []float32, a, b []int8, m, k, n int, sx float32, scales []float32) {
	tensor.Parallel(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			drow := dst[i*n : (i+1)*n]
			for j := range drow {
				drow[j] = 0
			}
			for p, av := range arow {
				af := float32(av) * sx
				brow := b[p*n : (p+1)*n]
				for j, bv := range brow {
					drow[j] += af * (float32(bv) * scales[j])
				}
			}
		}
	})
}
