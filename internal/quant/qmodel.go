package quant

import (
	"fmt"

	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

// QModel is a quantized executable derived from an nn.Network: dense layers
// run on the integer kernel with dynamically quantized activations, all
// other layers run in float32. It mirrors what an int8 deployment of an MLP
// looks like on a microcontroller runtime.
type QModel struct {
	InputShape []int
	Scheme     Scheme

	stages []qStage
}

// qStage is one executable stage of a QModel.
type qStage interface {
	run(x *tensor.Tensor) *tensor.Tensor
	sizeBytes() int
}

// qDense runs y = dequant(quant(x) ⊗ Wq) + b on the integer kernel.
type qDense struct {
	w    *QTensor
	bias []float32
}

func (d *qDense) run(x *tensor.Tensor) *tensor.Tensor {
	qx, sx := QuantizeActivations(x)
	rows := x.Dim(0)
	out := tensor.New(rows, d.w.Cols)
	MatMulInt8(out.Data, qx, d.w.Data, rows, d.w.Rows, d.w.Cols, sx, d.w.Scales)
	for i := 0; i < rows; i++ {
		row := out.Data[i*d.w.Cols : (i+1)*d.w.Cols]
		for j := range row {
			row[j] += d.bias[j]
		}
	}
	return out
}

func (d *qDense) sizeBytes() int { return d.w.SizeBytes() + 4*len(d.bias) }

// qFloat wraps a float layer (activation, pooling, flatten, ...).
type qFloat struct {
	layer nn.Layer
	bytes int
}

func (f *qFloat) run(x *tensor.Tensor) *tensor.Tensor { return f.layer.Forward(x, false) }
func (f *qFloat) sizeBytes() int                      { return f.bytes }

// NewQModel quantizes net's dense layers under the scheme and returns an
// integer-kernel executable. Convolutional layers are currently executed in
// float32 with fake-quantized weights (the dominant cost on MLP-scale
// TinyML models is the dense stack).
func NewQModel(net *nn.Network, scheme Scheme) (*QModel, error) {
	if scheme == Float32 {
		return nil, fmt.Errorf("quant: NewQModel requires an integer scheme, got %v", scheme)
	}
	m := &QModel{InputShape: append([]int(nil), net.InputShape...), Scheme: scheme}
	for _, l := range net.Layers() {
		switch v := l.(type) {
		case *nn.Dense:
			qw, err := QuantizeMatrix(v.W.Value, scheme)
			if err != nil {
				return nil, err
			}
			bias := append([]float32(nil), v.B.Value.Data...)
			m.stages = append(m.stages, &qDense{w: qw, bias: bias})
		case *nn.Conv2D:
			qw, err := QuantizeMatrix(v.W.Value, scheme)
			if err != nil {
				return nil, err
			}
			// Run in float with quantized weights; account size at scheme width.
			clone := &nn.Conv2D{InC: v.InC, OutC: v.OutC, KH: v.KH, KW: v.KW,
				Stride: v.Stride, Pad: v.Pad,
				W: &nn.Param{Name: "weight", Value: qw.Dequantize(), Grad: tensor.New(v.W.Value.Shape()...)},
				B: &nn.Param{Name: "bias", Value: v.B.Value.Clone(), Grad: tensor.New(v.B.Value.Shape()...)}}
			m.stages = append(m.stages, &qFloat{layer: clone, bytes: qw.SizeBytes() + 4*v.B.Value.Size()})
		default:
			m.stages = append(m.stages, &qFloat{layer: l, bytes: 0})
		}
	}
	return m, nil
}

// Predict runs quantized inference on a batch.
func (m *QModel) Predict(x *tensor.Tensor) *tensor.Tensor {
	for _, s := range m.stages {
		x = s.run(x)
	}
	return x
}

// SizeBytes returns the total weight footprint of the quantized model.
func (m *QModel) SizeBytes() int {
	total := 0
	for _, s := range m.stages {
		total += s.sizeBytes()
	}
	return total
}

// QuantizeActivations quantizes a float32 batch to int8 with one dynamic
// per-tensor symmetric scale, returning the codes and the scale.
func QuantizeActivations(x *tensor.Tensor) ([]int8, float32) {
	absMax := x.AbsMax()
	scale := absMax / 127
	if scale == 0 {
		scale = 1
	}
	out := make([]int8, x.Size())
	inv := 1 / scale
	for i, v := range x.Data {
		c := v * inv
		if c > 127 {
			c = 127
		} else if c < -127 {
			c = -127
		}
		// round half away from zero
		if c >= 0 {
			out[i] = int8(c + 0.5)
		} else {
			out[i] = int8(c - 0.5)
		}
	}
	return out, scale
}

// MatMulInt8 computes dst[i,j] = sx*scales[j] * Σ_k a[i,k]·b[k,j] with
// int32 accumulation — the "hardware supports int8 dot product" fast path
// of experiment E3.
func MatMulInt8(dst []float32, a, b []int8, m, k, n int, sx float32, scales []float32) {
	tensor.Parallel(m, func(lo, hi int) {
		acc := make([]int32, n) // one accumulator row per worker, reused
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			drow := dst[i*n : (i+1)*n]
			for j := range acc {
				acc[j] = 0
			}
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := b[p*n : (p+1)*n]
				a32 := int32(av)
				for j, bv := range brow {
					acc[j] += a32 * int32(bv)
				}
			}
			for j := range drow {
				drow[j] = float32(acc[j]) * sx * scales[j]
			}
		}
	})
}

// MatMulInt8Emulated computes the same result as MatMulInt8 but the way a
// platform *without* low-bit hardware support has to: every weight is
// dequantized to float32 inside the inner loop before the multiply. It
// exists so E3 can show that low bit width alone buys nothing without
// hardware support (§III-A of the paper).
func MatMulInt8Emulated(dst []float32, a, b []int8, m, k, n int, sx float32, scales []float32) {
	tensor.Parallel(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			drow := dst[i*n : (i+1)*n]
			for j := range drow {
				drow[j] = 0
			}
			for p, av := range arow {
				af := float32(av) * sx
				brow := b[p*n : (p+1)*n]
				for j, bv := range brow {
					drow[j] += af * (float32(bv) * scales[j])
				}
			}
		}
	})
}
