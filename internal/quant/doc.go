// Package quant derives the optimized model variants of §III-A: post-
// training quantization to int8/int4/ternary/binary with per-tensor
// scales (stored as exact float32 artifacts, shipped at packed size),
// integer-kernel executables (QModel) for targets with native low-bit
// support, fake-quantization for accuracy evaluation, global magnitude
// pruning, and teacher→student distillation for recovering accuracy in
// the smallest variants.
//
// The paper's pipeline observation is that every published model fans
// out into a matrix of precision × sparsity variants, and which one a
// device gets is a deployment-time decision, not a training-time one:
// the registry (internal/registry) calls into this package on publish to
// materialize the matrix, and per-device selection (internal/selector)
// scores the results against each device's memory, latency and native
// bit-width support — where §III-A's warning lands that low precision
// buys nothing without hardware kernels (see E3).
package quant
