// Package quant derives the optimized model variants of §III-A and
// executes them: post-training quantization to int8/int4/ternary/binary
// with per-channel scales (stored as exact float32 artifacts, shipped at
// packed size), the QModel integer runtime, fake-quantization for
// accuracy evaluation, global magnitude pruning, and teacher→student
// distillation for recovering accuracy in the smallest variants.
//
// QModel is a first-class servable, not an evaluation aid: dense and
// convolutional layers run on the blocked integer kernels in
// internal/tensor with dynamic per-example activation quantization, and
// ForwardBatch serves whole bursts through reusable QScratch buffers —
// allocation-free in the steady state, bit-identical to per-example
// Predict, and safe for any number of goroutines over one shared model
// (one scratch each). Int8 variants execute on MatMulInt8; int4 variants
// store their weights packed two codes per byte (QTensor.PackInt4) and
// execute on the packed MatMulInt4/MatMulInt4LHS kernels without ever
// unpacking, so a 4-bit deployment's flash, RAM and kernel all see the
// 4-bit form. The serving layer (internal/core) instantiates a QModel
// automatically whenever the selected variant's scheme has native
// hardware support on the target device, so the variant matrix governs
// the executing kernels, not just artifact sizes.
//
// The paper's pipeline observation is that every published model fans
// out into a matrix of precision × sparsity variants, and which one a
// device gets is a deployment-time decision, not a training-time one:
// the registry (internal/registry) calls into this package on publish to
// materialize the matrix, and per-device selection (internal/selector)
// scores the results against each device's memory, latency and native
// bit-width support — where §III-A's warning lands that low precision
// buys nothing without hardware kernels (see E3, and the emulation
// penalty devices without a bit width pay at serving time).
package quant
