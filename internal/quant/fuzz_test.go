package quant

import (
	"encoding/binary"
	"math"
	"testing"

	"tinymlops/internal/tensor"
)

// floatsFrom reinterprets the fuzz input as raw IEEE-754 bit patterns:
// every pattern — NaNs, infinities, signed zeros, denormals — is a legal
// activation or weight.
func floatsFrom(raw []byte) []float32 {
	out := make([]float32, 0, len(raw)/4)
	for i := 0; i+4 <= len(raw); i += 4 {
		out = append(out, math.Float32frombits(binary.LittleEndian.Uint32(raw[i:i+4])))
	}
	return out
}

// FuzzQuantizeActivations feeds arbitrary bit patterns to the dynamic
// activation quantizer and checks its serving-path contract: codes stay
// in the symmetric int8 range, scales stay positive and finite, NaN maps
// to the zero code, rounding error is bounded by half a step, and — the
// property the batched admission path rests on — quantizing a batch row
// by row is bit-identical to quantizing each row alone.
func FuzzQuantizeActivations(f *testing.F) {
	nan := math.Float32bits(float32(math.NaN()))
	negZero := math.Float32bits(float32(math.Copysign(0, -1)))
	inf := math.Float32bits(float32(math.Inf(1)))
	seed := func(vals ...uint32) []byte {
		out := make([]byte, 0, 4*len(vals))
		for _, v := range vals {
			out = binary.LittleEndian.AppendUint32(out, v)
		}
		return out
	}
	f.Add(seed(0x3f800000, 0xbf800000, 0x3f000000, 0x3f800000), uint8(2)) // ±1, 0.5
	f.Add(seed(nan, negZero, inf, 0x00000001), uint8(1))                  // NaN, -0, +Inf, denormal
	f.Add(seed(0, 0, 0, 0, 0, 0), uint8(3))                               // all-zero rows
	f.Add([]byte{}, uint8(0))

	f.Fuzz(func(t *testing.T, raw []byte, rowsByte uint8) {
		vals := floatsFrom(raw)
		if len(vals) == 0 {
			vals = []float32{0}
		}
		rows := int(rowsByte%8) + 1
		if rows > len(vals) {
			rows = 1
		}
		k := len(vals) / rows
		vals = vals[:rows*k]
		x := tensor.FromSlice(vals, rows, k)
		codes := make([]int8, rows*k)
		scales := make([]float32, rows)
		QuantizeActivationsRows(x, codes, scales)

		for r := 0; r < rows; r++ {
			s := scales[r]
			if !(s > 0) || math.IsInf(float64(s), 0) || s != s {
				t.Fatalf("row %d: scale %v not positive finite", r, s)
			}
			inv := 1 / s
			for i := 0; i < k; i++ {
				v := vals[r*k+i]
				c := codes[r*k+i]
				if c < -127 || c > 127 {
					t.Fatalf("code %d outside symmetric range", c)
				}
				if v != v && c != 0 {
					t.Fatalf("NaN quantized to %d, want 0", c)
				}
				if scaled := v * inv; scaled == scaled && scaled >= -127 && scaled <= 127 {
					if diff := math.Abs(float64(c) - float64(scaled)); diff > 0.5 {
						t.Fatalf("row %d elem %d: code %d for %v (scaled %v), error %v > 0.5", r, i, c, v, scaled, diff)
					}
				}
			}
			// Row independence: a row quantized alone must reproduce the
			// batch result bit for bit.
			alone := tensor.FromSlice(vals[r*k:(r+1)*k], 1, k)
			aCodes := make([]int8, k)
			aScale := make([]float32, 1)
			QuantizeActivationsRows(alone, aCodes, aScale)
			if math.Float32bits(aScale[0]) != math.Float32bits(s) {
				t.Fatalf("row %d: solo scale %v != batch scale %v", r, aScale[0], s)
			}
			for i := range aCodes {
				if aCodes[i] != codes[r*k+i] {
					t.Fatalf("row %d elem %d: solo code %d != batch code %d", r, i, aCodes[i], codes[r*k+i])
				}
			}
		}
		// The per-tensor quantizer is the one-row special case.
		if rows == 1 {
			tCodes, tScale := QuantizeActivations(x)
			if math.Float32bits(tScale) != math.Float32bits(scales[0]) {
				t.Fatalf("per-tensor scale %v != per-row scale %v", tScale, scales[0])
			}
			for i := range tCodes {
				if tCodes[i] != codes[i] {
					t.Fatalf("per-tensor code %d != per-row code %d at %d", tCodes[i], codes[i], i)
				}
			}
		}
	})
}

// FuzzQTensorRoundTrip feeds arbitrary bit-pattern weight matrices to
// QuantizeMatrix under every scheme: codes must stay inside the scheme's
// range (binary never zero) with positive finite scales, and — the
// property integer serving rests on, since deployments re-quantize the
// fake-quantized registry artifact — for finite inputs a
// dequantize→requantize round trip must reproduce the int8/int4 codes
// exactly.
func FuzzQTensorRoundTrip(f *testing.F) {
	nan := math.Float32bits(float32(math.NaN()))
	negZero := math.Float32bits(float32(math.Copysign(0, -1)))
	inf := math.Float32bits(float32(math.Inf(-1)))
	seed := func(vals ...uint32) []byte {
		out := make([]byte, 0, 4*len(vals))
		for _, v := range vals {
			out = binary.LittleEndian.AppendUint32(out, v)
		}
		return out
	}
	f.Add(seed(0x3f800000, 0xbf800000, 0x3e99999a, 0x40490fdb), uint8(2), uint8(2), uint8(0))
	f.Add(seed(nan, negZero, inf, 0x7f7fffff), uint8(2), uint8(2), uint8(1))
	f.Add(seed(0, 0, 0, 0), uint8(4), uint8(1), uint8(3))
	f.Add([]byte{1, 2, 3}, uint8(0), uint8(0), uint8(2))

	schemes := []Scheme{Int8, Int4, Ternary, Binary}
	f.Fuzz(func(t *testing.T, raw []byte, rowsByte, colsByte, schemeByte uint8) {
		rows := int(rowsByte%8) + 1
		cols := int(colsByte%8) + 1
		scheme := schemes[int(schemeByte)%len(schemes)]
		vals := floatsFrom(raw)
		w := tensor.New(rows, cols)
		finite := true
		for i := range w.Data {
			if len(vals) > 0 {
				w.Data[i] = vals[i%len(vals)]
			}
			if f64 := float64(w.Data[i]); math.IsNaN(f64) || math.IsInf(f64, 0) {
				finite = false
			}
		}
		q, err := QuantizeMatrix(w, scheme)
		if err != nil {
			t.Fatalf("QuantizeMatrix(%v): %v", scheme, err)
		}
		mc := int8(maxCode(scheme))
		for i, c := range q.Data {
			if c > mc || c < -mc {
				t.Fatalf("%v code %d at %d outside ±%d", scheme, c, i, mc)
			}
			if scheme == Binary && c == 0 {
				t.Fatal("binary scheme produced a zero code")
			}
		}
		if !finite || (scheme != Int8 && scheme != Int4) {
			return
		}
		for j, s := range q.Scales {
			if !(s > 0) || math.IsInf(float64(s), 0) {
				t.Fatalf("column %d: scale %v not positive finite", j, s)
			}
		}
		// Requantizing the dequantized matrix reproduces the codes: this
		// is why a QModel built from the fake-quantized registry artifact
		// carries the artifact's exact integer weights. The property holds
		// for scales inside the normal float32 range with headroom: a
		// denormal scale loses mantissa bits in the division, and a scale
		// within 127× of overflow can dequantize to ±Inf — no physical
		// weight lives at either extreme, so both ends are exempt.
		again, err := QuantizeMatrix(q.Dequantize(), scheme)
		if err != nil {
			t.Fatal(err)
		}
		const minNormal = 1.1754944e-38
		const maxSafe = math.MaxFloat32 / 128
		safe := func(s float32) bool { return s >= minNormal && s <= maxSafe }
		for i, c := range q.Data {
			if !safe(q.Scales[i%cols]) {
				continue
			}
			if again.Data[i] != c {
				t.Fatalf("code %d changed across dequantize→requantize: %d -> %d", i, c, again.Data[i])
			}
		}
		for j, s := range q.Scales {
			if !safe(s) {
				continue
			}
			if diff := math.Abs(float64(again.Scales[j]-s)) / float64(s); diff > 1e-5 {
				t.Fatalf("scale %d drifted %v across round trip", j, diff)
			}
		}
	})
}
