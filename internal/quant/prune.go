package quant

import (
	"fmt"
	"sort"

	"tinymlops/internal/nn"
)

// MagnitudePrune zeroes the fraction of weight entries with the smallest
// absolute value, computed globally across all dense and convolutional
// weight matrices (biases are never pruned). It modifies net in place and
// returns the achieved sparsity (fraction of zeroed weight entries).
//
// Pruning is one of the §II efficiency techniques the optimization pipeline
// applies when deriving variants, and the distortion E8 uses to attack
// watermarks.
func MagnitudePrune(net *nn.Network, fraction float64) (float64, error) {
	if fraction < 0 || fraction >= 1 {
		return 0, fmt.Errorf("quant: prune fraction %v out of [0,1)", fraction)
	}
	var weights []*nn.Param
	total := 0
	for _, l := range net.Layers() {
		for _, p := range l.Params() {
			if p.Name == "weight" {
				weights = append(weights, p)
				total += p.Value.Size()
			}
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("quant: network has no weight matrices to prune")
	}
	if fraction == 0 {
		return currentSparsity(weights, total), nil
	}
	mags := make([]float32, 0, total)
	for _, p := range weights {
		for _, v := range p.Value.Data {
			if v < 0 {
				v = -v
			}
			mags = append(mags, v)
		}
	}
	sort.Slice(mags, func(i, j int) bool { return mags[i] < mags[j] })
	cut := mags[int(float64(total)*fraction)]
	zeroed := 0
	for _, p := range weights {
		for i, v := range p.Value.Data {
			a := v
			if a < 0 {
				a = -a
			}
			if a <= cut {
				p.Value.Data[i] = 0
			}
			if p.Value.Data[i] == 0 {
				zeroed++
			}
		}
	}
	return float64(zeroed) / float64(total), nil
}

func currentSparsity(weights []*nn.Param, total int) float64 {
	zeroed := 0
	for _, p := range weights {
		zeroed += p.Value.Size() - p.Value.CountNonZero()
	}
	return float64(zeroed) / float64(total)
}

// Sparsity returns the fraction of zero entries across all weight matrices.
func Sparsity(net *nn.Network) float64 {
	var weights []*nn.Param
	total := 0
	for _, l := range net.Layers() {
		for _, p := range l.Params() {
			if p.Name == "weight" {
				weights = append(weights, p)
				total += p.Value.Size()
			}
		}
	}
	if total == 0 {
		return 0
	}
	return currentSparsity(weights, total)
}
