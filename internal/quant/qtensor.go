// Package quant implements the model-optimization pipeline of §III-A of the
// TinyMLOps paper: post-training quantization at 8/4/2(ternary)/1(binary)
// bits, an int8 inference engine, magnitude pruning and knowledge
// distillation. The registry uses it to derive per-device variants from a
// base model; experiment E2 sweeps its schemes and E3 measures its kernels
// with and without simulated hardware support.
package quant

import (
	"fmt"
	"math"

	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

// Scheme selects a weight precision.
type Scheme int

// Supported quantization schemes, from full precision down to binary.
const (
	Float32 Scheme = iota
	Int8
	Int4
	Ternary // 2-bit {-1, 0, +1} with a learned scale (TWN-style)
	Binary  // 1-bit {-1, +1} with a mean-magnitude scale (BWN-style)
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case Float32:
		return "float32"
	case Int8:
		return "int8"
	case Int4:
		return "int4"
	case Ternary:
		return "ternary"
	case Binary:
		return "binary"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Bits returns the storage width in bits per weight.
func (s Scheme) Bits() int {
	switch s {
	case Float32:
		return 32
	case Int8:
		return 8
	case Int4:
		return 4
	case Ternary:
		return 2
	case Binary:
		return 1
	default:
		return 32
	}
}

// ParseScheme converts a string name to a Scheme.
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "float32", "fp32", "32":
		return Float32, nil
	case "int8", "8":
		return Int8, nil
	case "int4", "4":
		return Int4, nil
	case "ternary", "2":
		return Ternary, nil
	case "binary", "1":
		return Binary, nil
	default:
		return Float32, fmt.Errorf("quant: unknown scheme %q", name)
	}
}

// QTensor is a quantized weight matrix with per-output-channel symmetric
// scales: w ≈ Data[k,j] * Scales[j].
type QTensor struct {
	Rows, Cols int
	// Data holds the quantized integer codes row-major, one int8 per code.
	// For sub-int8 schemes the codes occupy the low bits of each int8; size
	// accounting always uses the scheme's nominal width. Data is nil when
	// the tensor is in packed form (see Packed).
	Data []int8
	// Packed is the storage-density form for Int4: two signed 4-bit codes
	// per byte with byte-aligned rows (tensor.PackInt4Matrix layout), fed
	// directly to the packed matmul kernels. Exactly one of Data and Packed
	// is non-nil; PackInt4/UnpackInt4 convert between the two forms.
	Packed []byte
	Scales []float32 // length Cols (per output channel)
	Scheme Scheme
}

// IsPacked reports whether the tensor holds its codes in the packed
// two-per-byte int4 form.
func (q *QTensor) IsPacked() bool { return q.Packed != nil }

// PackInt4 converts an Int4 tensor from one-code-per-int8 form to the packed
// two-codes-per-byte form consumed by tensor.MatMulInt4. It is a no-op on an
// already-packed tensor and an error for any other scheme (wider codes do
// not fit a nibble; ternary/binary have cheaper encodings of their own).
func (q *QTensor) PackInt4() error {
	if q.IsPacked() {
		return nil
	}
	if q.Scheme != Int4 {
		return fmt.Errorf("quant: PackInt4 on %v tensor", q.Scheme)
	}
	p, err := tensor.PackInt4Matrix(q.Data, q.Rows, q.Cols)
	if err != nil {
		return err
	}
	q.Packed, q.Data = p, nil
	return nil
}

// UnpackInt4 converts a packed tensor back to one-code-per-int8 form. It is
// a no-op on an unpacked tensor.
func (q *QTensor) UnpackInt4() error {
	if !q.IsPacked() {
		return nil
	}
	rb := tensor.Int4PackedLen(q.Cols)
	codes := make([]int8, q.Rows*q.Cols)
	for r := 0; r < q.Rows; r++ {
		row, err := tensor.UnpackInt4(q.Packed[r*rb:(r+1)*rb], q.Cols)
		if err != nil {
			return err
		}
		copy(codes[r*q.Cols:], row)
	}
	q.Data, q.Packed = codes, nil
	return nil
}

// code returns the integer code at (i, j) in either storage form.
func (q *QTensor) code(i, j int) int8 {
	if !q.IsPacked() {
		return q.Data[i*q.Cols+j]
	}
	by := q.Packed[i*tensor.Int4PackedLen(q.Cols)+j/2]
	if j&1 == 0 {
		return int8(by<<4) >> 4
	}
	return int8(by) >> 4
}

// maxCode returns the largest magnitude representable by the scheme.
func maxCode(s Scheme) float32 {
	switch s {
	case Int8:
		return 127
	case Int4:
		return 7
	default:
		return 1
	}
}

// QuantizeMatrix quantizes a [rows, cols] float32 matrix with
// per-output-channel (column) scales under the given scheme.
func QuantizeMatrix(w *tensor.Tensor, scheme Scheme) (*QTensor, error) {
	if w.Rank() != 2 {
		return nil, fmt.Errorf("quant: QuantizeMatrix needs 2D tensor, got %v", w.Shape())
	}
	if scheme == Float32 {
		return nil, fmt.Errorf("quant: QuantizeMatrix called with float32 scheme")
	}
	rows, cols := w.Dim(0), w.Dim(1)
	q := &QTensor{Rows: rows, Cols: cols, Data: make([]int8, rows*cols),
		Scales: make([]float32, cols), Scheme: scheme}
	switch scheme {
	case Int8, Int4:
		mc := maxCode(scheme)
		for j := 0; j < cols; j++ {
			var absMax float32
			for i := 0; i < rows; i++ {
				v := w.At2(i, j)
				if v < 0 {
					v = -v
				}
				if v > absMax { // NaN compares false: ignored for the scale
					absMax = v
				}
			}
			scale := absMax / mc
			// All-zero columns and non-finite magnitudes fall back to
			// scale 1: codes stay deterministic (zeros, or saturated ±mc).
			if !(scale > 0) || math.IsInf(float64(scale), 0) {
				scale = 1
			}
			q.Scales[j] = scale
			for i := 0; i < rows; i++ {
				code := float64(w.At2(i, j) / scale)
				c := math.Round(code)
				switch {
				case c != c: // NaN weights quantize to zero
					c = 0
				case c > float64(mc):
					c = float64(mc)
				case c < -float64(mc):
					c = -float64(mc)
				}
				q.Data[i*cols+j] = int8(c)
			}
		}
	case Ternary:
		// TWN: threshold Δ = 0.7·mean(|w|) per channel; scale = mean |w|
		// over entries above the threshold.
		for j := 0; j < cols; j++ {
			var meanAbs float64
			for i := 0; i < rows; i++ {
				meanAbs += math.Abs(float64(w.At2(i, j)))
			}
			meanAbs /= float64(rows)
			delta := 0.7 * meanAbs
			var sum float64
			var count int
			for i := 0; i < rows; i++ {
				v := float64(w.At2(i, j))
				if math.Abs(v) > delta {
					sum += math.Abs(v)
					count++
				}
			}
			scale := 1.0
			if count > 0 {
				scale = sum / float64(count)
			}
			q.Scales[j] = float32(scale)
			for i := 0; i < rows; i++ {
				v := float64(w.At2(i, j))
				switch {
				case v > delta:
					q.Data[i*cols+j] = 1
				case v < -delta:
					q.Data[i*cols+j] = -1
				default:
					q.Data[i*cols+j] = 0
				}
			}
		}
	case Binary:
		// BWN: w ≈ sign(w)·mean(|w|) per channel.
		for j := 0; j < cols; j++ {
			var meanAbs float64
			for i := 0; i < rows; i++ {
				meanAbs += math.Abs(float64(w.At2(i, j)))
			}
			meanAbs /= float64(rows)
			if meanAbs == 0 {
				meanAbs = 1
			}
			q.Scales[j] = float32(meanAbs)
			for i := 0; i < rows; i++ {
				if w.At2(i, j) >= 0 {
					q.Data[i*cols+j] = 1
				} else {
					q.Data[i*cols+j] = -1
				}
			}
		}
	default:
		return nil, fmt.Errorf("quant: unsupported scheme %v", scheme)
	}
	return q, nil
}

// Dequantize reconstructs the float32 approximation of the matrix.
func (q *QTensor) Dequantize() *tensor.Tensor {
	out := tensor.New(q.Rows, q.Cols)
	for i := 0; i < q.Rows; i++ {
		for j := 0; j < q.Cols; j++ {
			out.Set2(i, j, float32(q.code(i, j))*q.Scales[j])
		}
	}
	return out
}

// SizeBytes returns the storage footprint at the scheme's nominal bit width
// (packed), plus the per-channel scales. It is storage-form independent:
// Rows·Cols codes at the nominal width, whether or not they are physically
// packed right now.
func (q *QTensor) SizeBytes() int {
	wBits := q.Rows * q.Cols * q.Scheme.Bits()
	return (wBits+7)/8 + 4*len(q.Scales)
}

// QuantizationError returns the mean absolute reconstruction error
// |w - dequant(quant(w))| of quantizing w under the scheme.
func QuantizationError(w *tensor.Tensor, scheme Scheme) (float64, error) {
	q, err := QuantizeMatrix(w, scheme)
	if err != nil {
		return 0, err
	}
	d := q.Dequantize()
	var sum float64
	for i := range w.Data {
		sum += math.Abs(float64(w.Data[i] - d.Data[i]))
	}
	return sum / float64(len(w.Data)), nil
}

// FakeQuantizeNetwork returns a deep copy of net whose dense and
// convolutional weights are replaced by their quantize-dequantize
// approximation under the scheme (biases stay float32, the standard
// practice). The copy runs on the float engine, which makes it ideal for
// accuracy evaluation of low-bit variants; use NewQModel for integer-kernel
// execution.
func FakeQuantizeNetwork(net *nn.Network, scheme Scheme) (*nn.Network, error) {
	clone := net.Clone()
	if scheme == Float32 {
		return clone, nil
	}
	for _, l := range clone.Layers() {
		switch v := l.(type) {
		case *nn.Dense:
			q, err := QuantizeMatrix(v.W.Value, scheme)
			if err != nil {
				return nil, err
			}
			v.W.Value.CopyFrom(q.Dequantize())
		case *nn.Conv2D:
			q, err := QuantizeMatrix(v.W.Value, scheme)
			if err != nil {
				return nil, err
			}
			v.W.Value.CopyFrom(q.Dequantize())
		}
	}
	return clone, nil
}

// NetworkSizeBytes returns the serialized weight footprint of net if its
// weight matrices were stored at the scheme's bit width (activations and
// biases at float32).
func NetworkSizeBytes(net *nn.Network, scheme Scheme) int {
	total := 0
	for _, l := range net.Layers() {
		for _, p := range l.Params() {
			if p.Name == "weight" && scheme != Float32 {
				bits := p.Value.Size() * scheme.Bits()
				total += (bits + 7) / 8
				// per-channel scales
				sh := p.Value.Shape()
				total += 4 * sh[len(sh)-1]
			} else {
				total += 4 * p.Value.Size()
			}
		}
	}
	return total
}
