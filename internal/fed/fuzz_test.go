package fed

import (
	"encoding/binary"
	"math"
	"testing"

	"tinymlops/internal/tensor"
)

// bytesToUpdate reinterprets fuzz bytes as a float32 vector (any bit
// pattern — including NaN, ±Inf, -0 and subnormals — is a legal update).
func bytesToUpdate(data []byte) []float32 {
	u := make([]float32, len(data)/4)
	for i := range u {
		u[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
	}
	return u
}

// FuzzMaskUpdate throws hostile updates, indices and mask magnitudes at
// both mask families. Invariants: invalid (idx, seeds, maskStd) combos
// error instead of panicking; the float family preserves length; the
// fixed family cancels bit-exactly through an Aggregator for every input.
func FuzzMaskUpdate(f *testing.F) {
	nan := math.Float32bits(float32(math.NaN()))
	negZero := math.Float32bits(float32(math.Copysign(0, -1)))
	seed4 := make([]byte, 16)
	binary.LittleEndian.PutUint32(seed4[0:], nan)
	binary.LittleEndian.PutUint32(seed4[4:], negZero)
	binary.LittleEndian.PutUint32(seed4[8:], math.Float32bits(float32(math.Inf(-1))))
	binary.LittleEndian.PutUint32(seed4[12:], math.Float32bits(1e30))
	f.Add([]byte{}, 0, uint8(0), float32(1), uint64(1))        // empty update
	f.Add(seed4, 0, uint8(3), float32(100), uint64(2))         // NaN/-0/Inf coords
	f.Add(seed4, 7, uint8(3), float32(1), uint64(3))           // out-of-range idx
	f.Add(seed4, 1, uint8(3), float32(math.NaN()), uint64(4))  // NaN maskStd
	f.Add(seed4, 1, uint8(3), float32(math.Inf(1)), uint64(5)) // Inf maskStd
	f.Add(seed4[:13], 2, uint8(3), float32(10), uint64(6))     // trailing bytes
	f.Add(seed4, -1, uint8(2), float32(10), uint64(7))         // negative idx
	f.Fuzz(func(t *testing.T, data []byte, idx int, nPeers uint8, maskStd float32, seed uint64) {
		n := int(nPeers%8) + 1
		seeds := NewPairwiseSeeds(tensor.NewRNG(seed), n)
		update := bytesToUpdate(data)

		masked, err := MaskUpdate(update, idx, seeds, maskStd)
		validIdx := idx >= 0 && idx < n
		stdOK := !math.IsNaN(float64(maskStd)) && !math.IsInf(float64(maskStd), 0)
		if validIdx && stdOK {
			if err != nil {
				t.Fatalf("valid input rejected: %v", err)
			}
			if len(masked) != len(update) {
				t.Fatalf("mask changed length %d -> %d", len(update), len(masked))
			}
		} else if err == nil {
			t.Fatalf("invalid input accepted (idx=%d n=%d std=%v)", idx, n, maskStd)
		}

		// Fixed family: quantize the same hostile floats, mask every
		// participant, and require exact cancellation.
		if len(update) == 0 {
			return
		}
		q := quantizeFixed(update)
		agg, err := NewAggregator("fuzz", seeds, len(q))
		if err != nil {
			t.Fatal(err)
		}
		want := make([]int64, len(q))
		for i := 0; i < n; i++ {
			m, err := MaskFixed(q, i, seeds)
			if err != nil {
				t.Fatal(err)
			}
			if err := agg.Submit(i, m, 1); err != nil {
				t.Fatal(err)
			}
			addInto(want, q)
		}
		got, samples, err := agg.Unmask()
		if err != nil {
			t.Fatal(err)
		}
		if samples != int64(n) {
			t.Fatalf("samples %d != %d", samples, n)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("coordinate %d: masked %d != plain %d", k, got[k], want[k])
			}
		}
	})
}

// FuzzCodecRoundTrip drives every update codec with arbitrary float bit
// patterns. Invariants: Encode never panics; Decode(Encode(u), len(u))
// returns exactly len(u) finite-or-preserved values; the lossless codec
// is bit-exact; Decode of a truncated payload errors instead of crashing.
func FuzzCodecRoundTrip(f *testing.F) {
	hostile := make([]byte, 20)
	binary.LittleEndian.PutUint32(hostile[0:], math.Float32bits(float32(math.NaN())))
	binary.LittleEndian.PutUint32(hostile[4:], math.Float32bits(float32(math.Copysign(0, -1))))
	binary.LittleEndian.PutUint32(hostile[8:], math.Float32bits(float32(math.Inf(1))))
	binary.LittleEndian.PutUint32(hostile[12:], math.Float32bits(-1e-40)) // subnormal
	binary.LittleEndian.PutUint32(hostile[16:], math.Float32bits(3.5))
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Add(hostile, uint8(1), uint8(0))
	f.Add(hostile, uint8(2), uint8(4))
	f.Add(hostile, uint8(3), uint8(19)) // truncation cut
	f.Add(hostile[:7], uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, which uint8, cut uint8) {
		codecs := []Codec{NoneCodec{}, Int8Codec{}, TernaryCodec{}, TopKCodec{Ratio: 0.3}}
		codec := codecs[int(which)%len(codecs)]
		update := bytesToUpdate(data)

		payload, err := codec.Encode(update)
		if err != nil {
			return // a codec may reject an update, never panic
		}
		decoded, err := codec.Decode(payload, len(update))
		if err != nil {
			t.Fatalf("%s: decode of own payload failed: %v", codec.Name(), err)
		}
		if len(decoded) != len(update) {
			t.Fatalf("%s: round trip %d -> %d values", codec.Name(), len(update), len(decoded))
		}
		if _, ok := codec.(NoneCodec); ok {
			for k := range update {
				if math.Float32bits(decoded[k]) != math.Float32bits(update[k]) {
					t.Fatalf("lossless codec mangled coordinate %d: %x != %x",
						k, math.Float32bits(decoded[k]), math.Float32bits(update[k]))
				}
			}
		}
		// Mismatched-length and truncated decodes must error, not panic.
		if len(payload) > 0 {
			c := int(cut) % len(payload)
			if _, err := codec.Decode(payload[:c], len(update)); err == nil && c < len(payload) && len(update) > 0 {
				// Some truncations still parse for sparse codecs (fewer
				// entries); only a hard length violation must error.
				_ = err
			}
		}
		if len(update) > 0 {
			if _, err := codec.Decode(payload, len(update)+1024); err == nil {
				if _, ok := codec.(TopKCodec); !ok && codec.Name() != "ternary" {
					t.Fatalf("%s: decoded into a wildly larger vector without error", codec.Name())
				}
			}
		}
	})
}
