package fed

import (
	"math"
	"testing"

	"tinymlops/internal/dataset"
	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

// Regression tests for latent gaps in the original stubs: inputs that used
// to slip through validation (or panic) now fail loudly.

func TestSumUpdatesRejectsZeroLengthVectors(t *testing.T) {
	if _, err := SumUpdates([][]float32{{}, {}}); err == nil {
		t.Fatal("summed zero-length vectors")
	}
	if _, err := SumUpdates([][]float32{}); err == nil {
		t.Fatal("summed an empty batch")
	}
	got, err := SumUpdates([][]float32{{1, 2}, {3, 4}})
	if err != nil || got[0] != 4 || got[1] != 6 {
		t.Fatalf("plain sum broken: %v %v", got, err)
	}
}

func TestMaskUpdateRejectsRaggedSeedsAndBadStd(t *testing.T) {
	ragged := PairwiseSeeds{{0, 1, 2}, {1, 0}, {2, 0, 0}}
	if _, err := MaskUpdate([]float32{1, 2}, 0, ragged, 1); err == nil {
		t.Fatal("accepted ragged seed matrix")
	}
	seeds := NewPairwiseSeeds(tensor.NewRNG(91), 3)
	if _, err := MaskUpdate([]float32{1}, 0, seeds, float32(math.NaN())); err == nil {
		t.Fatal("accepted NaN maskStd")
	}
	if _, err := MaskUpdate([]float32{1}, 0, seeds, float32(math.Inf(1))); err == nil {
		t.Fatal("accepted Inf maskStd")
	}
	if _, err := MaskUpdate([]float32{1}, -1, seeds, 1); err == nil {
		t.Fatal("accepted negative index")
	}
	if _, err := MaskFixed([]int64{1}, 0, ragged); err == nil {
		t.Fatal("MaskFixed accepted ragged seed matrix")
	}
}

func TestPseudoLabelEmptyInput(t *testing.T) {
	rng := tensor.NewRNG(93)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 2, rng))
	if idx, labels := PseudoLabel(net, nil, 0.5); idx != nil || labels != nil {
		t.Fatalf("nil input produced %v/%v", idx, labels)
	}
	if idx, labels := PseudoLabel(net, tensor.New(0, 4), 0.5); idx != nil || labels != nil {
		t.Fatalf("zero-row input produced %v/%v", idx, labels)
	}
}

func TestPersonalizeRejectsNilGlobalAndEmptyData(t *testing.T) {
	rng := tensor.NewRNG(95)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 2, rng))
	ds := dataset.Blobs(rng, 20, 4, 2, 3)
	if _, err := Personalize(nil, ds, PersonalizeConfig{RNG: rng}); err == nil {
		t.Fatal("accepted nil global")
	}
	if _, err := Personalize(net, nil, PersonalizeConfig{RNG: rng}); err == nil {
		t.Fatal("accepted nil data")
	}
	empty := &dataset.Dataset{Name: "empty", X: tensor.New(0, 4), NumClasses: 2}
	if _, err := Personalize(net, empty, PersonalizeConfig{RNG: rng}); err == nil {
		t.Fatal("accepted empty data")
	}
}

// TestSemiSupervisedRoundAllBelowThreshold pins the degenerate path that
// used to feed an empty dataset into Personalize: with no confident
// pseudo-labels the round is a no-op clone, not an error.
func TestSemiSupervisedRoundAllBelowThreshold(t *testing.T) {
	rng := tensor.NewRNG(97)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 16, rng), nn.NewReLU(), nn.NewDense(16, 3, rng))
	x := tensor.RandUniform(rng, -1, 1, 40, 4)
	local, used, err := SemiSupervisedRound(net, x, 1.1, PersonalizeConfig{RNG: rng})
	if err != nil {
		t.Fatalf("all-below-threshold round errored: %v", err)
	}
	if used != 0 {
		t.Fatalf("used %d examples above an impossible threshold", used)
	}
	if local == net {
		t.Fatal("returned the global aliased, not a clone")
	}
	if paramsDigest(local) != paramsDigest(net) {
		t.Fatal("no-op round changed the weights")
	}
}
