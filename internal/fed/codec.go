package fed

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Codec compresses model updates for the uplink. Encode must produce the
// actual wire bytes so experiments measure real communication cost;
// Decode reconstructs the (lossy) update.
type Codec interface {
	// Name identifies the codec in experiment tables.
	Name() string
	// Encode compresses an update vector.
	Encode(update []float32) ([]byte, error)
	// Decode reconstructs an update of length n from payload.
	Decode(payload []byte, n int) ([]float32, error)
}

// NoneCodec ships raw float32 — the 4-bytes-per-parameter baseline.
type NoneCodec struct{}

// Name implements Codec.
func (NoneCodec) Name() string { return "none" }

// Encode implements Codec.
func (NoneCodec) Encode(update []float32) ([]byte, error) {
	out := make([]byte, 4*len(update))
	for i, v := range update {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out, nil
}

// Decode implements Codec.
func (NoneCodec) Decode(payload []byte, n int) ([]float32, error) {
	if len(payload) != 4*n {
		return nil, fmt.Errorf("fed: none codec payload %dB for %d params", len(payload), n)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return out, nil
}

// Int8Codec quantizes the update to int8 with one global symmetric scale —
// 4× smaller than raw with minimal convergence impact.
type Int8Codec struct{}

// Name implements Codec.
func (Int8Codec) Name() string { return "int8" }

// Encode implements Codec.
func (Int8Codec) Encode(update []float32) ([]byte, error) {
	var absMax float32
	for _, v := range update {
		if v < 0 {
			v = -v
		}
		if v > absMax {
			absMax = v
		}
	}
	scale := absMax / 127
	if scale == 0 {
		scale = 1
	}
	out := make([]byte, 4+len(update))
	binary.LittleEndian.PutUint32(out, math.Float32bits(scale))
	for i, v := range update {
		c := v / scale
		if c > 127 {
			c = 127
		} else if c < -127 {
			c = -127
		}
		if c >= 0 {
			out[4+i] = byte(int8(c + 0.5))
		} else {
			out[4+i] = byte(int8(c - 0.5))
		}
	}
	return out, nil
}

// Decode implements Codec.
func (Int8Codec) Decode(payload []byte, n int) ([]float32, error) {
	if len(payload) != 4+n {
		return nil, fmt.Errorf("fed: int8 codec payload %dB for %d params", len(payload), n)
	}
	scale := math.Float32frombits(binary.LittleEndian.Uint32(payload))
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(int8(payload[4+i])) * scale
	}
	return out, nil
}

// TernaryCodec is TernGrad-style compression: each coordinate becomes
// {-1, 0, +1} packed two bits each, scaled by the mean magnitude of the
// non-zero coordinates — a 16× reduction.
type TernaryCodec struct {
	// Threshold (in units of mean |update|) below which a coordinate is
	// dropped to zero. 0.5 is a reasonable default.
	Threshold float32
}

// Name implements Codec.
func (TernaryCodec) Name() string { return "ternary" }

// Encode implements Codec.
func (c TernaryCodec) Encode(update []float32) ([]byte, error) {
	th := c.Threshold
	if th == 0 {
		th = 0.5
	}
	var meanAbs float64
	for _, v := range update {
		meanAbs += math.Abs(float64(v))
	}
	if len(update) > 0 {
		meanAbs /= float64(len(update))
	}
	cut := float32(meanAbs) * th
	var scaleSum float64
	var scaleN int
	codes := make([]int8, len(update))
	for i, v := range update {
		switch {
		case v > cut:
			codes[i] = 1
			scaleSum += float64(v)
			scaleN++
		case v < -cut:
			codes[i] = -1
			scaleSum += -float64(v)
			scaleN++
		}
	}
	scale := float32(1)
	if scaleN > 0 {
		scale = float32(scaleSum / float64(scaleN))
	}
	var buf bytes.Buffer
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], math.Float32bits(scale))
	buf.Write(tmp[:])
	// Pack 4 ternary codes per byte: 00=0, 01=+1, 10=-1.
	for i := 0; i < len(codes); i += 4 {
		var b byte
		for j := 0; j < 4 && i+j < len(codes); j++ {
			var bits byte
			switch codes[i+j] {
			case 1:
				bits = 1
			case -1:
				bits = 2
			}
			b |= bits << (2 * j)
		}
		buf.WriteByte(b)
	}
	return buf.Bytes(), nil
}

// Decode implements Codec.
func (c TernaryCodec) Decode(payload []byte, n int) ([]float32, error) {
	want := 4 + (n+3)/4
	if len(payload) != want {
		return nil, fmt.Errorf("fed: ternary codec payload %dB, want %d for %d params", len(payload), want, n)
	}
	scale := math.Float32frombits(binary.LittleEndian.Uint32(payload))
	out := make([]float32, n)
	for i := range out {
		b := payload[4+i/4]
		bits := (b >> (2 * (i % 4))) & 3
		switch bits {
		case 1:
			out[i] = scale
		case 2:
			out[i] = -scale
		}
	}
	return out, nil
}

// TopKCodec keeps only the Ratio·n largest-magnitude coordinates as
// (index, value) pairs — gradient sparsification.
type TopKCodec struct {
	// Ratio in (0,1] of coordinates to keep.
	Ratio float64
}

// Name implements Codec.
func (c TopKCodec) Name() string { return fmt.Sprintf("topk(%.2g)", c.Ratio) }

// Encode implements Codec.
func (c TopKCodec) Encode(update []float32) ([]byte, error) {
	if c.Ratio <= 0 || c.Ratio > 1 {
		return nil, fmt.Errorf("fed: topk ratio %v out of (0,1]", c.Ratio)
	}
	k := int(math.Ceil(c.Ratio * float64(len(update))))
	if k > len(update) {
		k = len(update)
	}
	idx := make([]int, len(update))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		va, vb := update[idx[a]], update[idx[b]]
		if va < 0 {
			va = -va
		}
		if vb < 0 {
			vb = -vb
		}
		return va > vb
	})
	kept := idx[:k]
	sort.Ints(kept)
	out := make([]byte, 4+8*k)
	binary.LittleEndian.PutUint32(out, uint32(k))
	for i, j := range kept {
		binary.LittleEndian.PutUint32(out[4+8*i:], uint32(j))
		binary.LittleEndian.PutUint32(out[8+8*i:], math.Float32bits(update[j]))
	}
	return out, nil
}

// Decode implements Codec.
func (c TopKCodec) Decode(payload []byte, n int) ([]float32, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("fed: topk payload too short")
	}
	k := int(binary.LittleEndian.Uint32(payload))
	if len(payload) != 4+8*k {
		return nil, fmt.Errorf("fed: topk payload %dB for k=%d", len(payload), k)
	}
	out := make([]float32, n)
	for i := 0; i < k; i++ {
		j := int(binary.LittleEndian.Uint32(payload[4+8*i:]))
		if j >= n {
			return nil, fmt.Errorf("fed: topk index %d out of range %d", j, n)
		}
		out[j] = math.Float32frombits(binary.LittleEndian.Uint32(payload[8+8*i:]))
	}
	return out, nil
}
