// Package fed implements the federated learning stack of §III-D: a FedAvg/
// FedProx coordinator over simulated fleet clients with non-IID shards,
// update compression codecs (int8, ternary/TernGrad-style, top-k
// sparsification) with honest byte accounting, pairwise-mask secure
// aggregation, confidence-thresholded pseudo-labeling for unlabeled
// clients, and local personalization with layer freezing.
//
// Each round's local trainings fan out over an internal/engine worker pool
// (Config.Engine) rather than one goroutine per client, so a round over
// thousands of sampled clients runs at full hardware utilization without
// thrashing the scheduler; per-client RNGs are split up front, so the
// round's result is independent of the pool size.
package fed
