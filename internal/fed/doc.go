// Package fed implements the federated learning stack of §III-D, from a
// flat FedAvg/FedProx coordinator up to a two-tier hierarchical topology
// with exact secure aggregation at the edge tier.
//
// # Topologies
//
// Coordinator runs the flat form: sampled clients train locally and the
// cloud averages their updates. HierCoordinator shards the fleet into
// edge-aggregator cohorts (assignment by engine.ShardForID, so the
// partition is stable at any worker count), each aggregator collects its
// cohort's updates, and the cloud sums only one varint-encoded partial
// per aggregator — the fan-in reduction that keeps 100k-client rounds
// affordable on the vendor uplink.
//
// # Exact aggregation and masking
//
// All aggregation happens in an int64 fixed-point ring (Q44.20): integer
// addition is associative, so the hierarchical grouping is bit-identical
// to the flat sum over the same clients. Pairwise secure aggregation
// (Bonawitz-style) lives in the same ring — clients upload uniformly
// masked uint64 words, the Aggregator learns only the cohort sum, and
// dropped or late clients' stale masks are reconciled exactly by
// regenerating their pairwise streams from surviving peers' seeds. Every
// masked round cross-checks the unmasked reference and fails loudly on
// any bit difference.
//
// # Compression, faults, personalization
//
// Client updates pass through an update codec (int8, ternary/TernGrad,
// top-k sparsification) with honest byte accounting per tier; downlinks
// ship bit-exact nn delta patches after the first full artifact. Both
// tiers take injected weather — client dropouts/stragglers via
// Config.Faults, aggregator faults via HierConfig.AggFaults — with all
// stochasticity derived from (seed, round, ID), so rounds reproduce at
// any worker count. Personalize/PersonalizeCohorts layer local
// fine-tuning (frozen shared layers) on the published global, and
// PseudoLabel/SemiSupervisedRound cover unlabeled clients.
package fed
