package fed

import (
	"fmt"

	"tinymlops/internal/dataset"
	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

// PersonalizeConfig controls local fine-tuning of a global model.
type PersonalizeConfig struct {
	// FreezeLayers excludes the first k layers' parameters from updates —
	// the classic "shared feature extractor, personal head" split.
	FreezeLayers int
	Epochs       int
	BatchSize    int
	LR           float32
	RNG          *tensor.RNG
}

// Personalize clones the global model and fine-tunes it on a client's
// private data, optionally freezing the first k layers. This is §III-D's
// "specialized models overfitted to a specific user or location".
func Personalize(global *nn.Network, data *dataset.Dataset, cfg PersonalizeConfig) (*nn.Network, error) {
	if global == nil {
		return nil, fmt.Errorf("fed: Personalize needs a global model")
	}
	if data == nil || data.X == nil || data.Len() == 0 {
		return nil, fmt.Errorf("fed: Personalize needs non-empty local data")
	}
	if cfg.RNG == nil {
		return nil, fmt.Errorf("fed: PersonalizeConfig.RNG is required")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 3
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.02
	}
	local := global.Clone()
	layers := local.Layers()
	if cfg.FreezeLayers < 0 || cfg.FreezeLayers > len(layers) {
		return nil, fmt.Errorf("fed: FreezeLayers %d out of range [0,%d]", cfg.FreezeLayers, len(layers))
	}
	frozen := make(map[*nn.Param]bool)
	for _, l := range layers[:cfg.FreezeLayers] {
		for _, p := range l.Params() {
			frozen[p] = true
		}
	}
	tc := nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		Optimizer: nn.NewSGD(cfg.LR),
		RNG:       cfg.RNG,
		ExtraGrad: func(net *nn.Network) {
			for _, p := range net.Params() {
				if frozen[p] {
					p.Grad.Zero()
				}
			}
		},
	}
	if _, err := nn.Train(local, data.X, data.Y, tc); err != nil {
		return nil, err
	}
	return local, nil
}

// PseudoLabel runs the model over unlabeled inputs and returns the indices
// and predicted labels of the examples whose top softmax probability
// exceeds threshold — the semi-supervised device-side labeling of §III-D
// ("the data remains completely unlabeled").
func PseudoLabel(model *nn.Network, x *tensor.Tensor, threshold float32) (idx []int, labels []int) {
	if x == nil || x.Size() == 0 || x.Dim(0) == 0 {
		return nil, nil
	}
	probs := nn.SoftmaxRows(model.Predict(x))
	rows, cols := probs.Dim(0), probs.Dim(1)
	for i := 0; i < rows; i++ {
		best, bi := probs.At2(i, 0), 0
		for j := 1; j < cols; j++ {
			if p := probs.At2(i, j); p > best {
				best, bi = p, j
			}
		}
		if best >= threshold {
			idx = append(idx, i)
			labels = append(labels, bi)
		}
	}
	return idx, labels
}

// SemiSupervisedRound lets a client with unlabeled data contribute: it
// pseudo-labels its shard with the global model, keeps confident examples
// and fine-tunes on them. It returns the refined local model and how many
// examples were used.
func SemiSupervisedRound(global *nn.Network, unlabeled *tensor.Tensor, threshold float32, cfg PersonalizeConfig) (*nn.Network, int, error) {
	idx, labels := PseudoLabel(global, unlabeled, threshold)
	if len(idx) == 0 {
		return global.Clone(), 0, nil
	}
	es := unlabeled.Size() / unlabeled.Dim(0)
	shape := append([]int{len(idx)}, unlabeled.Shape()[1:]...)
	x := tensor.New(shape...)
	for i, src := range idx {
		copy(x.Data[i*es:(i+1)*es], unlabeled.Data[src*es:(src+1)*es])
	}
	ds := &dataset.Dataset{Name: "pseudo", X: x, Y: labels, NumClasses: outputClasses(global)}
	local, err := Personalize(global, ds, cfg)
	if err != nil {
		return nil, 0, err
	}
	return local, len(idx), nil
}

func outputClasses(net *nn.Network) int {
	shape, err := net.OutputShape()
	if err != nil || len(shape) == 0 {
		return 0
	}
	return shape[len(shape)-1]
}
