package fed

import (
	"fmt"
	"math"
	"sync"

	"tinymlops/internal/tensor"
)

// Secure aggregation by pairwise masking (Bonawitz et al. style): every
// pair of clients (i, j) derives a shared mask from a pairwise seed;
// client i adds the mask, client j subtracts it. Individual uploads are
// indistinguishable from noise to the server, but the masks cancel in the
// sum, so federated averaging still works — addressing §III-D's tension
// between aggregating updates and not revealing any single user's update.
//
// Two mask families live here. The float family (MaskUpdate/SumUpdates)
// is the demonstrative original: Gaussian masks over float32, which
// cancel only to rounding error. The fixed-point family (MaskFixed plus
// the Aggregator in hier.go) is what the hierarchical round path uses:
// uniform uint64 mask words added with wrapping arithmetic, so the masks
// cancel *exactly* — bit-identical to an unmasked integer sum — and a
// dropped client's stale masks can be reconciled precisely by
// regenerating its pairwise streams from the surviving peers' seeds.

// PairwiseSeeds holds the symmetric seed matrix seeds[i][j] (= seeds[j][i])
// agreed between each client pair (in production via key agreement; here
// derived from a session RNG).
type PairwiseSeeds [][]uint64

// NewPairwiseSeeds derives the seed matrix for n clients.
func NewPairwiseSeeds(rng *tensor.RNG, n int) PairwiseSeeds {
	seeds := make([][]uint64, n)
	for i := range seeds {
		seeds[i] = make([]uint64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := rng.Uint64()
			seeds[i][j] = s
			seeds[j][i] = s
		}
	}
	return seeds
}

// validate checks that idx addresses a square seed matrix.
func (s PairwiseSeeds) validate(idx int) error {
	n := len(s)
	if idx < 0 || idx >= n {
		return fmt.Errorf("fed: client index %d out of range %d", idx, n)
	}
	for i, row := range s {
		if len(row) != n {
			return fmt.Errorf("fed: seeds row %d has %d entries, want %d (matrix must be square)", i, len(row), n)
		}
	}
	return nil
}

// MaskUpdate returns client idx's update with all pairwise masks applied:
// + mask(i,j) for j > i, − mask(i,j) for j < i. The mask magnitude scales
// with maskStd (it should dwarf the update values for privacy). Float
// masks cancel only to rounding error; use MaskFixed where the sum must
// be exact.
func MaskUpdate(update []float32, idx int, seeds PairwiseSeeds, maskStd float32) ([]float32, error) {
	if err := seeds.validate(idx); err != nil {
		return nil, err
	}
	if math.IsNaN(float64(maskStd)) || math.IsInf(float64(maskStd), 0) {
		return nil, fmt.Errorf("fed: maskStd %v is not finite", maskStd)
	}
	out := make([]float32, len(update))
	copy(out, update)
	n := len(seeds)
	for peer := 0; peer < n; peer++ {
		if peer == idx {
			continue
		}
		mrng := tensor.NewRNG(seeds[idx][peer])
		sign := float32(1)
		if peer < idx {
			sign = -1
		}
		for k := range out {
			out[k] += sign * mrng.NormFloat32() * maskStd
		}
	}
	return out, nil
}

// SumUpdates adds a set of equal-length vectors; applied to masked updates
// the pairwise masks cancel and the true sum emerges.
func SumUpdates(updates [][]float32) ([]float32, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("fed: no updates to sum")
	}
	n := len(updates[0])
	if n == 0 {
		return nil, fmt.Errorf("fed: zero-length updates")
	}
	out := make([]float32, n)
	for _, u := range updates {
		if len(u) != n {
			return nil, fmt.Errorf("fed: update length %d != %d", len(u), n)
		}
		for k, v := range u {
			out[k] += v
		}
	}
	return out, nil
}

// MaskFixed lifts client idx's fixed-point contribution into the uint64
// ring and applies all pairwise masks with wrapping arithmetic: + the
// shared word stream for peers j > idx, − for peers j < idx (the same
// sign convention as MaskUpdate). Because addition mod 2^64 is exactly
// associative, a sum over any grouping of masked vectors minus the
// reconciled masks of absent peers equals the unmasked integer sum bit
// for bit.
func MaskFixed(contrib []int64, idx int, seeds PairwiseSeeds) ([]uint64, error) {
	if err := seeds.validate(idx); err != nil {
		return nil, err
	}
	out := make([]uint64, len(contrib))
	for k, v := range contrib {
		out[k] = uint64(v)
	}
	n := len(seeds)
	for peer := 0; peer < n; peer++ {
		if peer == idx {
			continue
		}
		mrng := tensor.NewRNG(seeds[idx][peer])
		if peer > idx {
			for k := range out {
				out[k] += mrng.Uint64()
			}
		} else {
			for k := range out {
				out[k] -= mrng.Uint64()
			}
		}
	}
	return out, nil
}

// Aggregator is one edge tier's masked-sum accumulator: clients Submit
// their masked fixed-point contributions in any order (Submit is safe for
// concurrent use — wrapping addition commutes, so the total is schedule-
// independent), and Unmask reconciles the pairwise masks of the clients
// that never arrived by regenerating their shared streams from the
// surviving peers' seeds. The aggregator only ever holds masked words and
// the final cohort sum; no individual update is recoverable from it.
type Aggregator struct {
	// ID names the aggregator in stats and fault draws.
	ID string

	mu       sync.Mutex
	seeds    PairwiseSeeds
	sum      []uint64
	samples  int64
	received []bool
	nRecv    int
}

// NewAggregator builds an edge aggregator for one round's cohort: seeds is
// the cohort's pairwise matrix (its size fixes the participant count) and
// dim the update dimension.
func NewAggregator(id string, seeds PairwiseSeeds, dim int) (*Aggregator, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("fed: aggregator %s: dimension %d", id, dim)
	}
	n := len(seeds)
	if n == 0 {
		return nil, fmt.Errorf("fed: aggregator %s: empty seed matrix", id)
	}
	for i, row := range seeds {
		if len(row) != n {
			return nil, fmt.Errorf("fed: aggregator %s: seeds row %d has %d entries, want %d", id, i, len(row), n)
		}
	}
	return &Aggregator{
		ID: id, seeds: seeds,
		sum:      make([]uint64, dim),
		received: make([]bool, n),
	}, nil
}

// Submit adds participant idx's masked contribution (samples examples) to
// the cohort sum. Duplicate or out-of-range submissions are rejected.
func (a *Aggregator) Submit(idx int, masked []uint64, samples int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if idx < 0 || idx >= len(a.received) {
		return fmt.Errorf("fed: aggregator %s: participant %d out of range %d", a.ID, idx, len(a.received))
	}
	if a.received[idx] {
		return fmt.Errorf("fed: aggregator %s: participant %d submitted twice", a.ID, idx)
	}
	if len(masked) != len(a.sum) {
		return fmt.Errorf("fed: aggregator %s: update length %d, want %d", a.ID, len(masked), len(a.sum))
	}
	if samples <= 0 {
		return fmt.Errorf("fed: aggregator %s: participant %d reports %d samples", a.ID, idx, samples)
	}
	a.received[idx] = true
	a.nRecv++
	a.samples += int64(samples)
	for k, v := range masked {
		a.sum[k] += v
	}
	return nil
}

// Received reports how many participants have submitted.
func (a *Aggregator) Received() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nRecv
}

// Unmask reconciles the masks of absent participants and returns the
// exact cohort partial (Σ samples_i·q_i over received clients) plus the
// received sample total. Every surviving submission carries one stale
// mask per absent peer; regenerating the (survivor, absent) streams from
// the seed matrix and subtracting them with the survivor's sign recovers
// the unmasked sum bit-exactly. An empty round (nothing received) errors.
func (a *Aggregator) Unmask() ([]int64, int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.nRecv == 0 {
		return nil, 0, fmt.Errorf("fed: aggregator %s: no submissions to unmask", a.ID)
	}
	out := make([]uint64, len(a.sum))
	copy(out, a.sum)
	n := len(a.received)
	for i := 0; i < n; i++ {
		if !a.received[i] {
			continue
		}
		for d := 0; d < n; d++ {
			if d == i || a.received[d] {
				continue
			}
			// Survivor i applied sign(i,d)·stream(seeds[i][d]); remove it.
			mrng := tensor.NewRNG(a.seeds[i][d])
			if d > i {
				for k := range out {
					out[k] -= mrng.Uint64()
				}
			} else {
				for k := range out {
					out[k] += mrng.Uint64()
				}
			}
		}
	}
	partial := make([]int64, len(out))
	for k, v := range out {
		partial[k] = int64(v)
	}
	return partial, a.samples, nil
}
