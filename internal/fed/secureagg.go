package fed

import (
	"fmt"

	"tinymlops/internal/tensor"
)

// Secure aggregation by pairwise masking (Bonawitz et al. style, without
// the dropout-recovery machinery): every pair of clients (i, j) derives a
// shared mask from a pairwise seed; client i adds the mask, client j
// subtracts it. Individual uploads are indistinguishable from noise to the
// server, but the masks cancel exactly in the sum, so federated averaging
// still works — addressing §III-D's tension between aggregating updates
// and not revealing any single user's update.

// PairwiseSeeds holds the symmetric seed matrix seeds[i][j] (= seeds[j][i])
// agreed between each client pair (in production via key agreement; here
// derived from a session RNG).
type PairwiseSeeds [][]uint64

// NewPairwiseSeeds derives the seed matrix for n clients.
func NewPairwiseSeeds(rng *tensor.RNG, n int) PairwiseSeeds {
	seeds := make([][]uint64, n)
	for i := range seeds {
		seeds[i] = make([]uint64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := rng.Uint64()
			seeds[i][j] = s
			seeds[j][i] = s
		}
	}
	return seeds
}

// MaskUpdate returns client idx's update with all pairwise masks applied:
// + mask(i,j) for j > i, − mask(i,j) for j < i. The mask magnitude scales
// with maskStd (it should dwarf the update values for privacy).
func MaskUpdate(update []float32, idx int, seeds PairwiseSeeds, maskStd float32) ([]float32, error) {
	n := len(seeds)
	if idx < 0 || idx >= n {
		return nil, fmt.Errorf("fed: client index %d out of range %d", idx, n)
	}
	out := make([]float32, len(update))
	copy(out, update)
	for peer := 0; peer < n; peer++ {
		if peer == idx {
			continue
		}
		mrng := tensor.NewRNG(seeds[idx][peer])
		sign := float32(1)
		if peer < idx {
			sign = -1
		}
		for k := range out {
			out[k] += sign * mrng.NormFloat32() * maskStd
		}
	}
	return out, nil
}

// SumUpdates adds a set of equal-length vectors; applied to masked updates
// the pairwise masks cancel and the true sum emerges.
func SumUpdates(updates [][]float32) ([]float32, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("fed: no updates to sum")
	}
	n := len(updates[0])
	out := make([]float32, n)
	for _, u := range updates {
		if len(u) != n {
			return nil, fmt.Errorf("fed: update length %d != %d", len(u), n)
		}
		for k, v := range u {
			out[k] += v
		}
	}
	return out, nil
}
