package fed

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sync"
	"testing"

	"tinymlops/internal/dataset"
	"tinymlops/internal/engine"
	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

// hierFixture builds a federated problem with n clients sharded IID.
func hierFixture(t testing.TB, nClients int, seed uint64) (*nn.Network, []*Client, *dataset.Dataset) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	ds := dataset.Blobs(rng, 4*nClients+400, 4, 3, 4)
	train, test := ds.Split(0.9, rng)
	shards := dataset.PartitionIID(rng, train, nClients)
	clients := MakeClients(train, shards, "hc")
	global := nn.NewNetwork([]int{4}, nn.NewDense(4, 8, rng), nn.NewReLU(), nn.NewDense(8, 3, rng))
	return global, clients, test
}

// paramsDigest fingerprints a model's exact weights.
func paramsDigest(net *nn.Network) string {
	h := sha256.New()
	for _, v := range net.FlatParams() {
		fmt.Fprintf(h, "%08x.", math.Float32bits(v))
	}
	return hex.EncodeToString(h.Sum(nil)[:12])
}

// TestHierMaskedEqualsFlatUnmasked is the tentpole property: masked
// hierarchical aggregation must be bit-identical to flat unmasked FedAvg
// over the same client set, seeds and codec — across worker counts and
// across dropout/straggler patterns (surviving-peer mask reconstruction
// exact). The cross-check inside runCohort already fails the round if the
// masked cohort sum differs from the unmasked reference by one bit; this
// test additionally pins the *global models* equal between topologies.
func TestHierMaskedEqualsFlatUnmasked(t *testing.T) {
	dropPatterns := []struct {
		name   string
		faults func(round int, id string) ClientFault
	}{
		{"calm", nil},
		{"dropouts", func(round int, id string) ClientFault {
			return ClientFault{Dropout: engine.SeedForID(99, uint64(round), id)%4 == 0}
		}},
		{"weather", func(round int, id string) ClientFault {
			s := engine.SeedForID(77, uint64(round), id)
			switch s % 5 {
			case 0:
				return ClientFault{Dropout: true}
			case 1:
				return ClientFault{SlowFactor: 16} // past the deadline
			case 2:
				return ClientFault{SlowFactor: 2} // slow but in time
			}
			return ClientFault{}
		}},
	}
	for _, codec := range []Codec{NoneCodec{}, TopKCodec{Ratio: 0.25}} {
		for _, pat := range dropPatterns {
			t.Run(fmt.Sprintf("%s/%s", codec.Name(), pat.name), func(t *testing.T) {
				base := Config{
					Rounds: 2, LocalEpochs: 1, LocalBatch: 8, LR: 0.1, Seed: 31,
					Codec: codec, Faults: pat.faults, StragglerDeadline: 4,
				}
				// Flat unmasked reference at one worker.
				globalF, clientsF, test := hierFixture(t, 48, 33)
				fcfg := base
				fcfg.Engine = engine.New(engine.Config{Workers: 1})
				flat, err := NewCoordinator(globalF, clientsF, test.X, test.Y, fcfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := flat.Run(); err != nil {
					t.Fatal(err)
				}
				want := paramsDigest(flat.Global)

				for _, workers := range []int{1, 4, 16} {
					globalH, clientsH, testH := hierFixture(t, 48, 33)
					hcfg := HierConfig{Config: base, Aggregators: 6, SecureAgg: true,
						AggStragglerDeadline: 4}
					hcfg.Engine = engine.New(engine.Config{Workers: workers})
					hier, err := NewHierCoordinator(globalH, clientsH, testH.X, testH.Y, hcfg)
					if err != nil {
						t.Fatal(err)
					}
					stats, err := hier.Run()
					if err != nil {
						t.Fatal(err)
					}
					if got := paramsDigest(hier.Global); got != want {
						t.Fatalf("workers=%d: hier-masked global %s != flat-unmasked %s", workers, got, want)
					}
					s := stats[len(stats)-1]
					if s.Participants != 48 {
						t.Fatalf("workers=%d: %d participants, want 48", workers, s.Participants)
					}
					if pat.faults != nil && s.Dropouts == 0 {
						t.Fatalf("workers=%d: dropout pattern drew no dropouts", workers)
					}
					if s.CloudUplinkBytes == 0 || s.EdgeUplinkBytes == 0 {
						t.Fatalf("workers=%d: tier accounting idle: %+v", workers, s)
					}
					if s.CloudUplinkBytes >= s.EdgeUplinkBytes {
						t.Fatalf("workers=%d: cloud uplink %d not below edge uplink %d — fan-in saved nothing",
							workers, s.CloudUplinkBytes, s.EdgeUplinkBytes)
					}
				}
			})
		}
	}
}

// TestHierConvergesUnderWeather runs the two-tier topology with secure
// aggregation and weather on both tiers, and requires the global model to
// learn anyway, fingerprint-identical at 1/4/16 workers.
func TestHierConvergesUnderWeather(t *testing.T) {
	faults := func(round int, id string) ClientFault {
		s := engine.SeedForID(55, uint64(round), id)
		switch s % 6 {
		case 0:
			return ClientFault{Dropout: true}
		case 1:
			return ClientFault{SlowFactor: 16}
		}
		return ClientFault{}
	}
	var want string
	for _, workers := range []int{1, 4, 16} {
		global, clients, test := hierFixture(t, 64, 35)
		cfg := HierConfig{
			Config: Config{
				Rounds: 6, LocalEpochs: 2, LocalBatch: 8, LR: 0.1, Seed: 37,
				Engine: engine.New(engine.Config{Workers: workers}),
				Faults: faults, StragglerDeadline: 4,
			},
			Aggregators: 8, SecureAgg: true,
			AggFaults:            faults,
			AggStragglerDeadline: 4,
		}
		hier, err := NewHierCoordinator(global, clients, test.X, test.Y, cfg)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := hier.Run()
		if err != nil {
			t.Fatal(err)
		}
		var aggFaults int
		for _, s := range stats {
			aggFaults += s.AggDropouts + s.AggLate
		}
		if aggFaults == 0 {
			t.Fatal("aggregator tier drew no faults across 6 rounds")
		}
		if acc := stats[len(stats)-1].TestAccuracy; acc < 0.8 {
			t.Fatalf("workers=%d: accuracy %v under two-tier weather < 0.8", workers, acc)
		}
		if got := paramsDigest(hier.Global); want == "" {
			want = got
		} else if got != want {
			t.Fatalf("workers=%d: global digest %s != workers=1's %s", workers, got, want)
		}
	}
}

// TestHier100kHeadline is the acceptance headline: a 100k-client round
// across 100 edge aggregators with masked aggregation, converging under
// dropout/straggler weather, fingerprint-identical at 1/4/16 workers.
func TestHier100kHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-client round skipped in -short")
	}
	const nClients, nAggs = 100_000, 100
	faults := func(round int, id string) ClientFault {
		s := engine.SeedForID(123, uint64(round), id)
		switch s % 10 {
		case 0:
			return ClientFault{Dropout: true}
		case 1:
			return ClientFault{SlowFactor: 16}
		}
		return ClientFault{}
	}
	// One shared pool of shard data, reused per run (the weights of the
	// run derive from cfg.Seed, not from these tensors' identity).
	rng := tensor.NewRNG(41)
	pool, test := dataset.Blobs(rng, 2400, 4, 3, 4).Split(0.85, rng)
	makeClients := func() []*Client {
		clients := make([]*Client, nClients)
		for i := range clients {
			lo := (2 * i) % (pool.Len() - 2)
			clients[i] = &Client{
				ID:   fmt.Sprintf("hk-%06d", i),
				Data: pool.Subset([]int{lo, lo + 1}),
			}
		}
		return clients
	}
	var want string
	var first RoundStats
	for _, workers := range []int{1, 4, 16} {
		grng := tensor.NewRNG(43)
		global := nn.NewNetwork([]int{4}, nn.NewDense(4, 3, grng))
		cfg := HierConfig{
			Config: Config{
				Rounds: 2, LocalEpochs: 1, LocalBatch: 4, LR: 0.2, Seed: 45,
				Engine: engine.New(engine.Config{Workers: workers}),
				Faults: faults, StragglerDeadline: 4,
			},
			Aggregators: nAggs, SecureAgg: true,
			AggFaults:            faults,
			AggStragglerDeadline: 4,
		}
		hier, err := NewHierCoordinator(global, makeClients(), test.X, test.Y, cfg)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := hier.Run()
		if err != nil {
			t.Fatal(err)
		}
		s := stats[len(stats)-1]
		if s.Dropouts == 0 || s.Late == 0 || s.AggDropouts+s.AggLate == 0 {
			t.Fatalf("workers=%d: weather idle: %+v", workers, s)
		}
		if acc := s.TestAccuracy; acc < 0.6 {
			t.Fatalf("workers=%d: 100k round accuracy %v < 0.6", workers, acc)
		}
		// The cloud tier hears 100 partials, not 100k updates.
		if s.CloudUplinkBytes*10 > s.EdgeUplinkBytes {
			t.Fatalf("workers=%d: cloud uplink %d vs edge %d — fan-in saving missing",
				workers, s.CloudUplinkBytes, s.EdgeUplinkBytes)
		}
		got := paramsDigest(hier.Global)
		if want == "" {
			want, first = got, s
			t.Logf("100k headline: digest=%s participants=%d dropouts=%d late=%d aggDrop=%d aggLate=%d edgeUp=%dB cloudUp=%dB acc=%.3f",
				got, s.Participants, s.Dropouts, s.Late, s.AggDropouts, s.AggLate,
				s.EdgeUplinkBytes, s.CloudUplinkBytes, s.TestAccuracy)
			continue
		}
		if got != want {
			t.Fatalf("workers=%d: digest %s != workers=1's %s — outcome depends on scheduling", workers, got, want)
		}
		if s != first {
			t.Fatalf("workers=%d: round stats diverged:\n%+v\n%+v", workers, s, first)
		}
	}
}

// TestHierCoordinatorValidation table-drives the constructor and tier-size
// error paths.
func TestHierCoordinatorValidation(t *testing.T) {
	rng := tensor.NewRNG(47)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 2, rng))
	ds := dataset.Blobs(rng, 40, 4, 2, 3)
	shards := dataset.PartitionIID(rng, ds, 4)
	clients := MakeClients(ds, shards, "v")
	cases := []struct {
		name    string
		global  *nn.Network
		clients []*Client
		cfg     HierConfig
	}{
		{"nil global", nil, clients, HierConfig{Aggregators: 2}},
		{"no clients", net, nil, HierConfig{Aggregators: 2}},
		{"zero aggregators", net, clients, HierConfig{}},
		{"negative aggregators", net, clients, HierConfig{Aggregators: -1}},
		{"more aggregators than clients", net, clients, HierConfig{Aggregators: 5}},
		{"duplicate client IDs", net, []*Client{clients[0], clients[0]}, HierConfig{Aggregators: 1}},
		{"nil client", net, []*Client{clients[0], nil}, HierConfig{Aggregators: 1}},
	}
	for _, c := range cases {
		if _, err := NewHierCoordinator(c.global, c.clients, nil, nil, c.cfg); err == nil {
			t.Fatalf("%s: constructor accepted it", c.name)
		}
	}
	// Every client in exactly one cohort.
	hc, err := NewHierCoordinator(net, clients, nil, nil, HierConfig{Aggregators: 2, Config: Config{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, co := range hc.Cohorts {
		total += len(co.Clients)
	}
	if total != len(clients) || len(hc.Cohorts) != 2 {
		t.Fatalf("cohorts hold %d clients in %d cohorts", total, len(hc.Cohorts))
	}
}

// TestHierAllDropoutCohortAndDeadlines pins the degenerate weather paths:
// a cohort whose every client drops contributes nothing without erroring,
// an all-dropout round leaves the global untouched, and the per-tier
// straggler deadlines gate contributions (in-time stragglers aggregate,
// late ones upload wasted bytes).
func TestHierAllDropoutCohortAndDeadlines(t *testing.T) {
	global, clients, test := hierFixture(t, 24, 51)
	before := paramsDigest(global)
	allDrop := func(round int, id string) ClientFault { return ClientFault{Dropout: true} }
	hc, err := NewHierCoordinator(global, clients, test.X, test.Y, HierConfig{
		Config:      Config{Rounds: 1, Seed: 53, Faults: allDrop, LocalEpochs: 1, LocalBatch: 8, LR: 0.1},
		Aggregators: 4, SecureAgg: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := hc.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if s.Dropouts != s.Participants || s.EdgeUplinkBytes != 0 || s.CloudUplinkBytes != 0 {
		t.Fatalf("all-dropout round stats: %+v", s)
	}
	if paramsDigest(hc.Global) != before {
		t.Fatal("all-dropout round moved the global model")
	}

	// Aggregator deadlines: one cohort late, one in-time straggler.
	global2, clients2, test2 := hierFixture(t, 24, 55)
	before2 := paramsDigest(global2)
	aggFaults := func(round int, id string) ClientFault {
		switch id {
		case "agg-000":
			return ClientFault{SlowFactor: 16} // past deadline 4: late
		case "agg-001":
			return ClientFault{SlowFactor: 2} // in time
		case "agg-002":
			return ClientFault{Dropout: true}
		}
		return ClientFault{}
	}
	hc2, err := NewHierCoordinator(global2, clients2, test2.X, test2.Y, HierConfig{
		Config:      Config{Rounds: 1, Seed: 57, LocalEpochs: 1, LocalBatch: 8, LR: 0.1},
		Aggregators: 4, SecureAgg: true,
		AggFaults: aggFaults, AggStragglerDeadline: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := hc2.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if s2.AggDropouts != 1 || s2.AggStragglers != 2 || s2.AggLate != 1 {
		t.Fatalf("aggregator fault counts: %+v", s2)
	}
	// The late cohort's partial was uploaded (cloud bytes charged) but a
	// dropped aggregator's cohort produced no traffic at all; with 4
	// cohorts only 2 contributed to the sum, and the model still moved.
	if s2.CloudUplinkBytes == 0 {
		t.Fatal("late cohort's upload never charged")
	}
	if paramsDigest(hc2.Global) == before2 {
		t.Fatal("surviving cohorts failed to move the global")
	}
}

// TestHierDeadlineZeroWaitsForStragglers pins the 0-deadline semantics on
// both tiers: everyone aggregates, nobody is late.
func TestHierDeadlineZeroWaitsForStragglers(t *testing.T) {
	global, clients, test := hierFixture(t, 16, 59)
	slow := func(round int, id string) ClientFault { return ClientFault{SlowFactor: 100} }
	hc, err := NewHierCoordinator(global, clients, test.X, test.Y, HierConfig{
		Config:      Config{Rounds: 1, Seed: 61, Faults: slow, LocalEpochs: 1, LocalBatch: 8, LR: 0.1},
		Aggregators: 2, SecureAgg: true, AggFaults: slow,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := hc.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if s.Late != 0 || s.AggLate != 0 {
		t.Fatalf("0 deadline produced late entries: %+v", s)
	}
	if s.Stragglers != s.Participants || s.AggStragglers != 2 {
		t.Fatalf("straggler counts: %+v", s)
	}
}

// TestAggregatorSubmitValidation table-drives the edge accumulator's
// error paths.
func TestAggregatorSubmitValidation(t *testing.T) {
	seeds := NewPairwiseSeeds(tensor.NewRNG(63), 3)
	if _, err := NewAggregator("a", seeds, 0); err == nil {
		t.Fatal("accepted zero dimension")
	}
	if _, err := NewAggregator("a", PairwiseSeeds{}, 4); err == nil {
		t.Fatal("accepted empty seeds")
	}
	if _, err := NewAggregator("a", PairwiseSeeds{{1, 2}, {1}}, 4); err == nil {
		t.Fatal("accepted ragged seeds")
	}
	agg, err := NewAggregator("a", seeds, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := []uint64{1, 2}
	if err := agg.Submit(3, m, 1); err == nil {
		t.Fatal("accepted out-of-range participant")
	}
	if err := agg.Submit(0, []uint64{1}, 1); err == nil {
		t.Fatal("accepted wrong-length update")
	}
	if err := agg.Submit(0, m, 0); err == nil {
		t.Fatal("accepted zero samples")
	}
	if err := agg.Submit(0, m, 1); err != nil {
		t.Fatal(err)
	}
	if err := agg.Submit(0, m, 1); err == nil {
		t.Fatal("accepted duplicate submission")
	}
	if agg.Received() != 1 {
		t.Fatalf("received %d", agg.Received())
	}
	empty, err := NewAggregator("b", seeds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := empty.Unmask(); err == nil {
		t.Fatal("unmasked an empty round")
	}
}

// TestMaskFixedCancelsExactly pins the ring arithmetic directly: masked
// contributions summed through the Aggregator equal the plain integer sum
// bit for bit, including after dropouts reconciled from surviving seeds.
func TestMaskFixedCancelsExactly(t *testing.T) {
	rng := tensor.NewRNG(65)
	const n, dim = 7, 64
	seeds := NewPairwiseSeeds(rng, n)
	contribs := make([][]int64, n)
	for i := range contribs {
		contribs[i] = make([]int64, dim)
		for k := range contribs[i] {
			contribs[i][k] = int64(rng.Intn(1<<30)) - (1 << 29)
		}
	}
	for _, absent := range [][]int{nil, {2}, {0, 5, 6}} {
		out := make(map[int]bool)
		for _, d := range absent {
			out[d] = true
		}
		agg, err := NewAggregator("t", seeds, dim)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]int64, dim)
		for i := 0; i < n; i++ {
			if out[i] {
				continue
			}
			masked, err := MaskFixed(contribs[i], i, seeds)
			if err != nil {
				t.Fatal(err)
			}
			if err := agg.Submit(i, masked, 1); err != nil {
				t.Fatal(err)
			}
			addInto(want, contribs[i])
		}
		got, samples, err := agg.Unmask()
		if err != nil {
			t.Fatal(err)
		}
		if samples != int64(n-len(absent)) {
			t.Fatalf("samples %d", samples)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("absent=%v: coordinate %d: %d != %d", absent, k, got[k], want[k])
			}
		}
	}
	if _, err := MaskFixed(contribs[0], 9, seeds); err == nil {
		t.Fatal("accepted out-of-range index")
	}
}

// TestAggregatorSharedRace hammers one shared Aggregator and one shared
// HierCoordinator from 64 goroutines at 1/4/16 engine workers; run under
// -race in CI. Wrapping addition commutes, so the masked total must come
// out identical regardless of submission order, and concurrent RunRound
// calls serialize into a deterministic round sequence.
func TestAggregatorSharedRace(t *testing.T) {
	const goroutines = 64
	rng := tensor.NewRNG(67)
	const dim = 32
	seeds := NewPairwiseSeeds(rng, goroutines)
	contribs := make([][]int64, goroutines)
	masked := make([][]uint64, goroutines)
	want := make([]int64, dim)
	for i := range contribs {
		contribs[i] = make([]int64, dim)
		for k := range contribs[i] {
			contribs[i][k] = int64(rng.Intn(1 << 20))
		}
		addInto(want, contribs[i])
		m, err := MaskFixed(contribs[i], i, seeds)
		if err != nil {
			t.Fatal(err)
		}
		masked[i] = m
	}
	agg, err := NewAggregator("race", seeds, dim)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := agg.Submit(i, masked[i], 1); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	got, _, err := agg.Unmask()
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("concurrent masked sum differs at %d: %d != %d", k, got[k], want[k])
		}
	}

	// Shared coordinator: 64 concurrent RunRound calls must serialize
	// into rounds 1..64 with a schedule-independent terminal model.
	var digests []string
	for _, workers := range []int{1, 4, 16} {
		global, clients, test := hierFixture(t, 16, 69)
		hc, err := NewHierCoordinator(global, clients, test.X, test.Y, HierConfig{
			Config: Config{
				Rounds: goroutines, LocalEpochs: 1, LocalBatch: 8, LR: 0.05, Seed: 71,
				Engine: engine.New(engine.Config{Workers: workers}),
			},
			Aggregators: 4, SecureAgg: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := hc.RunRound(); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
		if hc.Round() != goroutines {
			t.Fatalf("workers=%d: %d rounds ran", workers, hc.Round())
		}
		digests = append(digests, paramsDigest(hc.Global))
	}
	if digests[0] != digests[1] || digests[1] != digests[2] {
		t.Fatalf("terminal model depends on worker count: %v", digests)
	}
}

// TestPersonalizeCohortsDeterministic checks per-cohort personalization:
// every non-empty cohort gets a fine-tuned variant, bit-identical at any
// worker count, and frozen layers stay frozen.
func TestPersonalizeCohortsDeterministic(t *testing.T) {
	var want map[string]string
	for _, workers := range []int{1, 4, 16} {
		global, clients, test := hierFixture(t, 24, 73)
		hc, err := NewHierCoordinator(global, clients, test.X, test.Y, HierConfig{
			Config: Config{Rounds: 2, LocalEpochs: 1, LocalBatch: 8, LR: 0.1, Seed: 75,
				Engine: engine.New(engine.Config{Workers: workers})},
			Aggregators: 4, SecureAgg: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := hc.Run(); err != nil {
			t.Fatal(err)
		}
		nets, err := hc.PersonalizeCohorts(PersonalizeConfig{FreezeLayers: 2, Epochs: 2, BatchSize: 8, LR: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		if len(nets) != 4 {
			t.Fatalf("personalized %d cohorts, want 4", len(nets))
		}
		digests := make(map[string]string, len(nets))
		for id, n := range nets {
			digests[id] = paramsDigest(n)
			g0 := hc.Global.Layers()[0].(*nn.Dense).W.Value
			p0 := n.Layers()[0].(*nn.Dense).W.Value
			if !tensor.ApproxEqual(g0, p0, 0) {
				t.Fatalf("%s: frozen layer modified", id)
			}
			if digests[id] == paramsDigest(hc.Global) {
				t.Fatalf("%s: personalization did not move the head", id)
			}
		}
		if want == nil {
			want = digests
			continue
		}
		for id, d := range digests {
			if want[id] != d {
				t.Fatalf("workers=%d: cohort %s personalization depends on scheduling", workers, id)
			}
		}
	}
}

// TestPartialWireRoundTrip pins the varint cloud-uplink codec.
func TestPartialWireRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(79)
	q := make([]int64, 300)
	for k := range q {
		switch k % 3 {
		case 0: // sparse zeros dominate a compressed update
		case 1:
			q[k] = int64(rng.Intn(1 << 10))
		default:
			q[k] = -int64(rng.Uint64() >> 20)
		}
	}
	wire := encodePartial(12345, q)
	samples, got, err := decodePartial(wire)
	if err != nil {
		t.Fatal(err)
	}
	if samples != 12345 || len(got) != len(q) {
		t.Fatalf("header mangled: samples=%d dim=%d", samples, len(got))
	}
	for k := range q {
		if got[k] != q[k] {
			t.Fatalf("coordinate %d: %d != %d", k, got[k], q[k])
		}
	}
	// A sparse partial must beat the dense 8B/coordinate encoding.
	if len(wire) >= 8*len(q) {
		t.Fatalf("varint partial %dB not below dense %dB", len(wire), 8*len(q))
	}
	for _, bad := range [][]byte{nil, wire[:1], wire[:len(wire)-1], append(append([]byte{}, wire...), 0)} {
		if _, _, err := decodePartial(bad); err == nil {
			t.Fatalf("decoded corrupt partial of %d bytes", len(bad))
		}
	}
}

// TestQuantizeFixedDefinedOnHostileInputs pins NaN/Inf/saturation.
func TestQuantizeFixedDefinedOnHostileInputs(t *testing.T) {
	u := []float32{float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)), 0, -0.0, 1, -1, 1e30, -1e30}
	q := quantizeFixed(u)
	if q[0] != 0 {
		t.Fatalf("NaN -> %d", q[0])
	}
	if q[1] != fixedMax || q[2] != -fixedMax || q[7] != fixedMax || q[8] != -fixedMax {
		t.Fatalf("Inf/overflow not saturated: %v", q)
	}
	if q[3] != 0 || q[4] != 0 {
		t.Fatalf("zeros: %v", q[3:5])
	}
	if q[5] != fixedOne || q[6] != -fixedOne {
		t.Fatalf("±1 -> %d,%d", q[5], q[6])
	}
}
