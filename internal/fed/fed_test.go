package fed

import (
	"math"
	"testing"
	"testing/quick"

	"tinymlops/internal/dataset"
	"tinymlops/internal/device"
	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

func codecRoundTrip(t *testing.T, c Codec, update []float32) []float32 {
	t.Helper()
	payload, err := c.Encode(update)
	if err != nil {
		t.Fatalf("%s encode: %v", c.Name(), err)
	}
	out, err := c.Decode(payload, len(update))
	if err != nil {
		t.Fatalf("%s decode: %v", c.Name(), err)
	}
	return out
}

func TestNoneCodecLossless(t *testing.T) {
	rng := tensor.NewRNG(1)
	u := make([]float32, 257)
	for i := range u {
		u[i] = rng.NormFloat32()
	}
	got := codecRoundTrip(t, NoneCodec{}, u)
	for i := range u {
		if got[i] != u[i] {
			t.Fatalf("none codec lossy at %d", i)
		}
	}
}

func TestInt8CodecBoundedError(t *testing.T) {
	rng := tensor.NewRNG(2)
	u := make([]float32, 1000)
	var absMax float32
	for i := range u {
		u[i] = rng.NormFloat32() * 0.01
		if a := float32(math.Abs(float64(u[i]))); a > absMax {
			absMax = a
		}
	}
	got := codecRoundTrip(t, Int8Codec{}, u)
	bound := absMax/127/2 + 1e-9
	for i := range u {
		if math.Abs(float64(got[i]-u[i])) > float64(bound) {
			t.Fatalf("int8 error %g exceeds half-step %g", got[i]-u[i], bound)
		}
	}
}

func TestTernaryCodecSignsAndCompression(t *testing.T) {
	u := []float32{0.9, -0.8, 0.001, -0.002, 1.2, 0, -1.1, 0.003}
	c := TernaryCodec{}
	payload, err := c.Encode(u)
	if err != nil {
		t.Fatal(err)
	}
	// 4 bytes scale + ceil(8/4)=2 bytes codes.
	if len(payload) != 6 {
		t.Fatalf("ternary payload %dB, want 6", len(payload))
	}
	got, err := c.Decode(payload, len(u))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range u {
		switch {
		case v > 0.5 && got[i] <= 0:
			t.Fatalf("large positive at %d decoded to %v", i, got[i])
		case v < -0.5 && got[i] >= 0:
			t.Fatalf("large negative at %d decoded to %v", i, got[i])
		case math.Abs(float64(v)) < 0.01 && got[i] != 0:
			t.Fatalf("near-zero at %d decoded to %v", i, got[i])
		}
	}
}

func TestTopKCodecKeepsLargest(t *testing.T) {
	u := []float32{0.01, -5, 0.02, 3, -0.03, 0.5}
	c := TopKCodec{Ratio: 0.34} // keep ceil(0.34*6)=3
	got := codecRoundTrip(t, c, u)
	if got[1] != -5 || got[3] != 3 || got[5] != 0.5 {
		t.Fatalf("topk lost large entries: %v", got)
	}
	if got[0] != 0 || got[2] != 0 || got[4] != 0 {
		t.Fatalf("topk kept small entries: %v", got)
	}
	if _, err := (TopKCodec{Ratio: 0}).Encode(u); err == nil {
		t.Fatal("accepted ratio 0")
	}
}

func TestCodecCompressionRatios(t *testing.T) {
	rng := tensor.NewRNG(3)
	n := 10000
	u := make([]float32, n)
	for i := range u {
		u[i] = rng.NormFloat32()
	}
	raw, _ := NoneCodec{}.Encode(u)
	i8, _ := Int8Codec{}.Encode(u)
	tern, _ := TernaryCodec{}.Encode(u)
	topk, _ := TopKCodec{Ratio: 0.01}.Encode(u)
	if len(raw) != 4*n {
		t.Fatalf("raw = %dB", len(raw))
	}
	if r := float64(len(raw)) / float64(len(i8)); r < 3.9 {
		t.Fatalf("int8 ratio %v < 3.9", r)
	}
	if r := float64(len(raw)) / float64(len(tern)); r < 15 {
		t.Fatalf("ternary ratio %v < 15", r)
	}
	if r := float64(len(raw)) / float64(len(topk)); r < 40 {
		t.Fatalf("topk(1%%) ratio %v < 40", r)
	}
}

// Property: every codec round-trips without error and preserves vector
// length for arbitrary sizes.
func TestCodecRoundTripProperty(t *testing.T) {
	codecs := []Codec{NoneCodec{}, Int8Codec{}, TernaryCodec{}, TopKCodec{Ratio: 0.1}}
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(500)
		u := make([]float32, n)
		for i := range u {
			u[i] = rng.NormFloat32()
		}
		for _, c := range codecs {
			payload, err := c.Encode(u)
			if err != nil {
				return false
			}
			out, err := c.Decode(payload, n)
			if err != nil || len(out) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// fedFixture builds a small non-IID federated problem.
func fedFixture(t *testing.T, alpha float64, seed uint64) (*nn.Network, []*Client, *dataset.Dataset) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	ds := dataset.Blobs(rng, 1200, 4, 3, 4)
	train, test := ds.Split(0.8, rng)
	shards := dataset.PartitionDirichlet(rng, train, 8, alpha)
	clients := MakeClients(train, shards, "c")
	global := nn.NewNetwork([]int{4}, nn.NewDense(4, 16, rng), nn.NewReLU(), nn.NewDense(16, 3, rng))
	return global, clients, test
}

func TestFedAvgLearns(t *testing.T) {
	global, clients, test := fedFixture(t, 10, 4) // near-IID
	co, err := NewCoordinator(global, clients, test.X, test.Y, Config{
		Rounds: 8, LocalEpochs: 2, LocalBatch: 16, LR: 0.1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	final := stats[len(stats)-1].TestAccuracy
	if final < 0.85 {
		t.Fatalf("FedAvg final accuracy %v < 0.85", final)
	}
	if stats[0].UplinkBytes == 0 || stats[0].DownlinkBytes == 0 {
		t.Fatalf("communication not accounted: %+v", stats[0])
	}
	if stats[0].Participants != 8 {
		t.Fatalf("participants = %d, want 8", stats[0].Participants)
	}
}

func TestFedAvgWithCompressionStillLearnsAndSavesBytes(t *testing.T) {
	globalRaw, clientsRaw, test := fedFixture(t, 10, 6)
	coRaw, _ := NewCoordinator(globalRaw, clientsRaw, test.X, test.Y, Config{
		Rounds: 6, LocalEpochs: 1, LocalBatch: 16, LR: 0.1, Seed: 7,
	})
	rawStats, err := coRaw.Run()
	if err != nil {
		t.Fatal(err)
	}
	globalT, clientsT, testT := fedFixture(t, 10, 6)
	coT, _ := NewCoordinator(globalT, clientsT, testT.X, testT.Y, Config{
		Rounds: 6, LocalEpochs: 1, LocalBatch: 16, LR: 0.1, Seed: 7,
		Codec: TernaryCodec{},
	})
	ternStats, err := coT.Run()
	if err != nil {
		t.Fatal(err)
	}
	var rawUp, ternUp int64
	for i := range rawStats {
		rawUp += rawStats[i].UplinkBytes
		ternUp += ternStats[i].UplinkBytes
	}
	if ratio := float64(rawUp) / float64(ternUp); ratio < 10 {
		t.Fatalf("ternary saved only %.1f×", ratio)
	}
	if acc := ternStats[len(ternStats)-1].TestAccuracy; acc < 0.75 {
		t.Fatalf("ternary-compressed FedAvg accuracy %v < 0.75", acc)
	}
}

func TestFedProxHelpsOnPathologicalNonIID(t *testing.T) {
	// With by-class shards FedAvg drifts; FedProx should not be (much)
	// worse and the run must complete. We assert both configurations
	// train and report accuracy above chance.
	for _, mu := range []float32{0, 0.1} {
		global, clients, test := fedFixture(t, 0.1, 8)
		co, _ := NewCoordinator(global, clients, test.X, test.Y, Config{
			Rounds: 6, LocalEpochs: 2, LocalBatch: 16, LR: 0.1, Seed: 9, ProximalMu: mu,
		})
		stats, err := co.Run()
		if err != nil {
			t.Fatal(err)
		}
		if acc := stats[len(stats)-1].TestAccuracy; acc < 0.5 {
			t.Fatalf("mu=%v accuracy %v < 0.5", mu, acc)
		}
	}
}

func TestClientSampling(t *testing.T) {
	global, clients, test := fedFixture(t, 10, 10)
	co, _ := NewCoordinator(global, clients, test.X, test.Y, Config{
		Rounds: 2, ClientsPerRound: 3, LocalEpochs: 1, LocalBatch: 16, LR: 0.1, Seed: 11,
	})
	s, err := co.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if s.Participants != 3 {
		t.Fatalf("participants = %d, want 3", s.Participants)
	}
}

func TestEligibilityGate(t *testing.T) {
	global, clients, test := fedFixture(t, 10, 12)
	// Attach devices: half are never charging.
	caps, _ := device.ProfileByName("phone")
	for i, c := range clients {
		d := device.NewDevice(c.ID, caps, tensor.NewRNG(uint64(100+i)))
		if i%2 == 0 {
			d.SetBehavior(1, 1, 0)
		} else {
			d.SetBehavior(0, 0, 1)
		}
		d.Tick()
		c.Device = d
	}
	co, _ := NewCoordinator(global, clients, test.X, test.Y, Config{
		Rounds: 1, LocalEpochs: 1, LocalBatch: 16, LR: 0.1, Seed: 13,
	})
	s, err := co.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if s.Participants != len(clients)/2 {
		t.Fatalf("participants = %d, want %d", s.Participants, len(clients)/2)
	}
	// Upload bytes charged to participating devices.
	var tx int64
	for _, c := range clients {
		tx += c.Device.Snapshot().TxBytes
	}
	if tx != s.UplinkBytes {
		t.Fatalf("device tx %d != uplink %d", tx, s.UplinkBytes)
	}
}

func TestNoEligibleClientsSkipsRound(t *testing.T) {
	global, clients, test := fedFixture(t, 10, 14)
	caps, _ := device.ProfileByName("phone")
	for i, c := range clients {
		d := device.NewDevice(c.ID, caps, tensor.NewRNG(uint64(200+i)))
		d.SetBehavior(0, 0, 1) // never eligible
		d.Tick()
		c.Device = d
	}
	co, _ := NewCoordinator(global, clients, test.X, test.Y, Config{Rounds: 1, Seed: 15})
	s, err := co.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if s.Participants != 0 || s.UplinkBytes != 0 {
		t.Fatalf("skipped round stats = %+v", s)
	}
}

func TestSecureAggregationMasksCancelExactly(t *testing.T) {
	rng := tensor.NewRNG(16)
	n, dim := 5, 200
	updates := make([][]float32, n)
	want := make([]float32, dim)
	for i := range updates {
		updates[i] = make([]float32, dim)
		for k := range updates[i] {
			updates[i][k] = rng.NormFloat32() * 0.01
			want[k] += updates[i][k]
		}
	}
	seeds := NewPairwiseSeeds(rng, n)
	masked := make([][]float32, n)
	for i := range updates {
		m, err := MaskUpdate(updates[i], i, seeds, 10)
		if err != nil {
			t.Fatal(err)
		}
		masked[i] = m
		// Privacy: the masked update must be nothing like the raw one.
		var dist float64
		for k := range m {
			d := float64(m[k] - updates[i][k])
			dist += d * d
		}
		if math.Sqrt(dist/float64(dim)) < 1 {
			t.Fatalf("client %d mask too weak", i)
		}
	}
	got, err := SumUpdates(masked)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if math.Abs(float64(got[k]-want[k])) > 2e-3 {
			t.Fatalf("masked sum differs at %d: %v vs %v", k, got[k], want[k])
		}
	}
}

func TestMaskUpdateValidation(t *testing.T) {
	seeds := NewPairwiseSeeds(tensor.NewRNG(17), 3)
	if _, err := MaskUpdate([]float32{1}, 5, seeds, 1); err == nil {
		t.Fatal("accepted out-of-range index")
	}
	if _, err := SumUpdates(nil); err == nil {
		t.Fatal("accepted empty sum")
	}
	if _, err := SumUpdates([][]float32{{1, 2}, {1}}); err == nil {
		t.Fatal("accepted ragged updates")
	}
}

func TestPersonalizationImprovesLocalAccuracy(t *testing.T) {
	rng := tensor.NewRNG(18)
	// Global model trained on standard pitch; local user has shifted pitch.
	globalData := dataset.KeywordSeq(rng, 1500, 32, 3, 0.1, 0)
	global := nn.NewNetwork([]int{32}, nn.NewDense(32, 24, rng), nn.NewReLU(), nn.NewDense(24, 3, rng))
	if _, err := nn.Train(global, globalData.X, globalData.Y, nn.TrainConfig{
		Epochs: 10, BatchSize: 32, Optimizer: nn.NewSGD(0.1).WithMomentum(0.9), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	localData := dataset.KeywordSeq(rng, 400, 32, 3, 0.1, 0.35)
	localTrain, localTest := localData.Split(0.7, rng)
	before := nn.Evaluate(global, localTest.X, localTest.Y)
	personal, err := Personalize(global, localTrain, PersonalizeConfig{
		FreezeLayers: 2, Epochs: 8, BatchSize: 16, LR: 0.05, RNG: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	after := nn.Evaluate(personal, localTest.X, localTest.Y)
	if after < before {
		t.Fatalf("personalization hurt: %v -> %v", before, after)
	}
	if after < 0.6 {
		t.Fatalf("personalized accuracy %v too low", after)
	}
	// Frozen layers must be unchanged.
	g0 := global.Layers()[0].(*nn.Dense).W.Value
	p0 := personal.Layers()[0].(*nn.Dense).W.Value
	if !tensor.ApproxEqual(g0, p0, 0) {
		t.Fatal("frozen layer was modified")
	}
}

func TestPersonalizeValidation(t *testing.T) {
	rng := tensor.NewRNG(19)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 2, rng))
	ds := dataset.Blobs(rng, 50, 4, 2, 3)
	if _, err := Personalize(net, ds, PersonalizeConfig{RNG: nil}); err == nil {
		t.Fatal("accepted nil RNG")
	}
	if _, err := Personalize(net, ds, PersonalizeConfig{RNG: rng, FreezeLayers: 5}); err == nil {
		t.Fatal("accepted FreezeLayers beyond layer count")
	}
}

func TestPseudoLabelConfidenceThreshold(t *testing.T) {
	rng := tensor.NewRNG(20)
	ds := dataset.Blobs(rng, 600, 4, 3, 6)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 16, rng), nn.NewReLU(), nn.NewDense(16, 3, rng))
	if _, err := nn.Train(net, ds.X, ds.Y, nn.TrainConfig{
		Epochs: 10, BatchSize: 32, Optimizer: nn.NewSGD(0.1).WithMomentum(0.9), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	idxLow, _ := PseudoLabel(net, ds.X, 0.5)
	idxHigh, labelsHigh := PseudoLabel(net, ds.X, 0.99)
	if len(idxHigh) > len(idxLow) {
		t.Fatal("higher threshold kept more examples")
	}
	// Confident pseudo-labels should be mostly correct.
	correct := 0
	for i, src := range idxHigh {
		if labelsHigh[i] == ds.Y[src] {
			correct++
		}
	}
	if len(idxHigh) > 0 && float64(correct)/float64(len(idxHigh)) < 0.9 {
		t.Fatalf("confident pseudo-labels only %.2f correct", float64(correct)/float64(len(idxHigh)))
	}
}

func TestSemiSupervisedRoundUsesConfidentExamples(t *testing.T) {
	rng := tensor.NewRNG(21)
	ds := dataset.Blobs(rng, 800, 4, 3, 6)
	train, test := ds.Split(0.5, rng)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 16, rng), nn.NewReLU(), nn.NewDense(16, 3, rng))
	if _, err := nn.Train(net, train.X, train.Y, nn.TrainConfig{
		Epochs: 6, BatchSize: 32, Optimizer: nn.NewSGD(0.1).WithMomentum(0.9), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	local, used, err := SemiSupervisedRound(net, test.X, 0.9, PersonalizeConfig{
		Epochs: 3, BatchSize: 16, LR: 0.02, RNG: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if used == 0 {
		t.Fatal("no confident examples found")
	}
	if acc := nn.Evaluate(local, test.X, test.Y); acc < 0.85 {
		t.Fatalf("semi-supervised model accuracy %v", acc)
	}
}

func TestCoordinatorValidation(t *testing.T) {
	rng := tensor.NewRNG(22)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 2, rng))
	if _, err := NewCoordinator(net, nil, nil, nil, Config{}); err == nil {
		t.Fatal("accepted zero clients")
	}
}

// TestClientFaultsDropoutsAndStragglers pins the fault-hook semantics:
// dropouts are excluded from training and uplink, late stragglers train
// and upload but are excluded from the aggregate, and the global model
// still converges from the survivors.
func TestClientFaultsDropoutsAndStragglers(t *testing.T) {
	global, clients, test := fedFixture(t, 10, 11)
	faults := func(round int, clientID string) ClientFault {
		switch clientID {
		case "c-000":
			return ClientFault{Dropout: true}
		case "c-001":
			return ClientFault{SlowFactor: 8} // past the deadline: late
		case "c-002":
			return ClientFault{SlowFactor: 2} // slow but in time
		}
		return ClientFault{}
	}
	co, err := NewCoordinator(global, clients, test.X, test.Y, Config{
		Rounds: 6, LocalEpochs: 2, LocalBatch: 16, LR: 0.1, Seed: 5,
		Faults: faults, StragglerDeadline: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := co.Run()
	if err != nil {
		t.Fatal(err)
	}
	s0 := stats[0]
	if s0.Dropouts != 1 || s0.Stragglers != 2 || s0.Late != 1 {
		t.Fatalf("fault counts = dropouts %d stragglers %d late %d", s0.Dropouts, s0.Stragglers, s0.Late)
	}
	if s0.Participants != 8 {
		t.Fatalf("participants = %d", s0.Participants)
	}
	final := stats[len(stats)-1].TestAccuracy
	if final < 0.8 {
		t.Fatalf("global accuracy %v under faults < 0.8", final)
	}
}

// TestClientFaultsUplinkAccounting distinguishes the radio cost of a
// dropout (nothing uploaded) from a late straggler (upload wasted).
func TestClientFaultsUplinkAccounting(t *testing.T) {
	run := func(faults func(int, string) ClientFault) RoundStats {
		global, clients, test := fedFixture(t, 10, 13)
		co, err := NewCoordinator(global, clients, test.X, test.Y, Config{
			Rounds: 1, LocalEpochs: 1, LocalBatch: 16, LR: 0.1, Seed: 5,
			Faults: faults, StragglerDeadline: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := co.Run()
		if err != nil {
			t.Fatal(err)
		}
		return stats[0]
	}
	clean := run(nil)
	drop := run(func(_ int, id string) ClientFault { return ClientFault{Dropout: id == "c-000"} })
	late := run(func(_ int, id string) ClientFault {
		if id == "c-000" {
			return ClientFault{SlowFactor: 100}
		}
		return ClientFault{}
	})
	if drop.UplinkBytes >= clean.UplinkBytes {
		t.Fatalf("dropout uplink %d not below clean %d", drop.UplinkBytes, clean.UplinkBytes)
	}
	if late.UplinkBytes != clean.UplinkBytes {
		t.Fatalf("late straggler uplink %d, want %d (the upload happened, just too late)", late.UplinkBytes, clean.UplinkBytes)
	}
	if drop.UplinkBytes >= late.UplinkBytes {
		t.Fatalf("dropout uplink %d must be below late-straggler uplink %d", drop.UplinkBytes, late.UplinkBytes)
	}
}
