package fed

import (
	"fmt"

	"tinymlops/internal/dataset"
	"tinymlops/internal/device"
	"tinymlops/internal/engine"
	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

// Client is one federated participant: a private data shard, optionally
// tied to a simulated device whose charger/WiFi state gates participation
// (§III-D: "calculate the model updates when the device is idle or
// connected to a charger").
type Client struct {
	ID   string
	Data *dataset.Dataset
	// Device, when set, gates participation on Charging() && WiFi.
	Device *device.Device
}

// Eligible reports whether the client may train this round.
func (c *Client) Eligible() bool {
	if c.Device == nil {
		return true
	}
	return c.Device.Charging() && c.Device.Net() == device.WiFi
}

// Config controls federated optimization.
type Config struct {
	// Rounds of federated averaging.
	Rounds int
	// ClientsPerRound samples this many eligible clients (0 = all). The
	// hierarchical coordinator applies the cap per cohort.
	ClientsPerRound int
	// LocalEpochs and LocalBatch configure each client's local training.
	LocalEpochs int
	LocalBatch  int
	// LR is the client learning rate.
	LR float32
	// ProximalMu, when > 0, adds the FedProx term μ/2·‖w−w_global‖² to
	// each client's objective, taming client drift on non-IID shards.
	ProximalMu float32
	// Codec compresses uplink updates (nil = NoneCodec).
	Codec Codec
	// Seed derives all stochasticity (client sampling, local shuffling).
	// A client's round-r training stream is a pure function of
	// (Seed, r, client ID), so the same client produces a bit-identical
	// update under any topology, worker count or iteration order.
	Seed uint64
	// Engine bounds the per-round client-training fan-out (nil = a
	// GOMAXPROCS-wide pool). Rounds previously spawned one goroutine per
	// sampled client, which at fleet scale meant thousands of concurrent
	// local trainings thrashing the scheduler.
	Engine *engine.Engine
	// Faults, when non-nil, injects per-round client failures after
	// sampling: a Dropout crashes the client before it trains (downlink
	// spent, nothing comes back), a SlowFactor > 1 marks it a straggler.
	// The hook is called once per sampled client per round and must be a
	// pure function of (round, clientID) so results stay worker-count
	// independent — the fault plane's derivation guarantees this.
	Faults func(round int, clientID string) ClientFault
	// StragglerDeadline, when > 0, is the SlowFactor beyond which a
	// straggler's update arrives after the aggregation deadline: the
	// client trained and uploaded (radio charged), but the server ignores
	// the late update. 0 waits for everyone.
	StragglerDeadline float64
}

// normalize fills Config defaults in place.
func (cfg *Config) normalize() {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	if cfg.LocalEpochs <= 0 {
		cfg.LocalEpochs = 1
	}
	if cfg.LocalBatch <= 0 {
		cfg.LocalBatch = 16
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.05
	}
	if cfg.Codec == nil {
		cfg.Codec = NoneCodec{}
	}
	if cfg.Engine == nil {
		cfg.Engine = engine.Default()
	}
}

// ClientFault is one sampled client's injected failure for one round.
type ClientFault struct {
	// Dropout crashes the client after it receives the global model and
	// before it returns an update.
	Dropout bool
	// SlowFactor > 1 marks the client a straggler. The factor's only
	// effect is the comparison against Config.StragglerDeadline: within
	// the deadline the update aggregates normally (and the round counts a
	// straggler), beyond it the update arrives too late to count — the
	// coordinator does not otherwise model per-client round time.
	SlowFactor float64
}

// RoundStats records one round's outcome.
type RoundStats struct {
	Round        int
	Participants int
	// UplinkBytes is the total update traffic across all tiers;
	// DownlinkBytes the total model broadcast traffic.
	UplinkBytes   int64
	DownlinkBytes int64
	// Per-tier accounting for the hierarchical topology. Edge covers
	// client ↔ aggregator traffic, Cloud covers aggregator ↔ coordinator.
	// The flat coordinator reports its single client ↔ cloud hop as the
	// cloud tier, so flat-vs-hierarchical cloud fan-in compares directly.
	EdgeUplinkBytes    int64
	EdgeDownlinkBytes  int64
	CloudUplinkBytes   int64
	CloudDownlinkBytes int64
	// TestAccuracy of the averaged global model (if a test set is given).
	TestAccuracy float64
	// Dropouts counts sampled clients that crashed before returning an
	// update; Stragglers counts slow clients, and Late the subset whose
	// update missed the aggregation deadline (trained and uploaded, but
	// excluded from the average). Aggregated counts only cover
	// Participants − Dropouts − Late clients.
	Dropouts   int
	Stragglers int
	Late       int
	// Cohorts is the edge-aggregator count (hierarchical rounds only);
	// AggDropouts/AggStragglers/AggLate are the aggregator-tier faults —
	// a dropped aggregator takes its whole cohort's contribution with it.
	Cohorts       int
	AggDropouts   int
	AggStragglers int
	AggLate       int
}

// Coordinator runs flat federated averaging over a set of clients.
type Coordinator struct {
	Global  *nn.Network
	Clients []*Client
	cfg     Config

	testX *tensor.Tensor
	testY []int
	rng   *tensor.RNG
	round int
}

// NewCoordinator builds a coordinator around a global model. testX/testY
// may be nil to skip accuracy tracking.
func NewCoordinator(global *nn.Network, clients []*Client, testX *tensor.Tensor, testY []int, cfg Config) (*Coordinator, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("fed: no clients")
	}
	cfg.normalize()
	return &Coordinator{
		Global: global, Clients: clients, cfg: cfg,
		testX: testX, testY: testY,
		rng: tensor.NewRNG(cfg.Seed),
	}, nil
}

// clientUpdate is a decoded update from one client.
type clientUpdate struct {
	delta   []float32
	samples int
	bytes   int
}

// RunRound executes one round of federated averaging and returns its
// statistics. Local training runs concurrently across sampled clients.
func (co *Coordinator) RunRound() (RoundStats, error) {
	co.round++
	stats := RoundStats{Round: co.round}

	var eligible []*Client
	for _, c := range co.Clients {
		if c.Eligible() {
			eligible = append(eligible, c)
		}
	}
	if len(eligible) == 0 {
		// No chargers + WiFi this round: skip, as a real fleet would.
		if co.testX != nil {
			stats.TestAccuracy = nn.Evaluate(co.Global, co.testX, co.testY)
		}
		return stats, nil
	}
	sampled := eligible
	if co.cfg.ClientsPerRound > 0 && co.cfg.ClientsPerRound < len(eligible) {
		perm := co.rng.Perm(len(eligible))
		sampled = make([]*Client, co.cfg.ClientsPerRound)
		for i := 0; i < co.cfg.ClientsPerRound; i++ {
			sampled[i] = eligible[perm[i]]
		}
	}
	stats.Participants = len(sampled)

	globalFlat := co.Global.FlatParams()
	modelBytes := int64(4 * len(globalFlat))
	// Every sampled client receives the broadcast — dropouts and late
	// stragglers included; their downlink is spent either way.
	stats.DownlinkBytes = modelBytes * int64(len(sampled))

	// Injected client faults, decided up front from (round, clientID) so
	// the round outcome cannot depend on scheduling. A dropout crashes
	// before training; a late straggler trains and uploads but its update
	// misses the deadline and is excluded from the average.
	faults := make([]ClientFault, len(sampled))
	late := make([]bool, len(sampled))
	if co.cfg.Faults != nil {
		for i, c := range sampled {
			f := co.cfg.Faults(co.round, c.ID)
			faults[i] = f
			if f.Dropout {
				stats.Dropouts++
				continue
			}
			if f.SlowFactor > 1 {
				stats.Stragglers++
				if co.cfg.StragglerDeadline > 0 && f.SlowFactor > co.cfg.StragglerDeadline {
					late[i] = true
					stats.Late++
				}
			}
		}
	}

	// Local trainings fan out over the bounded engine pool; each client's
	// stochasticity is derived from (Seed, round, ID), so the round result
	// does not depend on the worker count or iteration order.
	updates := make([]clientUpdate, len(sampled))
	if err := co.cfg.Engine.ForEach(len(sampled), func(i int) error {
		if faults[i].Dropout {
			return nil // crashed before training; zero update, zero uplink
		}
		var err error
		updates[i], err = localTrain(&co.cfg, co.Global, globalFlat, sampled[i], co.round)
		return err
	}); err != nil {
		return stats, err
	}
	for i := range updates {
		if late[i] {
			// The upload happened (bytes already charged below), but the
			// server aggregates without it.
			updates[i].samples = 0
			updates[i].delta = nil
		}
	}

	// Sample-weighted aggregation in int64 fixed point (see fixed.go):
	// integer addition is associative, so this flat sum is bit-identical
	// to any hierarchical grouping of the same contributions.
	total := make([]int64, len(globalFlat))
	var totalSamples int64
	for _, u := range updates {
		stats.UplinkBytes += int64(u.bytes)
		if u.samples == 0 || u.delta == nil {
			continue
		}
		addInto(total, contribution(quantizeFixed(u.delta), u.samples))
		totalSamples += int64(u.samples)
	}
	if totalSamples > 0 {
		if err := co.Global.SetFlatParams(applyFixed(globalFlat, total, totalSamples)); err != nil {
			return stats, err
		}
	}
	// Flat topology: the single hop is the cloud tier.
	stats.CloudUplinkBytes = stats.UplinkBytes
	stats.CloudDownlinkBytes = stats.DownlinkBytes
	if co.testX != nil {
		stats.TestAccuracy = nn.Evaluate(co.Global, co.testX, co.testY)
	}
	return stats, nil
}

// localTrain trains one client from the global weights and returns its
// encoded-then-decoded (i.e. lossy, as the server would see it) delta.
// The client's training stream derives from (cfg.Seed, round, client ID)
// alone — the flat and hierarchical coordinators share this function, so
// the same client produces a bit-identical update under either topology.
func localTrain(cfg *Config, global *nn.Network, globalFlat []float32, c *Client, round int) (clientUpdate, error) {
	local := global.Clone()
	if err := local.SetFlatParams(globalFlat); err != nil {
		return clientUpdate{}, err
	}
	tc := nn.TrainConfig{
		Epochs:    cfg.LocalEpochs,
		BatchSize: cfg.LocalBatch,
		Optimizer: nn.NewSGD(cfg.LR),
		RNG:       tensor.NewRNG(engine.SeedForID(cfg.Seed, uint64(round), "train|"+c.ID)),
	}
	if cfg.ProximalMu > 0 {
		mu := cfg.ProximalMu
		tc.ExtraGrad = func(net *nn.Network) {
			// ∇(μ/2·‖w−w_g‖²) = μ(w−w_g), applied parameter-wise.
			off := 0
			for _, p := range net.Params() {
				n := p.Value.Size()
				for k := 0; k < n; k++ {
					p.Grad.Data[k] += mu * (p.Value.Data[k] - globalFlat[off+k])
				}
				off += n
			}
		}
	}
	if _, err := nn.Train(local, c.Data.X, c.Data.Y, tc); err != nil {
		return clientUpdate{}, fmt.Errorf("fed: client %s: %w", c.ID, err)
	}
	localFlat := local.FlatParams()
	delta := make([]float32, len(localFlat))
	for j := range delta {
		delta[j] = localFlat[j] - globalFlat[j]
	}
	payload, err := cfg.Codec.Encode(delta)
	if err != nil {
		return clientUpdate{}, fmt.Errorf("fed: client %s encode: %w", c.ID, err)
	}
	decoded, err := cfg.Codec.Decode(payload, len(delta))
	if err != nil {
		return clientUpdate{}, fmt.Errorf("fed: client %s decode: %w", c.ID, err)
	}
	// Charge the uplink to the device radio when one is attached.
	if c.Device != nil {
		if _, err := c.Device.Upload(int64(len(payload))); err != nil {
			return clientUpdate{}, fmt.Errorf("fed: client %s upload: %w", c.ID, err)
		}
	}
	return clientUpdate{delta: decoded, samples: c.Data.Len(), bytes: len(payload)}, nil
}

// Run executes cfg.Rounds rounds and returns per-round statistics.
func (co *Coordinator) Run() ([]RoundStats, error) {
	out := make([]RoundStats, 0, co.cfg.Rounds)
	for r := 0; r < co.cfg.Rounds; r++ {
		s, err := co.RunRound()
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
	return out, nil
}

// MakeClients shards a dataset into federated clients using the provided
// partition (index lists per client).
func MakeClients(ds *dataset.Dataset, shards [][]int, idPrefix string) []*Client {
	out := make([]*Client, 0, len(shards))
	for i, shard := range shards {
		if len(shard) == 0 {
			continue
		}
		out = append(out, &Client{
			ID:   fmt.Sprintf("%s-%03d", idPrefix, i),
			Data: ds.Subset(shard),
		})
	}
	return out
}
