package fed

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Fixed-point aggregation substrate. Federated averaging in float32 is not
// associative: (a+b)+c differs from a+(b+c) in the last bits, so a
// two-tier topology that groups the same client updates differently —
// or a masked sum whose masks only cancel to rounding error — cannot be
// bit-identical to the flat reference. Aggregation therefore happens in
// int64 fixed point: each decoded update is quantized once at the client
// (Q44.20, far below the float32 resolution that survives a codec round
// trip), contributions are summed with wrapping integer addition (exactly
// associative and commutative), and the cloud converts back to float32
// once. Pairwise masks live in the same ring (uniform uint64 words added
// mod 2^64), so mask cancellation is exact, not approximate.

const (
	// fixedShift is the binary point: 20 fractional bits ≈ 1e-6
	// resolution, well under any useful learning-rate step.
	fixedShift = 20
	// fixedOne is 1.0 in fixed point.
	fixedOne = 1 << fixedShift
	// fixedMax clamps a single quantized coordinate to ±2^42 (±4.2e6 in
	// float units) so sample-weighted cohort sums stay far from int64
	// wraparound on any realistic fleet.
	fixedMax = int64(1) << 42
)

// quantizeFixed maps a decoded update vector into the fixed-point ring.
// Non-finite coordinates are defined away deterministically — NaN becomes
// 0, ±Inf saturates — so a poisoned update cannot make two aggregation
// orders disagree.
func quantizeFixed(update []float32) []int64 {
	q := make([]int64, len(update))
	for k, v := range update {
		f := float64(v) * fixedOne
		switch {
		case math.IsNaN(f):
			// q[k] stays 0
		case f >= float64(fixedMax):
			q[k] = fixedMax
		case f <= -float64(fixedMax):
			q[k] = -fixedMax
		default:
			q[k] = int64(math.RoundToEven(f))
		}
	}
	return q
}

// contribution returns the client's sample-weighted fixed-point vector
// samples·q — pre-scaling at the client is what lets a masked aggregator
// compute a weighted average without learning any individual weight.
func contribution(q []int64, samples int) []int64 {
	c := make([]int64, len(q))
	s := int64(samples)
	for k, v := range q {
		c[k] = s * v
	}
	return c
}

// addInto accumulates src into dst with wrapping int64 addition.
func addInto(dst, src []int64) {
	for k, v := range src {
		dst[k] += v
	}
}

// applyFixed converts an aggregated fixed-point total back to float32
// weights: next = global + total/(totalSamples·2^shift). This is the one
// float conversion in the whole aggregation path, performed identically
// by the flat and hierarchical coordinators.
func applyFixed(globalFlat []float32, total []int64, totalSamples int64) []float32 {
	next := make([]float32, len(globalFlat))
	denom := float64(totalSamples) * fixedOne
	for j := range next {
		next[j] = globalFlat[j] + float32(float64(total[j])/denom)
	}
	return next
}

// encodePartial serializes one aggregator's cohort partial for the cloud
// uplink: varint sample count, varint dimension, then one zigzag varint
// per fixed-point coordinate. Varints are exact (no float re-rounding on
// the wire) and small for the near-zero coordinates that dominate a
// compressed update, which is where the hierarchical fan-in saving at the
// cloud tier comes from.
func encodePartial(samples int64, q []int64) []byte {
	buf := make([]byte, 0, 2*binary.MaxVarintLen64+len(q)*3)
	var tmp [binary.MaxVarintLen64]byte
	buf = append(buf, tmp[:binary.PutVarint(tmp[:], samples)]...)
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(q)))]...)
	for _, v := range q {
		buf = append(buf, tmp[:binary.PutVarint(tmp[:], v)]...)
	}
	return buf
}

// decodePartial reverses encodePartial.
func decodePartial(payload []byte) (samples int64, q []int64, err error) {
	samples, n := binary.Varint(payload)
	if n <= 0 {
		return 0, nil, fmt.Errorf("fed: partial header truncated")
	}
	payload = payload[n:]
	dim, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, nil, fmt.Errorf("fed: partial dimension truncated")
	}
	payload = payload[n:]
	q = make([]int64, dim)
	for k := range q {
		v, n := binary.Varint(payload)
		if n <= 0 {
			return 0, nil, fmt.Errorf("fed: partial coordinate %d truncated", k)
		}
		q[k] = v
		payload = payload[n:]
	}
	if len(payload) != 0 {
		return 0, nil, fmt.Errorf("fed: %d trailing bytes after partial", len(payload))
	}
	return samples, q, nil
}
