package fed

import (
	"fmt"
	"sync"

	"tinymlops/internal/dataset"
	"tinymlops/internal/engine"
	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

// Two-tier federated topology: edge aggregators each own a sharded cohort
// of clients and talk to the cloud coordinator on the cohort's behalf. A
// round is
//
//	cloud ──broadcast──▶ aggregator ──broadcast──▶ client
//	client ──masked fixed-point update──▶ aggregator
//	aggregator ──varint cohort partial──▶ cloud
//
// The cloud only ever sees one partial per aggregator (the fan-in saving
// that makes 100k-client rounds affordable on the vendor uplink), and
// with SecureAgg the aggregator only ever sees masked words plus the
// exact cohort sum — no individual update at either tier. Because every
// quantity that feeds the global model lives in the int64 fixed-point
// ring (see fixed.go), the hierarchical grouping is bit-identical to the
// flat coordinator's sum over the same clients, masks or no masks.

// HierConfig controls a hierarchical federated run. The embedded Config
// carries the client-tier knobs with flat-identical semantics
// (ClientsPerRound caps each cohort's sample).
type HierConfig struct {
	Config
	// Aggregators is the edge-tier width; each client is assigned to one
	// of the cohorts by engine.ShardForID(Seed, clientID, Aggregators),
	// so the partition is stable at any worker count or client order.
	Aggregators int
	// SecureAgg runs the edge tier over masked fixed-point updates:
	// clients upload pairwise-masked vectors, the aggregator learns only
	// the cohort sum, and dropped clients' masks are reconciled exactly
	// from the surviving peers' seeds. Every round cross-checks the
	// unmasked reference and errors on any bit difference.
	SecureAgg bool
	// AggFaults injects aggregator-tier weather, with the same semantics
	// as Config.Faults one tier up: a Dropout crashes the aggregator
	// before it fans out (its whole cohort sits the round out), a
	// SlowFactor past AggStragglerDeadline delivers the cohort partial
	// after the cloud's deadline (edge traffic spent, contribution lost).
	AggFaults func(round int, aggID string) ClientFault
	// AggStragglerDeadline is the cloud tier's deadline (0 waits).
	AggStragglerDeadline float64
}

// Cohort is one edge aggregator's client set.
type Cohort struct {
	// ID names the aggregator ("agg-017"); fault draws key off it.
	ID string
	// Clients, in fleet order. Membership is fixed for the run.
	Clients []*Client
}

// HierCoordinator runs two-tier federated averaging. Methods serialize on
// an internal mutex, so a shared coordinator is safe under concurrent
// callers; the round result itself never depends on scheduling.
type HierCoordinator struct {
	Global  *nn.Network
	Cohorts []*Cohort
	cfg     HierConfig

	mu    sync.Mutex
	testX *tensor.Tensor
	testY []int
	round int
	// prev is the global as of the last broadcast, so each round's
	// downlink ships a bit-exact nn delta patch rather than the full
	// artifact (full artifact on the first round only).
	prev *nn.Network
}

// NewHierCoordinator shards clients into cfg.Aggregators cohorts and
// builds the two-tier coordinator. testX/testY may be nil to skip
// accuracy tracking.
func NewHierCoordinator(global *nn.Network, clients []*Client, testX *tensor.Tensor, testY []int, cfg HierConfig) (*HierCoordinator, error) {
	if global == nil {
		return nil, fmt.Errorf("fed: hier: nil global model")
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("fed: hier: no clients")
	}
	if cfg.Aggregators < 1 {
		return nil, fmt.Errorf("fed: hier: %d aggregators", cfg.Aggregators)
	}
	if cfg.Aggregators > len(clients) {
		return nil, fmt.Errorf("fed: hier: %d aggregators for %d clients", cfg.Aggregators, len(clients))
	}
	seen := make(map[string]bool, len(clients))
	for _, c := range clients {
		if c == nil || c.Data == nil {
			return nil, fmt.Errorf("fed: hier: nil client or client data")
		}
		if seen[c.ID] {
			return nil, fmt.Errorf("fed: hier: duplicate client ID %q", c.ID)
		}
		seen[c.ID] = true
	}
	cfg.normalize()
	cohorts := make([]*Cohort, cfg.Aggregators)
	for i := range cohorts {
		cohorts[i] = &Cohort{ID: fmt.Sprintf("agg-%03d", i)}
	}
	for _, c := range clients {
		i := engine.ShardForID(cfg.Seed, c.ID, cfg.Aggregators)
		cohorts[i].Clients = append(cohorts[i].Clients, c)
	}
	return &HierCoordinator{
		Global: global, Cohorts: cohorts, cfg: cfg,
		testX: testX, testY: testY,
	}, nil
}

// Round returns how many rounds have completed.
func (hc *HierCoordinator) Round() int {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	return hc.round
}

// cohortResult is one aggregator's round outcome, merged serially by the
// cloud after the edge fan-out.
type cohortResult struct {
	wire         []byte // varint cohort partial (nil when nothing survived)
	participants int
	dropouts     int
	stragglers   int
	late         int
	edgeUp       int64
	edgeDown     int64
	aggDropout   bool
	aggStraggler bool
	aggLate      bool
}

// RunRound executes one two-tier round and returns its statistics.
// Cohorts fan out over the engine pool; everything inside a cohort is
// serial, and the cloud merge walks cohorts in index order, so the round
// is bit-identical at any worker count.
func (hc *HierCoordinator) RunRound() (RoundStats, error) {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	hc.round++
	round := hc.round
	stats := RoundStats{Round: round, Cohorts: len(hc.Cohorts)}

	globalFlat := hc.Global.FlatParams()
	// Broadcast payload: the first round ships the full artifact, later
	// rounds a bit-exact delta patch against the previous broadcast.
	var bcastBytes int64
	if hc.prev == nil {
		blob, err := hc.Global.MarshalBinary()
		if err != nil {
			return stats, err
		}
		bcastBytes = int64(len(blob))
	} else {
		patch, err := nn.EncodeDelta(hc.prev, hc.Global)
		if err != nil {
			return stats, err
		}
		bcastBytes = int64(len(patch))
	}
	hc.prev = hc.Global.Clone()

	results := make([]cohortResult, len(hc.Cohorts))
	if err := hc.cfg.Engine.ForEach(len(hc.Cohorts), func(i int) error {
		r, err := hc.runCohort(hc.Cohorts[i], round, globalFlat, bcastBytes)
		if err != nil {
			return fmt.Errorf("fed: %s: %w", hc.Cohorts[i].ID, err)
		}
		results[i] = r
		return nil
	}); err != nil {
		return stats, err
	}

	// Cloud merge, serial in cohort order. Integer addition commutes, so
	// the order is only for the stats' sake.
	total := make([]int64, len(globalFlat))
	var totalSamples int64
	for _, r := range results {
		stats.Participants += r.participants
		stats.Dropouts += r.dropouts
		stats.Stragglers += r.stragglers
		stats.Late += r.late
		stats.EdgeUplinkBytes += r.edgeUp
		stats.EdgeDownlinkBytes += r.edgeDown
		if r.aggDropout {
			stats.AggDropouts++
			stats.CloudDownlinkBytes += bcastBytes // broadcast was sent
			continue
		}
		stats.CloudDownlinkBytes += bcastBytes
		if r.aggStraggler {
			stats.AggStragglers++
		}
		if r.wire == nil {
			continue // nothing survived in the cohort
		}
		stats.CloudUplinkBytes += int64(len(r.wire))
		if r.aggLate {
			stats.AggLate++
			continue // partial arrived past the cloud deadline
		}
		samples, partial, err := decodePartial(r.wire)
		if err != nil {
			return stats, err
		}
		if len(partial) != len(total) {
			return stats, fmt.Errorf("fed: cohort partial dimension %d, want %d", len(partial), len(total))
		}
		addInto(total, partial)
		totalSamples += samples
	}
	stats.UplinkBytes = stats.EdgeUplinkBytes + stats.CloudUplinkBytes
	stats.DownlinkBytes = stats.EdgeDownlinkBytes + stats.CloudDownlinkBytes

	if totalSamples > 0 {
		if err := hc.Global.SetFlatParams(applyFixed(globalFlat, total, totalSamples)); err != nil {
			return stats, err
		}
	}
	if hc.testX != nil {
		stats.TestAccuracy = nn.Evaluate(hc.Global, hc.testX, hc.testY)
	}
	return stats, nil
}

// runCohort runs one aggregator's edge round: sample the cohort, train
// survivors, collect (masked) fixed-point contributions, reconcile masks
// and produce the cohort partial wire.
func (hc *HierCoordinator) runCohort(co *Cohort, round int, globalFlat []float32, bcastBytes int64) (cohortResult, error) {
	cfg := &hc.cfg
	var res cohortResult

	// Aggregator-tier weather first: a dropped aggregator crashes before
	// fanning out, so its cohort sees no traffic at all this round.
	if cfg.AggFaults != nil {
		af := cfg.AggFaults(round, co.ID)
		if af.Dropout {
			res.aggDropout = true
			return res, nil
		}
		if af.SlowFactor > 1 {
			res.aggStraggler = true
			if cfg.AggStragglerDeadline > 0 && af.SlowFactor > cfg.AggStragglerDeadline {
				res.aggLate = true
			}
		}
	}

	var eligible []*Client
	for _, c := range co.Clients {
		if c.Eligible() {
			eligible = append(eligible, c)
		}
	}
	if len(eligible) == 0 {
		return res, nil
	}
	sampled := eligible
	if cfg.ClientsPerRound > 0 && cfg.ClientsPerRound < len(eligible) {
		rng := tensor.NewRNG(engine.SeedForID(cfg.Seed, uint64(round), "sample|"+co.ID))
		perm := rng.Perm(len(eligible))
		sampled = make([]*Client, cfg.ClientsPerRound)
		for i := range sampled {
			sampled[i] = eligible[perm[i]]
		}
	}
	res.participants = len(sampled)
	res.edgeDown = bcastBytes * int64(len(sampled))

	// Client weather, decided up front — same semantics as the flat tier.
	faults := make([]ClientFault, len(sampled))
	late := make([]bool, len(sampled))
	for i, c := range sampled {
		if cfg.Faults == nil {
			continue
		}
		f := cfg.Faults(round, c.ID)
		faults[i] = f
		if f.Dropout {
			res.dropouts++
			continue
		}
		if f.SlowFactor > 1 {
			res.stragglers++
			if cfg.StragglerDeadline > 0 && f.SlowFactor > cfg.StragglerDeadline {
				late[i] = true
				res.late++
			}
		}
	}

	// The round's pairwise seeds cover every sampled client — agreed at
	// fan-out time, before anyone knows who will drop.
	var agg *Aggregator
	var seeds PairwiseSeeds
	if cfg.SecureAgg {
		seeds = NewPairwiseSeeds(tensor.NewRNG(engine.SeedForID(cfg.Seed, uint64(round), "pairwise|"+co.ID)), len(sampled))
		var err error
		agg, err = NewAggregator(co.ID, seeds, len(globalFlat))
		if err != nil {
			return res, err
		}
	}

	// reference is the unmasked integer sum the masked path must
	// reproduce bit for bit (and the whole partial when SecureAgg is off).
	reference := make([]int64, len(globalFlat))
	var refSamples int64
	for i, c := range sampled {
		if faults[i].Dropout {
			continue // crashed before training; no edge traffic
		}
		u, err := localTrain(&cfg.Config, hc.Global, globalFlat, c, round)
		if err != nil {
			return res, err
		}
		q := quantizeFixed(u.delta)
		contrib := contribution(q, u.samples)
		// Edge uplink: masked mode ships the dense uint64 vector plus a
		// sample-count header — uniform mask words are incompressible;
		// that is the privacy price. Plain mode wraps the codec payload
		// in the nn delta container (exact sparse-or-dense patches).
		wire := int64(8*len(contrib) + 8)
		if !cfg.SecureAgg {
			wire, err = plainWireBytes(hc.Global, globalFlat, u.delta)
			if err != nil {
				return res, fmt.Errorf("client %s wire: %w", c.ID, err)
			}
		}
		res.edgeUp += wire
		if c.Device != nil {
			// localTrain charged the codec payload; top up to the edge
			// wire when the container is bigger.
			if extra := wire - int64(u.bytes); extra > 0 {
				if _, err := c.Device.Upload(extra); err != nil {
					return res, fmt.Errorf("client %s upload: %w", c.ID, err)
				}
			}
		}
		if late[i] {
			continue // uploaded, but past the edge deadline: not summed
		}
		addInto(reference, contrib)
		refSamples += int64(u.samples)
		if cfg.SecureAgg {
			masked, err := MaskFixed(contrib, i, seeds)
			if err != nil {
				return res, err
			}
			if err := agg.Submit(i, masked, u.samples); err != nil {
				return res, err
			}
		}
	}
	if refSamples == 0 {
		return res, nil // every sampled client dropped or arrived late
	}

	partial := reference
	if cfg.SecureAgg {
		unmasked, samples, err := agg.Unmask()
		if err != nil {
			return res, err
		}
		if samples != refSamples {
			return res, fmt.Errorf("masked sample total %d != reference %d", samples, refSamples)
		}
		// The invariant the whole tier stands on: after reconciling the
		// masks of dropped and late clients, the masked sum must equal
		// the unmasked reference exactly.
		for k := range unmasked {
			if unmasked[k] != reference[k] {
				return res, fmt.Errorf("mask cancellation broke at coordinate %d: masked %d != reference %d", k, unmasked[k], reference[k])
			}
		}
		partial = unmasked
	}
	res.wire = encodePartial(refSamples, partial)
	return res, nil
}

// plainWireBytes measures the unmasked edge uplink: the codec-decoded
// update applied to the global and shipped as an nn delta patch — the
// sparse codecs (top-k, ternary) stay sparse on the wire, the dense ones
// pay dense bytes.
func plainWireBytes(global *nn.Network, globalFlat, decoded []float32) (int64, error) {
	local := global.Clone()
	next := make([]float32, len(globalFlat))
	for j := range next {
		next[j] = globalFlat[j] + decoded[j]
	}
	if err := local.SetFlatParams(next); err != nil {
		return 0, err
	}
	patch, err := nn.EncodeDelta(global, local)
	if err != nil {
		return 0, err
	}
	return int64(len(patch)), nil
}

// Run executes cfg.Rounds rounds and returns per-round statistics.
func (hc *HierCoordinator) Run() ([]RoundStats, error) {
	out := make([]RoundStats, 0, hc.cfg.Rounds)
	for r := 0; r < hc.cfg.Rounds; r++ {
		s, err := hc.RunRound()
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
	return out, nil
}

// PersonalizeCohorts layers per-cohort fine-tuning on the current global:
// each cohort pools its clients' private shards and trains a personal
// variant (frozen shared layers and all — see Personalize), keyed by
// aggregator ID. Each cohort's stream derives from (Seed, round, ID), so
// the map is bit-identical at any worker count.
func (hc *HierCoordinator) PersonalizeCohorts(cfg PersonalizeConfig) (map[string]*nn.Network, error) {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	nets := make([]*nn.Network, len(hc.Cohorts))
	if err := hc.cfg.Engine.ForEach(len(hc.Cohorts), func(i int) error {
		co := hc.Cohorts[i]
		if len(co.Clients) == 0 {
			return nil
		}
		pooled, err := poolCohortData(co)
		if err != nil {
			return fmt.Errorf("fed: %s: %w", co.ID, err)
		}
		pcfg := cfg
		pcfg.RNG = tensor.NewRNG(engine.SeedForID(hc.cfg.Seed, uint64(hc.round), "personalize|"+co.ID))
		net, err := Personalize(hc.Global, pooled, pcfg)
		if err != nil {
			return fmt.Errorf("fed: %s: %w", co.ID, err)
		}
		nets[i] = net
		return nil
	}); err != nil {
		return nil, err
	}
	out := make(map[string]*nn.Network, len(hc.Cohorts))
	for i, n := range nets {
		if n != nil {
			out[hc.Cohorts[i].ID] = n
		}
	}
	return out, nil
}

// poolCohortData concatenates a cohort's client shards into one dataset.
func poolCohortData(co *Cohort) (*dataset.Dataset, error) {
	rows, classes := 0, 0
	var es int
	var shape []int
	for _, c := range co.Clients {
		rows += c.Data.Len()
		if c.Data.NumClasses > classes {
			classes = c.Data.NumClasses
		}
		if shape == nil {
			shape = c.Data.X.Shape()
			es = c.Data.X.Size() / c.Data.Len()
		} else if c.Data.X.Size()/c.Data.Len() != es {
			return nil, fmt.Errorf("mismatched example shapes across cohort shards")
		}
	}
	if rows == 0 {
		return nil, fmt.Errorf("cohort has no data")
	}
	x := tensor.New(append([]int{rows}, shape[1:]...)...)
	y := make([]int, 0, rows)
	off := 0
	for _, c := range co.Clients {
		n := c.Data.Len() * es
		copy(x.Data[off:off+n], c.Data.X.Data[:n])
		off += n
		y = append(y, c.Data.Y...)
	}
	return &dataset.Dataset{Name: co.ID, X: x, Y: y, NumClasses: classes}, nil
}
