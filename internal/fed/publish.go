package fed

import (
	"fmt"

	"tinymlops/internal/nn"
	"tinymlops/internal/registry"
	"tinymlops/internal/tensor"
)

// publishGlobal registers a coordinator's global model as a new base
// version of the named model line — deriving the full variant matrix via
// the registry's optimization pipeline — and tags its provenance. The
// published base is a rollout candidate: a federated round feeds straight
// into a staged fleet update (§III-D closing into §III-A).
func publishGlobal(r *registry.Registry, name string, spec registry.OptimizationSpec,
	global *nn.Network, rounds int, testX *tensor.Tensor, testY []int, tags map[string]string) ([]*registry.ModelVersion, error) {
	if spec.Evaluate == nil {
		if testX == nil {
			return nil, fmt.Errorf("fed: publish needs spec.Evaluate or a coordinator test set")
		}
		spec.Evaluate = func(n *nn.Network) float64 { return nn.Evaluate(n, testX, testY) }
	}
	versions, err := r.RegisterWithVariants(name, global, spec.Evaluate(global), spec)
	if err != nil {
		return nil, err
	}
	base := versions[0]
	if err := r.SetTag(base.ID, "source", "federated"); err != nil {
		return nil, err
	}
	if err := r.SetTag(base.ID, "fed:rounds", fmt.Sprintf("%d", rounds)); err != nil {
		return nil, err
	}
	for k, v := range tags {
		if err := r.SetTag(base.ID, k, v); err != nil {
			return nil, err
		}
	}
	return versions, nil
}

// PublishGlobal registers the flat coordinator's current global model as a
// federated-aggregate rollout candidate.
func (co *Coordinator) PublishGlobal(r *registry.Registry, name string, spec registry.OptimizationSpec) ([]*registry.ModelVersion, error) {
	return publishGlobal(r, name, spec, co.Global, co.round, co.testX, co.testY, nil)
}

// PublishGlobal registers the hierarchical coordinator's current global
// model as a rollout candidate, tagged with the two-tier topology.
func (hc *HierCoordinator) PublishGlobal(r *registry.Registry, name string, spec registry.OptimizationSpec) ([]*registry.ModelVersion, error) {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	return publishGlobal(r, name, spec, hc.Global, hc.round, hc.testX, hc.testY, map[string]string{
		"fed:topology":    "hierarchical",
		"fed:aggregators": fmt.Sprintf("%d", len(hc.Cohorts)),
	})
}
