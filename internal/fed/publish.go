package fed

import (
	"fmt"

	"tinymlops/internal/nn"
	"tinymlops/internal/registry"
)

// PublishGlobal registers the coordinator's current global model as a new
// base version of the named model line — deriving the full variant matrix
// via the registry's optimization pipeline — and tags it as a federated
// aggregate. The published base is a rollout candidate: a federated round
// feeds straight into a staged fleet update (§III-D closing into §III-A).
func (co *Coordinator) PublishGlobal(r *registry.Registry, name string, spec registry.OptimizationSpec) ([]*registry.ModelVersion, error) {
	if spec.Evaluate == nil {
		if co.testX == nil {
			return nil, fmt.Errorf("fed: publish needs spec.Evaluate or a coordinator test set")
		}
		spec.Evaluate = func(n *nn.Network) float64 { return nn.Evaluate(n, co.testX, co.testY) }
	}
	versions, err := r.RegisterWithVariants(name, co.Global, spec.Evaluate(co.Global), spec)
	if err != nil {
		return nil, err
	}
	base := versions[0]
	if err := r.SetTag(base.ID, "source", "federated"); err != nil {
		return nil, err
	}
	if err := r.SetTag(base.ID, "fed:rounds", fmt.Sprintf("%d", co.round)); err != nil {
		return nil, err
	}
	return versions, nil
}
