package engine

// ShardForID deterministically assigns a string-keyed entity (a federated
// client, a device) to one of n shards under a root seed. The assignment
// hashes the ID — not a positional index — so an entity's shard is stable
// across fleet subsets, iteration orders and worker counts, and it is
// fixed for the lifetime of the root seed (round-independent): a federated
// cohort must not migrate between edge aggregators mid-run.
func ShardForID(root uint64, id string, n int) int {
	if n <= 1 {
		return 0
	}
	return int(SeedForID(root, 0, "shard|"+id) % uint64(n))
}
