package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"tinymlops/internal/device"
	"tinymlops/internal/tensor"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		e := New(Config{Workers: workers})
		const n = 1000
		var hits [n]atomic.Int32
		if err := e.ForEach(n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachJoinsErrorsInIndexOrder(t *testing.T) {
	e := New(Config{Workers: 4})
	err := e.ForEach(10, func(i int) error {
		if i%3 == 0 {
			return fmt.Errorf("task %d failed", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	// errors.Join preserves slice order, which is index order.
	if !strings.Contains(msg, "task 0 failed") || !strings.Contains(msg, "task 9 failed") {
		t.Fatalf("unexpected joined error: %v", msg)
	}
	if strings.Index(msg, "task 0") > strings.Index(msg, "task 9") {
		t.Fatalf("errors not in index order: %v", msg)
	}
}

func TestForEachRecoversPanics(t *testing.T) {
	e := New(Config{Workers: 3})
	err := e.ForEach(8, func(i int) error {
		if i == 5 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "task 5 panicked: kaboom") {
		t.Fatalf("panic not converted to error: %v", err)
	}
}

func TestMapCollectsInIndexOrder(t *testing.T) {
	e := New(Config{Workers: 8})
	out, err := Map(e, 100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestSeedForDependsOnlyOnCoordinates(t *testing.T) {
	if SeedFor(1, 2, 3) != SeedFor(1, 2, 3) {
		t.Fatal("SeedFor is not a pure function")
	}
	seen := make(map[uint64]bool)
	for r := uint64(0); r < 10; r++ {
		for i := 0; i < 10; i++ {
			s := SeedFor(42, r, i)
			if seen[s] {
				t.Fatalf("seed collision at round %d index %d", r, i)
			}
			seen[s] = true
		}
	}
}

// roundFingerprint runs rounds of per-device work (RNG draws + simulated
// inference) and folds every outcome into a deterministic fingerprint.
func roundFingerprint(t *testing.T, workers, rounds int) uint64 {
	t.Helper()
	fleet, err := device.NewStandardFleet(device.FleetSpec{CountPerProfile: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r := NewFleetRunner(New(Config{Workers: workers}), fleet, 7)
	var fp uint64
	for round := 0; round < rounds; round++ {
		r.Tick()
		results := RunRound(r, func(d *device.Device, rng *tensor.RNG) (uint64, error) {
			v := rng.Uint64()
			lat, err := d.RunInference(1000+int64(rng.Intn(1000)), 8)
			if err != nil {
				return v, err
			}
			return v ^ uint64(lat), nil
		})
		for _, res := range results {
			fp = fp*1099511628211 ^ res.Value
			for _, c := range res.DeviceID {
				fp = fp*1099511628211 ^ uint64(c)
			}
			if res.Err != nil {
				fp ^= 0xDEAD
			}
		}
	}
	return fp
}

// TestFleetRoundsDeterministicAcrossWorkerCounts is the engine's core
// contract: same seed ⇒ identical fleet results at any worker count.
func TestFleetRoundsDeterministicAcrossWorkerCounts(t *testing.T) {
	want := roundFingerprint(t, 1, 3)
	for _, workers := range []int{2, 4, 16} {
		if got := roundFingerprint(t, workers, 3); got != want {
			t.Fatalf("workers=%d: fingerprint %x, want %x", workers, got, want)
		}
	}
}

func TestRunRoundKeepsInsertionOrderAndPanics(t *testing.T) {
	fleet := device.NewFleet()
	for i := 0; i < 10; i++ {
		caps, _ := device.ProfileByName("phone")
		if err := fleet.Add(device.NewDevice(fmt.Sprintf("p-%02d", i), caps, tensor.NewRNG(uint64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	r := NewFleetRunner(New(Config{Workers: 4}), fleet, 1)
	results := RunRound(r, func(d *device.Device, rng *tensor.RNG) (string, error) {
		if d.ID == "p-03" {
			panic("bad device")
		}
		if d.ID == "p-04" {
			return "", errors.New("flaky")
		}
		return d.ID, nil
	})
	if len(results) != 10 {
		t.Fatalf("%d results", len(results))
	}
	for i, res := range results {
		wantID := fmt.Sprintf("p-%02d", i)
		if res.DeviceID != wantID {
			t.Fatalf("result %d is %q, want %q (insertion order)", i, res.DeviceID, wantID)
		}
		switch wantID {
		case "p-03":
			if res.Err == nil || !strings.Contains(res.Err.Error(), "panicked") {
				t.Fatalf("panicking device error = %v", res.Err)
			}
		case "p-04":
			if res.Err == nil {
				t.Fatal("flaky device error lost")
			}
		default:
			if res.Err != nil || res.Value != wantID {
				t.Fatalf("device %s: value %q err %v", wantID, res.Value, res.Err)
			}
		}
	}
}
