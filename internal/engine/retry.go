package engine

import (
	"math"
	"time"
)

// RetryPolicy bounds how a transient failure is retried. The schedule is
// fully deterministic — no jitter, no wall-clock dependence — so a fleet
// round that retries flaky devices still produces bit-identical results at
// any worker count: the attempt sequence a device sees is a pure function
// of the policy, never of scheduling.
type RetryPolicy struct {
	// Attempts is the total number of tries (first call included). Values
	// ≤ 1 mean no retry.
	Attempts int
	// BaseBackoff is the modeled delay before the first retry; it doubles
	// on every further attempt (exponential schedule). Like every other
	// duration in the simulator it is accounting, not pacing: Retry
	// records the schedule in RetryResult.Backoff and never sleeps.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (0 = uncapped).
	MaxBackoff time.Duration
}

// Backoff returns the deterministic delay scheduled before the given
// retry (1-based: Backoff(1) precedes the second attempt).
func (p RetryPolicy) Backoff(retry int) time.Duration {
	if retry < 1 || p.BaseBackoff <= 0 {
		return 0
	}
	b := p.BaseBackoff << (retry - 1)
	// A shift overflow saturates — the schedule must stay monotone even
	// for an uncapped policy.
	if b < p.BaseBackoff {
		b = time.Duration(math.MaxInt64)
	}
	if p.MaxBackoff > 0 && b > p.MaxBackoff {
		b = p.MaxBackoff
	}
	return b
}

// RetryResult accounts one retried operation: how many attempts ran and
// how much modeled backoff the schedule inserted between them.
type RetryResult struct {
	Attempts int
	Backoff  time.Duration
}

// Retry runs fn up to p.Attempts times, accounting the deterministic
// backoff schedule between attempts, and returns the last error (nil on
// success) plus the attempt accounting. The backoff is modeled time — it
// is summed into RetryResult.Backoff, never slept, so a fleet-wide wave
// of retries costs no wall clock. retryable decides whether an error is
// worth another try — nil retries everything. A non-retryable error (a
// topology mismatch, an exhausted quota) aborts immediately: retrying a
// permanent failure only burns the fleet's radio budget.
func Retry(p RetryPolicy, retryable func(error) bool, fn func(attempt int) error) (RetryResult, error) {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	res := RetryResult{}
	var err error
	for a := 1; a <= attempts; a++ {
		res.Attempts = a
		if err = fn(a); err == nil {
			return res, nil
		}
		if retryable != nil && !retryable(err) {
			return res, err
		}
		if a < attempts {
			res.Backoff += p.Backoff(a)
		}
	}
	return res, err
}

// SeedForID derives an independent 64-bit seed for a string-keyed entity
// (a device ID, a federated client ID) in round r under a root seed — the
// ID-keyed sibling of SeedFor. Because the derivation hashes the ID rather
// than a positional index, the stream an entity sees is stable across
// fleet subsets and iteration orders, which is what lets a fault plane
// assign per-device faults deterministically at any worker count.
func SeedForID(root, round uint64, id string) uint64 {
	// FNV-1a over the ID, then the same splitmix64 avalanche SeedFor uses.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	z := mix64(root + 0x9E3779B97F4A7C15*round)
	return mix64(z ^ h)
}
