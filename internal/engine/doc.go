// Package engine is the concurrent fleet execution substrate: a bounded
// worker pool plus deterministic seed derivation that lets thousands of
// simulated devices tick, infer, train and drift-check in parallel while
// producing results that are bit-identical to a serial run.
//
// The paper frames TinyMLOps as operating ML across fleets of "millions of
// users" (§I, §III-B); a serial per-device loop cannot exercise that scale.
// The engine solves the operational half of the problem: Engine.ForEach and
// Map fan indexed work out over a fixed number of workers with dynamic
// block scheduling, and SeedFor/RNGFor derive each task's randomness from
// (root seed, round, index) alone — never from scheduling order — so a
// fleet round gives identical results at one worker or sixty-four.
// FleetRunner ties the two together for device.Fleet: parallel ticks and
// per-device round work (inference rounds, federated client updates, drift
// checks) collected in fleet insertion order.
package engine
