package engine

import (
	"fmt"

	"tinymlops/internal/device"
	"tinymlops/internal/tensor"
)

// FleetRunner drives a device.Fleet through deterministic, parallel
// simulation rounds. Every round hands each device a private RNG derived
// from (fleet seed, round number, device index), so the outcome of a round
// is a pure function of the seed and the fleet — independent of the
// engine's worker count and of goroutine interleaving.
type FleetRunner struct {
	eng   *Engine
	fleet *device.Fleet
	seed  uint64
	round uint64
}

// NewFleetRunner returns a runner over fleet on eng, seeded with seed.
// A nil eng uses Default().
func NewFleetRunner(eng *Engine, fleet *device.Fleet, seed uint64) *FleetRunner {
	if eng == nil {
		eng = Default()
	}
	return &FleetRunner{eng: eng, fleet: fleet, seed: seed}
}

// Engine returns the underlying worker pool.
func (r *FleetRunner) Engine() *Engine { return r.eng }

// Round returns the number of completed rounds.
func (r *FleetRunner) Round() uint64 { return r.round }

// Tick advances every device's behavioral state in parallel. Each device
// owns its behavioral RNG, so tick order does not affect the outcome.
func (r *FleetRunner) Tick() {
	devs := r.fleet.Devices()
	_ = r.eng.ForEach(len(devs), func(i int) error {
		devs[i].Tick()
		return nil
	})
}

// DeviceWork is one device's slice of a fleet round: an inference burst, a
// federated client update, a drift check. The rng argument must be the
// work's only source of randomness; it is derived from the device index so
// results cannot depend on scheduling.
type DeviceWork[T any] func(d *device.Device, rng *tensor.RNG) (T, error)

// Result pairs a device with its outcome for one round.
type Result[T any] struct {
	DeviceID string
	Value    T
	Err      error
}

// RunRound executes work once per device across the pool and returns the
// results in fleet insertion order. Errors are collected per device rather
// than short-circuiting: one depleted battery must not abort a
// thousand-device round. (A top-level function because Go methods cannot
// be generic.)
func RunRound[T any](r *FleetRunner, work DeviceWork[T]) []Result[T] {
	devs := r.fleet.Devices()
	r.round++
	round := r.round
	out := make([]Result[T], len(devs))
	_ = r.eng.ForEach(len(devs), func(i int) error {
		d := devs[i]
		res := Result[T]{DeviceID: d.ID}
		func() {
			defer func() {
				if p := recover(); p != nil {
					res.Err = fmt.Errorf("engine: device %s panicked: %v", d.ID, p)
				}
			}()
			res.Value, res.Err = work(d, RNGFor(r.seed, round, i))
		}()
		out[i] = res
		return nil
	})
	return out
}
