package engine

import (
	"bytes"
	"sync"
)

// Arena is a per-worker scratch store for serving hot paths: a bag of
// reusable objects keyed by owner, so steady-state inference borrows its
// scratch (nn.Scratch, quant.QScratch, codec buffers) from the worker it
// runs on instead of allocating per call or pinning one scratch per
// deployment. An Arena is NOT safe for concurrent use — it models one
// worker's private slab; use an ArenaPool to hand arenas to goroutines.
type Arena struct {
	slots map[any]any
	bufs  map[int]*bytes.Buffer
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{slots: make(map[any]any), bufs: make(map[int]*bytes.Buffer)}
}

// Slot returns the arena's object for key, creating it with init on first
// use. Keys are typically owner pointers (a runnable, a session), so the
// lookup itself never allocates and each owner sees a stable per-arena
// object across calls.
func (a *Arena) Slot(key any, init func() any) any {
	if v, ok := a.slots[key]; ok {
		return v
	}
	v := init()
	a.slots[key] = v
	return v
}

// Buffer returns the arena's reusable byte buffer for tag, reset to empty.
// Tags separate independent uses within one owner (e.g. encode vs decode
// sides of a boundary codec).
func (a *Arena) Buffer(tag int) *bytes.Buffer {
	b, ok := a.bufs[tag]
	if !ok {
		b = new(bytes.Buffer)
		a.bufs[tag] = b
	}
	b.Reset()
	return b
}

// ArenaPool hands out arenas to serving goroutines: Acquire pops a free
// arena (or creates one — the pool grows to the peak concurrency and then
// stops allocating), Release returns it. The steady-state cost of an
// Acquire/Release pair is a mutex and two slice ops, so per-query
// borrowing is allocation-free.
type ArenaPool struct {
	mu      sync.Mutex
	free    []*Arena
	created int
}

// NewArenaPool returns an empty pool.
func NewArenaPool() *ArenaPool { return &ArenaPool{} }

// Acquire returns an arena for exclusive use until Release.
func (p *ArenaPool) Acquire() *Arena {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		a := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return a
	}
	p.created++
	return NewArena()
}

// Release returns an arena to the pool. The arena's contents are kept —
// that is the point: the next borrower reuses its warmed-up scratch.
func (p *ArenaPool) Release(a *Arena) {
	if a == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, a)
	p.mu.Unlock()
}

// Created reports how many arenas the pool has ever built — in a bounded
// serving loop this converges to the worker count, which the alloc tests
// assert indirectly by demanding zero steady-state allocations.
func (p *ArenaPool) Created() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created
}
