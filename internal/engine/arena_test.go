package engine

import (
	"sync"
	"testing"
)

// TestArenaSlotAndBufferReuse pins the arena contract: the same key gets
// the same object back on every call (init runs once), and buffers come
// back reset but retain their capacity.
func TestArenaSlotAndBufferReuse(t *testing.T) {
	a := NewArena()
	inits := 0
	key := new(int)
	first := a.Slot(key, func() any { inits++; return &[]float32{1, 2, 3} })
	second := a.Slot(key, func() any { inits++; return nil })
	if first != second || inits != 1 {
		t.Fatalf("slot not stable: %p vs %p, %d inits", first, second, inits)
	}
	other := a.Slot(new(int), func() any { inits++; return 7 })
	if other != 7 || inits != 2 {
		t.Fatal("distinct keys must get distinct slots")
	}

	b := a.Buffer(0)
	b.WriteString("payload")
	if got := a.Buffer(0); got != b || got.Len() != 0 {
		t.Fatalf("buffer not reused-and-reset: %p vs %p, len %d", got, b, got.Len())
	}
	if a.Buffer(1) == b {
		t.Fatal("distinct tags must get distinct buffers")
	}
}

// TestArenaPoolBoundedGrowth hammers an ArenaPool from concurrent
// borrowers and asserts it never builds more arenas than the peak
// concurrency — the property the zero-alloc serving loops depend on.
func TestArenaPoolBoundedGrowth(t *testing.T) {
	p := NewArenaPool()
	p.Release(nil) // nil release is a no-op, not a poisoned free list
	const workers = 8
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a := p.Acquire()
				a.Buffer(0).WriteByte(1)
				p.Release(a)
			}
		}()
	}
	wg.Wait()
	if c := p.Created(); c < 1 || c > workers {
		t.Fatalf("pool created %d arenas for %d workers", c, workers)
	}
	// Sequential steady state reuses one arena.
	q := NewArenaPool()
	for i := 0; i < 50; i++ {
		a := q.Acquire()
		q.Release(a)
	}
	if q.Created() != 1 {
		t.Fatalf("sequential loop created %d arenas, want 1", q.Created())
	}
}
