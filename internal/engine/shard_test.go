package engine

import (
	"fmt"
	"testing"
)

func TestShardForIDStableAndBalanced(t *testing.T) {
	const n = 16
	counts := make([]int, n)
	for i := 0; i < 4096; i++ {
		id := fmt.Sprintf("client-%05d", i)
		s := ShardForID(42, id, n)
		if s < 0 || s >= n {
			t.Fatalf("shard %d out of range [0,%d)", s, n)
		}
		if s2 := ShardForID(42, id, n); s2 != s {
			t.Fatalf("ShardForID not stable: %d then %d", s, s2)
		}
		counts[s]++
	}
	// FNV+splitmix should land within a loose band of the 256 mean.
	for i, c := range counts {
		if c < 128 || c > 512 {
			t.Fatalf("shard %d holds %d of 4096 ids — hash badly skewed", i, c)
		}
	}
	if ShardForID(42, "anything", 1) != 0 || ShardForID(42, "anything", 0) != 0 {
		t.Fatal("degenerate shard counts must map to shard 0")
	}
	if ShardForID(42, "client-00001", n) == ShardForID(43, "client-00001", n) &&
		ShardForID(42, "client-00002", n) == ShardForID(43, "client-00002", n) &&
		ShardForID(42, "client-00003", n) == ShardForID(43, "client-00003", n) {
		t.Fatal("three ids kept their shard under a different root seed — root ignored?")
	}
}
