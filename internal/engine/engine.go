package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tinymlops/internal/tensor"
)

// Config sizes an Engine.
type Config struct {
	// Workers bounds concurrent task execution; values ≤ 0 mean
	// runtime.GOMAXPROCS(0).
	Workers int
}

// Engine is a bounded worker pool for indexed task sets. The zero-cost
// contract is determinism: an Engine never exposes scheduling order to the
// tasks it runs, so any computation that derives its randomness from the
// task index (see SeedFor) produces identical results at any worker count.
type Engine struct {
	workers int
}

// New returns an engine with cfg.Workers workers.
func New(cfg Config) *Engine {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: w}
}

// Default returns an engine sized to the machine (GOMAXPROCS workers).
func Default() *Engine { return New(Config{}) }

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// ForEach runs fn(i) for every i in [0,n) across the worker pool and
// returns the non-nil errors joined in index order. Workers claim small
// contiguous index blocks from an atomic cursor, so execution order is
// unspecified; tasks must take all order-sensitive inputs (RNG streams,
// result slots) from the index alone. A panicking task is recovered into
// its error slot rather than tearing down the whole round — in a fleet of
// thousands one corrupt device must not abort the simulation.
func (e *Engine) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		// Suppress nested tensor parallelism here too, so Workers:1 never
		// uses more CPU than Workers:2 would.
		defer tensor.EnterPool()()
		for i := 0; i < n; i++ {
			errs[i] = call(fn, i)
		}
		return errors.Join(errs...)
	}
	// Grain trades scheduling overhead against load balance: 8 blocks per
	// worker keeps stragglers short without hammering the cursor.
	grain := n / (workers * 8)
	if grain < 1 {
		grain = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Tasks run with nested tensor parallelism suppressed: the pool
			// is the coarse-grained fan-out, so an inner matmul spawning
			// another GOMAXPROCS goroutines per worker would only thrash
			// the scheduler.
			defer tensor.EnterPool()()
			for {
				hi := int(cursor.Add(int64(grain)))
				lo := hi - grain
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					errs[i] = call(fn, i)
				}
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// call invokes fn(i), converting a panic into an error.
func call(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: task %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}

// Map runs fn for every index in [0,n) on the pool and returns the results
// in index order regardless of scheduling. Failed tasks leave their zero
// value in the slice and contribute to the joined error.
func Map[T any](e *Engine, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := e.ForEach(n, func(i int) error {
		v, ferr := fn(i)
		if ferr != nil {
			return ferr
		}
		out[i] = v
		return nil
	})
	return out, err
}

// SeedFor derives an independent 64-bit seed for task index i of round r
// under a root seed. The derivation is a pure splitmix64-style mix of
// (root, round, index), so the stream a task sees depends only on its
// coordinates — never on which worker ran it or when — which is what makes
// parallel fleet rounds reproducible.
func SeedFor(root, round uint64, index int) uint64 {
	z := mix64(root + 0x9E3779B97F4A7C15*round)
	return mix64(z + 0x9E3779B97F4A7C15*uint64(index+1))
}

// RNGFor returns a generator seeded with SeedFor(root, round, index).
func RNGFor(root, round uint64, index int) *tensor.RNG {
	return tensor.NewRNG(SeedFor(root, round, index))
}

// mix64 is the splitmix64 finalizer: a bijective avalanche so related
// inputs (consecutive rounds, consecutive indices) give unrelated streams.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
