package engine

import (
	"errors"
	"testing"
	"time"
)

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	res, err := Retry(RetryPolicy{Attempts: 4}, nil, func(attempt int) error {
		calls++
		if attempt != calls {
			t.Fatalf("attempt %d on call %d", attempt, calls)
		}
		if attempt < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 || res.Attempts != 3 {
		t.Fatalf("err=%v calls=%d res=%+v", err, calls, res)
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	permanent := errors.New("permanent")
	calls := 0
	res, err := Retry(RetryPolicy{Attempts: 5}, func(err error) bool {
		return !errors.Is(err, permanent)
	}, func(int) error {
		calls++
		return permanent
	})
	if !errors.Is(err, permanent) || calls != 1 || res.Attempts != 1 {
		t.Fatalf("err=%v calls=%d res=%+v", err, calls, res)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	fail := errors.New("always")
	calls := 0
	_, err := Retry(RetryPolicy{Attempts: 3}, nil, func(int) error {
		calls++
		return fail
	})
	if !errors.Is(err, fail) || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	// Attempts ≤ 1 means a single try.
	calls = 0
	if _, err := Retry(RetryPolicy{}, nil, func(int) error { calls++; return fail }); err == nil || calls != 1 {
		t.Fatalf("zero policy: err=%v calls=%d", err, calls)
	}
}

func TestBackoffScheduleDeterministic(t *testing.T) {
	p := RetryPolicy{Attempts: 10, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond}
	want := []time.Duration{10e6, 20e6, 40e6, 40e6}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	if p.Backoff(0) != 0 {
		t.Fatal("Backoff(0) must be zero")
	}
	if (RetryPolicy{Attempts: 3}).Backoff(1) != 0 {
		t.Fatal("zero base must not sleep")
	}
	// Shift overflow saturates, then the cap applies.
	big := RetryPolicy{BaseBackoff: time.Hour, MaxBackoff: 2 * time.Hour}
	if got := big.Backoff(62); got != 2*time.Hour {
		t.Fatalf("overflowed backoff = %v", got)
	}
	// Uncapped overflow stays saturated — never less than earlier retries.
	uncapped := RetryPolicy{BaseBackoff: time.Hour}
	if got := uncapped.Backoff(62); got < uncapped.Backoff(2) {
		t.Fatalf("uncapped overflowed backoff %v below attempt 2's %v", got, uncapped.Backoff(2))
	}
}

func TestSeedForIDStableAndDistinct(t *testing.T) {
	a := SeedForID(42, 1, "phone-00")
	if a != SeedForID(42, 1, "phone-00") {
		t.Fatal("SeedForID not deterministic")
	}
	seen := map[uint64]string{42: ""}
	for _, id := range []string{"phone-00", "phone-01", "m0-sensor-00", ""} {
		for round := uint64(0); round < 3; round++ {
			s := SeedForID(42, round, id)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between %q and (%q, round %d)", prev, id, round)
			}
			seen[s] = id
		}
	}
	if SeedForID(42, 1, "phone-00") == SeedForID(43, 1, "phone-00") {
		t.Fatal("root seed must matter")
	}
}
