package compat

import (
	"fmt"
	"math"

	"tinymlops/internal/device"
	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

// LoweringResult records what the per-target lowering pipeline did.
type LoweringResult struct {
	Network *nn.Network
	// Passes lists the applied transformations in order.
	Passes []string
}

// Lower prepares a trained network for deployment to a target: it always
// strips training-only layers (dropout), folds batch normalization into
// the preceding dense layer when the target has no batch-norm kernel, and
// fails with a descriptive error when an operator remains unsupported.
// The input network is not modified.
func Lower(net *nn.Network, caps device.Capabilities) (LoweringResult, error) {
	res := LoweringResult{Network: net.Clone()}

	if n := dropDropout(res.Network); n > 0 {
		res.Passes = append(res.Passes, fmt.Sprintf("drop-dropout(%d)", n))
	}
	if !caps.SupportsOp("batchnorm1d") {
		n, err := FoldBatchNorm(res.Network)
		if err != nil {
			return res, err
		}
		if n > 0 {
			res.Passes = append(res.Passes, fmt.Sprintf("fold-batchnorm(%d)", n))
		}
	}
	for _, op := range res.Network.OpKinds() {
		if !caps.SupportsOp(op) {
			return res, fmt.Errorf("compat: operator %q has no kernel on %s and no lowering exists", op, caps.Name)
		}
	}
	res.Passes = append(res.Passes, "verify-ops")
	return res, nil
}

// dropDropout removes Dropout layers in place, returning how many were
// removed. Dropout is the identity at inference, so this is always sound
// for deployment artifacts.
func dropDropout(net *nn.Network) int {
	layers := net.Layers()
	kept := layers[:0]
	removed := 0
	for _, l := range layers {
		if _, ok := l.(*nn.Dropout); ok {
			removed++
			continue
		}
		kept = append(kept, l)
	}
	if removed > 0 {
		*net = *nn.NewNetwork(net.InputShape, kept...)
	}
	return removed
}

// FoldBatchNorm folds every BatchNorm1D that directly follows a Dense
// layer into that layer's weights and bias:
//
//	y = γ·(xW + b − μ)/σ + β  ⇒  W'ⱼ = Wⱼ·γⱼ/σⱼ,  b'ⱼ = (bⱼ−μⱼ)·γⱼ/σⱼ + βⱼ
//
// using the batch norm's running statistics. The transform is exact for
// inference. It returns the number of folded layers; a BatchNorm1D in any
// other position is an error (no sound fold exists).
func FoldBatchNorm(net *nn.Network) (int, error) {
	layers := net.Layers()
	var kept []nn.Layer
	folded := 0
	for i := 0; i < len(layers); i++ {
		bn, ok := layers[i].(*nn.BatchNorm1D)
		if !ok {
			kept = append(kept, layers[i])
			continue
		}
		if len(kept) == 0 {
			return folded, fmt.Errorf("compat: batchnorm1d at layer %d has no preceding dense layer to fold into", i)
		}
		dense, ok := kept[len(kept)-1].(*nn.Dense)
		if !ok {
			return folded, fmt.Errorf("compat: batchnorm1d at layer %d follows %s, can only fold into dense", i, kept[len(kept)-1].Kind())
		}
		if dense.Out != bn.F {
			return folded, fmt.Errorf("compat: batchnorm1d width %d does not match dense output %d", bn.F, dense.Out)
		}
		for j := 0; j < bn.F; j++ {
			invStd := float32(1 / math.Sqrt(float64(bn.RunVar.Data[j]+bn.Eps)))
			g := bn.Gamma.Value.Data[j] * invStd
			for k := 0; k < dense.In; k++ {
				dense.W.Value.Data[k*dense.Out+j] *= g
			}
			dense.B.Value.Data[j] = (dense.B.Value.Data[j]-bn.RunMean.Data[j])*g + bn.Beta.Value.Data[j]
		}
		folded++
	}
	if folded > 0 {
		*net = *nn.NewNetwork(net.InputShape, kept...)
	}
	return folded, nil
}

// VerifyLowering checks that a lowered network predicts (near-)identically
// to the original on probe inputs — the numerical regression test a
// deployment pipeline runs after every pass.
func VerifyLowering(original, lowered *nn.Network, probes *tensor.Tensor, tol float32) error {
	a := original.Predict(probes)
	b := lowered.Predict(probes)
	if !tensor.SameShape(a, b) {
		return fmt.Errorf("compat: lowered output shape %v != %v", b.Shape(), a.Shape())
	}
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return fmt.Errorf("compat: lowered output deviates by %v at %d (tol %v)", d, i, tol)
		}
	}
	return nil
}
