package compat

import (
	"math"
	"strings"
	"sync"
	"testing"

	"tinymlops/internal/nn"
	"tinymlops/internal/procvm"
	"tinymlops/internal/tensor"
)

// runModule executes a compiled module row-by-row over a batch, the way a
// vmRunnable serves it, and returns the concatenated outputs.
func runModule(t *testing.T, m *procvm.Module, x *tensor.Tensor) []float32 {
	t.Helper()
	rt := procvm.NewRuntime(m.Caps)
	if m.GasLimit > rt.MaxGas {
		rt.MaxGas = m.GasLimit
	}
	rows := x.Dim(0)
	inLen := x.Size()
	if rows > 0 {
		inLen = x.Size() / rows
	}
	var out []float32
	for r := 0; r < rows; r++ {
		res, err := rt.Run(m, x.Data[r*inLen:(r+1)*inLen])
		if err != nil {
			t.Fatalf("module run row %d: %v", r, err)
		}
		out = append(out, res.Output.Vec...)
	}
	return out
}

// sameBits treats two floats as equal when their bit patterns match, or
// when both are NaN (payload bits may legitimately differ between the two
// evaluation orders).
func sameBits(a, b float32) bool {
	if math.IsNaN(float64(a)) && math.IsNaN(float64(b)) {
		return true
	}
	return math.Float32bits(a) == math.Float32bits(b)
}

// compileEquivNets is the architecture table for the equivalence property:
// every layer kind the instruction selector lowers, plus the two passes
// (dropout strip, batchnorm fold) that rewrite the graph first.
func compileEquivNets(rng *tensor.RNG) map[string]*nn.Network {
	bnNet := nn.NewNetwork([]int{6},
		nn.NewDense(6, 10, rng), nn.NewBatchNorm1D(10), nn.NewReLU(), nn.NewDense(10, 4, rng))
	// Give the fold non-trivial running statistics: freshly constructed
	// batchnorm is the identity and would make the pass vacuous.
	bn := bnNet.Layers()[1].(*nn.BatchNorm1D)
	for i := 0; i < bn.F; i++ {
		bn.RunMean.Data[i] = rng.Float32()*2 - 1
		bn.RunVar.Data[i] = 0.5 + rng.Float32()
		bn.Gamma.Value.Data[i] = 0.5 + rng.Float32()
		bn.Beta.Value.Data[i] = rng.Float32() - 0.5
	}
	return map[string]*nn.Network{
		"dense-mlp": nn.NewNetwork([]int{5},
			nn.NewDense(5, 12, rng), nn.NewReLU(), nn.NewDense(12, 7, rng),
			nn.NewTanh(), nn.NewDense(7, 3, rng), nn.NewSoftmax()),
		"conv": nn.NewNetwork([]int{2, 8, 8},
			nn.NewConv2D(2, 4, 3, 3, 1, 1, rng), nn.NewReLU(),
			nn.NewMaxPool2D(2, 2), nn.NewFlatten(),
			nn.NewDense(64, 5, rng), nn.NewSigmoid()),
		"batchnorm": bnNet,
		"dropout": nn.NewNetwork([]int{4},
			nn.NewDense(4, 8, rng), nn.NewDropout(0.5, rng), nn.NewReLU(), nn.NewDense(8, 3, rng)),
	}
}

// TestCompileModuleMatchesForwardBatch is the central equivalence property
// of the backend: for every lowerable architecture, the compiled module
// run row-by-row must be bit-identical to the lowered network's
// ForwardBatch — on ordinary inputs, on adversarial rows (NaN, -0, ±Inf,
// denormals) and on the empty batch — and within the fold tolerance of
// the *original* network.
func TestCompileModuleMatchesForwardBatch(t *testing.T) {
	rng := tensor.NewRNG(31)
	for name, net := range compileEquivNets(rng) {
		t.Run(name, func(t *testing.T) {
			m, err := CompileProcVM(net, CompileOptions{Name: name})
			if err != nil {
				t.Fatal(err)
			}
			// The bit-exact reference is the lowered form (what the probes
			// proved): dropout stripped, batchnorm folded.
			lowered := net.Clone()
			dropDropout(lowered)
			if _, err := FoldBatchNorm(lowered); err != nil {
				t.Fatal(err)
			}
			inLen := 1
			for _, d := range net.InputShape {
				inLen *= d
			}
			batches := map[string]*tensor.Tensor{
				"random": tensor.Randn(rng, 1, append([]int{5}, net.InputShape...)...),
				"empty":  tensor.New(append([]int{0}, net.InputShape...)...),
			}
			adv := tensor.New(append([]int{4}, net.InputShape...)...)
			for i := range adv.Data {
				switch i % 5 {
				case 0:
					adv.Data[i] = float32(math.NaN())
				case 1:
					adv.Data[i] = float32(math.Copysign(0, -1)) // -0
				case 2:
					adv.Data[i] = float32(math.Inf(1 - 2*(i%2)))
				case 3:
					adv.Data[i] = 1e-41 // denormal
				default:
					adv.Data[i] = rng.Float32()*4 - 2
				}
			}
			batches["adversarial"] = adv
			for bname, x := range batches {
				got := runModule(t, m, x)
				want := lowered.ForwardBatch(x, nil)
				if len(got) != want.Size() {
					t.Fatalf("%s: module emitted %d values, network %d", bname, len(got), want.Size())
				}
				for i := range got {
					if !sameBits(got[i], want.Data[i]) {
						t.Fatalf("%s: output %d: module %v (bits %08x) != network %v (bits %08x)",
							bname, i, got[i], math.Float32bits(got[i]), want.Data[i], math.Float32bits(want.Data[i]))
					}
				}
				// And the lowered form must stay within the fold tolerance
				// of the original network on finite inputs.
				if bname == "random" {
					orig := net.Predict(x)
					for i := range got {
						if d := float64(got[i] - orig.Data[i]); math.Abs(d) > 1e-4 {
							t.Fatalf("%s: output %d drifted %v from the unlowered network", bname, i, d)
						}
					}
				}
			}
		})
	}
}

// TestCompileRandomArchitecturesProperty sweeps seeded random MLP
// architectures through the compiler: whatever the shape, the module must
// reproduce the network bit-for-bit on fresh random probes. This is the
// property-test form of the compile gate — the gate proves it on the
// compile-time probe batch, this proves it generalizes to inputs the
// compiler never saw.
func TestCompileRandomArchitecturesProperty(t *testing.T) {
	acts := []func() nn.Layer{
		func() nn.Layer { return nn.NewReLU() },
		func() nn.Layer { return nn.NewTanh() },
		func() nn.Layer { return nn.NewSigmoid() },
	}
	for seed := uint64(0); seed < 8; seed++ {
		rng := tensor.NewRNG(100 + seed)
		in := 2 + int(rng.Uint64()%7)
		width := 3 + int(rng.Uint64()%12)
		out := 2 + int(rng.Uint64()%5)
		layers := []nn.Layer{nn.NewDense(in, width, rng), acts[rng.Uint64()%3]()}
		if rng.Uint64()%2 == 0 {
			layers = append(layers, nn.NewDense(width, width, rng), acts[rng.Uint64()%3]())
		}
		layers = append(layers, nn.NewDense(width, out, rng))
		net := nn.NewNetwork([]int{in}, layers...)
		m, err := CompileProcVM(net, CompileOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		x := tensor.Randn(rng, 1, 6, in)
		got := runModule(t, m, x)
		want := net.ForwardBatch(x, nil)
		for i := range got {
			if !sameBits(got[i], want.Data[i]) {
				t.Fatalf("seed %d: output %d: module %v != network %v", seed, i, got[i], want.Data[i])
			}
		}
	}
}

// TestCompileGasDeterministicAcrossWorkers pins the scheduling-
// independence property the chaos fingerprints rely on: gas is a pure
// function of the bytecode and the input length, so any number of
// concurrent runners measure exactly the module's pinned GasLimit — never
// more, never less, never racy.
func TestCompileGasDeterministicAcrossWorkers(t *testing.T) {
	rng := tensor.NewRNG(7)
	net := nn.NewNetwork([]int{6},
		nn.NewDense(6, 16, rng), nn.NewReLU(), nn.NewDense(16, 3, rng))
	m, err := CompileProcVM(net, CompileOptions{Name: "gas"})
	if err != nil {
		t.Fatal(err)
	}
	if m.GasLimit == 0 {
		t.Fatal("compile left GasLimit unpinned")
	}
	for _, workers := range []int{1, 4, 16} {
		gas := make([]uint64, workers*8)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rt := procvm.NewRuntime(m.Caps)
				rt.MaxGas = m.GasLimit
				local := tensor.NewRNG(uint64(w) + 1)
				for q := 0; q < 8; q++ {
					res, err := rt.Run(m, tensor.Randn(local, 1, 1, 6).Data)
					if err != nil {
						t.Error(err)
						return
					}
					gas[w*8+q] = res.GasUsed
				}
			}(w)
		}
		wg.Wait()
		for i, g := range gas {
			if g != m.GasLimit {
				t.Fatalf("workers=%d: run %d used %d gas, want pinned %d", workers, i, g, m.GasLimit)
			}
		}
	}
}

// TestCompileVerifyLoweringGate proves the compile gate is real: a
// batchnorm fold moves float results by a few ULPs, so demanding an
// impossibly tight tolerance must abort the compile through VerifyLowering
// rather than ship a module that silently deviates.
func TestCompileVerifyLoweringGate(t *testing.T) {
	rng := tensor.NewRNG(53)
	net := nn.NewNetwork([]int{6},
		nn.NewDense(6, 24, rng), nn.NewBatchNorm1D(24), nn.NewReLU(), nn.NewDense(24, 4, rng))
	bn := net.Layers()[1].(*nn.BatchNorm1D)
	for i := 0; i < bn.F; i++ {
		bn.RunMean.Data[i] = rng.Float32()*2 - 1
		bn.RunVar.Data[i] = 0.5 + rng.Float32()
		bn.Gamma.Value.Data[i] = 0.5 + rng.Float32()
		bn.Beta.Value.Data[i] = rng.Float32() - 0.5
	}
	if _, err := CompileProcVM(net, CompileOptions{Tol: 1e-30}); err == nil {
		t.Fatal("compile accepted a fold that cannot meet a 1e-30 tolerance")
	} else if !strings.Contains(err.Error(), "lowering gate") {
		t.Fatalf("compile failed outside the lowering gate: %v", err)
	}
	// At the default tolerance the same network compiles.
	if _, err := CompileProcVM(net, CompileOptions{}); err != nil {
		t.Fatalf("default tolerance rejected a valid fold: %v", err)
	}
}

// TestCompileRejectsUnloweredGraphs pins the failure mode: a fold the
// rewriter refuses aborts the compile with a diagnostic instead of
// emitting partial bytecode.
func TestCompileRejectsUnloweredGraphs(t *testing.T) {
	rng := tensor.NewRNG(5)
	// Batchnorm with no preceding dense cannot fold.
	bad := nn.NewNetwork([]int{4}, nn.NewBatchNorm1D(4), nn.NewDense(4, 2, rng))
	if _, err := CompileProcVM(bad, CompileOptions{}); err == nil {
		t.Fatal("compile accepted an unfoldable batchnorm position")
	}
}

// TestCompileWithCapsPinsCapability distinguishes an intentional CapNone
// grant from the default sensor capability.
func TestCompileWithCapsPinsCapability(t *testing.T) {
	rng := tensor.NewRNG(21)
	net := nn.NewNetwork([]int{3}, nn.NewDense(3, 4, rng), nn.NewReLU(), nn.NewDense(4, 2, rng))
	def, err := CompileProcVM(net, CompileOptions{Name: "caps"})
	if err != nil {
		t.Fatal(err)
	}
	if def.Caps != procvm.CapSensor {
		t.Fatalf("default caps %v, want CapSensor", def.Caps)
	}
	none, err := CompileProcVM(net, CompileOptions{Name: "caps"}.WithCaps(procvm.CapNone))
	if err != nil {
		t.Fatal(err)
	}
	if none.Caps != procvm.CapNone {
		t.Fatalf("explicit caps %v, want CapNone", none.Caps)
	}
}
