package compat

import (
	"encoding/json"
	"fmt"

	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

// The exchange format is this reproduction's ONNX/NNEF: a versioned,
// self-describing graph document that different "frameworks" (here: the
// nn engine and any external tool) can produce and consume. The paper
// notes these formats are young and incomplete — "not all operations are
// readily supported... not trivial to use them for more exotic models" —
// which the importer reproduces faithfully: unknown ops and newer format
// versions are hard errors, not best-effort guesses.

// ExchangeVersion is the current format version.
const ExchangeVersion = 1

// GraphDoc is the interchange document.
type GraphDoc struct {
	FormatVersion int    `json:"format_version"`
	Producer      string `json:"producer"`
	InputShape    []int  `json:"input_shape"`
	Nodes         []Node `json:"nodes"`
}

// Node is one operator instance with its attributes and weights.
type Node struct {
	Op string `json:"op"`
	// IntAttrs carries shape/hyper-parameters (in, out, kernel, stride...).
	IntAttrs map[string]int `json:"int_attrs,omitempty"`
	// FloatAttrs carries scalar attributes (eps, momentum, p).
	FloatAttrs map[string]float64 `json:"float_attrs,omitempty"`
	// Tensors carries named weight payloads as flat values plus shapes.
	Tensors map[string]TensorDoc `json:"tensors,omitempty"`
}

// TensorDoc is an embedded weight tensor.
type TensorDoc struct {
	Shape []int     `json:"shape"`
	Data  []float32 `json:"data"`
}

func tensorDoc(t *tensor.Tensor) TensorDoc {
	return TensorDoc{Shape: append([]int(nil), t.Shape()...), Data: append([]float32(nil), t.Data...)}
}

func (td TensorDoc) tensor() (*tensor.Tensor, error) {
	n := 1
	for _, d := range td.Shape {
		if d < 0 {
			return nil, fmt.Errorf("compat: negative dimension in %v", td.Shape)
		}
		n *= d
	}
	if n != len(td.Data) {
		return nil, fmt.Errorf("compat: tensor shape %v does not match %d values", td.Shape, len(td.Data))
	}
	return tensor.FromSlice(append([]float32(nil), td.Data...), td.Shape...), nil
}

// Export converts a network to the exchange document.
func Export(net *nn.Network) (*GraphDoc, error) {
	doc := &GraphDoc{
		FormatVersion: ExchangeVersion,
		Producer:      "tinymlops-nn",
		InputShape:    append([]int(nil), net.InputShape...),
	}
	for i, l := range net.Layers() {
		node := Node{Op: l.Kind()}
		switch v := l.(type) {
		case *nn.Dense:
			node.IntAttrs = map[string]int{"in": v.In, "out": v.Out}
			node.Tensors = map[string]TensorDoc{"weight": tensorDoc(v.W.Value), "bias": tensorDoc(v.B.Value)}
		case *nn.Conv2D:
			node.IntAttrs = map[string]int{"in_c": v.InC, "out_c": v.OutC, "kh": v.KH, "kw": v.KW, "stride": v.Stride, "pad": v.Pad}
			node.Tensors = map[string]TensorDoc{"weight": tensorDoc(v.W.Value), "bias": tensorDoc(v.B.Value)}
		case *nn.MaxPool2D:
			node.IntAttrs = map[string]int{"k": v.K, "stride": v.Stride}
		case *nn.BatchNorm1D:
			node.IntAttrs = map[string]int{"features": v.F}
			node.FloatAttrs = map[string]float64{"eps": float64(v.Eps), "momentum": float64(v.Momentum)}
			node.Tensors = map[string]TensorDoc{
				"gamma": tensorDoc(v.Gamma.Value), "beta": tensorDoc(v.Beta.Value),
				"mean": tensorDoc(v.RunMean), "var": tensorDoc(v.RunVar),
			}
		case *nn.Dropout:
			node.FloatAttrs = map[string]float64{"p": float64(v.P)}
		case *nn.Flatten, *nn.ReLU, *nn.Sigmoid, *nn.Tanh, *nn.Softmax:
			// no attributes
		default:
			return nil, fmt.Errorf("compat: layer %d: op %q has no exchange mapping", i, l.Kind())
		}
		doc.Nodes = append(doc.Nodes, node)
	}
	return doc, nil
}

// Import reconstructs a network from an exchange document. Unknown ops and
// future format versions are errors.
func Import(doc *GraphDoc) (*nn.Network, error) {
	if doc.FormatVersion > ExchangeVersion {
		return nil, fmt.Errorf("compat: document format v%d is newer than supported v%d", doc.FormatVersion, ExchangeVersion)
	}
	if doc.FormatVersion < 1 {
		return nil, fmt.Errorf("compat: invalid format version %d", doc.FormatVersion)
	}
	net := nn.NewNetwork(append([]int(nil), doc.InputShape...))
	for i, node := range doc.Nodes {
		l, err := importNode(node)
		if err != nil {
			return nil, fmt.Errorf("compat: node %d: %w", i, err)
		}
		net.Add(l)
	}
	if _, err := net.Summary(); err != nil {
		return nil, fmt.Errorf("compat: imported graph fails shape inference: %w", err)
	}
	return net, nil
}

func importNode(node Node) (nn.Layer, error) {
	getT := func(name string) (*tensor.Tensor, error) {
		td, ok := node.Tensors[name]
		if !ok {
			return nil, fmt.Errorf("missing tensor %q", name)
		}
		return td.tensor()
	}
	switch node.Op {
	case "dense":
		w, err := getT("weight")
		if err != nil {
			return nil, err
		}
		b, err := getT("bias")
		if err != nil {
			return nil, err
		}
		d := nn.NewDense(node.IntAttrs["in"], node.IntAttrs["out"], tensor.NewRNG(0))
		if !tensor.SameShape(d.W.Value, w) || !tensor.SameShape(d.B.Value, b) {
			return nil, fmt.Errorf("dense attrs %v disagree with tensor shapes %v/%v", node.IntAttrs, w.Shape(), b.Shape())
		}
		d.W.Value.CopyFrom(w)
		d.B.Value.CopyFrom(b)
		return d, nil
	case "conv2d":
		w, err := getT("weight")
		if err != nil {
			return nil, err
		}
		b, err := getT("bias")
		if err != nil {
			return nil, err
		}
		a := node.IntAttrs
		c := nn.NewConv2D(a["in_c"], a["out_c"], a["kh"], a["kw"], a["stride"], a["pad"], tensor.NewRNG(0))
		if !tensor.SameShape(c.W.Value, w) || !tensor.SameShape(c.B.Value, b) {
			return nil, fmt.Errorf("conv2d attrs %v disagree with tensor shapes %v/%v", a, w.Shape(), b.Shape())
		}
		c.W.Value.CopyFrom(w)
		c.B.Value.CopyFrom(b)
		return c, nil
	case "maxpool2d":
		return nn.NewMaxPool2D(node.IntAttrs["k"], node.IntAttrs["stride"]), nil
	case "batchnorm1d":
		bn := nn.NewBatchNorm1D(node.IntAttrs["features"])
		if v, ok := node.FloatAttrs["eps"]; ok {
			bn.Eps = float32(v)
		}
		if v, ok := node.FloatAttrs["momentum"]; ok {
			bn.Momentum = float32(v)
		}
		for name, dst := range map[string]*tensor.Tensor{
			"gamma": bn.Gamma.Value, "beta": bn.Beta.Value, "mean": bn.RunMean, "var": bn.RunVar,
		} {
			src, err := getT(name)
			if err != nil {
				return nil, err
			}
			if !tensor.SameShape(dst, src) {
				return nil, fmt.Errorf("batchnorm tensor %q shape %v, want %v", name, src.Shape(), dst.Shape())
			}
			dst.CopyFrom(src)
		}
		return bn, nil
	case "dropout":
		return nn.NewDropout(float32(node.FloatAttrs["p"]), tensor.NewRNG(0)), nil
	case "flatten":
		return nn.NewFlatten(), nil
	case "relu":
		return nn.NewReLU(), nil
	case "sigmoid":
		return nn.NewSigmoid(), nil
	case "tanh":
		return nn.NewTanh(), nil
	case "softmax":
		return nn.NewSoftmax(), nil
	default:
		return nil, fmt.Errorf("op %q is not supported by exchange format v%d", node.Op, ExchangeVersion)
	}
}

// MarshalJSON / UnmarshalGraph are the on-the-wire forms.

// EncodeJSON serializes the document.
func (d *GraphDoc) EncodeJSON() ([]byte, error) {
	return json.Marshal(d)
}

// DecodeJSON parses a document.
func DecodeJSON(data []byte) (*GraphDoc, error) {
	var d GraphDoc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("compat: parse exchange document: %w", err)
	}
	return &d, nil
}
