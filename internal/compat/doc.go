// Package compat addresses the fragmented-target problem of §IV: given a
// model version and a device's capabilities it reports whether the model
// can be deployed natively, which operators are missing, and whether its
// bit width needs (slow) emulation; it implements real lowering passes
// (dropout elimination, batch-norm folding) that vendors apply before
// deployment; and it defines a small versioned exchange format playing
// the role ONNX/NNEF play in the paper — including the failure mode the
// paper calls out, where models using unsupported ops simply cannot be
// interchanged.
//
// The paper's observation is that the edge has no CUDA: every vendor
// ships its own operator set, memory budget and precision support, so "it
// runs on my machine" means nothing fleet-wide. The compatibility report
// is what variant selection (internal/selector) consults before shipping,
// and the lowering passes are why a model that trains with dropout and
// batch norm can still land on an MCU whose runtime has neither.
//
// CompileProcVM closes the loop between lowering and portability: it
// lowers a trained network (dropout dropped, batch norm folded) into a
// procvm module — one instruction per layer, capability-gated, with a
// gas limit pinned to the measured per-query cost — and refuses to emit
// the module unless it reproduces the lowered network bit-for-bit on
// probe batches. The compiled module is a first-class registry artifact
// kind: deployments serve it on the capability-gated runtime, and the
// offload tier can host it inside an enclave for trusted execution.
package compat
