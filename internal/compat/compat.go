package compat

import (
	"fmt"
	"sort"
	"strings"

	"tinymlops/internal/device"
	"tinymlops/internal/registry"
)

// Report is the deployability verdict of one model version on one target.
type Report struct {
	Model  string
	Target string
	// Deployable means every operator has a native kernel and the model
	// fits flash.
	Deployable bool
	// MissingOps lists operators with no native kernel on the target.
	MissingOps []string
	// EmulatedBits is set when the variant's weight width has no hardware
	// support and would fall back to the penalized fp32 path (§III-A).
	EmulatedBits bool
	// FitsFlash is false when the artifact exceeds device storage.
	FitsFlash bool
}

// Summary renders the report as a compact cell for the E7 matrix:
// "native", "emu-bits", "no-fit", or "missing:<ops>".
func (r Report) Summary() string {
	switch {
	case !r.FitsFlash:
		return "no-fit"
	case len(r.MissingOps) > 0:
		return "missing:" + strings.Join(r.MissingOps, ",")
	case r.EmulatedBits:
		return "emu-bits"
	default:
		return "native"
	}
}

// Check evaluates a model version against target capabilities.
func Check(v *registry.ModelVersion, caps device.Capabilities) Report {
	rep := Report{
		Model:     fmt.Sprintf("%s@%s/%s", v.Name, v.ID, v.Scheme),
		Target:    caps.Name,
		FitsFlash: int64(v.Metrics.SizeBytes) <= caps.FlashBytes,
	}
	for _, op := range v.OpKinds {
		if !caps.SupportsOp(op) {
			rep.MissingOps = append(rep.MissingOps, op)
		}
	}
	sort.Strings(rep.MissingOps)
	rep.EmulatedBits = !caps.SupportsBits(v.Scheme.Bits())
	rep.Deployable = rep.FitsFlash && len(rep.MissingOps) == 0
	return rep
}

// Matrix evaluates every (model, target) pair — the sparse support matrix
// of §IV that motivates portable containers. Rows follow the models
// slice, columns the targets slice.
func Matrix(models []*registry.ModelVersion, targets []device.Capabilities) [][]Report {
	out := make([][]Report, len(models))
	for i, m := range models {
		row := make([]Report, len(targets))
		for j, tgt := range targets {
			row[j] = Check(m, tgt)
		}
		out[i] = row
	}
	return out
}

// Coverage summarizes a matrix: the fraction of (model, target) pairs that
// deploy natively.
func Coverage(matrix [][]Report) float64 {
	total, ok := 0, 0
	for _, row := range matrix {
		for _, rep := range row {
			total++
			if rep.Deployable {
				ok++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(ok) / float64(total)
}
