package compat

import (
	"strings"
	"testing"

	"tinymlops/internal/device"
	"tinymlops/internal/nn"
	"tinymlops/internal/quant"
	"tinymlops/internal/registry"
	"tinymlops/internal/tensor"
)

func register(t *testing.T, reg *registry.Registry, name string, net *nn.Network, scheme quant.Scheme) *registry.ModelVersion {
	t.Helper()
	var v *registry.ModelVersion
	var err error
	if scheme == quant.Float32 {
		v, err = reg.RegisterModel(name, net, 0.9)
	} else {
		base, berr := reg.RegisterModel(name, net, 0.9)
		if berr != nil {
			t.Fatal(berr)
		}
		q, qerr := quant.FakeQuantizeNetwork(net, scheme)
		if qerr != nil {
			t.Fatal(qerr)
		}
		v, err = reg.RegisterVariant(base.ID, q, scheme, 0, 0.88)
	}
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCheckMissingOps(t *testing.T) {
	rng := tensor.NewRNG(1)
	reg := registry.New()
	conv := nn.NewNetwork([]int{1, 8, 8},
		nn.NewConv2D(1, 2, 3, 3, 1, 1, rng), nn.NewReLU(),
		nn.NewFlatten(), nn.NewDense(128, 2, rng))
	v := register(t, reg, "convnet", conv, quant.Float32)
	m0, _ := device.ProfileByName("m0-sensor")
	rep := Check(v, m0)
	if rep.Deployable {
		t.Fatal("conv model deployable on m0")
	}
	if len(rep.MissingOps) == 0 || rep.MissingOps[0] != "conv2d" {
		t.Fatalf("missing ops = %v", rep.MissingOps)
	}
	if !strings.HasPrefix(rep.Summary(), "missing:") {
		t.Fatalf("summary = %q", rep.Summary())
	}
	m7, _ := device.ProfileByName("m7-camera")
	rep7 := Check(v, m7)
	if !rep7.Deployable || rep7.Summary() != "emu-bits" && rep7.Summary() != "native" {
		t.Fatalf("m7 report = %+v (%s)", rep7, rep7.Summary())
	}
}

func TestCheckEmulatedBits(t *testing.T) {
	rng := tensor.NewRNG(2)
	reg := registry.New()
	mlp := nn.NewNetwork([]int{8}, nn.NewDense(8, 8, rng), nn.NewReLU(), nn.NewDense(8, 2, rng))
	vTern := register(t, reg, "mlp", mlp, quant.Ternary)
	m4, _ := device.ProfileByName("m4-wearable")
	rep := Check(vTern, m4)
	if !rep.Deployable {
		t.Fatalf("ternary MLP should deploy on m4: %+v", rep)
	}
	if !rep.EmulatedBits || rep.Summary() != "emu-bits" {
		t.Fatalf("ternary on m4 should flag bit emulation: %+v", rep)
	}
	gw, _ := device.ProfileByName("edge-gateway")
	if rep := Check(vTern, gw); rep.EmulatedBits {
		t.Fatal("edge gateway supports 2-bit natively")
	}
}

func TestCheckFlashFit(t *testing.T) {
	rng := tensor.NewRNG(3)
	reg := registry.New()
	big := nn.NewNetwork([]int{256},
		nn.NewDense(256, 1024, rng), nn.NewReLU(), nn.NewDense(1024, 10, rng))
	v := register(t, reg, "big", big, quant.Float32)
	m0, _ := device.ProfileByName("m0-sensor")
	rep := Check(v, m0)
	if rep.FitsFlash || rep.Summary() != "no-fit" {
		t.Fatalf("1MB+ model reported as fitting 256KB flash: %+v", rep)
	}
}

func TestMatrixAndCoverage(t *testing.T) {
	rng := tensor.NewRNG(4)
	reg := registry.New()
	mlp := nn.NewNetwork([]int{8}, nn.NewDense(8, 16, rng), nn.NewReLU(), nn.NewDense(16, 2, rng))
	conv := nn.NewNetwork([]int{1, 8, 8},
		nn.NewConv2D(1, 2, 3, 3, 1, 1, rng), nn.NewReLU(),
		nn.NewFlatten(), nn.NewDense(128, 2, rng))
	models := []*registry.ModelVersion{
		register(t, reg, "mlp", mlp, quant.Float32),
		register(t, reg, "conv", conv, quant.Float32),
	}
	targets := device.StandardProfiles()
	m := Matrix(models, targets)
	if len(m) != 2 || len(m[0]) != len(targets) {
		t.Fatalf("matrix shape %dx%d", len(m), len(m[0]))
	}
	cov := Coverage(m)
	if cov <= 0 || cov >= 1 {
		t.Fatalf("coverage = %v, want strictly between 0 and 1 (sparse matrix)", cov)
	}
}

func TestDropDropoutPass(t *testing.T) {
	rng := tensor.NewRNG(5)
	net := nn.NewNetwork([]int{4},
		nn.NewDense(4, 8, rng), nn.NewReLU(), nn.NewDropout(0.5, rng), nn.NewDense(8, 2, rng))
	caps, _ := device.ProfileByName("edge-gateway")
	res, err := Lower(net, caps)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Network.Layers() {
		if l.Kind() == "dropout" {
			t.Fatal("dropout survived lowering")
		}
	}
	x := tensor.Randn(rng, 1, 5, 4)
	if err := VerifyLowering(net, res.Network, x, 1e-6); err != nil {
		t.Fatal(err)
	}
	if len(res.Passes) == 0 || !strings.Contains(res.Passes[0], "drop-dropout") {
		t.Fatalf("passes = %v", res.Passes)
	}
}

func TestFoldBatchNormExactness(t *testing.T) {
	rng := tensor.NewRNG(6)
	bn := nn.NewBatchNorm1D(8)
	net := nn.NewNetwork([]int{4},
		nn.NewDense(4, 8, rng), bn, nn.NewTanh(), nn.NewDense(8, 2, rng))
	// Train a little so running stats and affine params are non-trivial.
	x := tensor.Randn(rng, 1, 64, 4).AddScalar(0.5)
	labels := make([]int, 64)
	for i := range labels {
		if x.At2(i, 0) > 0.5 {
			labels[i] = 1
		}
	}
	if _, err := nn.Train(net, x, labels, nn.TrainConfig{
		Epochs: 3, BatchSize: 16, Optimizer: nn.NewSGD(0.05), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	lowered := net.Clone()
	n, err := FoldBatchNorm(lowered)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("folded %d layers, want 1", n)
	}
	for _, l := range lowered.Layers() {
		if l.Kind() == "batchnorm1d" {
			t.Fatal("batchnorm survived folding")
		}
	}
	probes := tensor.Randn(rng, 1, 16, 4)
	if err := VerifyLowering(net, lowered, probes, 1e-4); err != nil {
		t.Fatal(err)
	}
}

func TestFoldBatchNormRejectsBadPositions(t *testing.T) {
	rng := tensor.NewRNG(7)
	// BN as first layer: nothing to fold into.
	net := nn.NewNetwork([]int{4}, nn.NewBatchNorm1D(4), nn.NewDense(4, 2, rng))
	if _, err := FoldBatchNorm(net); err == nil {
		t.Fatal("folded BN with no preceding dense")
	}
	// BN after ReLU: unsound fold.
	net2 := nn.NewNetwork([]int{4}, nn.NewDense(4, 4, rng), nn.NewReLU(), nn.NewBatchNorm1D(4))
	if _, err := FoldBatchNorm(net2); err == nil {
		t.Fatal("folded BN through a nonlinearity")
	}
}

func TestLowerFailsOnUnsupportedOp(t *testing.T) {
	rng := tensor.NewRNG(8)
	conv := nn.NewNetwork([]int{1, 8, 8},
		nn.NewConv2D(1, 2, 3, 3, 1, 1, rng), nn.NewFlatten(), nn.NewDense(128, 2, rng))
	m0, _ := device.ProfileByName("m0-sensor")
	if _, err := Lower(conv, m0); err == nil || !strings.Contains(err.Error(), "conv2d") {
		t.Fatalf("Lower error = %v", err)
	}
}

func TestLowerFoldsBatchNormOnlyWhenTargetLacksIt(t *testing.T) {
	rng := tensor.NewRNG(9)
	build := func() *nn.Network {
		return nn.NewNetwork([]int{4},
			nn.NewDense(4, 8, rng), nn.NewBatchNorm1D(8), nn.NewDense(8, 2, rng))
	}
	npu, _ := device.ProfileByName("npu-board") // no batchnorm kernel
	res, err := Lower(build(), npu)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Network.Layers() {
		if l.Kind() == "batchnorm1d" {
			t.Fatal("batchnorm survived lowering for npu")
		}
	}
	phone, _ := device.ProfileByName("phone") // has batchnorm kernel
	res2, err := Lower(build(), phone)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range res2.Network.Layers() {
		if l.Kind() == "batchnorm1d" {
			found = true
		}
	}
	if !found {
		t.Fatal("batchnorm folded although the phone supports it")
	}
}

func TestExchangeRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(10)
	net := nn.NewNetwork([]int{1, 8, 8},
		nn.NewConv2D(1, 3, 3, 3, 1, 1, rng), nn.NewReLU(),
		nn.NewMaxPool2D(2, 2), nn.NewFlatten(),
		nn.NewDense(48, 16, rng), nn.NewBatchNorm1D(16), nn.NewTanh(),
		nn.NewDense(16, 4, rng), nn.NewSoftmax())
	doc, err := Export(net)
	if err != nil {
		t.Fatal(err)
	}
	data, err := doc.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	imported, err := Import(doc2)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(rng, 1, 3, 1, 8, 8)
	if !tensor.ApproxEqual(net.Predict(x), imported.Predict(x), 1e-5) {
		t.Fatal("imported model predicts differently")
	}
}

func TestImportRejectsUnknownOpAndFutureVersion(t *testing.T) {
	doc := &GraphDoc{FormatVersion: ExchangeVersion, InputShape: []int{4},
		Nodes: []Node{{Op: "attention"}}}
	if _, err := Import(doc); err == nil || !strings.Contains(err.Error(), "attention") {
		t.Fatalf("unknown op error = %v", err)
	}
	doc2 := &GraphDoc{FormatVersion: ExchangeVersion + 1, InputShape: []int{4}}
	if _, err := Import(doc2); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Fatalf("future version error = %v", err)
	}
	doc3 := &GraphDoc{FormatVersion: 0}
	if _, err := Import(doc3); err == nil {
		t.Fatal("accepted version 0")
	}
}

func TestImportRejectsCorruptTensors(t *testing.T) {
	rng := tensor.NewRNG(11)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 2, rng))
	doc, _ := Export(net)
	// Corrupt: claim a different shape.
	td := doc.Nodes[0].Tensors["weight"]
	td.Shape = []int{3, 2}
	doc.Nodes[0].Tensors["weight"] = td
	if _, err := Import(doc); err == nil {
		t.Fatal("accepted corrupt tensor shape")
	}
	if _, err := DecodeJSON([]byte("{broken")); err == nil {
		t.Fatal("accepted broken JSON")
	}
}

func TestImportRejectsShapeInferenceFailure(t *testing.T) {
	rng := tensor.NewRNG(12)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 2, rng))
	doc, _ := Export(net)
	doc.InputShape = []int{7} // inconsistent with dense(4→2)
	if _, err := Import(doc); err == nil {
		t.Fatal("accepted inconsistent graph")
	}
}
