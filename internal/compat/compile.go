package compat

import (
	"fmt"
	"math"

	"tinymlops/internal/nn"
	"tinymlops/internal/procvm"
	"tinymlops/internal/tensor"
)

// CompileOptions controls the compat→procvm lowering backend.
type CompileOptions struct {
	// Name labels the module; defaults to "compiled".
	Name string
	// Caps are the host capabilities the module will require. Defaults to
	// CapSensor — the grant every deployment runtime extends — so a
	// compiled model refuses to run on a host that withholds it.
	Caps procvm.Capability
	// Probes are the verification inputs for the compile-time gate; when
	// nil a deterministic seeded batch of 4 examples is generated.
	Probes *tensor.Tensor
	// Tol bounds the deviation VerifyLowering accepts between the original
	// network and its lowered (dropout-stripped, batchnorm-folded) form.
	// Defaults to 1e-4; folding is the only pass that moves float results.
	// The compiled module itself must match the lowered network bit-exactly
	// on every probe — that check has no tolerance.
	Tol float32

	capsSet bool
}

// WithCaps returns opts with an explicit capability requirement (needed to
// distinguish "default" from an intentional CapNone).
func (o CompileOptions) WithCaps(c procvm.Capability) CompileOptions {
	o.Caps = c
	o.capsSet = true
	return o
}

// CompileProcVM lowers a trained network into a gas-metered procvm.Module:
// the portable obfuscated deployment format. The pipeline is
// drop-dropout → fold-batchnorm → per-layer instruction selection, gated
// by VerifyLowering on the fold and by a bit-exact module-vs-network probe
// run on the final bytecode. The module's GasLimit is pinned to the exact
// measured cost of one inference (gas is a pure function of code and input
// length, so the pin is tight and deterministic across worker counts).
func CompileProcVM(net *nn.Network, opts CompileOptions) (*procvm.Module, error) {
	if opts.Name == "" {
		opts.Name = "compiled"
	}
	if opts.Caps == procvm.CapNone && !opts.capsSet {
		opts.Caps = procvm.CapSensor
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-4
	}
	if opts.Probes == nil {
		rng := tensor.NewRNG(0x9e3779b97f4a7c15)
		opts.Probes = tensor.Randn(rng, 1, append([]int{4}, net.InputShape...)...)
	}

	lowered := net.Clone()
	dropDropout(lowered)
	if _, err := FoldBatchNorm(lowered); err != nil {
		return nil, fmt.Errorf("compat: compile: %w", err)
	}
	if err := VerifyLowering(net, lowered, opts.Probes, opts.Tol); err != nil {
		return nil, fmt.Errorf("compat: compile: lowering gate: %w", err)
	}

	b := procvm.NewBuilder(opts.Name).RequireCaps(opts.Caps).Input()
	shape := append([]int(nil), lowered.InputShape...)
	for i, l := range lowered.Layers() {
		var err error
		shape, err = selectInstruction(b, l, shape)
		if err != nil {
			return nil, fmt.Errorf("compat: compile: layer %d (%s): %w", i, l.Kind(), err)
		}
	}
	m, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("compat: compile: %w", err)
	}

	// Pin the gas limit to one inference's exact cost, then prove the
	// bytecode bit-identical to the lowered network on every probe.
	inLen := 1
	for _, d := range lowered.InputShape {
		inLen *= d
	}
	rt := &procvm.Runtime{Granted: opts.Caps, MaxStack: 64, MaxGas: math.MaxUint64}
	res, err := rt.Run(m, make([]float32, inLen))
	if err != nil {
		return nil, fmt.Errorf("compat: compile: gas measurement: %w", err)
	}
	m.GasLimit = res.GasUsed

	want := lowered.Predict(opts.Probes)
	rows := opts.Probes.Dim(0)
	outLen := want.Size() / rows
	for r := 0; r < rows; r++ {
		row := opts.Probes.Data[r*inLen : (r+1)*inLen]
		got, err := rt.Run(m, row)
		if err != nil {
			return nil, fmt.Errorf("compat: compile: probe %d: %w", r, err)
		}
		if !got.Output.IsVec || len(got.Output.Vec) != outLen {
			return nil, fmt.Errorf("compat: compile: probe %d: module output shape mismatch", r)
		}
		for j, v := range got.Output.Vec {
			if math.Float32bits(v) != math.Float32bits(want.Data[r*outLen+j]) {
				return nil, fmt.Errorf("compat: compile: probe %d: module deviates from network at %d (%v != %v)",
					r, j, v, want.Data[r*outLen+j])
			}
		}
	}
	return m, nil
}

// selectInstruction emits the procvm form of one lowered layer and returns
// the layer's output shape (sans batch).
func selectInstruction(b *procvm.Builder, l nn.Layer, shape []int) ([]int, error) {
	flat := 1
	for _, d := range shape {
		flat *= d
	}
	switch v := l.(type) {
	case *nn.Dense:
		if flat != v.In {
			return nil, fmt.Errorf("input %v does not feed dense(%d→%d)", shape, v.In, v.Out)
		}
		b.MatVec(v.W.Value.Data, v.B.Value.Data)
		return []int{v.Out}, nil
	case *nn.ReLU:
		b.ReLU()
		return shape, nil
	case *nn.Sigmoid:
		b.Sigmoid()
		return shape, nil
	case *nn.Tanh:
		b.Tanh()
		return shape, nil
	case *nn.Softmax:
		b.Softmax()
		return shape, nil
	case *nn.Flatten:
		// The VM's value stack is already flat; reshape is a no-op.
		return []int{flat}, nil
	case *nn.Conv2D:
		if len(shape) != 3 || shape[0] != v.InC {
			return nil, fmt.Errorf("input %v does not feed conv2d(%d→%d)", shape, v.InC, v.OutC)
		}
		h, w := shape[1], shape[2]
		oh := (h+2*v.Pad-v.KH)/v.Stride + 1
		ow := (w+2*v.Pad-v.KW)/v.Stride + 1
		b.Conv2D(v.W.Value.Data, v.B.Value.Data, v.InC, h, w, v.OutC, v.KH, v.KW, v.Stride, v.Pad)
		return []int{v.OutC, oh, ow}, nil
	case *nn.MaxPool2D:
		if len(shape) != 3 {
			return nil, fmt.Errorf("input %v does not feed maxpool2d", shape)
		}
		c, h, w := shape[0], shape[1], shape[2]
		oh := (h-v.K)/v.Stride + 1
		ow := (w-v.K)/v.Stride + 1
		b.MaxPool2D(c, h, w, v.K, v.Stride)
		return []int{c, oh, ow}, nil
	default:
		return nil, fmt.Errorf("no procvm lowering for %q", l.Kind())
	}
}
