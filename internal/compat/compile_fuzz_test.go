package compat

import (
	"encoding/binary"
	"math"
	"testing"

	"tinymlops/internal/nn"
	"tinymlops/internal/procvm"
	"tinymlops/internal/tensor"
)

// fuzzWeights reinterprets fuzz bytes as IEEE-754 bit patterns — NaNs,
// infinities, signed zeros and denormals are all legal weights.
func fuzzWeights(raw []byte) []float32 {
	out := make([]float32, 0, len(raw)/4+1)
	for i := 0; i+4 <= len(raw); i += 4 {
		out = append(out, math.Float32frombits(binary.LittleEndian.Uint32(raw[i:i+4])))
	}
	if len(out) == 0 {
		out = []float32{0}
	}
	return out
}

// FuzzModuleCompile derives a small MLP (architecture and weights) from
// the fuzz input and pins the compiler's safety contract: CompileProcVM
// either rejects the network with an error or emits a module that
// (a) round-trips through the canonical codec with a stable digest,
// (b) carries a pinned, reachable gas limit, and (c) reproduces the
// lowered network bit-for-bit on inputs the compile-time probes never
// saw. It must never panic and never ship a deviating module.
func FuzzModuleCompile(f *testing.F) {
	seed := func(vals ...uint32) []byte {
		out := make([]byte, 0, 4*len(vals))
		for _, v := range vals {
			out = binary.LittleEndian.AppendUint32(out, v)
		}
		return out
	}
	nan := math.Float32bits(float32(math.NaN()))
	inf := math.Float32bits(float32(math.Inf(1)))
	f.Add(seed(0x3f800000, 0xbf800000, 0x3f000000, 0x40000000), uint8(0), uint8(2))
	f.Add(seed(nan, inf, 0x80000000, 0x00000001), uint8(1), uint8(3))
	f.Add(seed(0, 0, 0, 0, 0, 0, 0, 0), uint8(2), uint8(1))
	f.Add([]byte{}, uint8(3), uint8(0))

	f.Fuzz(func(t *testing.T, raw []byte, archByte, actByte uint8) {
		w := fuzzWeights(raw)
		in := 1 + int(archByte%5)
		hidden := 1 + int(archByte/5%6)
		out := 1 + int(actByte/3%4)
		next := 0
		pull := func() float32 {
			v := w[next%len(w)]
			next++
			return v
		}
		var act nn.Layer
		switch actByte % 3 {
		case 0:
			act = nn.NewReLU()
		case 1:
			act = nn.NewTanh()
		default:
			act = nn.NewSigmoid()
		}
		rng := tensor.NewRNG(1)
		d1 := nn.NewDense(in, hidden, rng)
		d2 := nn.NewDense(hidden, out, rng)
		for i := range d1.W.Value.Data {
			d1.W.Value.Data[i] = pull()
		}
		for i := range d2.W.Value.Data {
			d2.W.Value.Data[i] = pull()
		}
		for i := range d1.B.Value.Data {
			d1.B.Value.Data[i] = pull()
		}
		net := nn.NewNetwork([]int{in}, d1, act, d2)

		m, err := CompileProcVM(net, CompileOptions{Name: "fuzz"})
		if err != nil {
			return // rejection is a legal outcome; panics are not
		}
		// (a) canonical codec round-trip with a stable digest.
		enc := m.Encode()
		m2, err := procvm.DecodeModule(enc)
		if err != nil {
			t.Fatalf("compiled module does not decode: %v", err)
		}
		if m2.Digest() != m.Digest() {
			t.Fatal("module digest unstable across encode/decode")
		}
		// (b) the pinned gas limit is exactly reachable.
		if m.GasLimit == 0 {
			t.Fatal("compile left GasLimit unpinned")
		}
		rt := procvm.NewRuntime(m.Caps)
		rt.MaxGas = m.GasLimit
		// (c) bit-exact equivalence on fresh inputs (the probe batch the
		// compiler used came from a different seed).
		x := tensor.Randn(tensor.NewRNG(2), 1, 3, in)
		want := net.ForwardBatch(x, nil)
		for r := 0; r < 3; r++ {
			res, err := rt.Run(m2, x.Data[r*in:(r+1)*in])
			if err != nil {
				t.Fatalf("row %d: %v", r, err)
			}
			if res.GasUsed != m.GasLimit {
				t.Fatalf("row %d: gas %d != pinned %d", r, res.GasUsed, m.GasLimit)
			}
			for j, v := range res.Output.Vec {
				g := want.Data[r*out+j]
				if math.IsNaN(float64(v)) && math.IsNaN(float64(g)) {
					continue
				}
				if math.Float32bits(v) != math.Float32bits(g) {
					t.Fatalf("row %d out %d: module %v != network %v", r, j, v, g)
				}
			}
		}
	})
}
