package compat

import (
	"testing"

	"tinymlops/internal/nn"
	"tinymlops/internal/procvm"
	"tinymlops/internal/tensor"
)

// benchNet mirrors the offload benchmarks' MLP so the procvm-vs-native
// numbers and the split numbers describe the same workload.
func benchNet(rng *tensor.RNG) *nn.Network {
	return nn.NewNetwork([]int{32},
		nn.NewDense(32, 128, rng), nn.NewReLU(),
		nn.NewDense(128, 128, rng), nn.NewReLU(),
		nn.NewDense(128, 64, rng), nn.NewTanh(),
		nn.NewDense(64, 8, rng))
}

// BenchmarkProcVMForward measures one query through a compiled module on
// the capability-gated runtime — the portable protected path. Compare
// against BenchmarkNativeForward for the lowering's interpretation tax.
func BenchmarkProcVMForward(b *testing.B) {
	net := benchNet(tensor.NewRNG(2))
	m, err := CompileProcVM(net, CompileOptions{Name: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	rt := procvm.NewRuntime(m.Caps)
	rt.MaxGas = m.GasLimit
	x := tensor.Randn(tensor.NewRNG(4), 1, 1, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Run(m, x.Data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNativeForward is the baseline the module lowered from: the
// same network, same single-row query, through the fused batch path.
func BenchmarkNativeForward(b *testing.B) {
	net := benchNet(tensor.NewRNG(2))
	x := tensor.Randn(tensor.NewRNG(4), 1, 1, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatch(x, nil)
	}
}
