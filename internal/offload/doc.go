// Package offload executes the edge–cloud model splits that
// internal/market plans — the §IV story that fragmented edge hardware
// forces partitioned execution: run the first layers on-device, ship the
// boundary activation, finish in the cloud.
//
// The paper treats the cut point as an operational concern, so this
// package is a serving runtime, not a calculator. A Session owns one
// device's split: it charges prefix compute and radio to the device cost
// model and every query to the prepaid meter (offloading never escapes
// pay-per-query), serializes the boundary activation through the tensor
// codec, and — because the split shares the monolithic model's exact
// floating-point operations — answers bit-identically to a full on-device
// forward pass no matter where the cut lands or whether the network
// failed it back to the edge. A CloudTier is the vendor-side half: a
// bounded admission queue that coalesces concurrent suffix requests of
// the same (version, cut) class into single ForwardBatch calls, drains
// tenants round-robin so no device starves, and sheds under overload —
// shed queries retry on the engine's deterministic backoff and finish
// locally if the cloud stays saturated.
//
// A Replanner closes the loop: it watches live bandwidth, battery and
// cloud queue depth, re-runs market.BestSplit when conditions drift past
// its trigger thresholds, and moves the cut only for a MinGain predicted
// improvement — two-stage hysteresis, so the fault plane's weather
// migrates the cut without making it flap.
//
// Three protected registration paths extend the tier beyond plaintext
// float suffixes. RegisterQuant serves integer-native splits: the device
// ships its boundary as int8 codes plus a per-example scale (the strict
// QAB1 wire codec) and the cloud resumes on the same integer kernels, so
// the split stays bit-identical to the device's own quantized forward.
// RegisterProtected serves watermarked per-device copies from an enclave
// session — the protected plaintext never exists cloud-side outside the
// enclave, and every query is charged the enclave's measured slowdown.
// RegisterModule hosts compiled procvm modules, whose only split is
// all-local versus whole-module execution inside the enclave (cut 0).
package offload
