package offload

import (
	"math"
	"testing"

	"tinymlops/internal/compat"
	"tinymlops/internal/device"
	"tinymlops/internal/enclave"
	"tinymlops/internal/market"
	"tinymlops/internal/nn"
	"tinymlops/internal/procvm"
	"tinymlops/internal/quant"
	"tinymlops/internal/tensor"
)

// unmeteredSession builds an Exec-path session (no meter, upstream gate
// assumed) over the fixture's cloud and device.
func unmeteredSession(t *testing.T, cfg SessionConfig) *Session {
	t.Helper()
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestQuantSplitSessionBitExact runs an int8 session through the quant
// registration path: the device quantizes its boundary into QAB1 codes,
// the cloud resumes on its own QModel, and the split answer must be
// bit-identical to the device's full integer forward. The local fallback
// (offline cut) must agree too.
func TestQuantSplitSessionBitExact(t *testing.T) {
	f := newFixture(t, "phone", CloudConfig{}, 100)
	if err := f.cloud.RegisterQuant("v1#q", f.model, quant.Int8); err != nil {
		t.Fatal(err)
	}
	if !f.cloud.Registered("v1#q") {
		t.Fatal("quant entry not registered")
	}
	if f.cloud.Registered("missing") {
		t.Fatal("phantom registration")
	}
	f.cloud.Start()
	defer f.cloud.Close()

	qm, err := quant.NewQModel(f.model, quant.Int8)
	if err != nil {
		t.Fatal(err)
	}
	x := f.input(3)
	want := qm.ForwardBatch(tensor.FromSlice(append([]float32(nil), x...), 1, len(x)), quant.NewQScratch())

	plan := market.SplitPlan{Cut: 1} // snaps to a dense-stage boundary
	s := unmeteredSession(t, SessionConfig{
		VersionID: "v1#q", Device: f.dev, Model: f.model, Scheme: quant.Int8,
		Cloud: f.cloud, Plan: &plan, Replan: ReplanConfig{Disabled: true},
	})
	res, err := s.Exec(x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeSplit {
		t.Fatalf("mode %v, want split", res.Mode)
	}
	if !logitsEqual(res.Logits, want) {
		t.Fatalf("quant split %v != integer forward %v", res.Logits, want.Data)
	}
	// Offline: the session falls back to the integer kernels locally and
	// must produce the identical bits.
	f.dev.SetNet(device.Offline)
	res, err = s.Exec(x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode == ModeSplit {
		t.Fatal("offline query claimed a split")
	}
	if !logitsEqual(res.Logits, want) {
		t.Fatalf("quant fallback %v != integer forward %v", res.Logits, want.Data)
	}
	f.dev.SetNet(device.WiFi)
}

// TestProtectedSessionBitExact serves the suffix from an enclave-resident
// copy via RegisterProtected and demands the split answer match the
// device's own forward bit-for-bit — protection must not perturb results.
func TestProtectedSessionBitExact(t *testing.T) {
	f := newFixture(t, "phone", CloudConfig{}, 100)
	enc, err := enclave.New("prot-enclave", []byte("prot-test-root-key-0123456789abc"), 2)
	if err != nil {
		t.Fatal(err)
	}
	esess := enclave.NewSession(enc)
	blob, err := f.model.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := enc.Seal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := esess.LoadSealedNetwork("copy", sealed); err != nil {
		t.Fatal(err)
	}
	if err := f.cloud.RegisterProtected("v1@dev", esess, "copy", 32); err != nil {
		t.Fatal(err)
	}
	// Registering an artifact the session does not hold must fail.
	if err := f.cloud.RegisterProtected("v1@other", esess, "missing", 32); err == nil {
		t.Fatal("registered a protected entry with no artifact")
	}
	if err := f.cloud.RegisterProtected("", nil, "copy", 32); err == nil {
		t.Fatal("registered without a session")
	}
	f.cloud.Start()
	defer f.cloud.Close()

	x := f.input(5)
	want := f.expect(x)
	plan := market.SplitPlan{Cut: 2}
	s := unmeteredSession(t, SessionConfig{
		VersionID: "v1@dev", Device: f.dev, Model: f.model,
		Cloud: f.cloud, Plan: &plan, Replan: ReplanConfig{Disabled: true},
	})
	res, err := s.Exec(x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeSplit {
		t.Fatalf("mode %v, want split", res.Mode)
	}
	if !logitsEqual(res.Logits, want) {
		t.Fatalf("protected split %v != forward %v", res.Logits, want.Data)
	}
}

// TestModuleSessionSplitAndLocal drives a compiled-module session through
// both of its modes: cut 0 ships the raw input for whole-module enclave
// execution, the all-local cut runs the module on the session's own
// gas-raised runtime — and both must agree bit-for-bit with a direct run.
func TestModuleSessionSplitAndLocal(t *testing.T) {
	f := newFixture(t, "phone", CloudConfig{}, 100)
	mod, err := compat.CompileProcVM(f.model, compat.CompileOptions{Name: "mod"})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := enclave.New("mod-enclave", []byte("mod-test-root-key-0123456789abcd"), 1.5)
	if err != nil {
		t.Fatal(err)
	}
	esess := enclave.NewSession(enc)
	sealed, err := enc.Seal(mod.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := esess.LoadSealedModule("mod", sealed); err != nil {
		t.Fatal(err)
	}
	var macs int64
	for _, c := range mustSummary(t, f.model) {
		macs += c.Info.MACs
	}
	if err := f.cloud.RegisterModule("vm", esess, "mod", macs); err != nil {
		t.Fatal(err)
	}
	if err := f.cloud.RegisterModule("vm2", esess, "nope", macs); err == nil {
		t.Fatal("registered a module entry with no artifact")
	}
	f.cloud.Start()
	defer f.cloud.Close()

	x := f.input(7)
	rt := procvm.NewRuntime(mod.Caps)
	if mod.GasLimit > rt.MaxGas {
		rt.MaxGas = mod.GasLimit
	}
	ref, err := rt.Run(mod, x)
	if err != nil {
		t.Fatal(err)
	}

	cloudPlan := market.SplitPlan{Cut: 0}
	s := unmeteredSession(t, SessionConfig{
		VersionID: "vm", Device: f.dev, Module: mod, ModuleMACs: macs, InFeatures: 8,
		Cloud: f.cloud, Plan: &cloudPlan, Replan: ReplanConfig{Disabled: true},
	})
	res, err := s.Exec(x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeSplit || res.Cut != 0 {
		t.Fatalf("mode %v cut %d, want whole-module split at cut 0", res.Mode, res.Cut)
	}
	if !vecBitsEqual(res.Logits, ref.Output.Vec) {
		t.Fatalf("enclave module %v != direct run %v", res.Logits, ref.Output.Vec)
	}

	localPlan := market.SplitPlan{Cut: 1}
	l := unmeteredSession(t, SessionConfig{
		VersionID: "vm", Device: f.dev, Module: mod, ModuleMACs: macs, InFeatures: 8,
		Cloud: f.cloud, Plan: &localPlan, Replan: ReplanConfig{Disabled: true},
	})
	res, err = l.Exec(x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeLocal {
		t.Fatalf("mode %v, want local", res.Mode)
	}
	if !vecBitsEqual(res.Logits, ref.Output.Vec) {
		t.Fatalf("local module %v != direct run %v", res.Logits, ref.Output.Vec)
	}
	if got := res.Mode.String(); got != "local" {
		t.Fatalf("mode string %q", got)
	}
}

func mustSummary(t *testing.T, net *nn.Network) []nn.LayerCost {
	t.Helper()
	costs, err := net.Summary()
	if err != nil {
		t.Fatal(err)
	}
	return costs
}

func vecBitsEqual(got, want []float32) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			return false
		}
	}
	return true
}
