package offload

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"tinymlops/internal/device"
	"tinymlops/internal/enclave"
	"tinymlops/internal/nn"
	"tinymlops/internal/quant"
	"tinymlops/internal/tensor"
)

// ErrShed is returned by Submit when the bounded admission queue is full.
// Shedding is the cloud tier's overload valve: the device retries on the
// engine's deterministic backoff schedule and, if the retries exhaust,
// finishes the query locally — the cloud being busy must never lose a
// query, only move its compute back to the edge.
var ErrShed = errors.New("offload: admission queue full")

// ErrClosed is returned by Submit after the tier has been closed.
var ErrClosed = errors.New("offload: cloud tier closed")

// ErrUnknownModel is returned for suffix requests naming an unregistered
// model version.
var ErrUnknownModel = errors.New("offload: unknown model version")

// CloudConfig sizes a CloudTier.
type CloudConfig struct {
	// Caps models the cloud-side hardware for per-query latency accounting
	// (default: the wall-powered edge-gateway profile).
	Caps device.Capabilities
	// MaxBatch bounds how many queued suffix requests one dispatch
	// coalesces into a single ForwardBatch call (default 16). Coalescing is
	// opportunistic: a dispatcher drains whatever is queued up to this
	// limit, it never waits for a batch to fill.
	MaxBatch int
	// QueueCap bounds admitted-but-unserved requests across all tenants;
	// Submit sheds with ErrShed beyond it (default 256).
	QueueCap int
	// Dispatchers is the number of serving goroutines (default 2). Each
	// drains and executes one batch at a time; ForwardBatch performs no
	// model writes, so dispatchers share registered models safely.
	Dispatchers int
	// TraceBatch, when set, observes every dispatched batch (model
	// version, cut, tenants in service order) — a test and CLI hook, called
	// outside the tier lock.
	TraceBatch func(versionID string, cut int, tenants []string)
}

// Response is the cloud's answer to one suffix request.
type Response struct {
	// Payload is the output activation (usually the logits row), encoded
	// with the tensor codec like the request was.
	Payload []byte
	// Latency is the modeled cloud compute time for this query.
	Latency time.Duration
	// BatchSize is how many requests the serving batch coalesced —
	// observability for the batching efficiency the tier exists for.
	BatchSize int
}

// CloudStats aggregates a tier's serving counters.
type CloudStats struct {
	Submitted int64
	Served    int64
	Shed      int64
	Batches   int64
	// MaxQueueDepth is the high-water mark of admitted requests.
	MaxQueueDepth int
	// MaxBatchSize is the largest coalesced batch dispatched.
	MaxBatchSize int
}

// request is one admitted suffix query waiting for service. Float-boundary
// requests carry the activation tensor; quantized-boundary requests carry
// the example's int8 codes and dynamic scale instead.
type request struct {
	tenant string
	act    *tensor.Tensor
	codes  []int8
	scale  float32
	reply  chan result
}

// result is what a dispatcher delivers back to a waiting Submit.
type result struct {
	resp Response
	err  error
}

// classKey identifies a batchable request class: only requests for the
// same model version at the same cut share activation shapes and suffix
// weights, so only they can ride one ForwardBatch.
type classKey struct {
	version string
	cut     int
}

// class is the per-(version, cut) queue state: per-tenant FIFOs plus the
// round-robin cursor that makes draining fair — a tenant flooding the
// queue gets at most one slot per turn while other tenants have work.
type class struct {
	key      classKey
	suffix   *nn.Network
	sufMACs  int64
	bits     int
	actShape []int // expected per-example activation shape (nil: VM validates)
	// Integer-native classes resume the registered QModel from boundary
	// codes at the class cut; width is the per-example code count.
	qm    *quant.QModel
	width int
	// Protected classes execute inside an enclave session; slow is the
	// protected world's latency factor (1 outside it).
	sess  *enclave.Session
	artID string
	slow  float64

	tenants map[string][]*request
	order   []string // tenants with pending work, in arrival order
	next    int      // round-robin cursor into order
	pending int
}

// modelEntry is one registered artifact the tier can serve suffixes of:
// a plain float network, an integer-native QModel resumed from quantized
// boundary codes, or a protected artifact (network or compiled module)
// executing inside an enclave session.
type modelEntry struct {
	net   *nn.Network
	bits  int
	costs []nn.LayerCost
	qm    *quant.QModel
	sess  *enclave.Session
	artID string
	mod   bool // protected compiled-module entry (single-unit cost model)
	slow  float64
}

// CloudTier is the cloud half of the offload plane: a bounded, batched
// admission queue in front of suffix execution. Devices Submit boundary
// activations; dispatcher goroutines coalesce concurrent requests of the
// same (model, cut) class into single ForwardBatch calls with per-tenant
// fair scheduling. Because ForwardBatch is bit-identical to per-sample
// Forward, the answer a device gets does not depend on which batch its
// request rode in — batching changes throughput, never results.
type CloudTier struct {
	cfg CloudConfig

	mu         sync.Mutex
	cond       *sync.Cond
	models     map[string]*modelEntry
	classes    map[classKey]*class
	classOrder []classKey
	nextClass  int
	queued     int
	started    bool
	closed     bool
	stats      CloudStats
	wg         sync.WaitGroup
}

// NewCloud returns a cloud tier over the configuration. Call Start to
// begin serving; Submit before Start queues (and may shed) but is not
// served until dispatchers run.
func NewCloud(cfg CloudConfig) *CloudTier {
	if cfg.Caps.Name == "" {
		for _, p := range device.StandardProfiles() {
			if p.Class == device.ClassEdgeServer {
				cfg.Caps = p
			}
		}
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 16
	}
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 256
	}
	if cfg.Dispatchers < 1 {
		cfg.Dispatchers = 2
	}
	c := &CloudTier{
		cfg:     cfg,
		models:  make(map[string]*modelEntry),
		classes: make(map[classKey]*class),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Caps returns the modeled cloud hardware profile.
func (c *CloudTier) Caps() device.Capabilities { return c.cfg.Caps }

// Register makes a model version servable. The network is shared, not
// copied — the caller must not mutate it while the tier serves. Repeated
// registration of the same version is a no-op.
func (c *CloudTier) Register(versionID string, net *nn.Network, bits int) error {
	if versionID == "" || net == nil {
		return fmt.Errorf("offload: register needs a version ID and a model")
	}
	if bits <= 0 {
		bits = 32
	}
	costs, err := net.Summary()
	if err != nil {
		return fmt.Errorf("offload: register %s: %w", versionID, err)
	}
	if len(costs) == 0 {
		return fmt.Errorf("offload: register %s: model has no layers", versionID)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.models[versionID]; ok {
		return nil
	}
	c.models[versionID] = &modelEntry{net: net, bits: bits, costs: costs, slow: 1}
	return nil
}

// RegisterQuant makes an integer-native model version servable from
// quantized boundary payloads: the tier lowers the float artifact onto the
// same integer kernels the device runs, so a suffix resumed from the
// device's boundary codes is bit-identical to the device finishing locally.
// Quant entries accept only QAB1 payloads, at dense-stage cuts.
func (c *CloudTier) RegisterQuant(versionID string, net *nn.Network, scheme quant.Scheme) error {
	if versionID == "" || net == nil {
		return fmt.Errorf("offload: register needs a version ID and a model")
	}
	qm, err := quant.NewQModel(net, scheme)
	if err != nil {
		return fmt.Errorf("offload: register quant %s: %w", versionID, err)
	}
	costs, err := net.Summary()
	if err != nil {
		return fmt.Errorf("offload: register quant %s: %w", versionID, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.models[versionID]; ok {
		return nil
	}
	c.models[versionID] = &modelEntry{bits: scheme.Bits(), costs: costs, qm: qm, slow: 1}
	return nil
}

// RegisterProtected makes an enclave-resident network servable: the suffix
// executes inside the session's protected world (the watermarked per-device
// copy never exists in cloud plaintext outside the enclave) and every query
// is charged the enclave's slowdown factor. artID names the artifact
// previously loaded into the session with LoadSealedNetwork.
func (c *CloudTier) RegisterProtected(versionID string, sess *enclave.Session, artID string, bits int) error {
	if versionID == "" || sess == nil {
		return fmt.Errorf("offload: register needs a version ID and an enclave session")
	}
	net, err := sess.Network(artID)
	if err != nil {
		return fmt.Errorf("offload: register protected %s: %w", versionID, err)
	}
	if bits <= 0 {
		bits = 32
	}
	costs, err := net.Summary()
	if err != nil {
		return fmt.Errorf("offload: register protected %s: %w", versionID, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.models[versionID]; ok {
		return nil
	}
	c.models[versionID] = &modelEntry{net: net, bits: bits, costs: costs, sess: sess, artID: artID, slow: sess.Slowdown()}
	return nil
}

// RegisterModule makes an enclave-resident compiled module servable. A
// module has no layer graph to split, so its cost model is a single unit:
// cut 0 ships the raw input and the whole module executes in the enclave.
// macs is the module's per-query work for latency accounting.
func (c *CloudTier) RegisterModule(versionID string, sess *enclave.Session, artID string, macs int64) error {
	if versionID == "" || sess == nil {
		return fmt.Errorf("offload: register needs a version ID and an enclave session")
	}
	if _, err := sess.Module(artID); err != nil {
		return fmt.Errorf("offload: register module %s: %w", versionID, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.models[versionID]; ok {
		return nil
	}
	costs := []nn.LayerCost{{Kind: "module", Info: nn.LayerInfo{MACs: macs}}}
	c.models[versionID] = &modelEntry{bits: 32, costs: costs, sess: sess, artID: artID, mod: true, slow: sess.Slowdown()}
	return nil
}

// Registered reports whether a model version is already servable —
// callers holding only a version ID can skip materializing the artifact.
func (c *CloudTier) Registered(versionID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.models[versionID]
	return ok
}

// Start launches the dispatcher goroutines. Idempotent.
func (c *CloudTier) Start() {
	c.mu.Lock()
	if c.started || c.closed {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	for i := 0; i < c.cfg.Dispatchers; i++ {
		c.wg.Add(1)
		go c.dispatch()
	}
}

// Close stops admission, drains queued requests (failing them with
// ErrClosed if the tier never started) and waits for dispatchers to exit.
func (c *CloudTier) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	if !c.started {
		// No dispatcher will ever drain; fail the queued requests here.
		for _, cl := range c.classes {
			for _, q := range cl.tenants {
				for _, r := range q {
					r.reply <- result{err: ErrClosed}
				}
			}
			cl.tenants = make(map[string][]*request)
			cl.order, cl.pending = nil, 0
		}
		c.queued = 0
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	c.wg.Wait()
}

// QueueDepth returns the number of admitted, not yet served requests —
// the congestion signal replanners watch.
func (c *CloudTier) QueueDepth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queued
}

// Stats returns a snapshot of the serving counters.
func (c *CloudTier) Stats() CloudStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Submit hands the cloud one boundary activation (tensor codec bytes) for
// layers [cut, n) of the registered model version and blocks until the
// suffix result returns or admission fails. tenant scopes fair
// scheduling — use a stable per-device identity.
func (c *CloudTier) Submit(tenant, versionID string, cut int, activation []byte) (Response, error) {
	// The payload's magic decides the boundary codec: QAB1 carries int8
	// activation codes plus a dynamic scale (integer-native splits), the
	// tensor codec carries float32 activations (everything else).
	var act *tensor.Tensor
	var codes []int8
	var scale float32
	var width int
	if isQAB(activation) {
		cs, scales, rows, cols, err := decodeQAB(activation)
		if err != nil {
			return Response{}, err
		}
		if rows != 1 {
			return Response{}, fmt.Errorf("offload: quantized boundary carries %d rows, want 1", rows)
		}
		codes, scale, width = cs, scales[0], cols
	} else {
		act = new(tensor.Tensor)
		if _, err := act.ReadFrom(bytes.NewReader(activation)); err != nil {
			return Response{}, fmt.Errorf("offload: decode activation: %w", err)
		}
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Response{}, ErrClosed
	}
	m, ok := c.models[versionID]
	if !ok {
		c.mu.Unlock()
		return Response{}, fmt.Errorf("%w: %s", ErrUnknownModel, versionID)
	}
	if cut < 0 || cut >= len(m.costs) {
		c.mu.Unlock()
		return Response{}, fmt.Errorf("offload: cut %d out of range [0,%d) for %s", cut, len(m.costs), versionID)
	}
	if (codes != nil) != (m.qm != nil) {
		c.mu.Unlock()
		if codes != nil {
			return Response{}, fmt.Errorf("offload: %s does not accept quantized boundary payloads", versionID)
		}
		return Response{}, fmt.Errorf("offload: %s is integer-native and requires quantized boundary payloads", versionID)
	}
	key := classKey{version: versionID, cut: cut}
	cl, ok := c.classes[key]
	if !ok {
		var err error
		if cl, err = c.newClassLocked(key, m); err != nil {
			c.mu.Unlock()
			return Response{}, err
		}
	}
	switch {
	case cl.qm != nil:
		if width != cl.width {
			c.mu.Unlock()
			return Response{}, fmt.Errorf("offload: boundary width %d, want %d at cut %d", width, cl.width, cut)
		}
	case cl.actShape == nil:
		// Compiled-module class: the VM validates the vector's geometry.
		if act.Dim(0) != 1 {
			c.mu.Unlock()
			return Response{}, fmt.Errorf("offload: activation batch %d, want 1", act.Dim(0))
		}
	default:
		if act.Dim(0) != 1 || !shapeEq(act.Shape()[1:], cl.actShape) {
			c.mu.Unlock()
			return Response{}, fmt.Errorf("offload: activation shape %v, want [1 %v] at cut %d", act.Shape(), cl.actShape, cut)
		}
	}
	if c.queued >= c.cfg.QueueCap {
		c.stats.Shed++
		c.mu.Unlock()
		return Response{}, fmt.Errorf("%w (%d queued)", ErrShed, c.cfg.QueueCap)
	}
	req := &request{tenant: tenant, act: act, codes: codes, scale: scale, reply: make(chan result, 1)}
	if _, ok := cl.tenants[tenant]; !ok {
		cl.order = append(cl.order, tenant)
	}
	cl.tenants[tenant] = append(cl.tenants[tenant], req)
	cl.pending++
	c.queued++
	c.stats.Submitted++
	if c.queued > c.stats.MaxQueueDepth {
		c.stats.MaxQueueDepth = c.queued
	}
	c.cond.Signal()
	c.mu.Unlock()

	r := <-req.reply
	return r.resp, r.err
}

// newClassLocked builds the (version, cut) serving class: the shared
// suffix view (or quant/enclave resume state) and its cost figures. Caller
// holds c.mu.
func (c *CloudTier) newClassLocked(key classKey, m *modelEntry) (*class, error) {
	var macs int64
	for _, lc := range m.costs[key.cut:] {
		macs += lc.Info.MACs
	}
	cl := &class{
		key: key, sufMACs: macs, bits: m.bits,
		sess: m.sess, artID: m.artID, slow: m.slow,
		tenants: make(map[string][]*request),
	}
	if cl.slow <= 0 {
		cl.slow = 1
	}
	switch {
	case m.qm != nil:
		if !m.qm.CanCutAt(key.cut) {
			return nil, fmt.Errorf("offload: cut %d is not a quantized boundary for %s", key.cut, key.version)
		}
		w, err := m.qm.BoundaryWidth(key.cut)
		if err != nil {
			return nil, fmt.Errorf("offload: %s@%d: %w", key.version, key.cut, err)
		}
		cl.qm, cl.width = m.qm, w
	case m.mod:
		// Whole-module class (cut 0 enforced by the single-unit cost
		// model); activation geometry is the VM's to validate.
	default:
		suffix, err := m.net.Subnet(key.cut, len(m.costs))
		if err != nil {
			return nil, fmt.Errorf("offload: suffix for %s@%d: %w", key.version, key.cut, err)
		}
		shape, err := m.net.PrefixShape(key.cut)
		if err != nil {
			return nil, err
		}
		cl.suffix, cl.actShape = suffix, shape
	}
	c.classes[key] = cl
	c.classOrder = append(c.classOrder, key)
	return cl, nil
}

// dispatch is one serving goroutine: wait for work, drain a fair batch,
// execute it, repeat until closed and drained.
func (c *CloudTier) dispatch() {
	defer c.wg.Done()
	scratch := make(map[classKey]*nn.Scratch)
	qscratch := make(map[classKey]*quant.QScratch)
	for {
		c.mu.Lock()
		for c.queued == 0 && !c.closed {
			c.cond.Wait()
		}
		if c.queued == 0 && c.closed {
			c.mu.Unlock()
			return
		}
		cl, reqs := c.drainLocked()
		c.mu.Unlock()
		if len(reqs) == 0 {
			continue
		}
		var s *nn.Scratch
		var qs *quant.QScratch
		switch {
		case cl.qm != nil:
			if qs = qscratch[cl.key]; qs == nil {
				qs = quant.NewQScratch()
				qscratch[cl.key] = qs
			}
		case cl.suffix != nil:
			if s = scratch[cl.key]; s == nil {
				s = nn.NewScratch()
				scratch[cl.key] = s
			}
		}
		c.execBatch(cl, reqs, s, qs)
	}
}

// drainLocked picks the next class with pending work (round-robin across
// classes) and drains up to MaxBatch requests from it, one per tenant per
// turn. Caller holds c.mu.
func (c *CloudTier) drainLocked() (*class, []*request) {
	var cl *class
	for range c.classOrder {
		key := c.classOrder[c.nextClass%len(c.classOrder)]
		c.nextClass = (c.nextClass + 1) % len(c.classOrder)
		if cand := c.classes[key]; cand.pending > 0 {
			cl = cand
			break
		}
	}
	if cl == nil {
		return nil, nil
	}
	take := cl.pending
	if take > c.cfg.MaxBatch {
		take = c.cfg.MaxBatch
	}
	reqs := make([]*request, 0, take)
	for len(reqs) < take {
		tenant := cl.order[cl.next]
		q := cl.tenants[tenant]
		reqs = append(reqs, q[0])
		q = q[1:]
		if len(q) == 0 {
			delete(cl.tenants, tenant)
			cl.order = append(cl.order[:cl.next], cl.order[cl.next+1:]...)
			if len(cl.order) == 0 {
				cl.next = 0
			} else {
				cl.next %= len(cl.order)
			}
		} else {
			cl.tenants[tenant] = q
			cl.next = (cl.next + 1) % len(cl.order)
		}
		cl.pending--
	}
	c.queued -= len(reqs)
	return cl, reqs
}

// execBatch runs one coalesced suffix batch and replies to every request.
// The execution engine follows the class kind: float suffix (plain or
// enclave-resident network), integer-kernel resume from boundary codes, or
// per-row compiled-module execution inside the enclave session.
func (c *CloudTier) execBatch(cl *class, reqs []*request, s *nn.Scratch, qs *quant.QScratch) {
	if c.cfg.TraceBatch != nil {
		tenants := make([]string, len(reqs))
		for i, r := range reqs {
			tenants[i] = r.tenant
		}
		c.cfg.TraceBatch(cl.key.version, cl.key.cut, tenants)
	}
	rows := len(reqs)
	var out *tensor.Tensor
	// errs is allocated only on the failure paths so the float hot path
	// stays allocation-free per batch.
	var errs []error
	fail := func(i int, err error) {
		if errs == nil {
			errs = make([]error, rows)
		}
		errs[i] = err
	}
	switch {
	case cl.qm != nil:
		codes := make([]int8, rows*cl.width)
		scales := make([]float32, rows)
		for i, r := range reqs {
			copy(codes[i*cl.width:(i+1)*cl.width], r.codes)
			scales[i] = r.scale
		}
		o, err := cl.qm.ForwardFromCodes(codes, scales, rows, cl.key.cut, qs)
		if err != nil {
			for i := 0; i < rows; i++ {
				fail(i, fmt.Errorf("offload: quant suffix: %w", err))
			}
		} else {
			out = o
		}
	case cl.sess != nil && cl.suffix == nil:
		// Compiled module: one in-enclave run per request. Gas exhaustion
		// or a geometry mismatch fails that request alone — its device
		// falls back to local execution; batch-mates are unaffected.
		for i, r := range reqs {
			res, err := cl.sess.RunModule(cl.artID, r.act.Data)
			if err != nil {
				fail(i, fmt.Errorf("offload: enclave module: %w", err))
				continue
			}
			if !res.Output.IsVec {
				fail(i, fmt.Errorf("offload: enclave module produced a scalar, want a vector"))
				continue
			}
			if out == nil {
				out = tensor.New(rows, len(res.Output.Vec))
			}
			copy(out.Data[i*out.Dim(1):(i+1)*out.Dim(1)], res.Output.Vec)
		}
	default:
		rowLen := 1
		for _, d := range cl.actShape {
			rowLen *= d
		}
		batch := tensor.New(append([]int{rows}, cl.actShape...)...)
		for i, r := range reqs {
			copy(batch.Data[i*rowLen:(i+1)*rowLen], r.act.Data)
		}
		out = cl.suffix.ForwardBatch(batch, s)
	}
	var outShape []int
	outLen := 0
	if out != nil {
		outShape = out.Shape()[1:]
		outLen = out.Size() / rows
	}
	served := 0
	for i := range reqs {
		if (errs == nil || errs[i] == nil) && out != nil {
			served++
		}
	}
	// Protected execution pays the enclave's slowdown on cloud compute.
	perQuery := time.Duration(float64(c.cfg.Caps.InferenceLatency(cl.sufMACs, cl.bits)) * cl.slow)
	// Stats commit BEFORE any reply is delivered: a caller unblocked by
	// its reply must observe its own request in Stats() — the chaos
	// scenario's CloudServed == Split invariant depends on it.
	c.mu.Lock()
	c.stats.Batches++
	c.stats.Served += int64(served)
	if rows > c.stats.MaxBatchSize {
		c.stats.MaxBatchSize = rows
	}
	c.mu.Unlock()
	for i, r := range reqs {
		var e error
		if errs != nil {
			e = errs[i]
		}
		if e != nil || out == nil {
			if e == nil {
				e = fmt.Errorf("offload: suffix produced no output")
			}
			r.reply <- result{err: e}
			continue
		}
		row := tensor.FromSlice(
			append([]float32(nil), out.Data[i*outLen:(i+1)*outLen]...),
			append([]int{1}, outShape...)...)
		var buf bytes.Buffer
		if _, err := row.WriteTo(&buf); err != nil {
			r.reply <- result{err: fmt.Errorf("offload: encode result: %w", err)}
			continue
		}
		r.reply <- result{resp: Response{Payload: buf.Bytes(), Latency: perQuery, BatchSize: rows}}
	}
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
