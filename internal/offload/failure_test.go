package offload

import (
	"errors"
	"fmt"
	"time"

	"testing"

	"tinymlops/internal/device"
	"tinymlops/internal/engine"
	"tinymlops/internal/market"
	"tinymlops/internal/metering"
	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

// TestOffloadFailurePaths is the table-driven failure-path suite: each
// case arranges one way the split can go wrong and pins the required
// recovery — uplink drops fall back to full on-device execution, an
// exhausted meter rejects before any compute, a dead battery fails the
// query outright, and the replanner's hysteresis keeps the cut still
// under sub-threshold noise.
func TestOffloadFailurePaths(t *testing.T) {
	cases := []struct {
		name  string
		quota uint64
		// drain spends the whole quota with successful queries first.
		drain   bool
		arrange func(f *fixture)
		// wantErrOnly means the query must error with wantErr; otherwise
		// it must succeed in wantMode.
		wantMode    Mode
		wantErr     error
		wantErrOnly bool
	}{
		{
			name: "uplink drop mid-activation falls back on-device", quota: 10,
			arrange:  func(f *fixture) { f.dev.SetNet(device.Offline) },
			wantMode: ModeFallback,
		},
		{
			name: "degraded link still splits", quota: 10,
			arrange:  func(f *fixture) { f.dev.SetNet(device.Cellular) },
			wantMode: ModeSplit,
		},
		{
			name: "exhausted meter rejects before compute", quota: 1,
			drain:       true,
			arrange:     func(f *fixture) {},
			wantErr:     ErrMetered,
			wantErrOnly: true,
		},
		{
			name: "dead battery fails the prefix", quota: 10,
			arrange:     func(f *fixture) { f.dev.SetBatteryLevel(0) },
			wantErr:     device.ErrBatteryDepleted,
			wantErrOnly: true,
		},
		{
			name: "cloud closed: retries exhaust, finish locally", quota: 10,
			arrange:  func(f *fixture) { f.cloud.Close() },
			wantMode: ModeFallback,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := newFixture(t, "phone", CloudConfig{}, c.quota)
			f.cloud.Start()
			defer f.cloud.Close()
			c.arrange(f)
			s := f.session(t, 2)
			x := f.input(21)
			if c.drain {
				for f.meter.Remaining() > 0 {
					if _, err := s.Infer(x); err != nil {
						t.Fatal(err)
					}
				}
			}
			before := f.dev.Snapshot()
			res, err := s.Infer(x)
			if c.wantErrOnly {
				if !errors.Is(err, c.wantErr) {
					t.Fatalf("err = %v, want %v", err, c.wantErr)
				}
				after := f.dev.Snapshot()
				if after.TxBytes != before.TxBytes {
					t.Fatalf("failed query still uplinked: %d -> %d", before.TxBytes, after.TxBytes)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if res.Mode != c.wantMode {
				t.Fatalf("mode %v, want %v", res.Mode, c.wantMode)
			}
			if !logitsEqual(res.Logits, f.expect(x)) {
				t.Fatal("recovered query is not bit-exact with the monolithic forward")
			}
		})
	}
}

// sessionOutcome is the per-device record the determinism test compares
// across worker counts.
type sessionOutcome struct {
	labels    []int
	stats     Stats
	meterUsed uint64
	counters  device.Counters
}

// runSessionFleet drives nDevices concurrent sessions (each with a
// scripted per-device weather schedule) through a shared cloud tier on an
// engine pool of the given width, and returns per-device outcomes.
func runSessionFleet(t *testing.T, workers, nDevices, queries int) []sessionOutcome {
	t.Helper()
	rng := tensor.NewRNG(77)
	model := nn.NewNetwork([]int{8},
		nn.NewDense(8, 24, rng), nn.NewReLU(),
		nn.NewDense(24, 12, rng), nn.NewSigmoid(),
		nn.NewDense(12, 3, rng))
	cloud := NewCloud(CloudConfig{QueueCap: 4 * nDevices, MaxBatch: 8, Dispatchers: 2})
	if err := cloud.Register("v1", model, 32); err != nil {
		t.Fatal(err)
	}
	cloud.Start()
	defer cloud.Close()
	issuer, err := metering.NewIssuer([]byte("fleet-failure-key-0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	caps, _ := device.ProfileByName("phone")

	type state struct {
		dev   *device.Device
		sess  *Session
		meter *metering.Meter
	}
	states := make([]*state, nDevices)
	for i := range states {
		id := fmt.Sprintf("ph-%02d", i)
		dev := device.NewDevice(id, caps, tensor.NewRNG(uint64(100+i)))
		dev.SetNet(device.WiFi)
		// Low quotas on every third device exercise the metering denial
		// path mid-stream.
		quota := uint64(queries)
		if i%3 == 2 {
			quota = uint64(queries / 2)
		}
		v, err := issuer.Issue(id, "v1", quota)
		if err != nil {
			t.Fatal(err)
		}
		meter := metering.NewMeter(v)
		plan := market.SplitPlan{Cut: 2}
		// Devices at i%4==3 pin their plan (no replanning): an outage hits
		// them as an upload failure and exercises the fallback path, while
		// replanning devices migrate the cut to full-edge instead.
		rp := ReplanConfig{RTT: 10 * time.Microsecond}
		if i%4 == 3 {
			rp.Disabled = true
		}
		sess, err := NewSession(SessionConfig{
			Tenant: id, VersionID: "v1", Device: dev, Model: model.Clone(),
			Meter: meter, Cloud: cloud, Plan: &plan, Replan: rp,
		})
		if err != nil {
			t.Fatal(err)
		}
		states[i] = &state{dev: dev, sess: sess, meter: meter}
	}

	eng := engine.New(engine.Config{Workers: workers})
	outcomes := make([]sessionOutcome, nDevices)
	inputs := make([][]float32, queries)
	irng := tensor.NewRNG(9)
	for q := range inputs {
		row := make([]float32, 8)
		for j := range row {
			row[j] = irng.NormFloat32()
		}
		inputs[q] = row
	}
	err = eng.ForEach(nDevices, func(i int) error {
		st := states[i]
		for q := 0; q < queries; q++ {
			// Scripted per-device weather: devices at i%4∈{1,3} lose their
			// link for the middle third of their queries — a pure function
			// of (device index, query index), never of scheduling.
			if (i%4 == 1 || i%4 == 3) && q >= queries/3 && q < 2*queries/3 {
				st.dev.SetNet(device.Offline)
			} else {
				st.dev.SetNet(device.WiFi)
			}
			res, ierr := st.sess.Infer(inputs[q])
			if ierr != nil {
				if errors.Is(ierr, ErrMetered) {
					outcomes[i].labels = append(outcomes[i].labels, -1)
					continue
				}
				return ierr
			}
			outcomes[i].labels = append(outcomes[i].labels, res.Label)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range states {
		outcomes[i].stats = st.sess.Stats()
		outcomes[i].meterUsed = st.meter.Used()
		outcomes[i].counters = st.dev.Snapshot()
	}
	return outcomes
}

// TestOffloadFleetDeterministicAcrossWorkers runs the same scripted
// mixed-failure fleet at 1, 4 and 16 workers (with -race in CI) and
// requires per-device labels, session stats, meter usage and device
// counters to be identical — cloud batching composition may vary with
// scheduling, but nothing observable may.
func TestOffloadFleetDeterministicAcrossWorkers(t *testing.T) {
	const nDevices, queries = 12, 18
	var first []sessionOutcome
	for _, workers := range []int{1, 4, 16} {
		out := runSessionFleet(t, workers, nDevices, queries)
		// The script must actually exercise every path.
		var falls, locals, denies, splits int64
		for _, o := range out {
			falls += o.stats.Fallbacks
			locals += o.stats.Local
			denies += o.stats.Denied
			splits += o.stats.Split
		}
		if falls == 0 || locals == 0 || denies == 0 || splits == 0 {
			t.Fatalf("workers=%d: script exercised too little: fallback=%d local=%d denied=%d split=%d",
				workers, falls, locals, denies, splits)
		}
		if first == nil {
			first = out
			continue
		}
		for i := range out {
			if fmt.Sprintf("%+v", out[i]) != fmt.Sprintf("%+v", first[i]) {
				t.Fatalf("workers=%d device %d diverged:\n%+v\nvs\n%+v", workers, i, out[i], first[i])
			}
		}
	}
}
