package offload

import (
	"bytes"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"tinymlops/internal/device"
	"tinymlops/internal/market"
	"tinymlops/internal/metering"
	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

// fixture is one device + model + cloud arrangement for session tests.
type fixture struct {
	dev   *device.Device
	model *nn.Network
	cloud *CloudTier
	meter *metering.Meter
}

func newFixture(t *testing.T, profile string, cloudCfg CloudConfig, quota uint64) *fixture {
	t.Helper()
	caps, err := device.ProfileByName(profile)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(11)
	dev := device.NewDevice(profile+"-0", caps, rng)
	dev.SetNet(device.WiFi)
	model := nn.NewNetwork([]int{8},
		nn.NewDense(8, 32, rng), nn.NewReLU(),
		nn.NewDense(32, 16, rng), nn.NewTanh(),
		nn.NewDense(16, 4, rng))
	cloud := NewCloud(cloudCfg)
	if err := cloud.Register("v1", model, 32); err != nil {
		t.Fatal(err)
	}
	issuer, err := metering.NewIssuer([]byte("offload-test-key-0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	v, err := issuer.Issue(dev.ID, "v1", quota)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{dev: dev, model: model, cloud: cloud, meter: metering.NewMeter(v)}
}

func (f *fixture) session(t *testing.T, cut int) *Session {
	t.Helper()
	plan := market.SplitPlan{Cut: cut}
	s, err := NewSession(SessionConfig{
		VersionID: "v1", Device: f.dev, Model: f.model, Meter: f.meter,
		Cloud: f.cloud, Plan: &plan, Replan: ReplanConfig{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func (f *fixture) input(seed uint64) []float32 {
	rng := tensor.NewRNG(seed)
	x := make([]float32, 8)
	for i := range x {
		x[i] = rng.NormFloat32()
	}
	return x
}

func (f *fixture) expect(x []float32) *tensor.Tensor {
	return f.model.Predict(tensor.FromSlice(append([]float32(nil), x...), 1, len(x)))
}

func logitsEqual(got []float32, want *tensor.Tensor) bool {
	if len(got) != len(want.Data) {
		return false
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want.Data[i]) {
			return false
		}
	}
	return true
}

// TestSessionSplitBitExactAtEveryCut drives one metered query through
// every possible cut (including the all-cloud cut 0 and the all-edge cut
// n) and demands the split answer be bit-identical to the monolithic
// forward, with the device's radio counters matching the serialized
// boundary sizes.
func TestSessionSplitBitExactAtEveryCut(t *testing.T) {
	n := 5 // layers in the fixture model
	for cut := 0; cut <= n; cut++ {
		f := newFixture(t, "phone", CloudConfig{}, 100)
		f.cloud.Start()
		s := f.session(t, cut)
		x := f.input(uint64(40 + cut))
		want := f.expect(x)
		res, err := s.Infer(x)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !logitsEqual(res.Logits, want) {
			t.Fatalf("cut %d: split logits differ from monolithic forward", cut)
		}
		if res.Label != want.ArgMaxRows()[0] {
			t.Fatalf("cut %d: label %d, want %d", cut, res.Label, want.ArgMaxRows()[0])
		}
		c := f.dev.Snapshot()
		if cut == n {
			if res.Mode != ModeLocal || c.TxBytes != 0 {
				t.Fatalf("cut %d: mode %v, tx %d — full-edge plan touched the network", cut, res.Mode, c.TxBytes)
			}
		} else {
			if res.Mode != ModeSplit {
				t.Fatalf("cut %d: mode %v, want split", cut, res.Mode)
			}
			if c.TxBytes != res.ActivationBytes || res.ActivationBytes == 0 {
				t.Fatalf("cut %d: TxBytes %d vs activation %d", cut, c.TxBytes, res.ActivationBytes)
			}
			if c.RxBytes != res.ResponseBytes || res.ResponseBytes == 0 {
				t.Fatalf("cut %d: RxBytes %d vs response %d", cut, c.RxBytes, res.ResponseBytes)
			}
			if res.CloudBatch < 1 {
				t.Fatalf("cut %d: no cloud batch recorded", cut)
			}
			if res.Latency <= 0 {
				t.Fatalf("cut %d: no modeled latency", cut)
			}
		}
		if used := f.meter.Used(); used != 1 {
			t.Fatalf("cut %d: meter used %d, want 1", cut, used)
		}
		f.cloud.Close()
	}
}

// TestSessionMeterDeniesBeforeAnyCompute pins the pay-per-query contract:
// an exhausted voucher rejects the query before the prefix runs or any
// byte moves — identical device counters, one more denied query.
func TestSessionMeterDeniesBeforeAnyCompute(t *testing.T) {
	f := newFixture(t, "phone", CloudConfig{}, 1)
	f.cloud.Start()
	defer f.cloud.Close()
	s := f.session(t, 2)
	x := f.input(7)
	if _, err := s.Infer(x); err != nil {
		t.Fatal(err)
	}
	before := f.dev.Snapshot()
	_, err := s.Infer(x)
	if !errors.Is(err, ErrMetered) || !errors.Is(err, metering.ErrQuotaExhausted) {
		t.Fatalf("err = %v, want metered denial", err)
	}
	after := f.dev.Snapshot()
	if after.Inferences != before.Inferences || after.TxBytes != before.TxBytes ||
		after.EnergyJoule != before.EnergyJoule {
		t.Fatalf("denied query still charged the device: %+v -> %+v", before, after)
	}
	if after.DeniedQueries != before.DeniedQueries+1 {
		t.Fatalf("denied counter %d -> %d", before.DeniedQueries, after.DeniedQueries)
	}
	if st := s.Stats(); st.Denied != 1 || st.Queries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCloudFairScheduling floods the queue from one tenant while another
// submits a single request, then starts the dispatcher: round-robin
// draining must put the lone tenant's request in the first batch instead
// of behind the flood.
func TestCloudFairScheduling(t *testing.T) {
	var mu sync.Mutex
	var batches [][]string
	cloud := NewCloud(CloudConfig{
		MaxBatch: 4, Dispatchers: 1,
		TraceBatch: func(_ string, _ int, tenants []string) {
			mu.Lock()
			batches = append(batches, append([]string(nil), tenants...))
			mu.Unlock()
		},
	})
	rng := tensor.NewRNG(3)
	model := nn.NewNetwork([]int{4}, nn.NewDense(4, 8, rng), nn.NewReLU(), nn.NewDense(8, 2, rng))
	if err := cloud.Register("v1", model, 32); err != nil {
		t.Fatal(err)
	}
	act := encodeAct(t, tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 4))

	var wg sync.WaitGroup
	submit := func(tenant string, k int) {
		for i := 0; i < k; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := cloud.Submit(tenant, "v1", 0, act); err != nil {
					t.Error(err)
				}
			}()
		}
	}
	submit("flooder", 4)
	submit("lone", 1)
	waitDepth(t, cloud, 5)
	cloud.Start()
	wg.Wait()
	cloud.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(batches) != 2 {
		t.Fatalf("%d batches, want 2 (4+1)", len(batches))
	}
	if len(batches[0]) != 4 {
		t.Fatalf("first batch size %d, want 4", len(batches[0]))
	}
	lone := 0
	for _, tn := range batches[0] {
		if tn == "lone" {
			lone++
		}
	}
	if lone != 1 {
		t.Fatalf("lone tenant appears %d times in first batch %v — fair scheduling broken", lone, batches[0])
	}
	st := cloud.Stats()
	if st.Served != 5 || st.Batches != 2 || st.MaxBatchSize != 4 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCloudBoundedQueueSheds fills the admission queue beyond its cap and
// expects ErrShed, with the shed counted and no request lost.
func TestCloudBoundedQueueSheds(t *testing.T) {
	cloud := NewCloud(CloudConfig{MaxBatch: 2, QueueCap: 2, Dispatchers: 1})
	rng := tensor.NewRNG(5)
	model := nn.NewNetwork([]int{4}, nn.NewDense(4, 2, rng))
	if err := cloud.Register("v1", model, 32); err != nil {
		t.Fatal(err)
	}
	act := encodeAct(t, tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 4))
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cloud.Submit("t", "v1", 0, act); err != nil {
				t.Error(err)
			}
		}()
	}
	waitDepth(t, cloud, 2)
	if _, err := cloud.Submit("t", "v1", 0, act); !errors.Is(err, ErrShed) {
		t.Fatalf("overfull queue returned %v, want ErrShed", err)
	}
	cloud.Start()
	wg.Wait()
	cloud.Close()
	if st := cloud.Stats(); st.Shed != 1 || st.Served != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCloudSubmitValidation covers the request-validation errors.
func TestCloudSubmitValidation(t *testing.T) {
	cloud := NewCloud(CloudConfig{})
	rng := tensor.NewRNG(5)
	model := nn.NewNetwork([]int{4}, nn.NewDense(4, 2, rng))
	if err := cloud.Register("v1", model, 32); err != nil {
		t.Fatal(err)
	}
	good := encodeAct(t, tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 4))
	if _, err := cloud.Submit("t", "nope", 0, good); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown model: %v", err)
	}
	if _, err := cloud.Submit("t", "v1", 1, good); err == nil {
		t.Fatal("accepted cut == layer count (nothing for the cloud to do)")
	}
	if _, err := cloud.Submit("t", "v1", 0, []byte("garbage")); err == nil {
		t.Fatal("accepted undecodable activation")
	}
	bad := encodeAct(t, tensor.FromSlice([]float32{1, 2}, 1, 2))
	if _, err := cloud.Submit("t", "v1", 0, bad); err == nil {
		t.Fatal("accepted wrong activation shape")
	}
	cloud.Close()
	if _, err := cloud.Submit("t", "v1", 0, good); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed tier: %v", err)
	}
}

func encodeAct(t *testing.T, x *tensor.Tensor) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func waitDepth(t *testing.T, c *CloudTier, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.QueueDepth() < want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d never reached %d", c.QueueDepth(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSessionRetriesShedThenFallsBack closes the cloud so admission fails
// permanently: the session must finish the query locally (fallback) with
// a bit-exact answer rather than erroring.
func TestSessionRetriesShedThenFallsBack(t *testing.T) {
	f := newFixture(t, "phone", CloudConfig{}, 10)
	f.cloud.Start()
	f.cloud.Close()
	s := f.session(t, 2)
	x := f.input(9)
	want := f.expect(x)
	res, err := s.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeFallback {
		t.Fatalf("mode %v, want fallback", res.Mode)
	}
	if !logitsEqual(res.Logits, want) {
		t.Fatal("fallback logits differ from monolithic forward")
	}
	// The uplink was spent before the cloud refused.
	if c := f.dev.Snapshot(); c.TxBytes != res.ActivationBytes {
		t.Fatalf("TxBytes %d vs activation %d", c.TxBytes, res.ActivationBytes)
	}
	if st := s.Stats(); st.Fallbacks != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestReplannerHysteresis pins the no-flap contract: small oscillations
// never trigger a re-plan, threshold crossings re-plan but keep the cut
// unless the gain clears MinGain, and offline forces the full-edge plan.
func TestReplannerHysteresis(t *testing.T) {
	m4, _ := device.ProfileByName("m4-wearable")
	gw, _ := device.ProfileByName("edge-gateway")
	rng := tensor.NewRNG(2)
	net := nn.NewNetwork([]int{64},
		nn.NewDense(64, 256, rng), nn.NewReLU(),
		nn.NewDense(256, 256, rng), nn.NewReLU(),
		nn.NewDense(256, 8, rng))
	costs, err := net.Summary()
	if err != nil {
		t.Fatal(err)
	}
	start := Conditions{BandwidthBps: 1e6, Battery: 1}
	r, err := NewReplanner(ReplanConfig{RTT: 10 * time.Microsecond}, m4, gw, costs, 32, 64*4, nil, start)
	if err != nil {
		t.Fatal(err)
	}
	cut0 := r.Current().Cut

	// Oscillate within the bandwidth factor: no re-evaluation at all.
	for i := 0; i < 20; i++ {
		bw := 1e6
		if i%2 == 0 {
			bw = 1.6e6
		}
		if _, moved := r.Observe(Conditions{BandwidthBps: bw, Battery: 1}); moved {
			t.Fatalf("iteration %d: cut moved on a sub-threshold oscillation", i)
		}
	}
	if r.Replans() != 0 {
		t.Fatalf("%d re-plans on sub-threshold noise", r.Replans())
	}

	// Offline: the only valid plan is full-edge.
	p, moved := r.Observe(Conditions{BandwidthBps: 0, Battery: 1})
	if p.Cut != len(costs) {
		t.Fatalf("offline cut %d, want %d", p.Cut, len(costs))
	}
	if cut0 != len(costs) && !moved {
		t.Fatal("offline transition did not report a move")
	}

	// Recovery to a fat pipe: the cut migrates cloud-ward again.
	p, _ = r.Observe(Conditions{BandwidthBps: 100e6, Battery: 1})
	if p.Cut >= len(costs) {
		t.Fatalf("fat-pipe recovery kept cut %d on-device", p.Cut)
	}
	if r.Replans() < 2 {
		t.Fatalf("replans %d, want ≥2", r.Replans())
	}

	// Flapping across the offline boundary must not flap the cut more
	// than the conditions themselves flap: every observation is either
	// offline (forced full-edge) or identical fat-pipe (same best cut).
	fat := p.Cut
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			p, _ = r.Observe(Conditions{BandwidthBps: 0, Battery: 1})
			if p.Cut != len(costs) {
				t.Fatalf("offline flap %d: cut %d", i, p.Cut)
			}
		} else {
			p, _ = r.Observe(Conditions{BandwidthBps: 100e6, Battery: 1})
			if p.Cut != fat {
				t.Fatalf("recovery flap %d: cut %d, want %d", i, p.Cut, fat)
			}
		}
	}
}

// TestReplannerLowBatteryPrefersEnergy checks the objective switch: a
// nearly dead battery-powered device picks the minimum-energy cut.
func TestReplannerLowBatteryPrefersEnergy(t *testing.T) {
	m4, _ := device.ProfileByName("m4-wearable")
	gw, _ := device.ProfileByName("edge-gateway")
	rng := tensor.NewRNG(2)
	// A model whose boundary activation shrinks with depth: later cuts
	// are radio-cheaper but compute-pricier.
	net := nn.NewNetwork([]int{128},
		nn.NewDense(128, 64, rng), nn.NewReLU(),
		nn.NewDense(64, 8, rng), nn.NewReLU(),
		nn.NewDense(8, 4, rng))
	costs, err := net.Summary()
	if err != nil {
		t.Fatal(err)
	}
	start := Conditions{BandwidthBps: 20e6, Battery: 1}
	r, err := NewReplanner(ReplanConfig{}, m4, gw, costs, 32, 128*4, nil, start)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := r.Observe(Conditions{BandwidthBps: 20e6, Battery: 0.05})
	// The minimum-energy cut for this shape: verify against brute force.
	wantCut, wantE := -1, math.MaxFloat64
	for cut := 0; cut <= len(costs); cut++ {
		if e := r.deviceEnergy(cut); e < wantE {
			wantCut, wantE = cut, e
		}
	}
	if p.Cut != wantCut {
		t.Fatalf("low-battery cut %d, want min-energy cut %d", p.Cut, wantCut)
	}
}
