package offload

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// qabEncode is a test helper returning the encoded bytes.
func qabEncode(t *testing.T, codes []int8, scales []float32, rows, cols int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := encodeQAB(&buf, codes, scales, rows, cols); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestQABRoundTrip pins the wire codec: every code and every scale bit —
// including NaN, -0 and infinite scales, which a buggy transcoder would
// normalize — survives encode/decode, and the magic discriminates.
func TestQABRoundTrip(t *testing.T) {
	codes := []int8{-128, -1, 0, 1, 127, 5}
	scales := []float32{
		0.5,
		float32(math.NaN()),
		float32(math.Copysign(0, -1)),
	}
	enc := qabEncode(t, codes, scales, 3, 2)
	if !isQAB(enc) {
		t.Fatal("encoded payload does not carry the QAB magic")
	}
	gotCodes, gotScales, rows, cols, err := decodeQAB(enc)
	if err != nil {
		t.Fatal(err)
	}
	if rows != 3 || cols != 2 {
		t.Fatalf("decoded %dx%d, want 3x2", rows, cols)
	}
	for i, c := range gotCodes {
		if c != codes[i] {
			t.Fatalf("code %d: %d != %d", i, c, codes[i])
		}
	}
	for i, s := range gotScales {
		if math.Float32bits(s) != math.Float32bits(scales[i]) {
			t.Fatalf("scale %d: bits %08x != %08x", i, math.Float32bits(s), math.Float32bits(scales[i]))
		}
	}
}

// TestQABDecodeRejects is the strictness table: every malformed payload —
// wrong magic, truncated header, zero or absurd dimensions, short or
// trailing bytes — rejects instead of decoding garbage into the integer
// resume path.
func TestQABDecodeRejects(t *testing.T) {
	valid := qabEncode(t, []int8{1, 2, 3, 4}, []float32{1, 2}, 2, 2)
	header := func(rows, cols uint32, payload int) []byte {
		b := append([]byte(nil), qabMagic[:]...)
		b = binary.LittleEndian.AppendUint32(b, rows)
		b = binary.LittleEndian.AppendUint32(b, cols)
		return append(b, make([]byte, payload)...)
	}
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte("QAB2"), valid[4:]...)},
		{"magic only", valid[:4]},
		{"truncated header", valid[:10]},
		{"zero rows", header(0, 2, 10)},
		{"zero cols", header(2, 0, 10)},
		{"absurd rows", header(1<<21, 1, 64)},
		{"absurd cols", header(1, 1<<25, 64)},
		{"short payload", valid[:len(valid)-1]},
		{"trailing byte", append(append([]byte(nil), valid...), 0)},
	}
	for _, tc := range cases {
		if _, _, _, _, err := decodeQAB(tc.payload); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
	// The valid payload still decodes (the table's control row).
	if _, _, _, _, err := decodeQAB(valid); err != nil {
		t.Fatalf("control payload rejected: %v", err)
	}
}

// TestQABEncodeRejects pins the encoder's preconditions: dimensions must
// be positive and the code/scale slices must match them exactly.
func TestQABEncodeRejects(t *testing.T) {
	var buf bytes.Buffer
	cases := []struct {
		name       string
		codes      []int8
		scales     []float32
		rows, cols int
	}{
		{"zero rows", nil, nil, 0, 4},
		{"negative cols", nil, nil, 1, -1},
		{"codes short", []int8{1}, []float32{1}, 1, 2},
		{"scales long", []int8{1, 2}, []float32{1, 2}, 1, 2},
	}
	for _, tc := range cases {
		buf.Reset()
		if err := encodeQAB(&buf, tc.codes, tc.scales, tc.rows, tc.cols); err == nil {
			t.Errorf("%s: encoded without error", tc.name)
		}
	}
}
