package offload

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// Quantized activation boundary codec ("QAB1"). An integer-kernel split
// ships the boundary as the int8 activation codes plus one dynamic scale
// per example — exactly the values the device's own dense stage would have
// produced locally, so the cloud resumes bit-identically while the wire
// carries ~1 byte per activation instead of 4.
//
// Layout (little-endian):
//
//	magic   "QAB1"       4 bytes
//	rows    uint32
//	cols    uint32
//	scales  float32[rows]
//	codes   int8[rows*cols]
//
// Decoding is strict: a short buffer, trailing bytes, a zero dimension or
// an implausible size all reject.

var qabMagic = [4]byte{'Q', 'A', 'B', '1'}

// isQAB reports whether a payload carries the quantized boundary magic —
// how Submit tells the two wire formats apart before touching a decoder.
func isQAB(payload []byte) bool {
	return len(payload) >= 4 && bytes.Equal(payload[:4], qabMagic[:])
}

// encodeQAB appends the QAB1 encoding of (codes, scales) to buf.
func encodeQAB(buf *bytes.Buffer, codes []int8, scales []float32, rows, cols int) error {
	if rows <= 0 || cols <= 0 {
		return fmt.Errorf("offload: qab encode: dimensions %dx%d", rows, cols)
	}
	if len(codes) != rows*cols || len(scales) != rows {
		return fmt.Errorf("offload: qab encode: %d codes and %d scales for %dx%d", len(codes), len(scales), rows, cols)
	}
	buf.Write(qabMagic[:])
	var u [4]byte
	binary.LittleEndian.PutUint32(u[:], uint32(rows))
	buf.Write(u[:])
	binary.LittleEndian.PutUint32(u[:], uint32(cols))
	buf.Write(u[:])
	for _, s := range scales {
		binary.LittleEndian.PutUint32(u[:], math.Float32bits(s))
		buf.Write(u[:])
	}
	for _, c := range codes {
		buf.WriteByte(byte(c))
	}
	return nil
}

// decodeQAB parses a QAB1 payload, rejecting truncation and trailing bytes.
func decodeQAB(payload []byte) (codes []int8, scales []float32, rows, cols int, err error) {
	if !isQAB(payload) {
		return nil, nil, 0, 0, fmt.Errorf("offload: qab decode: bad magic")
	}
	rest := payload[4:]
	if len(rest) < 8 {
		return nil, nil, 0, 0, fmt.Errorf("offload: qab decode: truncated header")
	}
	r := binary.LittleEndian.Uint32(rest[0:4])
	c := binary.LittleEndian.Uint32(rest[4:8])
	rest = rest[8:]
	if r == 0 || c == 0 || r > 1<<20 || c > 1<<24 {
		return nil, nil, 0, 0, fmt.Errorf("offload: qab decode: implausible dimensions %dx%d", r, c)
	}
	rows, cols = int(r), int(c)
	want := 4*rows + rows*cols
	if len(rest) != want {
		return nil, nil, 0, 0, fmt.Errorf("offload: qab decode: %d payload bytes, want %d for %dx%d", len(rest), want, rows, cols)
	}
	scales = make([]float32, rows)
	for i := range scales {
		scales[i] = math.Float32frombits(binary.LittleEndian.Uint32(rest[4*i:]))
	}
	rest = rest[4*rows:]
	codes = make([]int8, rows*cols)
	for i := range codes {
		codes[i] = int8(rest[i])
	}
	return codes, scales, rows, cols, nil
}
