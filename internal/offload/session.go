package offload

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"tinymlops/internal/device"
	"tinymlops/internal/engine"
	"tinymlops/internal/market"
	"tinymlops/internal/metering"
	"tinymlops/internal/nn"
	"tinymlops/internal/procvm"
	"tinymlops/internal/quant"
	"tinymlops/internal/tensor"
)

// ErrMetered is wrapped by Infer when the prepaid meter denies the query.
// The denial happens before any compute: no prefix runs, no byte moves.
var ErrMetered = errors.New("offload: query denied by meter")

// Mode records how one offloaded query actually executed.
type Mode int

// Execution modes.
const (
	// ModeLocal means the plan kept every layer on-device (offline, or
	// the split simply isn't worth it).
	ModeLocal Mode = iota
	// ModeSplit means the prefix ran on-device and the suffix in the
	// cloud — the partitioned path the plane exists for.
	ModeSplit
	// ModeFallback means a split was attempted but the network or the
	// cloud failed it, and the device finished the suffix itself. The
	// answer is still bit-identical — only the cost accounting differs.
	ModeFallback
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeLocal:
		return "local"
	case ModeSplit:
		return "split"
	case ModeFallback:
		return "fallback"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Result is one offloaded query's outcome and cost decomposition.
type Result struct {
	// Label is the argmax of the output row.
	Label int
	// Logits is the model output, bit-identical to the monolithic
	// forward pass regardless of Mode.
	Logits []float32
	// Latency is the modeled end-to-end time: device prefix + uplink +
	// retry backoff + cloud compute + downlink (terms zero when unused).
	Latency time.Duration
	// Mode is how the query executed; Cut is the plan it executed under.
	Mode Mode
	Cut  int
	// ActivationBytes / ResponseBytes are the serialized boundary sizes
	// that crossed (or would have crossed) the network.
	ActivationBytes int64
	ResponseBytes   int64
	// DeviceEnergyJ is the device-side energy actually charged: prefix
	// (and fallback suffix) compute plus radio transmit.
	DeviceEnergyJ float64
	// CloudBatch is the coalesced batch size the suffix rode in (0 when
	// the suffix never reached the cloud).
	CloudBatch int
	// Replanned reports that this query's condition snapshot moved the
	// cut before executing.
	Replanned bool
}

// Stats aggregates a session's execution counters.
type Stats struct {
	Queries   int64
	Denied    int64
	Split     int64
	Local     int64
	Fallbacks int64
	// Replans counts cut moves; ShedRetries counts extra admission
	// attempts after an ErrShed.
	Replans     int64
	ShedRetries int64
	// ActivationBytes sums the uplinked boundary activations.
	ActivationBytes int64
}

// SessionConfig binds a split-execution session to one device and model.
type SessionConfig struct {
	// Tenant scopes cloud fair scheduling; use the device ID.
	Tenant string
	// VersionID names the registered model version the cloud serves.
	VersionID string
	// Device is the edge node paying for prefix compute and radio.
	Device *device.Device
	// Model is the on-device network. It must be private to this session
	// (prefix execution caches layer state, so two sessions cannot share
	// one copy), and bit-exactness requires its weights be identical to
	// the cloud's registered artifact — deployments satisfy both, since
	// every device owns its decrypted copy of the registry bytes. Nil
	// exactly when Module is set.
	Model *nn.Network
	// Scheme, when an integer scheme, runs both halves of the split on the
	// integer kernels: the session lowers Model onto a QModel, plans cuts
	// snapped to dense-stage boundaries, and ships boundaries as int8
	// codes plus a per-example scale (the QAB1 codec). The cloud entry
	// must have been registered with RegisterQuant at the same scheme.
	Scheme quant.Scheme
	// Module, when non-nil, replaces Model with a compiled procvm
	// artifact: the only split is all-local versus whole-module execution
	// on the cloud's enclave (cut 0), planned over ModuleMACs.
	Module *procvm.Module
	// ModuleMACs is the module's per-query work for planning (with Module).
	ModuleMACs int64
	// InFeatures is the module's input width (required with Module; a
	// module does not declare its own input geometry).
	InFeatures int
	// Bits is the deployed weight precision for latency modeling (≤0 = 32).
	Bits int
	// Meter, when non-nil, gates every query (pay-per-query survives the
	// split). Leave nil when an upstream gate already charges, and call
	// Exec instead of Infer.
	Meter *metering.Meter
	// Cloud is the suffix-serving tier.
	Cloud *CloudTier
	// Retry bounds re-admission after cloud shedding (default 3 attempts).
	Retry engine.RetryPolicy
	// Replan tunes the live re-planning loop.
	Replan ReplanConfig
	// Plan, when non-nil, is the initial split; otherwise the session
	// plans from the device's conditions at construction time.
	Plan *market.SplitPlan
}

// Session executes split inference for one device: it plans (and re-plans)
// the cut, runs the prefix on the device cost model, ships the boundary
// activation through the tensor codec, and falls back to full on-device
// execution whenever the network or the cloud fails the split. All methods
// are safe for concurrent use; queries serialize per session.
type Session struct {
	cfg      SessionConfig
	costs    []nn.LayerCost
	features int
	inShape  []int
	// Integer-native execution state (nil on float and module sessions):
	// the QModel lowered from cfg.Model plus the prefix scratch and the
	// boundary-quantization workspaces.
	qm      *quant.QModel
	qs      *quant.QScratch
	qcodes  []int8
	qscales []float32
	// rt executes cfg.Module locally (local plans and fallbacks).
	rt *procvm.Runtime

	mu     sync.Mutex
	replan *Replanner
	tick   uint64
	stats  Stats
	// arena holds the session's boundary-codec scratch (the activation
	// encode buffer): queries serialize under s.mu, so one worker arena
	// per session keeps the codec allocation-free in the steady state.
	arena *engine.Arena
}

// NewSession validates the configuration and plans the initial split from
// the device's current conditions (unless cfg.Plan pins one).
func NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.Device == nil || cfg.Cloud == nil {
		return nil, fmt.Errorf("offload: session needs a device and a cloud tier")
	}
	if (cfg.Model == nil) == (cfg.Module == nil) {
		return nil, fmt.Errorf("offload: session needs exactly one of a model and a compiled module")
	}
	if cfg.Tenant == "" {
		cfg.Tenant = cfg.Device.ID
	}
	if cfg.Bits <= 0 {
		cfg.Bits = 32
	}
	if cfg.Retry.Attempts < 1 {
		cfg.Retry.Attempts = 3
	}
	s := &Session{cfg: cfg, arena: engine.NewArena()}
	if cfg.Module != nil {
		if cfg.InFeatures <= 0 {
			return nil, fmt.Errorf("offload: module session needs InFeatures")
		}
		s.costs = []nn.LayerCost{{Kind: "module", Info: nn.LayerInfo{MACs: cfg.ModuleMACs}}}
		s.inShape = []int{cfg.InFeatures}
		s.features = cfg.InFeatures
		rt := procvm.NewRuntime(cfg.Module.Caps)
		if cfg.Module.GasLimit > rt.MaxGas {
			rt.MaxGas = cfg.Module.GasLimit
		}
		s.rt = rt
	} else {
		costs, err := cfg.Model.Summary()
		if err != nil {
			return nil, fmt.Errorf("offload: %w", err)
		}
		if len(costs) == 0 {
			return nil, fmt.Errorf("offload: model has no layers")
		}
		s.costs, s.inShape = costs, cfg.Model.InputShape
		s.features = 1
		for _, d := range cfg.Model.InputShape {
			s.features *= d
		}
		if cfg.Scheme != quant.Float32 {
			qm, err := quant.NewQModel(cfg.Model, cfg.Scheme)
			if err != nil {
				return nil, fmt.Errorf("offload: %w", err)
			}
			s.qm, s.qs = qm, quant.NewQScratch()
		}
	}
	rp, err := NewReplanner(cfg.Replan, cfg.Device.Caps, cfg.Cloud.Caps(), s.costs,
		cfg.Bits, 4*int64(s.features), cfg.Plan, s.conditions())
	if err != nil {
		return nil, err
	}
	s.replan = rp
	return s, nil
}

// conditions snapshots the live telemetry the replanner watches.
func (s *Session) conditions() Conditions {
	return Conditions{
		BandwidthBps: s.cfg.Device.Net().Bandwidth(),
		Battery:      s.cfg.Device.BatteryLevel(),
		QueueDepth:   s.cfg.Cloud.QueueDepth(),
	}
}

// Plan returns the split currently in force.
func (s *Session) Plan() market.SplitPlan {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replan.Current()
}

// Stats returns a snapshot of the session counters.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Infer runs one metered query: the prepaid meter charges before any
// compute (an exhausted voucher denies the query with zero device cost),
// then the query executes under the live plan.
func (s *Session) Infer(x []float32) (Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	if s.cfg.Meter == nil {
		return Result{}, fmt.Errorf("offload: session has no meter; use Exec with an upstream gate")
	}
	if err := s.cfg.Meter.Charge(s.tick); err != nil {
		s.cfg.Device.DenyQuery()
		s.stats.Denied++
		return Result{}, fmt.Errorf("%w: %w", ErrMetered, err)
	}
	return s.exec(x)
}

// Exec runs one unmetered query for callers whose own gate already
// charged (the platform's deployment meter, for instance).
func (s *Session) Exec(x []float32) (Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	return s.exec(x)
}

// exec executes one query under the live plan. Caller holds s.mu.
func (s *Session) exec(x []float32) (Result, error) {
	if len(x) != s.features {
		return Result{}, fmt.Errorf("offload: input has %d features, model wants %d", len(x), s.features)
	}
	plan, moved := s.replan.Observe(s.conditions())
	if moved {
		s.stats.Replans++
	}
	// The planner works on the float layer graph; an integer-native
	// session snaps its cut onto the nearest dense-stage boundary the
	// quantized codec can cross (falling back to all-local when none is).
	cut := plan.Cut
	if s.qm != nil {
		cut = s.qm.SnapCut(cut)
	}
	res := Result{Cut: cut, Replanned: moved}
	in := tensor.FromSlice(append([]float32(nil), x...), append([]int{1}, s.inShape...)...)
	n := len(s.costs)
	dev := s.cfg.Device

	// Full-edge plan: one on-device inference, no network at all.
	if cut == n {
		lat, err := dev.RunInference(s.macs(0, n), s.cfg.Bits)
		if err != nil {
			return Result{}, fmt.Errorf("offload: device: %w", err)
		}
		out, err := s.forwardPrefix(in, n)
		if err != nil {
			return Result{}, err
		}
		res.Mode, res.Latency = ModeLocal, lat
		res.DeviceEnergyJ = dev.Caps.InferenceEnergy(s.macs(0, n))
		s.finish(&res, out)
		s.stats.Queries++
		s.stats.Local++
		return res, nil
	}

	// Split path: prefix on-device (cut 0 ships the raw input and runs
	// nothing locally), activation through the codec, suffix in the cloud.
	var prefixLat time.Duration
	prefixMACs := s.macs(0, cut)
	if prefixMACs > 0 {
		var err error
		if prefixLat, err = dev.RunInference(prefixMACs, s.cfg.Bits); err != nil {
			return Result{}, fmt.Errorf("offload: device: %w", err)
		}
		res.DeviceEnergyJ += dev.Caps.InferenceEnergy(prefixMACs)
	}
	act, err := s.forwardPrefix(in, cut)
	if err != nil {
		return Result{}, err
	}
	// The encode buffer comes from the session's arena: Cloud.Submit is
	// synchronous and copies what it keeps, so the payload's lifetime ends
	// at return and the buffer's storage is reused by the next query.
	buf := s.arena.Buffer(0)
	if err := s.encodeBoundary(act, buf); err != nil {
		return Result{}, fmt.Errorf("offload: encode activation: %w", err)
	}
	payload := buf.Bytes()
	res.ActivationBytes = int64(len(payload))

	upDur, err := dev.Upload(int64(len(payload)))
	if err != nil {
		// Uplink drop mid-activation: the radio refused (offline, battery)
		// before spending, so fall back to finishing on-device.
		return s.fallback(res, act, cut, prefixLat)
	}
	res.DeviceEnergyJ += float64(len(payload)) * dev.Caps.EnergyPerTxByteJoule
	s.stats.ActivationBytes += int64(len(payload))

	var resp Response
	rr, err := engine.Retry(s.cfg.Retry,
		func(e error) bool { return errors.Is(e, ErrShed) },
		func(int) error {
			r, serr := s.cfg.Cloud.Submit(s.cfg.Tenant, s.cfg.VersionID, cut, payload)
			if serr == nil {
				resp = r
			}
			return serr
		})
	s.stats.ShedRetries += int64(rr.Attempts - 1)
	if err != nil {
		// The cloud shed us past the retry budget (or is closed): the
		// uplink bytes are spent, but the query must still answer.
		return s.fallback(res, act, cut, prefixLat+upDur+rr.Backoff)
	}

	dnDur, err := dev.Download(int64(len(resp.Payload)))
	if err != nil {
		// The answer was computed but the downlink is gone; recompute the
		// suffix locally rather than losing the query.
		return s.fallback(res, act, cut, prefixLat+upDur+rr.Backoff+resp.Latency)
	}
	var out tensor.Tensor
	if _, err := out.ReadFrom(bytes.NewReader(resp.Payload)); err != nil {
		return Result{}, fmt.Errorf("offload: decode result: %w", err)
	}
	res.Mode = ModeSplit
	res.Latency = prefixLat + upDur + rr.Backoff + resp.Latency + dnDur
	res.ResponseBytes = int64(len(resp.Payload))
	res.CloudBatch = resp.BatchSize
	s.finish(&res, &out)
	s.stats.Queries++
	s.stats.Split++
	return res, nil
}

// fallback finishes a failed split on-device: the suffix runs locally on
// the already-computed boundary activation, preserving bit-exactness.
func (s *Session) fallback(res Result, act *tensor.Tensor, cut int, spent time.Duration) (Result, error) {
	dev := s.cfg.Device
	sufMACs := s.macs(cut, len(s.costs))
	lat, err := dev.RunInference(sufMACs, s.cfg.Bits)
	if err != nil {
		return Result{}, fmt.Errorf("offload: fallback: %w", err)
	}
	out, err := s.forwardSuffix(act, cut)
	if err != nil {
		return Result{}, err
	}
	res.Mode = ModeFallback
	res.Latency = spent + lat
	res.DeviceEnergyJ += dev.Caps.InferenceEnergy(sufMACs)
	s.finish(&res, out)
	s.stats.Queries++
	s.stats.Fallbacks++
	return res, nil
}

// forwardPrefix runs layers [0, cut) on the session's executor: the float
// network, the integer kernels, or (for a module session, where the only
// non-trivial cut is 0) the identity — cut == len(costs) is the full local
// pass in every mode.
func (s *Session) forwardPrefix(in *tensor.Tensor, cut int) (*tensor.Tensor, error) {
	switch {
	case s.cfg.Module != nil:
		if cut == 0 {
			return in, nil
		}
		return s.runModule(in)
	case s.qm != nil:
		return s.qm.ForwardRange(in, s.qs, 0, cut), nil
	default:
		return s.cfg.Model.ForwardPrefix(in, cut)
	}
}

// forwardSuffix finishes execution locally from the boundary at cut — the
// fallback half of forwardPrefix. An integer session resumes the integer
// kernels at stage cut, which quantizes the boundary exactly as the wire
// codec did, so fallback answers stay bit-identical to split answers.
func (s *Session) forwardSuffix(act *tensor.Tensor, cut int) (*tensor.Tensor, error) {
	switch {
	case s.cfg.Module != nil:
		return s.runModule(act)
	case s.qm != nil:
		return s.qm.ForwardRange(act, s.qs, cut, len(s.costs)), nil
	default:
		return s.cfg.Model.ForwardSuffix(act, cut)
	}
}

// runModule executes the session's compiled module on one input row.
func (s *Session) runModule(in *tensor.Tensor) (*tensor.Tensor, error) {
	r, err := s.rt.Run(s.cfg.Module, in.Data)
	if err != nil {
		return nil, fmt.Errorf("offload: module: %w", err)
	}
	if !r.Output.IsVec {
		return nil, fmt.Errorf("offload: module produced a scalar, want a vector")
	}
	return tensor.FromSlice(append([]float32(nil), r.Output.Vec...), 1, len(r.Output.Vec)), nil
}

// encodeBoundary serializes the boundary activation for the wire: float
// sessions use the tensor codec; integer sessions quantize each example
// with its own dynamic scale — producing the identical codes stage cut
// would compute locally — and pack them as a QAB1 payload.
func (s *Session) encodeBoundary(act *tensor.Tensor, buf *bytes.Buffer) error {
	if s.qm == nil {
		_, err := act.WriteTo(buf)
		return err
	}
	rows := act.Dim(0)
	cols := act.Size() / rows
	if cap(s.qcodes) < rows*cols {
		s.qcodes = make([]int8, rows*cols)
	}
	if cap(s.qscales) < rows {
		s.qscales = make([]float32, rows)
	}
	codes, scales := s.qcodes[:rows*cols], s.qscales[:rows]
	quant.QuantizeActivationsRows(act, codes, scales)
	return encodeQAB(buf, codes, scales, rows, cols)
}

// finish fills the label and logits from the output row.
func (s *Session) finish(res *Result, out *tensor.Tensor) {
	res.Logits = append([]float32(nil), out.Data...)
	res.Label = out.ArgMaxRows()[0]
}

// macs sums per-layer MACs over [lo,hi).
func (s *Session) macs(lo, hi int) int64 {
	var total int64
	for _, c := range s.costs[lo:hi] {
		total += c.Info.MACs
	}
	return total
}
