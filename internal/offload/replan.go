package offload

import (
	"fmt"
	"time"

	"tinymlops/internal/device"
	"tinymlops/internal/market"
	"tinymlops/internal/nn"
)

// Conditions is the live telemetry a replanner watches: the device's
// current uplink, its battery level, and the cloud tier's congestion.
type Conditions struct {
	// BandwidthBps is the device's uplink in bytes/second (0 = offline).
	BandwidthBps float64
	// Battery is the device battery fraction in [0,1].
	Battery float64
	// QueueDepth is the cloud admission queue's current depth.
	QueueDepth int
}

// ReplanConfig tunes when a session re-runs BestSplit and how reluctant it
// is to move the cut. The hysteresis is two-stage: conditions must drift
// past a trigger threshold before the planner even re-evaluates, and a new
// cut is adopted only when its predicted total beats the current cut's
// total (under the new conditions) by MinGain — so small oscillations in
// bandwidth or battery never make the cut flap.
type ReplanConfig struct {
	// Cloud models the cloud-side hardware (defaults to the tier's caps).
	Cloud device.Capabilities
	// RTT is the fixed round-trip added to any plan touching the cloud.
	RTT time.Duration
	// BandwidthFactor triggers re-evaluation when bandwidth moves by at
	// least this factor (either direction) since the last plan, or crosses
	// zero (default 2).
	BandwidthFactor float64
	// BatteryDelta triggers re-evaluation when the battery fraction moves
	// by at least this much since the last plan (default 0.25).
	BatteryDelta float64
	// QueueHigh, when positive, triggers re-evaluation when the cloud
	// queue depth crosses this level in either direction.
	QueueHigh int
	// QueuePenalty models congestion in the re-planned RTT: each queued
	// request adds this much (default 0 = congestion-blind).
	QueuePenalty time.Duration
	// MinGain is the fractional latency improvement a new cut must show
	// before it replaces the current one (default 0.15).
	MinGain float64
	// LowBattery switches the objective from latency to device energy
	// when a battery-powered device falls below this fraction (default
	// 0.1): a dying device picks the cut that spends the fewest joules,
	// not the fastest answer.
	LowBattery float64
	// Disabled freezes the initial plan for the session's lifetime.
	Disabled bool
}

func (c ReplanConfig) withDefaults(cloud device.Capabilities) ReplanConfig {
	if c.Cloud.Name == "" {
		c.Cloud = cloud
	}
	if c.BandwidthFactor <= 1 {
		c.BandwidthFactor = 2
	}
	if c.BatteryDelta <= 0 {
		c.BatteryDelta = 0.25
	}
	if c.MinGain <= 0 {
		c.MinGain = 0.15
	}
	if c.LowBattery == 0 {
		c.LowBattery = 0.1
	}
	return c
}

// Replanner owns a session's live SplitPlan: it re-runs market.BestSplit
// when observed conditions drift past the configured thresholds and moves
// the cut only when the predicted gain clears the hysteresis bar. Not safe
// for concurrent use — the owning session serializes access.
type Replanner struct {
	cfg        ReplanConfig
	dev        device.Capabilities
	costs      []nn.LayerCost
	bits       int
	inputBytes int64

	plan    market.SplitPlan
	planned Conditions
	replans int64
	moves   int64
}

// NewReplanner seeds a replanner with the plan for the initial conditions,
// or with the explicit initial plan when non-nil.
func NewReplanner(cfg ReplanConfig, dev, cloud device.Capabilities, costs []nn.LayerCost, bits int, inputBytes int64, initial *market.SplitPlan, cond Conditions) (*Replanner, error) {
	r := &Replanner{
		cfg: cfg.withDefaults(cloud), dev: dev, costs: costs,
		bits: bits, inputBytes: inputBytes, planned: cond,
	}
	if initial != nil {
		if initial.Cut < 0 || initial.Cut > len(costs) {
			return nil, fmt.Errorf("offload: initial cut %d out of range [0,%d]", initial.Cut, len(costs))
		}
		r.plan = *initial
		return r, nil
	}
	best, _, err := market.BestSplit(costs, dev, r.cfg.Cloud, bits, cond.BandwidthBps, r.cfg.RTT, inputBytes)
	if err != nil {
		return nil, err
	}
	r.plan = best
	return r, nil
}

// Current returns the plan in force.
func (r *Replanner) Current() market.SplitPlan { return r.plan }

// Replans returns how many re-evaluations ran; Moves how many actually
// changed the cut — the gap between them is the hysteresis working.
func (r *Replanner) Replans() int64 { return r.replans }

// Moves returns how many re-evaluations moved the cut.
func (r *Replanner) Moves() int64 { return r.moves }

// Observe feeds the replanner one snapshot of live conditions and returns
// the plan in force plus whether this observation moved the cut.
func (r *Replanner) Observe(cond Conditions) (market.SplitPlan, bool) {
	if r.cfg.Disabled || !r.drifted(cond) {
		return r.plan, false
	}
	r.replans++
	r.planned = cond // anchor hysteresis to what we just evaluated
	rtt := r.cfg.RTT + time.Duration(cond.QueueDepth)*r.cfg.QueuePenalty
	best, curve, err := market.BestSplit(r.costs, r.dev, r.cfg.Cloud, r.bits, cond.BandwidthBps, rtt, r.inputBytes)
	if err != nil {
		return r.plan, false
	}
	oldCut := r.plan.Cut
	// Offline leaves exactly one valid plan: everything on-device.
	if cond.BandwidthBps == 0 {
		r.plan = best
		if r.plan.Cut != oldCut {
			r.moves++
		}
		return r.plan, r.plan.Cut != oldCut
	}
	current := curve[oldCut] // same cut, re-costed under the new conditions
	candidate := best
	if r.lowBattery(cond) {
		candidate = r.minEnergyPlan(curve)
		// Energy hysteresis: move only for a MinGain energy saving.
		if r.deviceEnergy(candidate.Cut) > (1-r.cfg.MinGain)*r.deviceEnergy(oldCut) {
			candidate = current
		}
	} else if float64(candidate.Total) > (1-r.cfg.MinGain)*float64(current.Total) {
		// The best cut doesn't beat the current one by enough: keep it.
		candidate = current
	}
	r.plan = candidate
	if r.plan.Cut != oldCut {
		r.moves++
		return r.plan, true
	}
	return r.plan, false
}

// drifted reports whether conditions moved past a trigger threshold since
// the last (re)plan.
func (r *Replanner) drifted(c Conditions) bool {
	was, now := r.planned.BandwidthBps, c.BandwidthBps
	switch {
	case (was == 0) != (now == 0):
		return true
	case was > 0 && now > 0:
		ratio := now / was
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if ratio >= r.cfg.BandwidthFactor {
			return true
		}
	}
	if diff := c.Battery - r.planned.Battery; diff >= r.cfg.BatteryDelta || -diff >= r.cfg.BatteryDelta {
		return true
	}
	if r.cfg.QueueHigh > 0 && (c.QueueDepth >= r.cfg.QueueHigh) != (r.planned.QueueDepth >= r.cfg.QueueHigh) {
		return true
	}
	return false
}

func (r *Replanner) lowBattery(c Conditions) bool {
	return r.dev.BatteryJoule > 0 && r.cfg.LowBattery > 0 && c.Battery < r.cfg.LowBattery
}

// txBytes is the planner's approximation of what crosses the uplink at a
// cut — the same figure BestSplit prices.
func (r *Replanner) txBytes(cut int) int64 {
	switch {
	case cut == len(r.costs):
		return 0
	case cut == 0:
		return r.inputBytes
	default:
		return 4 * r.costs[cut-1].Info.ActivationFloats
	}
}

// deviceEnergy is the modeled device-side joules of one query at a cut:
// prefix compute plus radio transmit.
func (r *Replanner) deviceEnergy(cut int) float64 {
	var macs int64
	for _, c := range r.costs[:cut] {
		macs += c.Info.MACs
	}
	return r.dev.InferenceEnergy(macs) + float64(r.txBytes(cut))*r.dev.EnergyPerTxByteJoule
}

// minEnergyPlan picks the curve entry minimizing device-side energy,
// breaking ties toward the lower latency.
func (r *Replanner) minEnergyPlan(curve []market.SplitPlan) market.SplitPlan {
	best := curve[0]
	bestE := r.deviceEnergy(best.Cut)
	for _, p := range curve[1:] {
		e := r.deviceEnergy(p.Cut)
		if e < bestE || (e == bestE && p.Total < best.Total) {
			best, bestE = p, e
		}
	}
	return best
}
