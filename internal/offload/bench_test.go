package offload

import (
	"fmt"
	"sync"
	"testing"

	"tinymlops/internal/device"
	"tinymlops/internal/enclave"
	"tinymlops/internal/market"
	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

// benchModel is a deeper MLP so the split benchmarks measure real suffix
// work, not just queue overhead.
func benchModel(rng *tensor.RNG) *nn.Network {
	return nn.NewNetwork([]int{32},
		nn.NewDense(32, 128, rng), nn.NewReLU(),
		nn.NewDense(128, 128, rng), nn.NewReLU(),
		nn.NewDense(128, 64, rng), nn.NewTanh(),
		nn.NewDense(64, 8, rng))
}

func benchSession(b *testing.B, cut int, cloud *CloudTier, model *nn.Network, id string) *Session {
	b.Helper()
	caps, _ := device.ProfileByName("phone")
	dev := device.NewDevice(id, caps, tensor.NewRNG(1))
	dev.SetNet(device.WiFi)
	plan := market.SplitPlan{Cut: cut}
	s, err := NewSession(SessionConfig{
		Tenant: id, VersionID: "bench", Device: dev, Model: model.Clone(),
		Cloud: cloud, Plan: &plan, Replan: ReplanConfig{Disabled: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchInput() []float32 {
	rng := tensor.NewRNG(4)
	x := make([]float32, 32)
	for i := range x {
		x[i] = rng.NormFloat32()
	}
	return x
}

// BenchmarkOffloadMonolithic is the baseline: the whole model on-device
// through the session path (cut = n, no network).
func BenchmarkOffloadMonolithic(b *testing.B) {
	rng := tensor.NewRNG(2)
	model := benchModel(rng)
	cloud := NewCloud(CloudConfig{})
	if err := cloud.Register("bench", model, 32); err != nil {
		b.Fatal(err)
	}
	cloud.Start()
	defer cloud.Close()
	s := benchSession(b, len(model.Layers()), cloud, model, "mono")
	x := benchInput()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Exec(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOffloadSplit measures one device's split round trip: prefix
// on-device, activation through the codec, suffix served by the cloud
// tier (batch size 1 — no concurrency to coalesce).
func BenchmarkOffloadSplit(b *testing.B) {
	rng := tensor.NewRNG(2)
	model := benchModel(rng)
	cloud := NewCloud(CloudConfig{})
	if err := cloud.Register("bench", model, 32); err != nil {
		b.Fatal(err)
	}
	cloud.Start()
	defer cloud.Close()
	s := benchSession(b, 2, cloud, model, "split")
	x := benchInput()
	b.ReportAllocs()
	b.ResetTimer()
	var act int64
	for i := 0; i < b.N; i++ {
		res, err := s.Exec(x)
		if err != nil {
			b.Fatal(err)
		}
		act = res.ActivationBytes
	}
	b.StopTimer()
	b.ReportMetric(float64(act), "activation-B/op")
}

// BenchmarkOffloadBatchedCloud drives 16 concurrent sessions through one
// cloud tier so the admission queue actually coalesces: the per-query
// cost includes the batching win the tier exists for. The reported
// batch/op metric is the mean coalesced batch size observed.
func BenchmarkOffloadBatchedCloud(b *testing.B) {
	rng := tensor.NewRNG(2)
	model := benchModel(rng)
	cloud := NewCloud(CloudConfig{MaxBatch: 32, QueueCap: 1024, Dispatchers: 2})
	if err := cloud.Register("bench", model, 32); err != nil {
		b.Fatal(err)
	}
	cloud.Start()
	defer cloud.Close()
	const sessions = 16
	ss := make([]*Session, sessions)
	for i := range ss {
		ss[i] = benchSession(b, 2, cloud, model, fmt.Sprintf("batch-%02d", i))
	}
	x := benchInput()
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/sessions + 1
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			for q := 0; q < per; q++ {
				if _, err := s.Exec(x); err != nil {
					b.Error(err)
					return
				}
			}
		}(ss[i])
	}
	wg.Wait()
	b.StopTimer()
	st := cloud.Stats()
	if st.Batches > 0 {
		b.ReportMetric(float64(st.Served)/float64(st.Batches), "batch/op")
	}
}

// BenchmarkOffloadEnclaveSuffix mirrors BenchmarkOffloadSplit with one
// change: the suffix model is registered through RegisterProtected, so
// every cloud-side resume executes the enclave-resident copy and pays the
// protected world's overhead. The delta against OffloadSplit is the price
// of trusted offload.
func BenchmarkOffloadEnclaveSuffix(b *testing.B) {
	rng := tensor.NewRNG(2)
	model := benchModel(rng)
	enc, err := enclave.New("bench-enclave", []byte("bench-manufacturer-root-key-00001"), 1.2)
	if err != nil {
		b.Fatal(err)
	}
	esess := enclave.NewSession(enc)
	blob, err := model.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	sealed, err := enc.Seal(blob)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := esess.LoadSealedNetwork("bench-art", sealed); err != nil {
		b.Fatal(err)
	}
	cloud := NewCloud(CloudConfig{})
	if err := cloud.RegisterProtected("bench", esess, "bench-art", 32); err != nil {
		b.Fatal(err)
	}
	cloud.Start()
	defer cloud.Close()
	s := benchSession(b, 2, cloud, model, "enclave")
	x := benchInput()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Exec(x); err != nil {
			b.Fatal(err)
		}
	}
}
