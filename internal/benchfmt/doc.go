// Package benchfmt persists benchmark results as committed JSON snapshots
// and diffs a fresh run against them, so serving performance has a
// trajectory instead of a vibe.
//
// A Report is one benchmark area (serving, offload) run on one
// machine: per-benchmark ns/op, B/op, and allocs/op plus the Go
// version and platform that produced it. WriteFile/ReadFile give the
// snapshots a stable, diff-friendly encoding; Diff compares a current
// run against a committed baseline and returns every regression —
// ns/op beyond the tolerance, any allocation increase at all, and
// benchmarks that appear or disappear without the baseline being
// refreshed. CI runs `tinymlops bench -check` so a slow patch fails
// the build instead of landing silently.
package benchfmt
