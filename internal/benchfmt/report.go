package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
)

// Entry is one benchmark's measured cost: the numbers a regression gate
// cares about, nothing else.
type Entry struct {
	// Name is the benchmark's suite-local name, e.g. "InferBatchInt4".
	Name string `json:"name"`
	// Iters is how many iterations the timing loop settled on.
	Iters int `json:"iters"`
	// NsPerOp is wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is heap bytes allocated per operation.
	BytesPerOp int64 `json:"bytes_per_op"`
	// AllocsPerOp is heap allocations per operation. The gate treats any
	// increase as a regression: the serving hot path is zero-alloc by
	// construction, so a new allocation is a bug, not noise.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Metrics carries the benchmark's custom b.ReportMetric units —
	// e.g. the fed suite's "cloud-uplink-B/op". Lower is better for every
	// tracked metric; the gate applies the ns/op tolerance to each.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is one benchmark area's snapshot, annotated with enough
// provenance to judge whether two reports are comparable.
type Report struct {
	// Area names the suite ("serving", "offload").
	Area string `json:"area"`
	// Go, OS, and Arch record the toolchain and platform that produced
	// the numbers.
	Go   string `json:"go"`
	OS   string `json:"os"`
	Arch string `json:"arch"`
	// Entries is sorted by name for a stable, diffable encoding.
	Entries []Entry `json:"entries"`
}

// NewReport builds a Report for the given area stamped with the current
// toolchain and platform, sorting entries by name.
func NewReport(area string, entries []Entry) *Report {
	sorted := append([]Entry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	return &Report{
		Area: area, Go: runtime.Version(), OS: runtime.GOOS, Arch: runtime.GOARCH,
		Entries: sorted,
	}
}

// FromBenchmarkResult converts a testing.Benchmark result into an Entry.
func FromBenchmarkResult(name string, r testing.BenchmarkResult) Entry {
	e := Entry{
		Name:        name,
		Iters:       r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if len(r.Extra) > 0 {
		e.Metrics = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			e.Metrics[k] = v
		}
	}
	return e
}

// WriteFile writes the report as indented JSON with a trailing newline —
// the committed-snapshot form.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a committed snapshot.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	return &r, nil
}

// Regression is one way the current run is worse than (or incomparable
// to) the baseline.
type Regression struct {
	// Name is the offending benchmark.
	Name string
	// Kind is "ns/op", "allocs/op", "missing" (in the baseline but not
	// the current run), or "unbaselined" (in the current run but not the
	// baseline). The latter two force a deliberate baseline refresh
	// whenever the suite's shape changes.
	Kind string
	// Base and Cur are the compared values (zero when not applicable).
	Base, Cur float64
}

// String renders the regression for gate output.
func (g Regression) String() string {
	switch g.Kind {
	case "ns/op":
		return fmt.Sprintf("%s: ns/op regressed %.0f -> %.0f (%+.1f%%)",
			g.Name, g.Base, g.Cur, 100*(g.Cur-g.Base)/g.Base)
	case "allocs/op":
		return fmt.Sprintf("%s: allocs/op regressed %.0f -> %.0f", g.Name, g.Base, g.Cur)
	case "metric":
		return fmt.Sprintf("%s: regressed %.0f -> %.0f (%+.1f%%)",
			g.Name, g.Base, g.Cur, 100*(g.Cur-g.Base)/g.Base)
	case "missing":
		return fmt.Sprintf("%s: in baseline but not in current run", g.Name)
	default:
		return fmt.Sprintf("%s: not in committed baseline (refresh it with `tinymlops bench`)", g.Name)
	}
}

// Diff compares a current report against a committed baseline. nsTol is
// the fractional ns/op slack (0.25 = fail beyond +25%); allocations get
// 0.1% — zero in practice for hot-path entries (any count under 1000
// allocs/op rounds to no slack, so a zero-alloc baseline stays
// zero-alloc), while fleet-scale entries with hundreds of thousands of
// allocs tolerate the ±few-alloc jitter that pool reuse under GC timing
// introduces. Results are ordered by benchmark name.
func Diff(base, cur *Report, nsTol float64) []Regression {
	baseByName := make(map[string]Entry, len(base.Entries))
	for _, e := range base.Entries {
		baseByName[e.Name] = e
	}
	curByName := make(map[string]Entry, len(cur.Entries))
	for _, e := range cur.Entries {
		curByName[e.Name] = e
	}
	var regs []Regression
	for _, be := range base.Entries {
		ce, ok := curByName[be.Name]
		if !ok {
			regs = append(regs, Regression{Name: be.Name, Kind: "missing"})
			continue
		}
		if be.NsPerOp > 0 && ce.NsPerOp > be.NsPerOp*(1+nsTol) {
			regs = append(regs, Regression{Name: be.Name, Kind: "ns/op", Base: be.NsPerOp, Cur: ce.NsPerOp})
		}
		if ce.AllocsPerOp > be.AllocsPerOp+be.AllocsPerOp/1000 {
			regs = append(regs, Regression{
				Name: be.Name, Kind: "allocs/op",
				Base: float64(be.AllocsPerOp), Cur: float64(ce.AllocsPerOp),
			})
		}
		for key, bv := range be.Metrics {
			cv, ok := ce.Metrics[key]
			if !ok {
				regs = append(regs, Regression{Name: be.Name + "/" + key, Kind: "missing"})
				continue
			}
			if bv > 0 && cv > bv*(1+nsTol) {
				regs = append(regs, Regression{Name: be.Name + "/" + key, Kind: "metric", Base: bv, Cur: cv})
			}
		}
	}
	for _, ce := range cur.Entries {
		if _, ok := baseByName[ce.Name]; !ok {
			regs = append(regs, Regression{Name: ce.Name, Kind: "unbaselined"})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Kind < regs[j].Kind
	})
	return regs
}
