package benchfmt

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func sampleReport(nsScale float64, allocs int64) *Report {
	return NewReport("serving", []Entry{
		{Name: "InferBatchFloat32", Iters: 1000, NsPerOp: 1000 * nsScale, BytesPerOp: 0, AllocsPerOp: allocs},
		{Name: "InferBatchInt8", Iters: 1000, NsPerOp: 800 * nsScale, BytesPerOp: 0, AllocsPerOp: allocs},
	})
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serving.json")
	r := sampleReport(1, 0)
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Area != r.Area || got.Go != r.Go || len(got.Entries) != len(r.Entries) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, r)
	}
	for i := range r.Entries {
		if !reflect.DeepEqual(got.Entries[i], r.Entries[i]) {
			t.Fatalf("entry %d: %+v vs %+v", i, got.Entries[i], r.Entries[i])
		}
	}
}

func TestReportRoundTripPreservesMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_fed.json")
	r := NewReport("fed", []Entry{
		{Name: "HierRound", NsPerOp: 5000, Metrics: map[string]float64{"cloud-uplink-B/op": 1234}},
	})
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entries[0].Metrics["cloud-uplink-B/op"] != 1234 {
		t.Fatalf("metrics lost in round trip: %+v", got.Entries[0])
	}
}

func TestDiffPassesWithinTolerance(t *testing.T) {
	base := sampleReport(1, 0)
	cur := sampleReport(1.2, 0) // +20% < 25% tolerance
	if regs := Diff(base, cur, 0.25); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	faster := sampleReport(0.5, 0) // improvements never trip the gate
	if regs := Diff(base, faster, 0.25); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
}

// TestDiffTripsOnInjectedSlowdown is the gate's own acceptance test: a
// synthetic +50% ns/op slowdown must produce a ns/op regression.
func TestDiffTripsOnInjectedSlowdown(t *testing.T) {
	base := sampleReport(1, 0)
	cur := sampleReport(1.5, 0)
	regs := Diff(base, cur, 0.25)
	if len(regs) != 2 {
		t.Fatalf("want 2 ns/op regressions, got %v", regs)
	}
	for _, g := range regs {
		if g.Kind != "ns/op" {
			t.Fatalf("want ns/op kind, got %+v", g)
		}
		if g.String() == "" {
			t.Fatal("empty regression string")
		}
	}
}

func TestDiffTripsOnAnyAllocIncrease(t *testing.T) {
	base := sampleReport(1, 0)
	cur := sampleReport(1, 1) // same speed, one new alloc
	regs := Diff(base, cur, 0.25)
	if len(regs) != 2 || regs[0].Kind != "allocs/op" {
		t.Fatalf("want allocs/op regressions, got %v", regs)
	}
}

// TestDiffAllocSlackScalesWithBaseline pins the allocs gate's 0.1% slack:
// a zero- or low-alloc hot path keeps its zero-tolerance gate (tested
// above), while a fleet-scale entry with hundreds of thousands of allocs
// tolerates the ±few-alloc jitter GC-timed pool reuse introduces — but
// still trips on anything past the slack.
func TestDiffAllocSlackScalesWithBaseline(t *testing.T) {
	base := sampleReport(1, 200_000)
	if regs := Diff(base, sampleReport(1, 200_003), 0.25); len(regs) != 0 {
		t.Fatalf("within-slack alloc jitter flagged: %v", regs)
	}
	regs := Diff(base, sampleReport(1, 200_201), 0.25)
	if len(regs) != 2 || regs[0].Kind != "allocs/op" {
		t.Fatalf("past-slack alloc growth not flagged: %v", regs)
	}
}

func TestDiffFlagsShapeChanges(t *testing.T) {
	base := sampleReport(1, 0)
	cur := NewReport("serving", []Entry{
		base.Entries[0],
		{Name: "InferBatchInt4", NsPerOp: 700},
	})
	regs := Diff(base, cur, 0.25)
	kinds := map[string]string{}
	for _, g := range regs {
		kinds[g.Name] = g.Kind
	}
	if kinds["InferBatchInt8"] != "missing" || kinds["InferBatchInt4"] != "unbaselined" {
		t.Fatalf("shape changes not flagged: %v", regs)
	}
}

func TestFromBenchmarkResult(t *testing.T) {
	r := testing.BenchmarkResult{N: 100, T: 200 * time.Microsecond, MemAllocs: 300, MemBytes: 4000}
	e := FromBenchmarkResult("X", r)
	if e.Name != "X" || e.Iters != 100 || e.NsPerOp != 2000 || e.AllocsPerOp != 3 || e.BytesPerOp != 40 {
		t.Fatalf("conversion wrong: %+v", e)
	}
	if e.Metrics != nil {
		t.Fatalf("no-Extra result grew metrics: %+v", e.Metrics)
	}
	r.Extra = map[string]float64{"cloud-uplink-B/op": 99.5}
	e = FromBenchmarkResult("X", r)
	if e.Metrics["cloud-uplink-B/op"] != 99.5 {
		t.Fatalf("Extra not carried into Metrics: %+v", e)
	}
}

// TestDiffGatesCustomMetrics pins the metric gate: a tracked unit (the fed
// suite's cloud-uplink bytes/op) regressing beyond the ns/op tolerance
// trips, improvements pass, and a metric vanishing from the current run is
// flagged like a missing benchmark.
func TestDiffGatesCustomMetrics(t *testing.T) {
	withMetric := func(v float64) *Report {
		return NewReport("fed", []Entry{
			{Name: "HierRound", NsPerOp: 1000, Metrics: map[string]float64{"cloud-uplink-B/op": v}},
		})
	}
	base := withMetric(1000)
	if regs := Diff(base, withMetric(1200), 0.25); len(regs) != 0 {
		t.Fatalf("within-tolerance metric flagged: %v", regs)
	}
	if regs := Diff(base, withMetric(500), 0.25); len(regs) != 0 {
		t.Fatalf("improved metric flagged: %v", regs)
	}
	regs := Diff(base, withMetric(2000), 0.25)
	if len(regs) != 1 || regs[0].Kind != "metric" || regs[0].Name != "HierRound/cloud-uplink-B/op" {
		t.Fatalf("doubled metric not gated: %v", regs)
	}
	if regs[0].String() == "" {
		t.Fatal("empty metric regression string")
	}
	bare := NewReport("fed", []Entry{{Name: "HierRound", NsPerOp: 1000}})
	regs = Diff(base, bare, 0.25)
	if len(regs) != 1 || regs[0].Kind != "missing" {
		t.Fatalf("dropped metric not flagged: %v", regs)
	}
}
