package experiments

import (
	"fmt"
	"io"
	"time"

	"tinymlops/internal/enclave"
	"tinymlops/internal/ipprot"
	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
	"tinymlops/internal/verify"
)

// RunE10 measures verifiable-execution overhead: sum-check prover and
// verifier cost versus re-execution across matrix sizes (the SafetyNets
// shape: verifier ≪ prover ≈ execution, proofs of a few hundred bytes),
// plus the enclave alternative's latency factors (MLCapsule ≈2×).
func RunE10(w io.Writer) error {
	rng := tensor.NewRNG(70)
	tw := table(w)
	fmt.Fprintln(tw, "batch×in×out\tproof B\tprover muls\tverifier muls\tdirect muls\tverifier saving\tt(prove)\tt(verify)\tt(direct)")
	for _, dims := range [][3]int{{32, 32, 32}, {64, 64, 32}, {128, 128, 64}, {256, 256, 128}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := make([]int32, m*k)
		b := make([]int32, k*n)
		for i := range a {
			a[i] = int32(rng.Intn(255) - 127)
		}
		for i := range b {
			b[i] = int32(rng.Intn(255) - 127)
		}
		tStart := time.Now()
		c, proof, pstats, err := verify.ProveMatMul(a, m, k, b, n)
		if err != nil {
			return err
		}
		tProve := time.Since(tStart)
		tStart = time.Now()
		ok, vstats, err := verify.VerifyMatMul(a, m, k, b, n, c, proof)
		if err != nil {
			return err
		}
		tVerify := time.Since(tStart)
		if !ok {
			return fmt.Errorf("honest proof rejected at %v", dims)
		}
		// Direct re-execution (plain int64).
		tStart = time.Now()
		directMatMul(a, m, k, b, n)
		tDirect := time.Since(tStart)
		fmt.Fprintf(tw, "%d×%d×%d\t%d\t%d\t%d\t%d\t%.0f×\t%v\t%v\t%v\n",
			m, k, n, proof.SizeBytes(), pstats.ProverMuls, vstats.VerifierMuls, vstats.DirectMuls,
			float64(vstats.DirectMuls)/float64(vstats.VerifierMuls),
			tProve.Round(time.Microsecond), tVerify.Round(time.Microsecond), tDirect.Round(time.Microsecond))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Whole-network verifiable inference.
	net := nn.NewNetwork([]int{64},
		nn.NewDense(64, 64, rng), nn.NewReLU(),
		nn.NewDense(64, 10, rng))
	x := tensor.Randn(rng, 1, 64, 64)
	start := time.Now()
	ip, err := verify.ProveInference(net, x)
	if err != nil {
		return err
	}
	tProve := time.Since(start)
	start = time.Now()
	ok, stats, err := verify.VerifyInference(net, x, ip)
	if err != nil {
		return err
	}
	tVerify := time.Since(start)
	start = time.Now()
	net.Predict(x)
	tPlain := time.Since(start)
	fmt.Fprintf(w, "\nMLP (64→64→10, batch 64): evidence %d B, prove %v, verify %v, plain inference %v\n",
		ip.SizeBytes(), tProve.Round(time.Microsecond), tVerify.Round(time.Microsecond), tPlain.Round(time.Microsecond))
	fmt.Fprintf(w, "proof verifies: %v; verifier %d vs direct %d field muls (%.0f× cheaper than re-execution)\n",
		ok, stats.VerifierMuls, stats.DirectMuls, float64(stats.DirectMuls)/float64(stats.VerifierMuls))

	// Enclave alternative.
	encl, err := enclave.New("e10-spe", []byte("root-key-0123456789abcdef"), 2.0)
	if err != nil {
		return err
	}
	macs, err := net.TotalMACs()
	if err != nil {
		return err
	}
	full := encl.PlanFullEnclave(macs)
	slalom, err := encl.PlanSlalom(macs, macs/10)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nenclave alternative: untrusted 1.00×, Slalom(10%% protected) %.2f×, full enclave %.2f× latency\n",
		slalom.LatencyFactor, full.LatencyFactor)
	return nil
}

func directMatMul(a []int32, m, k int, b []int32, n int) []int64 {
	out := make([]int64, m*n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := int64(a[i*k+p])
			if av == 0 {
				continue
			}
			row := b[p*n : (p+1)*n]
			orow := out[i*n : (i+1)*n]
			for j, bv := range row {
				orow[j] += av * int64(bv)
			}
		}
	}
	return out
}

// RunE11 measures model encryption-at-rest cost across model sizes and
// the per-query amortization.
func RunE11(w io.Writer) error {
	rng := tensor.NewRNG(80)
	vendorKey := []byte("e11-vendor-key-0123456789abcdef0")
	tw := table(w)
	fmt.Fprintln(tw, "model\tparams\tartifact B\tencrypt\tdecrypt+load\tplain load\tamortized over 10k queries")
	for _, size := range []struct {
		name   string
		hidden []int
	}{
		{"tiny", []int{32}},
		{"small", []int{128, 64}},
		{"medium", []int{512, 256}},
		{"large", []int{1024, 512, 256}},
	} {
		layers := []nn.Layer{}
		in := 64
		for _, h := range size.hidden {
			layers = append(layers, nn.NewDense(in, h, rng), nn.NewReLU())
			in = h
		}
		layers = append(layers, nn.NewDense(in, 10, rng))
		net := nn.NewNetwork([]int{64}, layers...)
		artifact, err := net.MarshalBinary()
		if err != nil {
			return err
		}
		start := time.Now()
		em, err := ipprot.EncryptModel(vendorKey, size.name, artifact)
		if err != nil {
			return err
		}
		tEnc := time.Since(start)
		start = time.Now()
		plain, err := ipprot.DecryptModel(vendorKey, em)
		if err != nil {
			return err
		}
		if _, err := nn.UnmarshalNetwork(plain); err != nil {
			return err
		}
		tDec := time.Since(start)
		start = time.Now()
		if _, err := nn.UnmarshalNetwork(artifact); err != nil {
			return err
		}
		tPlain := time.Since(start)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%v\t%v\t%v\t%v/query\n",
			size.name, net.ParamCount(), len(artifact),
			tEnc.Round(time.Microsecond), tDec.Round(time.Microsecond), tPlain.Round(time.Microsecond),
			((tDec - tPlain) / 10000).Round(time.Nanosecond))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\ndecryption is a one-time load cost; amortized per query it is negligible (§V),")
	fmt.Fprintln(w, "while a flash dump of the sealed artifact reveals nothing without the vendor key.")
	return nil
}
