package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("registry has %d experiments, want 11", len(all))
	}
	for i, e := range all {
		want := "E" + string(rune('1'+i))
		if i >= 9 {
			want = "E1" + string(rune('0'+i-9))
		}
		if e.ID != want {
			t.Fatalf("experiment %d has ID %q, want %q", i, e.ID, want)
		}
		if e.Run == nil || e.Title == "" || e.Paper == "" {
			t.Fatalf("experiment %s incomplete: %+v", e.ID, e)
		}
	}
	if _, ok := ByID("E7"); !ok {
		t.Fatal("ByID(E7) failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID accepted unknown ID")
	}
}

// TestEveryExperimentRuns executes each table generator end to end; this
// is the integration test that ties all sixteen packages together. Heavy
// generators are skipped in -short mode.
func TestEveryExperimentRuns(t *testing.T) {
	heavy := map[string]bool{"E2": true, "E6": true, "E9": true, "E10": true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && heavy[e.ID] {
				t.Skipf("%s is heavy; run without -short", e.ID)
			}
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			if strings.Contains(buf.String(), "FALSE POSITIVE") {
				t.Fatalf("%s reports a false positive:\n%s", e.ID, buf.String())
			}
			if strings.Contains(buf.String(), "%!") {
				t.Fatalf("%s has a formatting bug:\n%s", e.ID, buf.String())
			}
		})
	}
}

func TestRunOneBanners(t *testing.T) {
	e, _ := ByID("E5")
	var buf bytes.Buffer
	if err := RunOne(&buf, e); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E5 —") || !strings.Contains(out, "§III-C") {
		t.Fatalf("banner missing:\n%s", out)
	}
}

func TestRunAllToDiscard(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness is heavy; run without -short")
	}
	if err := RunAll(io.Discard); err != nil {
		t.Fatal(err)
	}
}
