package experiments

import (
	"fmt"
	"io"
	"net"
	"time"

	"tinymlops/internal/core"
	"tinymlops/internal/dataset"
	"tinymlops/internal/device"
	"tinymlops/internal/engine"
	"tinymlops/internal/fed"
	"tinymlops/internal/metering"
	"tinymlops/internal/nn"
	"tinymlops/internal/quant"
	"tinymlops/internal/registry"
	"tinymlops/internal/selector"
	"tinymlops/internal/tensor"
)

// trainBlobs trains a small classifier and returns (net, train, test).
func trainBlobs(seed uint64, n, features, classes int, sep float32, hidden int) (*nn.Network, *dataset.Dataset, *dataset.Dataset, error) {
	rng := tensor.NewRNG(seed)
	ds := dataset.Blobs(rng, n, features, classes, sep)
	train, test := ds.Split(0.8, rng)
	net := nn.NewNetwork([]int{features},
		nn.NewDense(features, hidden, rng), nn.NewReLU(),
		nn.NewDense(hidden, classes, rng))
	_, err := nn.Train(net, train.X, train.Y, nn.TrainConfig{
		Epochs: 10, BatchSize: 32, Optimizer: nn.NewSGD(0.1).WithMomentum(0.9), RNG: rng,
	})
	return net, train, test, err
}

// RunE1 exercises every Fig. 1 functionality block in one scenario and
// reports a per-block metric.
func RunE1(w io.Writer) error {
	net, train, test, err := trainBlobs(1, 1500, 4, 3, 5, 16)
	if err != nil {
		return err
	}
	fleet, err := device.NewStandardFleet(device.FleetSpec{CountPerProfile: 2, Seed: 1})
	if err != nil {
		return err
	}
	for _, d := range fleet.Devices() {
		d.SetBehavior(1, 1, 0)
	}
	fleet.Tick()
	p, err := core.New(fleet, core.Config{VendorKey: []byte("e1-vendor-key-0123456789abcdef00"), Seed: 1, MinCohort: 1})
	if err != nil {
		return err
	}
	versions, err := p.Publish("e1", net, test, core.DefaultOptimizationSpec(test))
	if err != nil {
		return err
	}
	// Deployment fans out over the platform's worker pool; per-device
	// failures (a model that does not fit a profile) are expected and are
	// counted rather than propagated, as before.
	deployed := 0
	ids := make([]string, 0, fleet.Size())
	for _, d := range fleet.Devices() {
		ids = append(ids, d.ID)
	}
	deps, _ := engine.Map(p.Engine(), len(ids), func(i int) (*core.Deployment, error) {
		return p.Deploy(ids[i], "e1", core.DeployConfig{PrepaidQueries: 200, Calibration: train, Watermark: "cust-" + ids[i]})
	})
	for _, d := range deps {
		if d != nil {
			deployed++
		}
	}
	// Metered inference everywhere: one batched burst per deployment, all
	// deployments in parallel (50 queries beyond quota to exercise denial).
	rows := make([][]float32, 250)
	for i := range rows {
		row := make([]float32, 4)
		for f := 0; f < 4; f++ {
			row[f] = test.X.At2(i%test.Len(), f)
		}
		rows[i] = row
	}
	live := p.Deployments()
	served := make([]int, len(live))
	refused := make([]int, len(live))
	_ = p.Engine().ForEach(len(live), func(i int) error {
		for _, o := range live[i].InferBatch(rows) {
			if o.Err != nil {
				refused[i]++
			} else {
				served[i]++
			}
		}
		return nil
	})
	queries, denials := 0, 0
	for i := range live {
		queries += served[i]
		denials += refused[i]
	}
	records, bytes, err := p.SyncTelemetry()
	if err != nil {
		return err
	}
	l, err := net2listen()
	if err != nil {
		return err
	}
	srv := metering.Serve(l, p.Settler)
	defer srv.Close()
	settled := 0
	for _, err := range p.SettleAll(srv.Addr()) {
		if err == nil {
			settled++
		}
	}
	// Federated retraining round.
	rng := tensor.NewRNG(2)
	shards := dataset.PartitionDirichlet(rng, train, 6, 1)
	clients := fed.MakeClients(train, shards, "c")
	newVersions, stats, err := p.FederatedUpdate("e1", clients, test, fed.Config{
		Rounds: 3, LocalEpochs: 1, LocalBatch: 16, LR: 0.1, Seed: 3,
	}, core.DefaultOptimizationSpec(test))
	if err != nil {
		return err
	}

	tw := table(w)
	fmt.Fprintln(tw, "Fig.1 block\tevidence")
	fmt.Fprintf(tw, "manage model versions\t%d versions registered (1 base + %d variants), lineage tracked\n", len(versions), len(versions)-1)
	fmt.Fprintf(tw, "deploy across fleet\t%d/%d devices deployed, per-device variant selection\n", deployed, fleet.Size())
	fmt.Fprintf(tw, "observability\t%d telemetry records (%d B) aggregated into %d cohorts\n", records, bytes, len(p.Aggregator.Cohorts()))
	fmt.Fprintf(tw, "pay-per-query\t%d queries served, %d denied at quota, %d/%d meters settled\n", queries, denials, settled, deployed)
	fmt.Fprintf(tw, "retrain/personalize\tfederated update: %d rounds, final acc %.3f, %d new versions\n", len(stats), stats[len(stats)-1].TestAccuracy, len(newVersions))
	fmt.Fprintf(tw, "IP protection\tper-customer watermarks embedded on deploy (registry-tagged)\n")
	fmt.Fprintf(tw, "verifiable execution\tsee E10 (sum-check proofs per dense layer)\n")
	return tw.Flush()
}

func net2listen() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }

// RunE2 sweeps model variants across device classes and compares
// per-device selection against one-size-fits-all deployment.
func RunE2(w io.Writer) error {
	rng := tensor.NewRNG(10)
	ds := dataset.Blobs(rng, 3000, 64, 4, 3)
	train, test := ds.Split(0.8, rng)
	eval := func(n *nn.Network) float64 { return nn.Evaluate(n, test.X, test.Y) }

	big := nn.NewNetwork([]int{64},
		nn.NewDense(64, 512, rng), nn.NewReLU(),
		nn.NewDense(512, 256, rng), nn.NewReLU(),
		nn.NewDense(256, 4, rng))
	small := nn.NewNetwork([]int{64},
		nn.NewDense(64, 32, rng), nn.NewReLU(),
		nn.NewDense(32, 4, rng))
	for _, m := range []*nn.Network{big, small} {
		if _, err := nn.Train(m, train.X, train.Y, nn.TrainConfig{
			Epochs: 8, BatchSize: 32, Optimizer: nn.NewSGD(0.05).WithMomentum(0.9), RNG: rng,
		}); err != nil {
			return err
		}
	}
	reg := registry.New()
	spec := registry.OptimizationSpec{
		Schemes:  []quant.Scheme{quant.Int8, quant.Int4, quant.Ternary, quant.Binary},
		Evaluate: eval,
	}
	var candidates []*registry.ModelVersion
	for _, m := range []*nn.Network{big, small} {
		vs, err := reg.RegisterWithVariants("clf", m, eval(m), spec)
		if err != nil {
			return err
		}
		candidates = append(candidates, vs...)
	}

	fmt.Fprintf(w, "candidate matrix: 2 architectures × 5 precisions = %d variants\n\n", len(candidates))
	tw := table(w)
	fmt.Fprintln(tw, "device\tchosen\tprecision\tacc\tlatency\tsize\tnote")
	fleetAccSel, fleetLatSel := 0.0, 0.0
	fleetAccGlobal, fleetLatGlobal := 0.0, 0.0
	globalBase := candidates[0] // big fp32 — the "latest and greatest"
	profiles := device.StandardProfiles()
	seeder := tensor.NewRNG(11)
	for _, prof := range profiles {
		d := device.NewDevice(prof.Name, prof, seeder.Split())
		d.SetBehavior(1, 1, 0)
		d.Tick()
		dec, err := selector.Select(d, candidates, selector.DefaultPolicy())
		if err != nil {
			return err
		}
		ch := dec.Chosen
		arch := "small"
		if ch.Version.Metrics.MACs > 100000 {
			arch = "big"
		}
		note := ""
		if !prof.SupportsBits(ch.Version.Scheme.Bits()) {
			note = "emulated bits"
		}
		fmt.Fprintf(tw, "%s\t%s-%s\t%s\t%.3f\t%v\t%dB\t%s\n",
			prof.Name, arch, ch.Version.ID[:6], ch.Version.Scheme,
			ch.Version.Metrics.Accuracy, ch.Latency.Round(time.Microsecond),
			ch.Version.Metrics.SizeBytes, note)
		fleetAccSel += ch.Version.Metrics.Accuracy
		fleetLatSel += ch.Latency.Seconds()
		// One-size-fits-all: force the big fp32 base (if it fits at all).
		gl := prof.InferenceLatency(globalBase.Metrics.MACs, 32)
		fleetLatGlobal += gl.Seconds()
		if int64(globalBase.Metrics.SizeBytes) <= prof.FlashBytes {
			fleetAccGlobal += globalBase.Metrics.Accuracy
		} // else: cannot deploy at all — zero accuracy contribution
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	n := float64(len(profiles))
	fmt.Fprintf(w, "\nfleet mean (per-device selection): accuracy %.3f, latency %.2fms\n",
		fleetAccSel/n, fleetLatSel/n*1e3)
	fmt.Fprintf(w, "fleet mean (one global fp32 model): accuracy %.3f (0 where it cannot deploy), latency %.2fms\n",
		fleetAccGlobal/n, fleetLatGlobal/n*1e3)
	return nil
}

// RunE3 shows that reduced precision only helps with hardware support:
// modeled latency per device × precision, plus real kernel measurements.
func RunE3(w io.Writer) error {
	const macs = 200_000
	tw := table(w)
	fmt.Fprintln(tw, "device\tfp32\tint8\tint4\tternary\t(— = emulated, slower than fp32)")
	for _, prof := range device.StandardProfiles() {
		row := fmt.Sprintf("%s", prof.Name)
		for _, bits := range []int{32, 8, 4, 2} {
			lat := prof.InferenceLatency(macs, bits)
			mark := ""
			if !prof.SupportsBits(bits) {
				mark = "—"
			}
			row += fmt.Sprintf("\t%v%s", lat.Round(time.Microsecond), mark)
		}
		fmt.Fprintln(tw, row)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Real kernels on this host: int8 with native accumulate vs the
	// dequantize-in-the-loop emulation vs float32.
	rng := tensor.NewRNG(12)
	m, k, n := 128, 256, 128
	a := make([]int8, m*k)
	b := make([]int8, k*n)
	for i := range a {
		a[i] = int8(rng.Intn(255) - 127)
	}
	for i := range b {
		b[i] = int8(rng.Intn(255) - 127)
	}
	scales := make([]float32, n)
	for i := range scales {
		scales[i] = 0.01
	}
	dst := make([]float32, m*n)
	timeIt := func(f func()) time.Duration {
		const reps = 20
		start := time.Now()
		for i := 0; i < reps; i++ {
			f()
		}
		return time.Since(start) / reps
	}
	tInt8 := timeIt(func() { quant.MatMulInt8(dst, a, b, m, k, n, 0.05, scales) })
	tEmul := timeIt(func() { quant.MatMulInt8Emulated(dst, a, b, m, k, n, 0.05, scales) })
	af := tensor.Randn(rng, 1, m, k)
	bf := tensor.Randn(rng, 1, k, n)
	tF32 := timeIt(func() { tensor.MatMul(af, bf) })
	fmt.Fprintf(w, "\nhost kernel measurements (%d×%d×%d):\n", m, k, n)
	fmt.Fprintf(w, "  int8 native accumulate: %v\n", tInt8)
	fmt.Fprintf(w, "  int8 emulated (dequantize in loop): %v (%.1f× slower than native int8)\n",
		tEmul, float64(tEmul)/float64(tInt8))
	fmt.Fprintf(w, "  float32: %v\n", tF32)
	return nil
}
