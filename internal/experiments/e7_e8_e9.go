package experiments

import (
	"fmt"
	"io"
	"time"

	"tinymlops/internal/compat"
	"tinymlops/internal/dataset"
	"tinymlops/internal/device"
	"tinymlops/internal/ipprot"
	"tinymlops/internal/market"
	"tinymlops/internal/nn"
	"tinymlops/internal/procvm"
	"tinymlops/internal/quant"
	"tinymlops/internal/registry"
	"tinymlops/internal/tensor"
)

// RunE7 prints the native-support matrix, contrasts it with procvm
// portability, shows the batch-norm lowering pass rescuing a target, and
// sweeps the edge-cloud split point over bandwidth.
func RunE7(w io.Writer) error {
	rng := tensor.NewRNG(40)
	reg := registry.New()
	mlp := nn.NewNetwork([]int{16}, nn.NewDense(16, 32, rng), nn.NewReLU(), nn.NewDense(32, 4, rng))
	bnMLP := nn.NewNetwork([]int{16}, nn.NewDense(16, 32, rng), nn.NewBatchNorm1D(32), nn.NewReLU(), nn.NewDense(32, 4, rng))
	conv := nn.NewNetwork([]int{1, 12, 12},
		nn.NewConv2D(1, 4, 3, 3, 1, 1, rng), nn.NewReLU(),
		nn.NewMaxPool2D(2, 2), nn.NewFlatten(), nn.NewDense(144, 4, rng))

	var models []*registry.ModelVersion
	mv, err := reg.RegisterModel("mlp", mlp, 0.9)
	if err != nil {
		return err
	}
	models = append(models, mv)
	q8, _ := quant.FakeQuantizeNetwork(mlp, quant.Int8)
	v8, err := reg.RegisterVariant(mv.ID, q8, quant.Int8, 0, 0.89)
	if err != nil {
		return err
	}
	models = append(models, v8)
	qt, _ := quant.FakeQuantizeNetwork(mlp, quant.Ternary)
	vt, err := reg.RegisterVariant(mv.ID, qt, quant.Ternary, 0, 0.84)
	if err != nil {
		return err
	}
	models = append(models, vt)
	bv, err := reg.RegisterModel("bn-mlp", bnMLP, 0.91)
	if err != nil {
		return err
	}
	models = append(models, bv)
	cv, err := reg.RegisterModel("convnet", conv, 0.93)
	if err != nil {
		return err
	}
	models = append(models, cv)

	targets := device.StandardProfiles()
	matrix := compat.Matrix(models, targets)
	tw := table(w)
	header := "model"
	for _, tgt := range targets {
		header += "\t" + tgt.Name
	}
	fmt.Fprintln(tw, header)
	labels := []string{"mlp/fp32", "mlp/int8", "mlp/ternary", "bn-mlp/fp32", "convnet/fp32"}
	for i, row := range matrix {
		line := labels[i]
		for _, rep := range row {
			line += "\t" + rep.Summary()
		}
		fmt.Fprintln(tw, line)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nnative deployability: %.0f%% of (model,target) pairs\n", 100*compat.Coverage(matrix))

	// procvm: the same pipeline module runs on every target.
	module, err := procvm.NewBuilder("preprocess").Input().Clamp(-4, 4).Softmax().Build()
	if err != nil {
		return err
	}
	ok := 0
	for range targets {
		// Every target ships the interpreter; behaviour is bit-identical.
		if _, err := procvm.NewRuntime(procvm.CapNone).Run(module, []float32{1, 2, 3}); err == nil {
			ok++
		}
	}
	digest := module.Digest()
	fmt.Fprintf(w, "procvm pipeline modules: %d/%d targets (portable by construction, digest %x…)\n",
		ok, len(targets), digest[:4])

	// Lowering: batch-norm folding rescues the npu-board target.
	npu, _ := device.ProfileByName("npu-board")
	res, err := compat.Lower(bnMLP, npu)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "lowering bn-mlp for npu-board: passes %v -> ops %v\n", res.Passes, res.Network.OpKinds())

	// Edge-cloud split point vs bandwidth: a weak device with a large
	// model, so the optimum actually moves with the link (§IV refs
	// [62]-[65]).
	fmt.Fprintln(w, "\nedge-cloud split (m0-sensor device, edge-gateway cloud, rtt 5ms):")
	big := nn.NewNetwork([]int{64},
		nn.NewDense(64, 256, rng), nn.NewReLU(),
		nn.NewDense(256, 256, rng), nn.NewReLU(),
		nn.NewDense(256, 8, rng))
	costs, err := big.Summary()
	if err != nil {
		return err
	}
	m0, _ := device.ProfileByName("m0-sensor")
	cloud, _ := device.ProfileByName("edge-gateway")
	tw = table(w)
	fmt.Fprintln(tw, "bandwidth\tbest cut (of 5 layers)\tdevice\ttx\tcloud\ttotal")
	for _, bw := range []float64{2.5e6, 125e3, 12.5e3, 100, 0} {
		best, _, err := market.BestSplit(costs, m0, cloud, 32, bw, 5*time.Millisecond, 64*4)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("%.1f KB/s", bw/1e3)
		if bw == 0 {
			label = "offline"
		}
		fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%v\t%v\n", label, best.Cut,
			best.DeviceLatency.Round(time.Microsecond), best.TxLatency.Round(time.Microsecond),
			best.CloudLatency.Round(time.Microsecond), best.Total.Round(time.Microsecond))
	}
	return tw.Flush()
}

// RunE8 sweeps watermark capacity against fidelity and robustness against
// pruning and fine-tuning, for static and dynamic marks.
func RunE8(w io.Writer) error {
	net, train, test, err := trainBlobs(50, 2000, 8, 4, 3, 64)
	if err != nil {
		return err
	}
	baseAcc := nn.Evaluate(net, test.X, test.Y)
	fmt.Fprintf(w, "carrier model: %.3f accuracy, %d weights in carrier layer\n\n", baseAcc, 8*64)

	tw := table(w)
	fmt.Fprintln(tw, "capacity (bits)\tBER\taccuracy after embed\tfidelity cost")
	for _, capBits := range []int{16, 64, 128, 256} {
		m := net.Clone()
		bits := ipprot.KeyedBits("owner", capBits)
		if err := ipprot.EmbedStatic(m, "owner", bits, ipprot.DefaultStaticWMConfig()); err != nil {
			return err
		}
		got, err := ipprot.ExtractStatic(m, "owner", capBits, ipprot.DefaultStaticWMConfig())
		if err != nil {
			return err
		}
		acc := nn.Evaluate(m, test.X, test.Y)
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%+.3f\n", capBits, ipprot.BitErrorRate(bits, got), acc, acc-baseAcc)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Robustness: prune / fine-tune the marked model, re-extract. The
	// dynamic mark is embedded first (it trains every weight and would
	// otherwise wash out the static projection mark — exactly the
	// fragility §V attributes to static schemes).
	fmt.Fprintln(w, "\nrobustness (static 64-bit mark + dynamic 30-trigger mark):")
	marked := net.Clone()
	triggers := ipprot.NewTriggerSet("owner", 30, []int{8}, 4)
	rng := tensor.NewRNG(51)
	if err := ipprot.EmbedDynamic(marked, triggers, train.X, train.Y, 6, rng); err != nil {
		return err
	}
	bits := ipprot.KeyedBits("owner", 64)
	if err := ipprot.EmbedStatic(marked, "owner", bits, ipprot.DefaultStaticWMConfig()); err != nil {
		return err
	}
	tw = table(w)
	fmt.Fprintln(tw, "distortion\tstatic BER\ttrigger recall\ttask acc")
	report := func(name string, m *nn.Network) error {
		got, err := ipprot.ExtractStatic(m, "owner", 64, ipprot.DefaultStaticWMConfig())
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.2f\t%.3f\n", name,
			ipprot.BitErrorRate(bits, got), ipprot.VerifyDynamic(m, triggers),
			nn.Evaluate(m, test.X, test.Y))
		return nil
	}
	if err := report("none", marked); err != nil {
		return err
	}
	for _, frac := range []float64{0.3, 0.5, 0.7, 0.9} {
		m := marked.Clone()
		if _, err := quant.MagnitudePrune(m, frac); err != nil {
			return err
		}
		if err := report(fmt.Sprintf("prune %.0f%%", frac*100), m); err != nil {
			return err
		}
	}
	m := marked.Clone()
	attackerData := train.Subset(tensor.NewRNG(52).Perm(300))
	if err := ipprot.FineTuneAttack(m, attackerData, 10, 0.05, tensor.NewRNG(53)); err != nil {
		return err
	}
	if err := report("fine-tune (300 ex, 10 ep)", m); err != nil {
		return err
	}
	return tw.Flush()
}

// RunE9 runs the extraction attack across query budgets and defenses, and
// the stealing-query detector.
func RunE9(w io.Writer) error {
	rng := tensor.NewRNG(60)
	ds := dataset.Blobs(rng, 3000, 8, 5, 1.6)
	train, test := ds.Split(0.7, rng)
	victim := nn.NewNetwork([]int{8}, nn.NewDense(8, 48, rng), nn.NewReLU(), nn.NewDense(48, 5, rng))
	if _, err := nn.Train(victim, train.X, train.Y, nn.TrainConfig{
		Epochs: 12, BatchSize: 32, Optimizer: nn.NewSGD(0.1).WithMomentum(0.9), RNG: rng,
	}); err != nil {
		return err
	}
	bb := ipprot.ModelBlackBox(victim)
	eval := test.X.RowSlice(0, 400)
	fmt.Fprintf(w, "victim accuracy %.3f; clone agreement on 400 held-out inputs:\n\n",
		nn.Evaluate(victim, test.X, test.Y))

	defenses := []ipprot.Defense{
		ipprot.NoDefense{}, ipprot.RoundDefense{Decimals: 1}, ipprot.Top1Defense{},
		ipprot.NoiseDefense{Std: 0.08, RNG: tensor.NewRNG(61)}, ipprot.DeceptiveDefense{},
	}
	budgets := []int{40, 150, 500}
	tw := table(w)
	head := "defense"
	for _, b := range budgets {
		head += fmt.Sprintf("\tq=%d agree", b)
	}
	head += "\tprob-L1@500"
	fmt.Fprintln(tw, head)
	victimProbs := bb(eval)
	for _, d := range defenses {
		line := d.Name()
		var last *nn.Network
		for _, budget := range budgets {
			srng := tensor.NewRNG(100 + uint64(budget))
			student := nn.NewNetwork([]int{8}, nn.NewDense(8, 48, srng), nn.NewReLU(), nn.NewDense(48, 5, srng))
			if _, err := ipprot.Extract(ipprot.Defend(bb, d), student, train.X.RowSlice(0, budget),
				ipprot.ExtractConfig{Epochs: 20, LR: 0.05, RNG: srng}); err != nil {
				return err
			}
			line += fmt.Sprintf("\t%.3f", ipprot.Agreement(bb, ipprot.ModelBlackBox(student), eval))
			last = student
		}
		// Distributional fidelity of the 500-query clone: poisoning that
		// preserves the argmax still corrupts the clone's probabilities,
		// which is what downstream abuse (confidence-based APIs,
		// further distillation) depends on.
		sp := nn.SoftmaxRows(last.Predict(eval))
		var l1 float64
		for i := range sp.Data {
			dlt := float64(sp.Data[i] - victimProbs.Data[i])
			if dlt < 0 {
				dlt = -dlt
			}
			l1 += dlt
		}
		line += fmt.Sprintf("\t%.3f", l1/float64(eval.Dim(0)))
		fmt.Fprintln(tw, line)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Detection.
	det := ipprot.DefaultQueryDetector()
	for i := 0; i < 500; i++ {
		row := make([]float32, 8)
		r := rng.Intn(train.Len())
		for f := 0; f < 8; f++ {
			row[f] = train.X.At2(r, f)
		}
		det.Observe(row)
	}
	fmt.Fprintf(w, "\nPRADA-style detector: benign 500-query stream flagged=%v (K²=%.1f)\n", det.Flagged(), det.Score())
	det.Reset()
	seed := make([]float32, 8)
	flaggedAt := -1
	for i := 0; i < 1000 && flaggedAt < 0; i++ {
		q := make([]float32, 8)
		if i%10 == 0 {
			r := rng.Intn(train.Len())
			for f := 0; f < 8; f++ {
				q[f] = train.X.At2(r, f)
			}
			copy(seed, q)
		} else {
			copy(q, seed)
			q[rng.Intn(8)] += 0.01
		}
		det.Observe(q)
		if det.Flagged() {
			flaggedAt = i
		}
	}
	fmt.Fprintf(w, "perturbation attacker flagged at query %d\n", flaggedAt)
	return nil
}
