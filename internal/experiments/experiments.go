// Package experiments regenerates every experiment table of the
// reproduction (E1–E11, see DESIGN.md §3). The paper is a position paper
// with no evaluation tables of its own; each experiment operationalizes a
// quantified claim from the prose and reports the measured shape. The
// cmd/experiments binary prints the tables; bench_test.go measures the
// underlying kernels with testing.B.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Experiment is one reproducible table generator.
type Experiment struct {
	// ID is the experiment identifier ("E1".."E11").
	ID string
	// Title summarizes the claim under test.
	Title string
	// Paper anchors the experiment in the paper.
	Paper string
	// Run writes the table to w. Implementations are deterministic for a
	// fixed build (all randomness is seeded).
	Run func(w io.Writer) error
}

// All returns every experiment in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Platform functionality coverage", "Fig. 1", RunE1},
		{"E2", "Per-device model variant selection", "§III-A", RunE2},
		{"E3", "Bit width × hardware support", "§III-A", RunE3},
		{"E4", "Edge observability: drift detection and telemetry cost", "§III-B", RunE4},
		{"E5", "Offline pay-per-query metering", "§III-C", RunE5},
		{"E6", "Federated learning: non-IID, compression, personalization", "§III-D", RunE6},
		{"E7", "Fragmented targets: compat matrix, portable VM, edge-cloud split", "§IV", RunE7},
		{"E8", "Watermark fidelity / robustness / capacity", "§V", RunE8},
		{"E9", "Model extraction and prediction poisoning", "§V", RunE9},
		{"E10", "Verifiable execution overhead", "§VI", RunE10},
		{"E11", "Encrypted model storage cost", "§V", RunE11},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment against w.
func RunAll(w io.Writer) error {
	for _, e := range All() {
		if err := RunOne(w, e); err != nil {
			return err
		}
	}
	return nil
}

// RunOne executes a single experiment with its banner.
func RunOne(w io.Writer, e Experiment) error {
	fmt.Fprintf(w, "\n================================================================\n")
	fmt.Fprintf(w, "%s — %s (%s)\n", e.ID, e.Title, e.Paper)
	fmt.Fprintf(w, "================================================================\n")
	if err := e.Run(w); err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	return nil
}

// table returns a tabwriter configured for the experiment output style.
func table(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// sortedKeys returns map keys in stable order for deterministic tables.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
