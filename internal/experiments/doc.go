// Package experiments reproduces the paper's operational arguments as
// eleven numbered, deterministic table generators: platform functionality
// coverage (E1, Fig. 1), per-device variant selection (E2, §III-A), the
// bit-width × hardware-support cliff (E3, §III-A), drift detection and
// telemetry cost (E4, §III-B), offline pay-per-query metering (E5,
// §III-C), federated learning under non-IID skew with compression and
// personalization (E6, §III-D), fragmented targets — compat matrix,
// portable VM and the edge–cloud split sweep (E7, §IV), watermark
// fidelity/robustness/capacity (E8, §V), model extraction and prediction
// poisoning (E9, §V), verifiable execution overhead (E10, §VI), and
// encrypted model storage cost (E11, §V).
//
// Every experiment consumes the same internal packages the platform's
// production paths use, so the tables double as executable documentation;
// cmd/experiments runs any subset from the command line, and the module
// root's bench_test.go tracks each experiment's hot path as a benchmark.
package experiments
