package experiments

import (
	"fmt"
	"io"
	"time"

	"tinymlops/internal/dataset"
	"tinymlops/internal/fed"
	"tinymlops/internal/metering"
	"tinymlops/internal/nn"
	"tinymlops/internal/observe"
	"tinymlops/internal/tensor"
)

// RunE4 measures drift-detection delay per detector × drift kind, the
// false-positive behaviour on a null stream, and the telemetry footprint
// versus shipping raw data.
func RunE4(w io.Writer) error {
	rng := tensor.NewRNG(20)
	base := dataset.Blobs(rng, 4000, 4, 3, 3)

	ref := make([]float64, 1000)
	var welford observe.Welford
	for i := range ref {
		ref[i] = float64(base.X.At2(i, 0))
		welford.Add(ref[i])
	}
	makeDetectors := func() (map[string]observe.Detector, error) {
		ks, err := observe.NewKSDetector(ref, 100, 0.01)
		if err != nil {
			return nil, err
		}
		psi, err := observe.NewPSIDetector(ref, 10, 200, 0.25)
		if err != nil {
			return nil, err
		}
		cusum, err := observe.NewCUSUMDetector(welford.Mean(), welford.Std(), 0.5, 10)
		if err != nil {
			return nil, err
		}
		return map[string]observe.Detector{"ks": ks, "psi": psi, "cusum": cusum}, nil
	}

	kinds := []struct {
		name string
		kind dataset.DriftKind
		mag  float64
	}{
		{"mean-shift(2σ)", dataset.DriftMeanShift, 2 * float64(welford.Std())},
		{"rotate(60°)", dataset.DriftRotate, 1.05},
		{"scale(×1.6)", dataset.DriftScale, 0.6},
	}
	const onset = 1000
	tw := table(w)
	fmt.Fprintln(tw, "drift kind\tdetector\tdetected\tdelay (samples)\tscore at alarm")
	for _, kd := range kinds {
		dets, err := makeDetectors()
		if err != nil {
			return err
		}
		for _, name := range sortedKeys(dets) {
			det := dets[name]
			stream := dataset.NewDriftStream(tensor.NewRNG(21), base, onset, kd.kind, kd.mag)
			alarm := -1
			for t := 0; t < onset+3000; t++ {
				x, _ := stream.Next()
				det.Observe(float64(x[0]))
				if det.Drifted() {
					alarm = t
					break
				}
			}
			switch {
			case alarm < 0:
				fmt.Fprintf(tw, "%s\t%s\tno\t—\t%.3f\n", kd.name, name, det.Score())
			case alarm < onset:
				fmt.Fprintf(tw, "%s\t%s\tFALSE POSITIVE\tt=%d\t%.3f\n", kd.name, name, alarm, det.Score())
			default:
				fmt.Fprintf(tw, "%s\t%s\tyes\t%d\t%.3f\n", kd.name, name, alarm-onset, det.Score())
			}
		}
	}
	// Null stream: no detector should fire over 4000 samples.
	dets, err := makeDetectors()
	if err != nil {
		return err
	}
	for _, name := range sortedKeys(dets) {
		det := dets[name]
		stream := dataset.NewDriftStream(tensor.NewRNG(22), base, 1<<30, dataset.DriftNone, 0)
		fired := false
		for t := 0; t < 4000; t++ {
			x, _ := stream.Next()
			det.Observe(float64(x[0]))
			if det.Drifted() {
				fired = true
				break
			}
		}
		verdict := "clean"
		if fired {
			verdict = "FALSE POSITIVE"
		}
		fmt.Fprintf(tw, "null (no drift)\t%s\t%s\t\t\n", name, verdict)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	rec := observe.Record{DeviceID: "m4-wearable-00", Inferences: 1000,
		FeatureMeans: make([]float32, 4), FeatureStds: make([]float32, 4)}
	telemetry := len(rec.Encode())
	raw := 1000 * 4 * 4
	fmt.Fprintf(w, "\ntelemetry for a 1000-inference window: %d B vs %d B raw inputs (%.0f× smaller, no raw data leaves the device)\n",
		telemetry, raw, float64(raw)/float64(telemetry))
	return nil
}

// RunE5 reports metering overhead and the tamper-detection matrix.
func RunE5(w io.Writer) error {
	issuer, err := metering.NewIssuer([]byte("e5-vendor-key-0123456789abcdef00"))
	if err != nil {
		return err
	}
	v, err := issuer.Issue("dev-1", "model-1", 200_000)
	if err != nil {
		return err
	}
	m := metering.NewMeter(v)
	const charges = 100_000
	start := time.Now()
	for i := 0; i < charges; i++ {
		if err := m.Charge(uint64(i)); err != nil {
			return err
		}
	}
	perCharge := time.Since(start) / charges
	report := m.BuildReport()
	fmt.Fprintf(w, "per-query metering overhead: %v (hash-chained, offline)\n", perCharge)
	fmt.Fprintf(w, "settlement report for %d queries: %d entries, ≈%d B\n\n",
		charges, len(report.Entries), len(report.Entries)*48)

	settler := metering.NewSettler(issuer)
	if rec := settler.Settle(report); !rec.OK {
		return fmt.Errorf("honest settlement rejected: %s", rec.Reason)
	}

	tw := table(w)
	fmt.Fprintln(tw, "attack\tdetected\treason")
	// 1. Replay (rollback to pre-settlement state).
	rec := settler.Settle(report)
	fmt.Fprintf(tw, "replay settled usage\t%v\t%s\n", !rec.OK, rec.Reason)
	// 2. Meter reset (fresh chain).
	m2 := metering.NewMeter(v)
	m2.Charge(1) //nolint:errcheck
	rec = settler.Settle(m2.BuildReport())
	fmt.Fprintf(tw, "reset local meter\t%v\t%s\n", !rec.OK, rec.Reason)
	// 3. Forged voucher (inflated quota).
	forged := v
	forged.Queries = 1 << 40
	m3 := metering.NewMeter(forged)
	m3.Charge(1) //nolint:errcheck
	rec = settler.Settle(m3.BuildReport())
	fmt.Fprintf(tw, "forge voucher quota\t%v\t%s\n", !rec.OK, rec.Reason)
	// 4. Tampered chain entry.
	issuer2, _ := metering.NewIssuer([]byte("e5-vendor-key-0123456789abcdef00"))
	v2, _ := issuer2.Issue("dev-2", "model-1", 100)
	settler2 := metering.NewSettler(issuer2)
	m4 := metering.NewMeter(v2)
	for i := 0; i < 10; i++ {
		m4.Charge(uint64(i)) //nolint:errcheck
	}
	r4 := m4.BuildReport()
	r4.Entries[5].Tick = 999999
	rec = settler2.Settle(r4)
	fmt.Fprintf(tw, "edit usage log entry\t%v\t%s\n", !rec.OK, rec.Reason)
	// 5. Under-report usage.
	r5 := m4.BuildReport()
	r5.Entries = r5.Entries[:7]
	rec = settler2.Settle(r5)
	fmt.Fprintf(tw, "under-report usage\t%v\t%s\n", !rec.OK, rec.Reason)
	// 6. Local over-quota use is denied on-device.
	small, _ := issuer.Issue("dev-3", "model-1", 3)
	m6 := metering.NewMeter(small)
	denied := 0
	for i := 0; i < 5; i++ {
		if err := m6.Charge(uint64(i)); err != nil {
			denied++
		}
	}
	fmt.Fprintf(tw, "offline over-quota use\t%v\tdenied %d/5 locally\n", denied == 2, denied)
	return tw.Flush()
}

// RunE6 sweeps federated learning over non-IID severity, update codecs and
// personalization.
func RunE6(w io.Writer) error {
	rng := tensor.NewRNG(30)
	// Overlapping 5-class clusters: hard enough that client drift under
	// label skew actually costs accuracy.
	ds := dataset.Blobs(rng, 3000, 8, 5, 1.5)
	train, test := ds.Split(0.8, rng)
	newGlobal := func(seed uint64) *nn.Network {
		r := tensor.NewRNG(seed)
		return nn.NewNetwork([]int{8}, nn.NewDense(8, 24, r), nn.NewReLU(), nn.NewDense(24, 5, r))
	}
	centralized := newGlobal(31)
	if _, err := nn.Train(centralized, train.X, train.Y, nn.TrainConfig{
		Epochs: 8, BatchSize: 32, Optimizer: nn.NewSGD(0.1).WithMomentum(0.9), RNG: rng,
	}); err != nil {
		return err
	}
	fmt.Fprintf(w, "centralized upper bound: %.3f test accuracy\n\n", nn.Evaluate(centralized, test.X, test.Y))

	central := nn.Evaluate(centralized, test.X, test.Y)
	target := 0.95 * central
	tw := table(w)
	fmt.Fprintln(tw, "alpha (non-IID)\tskew\tFedAvg r1 acc\trounds→95% of central\tFedProx r1 acc\trounds→95%")
	for _, alpha := range []float64{0.1, 1, 10} {
		prng := tensor.NewRNG(32)
		shards := dataset.PartitionDirichlet(prng, train, 8, alpha)
		skew := dataset.LabelSkew(train, shards)
		row := fmt.Sprintf("%.1f\t%.2f", alpha, skew)
		for _, mu := range []float32{0, 0.1} {
			co, err := fed.NewCoordinator(newGlobal(33), fed.MakeClients(train, shards, "c"),
				test.X, test.Y, fed.Config{
					Rounds: 15, LocalEpochs: 2, LocalBatch: 16, LR: 0.1, Seed: 34, ProximalMu: mu,
				})
			if err != nil {
				return err
			}
			firstRound := -1.0
			reached := -1
			for r := 1; r <= 15; r++ {
				s, err := co.RunRound()
				if err != nil {
					return err
				}
				if r == 1 {
					firstRound = s.TestAccuracy
				}
				if reached < 0 && s.TestAccuracy >= target {
					reached = r
				}
			}
			if reached < 0 {
				row += fmt.Sprintf("\t%.3f\t>15", firstRound)
			} else {
				row += fmt.Sprintf("\t%.3f\t%d", firstRound, reached)
			}
		}
		fmt.Fprintln(tw, row)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nupdate compression (alpha=1, 8 rounds):")
	tw = table(w)
	fmt.Fprintln(tw, "codec\tuplink bytes\treduction\tfinal acc")
	var baseline int64
	for _, codec := range []fed.Codec{fed.NoneCodec{}, fed.Int8Codec{}, fed.TernaryCodec{}, fed.TopKCodec{Ratio: 0.05}} {
		prng := tensor.NewRNG(35)
		shards := dataset.PartitionDirichlet(prng, train, 8, 1)
		co, err := fed.NewCoordinator(newGlobal(36), fed.MakeClients(train, shards, "c"),
			test.X, test.Y, fed.Config{
				Rounds: 8, LocalEpochs: 2, LocalBatch: 16, LR: 0.1, Seed: 37, Codec: codec,
			})
		if err != nil {
			return err
		}
		stats, err := co.Run()
		if err != nil {
			return err
		}
		var up int64
		for _, s := range stats {
			up += s.UplinkBytes
		}
		if baseline == 0 {
			baseline = up
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f×\t%.3f\n", codec.Name(), up,
			float64(baseline)/float64(up), stats[len(stats)-1].TestAccuracy)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Personalization: keyword task with per-user pitch shift.
	fmt.Fprintln(w, "\npersonalization (keyword task, per-user pitch shift):")
	krng := tensor.NewRNG(38)
	kd := dataset.KeywordSeq(krng, 1500, 32, 3, 0.1, 0)
	global := nn.NewNetwork([]int{32}, nn.NewDense(32, 24, krng), nn.NewReLU(), nn.NewDense(24, 3, krng))
	if _, err := nn.Train(global, kd.X, kd.Y, nn.TrainConfig{
		Epochs: 10, BatchSize: 32, Optimizer: nn.NewSGD(0.1).WithMomentum(0.9), RNG: krng,
	}); err != nil {
		return err
	}
	tw = table(w)
	fmt.Fprintln(tw, "user pitch\tglobal acc\tpersonalized acc\tgain")
	for _, shift := range []float32{0.2, 0.35, 0.5} {
		local := dataset.KeywordSeq(krng, 400, 32, 3, 0.1, shift)
		ltrain, ltest := local.Split(0.7, krng)
		before := nn.Evaluate(global, ltest.X, ltest.Y)
		personal, err := fed.Personalize(global, ltrain, fed.PersonalizeConfig{
			FreezeLayers: 2, Epochs: 8, BatchSize: 16, LR: 0.05, RNG: krng,
		})
		if err != nil {
			return err
		}
		after := nn.Evaluate(personal, ltest.X, ltest.Y)
		fmt.Fprintf(tw, "%+.0f%%\t%.3f\t%.3f\t%+.3f\n", shift*100, before, after, after-before)
	}
	return tw.Flush()
}
