package ipprot

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
)

// EncryptedModel is a model artifact sealed for distribution: the payload
// is AES-GCM encrypted under a fresh data key, and the data key is wrapped
// under the vendor key. A device that has been provisioned the vendor key
// (in production: inside its SPE) can unwrap and decrypt; the artifact on
// flash is opaque.
type EncryptedModel struct {
	// WrappedKey is the data key encrypted under the vendor key.
	WrappedKey []byte
	// KeyNonce is the GCM nonce of the wrap.
	KeyNonce []byte
	// Nonce is the GCM nonce of the payload.
	Nonce []byte
	// Ciphertext is the sealed model artifact.
	Ciphertext []byte
	// ModelID binds the blob to a registry version (authenticated data).
	ModelID string
}

// EncryptModel seals artifact bytes for modelID under the vendor key.
func EncryptModel(vendorKey []byte, modelID string, artifact []byte) (*EncryptedModel, error) {
	if len(vendorKey) < 16 {
		return nil, errors.New("ipprot: vendor key must be at least 16 bytes")
	}
	dataKey := make([]byte, 32)
	if _, err := rand.Read(dataKey); err != nil {
		return nil, fmt.Errorf("ipprot: data key: %w", err)
	}
	payloadGCM, err := newGCM(dataKey)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, payloadGCM.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("ipprot: nonce: %w", err)
	}
	ct := payloadGCM.Seal(nil, nonce, artifact, []byte(modelID))

	wrapGCM, err := newGCM(kdf(vendorKey, "model-wrap"))
	if err != nil {
		return nil, err
	}
	keyNonce := make([]byte, wrapGCM.NonceSize())
	if _, err := rand.Read(keyNonce); err != nil {
		return nil, fmt.Errorf("ipprot: key nonce: %w", err)
	}
	wrapped := wrapGCM.Seal(nil, keyNonce, dataKey, []byte(modelID))
	return &EncryptedModel{
		WrappedKey: wrapped, KeyNonce: keyNonce,
		Nonce: nonce, Ciphertext: ct, ModelID: modelID,
	}, nil
}

// DecryptModel unwraps the data key and decrypts the artifact. Any
// tampering — with the ciphertext, the wrapped key or the model binding —
// fails authentication.
func DecryptModel(vendorKey []byte, em *EncryptedModel) ([]byte, error) {
	wrapGCM, err := newGCM(kdf(vendorKey, "model-wrap"))
	if err != nil {
		return nil, err
	}
	dataKey, err := wrapGCM.Open(nil, em.KeyNonce, em.WrappedKey, []byte(em.ModelID))
	if err != nil {
		return nil, fmt.Errorf("ipprot: unwrap data key: %w", err)
	}
	payloadGCM, err := newGCM(dataKey)
	if err != nil {
		return nil, err
	}
	pt, err := payloadGCM.Open(nil, em.Nonce, em.Ciphertext, []byte(em.ModelID))
	if err != nil {
		return nil, fmt.Errorf("ipprot: decrypt model: %w", err)
	}
	return pt, nil
}

func newGCM(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("ipprot: cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("ipprot: gcm: %w", err)
	}
	return gcm, nil
}

// kdf derives a purpose-bound 32-byte key from a root key.
func kdf(root []byte, purpose string) []byte {
	mac := hmac.New(sha256.New, root)
	mac.Write([]byte(purpose))
	return mac.Sum(nil)
}

// keySeed derives a deterministic uint64 stream seed from a string key,
// used by watermark projections, trigger sets and scrambling permutations.
func keySeed(key, purpose string) uint64 {
	sum := sha256.Sum256([]byte(purpose + "\x00" + key))
	var s uint64
	for i := 0; i < 8; i++ {
		s = s<<8 | uint64(sum[i])
	}
	return s
}
