package ipprot

import (
	"math"
)

// PRADA-style stealing-query detection (Juuti et al.): benign clients'
// queries arrive i.i.d. from a natural distribution, so the minimum
// distance of each new query to the previously seen set is approximately
// normally distributed. Extraction attacks synthesize queries by
// perturbing previous ones (line searches, JSMA-style steps), which makes
// those minimum distances collapse toward the perturbation radius and
// destroys normality. The detector tracks the min-distance sample and
// flags when a D'Agostino K² normality statistic exceeds a threshold.

// QueryDetector watches a stream of query feature vectors.
type QueryDetector struct {
	// Window is the number of recent min-distances tested.
	Window int
	// Threshold is the K² statistic above which the stream is flagged
	// (K² is ~χ²₂ under normality; 13.8 ≈ p<0.001).
	Threshold float64
	// MaxStored bounds the reference set (ring buffer of recent queries).
	MaxStored int

	queries  [][]float32
	next     int
	minDists []float64
	seen     int
	exceeds  int
	score    float64
	flagged  bool
}

// detectWarmup is the number of stored queries required before min-
// distances are recorded: with a tiny reference set, nearest-neighbour
// distances are wildly dispersed even for benign traffic.
const detectWarmup = 96

// detectConfirm is the number of consecutive exceedances required to
// latch, controlling the repeated-testing false-positive rate.
const detectConfirm = 2

// NewQueryDetector returns a detector with the given test window and K²
// threshold (use DefaultQueryDetector for standard settings).
func NewQueryDetector(window int, threshold float64, maxStored int) *QueryDetector {
	if window < 16 {
		window = 16
	}
	if maxStored < window {
		maxStored = 4 * window
	}
	return &QueryDetector{Window: window, Threshold: threshold, MaxStored: maxStored}
}

// DefaultQueryDetector uses a 64-query window and a K² threshold of 35.
// Natural min-distance samples are only approximately normal (they are
// mildly skewed), so the textbook χ²₂ p<0.001 level of 13.8 over-fires;
// perturbation attackers produce near-constant min-distances whose K²
// is orders of magnitude above any natural stream, so a loose threshold
// loses no attack sensitivity.
func DefaultQueryDetector() *QueryDetector {
	return NewQueryDetector(64, 35, 512)
}

// Observe consumes one query.
func (d *QueryDetector) Observe(x []float32) {
	if len(d.queries) >= detectWarmup {
		min := math.Inf(1)
		for _, q := range d.queries {
			dist := l2(q, x)
			if dist < min {
				min = dist
			}
		}
		d.minDists = append(d.minDists, min)
		if len(d.minDists) > d.Window {
			d.minDists = d.minDists[len(d.minDists)-d.Window:]
		}
		d.seen++
		// Test on spaced windows and require consecutive exceedances —
		// testing every sample would be a repeated test with an inflated
		// false-positive rate.
		if len(d.minDists) == d.Window && d.seen%(d.Window/2) == 0 {
			d.score = dagostinoK2(d.minDists)
			if d.score > d.Threshold {
				d.exceeds++
				if d.exceeds >= detectConfirm {
					d.flagged = true
				}
			} else {
				d.exceeds = 0
			}
		}
	}
	cp := append([]float32(nil), x...)
	if len(d.queries) < d.MaxStored {
		d.queries = append(d.queries, cp)
	} else {
		d.queries[d.next] = cp
		d.next = (d.next + 1) % d.MaxStored
	}
}

// Flagged reports whether the stream has been identified as an extraction
// attack.
func (d *QueryDetector) Flagged() bool { return d.flagged }

// Score returns the current K² statistic.
func (d *QueryDetector) Score() float64 { return d.score }

// Reset clears all state.
func (d *QueryDetector) Reset() {
	d.queries, d.minDists = nil, nil
	d.next, d.seen, d.exceeds = 0, 0, 0
	d.score, d.flagged = 0, false
}

func l2(a, b []float32) float64 {
	var s float64
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		dd := float64(a[i] - b[i])
		s += dd * dd
	}
	return math.Sqrt(s)
}

// dagostinoK2 computes D'Agostino's K² omnibus normality statistic
// (skewness and kurtosis z-scores squared and summed; ~χ²₂ under the
// normal null).
func dagostinoK2(xs []float64) float64 {
	n := float64(len(xs))
	if n < 20 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= n
	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - mean
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	m2 /= n
	m3 /= n
	m4 /= n
	if m2 <= 1e-18 {
		// Degenerate (all distances identical) — maximally non-normal,
		// exactly the signature of a fixed-step perturbation attacker.
		return math.Inf(1)
	}
	g1 := m3 / math.Pow(m2, 1.5)
	g2 := m4/(m2*m2) - 3

	// Skewness z (D'Agostino 1970).
	y := g1 * math.Sqrt((n+1)*(n+3)/(6*(n-2)))
	b2 := 3 * (n*n + 27*n - 70) * (n + 1) * (n + 3) / ((n - 2) * (n + 5) * (n + 7) * (n + 9))
	wSq := -1 + math.Sqrt(2*(b2-1))
	delta := 1 / math.Sqrt(math.Log(math.Sqrt(wSq)))
	alpha := math.Sqrt(2 / (wSq - 1))
	if y == 0 {
		y = 1e-12
	}
	zSkew := delta * math.Log(y/alpha+math.Sqrt((y/alpha)*(y/alpha)+1))

	// Kurtosis z (Anscombe & Glynn 1983).
	meanB2 := 3 * (n - 1) / (n + 1)
	varB2 := 24 * n * (n - 2) * (n - 3) / ((n + 1) * (n + 1) * (n + 3) * (n + 5))
	xk := (g2 + 3 - meanB2) / math.Sqrt(varB2)
	beta := 6 * (n*n - 5*n + 2) / ((n + 7) * (n + 9)) * math.Sqrt(6*(n+3)*(n+5)/(n*(n-2)*(n-3)))
	a := 6 + 8/beta*(2/beta+math.Sqrt(1+4/(beta*beta)))
	t := (1 - 2/(9*a))
	u := (1 - 2/a) / (1 + xk*math.Sqrt(2/(a-4)))
	if u <= 0 {
		u = 1e-12
	}
	zKurt := (t - math.Cbrt(u)) / math.Sqrt(2/(9*a))

	return zSkew*zSkew + zKurt*zKurt
}
