package ipprot

import (
	"fmt"

	"tinymlops/internal/dataset"
	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

// Static (white-box) watermarking after Uchida et al.: a secret projection
// matrix X (derived from the owner key) maps the flattened weights w of a
// carrier layer to capacity logits; embedding nudges w so that
// sigmoid(X·w) reproduces the owner's bit string, extraction recomputes
// X·w and thresholds at zero. Verification requires white-box access to
// the weights — the trade-off §V describes for static schemes.

// StaticWMConfig controls embedding strength.
type StaticWMConfig struct {
	// Layer selects which dense layer's weights carry the mark (index
	// among the network's dense layers, not all layers).
	Layer int
	// Steps and LR drive the embedding optimization.
	Steps int
	LR    float32
	// Lambda penalizes distance from the original weights (fidelity).
	Lambda float32
	// Margin is the minimum |X·w| each bit is driven to; larger margins
	// survive more post-hoc distortion (pruning, fine-tuning) at a larger
	// fidelity cost — the E8 robustness knob.
	Margin float32
}

// DefaultStaticWMConfig returns embedding defaults good for the
// experiment scales in this repository. The step budget is generous:
// embedding stops early as soon as every bit clears the margin, so the
// cap only matters for high capacity-to-carrier ratios.
func DefaultStaticWMConfig() StaticWMConfig {
	return StaticWMConfig{Layer: 0, Steps: 4000, LR: 0.05, Lambda: 0.005, Margin: 2}
}

// denseLayers returns the dense layers of a network in order.
func denseLayers(net *nn.Network) []*nn.Dense {
	var out []*nn.Dense
	for _, l := range net.Layers() {
		if d, ok := l.(*nn.Dense); ok {
			out = append(out, d)
		}
	}
	return out
}

// projection builds the capacity×n secret matrix from the owner key.
func projection(key string, capacity, n int) *tensor.Tensor {
	rng := tensor.NewRNG(keySeed(key, "static-wm"))
	return tensor.Randn(rng, 1, capacity, n)
}

// EmbedStatic embeds bits into net's carrier layer in place. The embedding
// minimizes binary cross-entropy of sigmoid(X·w) against the bits plus
// λ‖w−w₀‖², so fidelity degrades gracefully as capacity grows (the E8
// trade-off).
func EmbedStatic(net *nn.Network, key string, bits []bool, cfg StaticWMConfig) error {
	if len(bits) == 0 {
		return fmt.Errorf("ipprot: empty watermark")
	}
	dl := denseLayers(net)
	if cfg.Layer < 0 || cfg.Layer >= len(dl) {
		return fmt.Errorf("ipprot: carrier layer %d out of range (%d dense layers)", cfg.Layer, len(dl))
	}
	w := dl[cfg.Layer].W.Value
	n := w.Size()
	if len(bits) > n/2 {
		return fmt.Errorf("ipprot: capacity %d too large for %d weights", len(bits), n)
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 4000
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.05
	}
	if cfg.Margin <= 0 {
		cfg.Margin = 2
	}
	x := projection(key, len(bits), n)
	w0 := append([]float32(nil), w.Data...)
	sign := make([]float32, len(bits))
	for i, b := range bits {
		if b {
			sign[i] = 1
		} else {
			sign[i] = -1
		}
	}
	grad := make([]float32, n)
	for step := 0; step < cfg.Steps; step++ {
		for i := range grad {
			grad[i] = 2 * cfg.Lambda * (w.Data[i] - w0[i])
		}
		// Hinge on each bit: push s·(X·w) past the margin.
		satisfied := 0
		for r := 0; r < len(bits); r++ {
			row := x.Data[r*n : (r+1)*n]
			var dot float64
			for i, wi := range w.Data {
				dot += float64(row[i]) * float64(wi)
			}
			if float32(dot)*sign[r] >= cfg.Margin {
				satisfied++
				continue
			}
			scale := sign[r] / float32(len(bits))
			for i, xi := range row {
				grad[i] -= scale * xi
			}
		}
		if satisfied == len(bits) {
			return nil
		}
		for i := range w.Data {
			w.Data[i] -= cfg.LR * grad[i]
		}
	}
	// Verify the mark actually took; with a sane capacity this converges
	// long before Steps runs out.
	got, err := ExtractStatic(net, key, len(bits), cfg)
	if err != nil {
		return err
	}
	if BitErrorRate(bits, got) > 0 {
		return fmt.Errorf("ipprot: embedding did not converge in %d steps (capacity %d)", cfg.Steps, len(bits))
	}
	return nil
}

// ExtractStatic reads capacity bits back from the carrier layer with
// white-box access.
func ExtractStatic(net *nn.Network, key string, capacity int, cfg StaticWMConfig) ([]bool, error) {
	dl := denseLayers(net)
	if cfg.Layer < 0 || cfg.Layer >= len(dl) {
		return nil, fmt.Errorf("ipprot: carrier layer %d out of range (%d dense layers)", cfg.Layer, len(dl))
	}
	w := dl[cfg.Layer].W.Value
	n := w.Size()
	x := projection(key, capacity, n)
	out := make([]bool, capacity)
	for r := 0; r < capacity; r++ {
		row := x.Data[r*n : (r+1)*n]
		var dot float64
		for i, wi := range w.Data {
			dot += float64(row[i]) * float64(wi)
		}
		out[r] = dot > 0
	}
	return out, nil
}

// BitErrorRate compares an extracted mark against the original.
func BitErrorRate(want, got []bool) float64 {
	if len(want) == 0 || len(want) != len(got) {
		return 1
	}
	errs := 0
	for i := range want {
		if want[i] != got[i] {
			errs++
		}
	}
	return float64(errs) / float64(len(want))
}

// KeyedBits derives an owner's watermark payload deterministically from a
// key — what the registry tags each customer's variant with (§V: "keep
// track of the different versions of the model to associate different
// watermarks with different users").
func KeyedBits(key string, n int) []bool {
	rng := tensor.NewRNG(keySeed(key, "wm-payload"))
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Float64() < 0.5
	}
	return out
}

// Dynamic (black-box) watermarking: the model is fine-tuned to produce
// owner-chosen labels on a secret trigger set of out-of-distribution
// inputs. Ownership is verified by querying the suspect model — no weight
// access needed — at the cost of a training-time intervention.

// TriggerSet is the secret (inputs, labels) pair.
type TriggerSet struct {
	X *tensor.Tensor
	Y []int
}

// NewTriggerSet derives k out-of-distribution trigger examples and labels
// from the owner key.
func NewTriggerSet(key string, k int, inputShape []int, numClasses int) TriggerSet {
	rng := tensor.NewRNG(keySeed(key, "trigger-set"))
	shape := append([]int{k}, inputShape...)
	x := tensor.RandUniform(rng, -4, 4, shape...)
	y := make([]int, k)
	for i := range y {
		y[i] = rng.Intn(numClasses)
	}
	return TriggerSet{X: x, Y: y}
}

// EmbedDynamic fine-tunes net on a mixture of its training data and the
// trigger set (triggers oversampled) so trigger recall becomes near-
// perfect while task accuracy is retained.
func EmbedDynamic(net *nn.Network, triggers TriggerSet, trainX *tensor.Tensor, trainY []int, epochs int, rng *tensor.RNG) error {
	if epochs <= 0 {
		epochs = 5
	}
	n := trainX.Dim(0)
	k := triggers.X.Dim(0)
	es := trainX.Size() / n
	// Mixture: all training data + triggers repeated to ~20% of the data.
	repeat := n / (5 * k)
	if repeat < 1 {
		repeat = 1
	}
	total := n + repeat*k
	shape := append([]int{total}, trainX.Shape()[1:]...)
	mx := tensor.New(shape...)
	my := make([]int, total)
	copy(mx.Data[:n*es], trainX.Data)
	copy(my[:n], trainY)
	for r := 0; r < repeat; r++ {
		off := n + r*k
		copy(mx.Data[off*es:(off+k)*es], triggers.X.Data)
		copy(my[off:off+k], triggers.Y)
	}
	_, err := nn.Train(net, mx, my, nn.TrainConfig{
		Epochs: epochs, BatchSize: 32,
		Optimizer: nn.NewSGD(0.05).WithMomentum(0.9), RNG: rng,
	})
	return err
}

// VerifyDynamic returns the suspect model's accuracy on the trigger set —
// black-box ownership evidence when it far exceeds chance.
func VerifyDynamic(net *nn.Network, triggers TriggerSet) float64 {
	return nn.Evaluate(net, triggers.X, triggers.Y)
}

// FineTuneAttack simulates an adversary trying to wash out a watermark by
// fine-tuning the stolen model on their own (smaller) dataset.
func FineTuneAttack(net *nn.Network, ds *dataset.Dataset, epochs int, lr float32, rng *tensor.RNG) error {
	_, err := nn.Train(net, ds.X, ds.Y, nn.TrainConfig{
		Epochs: epochs, BatchSize: 32, Optimizer: nn.NewSGD(lr), RNG: rng,
	})
	return err
}
