// Package ipprot implements the model intellectual-property protections
// of §V: encryption at rest with per-model wrapped keys (the
// OpenVINO/CoreML mechanism the paper cites), static white-box
// watermarking (Uchida-style projection embedding), dynamic black-box
// watermarking (trigger sets), the indirect model-stealing attack itself
// (student-teacher extraction against a black-box API) with the
// prediction-poisoning defenses the paper lists (rounding, top-1, noise,
// deceptive perturbation), a PRADA-style stealing-query detector, and
// key-gated weight scrambling (ref [83]).
//
// The paper's premise is that shipping a model to the edge hands the
// bytes to the adversary: unlike a cloud API, the attacker holds the
// flash image, so protection layers — encryption against copying,
// watermarks against laundering, poisoning against extraction — have to
// survive on untrusted hardware. The platform applies these per
// deployment: every customer's copy carries its own mark (see
// core.DeployConfig.Watermark), which is also why watermarked
// deployments opt out of bit-exact machinery like delta updates and
// split execution.
package ipprot
