package ipprot

import (
	"bytes"
	"math"
	"testing"

	"tinymlops/internal/dataset"
	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

var vendorKey = []byte("vendor-master-key-0123456789abcdef")

func TestEncryptDecryptRoundTrip(t *testing.T) {
	artifact := bytes.Repeat([]byte("model-bytes"), 100)
	em, err := EncryptModel(vendorKey, "m-1", artifact)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(em.Ciphertext, []byte("model-bytes")) {
		t.Fatal("ciphertext leaks plaintext")
	}
	got, err := DecryptModel(vendorKey, em)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, artifact) {
		t.Fatal("decryption mismatch")
	}
}

func TestDecryptRejectsTamperingAndWrongKey(t *testing.T) {
	em, _ := EncryptModel(vendorKey, "m-1", []byte("artifact"))
	bad := *em
	bad.Ciphertext = append([]byte(nil), em.Ciphertext...)
	bad.Ciphertext[0] ^= 1
	if _, err := DecryptModel(vendorKey, &bad); err == nil {
		t.Fatal("tampered ciphertext decrypted")
	}
	if _, err := DecryptModel([]byte("wrong-key-0123456789abcdef"), em); err == nil {
		t.Fatal("wrong vendor key decrypted")
	}
	rebound := *em
	rebound.ModelID = "m-2"
	if _, err := DecryptModel(vendorKey, &rebound); err == nil {
		t.Fatal("model-ID rebinding accepted")
	}
	if _, err := EncryptModel([]byte("short"), "m", []byte("x")); err == nil {
		t.Fatal("short vendor key accepted")
	}
}

// victimFixture trains a small classifier for watermark/extraction tests.
func victimFixture(t *testing.T, seed uint64) (*nn.Network, *dataset.Dataset) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	ds := dataset.Blobs(rng, 900, 6, 3, 4)
	net := nn.NewNetwork([]int{6},
		nn.NewDense(6, 32, rng), nn.NewReLU(),
		nn.NewDense(32, 3, rng))
	if _, err := nn.Train(net, ds.X, ds.Y, nn.TrainConfig{
		Epochs: 10, BatchSize: 32, Optimizer: nn.NewSGD(0.1).WithMomentum(0.9), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	return net, ds
}

func TestStaticWatermarkEmbedExtract(t *testing.T) {
	net, ds := victimFixture(t, 1)
	accBefore := nn.Evaluate(net, ds.X, ds.Y)
	bits := KeyedBits("owner-alice", 64)
	cfg := DefaultStaticWMConfig()
	if err := EmbedStatic(net, "owner-alice", bits, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := ExtractStatic(net, "owner-alice", 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ber := BitErrorRate(bits, got); ber != 0 {
		t.Fatalf("BER after embedding = %v, want 0", ber)
	}
	// Fidelity: task accuracy barely moves.
	accAfter := nn.Evaluate(net, ds.X, ds.Y)
	if accBefore-accAfter > 0.03 {
		t.Fatalf("watermark cost %.3f accuracy", accBefore-accAfter)
	}
	// Wrong key extracts noise (≈50% BER).
	wrong, _ := ExtractStatic(net, "owner-eve", 64, cfg)
	if ber := BitErrorRate(bits, wrong); ber < 0.25 {
		t.Fatalf("wrong-key BER = %v, should be near 0.5", ber)
	}
}

func TestStaticWatermarkRobustToModeratePruning(t *testing.T) {
	net, _ := victimFixture(t, 2)
	bits := KeyedBits("owner", 32)
	cfg := DefaultStaticWMConfig()
	if err := EmbedStatic(net, "owner", bits, cfg); err != nil {
		t.Fatal(err)
	}
	// Add small noise (fine-tuning-like distortion).
	w := net.Layers()[0].(*nn.Dense).W.Value
	rng := tensor.NewRNG(3)
	for i := range w.Data {
		w.Data[i] += rng.NormFloat32() * 0.01
	}
	got, _ := ExtractStatic(net, "owner", 32, cfg)
	if ber := BitErrorRate(bits, got); ber > 0.1 {
		t.Fatalf("BER after small noise = %v", ber)
	}
}

func TestStaticWatermarkValidation(t *testing.T) {
	net, _ := victimFixture(t, 4)
	if err := EmbedStatic(net, "k", nil, DefaultStaticWMConfig()); err == nil {
		t.Fatal("empty watermark accepted")
	}
	cfg := DefaultStaticWMConfig()
	cfg.Layer = 9
	if err := EmbedStatic(net, "k", KeyedBits("k", 8), cfg); err == nil {
		t.Fatal("bad layer index accepted")
	}
	huge := KeyedBits("k", 10000)
	if err := EmbedStatic(net, "k", huge, DefaultStaticWMConfig()); err == nil {
		t.Fatal("over-capacity watermark accepted")
	}
}

func TestBitErrorRateEdgeCases(t *testing.T) {
	if BitErrorRate(nil, nil) != 1 {
		t.Fatal("empty comparison should be 1 (no evidence)")
	}
	if BitErrorRate([]bool{true}, []bool{true, false}) != 1 {
		t.Fatal("length mismatch should be 1")
	}
	if BitErrorRate([]bool{true, false}, []bool{true, true}) != 0.5 {
		t.Fatal("half-wrong should be 0.5")
	}
}

func TestDynamicWatermark(t *testing.T) {
	net, ds := victimFixture(t, 5)
	accBefore := nn.Evaluate(net, ds.X, ds.Y)
	triggers := NewTriggerSet("owner-alice", 30, []int{6}, 3)
	rng := tensor.NewRNG(6)
	if err := EmbedDynamic(net, triggers, ds.X, ds.Y, 6, rng); err != nil {
		t.Fatal(err)
	}
	if rec := VerifyDynamic(net, triggers); rec < 0.9 {
		t.Fatalf("trigger recall = %v, want ≥0.9", rec)
	}
	if acc := nn.Evaluate(net, ds.X, ds.Y); accBefore-acc > 0.05 {
		t.Fatalf("dynamic watermark cost %.3f accuracy", accBefore-acc)
	}
	// An innocent model shows only chance-level trigger recall.
	innocent, _ := victimFixture(t, 7)
	if rec := VerifyDynamic(innocent, triggers); rec > 0.7 {
		t.Fatalf("innocent model trigger recall %v — false ownership claim", rec)
	}
	// Different owners get different trigger sets.
	other := NewTriggerSet("owner-bob", 30, []int{6}, 3)
	if tensor.ApproxEqual(triggers.X, other.X, 1e-6) {
		t.Fatal("trigger sets should differ across keys")
	}
}

func TestExtractionAttackImprovesWithBudget(t *testing.T) {
	victim, ds := victimFixture(t, 8)
	bb := ModelBlackBox(victim)
	rng := tensor.NewRNG(9)
	eval := ds.X.RowSlice(0, 300)

	cloneAt := func(budget int) float64 {
		student := nn.NewNetwork([]int{6},
			nn.NewDense(6, 32, rng), nn.NewReLU(), nn.NewDense(32, 3, rng))
		q := ds.X.RowSlice(300, 300+budget)
		if _, err := Extract(bb, student, q, ExtractConfig{Epochs: 20, LR: 0.05, RNG: rng}); err != nil {
			t.Fatal(err)
		}
		return Agreement(bb, ModelBlackBox(student), eval)
	}
	small := cloneAt(40)
	large := cloneAt(500)
	if large < 0.85 {
		t.Fatalf("500-query clone agreement %v, extraction should succeed", large)
	}
	if large <= small-0.02 {
		t.Fatalf("agreement did not improve with budget: %v -> %v", small, large)
	}
}

func TestDefensesPreserveUserAnswer(t *testing.T) {
	victim, ds := victimFixture(t, 10)
	bb := ModelBlackBox(victim)
	x := ds.X.RowSlice(0, 100)
	truth := bb(x).ArgMaxRows()
	rng := tensor.NewRNG(11)
	for _, d := range []Defense{RoundDefense{1}, Top1Defense{}, NoiseDefense{Std: 0.05, RNG: rng}, DeceptiveDefense{}} {
		probs := Defend(bb, d)(x)
		rows, cols := probs.Dim(0), probs.Dim(1)
		for i := 0; i < rows; i++ {
			var s float32
			for j := 0; j < cols; j++ {
				v := probs.At2(i, j)
				if v < 0 {
					t.Fatalf("%s produced negative probability", d.Name())
				}
				s += v
			}
			if math.Abs(float64(s)-1) > 1e-3 {
				t.Fatalf("%s row sums to %v", d.Name(), s)
			}
		}
		got := probs.ArgMaxRows()
		same := 0
		for i := range got {
			if got[i] == truth[i] {
				same++
			}
		}
		// Rounding can tie-break differently on near-uniform rows; demand
		// ≥95% argmax preservation.
		if float64(same)/float64(len(got)) < 0.95 {
			t.Fatalf("%s changed the user-visible answer on %d/100 inputs", d.Name(), 100-same)
		}
	}
}

func TestDeceptiveDefensePoisonsCloneProbabilities(t *testing.T) {
	victim, ds := victimFixture(t, 12)
	bb := ModelBlackBox(victim)
	eval := ds.X.RowSlice(0, 200)
	queries := ds.X.RowSlice(200, 700)

	trainClone := func(b BlackBox, seed uint64) *nn.Network {
		rng := tensor.NewRNG(seed)
		student := nn.NewNetwork([]int{6},
			nn.NewDense(6, 32, rng), nn.NewReLU(), nn.NewDense(32, 3, rng))
		if _, err := Extract(b, student, queries, ExtractConfig{Epochs: 15, LR: 0.05, RNG: rng}); err != nil {
			t.Fatal(err)
		}
		return student
	}
	honest := trainClone(bb, 13)
	poisoned := trainClone(Defend(bb, DeceptiveDefense{}), 13)

	l1 := func(net *nn.Network) float64 {
		vp := bb(eval)
		sp := nn.SoftmaxRows(net.Predict(eval))
		var s float64
		for i := range vp.Data {
			s += math.Abs(float64(vp.Data[i] - sp.Data[i]))
		}
		return s / float64(vp.Dim(0))
	}
	if l1(poisoned) <= l1(honest) {
		t.Fatalf("deceptive defense did not increase clone divergence: %v vs %v", l1(poisoned), l1(honest))
	}
}

func TestQueryDetectorBenignVsAttack(t *testing.T) {
	rng := tensor.NewRNG(14)
	ds := dataset.Blobs(rng, 2000, 6, 3, 4)
	det := DefaultQueryDetector()
	// Benign stream: i.i.d. natural queries.
	for i := 0; i < 600; i++ {
		row := make([]float32, 6)
		for f := 0; f < 6; f++ {
			row[f] = ds.X.At2(rng.Intn(ds.Len()), f)
		}
		det.Observe(row)
	}
	if det.Flagged() {
		t.Fatalf("benign stream flagged (K²=%v)", det.Score())
	}
	// Attack stream: perturbation-based synthetic queries (fixed-radius
	// steps off previous queries, PRADA's adversary model).
	det.Reset()
	seed := make([]float32, 6)
	for i := 0; i < 600 && !det.Flagged(); i++ {
		q := make([]float32, 6)
		if i%10 == 0 {
			for f := range q {
				q[f] = ds.X.At2(rng.Intn(ds.Len()), f)
			}
			copy(seed, q)
		} else {
			copy(q, seed)
			f := rng.Intn(6)
			q[f] += 0.01 // tiny deterministic-radius step
		}
		det.Observe(q)
	}
	if !det.Flagged() {
		t.Fatalf("perturbation attack not flagged (K²=%v)", det.Score())
	}
}

func TestQueryDetectorReset(t *testing.T) {
	det := DefaultQueryDetector()
	det.Observe([]float32{1, 2})
	det.Observe([]float32{1, 2})
	det.Reset()
	if det.Flagged() || det.Score() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestScrambleBreaksAndUnscrambleRestores(t *testing.T) {
	net, ds := victimFixture(t, 15)
	accOrig := nn.Evaluate(net, ds.X, ds.Y)
	original := net.Clone()

	if err := ScrambleNetwork(net, "the-right-key"); err != nil {
		t.Fatal(err)
	}
	accScrambled := nn.Evaluate(net, ds.X, ds.Y)
	if accScrambled > accOrig-0.2 {
		t.Fatalf("scrambling barely hurt: %v -> %v", accOrig, accScrambled)
	}
	// Wrong key does not restore.
	wrong := net.Clone()
	if err := UnscrambleNetwork(wrong, "the-wrong-key"); err != nil {
		t.Fatal(err)
	}
	if acc := nn.Evaluate(wrong, ds.X, ds.Y); acc > accOrig-0.15 {
		t.Fatalf("wrong key restored accuracy: %v", acc)
	}
	// Right key restores bit-exactly.
	if err := UnscrambleNetwork(net, "the-right-key"); err != nil {
		t.Fatal(err)
	}
	for i, p := range net.Params() {
		if !tensor.ApproxEqual(p.Value, original.Params()[i].Value, 0) {
			t.Fatalf("param %d not exactly restored", i)
		}
	}
	if acc := nn.Evaluate(net, ds.X, ds.Y); acc != accOrig {
		t.Fatalf("accuracy after unscramble %v != %v", acc, accOrig)
	}
}

func TestScrambleRequiresDenseLayers(t *testing.T) {
	net := nn.NewNetwork([]int{4}, nn.NewReLU())
	if err := ScrambleNetwork(net, "k"); err == nil {
		t.Fatal("scrambled a network without dense layers")
	}
}

func TestKeyedBitsDeterministicAndKeyed(t *testing.T) {
	a := KeyedBits("alice", 64)
	b := KeyedBits("alice", 64)
	c := KeyedBits("bob", 64)
	same := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("KeyedBits not deterministic")
		}
		if a[i] == c[i] {
			same++
		}
	}
	if same > 52 || same < 12 {
		t.Fatalf("different keys agree on %d/64 bits", same)
	}
}

func TestExtractValidation(t *testing.T) {
	victim, ds := victimFixture(t, 16)
	student := victim.Clone()
	if _, err := Extract(ModelBlackBox(victim), student, ds.X, ExtractConfig{}); err == nil {
		t.Fatal("missing RNG accepted")
	}
}
