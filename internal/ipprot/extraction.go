package ipprot

import (
	"fmt"
	"math"

	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

// BlackBox is the attacker's view of a deployed model: probability rows
// for a batch of inputs. On the edge this interface is *free* to call —
// the paper's core observation that extraction is far cheaper against
// edge deployments than against rate-limited cloud APIs.
type BlackBox func(x *tensor.Tensor) *tensor.Tensor

// ModelBlackBox wraps a network as an (undefended) black box.
func ModelBlackBox(net *nn.Network) BlackBox {
	return func(x *tensor.Tensor) *tensor.Tensor {
		return nn.SoftmaxRows(net.Predict(x))
	}
}

// Defense perturbs the probability vector returned to the caller —
// prediction poisoning (§V).
type Defense interface {
	// Name identifies the defense in experiment tables.
	Name() string
	// Apply transforms one batch of probability rows (may modify in
	// place and must return row-stochastic output).
	Apply(probs *tensor.Tensor) *tensor.Tensor
}

// Defend wraps a black box with a defense.
func Defend(bb BlackBox, d Defense) BlackBox {
	return func(x *tensor.Tensor) *tensor.Tensor {
		return d.Apply(bb(x))
	}
}

// NoDefense returns probabilities untouched.
type NoDefense struct{}

// Name implements Defense.
func (NoDefense) Name() string { return "none" }

// Apply implements Defense.
func (NoDefense) Apply(p *tensor.Tensor) *tensor.Tensor { return p }

// RoundDefense rounds probabilities to Decimals digits (Tramèr et al.'s
// simplest mitigation) and renormalizes.
type RoundDefense struct{ Decimals int }

// Name implements Defense.
func (d RoundDefense) Name() string { return fmt.Sprintf("round(%d)", d.Decimals) }

// Apply implements Defense.
func (d RoundDefense) Apply(p *tensor.Tensor) *tensor.Tensor {
	scale := math.Pow(10, float64(d.Decimals))
	out := p.Map(func(v float32) float32 {
		return float32(math.Round(float64(v)*scale) / scale)
	})
	renormalizeRows(out)
	return out
}

// Top1Defense returns only the argmax as a one-hot vector — the hard-label
// API.
type Top1Defense struct{}

// Name implements Defense.
func (Top1Defense) Name() string { return "top1" }

// Apply implements Defense.
func (Top1Defense) Apply(p *tensor.Tensor) *tensor.Tensor {
	rows, cols := p.Dim(0), p.Dim(1)
	out := tensor.New(rows, cols)
	for i, j := range p.ArgMaxRows() {
		out.Set2(i, j, 1)
	}
	return out
}

// NoiseDefense adds zero-mean noise and renormalizes, preserving the
// argmax so the *user's* answer quality is retained while gradients
// toward a clone are disturbed.
type NoiseDefense struct {
	Std float32
	RNG *tensor.RNG
}

// Name implements Defense.
func (d NoiseDefense) Name() string { return fmt.Sprintf("noise(%.2g)", d.Std) }

// Apply implements Defense.
func (d NoiseDefense) Apply(p *tensor.Tensor) *tensor.Tensor {
	rows, cols := p.Dim(0), p.Dim(1)
	out := p.Clone()
	for i := 0; i < rows; i++ {
		arg := 0
		best := out.At2(i, 0)
		for j := 1; j < cols; j++ {
			if out.At2(i, j) > best {
				best, arg = out.At2(i, j), j
			}
		}
		for j := 0; j < cols; j++ {
			v := out.At2(i, j) + d.RNG.NormFloat32()*d.Std
			if v < 1e-6 {
				v = 1e-6
			}
			out.Set2(i, j, v)
		}
		// Preserve the argmax by construction.
		maxOther := float32(0)
		for j := 0; j < cols; j++ {
			if j != arg && out.At2(i, j) > maxOther {
				maxOther = out.At2(i, j)
			}
		}
		if out.At2(i, arg) <= maxOther {
			out.Set2(i, arg, maxOther+0.05)
		}
	}
	renormalizeRows(out)
	return out
}

// DeceptiveDefense is a MAD-lite perturbation (after Orekondy et al.'s
// prediction poisoning): it keeps the argmax but redistributes the
// remaining mass toward the *least* likely classes, so the soft labels
// actively misguide a distillation-style clone.
type DeceptiveDefense struct{}

// Name implements Defense.
func (DeceptiveDefense) Name() string { return "deceptive" }

// Apply implements Defense.
func (DeceptiveDefense) Apply(p *tensor.Tensor) *tensor.Tensor {
	rows, cols := p.Dim(0), p.Dim(1)
	out := tensor.New(rows, cols)
	for i := 0; i < rows; i++ {
		arg := 0
		best := p.At2(i, 0)
		var rest float32
		for j := 1; j < cols; j++ {
			if p.At2(i, j) > best {
				best, arg = p.At2(i, j), j
			}
		}
		for j := 0; j < cols; j++ {
			if j != arg {
				rest += p.At2(i, j)
			}
		}
		// Invert the non-argmax ranking: class with smallest true prob
		// receives the largest share of the non-argmax mass.
		var invSum float32
		for j := 0; j < cols; j++ {
			if j != arg {
				invSum += 1 - p.At2(i, j)
			}
		}
		out.Set2(i, arg, best)
		for j := 0; j < cols; j++ {
			if j == arg {
				continue
			}
			share := float32(0)
			if invSum > 0 {
				share = (1 - p.At2(i, j)) / invSum
			}
			out.Set2(i, j, rest*share)
		}
	}
	renormalizeRows(out)
	return out
}

func renormalizeRows(p *tensor.Tensor) {
	rows, cols := p.Dim(0), p.Dim(1)
	for i := 0; i < rows; i++ {
		var s float32
		row := p.Data[i*cols : (i+1)*cols]
		for _, v := range row {
			s += v
		}
		if s <= 0 {
			for j := range row {
				row[j] = 1 / float32(cols)
			}
			continue
		}
		for j := range row {
			row[j] /= s
		}
	}
}

// ExtractConfig controls the student-teacher extraction attack.
type ExtractConfig struct {
	Epochs    int
	BatchSize int
	LR        float32
	RNG       *tensor.RNG
}

// Extract trains student to mimic the black box on the attacker's query
// set using soft-label cross-entropy — indirect model stealing. It returns
// the number of queries spent (one per example per epoch is *not* charged:
// the attacker caches responses, so queries = len(queryX), matching the
// edge-deployment threat model where querying is local and free anyway).
func Extract(bb BlackBox, student *nn.Network, queryX *tensor.Tensor, cfg ExtractConfig) (int, error) {
	if cfg.RNG == nil {
		return 0, fmt.Errorf("ipprot: ExtractConfig.RNG is required")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.05
	}
	n := queryX.Dim(0)
	es := queryX.Size() / n
	probs := bb(queryX) // one pass over the query budget, cached
	opt := nn.NewSGD(cfg.LR).WithMomentum(0.9)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := cfg.RNG.Perm(n)
		for lo := 0; lo < n; lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > n {
				hi = n
			}
			idx := perm[lo:hi]
			bshape := append([]int{len(idx)}, queryX.Shape()[1:]...)
			bx := tensor.New(bshape...)
			bt := tensor.New(len(idx), probs.Dim(1))
			for i, src := range idx {
				copy(bx.Data[i*es:(i+1)*es], queryX.Data[src*es:(src+1)*es])
				copy(bt.Data[i*probs.Dim(1):(i+1)*probs.Dim(1)], probs.Data[src*probs.Dim(1):(src+1)*probs.Dim(1)])
			}
			student.ZeroGrad()
			logits := student.Forward(bx, true)
			sp := nn.SoftmaxRows(logits)
			// Soft cross-entropy gradient: (softmax(student) − teacher)/batch.
			grad := tensor.Sub(sp, bt)
			grad.Scale(1 / float32(len(idx)))
			student.Backward(grad)
			opt.Step(student.Params())
		}
	}
	return n, nil
}

// Agreement returns the fraction of inputs on which two black boxes give
// the same argmax — the standard clone-quality metric.
func Agreement(a, b BlackBox, x *tensor.Tensor) float64 {
	pa := a(x).ArgMaxRows()
	pb := b(x).ArgMaxRows()
	same := 0
	for i := range pa {
		if pa[i] == pb[i] {
			same++
		}
	}
	if len(pa) == 0 {
		return 0
	}
	return float64(same) / float64(len(pa))
}
