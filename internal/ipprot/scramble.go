package ipprot

import (
	"fmt"

	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

// Key-gated weight scrambling (after "chaotic weights" / hardware-assisted
// key locking, §V refs [82][83]): before distribution, every dense layer's
// output channels are permuted with a key-derived permutation, and biases
// with them — but the *next* layer is left expecting the original order,
// so the distributed artifact computes garbage. Unscrambling with the
// correct key restores the exact original network; any other key yields
// another broken permutation. This gives the model "a secret key to
// operate at its full potential".

// ScrambleNetwork permutes each dense layer's output channels (weights and
// bias) in place with permutations derived from key. Call Unscramble with
// the same key to restore.
func ScrambleNetwork(net *nn.Network, key string) error {
	return applyScramble(net, key, false)
}

// UnscrambleNetwork inverts ScrambleNetwork under the same key.
func UnscrambleNetwork(net *nn.Network, key string) error {
	return applyScramble(net, key, true)
}

func applyScramble(net *nn.Network, key string, invert bool) error {
	dl := denseLayers(net)
	if len(dl) == 0 {
		return fmt.Errorf("ipprot: network has no dense layers to scramble")
	}
	rng := tensor.NewRNG(keySeed(key, "scramble"))
	for li, d := range dl {
		perm := rng.Perm(d.Out)
		if li == len(dl)-1 {
			// Leave the final layer intact so the output space stays
			// labeled correctly — the damage comes from inter-layer
			// mismatch, mirroring the cited schemes which scramble the
			// hidden representation.
			continue
		}
		p := perm
		if invert {
			p = invertPerm(perm)
		}
		permuteColumns(d.W.Value, p)
		permuteVector(d.B.Value, p)
	}
	return nil
}

func invertPerm(p []int) []int {
	inv := make([]int, len(p))
	for i, v := range p {
		inv[v] = i
	}
	return inv
}

// permuteColumns reorders matrix columns: out column p[j] receives source
// column j.
func permuteColumns(w *tensor.Tensor, p []int) {
	rows, cols := w.Dim(0), w.Dim(1)
	tmp := make([]float32, cols)
	for r := 0; r < rows; r++ {
		row := w.Data[r*cols : (r+1)*cols]
		for j, dst := range p {
			tmp[dst] = row[j]
		}
		copy(row, tmp)
	}
}

func permuteVector(v *tensor.Tensor, p []int) {
	tmp := make([]float32, v.Size())
	for j, dst := range p {
		tmp[dst] = v.Data[j]
	}
	copy(v.Data, tmp)
}
