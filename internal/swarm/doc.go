// Package swarm implements peer-to-peer OTA artifact distribution: the
// device-to-device dissemination mode that keeps vendor registry egress
// ~flat as the fleet grows, instead of linear in fleet size.
//
// An artifact — a registry image or an encoded weight delta — is split by
// a Manifest into fixed-size SHA-256-hashed chunks with a canonical wire
// codec, and a Reassembler verifies every chunk on receipt (duplicates,
// truncations, reorderings and corrupt chunks are rejected, never
// mis-assembled). The Swarm coordinator tracks which devices hold which
// artifact per rollout wave: devices that complete an update register as
// pending seeders, wave promotion freezes them into a sorted active set,
// and the next wave's devices fetch chunks from SeedForID-assigned peers
// with the registry serving only the canary wave and acting as seeder of
// last resort. Transfers reuse the device staging-slot discipline, so a
// swarm transfer interrupted mid-chunk resumes from the exact byte and
// every byte is downloaded and flashed exactly once — the Stats ledger
// proves byte conservation (registry egress + peer bytes == delivered
// bytes), which the fault auditor checks at the end of every chaos run.
//
// The swarm moves the canonical plaintext artifact bytes (chunks are
// content-addressed, so every source must serve identical bytes); the
// envelope encryption used on registry-direct transfers is a vendor-link
// concern and does not apply between peers, which already hold the image
// they serve.
//
// Determinism: peer assignment is a pure function of (seed, wave,
// fetcher, key, chunk, attempt); seeder sets only change at wave
// boundaries; and per-device transfer state advances only from the
// device's own serial update calls — so a swarm rollout is bit-identical
// at any worker count, the repo's core invariant.
package swarm
