package swarm

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"tinymlops/internal/device"
	"tinymlops/internal/engine"
)

// Source is the swarm's seeder of last resort: it resolves an artifact key
// to the canonical bytes. The platform adapts its registry here, so the
// registry serves the canary wave (no peers hold anything yet) and any
// chunk no peer can provide — and nothing else.
type Source interface {
	Bytes(key string) ([]byte, error)
}

// SourceFunc adapts a function to Source.
type SourceFunc func(key string) ([]byte, error)

// Bytes implements Source.
func (f SourceFunc) Bytes(key string) ([]byte, error) { return f(key) }

// DropFunc models a peer dropping out mid-chunk: it returns the fraction
// of the requested span the peer manages to serve before vanishing.
// Anything outside (0,1) means the peer serves the whole span. The fault
// plane supplies deterministic decisions keyed on (wave, attempt, fetcher,
// peer, key, chunk), so swarm weather reproduces at any worker count.
type DropFunc func(wave uint64, attempt int, fetcherID, peerID, key string, chunk int) float64

// Config configures a Swarm.
type Config struct {
	// Source resolves artifact keys to canonical bytes (required).
	Source Source
	// Peer resolves a seeder's device handle; nil candidates are skipped.
	Peer func(id string) (*device.Device, bool)
	// ChunkBytes is the manifest chunk size (0 = DefaultChunkBytes).
	ChunkBytes int64
	// Seed roots the deterministic peer assignment.
	Seed uint64
	// MaxPeerTries bounds seeder candidates probed per chunk attempt before
	// falling back to the registry (0 = 3).
	MaxPeerTries int
	// PeerDrop, when non-nil, injects mid-chunk peer churn.
	PeerDrop DropFunc
}

// Stats is the swarm's cumulative accounting. Its core invariant is byte
// conservation: RegistryEgressBytes + PeerBytes == DeliveredBytes, every
// delivered byte attributed to exactly one source. The fault auditor
// checks it, along with ConservationViolations == 0 and HashRejects == 0.
type Stats struct {
	// Transfers completed; Resumed counts those that continued a previously
	// interrupted transfer instead of starting from byte zero.
	Transfers int64
	Resumed   int64
	// DeliveredBytes moved over the simulated radio into installs;
	// RegistryEgressBytes came from the vendor, PeerBytes from neighbors.
	DeliveredBytes      int64
	RegistryEgressBytes int64
	PeerBytes           int64
	// ChunksVerified counts chunk hashes checked on receipt; HashRejects
	// counts chunks that failed the check (zero with honest sources).
	ChunksVerified int64
	HashRejects    int64
	// PeerServes / RegistryServes count serve calls by source kind;
	// PeerSkips counts offline or unknown candidates passed over.
	PeerServes     int64
	RegistryServes int64
	PeerSkips      int64
	// MidChunkDrops counts injected peer losses partway through a chunk.
	MidChunkDrops int64
	// ConservationViolations counts completed transfers whose per-source
	// byte split did not sum to the artifact size — always zero unless the
	// exactly-once discipline broke.
	ConservationViolations int64
}

// TransferStats accounts one completed transfer.
type TransferStats struct {
	Key        string
	TotalBytes int64
	// FromPeers + FromRegistry + ResumedBytes == TotalBytes: the source
	// split of this transfer's radio bytes, plus the bytes an earlier
	// interrupted incarnation already staged in flash.
	FromPeers    int64
	FromRegistry int64
	ResumedBytes int64
	Chunks       int
	// Resumed reports the transfer continued a half-written slot.
	Resumed bool
	// Duration is the modeled download+flash time of this incarnation.
	Duration time.Duration
}

// transferState is one device's in-flight fetch of one artifact,
// persisted across interrupted attempts. Only the owning device's serial
// update calls touch it; the swarm map holding it is mutex-guarded.
type transferState struct {
	ra         *Reassembler
	doneChunks int
	pending    []byte // bytes of the in-flight chunk received so far
	base       int64  // bytes re-derived from a pre-existing staged slot
	fromPeers  int64
	fromReg    int64
	attempts   int
	resumed    bool
	dur        time.Duration
}

func (st *transferState) offset(m *Manifest) int64 {
	if st.doneChunks >= m.NumChunks() {
		return m.TotalBytes
	}
	start, _ := m.ChunkSpan(st.doneChunks)
	return start + int64(len(st.pending))
}

// Swarm coordinates peer-to-peer artifact distribution across rollout
// waves. Devices that complete an update register as pending seeders;
// AdvanceWave promotes them into the sorted active set the next wave
// fetches from. Peer choice derives from engine.SeedForID over (wave,
// fetcher, key, chunk, attempt), and the active set is frozen while a
// wave's transfers fan out, so the topology — and therefore every byte's
// provenance — is bit-stable at any worker count. All methods are safe
// for concurrent use.
type Swarm struct {
	cfg Config

	mu        sync.Mutex
	wave      uint64
	active    map[string][]string            // key -> sorted seeder IDs
	activeSet map[string]map[string]struct{} // key -> active membership
	pending   map[string]map[string]struct{} // key -> seeders awaiting promotion
	manifests map[string]*Manifest
	blobs     map[string][]byte
	inflight  map[string]map[string]*transferState // device -> key -> state
	stats     Stats
}

// New returns a swarm over the configuration.
func New(cfg Config) (*Swarm, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("swarm: config needs a Source")
	}
	if cfg.ChunkBytes == 0 {
		cfg.ChunkBytes = DefaultChunkBytes
	}
	if cfg.ChunkBytes < 1 {
		return nil, fmt.Errorf("swarm: chunk size %d", cfg.ChunkBytes)
	}
	if cfg.MaxPeerTries <= 0 {
		cfg.MaxPeerTries = 3
	}
	return &Swarm{
		cfg:       cfg,
		active:    make(map[string][]string),
		activeSet: make(map[string]map[string]struct{}),
		pending:   make(map[string]map[string]struct{}),
		manifests: make(map[string]*Manifest),
		blobs:     make(map[string][]byte),
		inflight:  make(map[string]map[string]*transferState),
	}, nil
}

// Wave returns the current wave number (0 = canary: no seeders yet).
func (s *Swarm) Wave() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wave
}

// AddSeeder registers a device as holding the artifact. The registration
// is pending: it becomes visible to fetchers only at the next
// AdvanceWave, so a wave's seeder set cannot depend on the completion
// order of that same wave's transfers.
func (s *Swarm) AddSeeder(key, deviceID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.activeSet[key][deviceID]; ok {
		return
	}
	set := s.pending[key]
	if set == nil {
		set = make(map[string]struct{})
		s.pending[key] = set
	}
	set[deviceID] = struct{}{}
}

// RemovePending withdraws a device's not-yet-promoted seeder
// registrations — a rolled-back wave's devices no longer hold the bytes
// they registered for.
func (s *Swarm) RemovePending(deviceID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, set := range s.pending {
		delete(set, deviceID)
	}
}

// AdvanceWave promotes pending seeders into the active set (sorted, so
// peer indexing is deterministic) and bumps the wave counter. The rollout
// controller calls it after each wave passes its gate; reconciliation
// sweeps call it between passes.
func (s *Swarm) AdvanceWave() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wave++
	for key, set := range s.pending {
		if len(set) == 0 {
			continue
		}
		act := s.activeSet[key]
		if act == nil {
			act = make(map[string]struct{})
			s.activeSet[key] = act
		}
		for id := range set {
			if _, ok := act[id]; ok {
				continue
			}
			act[id] = struct{}{}
			s.active[key] = append(s.active[key], id)
		}
		sort.Strings(s.active[key])
	}
	s.pending = make(map[string]map[string]struct{})
}

// Seeders returns the active seeder IDs for a key (a copy).
func (s *Swarm) Seeders(key string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.active[key]...)
}

// Stats returns a snapshot of the cumulative accounting.
func (s *Swarm) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// InFlight returns how many devices hold partial transfer state — zero at
// terminal convergence, mirroring the device staging-slot invariant.
func (s *Swarm) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, m := range s.inflight {
		if len(m) > 0 {
			n++
		}
	}
	return n
}

// Manifest returns (building and caching on first use) the chunk manifest
// for an artifact key.
func (s *Swarm) Manifest(key string) (*Manifest, error) {
	m, _, err := s.materialize(key)
	return m, err
}

// materialize resolves key to its manifest and canonical bytes, caching
// both. Resolution runs outside the lock (the registry's delta encoder is
// single-flight on its own); racing resolvers of the same key produce
// identical content, and the first to store wins.
func (s *Swarm) materialize(key string) (*Manifest, []byte, error) {
	s.mu.Lock()
	if m, ok := s.manifests[key]; ok {
		blob := s.blobs[key]
		s.mu.Unlock()
		return m, blob, nil
	}
	s.mu.Unlock()
	data, err := s.cfg.Source.Bytes(key)
	if err != nil {
		return nil, nil, fmt.Errorf("swarm: source %q: %w", key, err)
	}
	m, err := BuildManifest(key, data, s.cfg.ChunkBytes)
	if err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if exist, ok := s.manifests[key]; ok {
		return exist, s.blobs[key], nil
	}
	s.manifests[key] = m
	s.blobs[key] = data
	return m, data, nil
}

// pickSource chooses the serving side for one chunk attempt: a rotation
// over the wave's frozen seeder set starting at a SeedForID-derived index,
// probing up to MaxPeerTries online candidates, with the registry as the
// seeder of last resort. Pure in (wave, active set, fetcher, key, chunk,
// attempt) plus the candidates' frozen connectivity.
func (s *Swarm) pickSource(fetcherID, key string, chunk, attempt int) (string, *device.Device) {
	s.mu.Lock()
	seeders := s.active[key]
	wave := s.wave
	s.mu.Unlock()
	if len(seeders) == 0 || s.cfg.Peer == nil {
		return "", nil
	}
	start := int(engine.SeedForID(s.cfg.Seed, wave,
		fmt.Sprintf("assign|%s|%s|%d|%d", fetcherID, key, chunk, attempt)) % uint64(len(seeders)))
	tries := s.cfg.MaxPeerTries
	if tries > len(seeders) {
		tries = len(seeders)
	}
	skipped := int64(0)
	for t := 0; t < tries; t++ {
		cand := seeders[(start+t)%len(seeders)]
		if cand == fetcherID {
			continue
		}
		peer, ok := s.cfg.Peer(cand)
		if !ok || peer.Net() == device.Offline {
			skipped++
			continue
		}
		if skipped > 0 {
			s.mu.Lock()
			s.stats.PeerSkips += skipped
			s.mu.Unlock()
		}
		return cand, peer
	}
	if skipped > 0 {
		s.mu.Lock()
		s.stats.PeerSkips += skipped
		s.mu.Unlock()
	}
	return "", nil
}

// stateFor returns the device's transfer state for key, synchronized with
// the device's staging slot — the slot is authoritative, because the
// device may have crashed, resumed, or switched images since the swarm
// last saw it. A matching slot with no swarm state is rebuilt by
// re-reading the staged flash prefix (hash-verifying every completed
// chunk); a mismatched slot starts fresh. Any state the device holds for
// other keys is dropped: the single staging slot means at most one
// half-written image exists per device.
func (s *Swarm) stateFor(dev *device.Device, key string, m *Manifest, blob []byte, flashTotal int64) (*transferState, error) {
	var devOff int64
	if tok, done, dlTotal, flTotal, ok := dev.StagingDownload(); ok &&
		tok == key && dlTotal == m.TotalBytes && flTotal == flashTotal {
		devOff = done
	}
	s.mu.Lock()
	byKey := s.inflight[dev.ID]
	st := byKey[key]
	if byKey != nil {
		for k := range byKey {
			if k != key {
				delete(byKey, k)
			}
		}
	}
	s.mu.Unlock()
	if st != nil && st.offset(m) == devOff {
		return st, nil
	}
	st = &transferState{ra: NewReassembler(m)}
	if devOff > 0 {
		// Resume: the staged flash prefix holds exactly blob[:devOff] — those
		// bytes were delivered (and charged) by an earlier incarnation, so
		// re-reading them locally is free. Completed chunks re-verify against
		// the manifest on the way back in.
		st.base = devOff
		st.resumed = true
		for i := 0; i < m.NumChunks(); i++ {
			cs, ce := m.ChunkSpan(i)
			if ce > devOff {
				break
			}
			if err := st.ra.AddChunk(i, blob[cs:ce]); err != nil {
				return nil, fmt.Errorf("swarm: staged prefix of %s %q: %w", dev.ID, key, err)
			}
			st.doneChunks++
		}
		cs, _ := m.ChunkSpan(st.doneChunks)
		if cs < devOff {
			st.pending = append(st.pending, blob[cs:devOff]...)
		}
	}
	s.mu.Lock()
	if s.inflight[dev.ID] == nil {
		s.inflight[dev.ID] = make(map[string]*transferState)
	}
	s.inflight[dev.ID][key] = st
	if st.resumed {
		s.stats.Resumed++
	}
	s.mu.Unlock()
	return st, nil
}

// Transfer fetches the artifact named by key onto the device, chunk by
// chunk, preferring the wave's active seeders and falling back to the
// registry source. Every chunk is hash-verified on receipt and every
// delivered byte is charged to exactly one serving side; an interrupted
// transfer (crash mid-flash, dropped link, dead battery) keeps its state
// and a retry resumes from the exact byte. flashTotal is the flash work
// the install represents (0 = the artifact size; deltas flash less than
// they download). On success it returns the bit-exact artifact bytes.
func (s *Swarm) Transfer(dev *device.Device, key string, flashTotal int64) ([]byte, *TransferStats, error) {
	if dev == nil {
		return nil, nil, fmt.Errorf("swarm: nil device")
	}
	m, blob, err := s.materialize(key)
	if err != nil {
		return nil, nil, err
	}
	total := m.TotalBytes
	if flashTotal <= 0 {
		flashTotal = total
	}
	st, err := s.stateFor(dev, key, m, blob, flashTotal)
	if err != nil {
		return nil, nil, err
	}
	if st.offset(m) > 0 && !st.resumed {
		// A fresh call continuing in-memory state from a prior interrupted
		// incarnation counts as a resume too.
		st.resumed = true
		s.mu.Lock()
		s.stats.Resumed++
		s.mu.Unlock()
	}

	for {
		off := st.offset(m)
		if off >= total {
			break
		}
		ci := m.ChunkOf(off)
		cstart, cend := m.ChunkSpan(ci)
		span := cend - off
		st.attempts++

		peerID, peer := s.pickSource(dev.ID, key, ci, st.attempts)
		serve := span
		if peer != nil && s.cfg.PeerDrop != nil {
			if f := s.cfg.PeerDrop(s.Wave(), st.attempts, dev.ID, peerID, key, ci); f > 0 && f < 1 {
				if serve = int64(float64(span) * f); serve < 1 {
					serve = 1
				}
				s.mu.Lock()
				s.stats.MidChunkDrops++
				s.mu.Unlock()
			}
		}

		written, dur, ierr := dev.InstallChunk(key, serve, total, flashTotal)
		st.dur += dur
		if written > 0 {
			st.pending = append(st.pending, blob[off:off+written]...)
			s.charge(st, peer, written)
		}
		if ierr != nil {
			return nil, nil, fmt.Errorf("swarm: transfer %q to %s: %w", key, dev.ID, ierr)
		}
		if int64(len(st.pending)) == cend-cstart {
			if aerr := st.ra.AddChunk(ci, st.pending); aerr != nil {
				// A corrupt chunk never enters the artifact; drop it and let
				// the caller retry against a different source rotation.
				s.mu.Lock()
				s.stats.HashRejects++
				s.mu.Unlock()
				st.pending = nil
				return nil, nil, fmt.Errorf("swarm: transfer %q to %s: %w", key, dev.ID, aerr)
			}
			s.mu.Lock()
			s.stats.ChunksVerified++
			s.mu.Unlock()
			st.doneChunks++
			st.pending = nil
		}
	}

	data, err := st.ra.Assemble()
	if err != nil {
		return nil, nil, fmt.Errorf("swarm: transfer %q to %s: %w", key, dev.ID, err)
	}
	ts := &TransferStats{
		Key: key, TotalBytes: total,
		FromPeers: st.fromPeers, FromRegistry: st.fromReg, ResumedBytes: st.base,
		Chunks: m.NumChunks(), Resumed: st.resumed, Duration: st.dur,
	}
	s.mu.Lock()
	s.stats.Transfers++
	if st.fromPeers+st.fromReg+st.base != total {
		s.stats.ConservationViolations++
	}
	delete(s.inflight[dev.ID], key)
	s.mu.Unlock()
	return data, ts, nil
}

// charge attributes written bytes to their serving side: the peer's
// transmit counters and the swarm's peer-byte ledger, or the registry's
// egress ledger. Charging happens after the device reports what it
// actually wrote, so a crash mid-chunk charges exactly the bytes that
// moved — the conservation invariant is structural, not statistical.
func (s *Swarm) charge(st *transferState, peer *device.Device, written int64) {
	s.mu.Lock()
	s.stats.DeliveredBytes += written
	if peer != nil {
		s.stats.PeerBytes += written
		s.stats.PeerServes++
	} else {
		s.stats.RegistryEgressBytes += written
		s.stats.RegistryServes++
	}
	s.mu.Unlock()
	if peer != nil {
		st.fromPeers += written
		// The peer was online when picked and wave weather is frozen during
		// the fan-out, so the serve cannot fail; if it somehow does, the
		// bytes were still delivered and stay attributed to the peer.
		_, _ = peer.Serve(written)
	} else {
		st.fromReg += written
	}
}
