package swarm

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzChunkManifestRoundTrip pins the codec's canonical-form contract: any
// input that decodes must re-encode to exactly the input bytes, and any
// manifest built from real data must survive a marshal/unmarshal round
// trip unchanged. Decode failures must be typed (ErrBadManifest), never
// panics or silent truncation.
func FuzzChunkManifestRoundTrip(f *testing.F) {
	for _, size := range []int{1, 100, 1000, 4096} {
		m, err := BuildManifest("full:seed", testBlob(size, uint64(size)), 256)
		if err != nil {
			f.Fatal(err)
		}
		enc, err := m.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte("TMSW"))
	f.Add([]byte{})
	f.Add([]byte("TMSW\x01\x04full\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalManifest(data)
		if err != nil {
			if !errors.Is(err, ErrBadManifest) && !errors.Is(err, ErrEmptyArtifact) {
				t.Fatalf("untyped decode failure: %v", err)
			}
			return
		}
		reenc, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded manifest does not re-encode: %v", err)
		}
		if !bytes.Equal(reenc, data) {
			t.Fatalf("decode/encode not canonical:\nin  %x\nout %x", data, reenc)
		}
		if m.NumChunks() != len(m.Hashes) {
			t.Fatalf("decoded %d hashes for %d chunks", len(m.Hashes), m.NumChunks())
		}
	})
}

// FuzzChunkReassembly feeds a reassembler an adversarial chunk stream —
// arbitrary indexes, arbitrary bytes, duplicates, truncations — and pins
// that it either rejects each bogus chunk with a typed error or ends up
// assembling exactly the true artifact. Mis-assembly (success with wrong
// bytes) is the one outcome that must be impossible.
func FuzzChunkReassembly(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(0), []byte{1, 2, 3, 4})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(2), []byte{9})
	f.Add([]byte("abcdefgh"), uint8(1), []byte("efgh"))
	f.Add([]byte("abcdefgh"), uint8(200), []byte("efgh"))

	f.Fuzz(func(t *testing.T, artifact []byte, idx uint8, chunk []byte) {
		if len(artifact) == 0 {
			return
		}
		m, err := BuildManifest("full:fuzz", artifact, 4)
		if err != nil {
			t.Fatal(err)
		}
		ra := NewReassembler(m)

		// The adversarial chunk either lands (bytes exactly match the true
		// chunk at idx) or is rejected with a typed error.
		aerr := ra.AddChunk(int(idx), chunk)
		if aerr != nil {
			switch {
			case errors.Is(aerr, ErrUnknownChunk), errors.Is(aerr, ErrDuplicateChunk),
				errors.Is(aerr, ErrChunkSize), errors.Is(aerr, ErrChunkHashMismatch):
			default:
				t.Fatalf("untyped chunk rejection: %v", aerr)
			}
		} else {
			s, e := m.ChunkSpan(int(idx))
			if !bytes.Equal(chunk, artifact[s:e]) {
				t.Fatalf("reassembler accepted wrong bytes for chunk %d", idx)
			}
			// Exactly-once: the same chunk again must be a duplicate.
			if derr := ra.AddChunk(int(idx), chunk); !errors.Is(derr, ErrDuplicateChunk) {
				t.Fatalf("duplicate accepted: %v", derr)
			}
		}

		// Complete the stream with the true chunks; the assembly must be
		// bit-identical to the artifact no matter what the fuzzer injected.
		for i := 0; i < m.NumChunks(); i++ {
			if ra.Have(i) {
				continue
			}
			s, e := m.ChunkSpan(i)
			if err := ra.AddChunk(i, artifact[s:e]); err != nil {
				t.Fatalf("true chunk %d rejected: %v", i, err)
			}
		}
		out, err := ra.Assemble()
		if err != nil {
			t.Fatalf("complete artifact does not assemble: %v", err)
		}
		if !bytes.Equal(out, artifact) {
			t.Fatal("assembled bytes diverge from the artifact")
		}
	})
}
