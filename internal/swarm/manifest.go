package swarm

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// DefaultChunkBytes is the chunk size used when a Config leaves it zero.
const DefaultChunkBytes = 4 << 10

// Wire-format bounds: a decoder must reject anything outside them before
// allocating, so a hostile manifest cannot ask for gigabytes.
const (
	manifestMagic   = "TMSW"
	manifestVersion = 1
	maxKeyBytes     = 4096
	maxChunks       = 1 << 22
)

// Typed failures of the chunk plane. Every rejection a transfer or a
// decoder can produce wraps one of these, so callers classify by
// errors.Is rather than string matching.
var (
	// ErrEmptyArtifact rejects building a manifest over zero bytes — there
	// is nothing to distribute, and a zero-chunk manifest would make
	// "complete" ambiguous.
	ErrEmptyArtifact = errors.New("swarm: zero-length artifact")
	// ErrBadManifest rejects a malformed or non-canonical manifest encoding.
	ErrBadManifest = errors.New("swarm: malformed manifest")
	// ErrUnknownChunk rejects a chunk index outside the manifest.
	ErrUnknownChunk = errors.New("swarm: unknown chunk index")
	// ErrDuplicateChunk rejects delivering a chunk twice — each byte arrives
	// exactly once.
	ErrDuplicateChunk = errors.New("swarm: duplicate chunk")
	// ErrChunkSize rejects a chunk whose length disagrees with the manifest.
	ErrChunkSize = errors.New("swarm: chunk size mismatch")
	// ErrChunkHashMismatch rejects chunk bytes whose SHA-256 disagrees with
	// the manifest — corruption or a lying peer, caught on receipt.
	ErrChunkHashMismatch = errors.New("swarm: chunk hash mismatch")
	// ErrIncomplete rejects assembling before every chunk arrived.
	ErrIncomplete = errors.New("swarm: artifact incomplete")
	// ErrDigestMismatch rejects an assembled artifact whose whole-file
	// SHA-256 disagrees with the manifest.
	ErrDigestMismatch = errors.New("swarm: artifact digest mismatch")
)

// Manifest is the content-addressed description of one distributable
// artifact — a registry image ("full:<version>") or an encoded weight
// delta ("delta:<from>><to>") — split into fixed-size chunks. Chunks are
// ChunkBytes long except the last, whose length is implied by TotalBytes;
// per-chunk SHA-256 hashes let a receiver verify every chunk on receipt
// from any source, and Digest pins the reassembled whole.
type Manifest struct {
	// Key names the artifact in the swarm's namespace.
	Key string
	// TotalBytes is the artifact length; ChunkBytes the nominal chunk size.
	TotalBytes int64
	ChunkBytes int64
	// Digest is the SHA-256 of the whole artifact.
	Digest [32]byte
	// Hashes holds one SHA-256 per chunk, in order.
	Hashes [][32]byte
}

// BuildManifest splits data into chunkBytes-sized hashed chunks
// (0 = DefaultChunkBytes).
func BuildManifest(key string, data []byte, chunkBytes int64) (*Manifest, error) {
	if key == "" || len(key) > maxKeyBytes {
		return nil, fmt.Errorf("%w: key length %d", ErrBadManifest, len(key))
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrEmptyArtifact, key)
	}
	if chunkBytes == 0 {
		chunkBytes = DefaultChunkBytes
	}
	if chunkBytes < 1 {
		return nil, fmt.Errorf("%w: chunk size %d", ErrBadManifest, chunkBytes)
	}
	m := &Manifest{
		Key:        key,
		TotalBytes: int64(len(data)),
		ChunkBytes: chunkBytes,
		Digest:     sha256.Sum256(data),
	}
	n := m.NumChunks()
	if n > maxChunks {
		return nil, fmt.Errorf("%w: %d chunks exceed the %d cap", ErrBadManifest, n, maxChunks)
	}
	m.Hashes = make([][32]byte, 0, n)
	for off := int64(0); off < m.TotalBytes; off += chunkBytes {
		end := off + chunkBytes
		if end > m.TotalBytes {
			end = m.TotalBytes
		}
		m.Hashes = append(m.Hashes, sha256.Sum256(data[off:end]))
	}
	return m, nil
}

// NumChunks returns how many chunks the manifest describes.
func (m *Manifest) NumChunks() int {
	return int((m.TotalBytes + m.ChunkBytes - 1) / m.ChunkBytes)
}

// ChunkSpan returns chunk i's byte range [start, end) in the artifact.
func (m *Manifest) ChunkSpan(i int) (start, end int64) {
	start = int64(i) * m.ChunkBytes
	end = start + m.ChunkBytes
	if end > m.TotalBytes {
		end = m.TotalBytes
	}
	return start, end
}

// ChunkOf returns the index of the chunk containing artifact offset off.
func (m *Manifest) ChunkOf(off int64) int { return int(off / m.ChunkBytes) }

// MarshalBinary encodes the manifest in the canonical wire format: magic,
// version byte, uvarint-prefixed key, uvarint total and chunk sizes, the
// artifact digest, then the chunk hashes (chunk lengths are implied by the
// sizes, so there is exactly one encoding of a given manifest).
func (m *Manifest) MarshalBinary() ([]byte, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 64+len(m.Key)+32*len(m.Hashes))
	buf = append(buf, manifestMagic...)
	buf = append(buf, manifestVersion)
	buf = binary.AppendUvarint(buf, uint64(len(m.Key)))
	buf = append(buf, m.Key...)
	buf = binary.AppendUvarint(buf, uint64(m.TotalBytes))
	buf = binary.AppendUvarint(buf, uint64(m.ChunkBytes))
	buf = append(buf, m.Digest[:]...)
	for i := range m.Hashes {
		buf = append(buf, m.Hashes[i][:]...)
	}
	return buf, nil
}

func (m *Manifest) validate() error {
	if m.Key == "" || len(m.Key) > maxKeyBytes {
		return fmt.Errorf("%w: key length %d", ErrBadManifest, len(m.Key))
	}
	if m.TotalBytes < 1 {
		return fmt.Errorf("%w: total %d bytes", ErrEmptyArtifact, m.TotalBytes)
	}
	if m.ChunkBytes < 1 {
		return fmt.Errorf("%w: chunk size %d", ErrBadManifest, m.ChunkBytes)
	}
	if n := m.NumChunks(); n > maxChunks || len(m.Hashes) != n {
		return fmt.Errorf("%w: %d hashes for %d chunks", ErrBadManifest, len(m.Hashes), n)
	}
	return nil
}

// UnmarshalManifest decodes and validates a canonical manifest encoding.
// Truncated input, trailing bytes, out-of-range sizes, a wrong chunk count
// and non-minimal varints are all rejected: if decoding succeeds,
// re-encoding reproduces the input byte-for-byte.
func UnmarshalManifest(data []byte) (*Manifest, error) {
	rest := data
	if len(rest) < len(manifestMagic)+1 || string(rest[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadManifest)
	}
	rest = rest[len(manifestMagic):]
	if rest[0] != manifestVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadManifest, rest[0])
	}
	rest = rest[1:]
	keyLen, rest, err := readUvarint(rest)
	if err != nil {
		return nil, err
	}
	if keyLen == 0 || keyLen > maxKeyBytes || uint64(len(rest)) < keyLen {
		return nil, fmt.Errorf("%w: key length %d", ErrBadManifest, keyLen)
	}
	m := &Manifest{Key: string(rest[:keyLen])}
	rest = rest[keyLen:]
	total, rest, err := readUvarint(rest)
	if err != nil {
		return nil, err
	}
	chunk, rest, err := readUvarint(rest)
	if err != nil {
		return nil, err
	}
	if total < 1 || total > 1<<62 || chunk < 1 || chunk > 1<<62 {
		return nil, fmt.Errorf("%w: sizes %d/%d", ErrBadManifest, total, chunk)
	}
	m.TotalBytes, m.ChunkBytes = int64(total), int64(chunk)
	n := m.NumChunks()
	if n > maxChunks {
		return nil, fmt.Errorf("%w: %d chunks exceed the %d cap", ErrBadManifest, n, maxChunks)
	}
	if len(rest) != 32+32*n {
		return nil, fmt.Errorf("%w: %d hash bytes for %d chunks", ErrBadManifest, len(rest), n)
	}
	copy(m.Digest[:], rest[:32])
	rest = rest[32:]
	m.Hashes = make([][32]byte, n)
	for i := 0; i < n; i++ {
		copy(m.Hashes[i][:], rest[32*i:])
	}
	// Canonicality: the uvarint fields admit padded encodings the fast path
	// above would accept; one re-encode comparison closes that hole.
	enc, err := m.MarshalBinary()
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(enc, data) {
		return nil, fmt.Errorf("%w: non-canonical encoding", ErrBadManifest)
	}
	return m, nil
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: truncated varint", ErrBadManifest)
	}
	return v, b[n:], nil
}

// Reassembler collects verified chunks of one manifest into the artifact.
// Chunks may arrive in any order and from any mix of sources; each is
// hash-checked on receipt, duplicates and out-of-range indexes are
// rejected, and Assemble refuses to produce bytes until every chunk
// landed and the whole-artifact digest matches. Not safe for concurrent
// use — each receiving device owns its own reassembler.
type Reassembler struct {
	m       *Manifest
	buf     []byte
	have    []bool
	missing int
}

// NewReassembler returns an empty reassembler for the manifest.
func NewReassembler(m *Manifest) *Reassembler {
	n := m.NumChunks()
	return &Reassembler{m: m, buf: make([]byte, m.TotalBytes), have: make([]bool, n), missing: n}
}

// AddChunk verifies and stores chunk i. The data is copied.
func (r *Reassembler) AddChunk(i int, data []byte) error {
	if i < 0 || i >= len(r.have) {
		return fmt.Errorf("%w: %d of %d", ErrUnknownChunk, i, len(r.have))
	}
	if r.have[i] {
		return fmt.Errorf("%w: %d", ErrDuplicateChunk, i)
	}
	start, end := r.m.ChunkSpan(i)
	if int64(len(data)) != end-start {
		return fmt.Errorf("%w: chunk %d got %d bytes, want %d", ErrChunkSize, i, len(data), end-start)
	}
	if sha256.Sum256(data) != r.m.Hashes[i] {
		return fmt.Errorf("%w: chunk %d", ErrChunkHashMismatch, i)
	}
	copy(r.buf[start:end], data)
	r.have[i] = true
	r.missing--
	return nil
}

// Have reports whether chunk i has been verified and stored.
func (r *Reassembler) Have(i int) bool { return i >= 0 && i < len(r.have) && r.have[i] }

// Missing returns how many chunks are still absent.
func (r *Reassembler) Missing() int { return r.missing }

// Complete reports whether every chunk has arrived.
func (r *Reassembler) Complete() bool { return r.missing == 0 }

// Assemble returns the reassembled artifact after verifying the
// whole-artifact digest. The returned slice is the reassembler's buffer;
// the caller owns it afterwards.
func (r *Reassembler) Assemble() ([]byte, error) {
	if r.missing > 0 {
		return nil, fmt.Errorf("%w: %d/%d chunks missing", ErrIncomplete, r.missing, len(r.have))
	}
	if sha256.Sum256(r.buf) != r.m.Digest {
		return nil, fmt.Errorf("%w: %q", ErrDigestMismatch, r.m.Key)
	}
	return r.buf, nil
}
