package swarm

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"tinymlops/internal/device"
	"tinymlops/internal/tensor"
)

// testHarness is a small swarm world: a key->bytes source and a fleet of
// wall-powered gateways (immune to battery faults, so tests control the
// weather explicitly via SetNet).
type testHarness struct {
	blobs map[string][]byte
	devs  map[string]*device.Device
}

func newHarness(t *testing.T, nDevices int) *testHarness {
	t.Helper()
	caps, err := device.ProfileByName("edge-gateway")
	if err != nil {
		t.Fatal(err)
	}
	h := &testHarness{blobs: map[string][]byte{}, devs: map[string]*device.Device{}}
	for i := 0; i < nDevices; i++ {
		id := fmt.Sprintf("dev-%03d", i)
		d := device.NewDevice(id, caps, tensor.NewRNG(uint64(i)))
		d.SetNet(device.WiFi)
		h.devs[id] = d
	}
	return h
}

func (h *testHarness) swarm(t *testing.T, cfg Config) *Swarm {
	t.Helper()
	cfg.Source = SourceFunc(func(key string) ([]byte, error) {
		b, ok := h.blobs[key]
		if !ok {
			return nil, fmt.Errorf("no blob %q", key)
		}
		return b, nil
	})
	cfg.Peer = func(id string) (*device.Device, bool) { d, ok := h.devs[id]; return d, ok }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTransferRegistryOnly(t *testing.T) {
	h := newHarness(t, 1)
	h.blobs["full:v1"] = testBlob(1000, 1)
	s := h.swarm(t, Config{ChunkBytes: 256, Seed: 7})

	data, ts, err := s.Transfer(h.devs["dev-000"], "full:v1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, h.blobs["full:v1"]) {
		t.Fatal("transferred bytes diverge")
	}
	if ts.FromRegistry != 1000 || ts.FromPeers != 0 || ts.ResumedBytes != 0 {
		t.Fatalf("split = %+v, want all registry", ts)
	}
	st := s.Stats()
	if st.RegistryEgressBytes != 1000 || st.PeerBytes != 0 || st.DeliveredBytes != 1000 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ChunksVerified != 4 || st.ConservationViolations != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if s.InFlight() != 0 {
		t.Fatalf("in flight = %d after completion", s.InFlight())
	}
}

func TestTransferPrefersPeers(t *testing.T) {
	h := newHarness(t, 3)
	h.blobs["full:v1"] = testBlob(2048, 2)
	s := h.swarm(t, Config{ChunkBytes: 256, Seed: 7})

	// Canary: dev-000 fetches from the registry and registers as a seeder.
	if _, _, err := s.Transfer(h.devs["dev-000"], "full:v1", 0); err != nil {
		t.Fatal(err)
	}
	s.AddSeeder("full:v1", "dev-000")
	s.AdvanceWave()

	// Next wave: dev-001 must source every byte from dev-000.
	_, ts, err := s.Transfer(h.devs["dev-001"], "full:v1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ts.FromPeers != 2048 || ts.FromRegistry != 0 {
		t.Fatalf("split = %+v, want all peer", ts)
	}
	if tx := h.devs["dev-000"].Snapshot().TxBytes; tx != 2048 {
		t.Fatalf("seeder TxBytes = %d, want 2048", tx)
	}
	st := s.Stats()
	if st.RegistryEgressBytes+st.PeerBytes != st.DeliveredBytes {
		t.Fatalf("conservation broken: %+v", st)
	}
}

func TestTransferPeerOfflineFallsBack(t *testing.T) {
	h := newHarness(t, 2)
	// Wall-powered profiles are forced online, so the offline seeder must
	// be battery-powered for the weather to bite.
	caps, _ := device.ProfileByName("m4-wearable")
	seeder := device.NewDevice("bat-seeder", caps, tensor.NewRNG(31))
	h.devs["bat-seeder"] = seeder
	h.blobs["full:v1"] = testBlob(1024, 3)
	s := h.swarm(t, Config{ChunkBytes: 256, Seed: 7})
	s.AddSeeder("full:v1", "bat-seeder")
	s.AdvanceWave()
	seeder.SetNet(device.Offline)

	_, ts, err := s.Transfer(h.devs["dev-001"], "full:v1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ts.FromRegistry != 1024 || ts.FromPeers != 0 {
		t.Fatalf("split = %+v, want registry fallback", ts)
	}
	if s.Stats().PeerSkips == 0 {
		t.Fatal("offline seeder was never counted as skipped")
	}
}

func TestTransferSelfIsNeverAPeer(t *testing.T) {
	h := newHarness(t, 1)
	h.blobs["full:v1"] = testBlob(512, 4)
	s := h.swarm(t, Config{ChunkBytes: 256, Seed: 7})
	s.AddSeeder("full:v1", "dev-000")
	s.AdvanceWave()

	// The only seeder is the fetcher itself: registry serves.
	_, ts, err := s.Transfer(h.devs["dev-000"], "full:v1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ts.FromRegistry != 512 {
		t.Fatalf("split = %+v, want registry", ts)
	}
}

func TestTransferResumesInterruptedInstall(t *testing.T) {
	h := newHarness(t, 1)
	caps, _ := device.ProfileByName("m4-wearable") // battery-powered: interrupter applies
	d := device.NewDevice("bat-0", caps, tensor.NewRNG(9))
	d.SetNet(device.WiFi)
	h.devs["bat-0"] = d
	h.blobs["full:v1"] = testBlob(4096, 5)
	s := h.swarm(t, Config{ChunkBytes: 512, Seed: 7})

	// Crash the third install call partway through its chunk.
	calls := 0
	d.SetInstallInterrupter(func(string, int64) float64 {
		calls++
		if calls == 3 {
			return 0.5
		}
		return 1
	})
	_, _, err := s.Transfer(d, "full:v1", 0)
	if !errors.Is(err, device.ErrInstallInterrupted) {
		t.Fatalf("err = %v, want ErrInstallInterrupted", err)
	}
	if s.InFlight() != 1 {
		t.Fatalf("in flight = %d after interruption", s.InFlight())
	}
	rxAfterCrash := d.Snapshot().RxBytes

	// Retry: resumes from the exact byte, so total delivered == artifact.
	d.SetInstallInterrupter(nil)
	data, ts, err := s.Transfer(d, "full:v1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, h.blobs["full:v1"]) {
		t.Fatal("resumed artifact diverges")
	}
	if !ts.Resumed {
		t.Fatal("transfer did not report resuming")
	}
	if rx := d.Snapshot().RxBytes; rx != 4096 {
		t.Fatalf("device downloaded %d bytes total (crash left %d), want exactly 4096", rx, rxAfterCrash)
	}
	st := s.Stats()
	if st.DeliveredBytes != 4096 || st.RegistryEgressBytes+st.PeerBytes != st.DeliveredBytes {
		t.Fatalf("ledger %+v: every byte must be delivered exactly once", st)
	}
	if st.Resumed != 1 || st.ConservationViolations != 0 {
		t.Fatalf("ledger %+v", st)
	}
	if s.InFlight() != 0 {
		t.Fatalf("in flight = %d after completion", s.InFlight())
	}
}

func TestTransferMidChunkPeerDrop(t *testing.T) {
	h := newHarness(t, 2)
	h.blobs["full:v1"] = testBlob(2048, 6)
	drops := 0
	s := h.swarm(t, Config{
		ChunkBytes: 512, Seed: 7,
		PeerDrop: func(_ uint64, attempt int, _, _, _ string, _ int) float64 {
			if attempt%2 == 1 {
				drops++
				return 0.5
			}
			return 1
		},
	})
	s.AddSeeder("full:v1", "dev-000")
	s.AdvanceWave()

	data, _, err := s.Transfer(h.devs["dev-001"], "full:v1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, h.blobs["full:v1"]) {
		t.Fatal("artifact diverges after mid-chunk drops")
	}
	st := s.Stats()
	if drops == 0 || st.MidChunkDrops == 0 {
		t.Fatal("drop injector never fired")
	}
	if st.DeliveredBytes != 2048 || st.RegistryEgressBytes+st.PeerBytes != 2048 {
		t.Fatalf("ledger %+v after drops", st)
	}
}

func TestTransferErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T) error
		want string
	}{
		{"unknown-key", func(t *testing.T) error {
			h := newHarness(t, 1)
			s := h.swarm(t, Config{ChunkBytes: 256})
			_, _, err := s.Transfer(h.devs["dev-000"], "full:nope", 0)
			return err
		}, "no blob"},
		{"zero-length-artifact", func(t *testing.T) error {
			h := newHarness(t, 1)
			h.blobs["full:v1"] = nil
			s := h.swarm(t, Config{ChunkBytes: 256})
			_, _, err := s.Transfer(h.devs["dev-000"], "full:v1", 0)
			return err
		}, ErrEmptyArtifact.Error()},
		{"fetcher-offline", func(t *testing.T) error {
			h := newHarness(t, 1)
			h.blobs["full:v1"] = testBlob(512, 1)
			caps, _ := device.ProfileByName("m4-wearable")
			d := device.NewDevice("bat-1", caps, tensor.NewRNG(1))
			d.SetNet(device.Offline)
			h.devs["bat-1"] = d
			s := h.swarm(t, Config{ChunkBytes: 256})
			_, _, err := s.Transfer(d, "full:v1", 0)
			return err
		}, device.ErrOffline.Error()},
		{"nil-device", func(t *testing.T) error {
			h := newHarness(t, 1)
			h.blobs["full:v1"] = testBlob(512, 1)
			s := h.swarm(t, Config{ChunkBytes: 256})
			_, _, err := s.Transfer(nil, "full:v1", 0)
			return err
		}, "nil device"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run(t)
			if err == nil || !bytes.Contains([]byte(err.Error()), []byte(tc.want)) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestSwarmSourceCorruptionRejected(t *testing.T) {
	// A source whose bytes change between manifest build and chunk serving
	// models a corrupt seeder: the receiver's hash check must reject the
	// chunk and the artifact must never assemble from mixed bytes.
	h := newHarness(t, 1)
	good := testBlob(1024, 8)
	h.blobs["full:v1"] = good
	s := h.swarm(t, Config{ChunkBytes: 256})
	m, err := s.Manifest("full:v1")
	if err != nil {
		t.Fatal(err)
	}
	ra := NewReassembler(m)
	bad := append([]byte(nil), good[:256]...)
	bad[17] ^= 0x80
	if err := ra.AddChunk(0, bad); !errors.Is(err, ErrChunkHashMismatch) {
		t.Fatalf("corrupt chunk err = %v, want ErrChunkHashMismatch", err)
	}
	// The rejected chunk left no trace: the true bytes still verify.
	if err := ra.AddChunk(0, good[:256]); err != nil {
		t.Fatalf("true chunk rejected after corruption attempt: %v", err)
	}
}

// TestTransferDeterministicProvenance pins the core invariant: with the
// same seed, fleet and seeder sets, every byte's provenance (peer vs
// registry split, per device) is identical regardless of the order
// concurrent transfers interleave.
func TestTransferDeterministicProvenance(t *testing.T) {
	run := func(workers int) (map[string]TransferStats, Stats) {
		h := newHarness(t, 17)
		h.blobs["full:v1"] = testBlob(8192, 10)
		s := h.swarm(t, Config{ChunkBytes: 512, Seed: 99})
		for i := 0; i < 4; i++ {
			s.AddSeeder("full:v1", fmt.Sprintf("dev-%03d", i))
		}
		s.AdvanceWave()

		ids := make([]string, 0, 13)
		for i := 4; i < 17; i++ {
			ids = append(ids, fmt.Sprintf("dev-%03d", i))
		}
		out := make([]TransferStats, len(ids))
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := range ids {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				_, ts, err := s.Transfer(h.devs[ids[i]], "full:v1", 0)
				if err != nil {
					t.Error(err)
					return
				}
				out[i] = *ts
			}(i)
		}
		wg.Wait()
		m := make(map[string]TransferStats, len(ids))
		for i, id := range ids {
			m[id] = out[i]
		}
		return m, s.Stats()
	}

	seq, seqStats := run(1)
	par, parStats := run(8)
	for id, ts := range seq {
		if par[id] != ts {
			t.Fatalf("%s provenance diverged: sequential %+v, parallel %+v", id, ts, par[id])
		}
	}
	if seqStats != parStats {
		t.Fatalf("aggregate stats diverged:\nseq %+v\npar %+v", seqStats, parStats)
	}
}

// TestSwarmSharedConcurrentUse drives one Swarm from 64 goroutines mixing
// every public method — the -race sentinel for the shared coordinator.
func TestSwarmSharedConcurrentUse(t *testing.T) {
	h := newHarness(t, 64)
	for k := 0; k < 4; k++ {
		h.blobs[fmt.Sprintf("full:v%d", k)] = testBlob(2048+257*k, uint64(k))
	}
	s := h.swarm(t, Config{ChunkBytes: 256, Seed: 5})
	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("dev-%03d", g)
			key := fmt.Sprintf("full:v%d", g%4)
			switch g % 8 {
			case 6:
				s.AdvanceWave()
				s.RemovePending(id)
			case 7:
				_ = s.Stats()
				_ = s.Seeders(key)
				_ = s.InFlight()
				_, _ = s.Manifest(key)
				_ = s.Wave()
			default:
				if _, _, err := s.Transfer(h.devs[id], key, 0); err != nil {
					t.Error(err)
					return
				}
				s.AddSeeder(key, id)
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.RegistryEgressBytes+st.PeerBytes != st.DeliveredBytes {
		t.Fatalf("conservation broken under concurrency: %+v", st)
	}
	if st.ConservationViolations != 0 || st.HashRejects != 0 {
		t.Fatalf("ledger %+v", st)
	}
}

func TestNewRejectsMissingSource(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a config without a Source")
	}
}
