package swarm

import (
	"bytes"
	"errors"
	"testing"

	"tinymlops/internal/tensor"
)

// testBlob builds n deterministic pseudo-random bytes.
func testBlob(n int, seed uint64) []byte {
	rng := tensor.NewRNG(seed)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

func TestBuildManifestShapes(t *testing.T) {
	cases := []struct {
		name       string
		size       int
		chunk      int64
		wantChunks int
	}{
		{"single-partial-chunk", 100, 256, 1},
		{"exact-multiple", 1024, 256, 4},
		{"ragged-tail", 1000, 256, 4},
		{"one-byte", 1, 4096, 1},
		{"chunk-of-one", 7, 1, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := testBlob(tc.size, 42)
			m, err := BuildManifest("full:v1", data, tc.chunk)
			if err != nil {
				t.Fatal(err)
			}
			if m.NumChunks() != tc.wantChunks {
				t.Fatalf("chunks = %d, want %d", m.NumChunks(), tc.wantChunks)
			}
			var covered int64
			for i := 0; i < m.NumChunks(); i++ {
				s, e := m.ChunkSpan(i)
				if s != covered {
					t.Fatalf("chunk %d starts at %d, want %d", i, s, covered)
				}
				if e <= s || e-s > tc.chunk {
					t.Fatalf("chunk %d span [%d,%d) out of shape", i, s, e)
				}
				covered = e
				if got := m.ChunkOf(s); got != i {
					t.Fatalf("ChunkOf(%d) = %d, want %d", s, got, i)
				}
			}
			if covered != int64(tc.size) {
				t.Fatalf("chunks cover %d of %d bytes", covered, tc.size)
			}
		})
	}
}

func TestBuildManifestRejects(t *testing.T) {
	cases := []struct {
		name  string
		key   string
		data  []byte
		chunk int64
		want  error
	}{
		{"zero-length-artifact", "full:v1", nil, 256, ErrEmptyArtifact},
		{"empty-key", "", []byte{1}, 256, ErrBadManifest},
		{"negative-chunk", "full:v1", []byte{1}, -4, ErrBadManifest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := BuildManifest(tc.key, tc.data, tc.chunk); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestManifestRoundTrip(t *testing.T) {
	data := testBlob(10_000, 7)
	m, err := BuildManifest("delta:aa>bb", data, 999)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalManifest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != m.Key || got.TotalBytes != m.TotalBytes || got.ChunkBytes != m.ChunkBytes ||
		got.Digest != m.Digest || len(got.Hashes) != len(m.Hashes) {
		t.Fatalf("round trip diverged: %+v vs %+v", got, m)
	}
	reenc, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, reenc) {
		t.Fatal("re-encoding is not byte-identical")
	}
}

func TestUnmarshalManifestRejectsMalformed(t *testing.T) {
	m, err := BuildManifest("full:v1", testBlob(1000, 3), 256)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	mut := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), enc...))
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad-magic", mut(func(b []byte) []byte { b[0] ^= 0xff; return b })},
		{"bad-version", mut(func(b []byte) []byte { b[4] = 99; return b })},
		{"truncated-header", enc[:3]},
		{"truncated-hashes", enc[:len(enc)-7]},
		{"trailing-garbage", append(append([]byte(nil), enc...), 0xaa)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := UnmarshalManifest(tc.data); !errors.Is(err, ErrBadManifest) {
				t.Fatalf("err = %v, want ErrBadManifest", err)
			}
		})
	}
}

func TestReassemblerErrorPaths(t *testing.T) {
	data := testBlob(1000, 11)
	m, err := BuildManifest("full:v1", data, 256)
	if err != nil {
		t.Fatal(err)
	}
	chunk := func(i int) []byte { s, e := m.ChunkSpan(i); return data[s:e] }

	cases := []struct {
		name string
		run  func(ra *Reassembler) error
		want error
	}{
		{"unknown-chunk-negative", func(ra *Reassembler) error {
			return ra.AddChunk(-1, chunk(0))
		}, ErrUnknownChunk},
		{"unknown-chunk-beyond", func(ra *Reassembler) error {
			return ra.AddChunk(m.NumChunks(), chunk(0))
		}, ErrUnknownChunk},
		{"duplicate-chunk", func(ra *Reassembler) error {
			if err := ra.AddChunk(0, chunk(0)); err != nil {
				return err
			}
			return ra.AddChunk(0, chunk(0))
		}, ErrDuplicateChunk},
		{"wrong-size", func(ra *Reassembler) error {
			return ra.AddChunk(0, chunk(0)[:100])
		}, ErrChunkSize},
		{"corrupt-hash", func(ra *Reassembler) error {
			bad := append([]byte(nil), chunk(1)...)
			bad[0] ^= 0x01
			return ra.AddChunk(1, bad)
		}, ErrChunkHashMismatch},
		{"misplaced-chunk", func(ra *Reassembler) error {
			// Right bytes, wrong position: content addressing catches it.
			return ra.AddChunk(0, chunk(1))
		}, ErrChunkHashMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.run(NewReassembler(m)); !errors.Is(got, tc.want) {
				t.Fatalf("err = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestReassemblerAssemble(t *testing.T) {
	data := testBlob(1000, 13)
	m, err := BuildManifest("full:v1", data, 256)
	if err != nil {
		t.Fatal(err)
	}
	ra := NewReassembler(m)
	if _, err := ra.Assemble(); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("empty assemble err = %v, want ErrIncomplete", err)
	}
	// Out-of-order arrival is fine; the positions are content-addressed.
	for _, i := range []int{3, 0, 2} {
		s, e := m.ChunkSpan(i)
		if err := ra.AddChunk(i, data[s:e]); err != nil {
			t.Fatal(err)
		}
	}
	if ra.Complete() {
		t.Fatal("complete with a chunk missing")
	}
	if ra.Missing() != 1 || ra.Have(1) || !ra.Have(0) {
		t.Fatalf("missing = %d, have(1) = %v", ra.Missing(), ra.Have(1))
	}
	s, e := m.ChunkSpan(1)
	if err := ra.AddChunk(1, data[s:e]); err != nil {
		t.Fatal(err)
	}
	out, err := ra.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("assembled bytes diverge from the artifact")
	}
}
