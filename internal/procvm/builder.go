package procvm

import (
	"encoding/binary"
	"fmt"
)

// Builder assembles pipeline modules with a fluent API and validates them
// statically (pool references, operand encoding, stack balance) before
// producing an immutable Module.
//
//	m, err := procvm.NewBuilder("preprocess").
//		Input().
//		Normalize(means, stds).
//		Clamp(-4, 4).
//		Build()
type Builder struct {
	m   Module
	err error
}

// NewBuilder starts a module with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{m: Module{Name: name}}
}

// RequireCaps declares host capabilities the module needs.
func (b *Builder) RequireCaps(c Capability) *Builder {
	b.m.Caps |= c
	return b
}

// WithGasLimit sets the module's own gas ceiling.
func (b *Builder) WithGasLimit(gas uint64) *Builder {
	b.m.GasLimit = gas
	return b
}

func (b *Builder) emit(op OpCode, operands ...int) *Builder {
	if b.err != nil {
		return b
	}
	if len(operands) != op.Operands() {
		b.err = fmt.Errorf("procvm: %v takes %d operands, got %d", op, op.Operands(), len(operands))
		return b
	}
	b.m.Code = append(b.m.Code, byte(op))
	for _, v := range operands {
		if v < 0 || v > 0xFFFF {
			b.err = fmt.Errorf("procvm: operand %d out of u16 range", v)
			return b
		}
		var tmp [2]byte
		binary.LittleEndian.PutUint16(tmp[:], uint16(v))
		b.m.Code = append(b.m.Code, tmp[:]...)
	}
	return b
}

func (b *Builder) scalarConst(v float32) int {
	for i, s := range b.m.Scalars {
		if s == v {
			return i
		}
	}
	b.m.Scalars = append(b.m.Scalars, v)
	return len(b.m.Scalars) - 1
}

func (b *Builder) vectorConst(v []float32) int {
	b.m.Vectors = append(b.m.Vectors, append([]float32(nil), v...))
	return len(b.m.Vectors) - 1
}

// Input pushes the module input.
func (b *Builder) Input() *Builder { return b.emit(OpInput) }

// PushScalar pushes a scalar constant.
func (b *Builder) PushScalar(v float32) *Builder {
	if b.err != nil {
		return b
	}
	return b.emit(OpPushScalar, b.scalarConst(v))
}

// PushVector pushes a vector constant.
func (b *Builder) PushVector(v []float32) *Builder {
	if b.err != nil {
		return b
	}
	return b.emit(OpPushVector, b.vectorConst(v))
}

// Add, Sub, Mul, Div emit the binary arithmetic ops.
func (b *Builder) Add() *Builder { return b.emit(OpAdd) }

// Sub emits a subtraction.
func (b *Builder) Sub() *Builder { return b.emit(OpSub) }

// Mul emits a multiplication.
func (b *Builder) Mul() *Builder { return b.emit(OpMul) }

// Div emits a division.
func (b *Builder) Div() *Builder { return b.emit(OpDiv) }

// Neg negates the top value.
func (b *Builder) Neg() *Builder { return b.emit(OpNeg) }

// Abs takes element-wise absolute value.
func (b *Builder) Abs() *Builder { return b.emit(OpAbs) }

// Square squares element-wise.
func (b *Builder) Square() *Builder { return b.emit(OpSquare) }

// Sqrt takes the element-wise square root.
func (b *Builder) Sqrt() *Builder { return b.emit(OpSqrt) }

// Normalize subtracts mean and divides by std element-wise.
func (b *Builder) Normalize(mean, std []float32) *Builder {
	if b.err != nil {
		return b
	}
	if len(mean) != len(std) {
		b.err = fmt.Errorf("procvm: Normalize mean/std lengths %d vs %d", len(mean), len(std))
		return b
	}
	return b.PushVector(mean).PushVector(std).emit(OpNormalize)
}

// Clamp bounds elements to [lo, hi].
func (b *Builder) Clamp(lo, hi float32) *Builder {
	return b.PushScalar(lo).PushScalar(hi).emit(OpClamp)
}

// Threshold binarizes against t.
func (b *Builder) Threshold(t float32) *Builder {
	return b.PushScalar(t).emit(OpThreshold)
}

// Softmax applies softmax to the top vector.
func (b *Builder) Softmax() *Builder { return b.emit(OpSoftmax) }

// ArgMax reduces the top vector to the index of its maximum.
func (b *Builder) ArgMax() *Builder { return b.emit(OpArgMax) }

// Max reduces the top vector to its maximum.
func (b *Builder) Max() *Builder { return b.emit(OpMax) }

// Mean reduces the top vector to its mean.
func (b *Builder) Mean() *Builder { return b.emit(OpMean) }

// Sum reduces the top vector to its sum.
func (b *Builder) Sum() *Builder { return b.emit(OpSum) }

// MeanPool averages non-overlapping windows of size k.
func (b *Builder) MeanPool(k int) *Builder { return b.emit(OpMeanPool, k) }

// Slice keeps elements [lo, hi) of the top vector.
func (b *Builder) Slice(lo, hi int) *Builder { return b.emit(OpSlice, lo, hi) }

// ReLU applies the rectifier element-wise.
func (b *Builder) ReLU() *Builder { return b.emit(OpReLU) }

// Sigmoid applies the logistic function element-wise.
func (b *Builder) Sigmoid() *Builder { return b.emit(OpSigmoid) }

// Tanh applies the hyperbolic tangent element-wise.
func (b *Builder) Tanh() *Builder { return b.emit(OpTanh) }

// MatVec multiplies the top vector (length in) by the [in, out] row-major
// weight matrix and adds the bias — the lowered form of a dense layer.
func (b *Builder) MatVec(w []float32, bias []float32) *Builder {
	if b.err != nil {
		return b
	}
	out := len(bias)
	if out == 0 || len(w)%out != 0 {
		b.err = fmt.Errorf("procvm: MatVec weights %d not a multiple of bias %d", len(w), out)
		return b
	}
	return b.emit(OpMatVec, b.vectorConst(w), b.vectorConst(bias), out)
}

// Conv2D convolves the top vector, interpreted as a flattened [inC, h, w]
// feature map, with the [outC, inC*kh*kw] row-major kernel matrix.
func (b *Builder) Conv2D(w, bias []float32, inC, h, wd, outC, kh, kw, stride, pad int) *Builder {
	if b.err != nil {
		return b
	}
	if len(w) != outC*inC*kh*kw || len(bias) != outC {
		b.err = fmt.Errorf("procvm: Conv2D weights %d / bias %d inconsistent with geometry", len(w), len(bias))
		return b
	}
	return b.emit(OpConv2D, b.vectorConst(w), b.vectorConst(bias), inC, h, wd, outC, kh, kw, stride, pad)
}

// MaxPool2D max-pools the top vector as a flattened [ch, h, w] map.
func (b *Builder) MaxPool2D(ch, h, w, k, stride int) *Builder {
	return b.emit(OpMaxPool2D, ch, h, w, k, stride)
}

// Dup duplicates the top value.
func (b *Builder) Dup() *Builder { return b.emit(OpDup) }

// Drop discards the top value.
func (b *Builder) Drop() *Builder { return b.emit(OpDrop) }

// Swap exchanges the top two values.
func (b *Builder) Swap() *Builder { return b.emit(OpSwap) }

// Build validates and returns the module.
func (b *Builder) Build() (*Module, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := Validate(&b.m); err != nil {
		return nil, err
	}
	m := b.m // copy
	m.Code = append([]byte(nil), b.m.Code...)
	return &m, nil
}

// Validate statically checks a module: opcodes are defined, operands are
// complete, pool references are in range and the stack never underflows
// (conservatively, treating every value as one slot).
func Validate(m *Module) error {
	pc := 0
	depth := 0
	for pc < len(m.Code) {
		op := OpCode(m.Code[pc])
		pc++
		if !op.Valid() {
			return fmt.Errorf("procvm: invalid opcode %d at offset %d", byte(op), pc-1)
		}
		operands := make([]int, op.Operands())
		for i := range operands {
			if pc+2 > len(m.Code) {
				return fmt.Errorf("procvm: truncated operand for %v at offset %d", op, pc)
			}
			operands[i] = int(binary.LittleEndian.Uint16(m.Code[pc:]))
			pc += 2
		}
		switch op {
		case OpPushScalar:
			if operands[0] >= len(m.Scalars) {
				return fmt.Errorf("procvm: scalar index %d out of pool (size %d)", operands[0], len(m.Scalars))
			}
		case OpPushVector:
			if operands[0] >= len(m.Vectors) {
				return fmt.Errorf("procvm: vector index %d out of pool (size %d)", operands[0], len(m.Vectors))
			}
		case OpMeanPool:
			if operands[0] == 0 {
				return fmt.Errorf("procvm: meanpool window must be positive")
			}
		case OpSlice:
			if operands[0] > operands[1] {
				return fmt.Errorf("procvm: slice bounds [%d:%d] inverted", operands[0], operands[1])
			}
		case OpMatVec:
			if operands[0] >= len(m.Vectors) || operands[1] >= len(m.Vectors) {
				return fmt.Errorf("procvm: matvec pool index out of pool (size %d)", len(m.Vectors))
			}
			if operands[2] == 0 {
				return fmt.Errorf("procvm: matvec output width must be positive")
			}
		case OpConv2D:
			if operands[0] >= len(m.Vectors) || operands[1] >= len(m.Vectors) {
				return fmt.Errorf("procvm: conv2d pool index out of pool (size %d)", len(m.Vectors))
			}
			for _, v := range operands[2:9] {
				if v == 0 {
					return fmt.Errorf("procvm: conv2d geometry operand must be positive")
				}
			}
		case OpMaxPool2D:
			for _, v := range operands {
				if v == 0 {
					return fmt.Errorf("procvm: maxpool2d geometry operand must be positive")
				}
			}
		}
		pops, pushes := stackEffect(op)
		depth -= pops
		if depth < 0 {
			return fmt.Errorf("procvm: stack underflow at %v (offset %d)", op, pc)
		}
		depth += pushes
	}
	if depth < 1 {
		return fmt.Errorf("procvm: module leaves %d values on the stack, need ≥1", depth)
	}
	return nil
}

// stackEffect returns how many values op pops and pushes.
func stackEffect(op OpCode) (pops, pushes int) {
	switch op {
	case OpHalt:
		return 0, 0
	case OpInput, OpPushScalar, OpPushVector:
		return 0, 1
	case OpDup:
		return 1, 2
	case OpDrop:
		return 1, 0
	case OpSwap:
		return 2, 2
	case OpAdd, OpSub, OpMul, OpDiv, OpThreshold:
		return 2, 1
	case OpClamp, OpNormalize:
		return 3, 1
	default: // unary and reductions
		return 1, 1
	}
}
