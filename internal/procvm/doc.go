// Package procvm is the portable pre/post-processing sandbox of §IV: a
// tiny stack-based virtual machine whose modules (windowing, scaling,
// spectral features, thresholding, argmax) travel with a model version
// through the registry and run identically on every device class — the
// answer to processing pipelines being even less portable than the
// models they wrap.
//
// Modules are built with a validating Builder (pool references, operand
// encoding and stack balance are checked statically), serialized in a
// versioned binary format, and executed under a capability gate: an
// owner grants CapSensor/CapNetwork-style permissions per runtime, so a
// marketplace host can run a stranger's pipeline without trusting it —
// the §IV orchestration story's sandbox requirement. The interpreter is
// deliberately allocation-light and branch-simple, standing in for the
// WebAssembly-class runtimes the paper points at.
//
// Beyond hand-built pipelines, internal/compat compiles whole trained
// networks into modules — dense, convolution, pooling and activation
// instructions — making the VM a portable protected-execution target:
// a module's gas limit is pinned at compile time to its measured
// per-query cost, so a hosting runtime can meter a stranger's model
// deterministically without trusting its cost claims.
package procvm
