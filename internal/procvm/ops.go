package procvm

import "fmt"

// OpCode is one instruction of the pipeline ISA. Instructions operate on a
// stack of values; a value is either a scalar or a float32 vector. Binary
// arithmetic broadcasts scalars over vectors. The ISA is deliberately
// control-flow-free (no jumps): every module is a straight-line pipeline,
// which makes gas exactly predictable and termination trivial.
type OpCode byte

// The instruction set.
const (
	OpHalt OpCode = iota
	// OpInput pushes the module input vector.
	OpInput
	// OpPushScalar <u16 idx> pushes Scalars[idx].
	OpPushScalar
	// OpPushVector <u16 idx> pushes a copy of Vectors[idx].
	OpPushVector
	// Stack shuffling.
	OpDup
	OpDrop
	OpSwap
	// Binary arithmetic: pops b then a, pushes a∘b (scalar broadcast).
	OpAdd
	OpSub
	OpMul
	OpDiv
	// Unary.
	OpNeg
	OpAbs
	OpSquare
	OpSqrt
	// OpClamp pops hi, lo, x and pushes x clamped element-wise.
	OpClamp
	// OpNormalize pops std (vector), mean (vector), x and pushes (x-mean)/std.
	OpNormalize
	// OpThreshold pops t (scalar), x and pushes the element-wise indicator x > t.
	OpThreshold
	// OpSoftmax pops a vector, pushes its softmax.
	OpSoftmax
	// OpArgMax pops a vector, pushes the index of its maximum as a scalar.
	OpArgMax
	// OpMax / OpMean / OpSum pop a vector and push the reduction as a scalar.
	OpMax
	OpMean
	OpSum
	// OpMeanPool <u16 k> pops a vector and pushes its length/k window means
	// (k must divide the length).
	OpMeanPool
	// OpSlice <u16 lo> <u16 hi> pops a vector and pushes v[lo:hi].
	OpSlice
	// Neural-network ops (the compat→procvm lowering backend). These run
	// the exact float32 kernels the native nn layers use, so a compiled
	// module is bit-identical to the network it was lowered from.
	//
	// OpReLU / OpSigmoid / OpTanh apply the activation element-wise.
	OpReLU
	OpSigmoid
	OpTanh
	// OpMatVec <u16 w> <u16 b> <u16 out> pops x (length `in`), reads the
	// weight matrix [in, out] from Vectors[w] and the bias from
	// Vectors[b], and pushes x·W + b. Charges in×out supplemental gas.
	OpMatVec
	// OpConv2D <u16 w> <u16 b> <u16 inC> <u16 h> <u16 wd> <u16 outC>
	// <u16 kh> <u16 kw> <u16 stride> <u16 pad> pops a flattened
	// [inC, h, wd] feature map and pushes the flattened [outC, oh, ow]
	// convolution output. Charges outC·oh·ow·inC·kh·kw supplemental gas.
	OpConv2D
	// OpMaxPool2D <u16 ch> <u16 h> <u16 w> <u16 k> <u16 stride> pops a
	// flattened [ch, h, w] map and pushes the k×k max-pooled map.
	OpMaxPool2D
	opCount // sentinel
)

// opInfo describes one instruction's mnemonic and operand count (u16
// operands following the opcode byte).
type opInfo struct {
	name     string
	operands int
}

var opTable = [opCount]opInfo{
	OpHalt:       {"halt", 0},
	OpInput:      {"input", 0},
	OpPushScalar: {"pushs", 1},
	OpPushVector: {"pushv", 1},
	OpDup:        {"dup", 0},
	OpDrop:       {"drop", 0},
	OpSwap:       {"swap", 0},
	OpAdd:        {"add", 0},
	OpSub:        {"sub", 0},
	OpMul:        {"mul", 0},
	OpDiv:        {"div", 0},
	OpNeg:        {"neg", 0},
	OpAbs:        {"abs", 0},
	OpSquare:     {"square", 0},
	OpSqrt:       {"sqrt", 0},
	OpClamp:      {"clamp", 0},
	OpNormalize:  {"normalize", 0},
	OpThreshold:  {"threshold", 0},
	OpSoftmax:    {"softmax", 0},
	OpArgMax:     {"argmax", 0},
	OpMax:        {"max", 0},
	OpMean:       {"mean", 0},
	OpSum:        {"sum", 0},
	OpMeanPool:   {"meanpool", 1},
	OpSlice:      {"slice", 2},
	OpReLU:       {"relu", 0},
	OpSigmoid:    {"sigmoid", 0},
	OpTanh:       {"tanh", 0},
	OpMatVec:     {"matvec", 3},
	OpConv2D:     {"conv2d", 10},
	OpMaxPool2D:  {"maxpool2d", 5},
}

// String implements fmt.Stringer.
func (o OpCode) String() string {
	if int(o) < len(opTable) && opTable[o].name != "" {
		return opTable[o].name
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Valid reports whether the opcode is defined.
func (o OpCode) Valid() bool { return int(o) < int(opCount) && opTable[o].name != "" }

// Operands returns the number of u16 operands the opcode carries.
func (o OpCode) Operands() int {
	if !o.Valid() {
		return 0
	}
	return opTable[o].operands
}

// gasCost returns the metered cost of executing op on a value of n
// elements (n=1 for scalars). Costs are deterministic so a module's gas is
// a pure function of its code and input length.
func gasCost(op OpCode, n int) uint64 {
	switch op {
	case OpHalt, OpDup, OpDrop, OpSwap, OpPushScalar:
		return 1
	case OpInput, OpPushVector, OpSlice:
		return uint64(n) + 1
	case OpSoftmax:
		return uint64(4*n) + 1
	case OpSqrt, OpNormalize, OpSigmoid, OpTanh:
		return uint64(2*n) + 1
	default:
		// The heavy nn ops (OpMatVec, OpConv2D, OpMaxPool2D) land here for
		// their base cost and charge supplemental gas proportional to the
		// actual MAC count inside the interpreter, after decoding operands
		// — still a pure function of the code and input length.
		return uint64(n) + 1
	}
}
