package procvm

import "fmt"

// OpCode is one instruction of the pipeline ISA. Instructions operate on a
// stack of values; a value is either a scalar or a float32 vector. Binary
// arithmetic broadcasts scalars over vectors. The ISA is deliberately
// control-flow-free (no jumps): every module is a straight-line pipeline,
// which makes gas exactly predictable and termination trivial.
type OpCode byte

// The instruction set.
const (
	OpHalt OpCode = iota
	// OpInput pushes the module input vector.
	OpInput
	// OpPushScalar <u16 idx> pushes Scalars[idx].
	OpPushScalar
	// OpPushVector <u16 idx> pushes a copy of Vectors[idx].
	OpPushVector
	// Stack shuffling.
	OpDup
	OpDrop
	OpSwap
	// Binary arithmetic: pops b then a, pushes a∘b (scalar broadcast).
	OpAdd
	OpSub
	OpMul
	OpDiv
	// Unary.
	OpNeg
	OpAbs
	OpSquare
	OpSqrt
	// OpClamp pops hi, lo, x and pushes x clamped element-wise.
	OpClamp
	// OpNormalize pops std (vector), mean (vector), x and pushes (x-mean)/std.
	OpNormalize
	// OpThreshold pops t (scalar), x and pushes the element-wise indicator x > t.
	OpThreshold
	// OpSoftmax pops a vector, pushes its softmax.
	OpSoftmax
	// OpArgMax pops a vector, pushes the index of its maximum as a scalar.
	OpArgMax
	// OpMax / OpMean / OpSum pop a vector and push the reduction as a scalar.
	OpMax
	OpMean
	OpSum
	// OpMeanPool <u16 k> pops a vector and pushes its length/k window means
	// (k must divide the length).
	OpMeanPool
	// OpSlice <u16 lo> <u16 hi> pops a vector and pushes v[lo:hi].
	OpSlice
	opCount // sentinel
)

// opInfo describes one instruction's mnemonic and operand count (u16
// operands following the opcode byte).
type opInfo struct {
	name     string
	operands int
}

var opTable = [opCount]opInfo{
	OpHalt:       {"halt", 0},
	OpInput:      {"input", 0},
	OpPushScalar: {"pushs", 1},
	OpPushVector: {"pushv", 1},
	OpDup:        {"dup", 0},
	OpDrop:       {"drop", 0},
	OpSwap:       {"swap", 0},
	OpAdd:        {"add", 0},
	OpSub:        {"sub", 0},
	OpMul:        {"mul", 0},
	OpDiv:        {"div", 0},
	OpNeg:        {"neg", 0},
	OpAbs:        {"abs", 0},
	OpSquare:     {"square", 0},
	OpSqrt:       {"sqrt", 0},
	OpClamp:      {"clamp", 0},
	OpNormalize:  {"normalize", 0},
	OpThreshold:  {"threshold", 0},
	OpSoftmax:    {"softmax", 0},
	OpArgMax:     {"argmax", 0},
	OpMax:        {"max", 0},
	OpMean:       {"mean", 0},
	OpSum:        {"sum", 0},
	OpMeanPool:   {"meanpool", 1},
	OpSlice:      {"slice", 2},
}

// String implements fmt.Stringer.
func (o OpCode) String() string {
	if int(o) < len(opTable) && opTable[o].name != "" {
		return opTable[o].name
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Valid reports whether the opcode is defined.
func (o OpCode) Valid() bool { return int(o) < int(opCount) && opTable[o].name != "" }

// Operands returns the number of u16 operands the opcode carries.
func (o OpCode) Operands() int {
	if !o.Valid() {
		return 0
	}
	return opTable[o].operands
}

// gasCost returns the metered cost of executing op on a value of n
// elements (n=1 for scalars). Costs are deterministic so a module's gas is
// a pure function of its code and input length.
func gasCost(op OpCode, n int) uint64 {
	switch op {
	case OpHalt, OpDup, OpDrop, OpSwap, OpPushScalar:
		return 1
	case OpInput, OpPushVector, OpSlice:
		return uint64(n) + 1
	case OpSoftmax:
		return uint64(4*n) + 1
	case OpSqrt, OpNormalize:
		return uint64(2*n) + 1
	default:
		return uint64(n) + 1
	}
}
