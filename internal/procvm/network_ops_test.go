package procvm

import (
	"errors"
	"math"
	"testing"
)

// TestMatVecAgainstReference pins OpMatVec with a hand-computed dense
// layer: a 3→2 matrix-vector product plus bias, then the ReLU/Sigmoid/
// Tanh epilogues a compiled network chains after it.
func TestMatVecAgainstReference(t *testing.T) {
	// W is [in=3, out=2] row-major: out_j = sum_i x_i * W[i*2+j] + b_j.
	w := []float32{1, -1, 0.5, 2, -2, 0.25}
	bias := []float32{0.5, -3}
	x := []float32{2, 4, -2}
	// out_0 = 2*1 + 4*0.5 + -2*-2 + 0.5 = 8.5
	// out_1 = 2*-1 + 4*2 + -2*0.25 - 3 = 2.5
	m, err := NewBuilder("dense").Input().MatVec(w, bias).Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, m, x)
	want := []float32{8.5, 2.5}
	for i, v := range want {
		if res.Output.Vec[i] != v {
			t.Fatalf("matvec output %v, want %v", res.Output.Vec, want)
		}
	}

	relu, err := NewBuilder("dense-relu").Input().MatVec(w, bias).Neg().ReLU().Build()
	if err != nil {
		t.Fatal(err)
	}
	if out := run(t, relu, x).Output.Vec; out[0] != 0 || out[1] != 0 {
		t.Fatalf("relu(-matvec) = %v, want zeros", out)
	}
	sig, err := NewBuilder("sig").Input().Sigmoid().Build()
	if err != nil {
		t.Fatal(err)
	}
	if out := run(t, sig, []float32{0}).Output.Vec; out[0] != 0.5 {
		t.Fatalf("sigmoid(0) = %v, want 0.5", out[0])
	}
	tanh, err := NewBuilder("tanh").Input().Tanh().Build()
	if err != nil {
		t.Fatal(err)
	}
	if out := run(t, tanh, []float32{0}).Output.Vec; out[0] != 0 {
		t.Fatalf("tanh(0) = %v, want 0", out[0])
	}
}

// TestMatVecShapeAndPoolErrors pins the runtime's shape policing: a
// weight pool sized for the wrong input width is a type mismatch, not a
// silent misread.
func TestMatVecShapeAndPoolErrors(t *testing.T) {
	m, err := NewBuilder("bad").Input().MatVec([]float32{1, 2}, []float32{0}).Build()
	if err != nil {
		t.Fatal(err)
	}
	// Module expects in=2; feed 3 inputs.
	if _, err := NewRuntime(CapNone).Run(m, []float32{1, 2, 3}); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("mis-shaped matvec: %v, want ErrTypeMismatch", err)
	}
	if b := NewBuilder("w").Input().MatVec([]float32{1, 2, 3}, []float32{0, 0}); b.err == nil {
		t.Fatal("builder accepted weights not a multiple of bias")
	}
}

// TestConv2DAgainstReference pins OpConv2D with a hand-computed 1×3×3
// map under a 2×2 identity-corner kernel, covering stride and the
// zero-padded taps.
func TestConv2DAgainstReference(t *testing.T) {
	// One channel, 3×3 input, one output channel, 2×2 kernel that picks
	// the top-left tap, stride 1, no padding → the 2×2 top-left window.
	x := []float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	kernel := []float32{1, 0, 0, 0}
	m, err := NewBuilder("conv").Input().Conv2D(kernel, []float32{10}, 1, 3, 3, 1, 2, 2, 1, 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, m, x)
	want := []float32{11, 12, 14, 15} // top-left of each window + bias 10
	if len(res.Output.Vec) != len(want) {
		t.Fatalf("conv output %v, want %v", res.Output.Vec, want)
	}
	for i, v := range want {
		if res.Output.Vec[i] != v {
			t.Fatalf("conv output %v, want %v", res.Output.Vec, want)
		}
	}

	// Padding 1 with a 3×3 sum kernel on a 1×1 input: only the center tap
	// lands on data, everything else reads zeros.
	sum9 := []float32{1, 1, 1, 1, 1, 1, 1, 1, 1}
	padded, err := NewBuilder("pad").Input().Conv2D(sum9, []float32{0}, 1, 1, 1, 1, 3, 3, 1, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	if out := run(t, padded, []float32{7}).Output.Vec; len(out) != 1 || out[0] != 7 {
		t.Fatalf("padded conv = %v, want [7]", out)
	}

	// Shape errors: wrong input length for the declared geometry.
	if _, err := NewRuntime(CapNone).Run(m, []float32{1, 2, 3}); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("mis-shaped conv input: %v, want ErrTypeMismatch", err)
	}
	if b := NewBuilder("badgeo").Input().Conv2D(kernel, []float32{0, 0}, 1, 3, 3, 1, 2, 2, 1, 0); b.err == nil {
		t.Fatal("builder accepted bias inconsistent with outC")
	}
}

// TestMaxPool2DAgainstReference pins OpMaxPool2D: 2×2/stride-2 windows
// over a 2-channel 4×4 map, plus the geometry rejections.
func TestMaxPool2DAgainstReference(t *testing.T) {
	x := make([]float32, 2*4*4)
	for i := range x {
		x[i] = float32(i)
	}
	m, err := NewBuilder("pool").Input().MaxPool2D(2, 4, 4, 2, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, m, x)
	// Each 2×2 window's max is its bottom-right element.
	want := []float32{5, 7, 13, 15, 21, 23, 29, 31}
	for i, v := range want {
		if res.Output.Vec[i] != v {
			t.Fatalf("pool output %v, want %v", res.Output.Vec, want)
		}
	}
	if _, err := NewRuntime(CapNone).Run(m, []float32{1, 2}); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("mis-shaped pool input: %v, want ErrTypeMismatch", err)
	}
	empty, err := NewBuilder("empty").Input().MaxPool2D(1, 2, 2, 3, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRuntime(CapNone).Run(empty, []float32{1, 2, 3, 4}); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("empty pool output: %v, want ErrTypeMismatch", err)
	}
}

// TestSubDivAndStackHelpers covers the remaining arithmetic emitters and
// the Drop stack op through a pipeline that computes (x - 1) / 2 and then
// discards a duplicate.
func TestSubDivAndStackHelpers(t *testing.T) {
	m, err := NewBuilder("arith").
		Input().PushScalar(1).Sub().PushScalar(2).Div().Dup().Drop().Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, m, []float32{5, -3})
	want := []float32{2, -2}
	for i, v := range want {
		if res.Output.Vec[i] != v {
			t.Fatalf("(x-1)/2 = %v, want %v", res.Output.Vec, want)
		}
	}
	// Division by zero stays IEEE: +Inf, not a panic.
	dz, err := NewBuilder("dz").Input().PushScalar(0).Div().Build()
	if err != nil {
		t.Fatal(err)
	}
	if out := run(t, dz, []float32{1}).Output.Vec; !math.IsInf(float64(out[0]), 1) {
		t.Fatalf("1/0 = %v, want +Inf", out[0])
	}
}

// TestModuleDecodeRejectTable drives DecodeModule through the malformed
// encodings the fuzz corpus seeds: truncation at every section boundary
// and trailing garbage after a valid body.
func TestModuleDecodeRejectTable(t *testing.T) {
	m, err := NewBuilder("codec").
		RequireCaps(CapSensor).WithGasLimit(500).
		Input().PushScalar(2).Mul().MatVec([]float32{1, 2}, []float32{0}).Build()
	if err != nil {
		t.Fatal(err)
	}
	enc := m.Encode()
	dec, err := DecodeModule(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Digest() != m.Digest() || dec.GasLimit != 500 || dec.Caps != CapSensor {
		t.Fatal("decode lost module metadata")
	}
	for cut := 0; cut < len(enc); cut += 3 {
		if _, err := DecodeModule(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	if _, err := DecodeModule(append(append([]byte(nil), enc...), 0xAB)); err == nil {
		t.Fatal("trailing byte decoded")
	}
}
