package procvm

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func run(t *testing.T, m *Module, input []float32) Result {
	t.Helper()
	res, err := NewRuntime(CapNone).Run(m, input)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestNormalizePipeline(t *testing.T) {
	mean := []float32{1, 2, 3}
	std := []float32{2, 2, 2}
	m, err := NewBuilder("norm").Input().Normalize(mean, std).Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, m, []float32{3, 2, 1})
	want := []float32{1, 0, -1}
	for i, v := range want {
		if res.Output.Vec[i] != v {
			t.Fatalf("output = %v, want %v", res.Output.Vec, want)
		}
	}
	if res.GasUsed == 0 {
		t.Fatal("gas not metered")
	}
}

func TestSoftmaxArgmaxPostprocess(t *testing.T) {
	m, err := NewBuilder("post").Input().Softmax().ArgMax().Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, m, []float32{0.1, 2.5, -1, 0.3})
	if res.Output.IsVec || res.Output.Scalar != 1 {
		t.Fatalf("argmax = %+v, want scalar 1", res.Output)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	m, _ := NewBuilder("sm").Input().Softmax().Build()
	res := run(t, m, []float32{3, 1, 0.2, -5})
	var s float64
	for _, v := range res.Output.Vec {
		if v < 0 {
			t.Fatalf("softmax produced negative %v", v)
		}
		s += float64(v)
	}
	if math.Abs(s-1) > 1e-5 {
		t.Fatalf("softmax sums to %v", s)
	}
}

func TestThresholdAndClamp(t *testing.T) {
	m, err := NewBuilder("t").Input().Clamp(-1, 1).Threshold(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, m, []float32{-5, -0.5, 0.5, 5})
	want := []float32{0, 0, 1, 1}
	for i, v := range want {
		if res.Output.Vec[i] != v {
			t.Fatalf("output = %v, want %v", res.Output.Vec, want)
		}
	}
}

func TestArithmeticBroadcast(t *testing.T) {
	m, err := NewBuilder("a").Input().PushScalar(2).Mul().PushScalar(1).Add().Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, m, []float32{1, 2, 3})
	want := []float32{3, 5, 7}
	for i, v := range want {
		if res.Output.Vec[i] != v {
			t.Fatalf("output = %v, want %v", res.Output.Vec, want)
		}
	}
}

func TestVectorVectorArithmetic(t *testing.T) {
	m, err := NewBuilder("vv").Input().PushVector([]float32{10, 20, 30}).Add().Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, m, []float32{1, 2, 3})
	want := []float32{11, 22, 33}
	for i, v := range want {
		if res.Output.Vec[i] != v {
			t.Fatalf("output = %v", res.Output.Vec)
		}
	}
}

func TestMeanPoolAndSlice(t *testing.T) {
	m, err := NewBuilder("mp").Input().MeanPool(2).Slice(0, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, m, []float32{1, 3, 5, 7, 9, 11})
	want := []float32{2, 6}
	if len(res.Output.Vec) != 2 || res.Output.Vec[0] != want[0] || res.Output.Vec[1] != want[1] {
		t.Fatalf("output = %v, want %v", res.Output.Vec, want)
	}
}

func TestMeanPoolRejectsNonDivisor(t *testing.T) {
	m, err := NewBuilder("mp").Input().MeanPool(4).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRuntime(CapNone).Run(m, []float32{1, 2, 3}); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("want type mismatch, got %v", err)
	}
}

func TestReductions(t *testing.T) {
	for _, c := range []struct {
		build func(*Builder) *Builder
		want  float32
	}{
		{func(b *Builder) *Builder { return b.Max() }, 9},
		{func(b *Builder) *Builder { return b.Sum() }, 15},
		{func(b *Builder) *Builder { return b.Mean() }, 5},
	} {
		m, err := c.build(NewBuilder("r").Input()).Build()
		if err != nil {
			t.Fatal(err)
		}
		res := run(t, m, []float32{1, 9, 5})
		if res.Output.IsVec || res.Output.Scalar != c.want {
			t.Fatalf("reduction = %+v, want %v", res.Output, c.want)
		}
	}
}

func TestStackOpsDupSwapDrop(t *testing.T) {
	// input, dup, sum, swap, mean, add → sum + mean
	m, err := NewBuilder("s").Input().Dup().Sum().Swap().Mean().Add().Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, m, []float32{2, 4})
	if res.Output.Scalar != 9 { // 6 + 3
		t.Fatalf("got %v, want 9", res.Output.Scalar)
	}
}

func TestCapabilityGating(t *testing.T) {
	m, err := NewBuilder("cap").RequireCaps(CapSensor | CapNetwork).Input().Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRuntime(CapSensor).Run(m, []float32{1}); !errors.Is(err, ErrCapabilityDenied) {
		t.Fatalf("want capability denial, got %v", err)
	}
	if _, err := NewRuntime(CapSensor|CapNetwork|CapStorage).Run(m, []float32{1}); err != nil {
		t.Fatalf("superset grant rejected: %v", err)
	}
}

func TestGasLimitEnforced(t *testing.T) {
	b := NewBuilder("hog").Input()
	for i := 0; i < 100; i++ {
		b = b.PushScalar(1).Add()
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(CapNone)
	rt.MaxGas = 50
	if _, err := rt.Run(m, make([]float32, 64)); !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("want out of gas, got %v", err)
	}
	// Module-declared limit tighter than host limit also applies.
	m2, _ := NewBuilder("self-limited").WithGasLimit(3).Input().Build()
	if _, err := NewRuntime(CapNone).Run(m2, make([]float32, 64)); !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("want out of gas from module limit, got %v", err)
	}
}

func TestGasDeterministic(t *testing.T) {
	m, _ := NewBuilder("g").Input().Softmax().ArgMax().Build()
	in := make([]float32, 32)
	r1 := run(t, m, in)
	r2 := run(t, m, in)
	if r1.GasUsed != r2.GasUsed {
		t.Fatalf("gas not deterministic: %d vs %d", r1.GasUsed, r2.GasUsed)
	}
}

func TestStackUnderflowCaughtByValidation(t *testing.T) {
	if _, err := NewBuilder("bad").Add().Build(); err == nil {
		t.Fatal("builder accepted stack underflow")
	}
	// Hand-crafted module that bypasses the builder.
	m := &Module{Name: "evil", Code: []byte{byte(OpAdd)}}
	if err := Validate(m); err == nil {
		t.Fatal("Validate accepted underflowing module")
	}
	if _, err := NewRuntime(CapNone).Run(m, nil); !errors.Is(err, ErrStackUnderflow) {
		t.Fatalf("want stack underflow, got %v", err)
	}
}

func TestInvalidOpcodeRejected(t *testing.T) {
	m := &Module{Name: "evil", Code: []byte{250}}
	if err := Validate(m); err == nil {
		t.Fatal("Validate accepted invalid opcode")
	}
	if _, err := NewRuntime(CapNone).Run(m, nil); !errors.Is(err, ErrBadModule) {
		t.Fatalf("want bad module, got %v", err)
	}
}

func TestPoolIndexOutOfRange(t *testing.T) {
	m := &Module{Name: "evil", Code: []byte{byte(OpPushScalar), 9, 0}}
	if err := Validate(m); err == nil {
		t.Fatal("Validate accepted out-of-pool index")
	}
}

func TestStackOverflow(t *testing.T) {
	b := NewBuilder("deep")
	for i := 0; i < 200; i++ {
		b = b.PushScalar(1)
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(CapNone)
	rt.MaxStack = 8
	if _, err := rt.Run(m, nil); !errors.Is(err, ErrStackOverflow) {
		t.Fatalf("want stack overflow, got %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m, err := NewBuilder("roundtrip").
		RequireCaps(CapSensor).
		WithGasLimit(12345).
		Input().
		Normalize([]float32{1, 2}, []float32{3, 4}).
		Clamp(-1, 1).
		Softmax().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	enc := m.Encode()
	m2, err := DecodeModule(enc)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Name != m.Name || m2.Caps != m.Caps || m2.GasLimit != m.GasLimit {
		t.Fatalf("manifest mismatch: %+v vs %+v", m2, m)
	}
	if m.Digest() != m2.Digest() {
		t.Fatal("digest changed across round trip")
	}
	// Behavior identical.
	in := []float32{0.5, -0.5}
	rt := NewRuntime(CapSensor)
	r1, err := rt.Run(m, in)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := rt.Run(m2, in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Output.Vec {
		if r1.Output.Vec[i] != r2.Output.Vec[i] {
			t.Fatal("decoded module behaves differently")
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeModule([]byte("definitely not a module")); err == nil {
		t.Fatal("DecodeModule accepted garbage")
	}
	if _, err := DecodeModule(nil); err == nil {
		t.Fatal("DecodeModule accepted nil")
	}
}

func TestDigestChangesWithContent(t *testing.T) {
	m1, _ := NewBuilder("a").Input().Build()
	m2, _ := NewBuilder("a").Input().Softmax().Build()
	if m1.Digest() == m2.Digest() {
		t.Fatal("different modules share a digest")
	}
}

func TestUnaryOps(t *testing.T) {
	m, err := NewBuilder("u").Input().Neg().Abs().Square().Sqrt().Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, m, []float32{-3, 4})
	want := []float32{3, 4} // |-(-3)| = 3 squared=9 sqrt=3
	for i, v := range want {
		if math.Abs(float64(res.Output.Vec[i]-v)) > 1e-6 {
			t.Fatalf("output = %v, want %v", res.Output.Vec, want)
		}
	}
}

func TestCapabilityString(t *testing.T) {
	if CapNone.String() != "none" {
		t.Fatalf("CapNone = %q", CapNone.String())
	}
	got := (CapSensor | CapStorage).String()
	if got != "sensor|storage" {
		t.Fatalf("caps = %q", got)
	}
}

// Property: module execution is a pure function of (module, input) — same
// gas, same output every time; and softmax+argmax gives the index of the
// max element of the raw input.
func TestArgmaxSoftmaxInvarianceProperty(t *testing.T) {
	m, err := NewBuilder("p").Input().Softmax().ArgMax().Build()
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(CapNone)
	f := func(raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		// Bound values to avoid NaN from quick's extreme floats.
		in := make([]float32, len(raw))
		for i, v := range raw {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				v = 0
			}
			if v > 100 {
				v = 100
			}
			if v < -100 {
				v = -100
			}
			in[i] = v
		}
		res, err := rt.Run(m, in)
		if err != nil {
			return false
		}
		best, bi := in[0], 0
		for i, v := range in[1:] {
			if v > best {
				best, bi = v, i+1
			}
		}
		return int(res.Output.Scalar) == bi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
