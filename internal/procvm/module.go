// Package procvm is a small sandboxed stack virtual machine for the
// pre/post-processing pipelines that accompany a deployed model:
// normalization, thresholding, windowing, argmax, softmax and control-free
// vector arithmetic.
//
// It is the reproduction's stand-in for the WebAssembly modules the paper
// proposes (§III-A, §IV, ref [24] — the hotg.ai Rune container): one
// portable artifact that runs bit-identically on every target, is sandboxed
// behind explicit capability grants, and is resource-bounded by a
// deterministic gas meter. Experiment E7 contrasts the dense portability of
// procvm modules with the sparse native-op support matrix.
package procvm

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Capability is a bitmask of host resources a module may touch. The
// interpreter itself offers no I/O instructions yet; the flags gate what a
// *host integration* may wire into a pipeline stage, and deployment
// refuses modules that demand more than the device policy grants.
type Capability uint32

// Capability flags.
const (
	CapNone    Capability = 0
	CapSensor  Capability = 1 << iota // read a local sensor
	CapNetwork                        // open network connections
	CapStorage                        // persist data locally
)

// Has reports whether c includes all capabilities in want.
func (c Capability) Has(want Capability) bool { return c&want == want }

// String implements fmt.Stringer.
func (c Capability) String() string {
	if c == CapNone {
		return "none"
	}
	var buf bytes.Buffer
	add := func(f Capability, name string) {
		if c&f != 0 {
			if buf.Len() > 0 {
				buf.WriteByte('|')
			}
			buf.WriteString(name)
		}
	}
	add(CapSensor, "sensor")
	add(CapNetwork, "network")
	add(CapStorage, "storage")
	return buf.String()
}

// Module is a compiled processing pipeline: a constant pool, bytecode and a
// manifest (name, required capabilities, gas limit). Modules are immutable
// once built; Digest identifies the exact artifact for registry storage
// and integrity checks.
type Module struct {
	// Name labels the module in registries and reports.
	Name string
	// Caps are the capabilities the module requires from its host.
	Caps Capability
	// GasLimit bounds execution cost; 0 means "host default".
	GasLimit uint64
	// Scalars and Vectors form the constant pool.
	Scalars []float32
	Vectors [][]float32
	// Code is the bytecode (see ops.go for the ISA).
	Code []byte
}

const moduleMagic = "PVM1\n"

// Encode serializes the module to its canonical binary form.
func (m *Module) Encode() []byte {
	var buf bytes.Buffer
	buf.WriteString(moduleMagic)
	putString(&buf, m.Name)
	putU32(&buf, uint32(m.Caps))
	putU64(&buf, m.GasLimit)
	putU32(&buf, uint32(len(m.Scalars)))
	for _, s := range m.Scalars {
		putU32(&buf, math.Float32bits(s))
	}
	putU32(&buf, uint32(len(m.Vectors)))
	for _, v := range m.Vectors {
		putU32(&buf, uint32(len(v)))
		for _, s := range v {
			putU32(&buf, math.Float32bits(s))
		}
	}
	putU32(&buf, uint32(len(m.Code)))
	buf.Write(m.Code)
	return buf.Bytes()
}

// Digest returns the SHA-256 of the canonical encoding — the module's
// content address.
func (m *Module) Digest() [32]byte { return sha256.Sum256(m.Encode()) }

// DecodeModule parses a module from its canonical binary form. Every
// section is read with io.ReadFull and the input must be consumed exactly:
// truncated, trailing or garbage bytes all reject.
func DecodeModule(data []byte) (*Module, error) {
	r := bytes.NewReader(data)
	magic := make([]byte, len(moduleMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != moduleMagic {
		return nil, errors.New("procvm: not a PVM1 module")
	}
	m := &Module{}
	var err error
	if m.Name, err = getString(r); err != nil {
		return nil, err
	}
	caps, err := getU32(r)
	if err != nil {
		return nil, err
	}
	m.Caps = Capability(caps)
	if m.GasLimit, err = getU64(r); err != nil {
		return nil, err
	}
	ns, err := getU32(r)
	if err != nil {
		return nil, err
	}
	if ns > 1<<16 {
		return nil, fmt.Errorf("procvm: implausible scalar pool size %d", ns)
	}
	m.Scalars = make([]float32, ns)
	for i := range m.Scalars {
		b, err := getU32(r)
		if err != nil {
			return nil, err
		}
		m.Scalars[i] = math.Float32frombits(b)
	}
	nv, err := getU32(r)
	if err != nil {
		return nil, err
	}
	if nv > 1<<12 {
		return nil, fmt.Errorf("procvm: implausible vector pool size %d", nv)
	}
	m.Vectors = make([][]float32, nv)
	for i := range m.Vectors {
		ln, err := getU32(r)
		if err != nil {
			return nil, err
		}
		if ln > 1<<20 {
			return nil, fmt.Errorf("procvm: implausible vector length %d", ln)
		}
		vec := make([]float32, ln)
		for j := range vec {
			b, err := getU32(r)
			if err != nil {
				return nil, err
			}
			vec[j] = math.Float32frombits(b)
		}
		m.Vectors[i] = vec
	}
	nc, err := getU32(r)
	if err != nil {
		return nil, err
	}
	if nc > 1<<20 {
		return nil, fmt.Errorf("procvm: implausible code size %d", nc)
	}
	m.Code = make([]byte, nc)
	if _, err := io.ReadFull(r, m.Code); err != nil && nc > 0 {
		return nil, fmt.Errorf("procvm: short code section: %w", err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("procvm: %d trailing bytes after module", r.Len())
	}
	return m, nil
}

func putU32(b *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	b.Write(tmp[:])
}

func putU64(b *bytes.Buffer, v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	b.Write(tmp[:])
}

func putString(b *bytes.Buffer, s string) {
	putU32(b, uint32(len(s)))
	b.WriteString(s)
}

func getU32(r *bytes.Reader) (uint32, error) {
	var tmp [4]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return 0, fmt.Errorf("procvm: truncated module: %w", err)
	}
	return binary.LittleEndian.Uint32(tmp[:]), nil
}

func getU64(r *bytes.Reader) (uint64, error) {
	var tmp [8]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return 0, fmt.Errorf("procvm: truncated module: %w", err)
	}
	return binary.LittleEndian.Uint64(tmp[:]), nil
}

func getString(r *bytes.Reader) (string, error) {
	n, err := getU32(r)
	if err != nil {
		return "", err
	}
	if n > 4096 {
		return "", fmt.Errorf("procvm: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil && n > 0 {
		return "", fmt.Errorf("procvm: truncated string: %w", err)
	}
	return string(buf), nil
}
