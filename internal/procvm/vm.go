package procvm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Value is one stack slot: a scalar or a vector.
type Value struct {
	IsVec  bool
	Scalar float32
	Vec    []float32
}

// Len returns the element count (1 for scalars).
func (v Value) Len() int {
	if v.IsVec {
		return len(v.Vec)
	}
	return 1
}

func scalar(s float32) Value   { return Value{Scalar: s} }
func vector(v []float32) Value { return Value{IsVec: true, Vec: v} }

// Result is the outcome of executing a module.
type Result struct {
	Output  Value
	GasUsed uint64
}

// Runtime executes modules under a host policy: granted capabilities, a
// stack-depth bound and a gas ceiling. The zero value is unusable; use
// NewRuntime.
type Runtime struct {
	// Granted is the capability set the host extends to modules.
	Granted Capability
	// MaxStack bounds the value stack depth.
	MaxStack int
	// MaxGas caps execution cost when the module declares no tighter limit.
	MaxGas uint64
}

// NewRuntime returns a runtime granting the given capabilities with
// default resource bounds (stack 64, gas 1M).
func NewRuntime(granted Capability) *Runtime {
	return &Runtime{Granted: granted, MaxStack: 64, MaxGas: 1 << 20}
}

// Sentinel execution errors.
var (
	ErrCapabilityDenied = errors.New("procvm: module requires capabilities the host did not grant")
	ErrOutOfGas         = errors.New("procvm: out of gas")
	ErrStackOverflow    = errors.New("procvm: stack overflow")
	ErrStackUnderflow   = errors.New("procvm: stack underflow")
	ErrTypeMismatch     = errors.New("procvm: operand type mismatch")
	ErrBadModule        = errors.New("procvm: malformed module")
)

// Run executes the module on the input vector and returns the top of the
// stack at halt.
func (rt *Runtime) Run(m *Module, input []float32) (Result, error) {
	if !rt.Granted.Has(m.Caps) {
		return Result{}, fmt.Errorf("%w: need %v, granted %v", ErrCapabilityDenied, m.Caps, rt.Granted)
	}
	gasLimit := rt.MaxGas
	if m.GasLimit > 0 && m.GasLimit < gasLimit {
		gasLimit = m.GasLimit
	}
	var gas uint64
	stack := make([]Value, 0, 16)

	push := func(v Value) error {
		if len(stack) >= rt.MaxStack {
			return ErrStackOverflow
		}
		stack = append(stack, v)
		return nil
	}
	pop := func() (Value, error) {
		if len(stack) == 0 {
			return Value{}, ErrStackUnderflow
		}
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v, nil
	}
	popVec := func() ([]float32, error) {
		v, err := pop()
		if err != nil {
			return nil, err
		}
		if !v.IsVec {
			return nil, fmt.Errorf("%w: expected vector", ErrTypeMismatch)
		}
		return v.Vec, nil
	}
	popScalar := func() (float32, error) {
		v, err := pop()
		if err != nil {
			return 0, err
		}
		if v.IsVec {
			return 0, fmt.Errorf("%w: expected scalar", ErrTypeMismatch)
		}
		return v.Scalar, nil
	}

	pc := 0
	code := m.Code
	readU16 := func() (int, error) {
		if pc+2 > len(code) {
			return 0, fmt.Errorf("%w: truncated operand at pc=%d", ErrBadModule, pc)
		}
		v := int(binary.LittleEndian.Uint16(code[pc:]))
		pc += 2
		return v, nil
	}

	for pc < len(code) {
		op := OpCode(code[pc])
		pc++
		if !op.Valid() {
			return Result{}, fmt.Errorf("%w: invalid opcode %d at pc=%d", ErrBadModule, byte(op), pc-1)
		}
		// Meter on the size of the value the op touches (top of stack or
		// the pushed value).
		n := 1
		if len(stack) > 0 {
			n = stack[len(stack)-1].Len()
		}
		if op == OpInput {
			n = len(input)
		}
		gas += gasCost(op, n)
		if gas > gasLimit {
			return Result{GasUsed: gas}, fmt.Errorf("%w: used %d of %d", ErrOutOfGas, gas, gasLimit)
		}

		var err error
		switch op {
		case OpHalt:
			pc = len(code)
		case OpInput:
			cp := make([]float32, len(input))
			copy(cp, input)
			err = push(vector(cp))
		case OpPushScalar:
			var idx int
			if idx, err = readU16(); err == nil {
				if idx >= len(m.Scalars) {
					err = fmt.Errorf("%w: scalar pool index %d out of range", ErrBadModule, idx)
				} else {
					err = push(scalar(m.Scalars[idx]))
				}
			}
		case OpPushVector:
			var idx int
			if idx, err = readU16(); err == nil {
				if idx >= len(m.Vectors) {
					err = fmt.Errorf("%w: vector pool index %d out of range", ErrBadModule, idx)
				} else {
					cp := make([]float32, len(m.Vectors[idx]))
					copy(cp, m.Vectors[idx])
					err = push(vector(cp))
				}
			}
		case OpDup:
			var v Value
			if v, err = pop(); err == nil {
				cp := v
				if v.IsVec {
					cp.Vec = append([]float32(nil), v.Vec...)
				}
				if err = push(v); err == nil {
					err = push(cp)
				}
			}
		case OpDrop:
			_, err = pop()
		case OpSwap:
			var a, b Value
			if b, err = pop(); err == nil {
				if a, err = pop(); err == nil {
					if err = push(b); err == nil {
						err = push(a)
					}
				}
			}
		case OpAdd, OpSub, OpMul, OpDiv:
			err = binaryOp(&stack, op, push, pop)
		case OpNeg:
			err = unaryOp(pop, push, func(x float32) float32 { return -x })
		case OpAbs:
			err = unaryOp(pop, push, func(x float32) float32 {
				if x < 0 {
					return -x
				}
				return x
			})
		case OpSquare:
			err = unaryOp(pop, push, func(x float32) float32 { return x * x })
		case OpSqrt:
			err = unaryOp(pop, push, func(x float32) float32 {
				return float32(math.Sqrt(float64(x)))
			})
		case OpClamp:
			var hi, lo float32
			var x Value
			if hi, err = popScalar(); err == nil {
				if lo, err = popScalar(); err == nil {
					if x, err = pop(); err == nil {
						err = push(mapValue(x, func(v float32) float32 {
							if v < lo {
								return lo
							}
							if v > hi {
								return hi
							}
							return v
						}))
					}
				}
			}
		case OpNormalize:
			var std, mean, x []float32
			if std, err = popVec(); err == nil {
				if mean, err = popVec(); err == nil {
					if x, err = popVec(); err == nil {
						if len(x) != len(mean) || len(x) != len(std) {
							err = fmt.Errorf("%w: normalize lengths %d/%d/%d", ErrTypeMismatch, len(x), len(mean), len(std))
						} else {
							out := make([]float32, len(x))
							for i := range x {
								d := std[i]
								if d == 0 {
									d = 1
								}
								out[i] = (x[i] - mean[i]) / d
							}
							err = push(vector(out))
						}
					}
				}
			}
		case OpThreshold:
			var t float32
			var x Value
			if t, err = popScalar(); err == nil {
				if x, err = pop(); err == nil {
					err = push(mapValue(x, func(v float32) float32 {
						if v > t {
							return 1
						}
						return 0
					}))
				}
			}
		case OpSoftmax:
			var x []float32
			if x, err = popVec(); err == nil {
				err = push(vector(softmax(x)))
			}
		case OpArgMax:
			var x []float32
			if x, err = popVec(); err == nil {
				if len(x) == 0 {
					err = fmt.Errorf("%w: argmax of empty vector", ErrTypeMismatch)
				} else {
					best, bi := x[0], 0
					for i, v := range x[1:] {
						if v > best {
							best, bi = v, i+1
						}
					}
					err = push(scalar(float32(bi)))
				}
			}
		case OpMax, OpMean, OpSum:
			var x []float32
			if x, err = popVec(); err == nil {
				if len(x) == 0 {
					err = fmt.Errorf("%w: reduction of empty vector", ErrTypeMismatch)
				} else {
					err = push(scalar(reduce(op, x)))
				}
			}
		case OpMeanPool:
			var k int
			if k, err = readU16(); err == nil {
				var x []float32
				if x, err = popVec(); err == nil {
					if k <= 0 || len(x)%k != 0 {
						err = fmt.Errorf("%w: meanpool window %d does not divide length %d", ErrTypeMismatch, k, len(x))
					} else {
						out := make([]float32, len(x)/k)
						for i := range out {
							var s float32
							for j := 0; j < k; j++ {
								s += x[i*k+j]
							}
							out[i] = s / float32(k)
						}
						err = push(vector(out))
					}
				}
			}
		case OpSlice:
			var lo, hi int
			if lo, err = readU16(); err == nil {
				if hi, err = readU16(); err == nil {
					var x []float32
					if x, err = popVec(); err == nil {
						if lo > hi || hi > len(x) {
							err = fmt.Errorf("%w: slice [%d:%d] of length %d", ErrTypeMismatch, lo, hi, len(x))
						} else {
							err = push(vector(append([]float32(nil), x[lo:hi]...)))
						}
					}
				}
			}
		}
		if err != nil {
			return Result{GasUsed: gas}, err
		}
	}
	if len(stack) == 0 {
		return Result{GasUsed: gas}, fmt.Errorf("%w: module left an empty stack", ErrBadModule)
	}
	return Result{Output: stack[len(stack)-1], GasUsed: gas}, nil
}

func mapValue(v Value, f func(float32) float32) Value {
	if !v.IsVec {
		return scalar(f(v.Scalar))
	}
	out := make([]float32, len(v.Vec))
	for i, x := range v.Vec {
		out[i] = f(x)
	}
	return vector(out)
}

func unaryOp(pop func() (Value, error), push func(Value) error, f func(float32) float32) error {
	v, err := pop()
	if err != nil {
		return err
	}
	return push(mapValue(v, f))
}

func binaryOp(stack *[]Value, op OpCode, push func(Value) error, pop func() (Value, error)) error {
	b, err := pop()
	if err != nil {
		return err
	}
	a, err := pop()
	if err != nil {
		return err
	}
	apply := func(x, y float32) float32 {
		switch op {
		case OpAdd:
			return x + y
		case OpSub:
			return x - y
		case OpMul:
			return x * y
		default:
			return x / y
		}
	}
	switch {
	case !a.IsVec && !b.IsVec:
		return push(scalar(apply(a.Scalar, b.Scalar)))
	case a.IsVec && !b.IsVec:
		return push(mapValue(a, func(x float32) float32 { return apply(x, b.Scalar) }))
	case !a.IsVec && b.IsVec:
		return push(mapValue(b, func(y float32) float32 { return apply(a.Scalar, y) }))
	default:
		if len(a.Vec) != len(b.Vec) {
			return fmt.Errorf("%w: vector lengths %d vs %d", ErrTypeMismatch, len(a.Vec), len(b.Vec))
		}
		out := make([]float32, len(a.Vec))
		for i := range out {
			out[i] = apply(a.Vec[i], b.Vec[i])
		}
		return push(vector(out))
	}
}

func softmax(x []float32) []float32 {
	if len(x) == 0 {
		return nil
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	out := make([]float32, len(x))
	var sum float64
	for i, v := range x {
		e := math.Exp(float64(v - m))
		out[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range out {
		out[i] *= inv
	}
	return out
}

func reduce(op OpCode, x []float32) float32 {
	switch op {
	case OpMax:
		m := x[0]
		for _, v := range x[1:] {
			if v > m {
				m = v
			}
		}
		return m
	case OpSum:
		var s float64
		for _, v := range x {
			s += float64(v)
		}
		return float32(s)
	default: // OpMean
		var s float64
		for _, v := range x {
			s += float64(v)
		}
		return float32(s / float64(len(x)))
	}
}
