package procvm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"tinymlops/internal/tensor"
)

// Value is one stack slot: a scalar or a vector.
type Value struct {
	IsVec  bool
	Scalar float32
	Vec    []float32
}

// Len returns the element count (1 for scalars).
func (v Value) Len() int {
	if v.IsVec {
		return len(v.Vec)
	}
	return 1
}

func scalar(s float32) Value   { return Value{Scalar: s} }
func vector(v []float32) Value { return Value{IsVec: true, Vec: v} }

// Result is the outcome of executing a module.
type Result struct {
	Output  Value
	GasUsed uint64
}

// Runtime executes modules under a host policy: granted capabilities, a
// stack-depth bound and a gas ceiling. The zero value is unusable; use
// NewRuntime.
type Runtime struct {
	// Granted is the capability set the host extends to modules.
	Granted Capability
	// MaxStack bounds the value stack depth.
	MaxStack int
	// MaxGas caps execution cost when the module declares no tighter limit.
	MaxGas uint64
}

// NewRuntime returns a runtime granting the given capabilities with
// default resource bounds (stack 64, gas 1M).
func NewRuntime(granted Capability) *Runtime {
	return &Runtime{Granted: granted, MaxStack: 64, MaxGas: 1 << 20}
}

// Sentinel execution errors.
var (
	ErrCapabilityDenied = errors.New("procvm: module requires capabilities the host did not grant")
	ErrOutOfGas         = errors.New("procvm: out of gas")
	ErrStackOverflow    = errors.New("procvm: stack overflow")
	ErrStackUnderflow   = errors.New("procvm: stack underflow")
	ErrTypeMismatch     = errors.New("procvm: operand type mismatch")
	ErrBadModule        = errors.New("procvm: malformed module")
)

// Run executes the module on the input vector and returns the top of the
// stack at halt.
func (rt *Runtime) Run(m *Module, input []float32) (Result, error) {
	if !rt.Granted.Has(m.Caps) {
		return Result{}, fmt.Errorf("%w: need %v, granted %v", ErrCapabilityDenied, m.Caps, rt.Granted)
	}
	gasLimit := rt.MaxGas
	if m.GasLimit > 0 && m.GasLimit < gasLimit {
		gasLimit = m.GasLimit
	}
	var gas uint64
	stack := make([]Value, 0, 16)

	push := func(v Value) error {
		if len(stack) >= rt.MaxStack {
			return ErrStackOverflow
		}
		stack = append(stack, v)
		return nil
	}
	pop := func() (Value, error) {
		if len(stack) == 0 {
			return Value{}, ErrStackUnderflow
		}
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v, nil
	}
	popVec := func() ([]float32, error) {
		v, err := pop()
		if err != nil {
			return nil, err
		}
		if !v.IsVec {
			return nil, fmt.Errorf("%w: expected vector", ErrTypeMismatch)
		}
		return v.Vec, nil
	}
	popScalar := func() (float32, error) {
		v, err := pop()
		if err != nil {
			return 0, err
		}
		if v.IsVec {
			return 0, fmt.Errorf("%w: expected scalar", ErrTypeMismatch)
		}
		return v.Scalar, nil
	}

	pc := 0
	code := m.Code
	readU16 := func() (int, error) {
		if pc+2 > len(code) {
			return 0, fmt.Errorf("%w: truncated operand at pc=%d", ErrBadModule, pc)
		}
		v := int(binary.LittleEndian.Uint16(code[pc:]))
		pc += 2
		return v, nil
	}

	for pc < len(code) {
		op := OpCode(code[pc])
		pc++
		if !op.Valid() {
			return Result{}, fmt.Errorf("%w: invalid opcode %d at pc=%d", ErrBadModule, byte(op), pc-1)
		}
		// Meter on the size of the value the op touches (top of stack or
		// the pushed value).
		n := 1
		if len(stack) > 0 {
			n = stack[len(stack)-1].Len()
		}
		if op == OpInput {
			n = len(input)
		}
		gas += gasCost(op, n)
		if gas > gasLimit {
			return Result{GasUsed: gas}, fmt.Errorf("%w: used %d of %d", ErrOutOfGas, gas, gasLimit)
		}
		// charge meters supplemental gas for the heavy nn ops, whose cost
		// is known only after their operands decode.
		charge := func(extra uint64) error {
			gas += extra
			if gas > gasLimit {
				return fmt.Errorf("%w: used %d of %d", ErrOutOfGas, gas, gasLimit)
			}
			return nil
		}

		var err error
		switch op {
		case OpHalt:
			pc = len(code)
		case OpInput:
			cp := make([]float32, len(input))
			copy(cp, input)
			err = push(vector(cp))
		case OpPushScalar:
			var idx int
			if idx, err = readU16(); err == nil {
				if idx >= len(m.Scalars) {
					err = fmt.Errorf("%w: scalar pool index %d out of range", ErrBadModule, idx)
				} else {
					err = push(scalar(m.Scalars[idx]))
				}
			}
		case OpPushVector:
			var idx int
			if idx, err = readU16(); err == nil {
				if idx >= len(m.Vectors) {
					err = fmt.Errorf("%w: vector pool index %d out of range", ErrBadModule, idx)
				} else {
					cp := make([]float32, len(m.Vectors[idx]))
					copy(cp, m.Vectors[idx])
					err = push(vector(cp))
				}
			}
		case OpDup:
			var v Value
			if v, err = pop(); err == nil {
				cp := v
				if v.IsVec {
					cp.Vec = append([]float32(nil), v.Vec...)
				}
				if err = push(v); err == nil {
					err = push(cp)
				}
			}
		case OpDrop:
			_, err = pop()
		case OpSwap:
			var a, b Value
			if b, err = pop(); err == nil {
				if a, err = pop(); err == nil {
					if err = push(b); err == nil {
						err = push(a)
					}
				}
			}
		case OpAdd, OpSub, OpMul, OpDiv:
			err = binaryOp(&stack, op, push, pop)
		case OpNeg:
			err = unaryOp(pop, push, func(x float32) float32 { return -x })
		case OpAbs:
			err = unaryOp(pop, push, func(x float32) float32 {
				if x < 0 {
					return -x
				}
				return x
			})
		case OpSquare:
			err = unaryOp(pop, push, func(x float32) float32 { return x * x })
		case OpSqrt:
			err = unaryOp(pop, push, func(x float32) float32 {
				return float32(math.Sqrt(float64(x)))
			})
		case OpClamp:
			var hi, lo float32
			var x Value
			if hi, err = popScalar(); err == nil {
				if lo, err = popScalar(); err == nil {
					if x, err = pop(); err == nil {
						err = push(mapValue(x, func(v float32) float32 {
							if v < lo {
								return lo
							}
							if v > hi {
								return hi
							}
							return v
						}))
					}
				}
			}
		case OpNormalize:
			var std, mean, x []float32
			if std, err = popVec(); err == nil {
				if mean, err = popVec(); err == nil {
					if x, err = popVec(); err == nil {
						if len(x) != len(mean) || len(x) != len(std) {
							err = fmt.Errorf("%w: normalize lengths %d/%d/%d", ErrTypeMismatch, len(x), len(mean), len(std))
						} else {
							out := make([]float32, len(x))
							for i := range x {
								d := std[i]
								if d == 0 {
									d = 1
								}
								out[i] = (x[i] - mean[i]) / d
							}
							err = push(vector(out))
						}
					}
				}
			}
		case OpThreshold:
			var t float32
			var x Value
			if t, err = popScalar(); err == nil {
				if x, err = pop(); err == nil {
					err = push(mapValue(x, func(v float32) float32 {
						if v > t {
							return 1
						}
						return 0
					}))
				}
			}
		case OpSoftmax:
			var x []float32
			if x, err = popVec(); err == nil {
				err = push(vector(softmax(x)))
			}
		case OpArgMax:
			var x []float32
			if x, err = popVec(); err == nil {
				if len(x) == 0 {
					err = fmt.Errorf("%w: argmax of empty vector", ErrTypeMismatch)
				} else {
					best, bi := x[0], 0
					for i, v := range x[1:] {
						if v > best {
							best, bi = v, i+1
						}
					}
					err = push(scalar(float32(bi)))
				}
			}
		case OpMax, OpMean, OpSum:
			var x []float32
			if x, err = popVec(); err == nil {
				if len(x) == 0 {
					err = fmt.Errorf("%w: reduction of empty vector", ErrTypeMismatch)
				} else {
					err = push(scalar(reduce(op, x)))
				}
			}
		case OpMeanPool:
			var k int
			if k, err = readU16(); err == nil {
				var x []float32
				if x, err = popVec(); err == nil {
					if k <= 0 || len(x)%k != 0 {
						err = fmt.Errorf("%w: meanpool window %d does not divide length %d", ErrTypeMismatch, k, len(x))
					} else {
						out := make([]float32, len(x)/k)
						for i := range out {
							var s float32
							for j := 0; j < k; j++ {
								s += x[i*k+j]
							}
							out[i] = s / float32(k)
						}
						err = push(vector(out))
					}
				}
			}
		case OpSlice:
			var lo, hi int
			if lo, err = readU16(); err == nil {
				if hi, err = readU16(); err == nil {
					var x []float32
					if x, err = popVec(); err == nil {
						if lo > hi || hi > len(x) {
							err = fmt.Errorf("%w: slice [%d:%d] of length %d", ErrTypeMismatch, lo, hi, len(x))
						} else {
							err = push(vector(append([]float32(nil), x[lo:hi]...)))
						}
					}
				}
			}
		case OpReLU:
			err = unaryOp(pop, push, func(x float32) float32 {
				if x > 0 {
					return x
				}
				return 0
			})
		case OpSigmoid:
			err = unaryOp(pop, push, func(x float32) float32 {
				return float32(1 / (1 + math.Exp(-float64(x))))
			})
		case OpTanh:
			err = unaryOp(pop, push, func(x float32) float32 {
				return float32(math.Tanh(float64(x)))
			})
		case OpMatVec:
			err = runMatVec(m, readU16, popVec, push, charge)
		case OpConv2D:
			err = runConv2D(m, readU16, popVec, push, charge)
		case OpMaxPool2D:
			err = runMaxPool2D(readU16, popVec, push, charge)
		}
		if err != nil {
			return Result{GasUsed: gas}, err
		}
	}
	if len(stack) == 0 {
		return Result{GasUsed: gas}, fmt.Errorf("%w: module left an empty stack", ErrBadModule)
	}
	return Result{Output: stack[len(stack)-1], GasUsed: gas}, nil
}

func mapValue(v Value, f func(float32) float32) Value {
	if !v.IsVec {
		return scalar(f(v.Scalar))
	}
	out := make([]float32, len(v.Vec))
	for i, x := range v.Vec {
		out[i] = f(x)
	}
	return vector(out)
}

func unaryOp(pop func() (Value, error), push func(Value) error, f func(float32) float32) error {
	v, err := pop()
	if err != nil {
		return err
	}
	return push(mapValue(v, f))
}

func binaryOp(stack *[]Value, op OpCode, push func(Value) error, pop func() (Value, error)) error {
	b, err := pop()
	if err != nil {
		return err
	}
	a, err := pop()
	if err != nil {
		return err
	}
	apply := func(x, y float32) float32 {
		switch op {
		case OpAdd:
			return x + y
		case OpSub:
			return x - y
		case OpMul:
			return x * y
		default:
			return x / y
		}
	}
	switch {
	case !a.IsVec && !b.IsVec:
		return push(scalar(apply(a.Scalar, b.Scalar)))
	case a.IsVec && !b.IsVec:
		return push(mapValue(a, func(x float32) float32 { return apply(x, b.Scalar) }))
	case !a.IsVec && b.IsVec:
		return push(mapValue(b, func(y float32) float32 { return apply(a.Scalar, y) }))
	default:
		if len(a.Vec) != len(b.Vec) {
			return fmt.Errorf("%w: vector lengths %d vs %d", ErrTypeMismatch, len(a.Vec), len(b.Vec))
		}
		out := make([]float32, len(a.Vec))
		for i := range out {
			out[i] = apply(a.Vec[i], b.Vec[i])
		}
		return push(vector(out))
	}
}

func softmax(x []float32) []float32 {
	if len(x) == 0 {
		return nil
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	out := make([]float32, len(x))
	var sum float64
	for i, v := range x {
		e := math.Exp(float64(v - m))
		out[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// runMatVec executes OpMatVec: pop x (len in), push x·W + b. The multiply
// goes through tensor.MatMulInto on a 1×in row so the result is
// bit-identical to nn.Dense's InferInto on the same row.
func runMatVec(m *Module, readU16 func() (int, error), popVec func() ([]float32, error), push func(Value) error, charge func(uint64) error) error {
	wi, err := readU16()
	if err != nil {
		return err
	}
	bi, err := readU16()
	if err != nil {
		return err
	}
	outN, err := readU16()
	if err != nil {
		return err
	}
	if wi >= len(m.Vectors) || bi >= len(m.Vectors) {
		return fmt.Errorf("%w: matvec pool index out of range", ErrBadModule)
	}
	x, err := popVec()
	if err != nil {
		return err
	}
	in := len(x)
	w, b := m.Vectors[wi], m.Vectors[bi]
	if outN <= 0 || len(w) != in*outN || len(b) != outN {
		return fmt.Errorf("%w: matvec shapes: input %d, weights %d, bias %d, out %d",
			ErrTypeMismatch, in, len(w), len(b), outN)
	}
	if err := charge(uint64(in) * uint64(outN)); err != nil {
		return err
	}
	out := make([]float32, outN)
	tensor.MatMulInto(tensor.FromSlice(out, 1, outN), tensor.FromSlice(x, 1, in), tensor.FromSlice(w, in, outN))
	for j := range out {
		out[j] += b[j]
	}
	return push(vector(out))
}

// runConv2D executes OpConv2D by the same im2col + MatMulInto route
// nn.Conv2D takes, so compiled convolutions stay bit-identical to native.
func runConv2D(m *Module, readU16 func() (int, error), popVec func() ([]float32, error), push func(Value) error, charge func(uint64) error) error {
	var ops [10]int
	for i := range ops {
		v, err := readU16()
		if err != nil {
			return err
		}
		ops[i] = v
	}
	wi, bi := ops[0], ops[1]
	inC, h, w := ops[2], ops[3], ops[4]
	outC, kh, kw := ops[5], ops[6], ops[7]
	stride, pad := ops[8], ops[9]
	if wi >= len(m.Vectors) || bi >= len(m.Vectors) {
		return fmt.Errorf("%w: conv2d pool index out of range", ErrBadModule)
	}
	if inC <= 0 || h <= 0 || w <= 0 || outC <= 0 || kh <= 0 || kw <= 0 || stride <= 0 {
		return fmt.Errorf("%w: conv2d geometry", ErrTypeMismatch)
	}
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 {
		return fmt.Errorf("%w: conv2d output would be empty", ErrTypeMismatch)
	}
	x, err := popVec()
	if err != nil {
		return err
	}
	k := inC * kh * kw
	weights, bias := m.Vectors[wi], m.Vectors[bi]
	if len(x) != inC*h*w || len(weights) != outC*k || len(bias) != outC {
		return fmt.Errorf("%w: conv2d shapes: input %d, weights %d, bias %d",
			ErrTypeMismatch, len(x), len(weights), len(bias))
	}
	if err := charge(uint64(outC) * uint64(oh) * uint64(ow) * uint64(k)); err != nil {
		return err
	}
	cols := tensor.New(k, oh*ow)
	// im2col matching nn.Conv2D's unroll exactly (zero-padded taps).
	idx := 0
	for ch := 0; ch < inC; ch++ {
		plane := x[ch*h*w : (ch+1)*h*w]
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				row := cols.Data[idx*oh*ow : (idx+1)*oh*ow]
				idx++
				p := 0
				for oi := 0; oi < oh; oi++ {
					si := oi*stride + ki - pad
					for oj := 0; oj < ow; oj++ {
						sj := oj*stride + kj - pad
						if si >= 0 && si < h && sj >= 0 && sj < w {
							row[p] = plane[si*w+sj]
						}
						p++
					}
				}
			}
		}
	}
	y := tensor.New(outC, oh*ow)
	tensor.MatMulInto(y, tensor.FromSlice(weights, outC, k), cols)
	out := make([]float32, outC*oh*ow)
	copy(out, y.Data)
	for oc := 0; oc < outC; oc++ {
		b := bias[oc]
		seg := out[oc*oh*ow : (oc+1)*oh*ow]
		for i := range seg {
			seg[i] += b
		}
	}
	return push(vector(out))
}

// runMaxPool2D executes OpMaxPool2D with nn.MaxPool2D's exact loop.
func runMaxPool2D(readU16 func() (int, error), popVec func() ([]float32, error), push func(Value) error, charge func(uint64) error) error {
	var ops [5]int
	for i := range ops {
		v, err := readU16()
		if err != nil {
			return err
		}
		ops[i] = v
	}
	ch, h, w, k, stride := ops[0], ops[1], ops[2], ops[3], ops[4]
	if ch <= 0 || h <= 0 || w <= 0 || k <= 0 || stride <= 0 {
		return fmt.Errorf("%w: maxpool2d geometry", ErrTypeMismatch)
	}
	oh := (h-k)/stride + 1
	ow := (w-k)/stride + 1
	if oh <= 0 || ow <= 0 {
		return fmt.Errorf("%w: maxpool2d output would be empty", ErrTypeMismatch)
	}
	x, err := popVec()
	if err != nil {
		return err
	}
	if len(x) != ch*h*w {
		return fmt.Errorf("%w: maxpool2d input %d != %d×%d×%d", ErrTypeMismatch, len(x), ch, h, w)
	}
	if err := charge(uint64(ch) * uint64(oh) * uint64(ow) * uint64(k) * uint64(k)); err != nil {
		return err
	}
	out := make([]float32, ch*oh*ow)
	for c := 0; c < ch; c++ {
		plane := x[c*h*w : (c+1)*h*w]
		dst := out[c*oh*ow : (c+1)*oh*ow]
		for oi := 0; oi < oh; oi++ {
			for oj := 0; oj < ow; oj++ {
				best := float32(math.Inf(-1))
				for ki := 0; ki < k; ki++ {
					for kj := 0; kj < k; kj++ {
						v := plane[(oi*stride+ki)*w+(oj*stride+kj)]
						if v > best {
							best = v
						}
					}
				}
				dst[oi*ow+oj] = best
			}
		}
	}
	return push(vector(out))
}

func reduce(op OpCode, x []float32) float32 {
	switch op {
	case OpMax:
		m := x[0]
		for _, v := range x[1:] {
			if v > m {
				m = v
			}
		}
		return m
	case OpSum:
		var s float64
		for _, v := range x {
			s += float64(v)
		}
		return float32(s)
	default: // OpMean
		var s float64
		for _, v := range x {
			s += float64(v)
		}
		return float32(s / float64(len(x)))
	}
}
