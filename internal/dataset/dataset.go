package dataset

import (
	"fmt"
	"math"

	"tinymlops/internal/tensor"
)

// Dataset is a labeled collection of fixed-shape examples.
type Dataset struct {
	// Name identifies the generator and parameters, for reports.
	Name string
	// X is [n, features...].
	X *tensor.Tensor
	// Y holds the integer class label of each example.
	Y []int
	// NumClasses is the number of distinct labels.
	NumClasses int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return d.X.Dim(0) }

// ExampleShape returns the per-example feature shape.
func (d *Dataset) ExampleShape() []int { return d.X.Shape()[1:] }

// exampleSize returns the flattened feature count per example.
func (d *Dataset) exampleSize() int {
	if d.Len() == 0 {
		return 0
	}
	return d.X.Size() / d.Len()
}

// Subset returns a new dataset with copies of the selected examples.
func (d *Dataset) Subset(idx []int) *Dataset {
	es := d.exampleSize()
	shape := append([]int{len(idx)}, d.ExampleShape()...)
	x := tensor.New(shape...)
	y := make([]int, len(idx))
	for i, src := range idx {
		if src < 0 || src >= d.Len() {
			panic(fmt.Sprintf("dataset: Subset index %d out of range [0,%d)", src, d.Len()))
		}
		copy(x.Data[i*es:(i+1)*es], d.X.Data[src*es:(src+1)*es])
		y[i] = d.Y[src]
	}
	return &Dataset{Name: d.Name, X: x, Y: y, NumClasses: d.NumClasses}
}

// Split shuffles with rng and splits into train and test parts, with
// trainFrac of the examples in the train part.
func (d *Dataset) Split(trainFrac float64, rng *tensor.RNG) (train, test *Dataset) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic(fmt.Sprintf("dataset: trainFrac %v out of (0,1)", trainFrac))
	}
	perm := rng.Perm(d.Len())
	cut := int(float64(d.Len()) * trainFrac)
	return d.Subset(perm[:cut]), d.Subset(perm[cut:])
}

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	return d.Subset(idx)
}

// ClassCounts returns the number of examples per class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses)
	for _, y := range d.Y {
		if y >= 0 && y < d.NumClasses {
			counts[y]++
		}
	}
	return counts
}

// Standardize shifts and scales every feature to zero mean and unit
// variance computed over this dataset, returning the per-feature means and
// standard deviations so the same transform can be packaged as a
// preprocessing module and applied at the edge.
func (d *Dataset) Standardize() (means, stds []float32) {
	es := d.exampleSize()
	n := d.Len()
	means = make([]float32, es)
	stds = make([]float32, es)
	for f := 0; f < es; f++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(d.X.Data[i*es+f])
		}
		mean := sum / float64(n)
		var varSum float64
		for i := 0; i < n; i++ {
			dv := float64(d.X.Data[i*es+f]) - mean
			varSum += dv * dv
		}
		std := varSum / float64(n)
		if std < 1e-12 {
			std = 1
		} else {
			std = math.Sqrt(std)
		}
		means[f] = float32(mean)
		stds[f] = float32(std)
		inv := float32(1 / std)
		for i := 0; i < n; i++ {
			d.X.Data[i*es+f] = (d.X.Data[i*es+f] - float32(mean)) * inv
		}
	}
	return means, stds
}
