package dataset

import (
	"math"
	"testing"

	"tinymlops/internal/nn"
	"tinymlops/internal/tensor"
)

func TestBlobsBasicProperties(t *testing.T) {
	rng := tensor.NewRNG(1)
	ds := Blobs(rng, 300, 5, 3, 4)
	if ds.Len() != 300 || ds.NumClasses != 3 {
		t.Fatalf("Len=%d classes=%d", ds.Len(), ds.NumClasses)
	}
	counts := ds.ClassCounts()
	for c, n := range counts {
		if n != 100 {
			t.Fatalf("class %d has %d examples", c, n)
		}
	}
	if got := ds.ExampleShape(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("ExampleShape = %v", got)
	}
}

func TestBlobsAreLearnable(t *testing.T) {
	rng := tensor.NewRNG(2)
	ds := Blobs(rng, 600, 4, 3, 5)
	train, test := ds.Split(0.8, rng)
	net := nn.NewNetwork([]int{4}, nn.NewDense(4, 16, rng), nn.NewReLU(), nn.NewDense(16, 3, rng))
	if _, err := nn.Train(net, train.X, train.Y, nn.TrainConfig{
		Epochs: 10, BatchSize: 32, Optimizer: nn.NewSGD(0.1).WithMomentum(0.9), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	if acc := nn.Evaluate(net, test.X, test.Y); acc < 0.9 {
		t.Fatalf("blobs test accuracy %v < 0.9", acc)
	}
}

func TestRingsNotLinearlySeparableButLearnable(t *testing.T) {
	rng := tensor.NewRNG(3)
	ds := Rings(rng, 900, 3, 0.1)
	train, test := ds.Split(0.8, rng)
	// A linear model should struggle...
	linear := nn.NewNetwork([]int{2}, nn.NewDense(2, 3, rng))
	if _, err := nn.Train(linear, train.X, train.Y, nn.TrainConfig{
		Epochs: 15, BatchSize: 32, Optimizer: nn.NewSGD(0.05), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	linAcc := nn.Evaluate(linear, test.X, test.Y)
	// ...while an MLP succeeds.
	mlp := nn.NewNetwork([]int{2}, nn.NewDense(2, 32, rng), nn.NewReLU(), nn.NewDense(32, 3, rng))
	if _, err := nn.Train(mlp, train.X, train.Y, nn.TrainConfig{
		Epochs: 40, BatchSize: 32, Optimizer: nn.NewAdam(0.01), RNG: rng,
	}); err != nil {
		t.Fatal(err)
	}
	mlpAcc := nn.Evaluate(mlp, test.X, test.Y)
	if mlpAcc < 0.85 {
		t.Fatalf("MLP rings accuracy %v < 0.85", mlpAcc)
	}
	if mlpAcc < linAcc+0.15 {
		t.Fatalf("rings should separate MLP (%v) from linear (%v)", mlpAcc, linAcc)
	}
}

func TestShapeImagesDimensions(t *testing.T) {
	rng := tensor.NewRNG(4)
	ds := ShapeImages(rng, 40, 12, 0.1)
	shape := ds.ExampleShape()
	if len(shape) != 3 || shape[0] != 1 || shape[1] != 12 || shape[2] != 12 {
		t.Fatalf("ExampleShape = %v", shape)
	}
	if ds.NumClasses != 4 {
		t.Fatalf("NumClasses = %d", ds.NumClasses)
	}
}

func TestKeywordSeqClassesDiffer(t *testing.T) {
	rng := tensor.NewRNG(5)
	ds := KeywordSeq(rng, 200, 32, 4, 0.05, 0)
	// Mean energy per class should differ across at least one pair due to
	// distinct frequencies; verify per-class means are not all identical.
	sums := make([]float64, 4)
	counts := make([]int, 4)
	for i := 0; i < ds.Len(); i++ {
		var e float64
		for f := 0; f < 32; f++ {
			v := float64(ds.X.At2(i, f))
			e += v * v
		}
		sums[ds.Y[i]] += e
		counts[ds.Y[i]]++
	}
	distinct := false
	for c := 1; c < 4; c++ {
		if math.Abs(sums[c]/float64(counts[c])-sums[0]/float64(counts[0])) > 1e-3 {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("keyword classes look identical")
	}
}

func TestVibrationAnomalyFraction(t *testing.T) {
	rng := tensor.NewRNG(6)
	ds := VibrationAnomaly(rng, 2000, 32, 0.3, 1)
	counts := ds.ClassCounts()
	frac := float64(counts[1]) / float64(ds.Len())
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("anomaly fraction = %v, want ≈0.3", frac)
	}
}

func TestVibrationMachinesDiffer(t *testing.T) {
	rng := tensor.NewRNG(7)
	a := VibrationAnomaly(rng, 100, 32, 0, 0)
	b := VibrationAnomaly(rng, 100, 32, 0, 3)
	// Different machine IDs use different base frequencies; the mean
	// per-position signal must differ.
	var diff float64
	for f := 0; f < 32; f++ {
		var ma, mb float64
		for i := 0; i < 100; i++ {
			ma += float64(a.X.At2(i, f))
			mb += float64(b.X.At2(i, f))
		}
		diff += math.Abs(ma - mb)
	}
	if diff < 1 {
		t.Fatalf("machines 0 and 3 produce identical signals (diff=%v)", diff)
	}
}

func TestSplitAndSubset(t *testing.T) {
	rng := tensor.NewRNG(8)
	ds := Blobs(rng, 100, 3, 2, 3)
	train, test := ds.Split(0.7, rng)
	if train.Len() != 70 || test.Len() != 30 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	sub := ds.Subset([]int{0, 1, 2})
	if sub.Len() != 3 {
		t.Fatalf("Subset len = %d", sub.Len())
	}
	sub.X.Set2(0, 0, 999)
	if ds.X.At2(0, 0) == 999 {
		t.Fatal("Subset must copy data")
	}
}

func TestStandardize(t *testing.T) {
	rng := tensor.NewRNG(9)
	ds := Blobs(rng, 500, 4, 2, 6)
	means, stds := ds.Standardize()
	if len(means) != 4 || len(stds) != 4 {
		t.Fatalf("stats lengths %d/%d", len(means), len(stds))
	}
	for f := 0; f < 4; f++ {
		var sum, sumSq float64
		for i := 0; i < ds.Len(); i++ {
			v := float64(ds.X.At2(i, f))
			sum += v
			sumSq += v * v
		}
		m := sum / float64(ds.Len())
		sd := math.Sqrt(sumSq/float64(ds.Len()) - m*m)
		if math.Abs(m) > 1e-4 || math.Abs(sd-1) > 1e-3 {
			t.Fatalf("feature %d after standardize: mean=%v std=%v", f, m, sd)
		}
	}
}

func TestMeanShiftAndScaleDrift(t *testing.T) {
	rng := tensor.NewRNG(10)
	ds := Blobs(rng, 100, 2, 2, 3)
	before := ds.X.Mean()
	MeanShift(ds, 5)
	if math.Abs(float64(ds.X.Mean()-before-5)) > 1e-4 {
		t.Fatalf("MeanShift: mean %v -> %v", before, ds.X.Mean())
	}
	ScaleDrift(ds, 2)
	if math.Abs(float64(ds.X.Mean()-2*(before+5))) > 1e-3 {
		t.Fatalf("ScaleDrift wrong mean: %v", ds.X.Mean())
	}
}

func TestRotateFeaturesPreservesNorm(t *testing.T) {
	rng := tensor.NewRNG(11)
	ds := Blobs(rng, 50, 2, 2, 3)
	var normBefore float64
	for i := 0; i < ds.Len(); i++ {
		normBefore += float64(ds.X.At2(i, 0)*ds.X.At2(i, 0) + ds.X.At2(i, 1)*ds.X.At2(i, 1))
	}
	RotateFeatures(ds, 0, 1, math.Pi/3)
	var normAfter float64
	for i := 0; i < ds.Len(); i++ {
		normAfter += float64(ds.X.At2(i, 0)*ds.X.At2(i, 0) + ds.X.At2(i, 1)*ds.X.At2(i, 1))
	}
	if math.Abs(normBefore-normAfter) > 1e-2 {
		t.Fatalf("rotation changed norms: %v vs %v", normBefore, normAfter)
	}
}

func TestLabelNoiseFlipsRoughlyRequestedFraction(t *testing.T) {
	rng := tensor.NewRNG(12)
	ds := Blobs(rng, 1000, 2, 3, 3)
	orig := append([]int(nil), ds.Y...)
	flipped := LabelNoise(rng, ds, 0.2)
	if flipped < 150 || flipped > 250 {
		t.Fatalf("flipped %d of 1000, want ≈200", flipped)
	}
	changed := 0
	for i := range orig {
		if orig[i] != ds.Y[i] {
			changed++
		}
	}
	if changed != flipped {
		t.Fatalf("reported %d flips but %d labels changed", flipped, changed)
	}
}

func TestDriftStreamOnset(t *testing.T) {
	rng := tensor.NewRNG(13)
	base := Blobs(rng, 200, 3, 2, 3)
	s := NewDriftStream(rng, base, 100, DriftMeanShift, 10)
	var preMean, postMean float64
	for i := 0; i < 100; i++ {
		x, _ := s.Next()
		for _, v := range x {
			preMean += float64(v)
		}
	}
	if s.Drifted() != true {
		// after exactly onset samples Drifted flips; tolerate either here
		t.Log("stream at onset boundary")
	}
	for i := 0; i < 100; i++ {
		x, _ := s.Next()
		for _, v := range x {
			postMean += float64(v)
		}
	}
	preMean /= 300
	postMean /= 300
	if postMean-preMean < 5 {
		t.Fatalf("drift not visible: pre %v post %v", preMean, postMean)
	}
	if s.T() != 200 {
		t.Fatalf("T() = %d", s.T())
	}
}

func TestPartitionIIDBalanced(t *testing.T) {
	rng := tensor.NewRNG(14)
	ds := Blobs(rng, 100, 2, 2, 3)
	shards := PartitionIID(rng, ds, 7)
	total := 0
	for _, s := range shards {
		if len(s) < 14 || len(s) > 15 {
			t.Fatalf("shard size %d", len(s))
		}
		total += len(s)
	}
	if total != 100 {
		t.Fatalf("total %d", total)
	}
	if skew := LabelSkew(ds, shards); skew > 0.25 {
		t.Fatalf("IID skew too high: %v", skew)
	}
}

func TestPartitionDirichletSkewIncreasesAsAlphaShrinks(t *testing.T) {
	rng := tensor.NewRNG(15)
	ds := Blobs(rng, 3000, 2, 5, 3)
	lowAlpha := PartitionDirichlet(rng, ds, 10, 0.1)
	highAlpha := PartitionDirichlet(rng, ds, 10, 100)
	totalLow, totalHigh := 0, 0
	for i := range lowAlpha {
		totalLow += len(lowAlpha[i])
		totalHigh += len(highAlpha[i])
	}
	if totalLow != ds.Len() || totalHigh != ds.Len() {
		t.Fatalf("partitions lost examples: %d, %d of %d", totalLow, totalHigh, ds.Len())
	}
	sLow := LabelSkew(ds, lowAlpha)
	sHigh := LabelSkew(ds, highAlpha)
	if sLow <= sHigh {
		t.Fatalf("alpha=0.1 skew %v should exceed alpha=100 skew %v", sLow, sHigh)
	}
	if sHigh > 0.15 {
		t.Fatalf("alpha=100 should be near-IID, skew=%v", sHigh)
	}
}

func TestPartitionByClassIsPathological(t *testing.T) {
	rng := tensor.NewRNG(16)
	ds := Blobs(rng, 300, 2, 3, 3)
	shards := PartitionByClass(ds, 3)
	skew := LabelSkew(ds, shards)
	if skew < 0.6 {
		t.Fatalf("by-class skew = %v, want high", skew)
	}
	for c, shard := range shards {
		for _, i := range shard {
			if ds.Y[i] != c {
				t.Fatalf("shard %d contains class %d", c, ds.Y[i])
			}
		}
	}
}

func TestNoDriftKindLeavesStreamUnchanged(t *testing.T) {
	rng := tensor.NewRNG(17)
	base := Blobs(rng, 100, 2, 2, 3)
	s := NewDriftStream(rng, base, 0, DriftNone, 10)
	x, y := s.Next()
	if len(x) != 2 || y < 0 || y > 1 {
		t.Fatalf("Next() = %v, %d", x, y)
	}
}

func TestDriftKindStrings(t *testing.T) {
	for k, want := range map[DriftKind]string{
		DriftNone: "none", DriftMeanShift: "mean-shift", DriftRotate: "rotate", DriftScale: "scale",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}
