// Package dataset provides the synthetic workloads every experiment runs
// on: separable and non-separable classification tasks, image-like inputs
// for convolutional models, keyword-spotting-style sequences and machine
// vibration streams for predictive maintenance — plus the two operational
// tools the paper's challenges revolve around: drift injection (§III-B
// observability) and non-IID partitioning (§III-D federated learning).
//
// Real TinyML corpora (speech commands, sensor logs) are not available in
// this offline reproduction; these generators preserve the distributional
// properties the platform code actually consumes (cluster structure,
// spectral structure, label skew, distribution shift).
package dataset
