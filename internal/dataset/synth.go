package dataset

import (
	"fmt"
	"math"

	"tinymlops/internal/tensor"
)

// Blobs generates n examples from classes Gaussian clusters in a
// features-dimensional space. Cluster centers are drawn once from rng at
// pairwise distance ≈ sep; points scatter around them with unit variance.
// It is the linearly separable baseline task used by the quickstart and the
// quantization sweeps.
func Blobs(rng *tensor.RNG, n, features, classes int, sep float32) *Dataset {
	if classes < 2 || features < 1 || n < classes {
		panic(fmt.Sprintf("dataset: Blobs(n=%d, features=%d, classes=%d) invalid", n, features, classes))
	}
	centers := tensor.New(classes, features)
	for c := 0; c < classes; c++ {
		for f := 0; f < features; f++ {
			centers.Set2(c, f, rng.NormFloat32()*sep)
		}
	}
	x := tensor.New(n, features)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		y[i] = c
		for f := 0; f < features; f++ {
			x.Set2(i, f, centers.At2(c, f)+rng.NormFloat32())
		}
	}
	return &Dataset{Name: fmt.Sprintf("blobs(d=%d,k=%d)", features, classes), X: x, Y: y, NumClasses: classes}
}

// Rings generates n examples on classes concentric 2D rings with radial
// noise — a task no linear model solves, exercising the nonlinear layers.
func Rings(rng *tensor.RNG, n, classes int, noise float32) *Dataset {
	if classes < 2 || n < classes {
		panic(fmt.Sprintf("dataset: Rings(n=%d, classes=%d) invalid", n, classes))
	}
	x := tensor.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		y[i] = c
		r := float64(c+1) + float64(rng.NormFloat32())*float64(noise)
		th := rng.Float64() * 2 * math.Pi
		x.Set2(i, 0, float32(r*math.Cos(th)))
		x.Set2(i, 1, float32(r*math.Sin(th)))
	}
	return &Dataset{Name: fmt.Sprintf("rings(k=%d)", classes), X: x, Y: y, NumClasses: classes}
}

// ShapeImages generates n single-channel size×size images containing one of
// four shape classes (filled square, cross, diamond, horizontal stripes)
// at random positions with additive noise. It is the convolutional-scale
// workload (stand-in for the paper's image-recognition use cases).
func ShapeImages(rng *tensor.RNG, n, size int, noise float32) *Dataset {
	const classes = 4
	if size < 8 {
		panic("dataset: ShapeImages needs size >= 8")
	}
	x := tensor.New(n, 1, size, size)
	y := make([]int, n)
	es := size * size
	for i := 0; i < n; i++ {
		c := i % classes
		y[i] = c
		img := x.Data[i*es : (i+1)*es]
		// Random top-left corner of a shape bounding box of side s.
		s := size / 2
		r0 := rng.Intn(size - s)
		c0 := rng.Intn(size - s)
		switch c {
		case 0: // filled square
			for r := r0; r < r0+s; r++ {
				for cc := c0; cc < c0+s; cc++ {
					img[r*size+cc] = 1
				}
			}
		case 1: // cross
			mid := s / 2
			for d := 0; d < s; d++ {
				img[(r0+mid)*size+c0+d] = 1
				img[(r0+d)*size+c0+mid] = 1
			}
		case 2: // diamond outline
			mid := s / 2
			for d := 0; d <= mid; d++ {
				img[(r0+d)*size+c0+mid-d] = 1
				img[(r0+d)*size+c0+mid+d] = 1
				img[(r0+s-1-d)*size+c0+mid-d] = 1
				img[(r0+s-1-d)*size+c0+mid+d] = 1
			}
		case 3: // horizontal stripes
			for r := r0; r < r0+s; r += 2 {
				for cc := c0; cc < c0+s; cc++ {
					img[r*size+cc] = 1
				}
			}
		}
		for p := range img {
			img[p] += rng.NormFloat32() * noise
		}
	}
	return &Dataset{Name: fmt.Sprintf("shapes(%dx%d)", size, size), X: x, Y: y, NumClasses: classes}
}

// KeywordSeq generates keyword-spotting-like examples: length seqLen
// waveforms where each class is a characteristic pair of frequencies with
// random phase, amplitude jitter and additive noise. With perUserPitch > 0
// each call can emulate speaker variability by shifting the base pitch —
// the lever the federated personalization experiment pulls.
func KeywordSeq(rng *tensor.RNG, n, seqLen, classes int, noise, pitchShift float32) *Dataset {
	if classes < 2 || seqLen < 8 {
		panic(fmt.Sprintf("dataset: KeywordSeq(seqLen=%d, classes=%d) invalid", seqLen, classes))
	}
	x := tensor.New(n, seqLen)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		y[i] = c
		f1 := (1 + float64(c)) * (1 + float64(pitchShift))
		f2 := (1.5 + 0.5*float64(c)) * (1 + float64(pitchShift))
		phase := rng.Float64() * 2 * math.Pi
		amp := 0.8 + 0.4*rng.Float64()
		for tt := 0; tt < seqLen; tt++ {
			u := 2 * math.Pi * float64(tt) / float64(seqLen)
			v := amp * (math.Sin(f1*u+phase) + 0.5*math.Sin(f2*u))
			x.Set2(i, tt, float32(v)+rng.NormFloat32()*noise)
		}
	}
	return &Dataset{Name: fmt.Sprintf("keywords(k=%d,len=%d)", classes, seqLen), X: x, Y: y, NumClasses: classes}
}

// VibrationAnomaly generates machine-vibration windows for predictive
// maintenance: class 0 is healthy (a base rotation frequency with mild
// noise), class 1 is faulty (an added bearing-defect harmonic and impulse
// spikes). machineID perturbs the base frequency so each simulated machine
// has its own signature — the hook for the §III-D "overfit to a single
// machine" personalization claim.
func VibrationAnomaly(rng *tensor.RNG, n, window int, anomalyFrac float64, machineID int) *Dataset {
	if window < 16 {
		panic("dataset: VibrationAnomaly needs window >= 16")
	}
	x := tensor.New(n, window)
	y := make([]int, n)
	base := 3.0 + 0.35*float64(machineID%7)
	for i := 0; i < n; i++ {
		anomalous := rng.Float64() < anomalyFrac
		if anomalous {
			y[i] = 1
		}
		phase := rng.Float64() * 2 * math.Pi
		for tt := 0; tt < window; tt++ {
			u := 2 * math.Pi * float64(tt) / float64(window)
			v := math.Sin(base*u + phase)
			if anomalous {
				v += 0.8 * math.Sin(7.3*base*u+phase)
				if rng.Float64() < 0.08 {
					v += 2.5
				}
			}
			x.Set2(i, tt, float32(v)+rng.NormFloat32()*0.15)
		}
	}
	return &Dataset{Name: fmt.Sprintf("vibration(m=%d)", machineID), X: x, Y: y, NumClasses: 2}
}
