package dataset

import (
	"fmt"
	"math"

	"tinymlops/internal/tensor"
)

// MeanShift adds delta to every feature of ds in place — the simplest
// covariate drift (e.g. sensor bias developing over time).
func MeanShift(ds *Dataset, delta float32) {
	ds.X.AddScalar(delta)
}

// RotateFeatures rotates feature pair (f1, f2) of every example by angle
// radians in place — covariate drift that preserves marginal means, which
// defeats naive mean-based monitors and motivates distribution tests.
func RotateFeatures(ds *Dataset, f1, f2 int, angle float64) {
	es := ds.exampleSize()
	if f1 < 0 || f2 < 0 || f1 >= es || f2 >= es {
		panic(fmt.Sprintf("dataset: RotateFeatures(%d,%d) out of range for %d features", f1, f2, es))
	}
	c, s := float32(math.Cos(angle)), float32(math.Sin(angle))
	for i := 0; i < ds.Len(); i++ {
		a := ds.X.Data[i*es+f1]
		b := ds.X.Data[i*es+f2]
		ds.X.Data[i*es+f1] = c*a - s*b
		ds.X.Data[i*es+f2] = s*a + c*b
	}
}

// ScaleDrift multiplies every feature by factor in place (gain drift).
func ScaleDrift(ds *Dataset, factor float32) {
	ds.X.Scale(factor)
}

// LabelNoise flips the label of a fraction of examples to a different
// uniformly random class — the "low quality user labels" of §III-D.
func LabelNoise(rng *tensor.RNG, ds *Dataset, frac float64) int {
	flipped := 0
	for i := range ds.Y {
		if rng.Float64() < frac {
			old := ds.Y[i]
			ny := rng.Intn(ds.NumClasses)
			for ny == old && ds.NumClasses > 1 {
				ny = rng.Intn(ds.NumClasses)
			}
			ds.Y[i] = ny
			flipped++
		}
	}
	return flipped
}

// Stream produces an endless sequence of examples over virtual time; the
// observability experiments consume one example per tick.
type Stream interface {
	// Next returns the features and label of the next example.
	Next() (x []float32, label int)
}

// DriftKind names a drift injection mode for DriftStream.
type DriftKind int

// Supported drift kinds.
const (
	DriftNone DriftKind = iota
	// DriftMeanShift adds Magnitude to every feature after onset.
	DriftMeanShift
	// DriftRotate rotates features 0 and 1 by Magnitude radians after onset.
	DriftRotate
	// DriftScale multiplies features by (1+Magnitude) after onset.
	DriftScale
)

// String implements fmt.Stringer.
func (k DriftKind) String() string {
	switch k {
	case DriftNone:
		return "none"
	case DriftMeanShift:
		return "mean-shift"
	case DriftRotate:
		return "rotate"
	case DriftScale:
		return "scale"
	default:
		return fmt.Sprintf("drift(%d)", int(k))
	}
}

// DriftStream draws i.i.d. examples from a base dataset and injects a
// distribution change at a fixed onset time. It models a fleet device whose
// input distribution silently shifts in the field (§III-B).
type DriftStream struct {
	Base      *Dataset
	Onset     int // tick at which drift begins
	Kind      DriftKind
	Magnitude float64

	rng *tensor.RNG
	t   int
}

// NewDriftStream returns a stream over base with the given drift schedule.
func NewDriftStream(rng *tensor.RNG, base *Dataset, onset int, kind DriftKind, magnitude float64) *DriftStream {
	return &DriftStream{Base: base, Onset: onset, Kind: kind, Magnitude: magnitude, rng: rng}
}

// T returns the number of examples emitted so far.
func (s *DriftStream) T() int { return s.t }

// Drifted reports whether the stream has passed its onset.
func (s *DriftStream) Drifted() bool { return s.t >= s.Onset }

// Next implements Stream.
func (s *DriftStream) Next() ([]float32, int) {
	es := s.Base.exampleSize()
	i := s.rng.Intn(s.Base.Len())
	x := make([]float32, es)
	copy(x, s.Base.X.Data[i*es:(i+1)*es])
	label := s.Base.Y[i]
	if s.t >= s.Onset {
		switch s.Kind {
		case DriftMeanShift:
			for f := range x {
				x[f] += float32(s.Magnitude)
			}
		case DriftRotate:
			if es >= 2 {
				c, sn := float32(math.Cos(s.Magnitude)), float32(math.Sin(s.Magnitude))
				a, b := x[0], x[1]
				x[0] = c*a - sn*b
				x[1] = sn*a + c*b
			}
		case DriftScale:
			for f := range x {
				x[f] *= 1 + float32(s.Magnitude)
			}
		}
	}
	s.t++
	return x, label
}
