package dataset

import (
	"fmt"

	"tinymlops/internal/tensor"
)

// PartitionIID shuffles the dataset and deals examples round-robin into k
// equally sized client shards, returning index lists.
func PartitionIID(rng *tensor.RNG, ds *Dataset, k int) [][]int {
	if k < 1 || k > ds.Len() {
		panic(fmt.Sprintf("dataset: PartitionIID k=%d invalid for %d examples", k, ds.Len()))
	}
	perm := rng.Perm(ds.Len())
	shards := make([][]int, k)
	for i, idx := range perm {
		shards[i%k] = append(shards[i%k], idx)
	}
	return shards
}

// PartitionDirichlet splits the dataset into k client shards with label
// skew controlled by alpha: for each class, the class's examples are
// distributed over clients according to a Dirichlet(alpha,...,alpha) draw.
// Small alpha (e.g. 0.1) yields pathological non-IID shards where most
// clients see only one or two classes; large alpha approaches IID. This is
// the standard benchmark protocol for federated learning on non-IID data
// (§III-D).
func PartitionDirichlet(rng *tensor.RNG, ds *Dataset, k int, alpha float64) [][]int {
	if k < 1 {
		panic(fmt.Sprintf("dataset: PartitionDirichlet k=%d invalid", k))
	}
	if alpha <= 0 {
		panic(fmt.Sprintf("dataset: PartitionDirichlet alpha=%v must be positive", alpha))
	}
	byClass := make([][]int, ds.NumClasses)
	for i, y := range ds.Y {
		byClass[y] = append(byClass[y], i)
	}
	shards := make([][]int, k)
	for _, idxs := range byClass {
		if len(idxs) == 0 {
			continue
		}
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		props := rng.Dirichlet(alpha, k)
		// Convert proportions to contiguous cut points.
		start := 0
		for c := 0; c < k; c++ {
			take := int(props[c] * float64(len(idxs)))
			if c == k-1 {
				take = len(idxs) - start
			}
			if start+take > len(idxs) {
				take = len(idxs) - start
			}
			shards[c] = append(shards[c], idxs[start:start+take]...)
			start += take
		}
	}
	return shards
}

// PartitionByClass gives each client examples from exactly one class
// (clients beyond the class count cycle) — the worst-case shard for
// federated averaging.
func PartitionByClass(ds *Dataset, k int) [][]int {
	shards := make([][]int, k)
	for i, y := range ds.Y {
		c := y % k
		shards[c] = append(shards[c], i)
	}
	return shards
}

// LabelSkew quantifies how non-IID a partition is: it returns the mean
// total-variation distance between each shard's label distribution and the
// global label distribution (0 = perfectly IID, →1 = disjoint).
func LabelSkew(ds *Dataset, shards [][]int) float64 {
	global := make([]float64, ds.NumClasses)
	for _, y := range ds.Y {
		global[y]++
	}
	for c := range global {
		global[c] /= float64(len(ds.Y))
	}
	var total float64
	counted := 0
	for _, shard := range shards {
		if len(shard) == 0 {
			continue
		}
		local := make([]float64, ds.NumClasses)
		for _, i := range shard {
			local[ds.Y[i]]++
		}
		var tv float64
		for c := range local {
			local[c] /= float64(len(shard))
			d := local[c] - global[c]
			if d < 0 {
				d = -d
			}
			tv += d
		}
		total += tv / 2
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
